package decibel_test

// Parallel-vs-sequential scan equivalence: for every engine, worker
// count, query shape and a few hundred random and fixed predicates,
// a scan through the parallel executor must emit exactly what the
// sequential scan emits — same rows, same order, same errors, same
// aggregate values. The dataset is the pruning dataset (multiple
// segments across schema epochs, branches and a merge), which is what
// gives the executor several frozen units to fan out. The test also
// asserts the parallel executor actually engaged, so a silently
// declined pool cannot pass.
//
// Worker counts are pinned with WithScanWorkers rather than GOMAXPROCS
// so the pool engages even on single-core machines; the CI race job
// additionally runs this test under GOMAXPROCS=1 and 4.

import (
	"context"
	"fmt"
	"math/rand"
	"testing"

	"decibel"
	"decibel/internal/core"
	iquery "decibel/internal/query"
	"decibel/internal/record"
)

// collectShape runs one plan shape and returns its output lines in
// emission order (the parallel contract is order-identical streams,
// so no sorting here, unlike runShape).
func collectShape(db *decibel.DB, plan iquery.Plan, shape string) ([]string, error) {
	c, err := plan.Compile(db.Database)
	if err != nil {
		return nil, err
	}
	var out []string
	ctx := context.Background()
	switch shape {
	case "diff":
		err = c.Diff(ctx, func(rec *record.Record) bool {
			out = append(out, rec.String())
			return true
		})
	case "multi":
		err = c.ScanMulti(ctx, func(rec *record.Record, m *decibel.Bitmap) bool {
			key := rec.String() + " @"
			for i := 0; i < len(c.Branches()); i++ {
				if m.Get(i) {
					key += fmt.Sprintf("%d,", i)
				}
			}
			out = append(out, key)
			return true
		})
	default:
		err = c.Scan(ctx, func(rec *record.Record) bool {
			out = append(out, rec.String())
			return true
		})
	}
	if err != nil {
		return nil, err
	}
	return out, nil
}

// compareStreams fails unless the two labeled runs produced identical
// line streams (or identical errors).
func compareStreams(t *testing.T, label string, got, want []string, gotErr, wantErr error) {
	t.Helper()
	if (gotErr == nil) != (wantErr == nil) {
		t.Fatalf("%s: parallel err=%v sequential err=%v", label, gotErr, wantErr)
	}
	if gotErr != nil {
		if gotErr.Error() != wantErr.Error() {
			t.Fatalf("%s: error mismatch: %v vs %v", label, gotErr, wantErr)
		}
		return
	}
	if len(got) != len(want) {
		t.Fatalf("%s: parallel %d rows, sequential %d rows", label, len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("%s: row %d: parallel %q sequential %q", label, i, got[i], want[i])
		}
	}
}

// collectRows drains a facade Rows/Diff iterator into lines.
func collectRows(seq func(func(*decibel.Record) bool), errFn func() error) ([]string, error) {
	var out []string
	seq(func(rec *decibel.Record) bool {
		out = append(out, rec.String())
		return true
	})
	return out, errFn()
}

// compareParallelSequential runs every plan shape, facade OrderBy/Limit
// shape and aggregate for one predicate, comparing the default
// (parallel-eligible) execution against the Sequential() baseline.
func compareParallelSequential(t *testing.T, db *decibel.DB, where iquery.Expr, label string) {
	t.Helper()
	type shaped struct {
		plan  iquery.Plan
		shape string
	}
	shapes := []shaped{
		{iquery.Plan{Table: "r", Branches: []string{"master"}, AtSeq: -1, Where: where}, "scan"},
		{iquery.Plan{Table: "r", Branches: []string{"b1"}, AtSeq: -1, Where: where}, "scan"},
		{iquery.Plan{Table: "r", Branches: []string{"b2"}, AtSeq: -1, Where: where}, "scan"},
		{iquery.Plan{Table: "r", Branches: []string{"master"}, AtSeq: 0, Where: where}, "scan"}, // commit scan
		{iquery.Plan{Table: "r", Branches: []string{"master"}, AtSeq: 1, Where: where}, "scan"},
		{iquery.Plan{Table: "r", AllHeads: true, AtSeq: -1, Where: where}, "multi"},
		{iquery.Plan{Table: "r", Branches: []string{"master", "b1"}, AtSeq: -1, Where: where}, "multi"},
		{iquery.Plan{Table: "r", Branches: []string{"master", "b1"}, AtSeq: -1, Where: where}, "diff"},
		{iquery.Plan{Table: "r", Branches: []string{"b2", "master"}, AtSeq: -1, Where: where}, "diff"},
	}
	for j, sh := range shapes {
		par := sh.plan
		seq := sh.plan
		seq.NoParallel = true
		got, gotErr := collectShape(db, par, sh.shape)
		want, wantErr := collectShape(db, seq, sh.shape)
		compareStreams(t, fmt.Sprintf("%s shape[%d:%s]", label, j, sh.shape), got, want, gotErr, wantErr)
	}

	// Facade shapes: OrderBy/Limit run the pre-trimmed parallel path
	// under EmitOrdered, which must stay byte-identical (the order
	// columns carry heavy duplication, so ties are exercised).
	type facadeShape struct {
		name  string
		build func(q *decibel.Query) *decibel.Query
		run   func(q *decibel.Query) ([]string, error)
	}
	rows := func(q *decibel.Query) ([]string, error) { return collectRows(q.Rows()) }
	diff := func(q *decibel.Query) ([]string, error) { return collectRows(q.Diff("master", "b1")) }
	fshapes := []facadeShape{
		{"rows-order", func(q *decibel.Query) *decibel.Query { return q.On("master").OrderBy("v", false) }, rows},
		{"rows-order-desc-limit", func(q *decibel.Query) *decibel.Query { return q.On("master").OrderBy("price", true).Limit(7) }, rows},
		{"rows-order-limit-ties", func(q *decibel.Query) *decibel.Query { return q.On("master").OrderBy("price", false).Limit(11) }, rows},
		{"rows-limit", func(q *decibel.Query) *decibel.Query { return q.On("master").Limit(9) }, rows},
		{"rows-multi-limit", func(q *decibel.Query) *decibel.Query { return q.Heads().Limit(13) }, rows},
		{"diff-order-limit", func(q *decibel.Query) *decibel.Query { return q.OrderBy("v", true).Limit(5) }, diff},
	}
	for _, fs := range fshapes {
		got, gotErr := fs.run(fs.build(db.Query("r").Where(where)))
		want, wantErr := fs.run(fs.build(db.Query("r").Where(where)).Sequential())
		compareStreams(t, label+" "+fs.name, got, want, gotErr, wantErr)
	}

	// Aggregates: partial-merge results must match the sequential fold
	// exactly (the dataset's values are binary fractions, so even the
	// float sum is associativity-proof).
	aggs := []struct {
		name string
		run  func(q *decibel.Query) (float64, error)
	}{
		{"count", func(q *decibel.Query) (float64, error) { n, err := q.On("master").Count(); return float64(n), err }},
		{"count-heads", func(q *decibel.Query) (float64, error) { n, err := q.Heads().Count(); return float64(n), err }},
		{"sum-v", func(q *decibel.Query) (float64, error) { return q.On("master").Sum("v") }},
		{"sum-price", func(q *decibel.Query) (float64, error) { return q.On("master").Sum("price") }},
		{"min-price", func(q *decibel.Query) (float64, error) { return q.On("master").Min("price") }},
		{"max-v", func(q *decibel.Query) (float64, error) { return q.On("b2").Max("v") }},
		{"min-at", func(q *decibel.Query) (float64, error) { return q.On("master").At(0).Min("v") }},
	}
	for _, ag := range aggs {
		got, gotErr := ag.run(db.Query("r").Where(where))
		want, wantErr := ag.run(db.Query("r").Where(where).Sequential())
		if (gotErr == nil) != (wantErr == nil) {
			t.Fatalf("%s %s: parallel err=%v sequential err=%v", label, ag.name, gotErr, wantErr)
		}
		if gotErr == nil && got != want {
			t.Fatalf("%s %s: parallel %v sequential %v", label, ag.name, got, want)
		}
	}
}

func TestParallelScanEquivalence(t *testing.T) {
	scansBefore, unitsBefore := core.ParallelScanCounters()
	for _, engine := range facadeEngines {
		for _, workers := range []int{2, 8} {
			t.Run(fmt.Sprintf("%s/workers=%d", engine, workers), func(t *testing.T) {
				db := buildPruningDB(t, engine, decibel.WithScanWorkers(workers))
				fixed := []iquery.Expr{
					{}, // match-all: the widest streams
					iquery.Col("price").Lt(7.5),
					iquery.Col("price").Eq(7.5),
					iquery.Col("price").Ge(7.5),
					iquery.Col("price").Gt(100),
					iquery.Col("sku").HasPrefix("c"),
					iquery.Col("v").Ge(120).And(iquery.Col("sku").HasPrefix("b")),
				}
				for i, where := range fixed {
					compareParallelSequential(t, db, where, fmt.Sprintf("fixed[%d]", i))
				}
				rng := rand.New(rand.NewSource(0x9a7a11e1))
				for i := 0; i < 26; i++ {
					compareParallelSequential(t, db, randExpr(rng, 2), fmt.Sprintf("rand[%d]", i))
				}
			})
		}
	}
	scansAfter, unitsAfter := core.ParallelScanCounters()
	if scansAfter == scansBefore || unitsAfter == unitsBefore {
		t.Fatalf("parallel executor never engaged (scans %d→%d, pool units %d→%d)",
			scansBefore, scansAfter, unitsBefore, unitsAfter)
	}
}
