package decibel_test

// Compaction equivalence: a compaction pass — merging runs of small
// frozen segments, dropping unreachable tombstones, re-encoding frozen
// segments into compressed pages — must be invisible to every reader.
// For each engine the pruning dataset (multiple segments across schema
// epochs, branches, deletes and a merge) is scanned across every query
// shape and the pruning predicate corpus before a pass, after it, and
// after a close/reopen of the compacted dataset; all three streams must
// be byte-identical in emission order. The test also asserts the pass
// did real work (stats non-zero, on-disk bytes shrank) and that a
// second pass finds nothing left to do.

import (
	"fmt"
	"math/rand"
	"testing"

	"decibel"
	iquery "decibel/internal/query"
)

// compactionShapes is the query-shape battery the compaction streams
// are captured over: branch heads, historical commits, multi-branch
// and diff.
func compactionShapes(where iquery.Expr) []struct {
	plan  iquery.Plan
	shape string
} {
	return []struct {
		plan  iquery.Plan
		shape string
	}{
		{iquery.Plan{Table: "r", Branches: []string{"master"}, AtSeq: -1, Where: where}, "scan"},
		{iquery.Plan{Table: "r", Branches: []string{"b1"}, AtSeq: -1, Where: where}, "scan"},
		{iquery.Plan{Table: "r", Branches: []string{"b2"}, AtSeq: -1, Where: where}, "scan"},
		{iquery.Plan{Table: "r", Branches: []string{"master"}, AtSeq: 0, Where: where}, "scan"},
		{iquery.Plan{Table: "r", Branches: []string{"master"}, AtSeq: 1, Where: where}, "scan"},
		{iquery.Plan{Table: "r", Branches: []string{"master"}, AtSeq: 2, Where: where}, "scan"},
		{iquery.Plan{Table: "r", Branches: []string{"master"}, AtSeq: 3, Where: where}, "scan"},
		{iquery.Plan{Table: "r", AllHeads: true, AtSeq: -1, Where: where}, "multi"},
		{iquery.Plan{Table: "r", Branches: []string{"master", "b1"}, AtSeq: -1, Where: where}, "diff"},
		{iquery.Plan{Table: "r", Branches: []string{"b2", "master"}, AtSeq: -1, Where: where}, "diff"},
	}
}

// compactionCorpus returns the predicate corpus: the fixed pruning
// edges plus deterministic random predicate trees.
func compactionCorpus(extra int) []iquery.Expr {
	corpus := []iquery.Expr{
		{}, // match-all: the widest streams
		iquery.Col("price").Lt(7.5),
		iquery.Col("price").Eq(7.5),
		iquery.Col("price").Ge(7.5),
		iquery.Col("sku").HasPrefix("c"),
		iquery.Col("v").Ge(120).And(iquery.Col("sku").HasPrefix("b")),
	}
	rng := rand.New(rand.NewSource(0xc0dec0de))
	for i := 0; i < extra; i++ {
		corpus = append(corpus, randExpr(rng, 2))
	}
	return corpus
}

// captureCompactionStreams runs the full shape × predicate battery and
// returns every stream, labeled, in emission order.
func captureCompactionStreams(t *testing.T, db *decibel.DB, corpus []iquery.Expr) map[string][]string {
	t.Helper()
	out := make(map[string][]string)
	for i, where := range corpus {
		for j, sh := range compactionShapes(where) {
			label := fmt.Sprintf("pred[%d] shape[%d:%s]", i, j, sh.shape)
			rows, err := collectShape(db, sh.plan, sh.shape)
			if err != nil {
				// Plan-time errors (a predicate naming a column the
				// addressed epoch lacks) are part of the stream: they
				// must reproduce identically after compaction too.
				rows = []string{"ERR: " + err.Error()}
			}
			out[label] = rows
		}
	}
	return out
}

// compareCompactionStreams asserts got matches want stream for stream,
// row for row, in emission order.
func compareCompactionStreams(t *testing.T, phase string, got, want map[string][]string) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d streams, want %d", phase, len(got), len(want))
	}
	for label, w := range want {
		g, ok := got[label]
		if !ok {
			t.Fatalf("%s: stream %s missing", phase, label)
		}
		if len(g) != len(w) {
			t.Fatalf("%s: %s: %d rows, want %d", phase, label, len(g), len(w))
		}
		for i := range g {
			if g[i] != w[i] {
				t.Fatalf("%s: %s: row %d: %q, want %q", phase, label, i, g[i], w[i])
			}
		}
	}
}

// diskBytes sums the on-disk footprint of every segment of table r.
func diskBytes(t *testing.T, db *decibel.DB) int64 {
	t.Helper()
	tbl, err := db.TableByName("r")
	if err != nil {
		t.Fatal(err)
	}
	var total int64
	for _, st := range tbl.SegmentStats() {
		total += st.DiskBytes
	}
	return total
}

func TestCompactionScanEquivalence(t *testing.T) {
	for _, engine := range facadeEngines {
		t.Run(engine, func(t *testing.T) {
			dir := t.TempDir()
			opts := []decibel.Option{
				decibel.WithCompaction("manual"),
				decibel.WithCompactionThresholds(2, 4096),
			}
			// Build, then cycle through a close/reopen so every segment
			// is flushed and its on-disk footprint measurable — the state
			// a deployed dataset compacts from.
			built := buildPruningDBIn(t, dir, engine, opts...)
			if err := built.Close(); err != nil {
				t.Fatal(err)
			}
			db := buildReopen(t, dir, engine, opts...)
			corpus := compactionCorpus(20)
			before := captureCompactionStreams(t, db, corpus)
			sizeBefore := diskBytes(t, db)

			st, err := db.Compact()
			if err != nil {
				t.Fatalf("compact: %v", err)
			}
			if st.SegmentsMerged == 0 && st.SegmentsCompressed == 0 {
				t.Fatalf("compaction did nothing: %+v", st)
			}
			if engine == "hybrid" && st.SegmentsMerged == 0 {
				t.Fatalf("hybrid pass merged no segments: %+v", st)
			}
			if st.PagesCompressed == 0 {
				t.Fatalf("no compressed pages written: %+v", st)
			}

			after := captureCompactionStreams(t, db, corpus)
			compareCompactionStreams(t, "post-compaction", after, before)
			if sizeAfter := diskBytes(t, db); sizeAfter >= sizeBefore {
				t.Fatalf("disk bytes did not shrink: %d -> %d", sizeBefore, sizeAfter)
			}

			// A second pass finds everything already merged and encoded.
			st2, err := db.Compact()
			if err != nil {
				t.Fatalf("second compact: %v", err)
			}
			if !st2.Zero() {
				t.Fatalf("second pass was not a no-op: %+v", st2)
			}

			// The compacted catalog survives a close/reopen bit-for-bit.
			if err := db.Close(); err != nil {
				t.Fatal(err)
			}
			db2 := buildReopen(t, dir, engine, opts...)
			reopened := captureCompactionStreams(t, db2, corpus)
			compareCompactionStreams(t, "reopened", reopened, before)
		})
	}
}

// buildReopen reopens an existing dataset directory.
func buildReopen(t *testing.T, dir, engine string, opts ...decibel.Option) *decibel.DB {
	t.Helper()
	db, err := decibel.Open(dir, append([]decibel.Option{decibel.WithEngine(engine)}, opts...)...)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { db.Close() })
	return db
}
