package decibel_test

// Context-cancellation contract tests: every facade scan has a Context
// form that aborts within one record of cancellation and reports
// ctx.Err(), and the write path (CommitContext, session operations)
// refuses to start work under a canceled context.

import (
	"context"
	"errors"
	"testing"

	"decibel"
)

// openLarge seeds one table with n committed records on master.
func openLarge(t *testing.T, engine string, n int64) (*decibel.DB, *decibel.Table) {
	t.Helper()
	db, err := decibel.Open(t.TempDir(), decibel.WithEngine(engine))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { db.Close() })
	schema := decibel.NewSchema().Int64("id").Int64("v").MustBuild()
	tbl, err := db.CreateTable("r", schema)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := db.Init("init"); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Commit("master", func(tx *decibel.Tx) error {
		for pk := int64(1); pk <= n; pk++ {
			rec := decibel.NewRecord(schema)
			rec.SetPK(pk)
			rec.Set(1, pk)
			if err := tx.Insert("r", rec); err != nil {
				return err
			}
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	return db, tbl
}

// TestRowsContextCancelMidScan cancels the context from inside the
// iteration and checks the scan stops promptly with ctx.Err(), on every
// engine.
func TestRowsContextCancelMidScan(t *testing.T) {
	const total = 5000
	for _, engine := range facadeEngines {
		t.Run(engine, func(t *testing.T) {
			db, _ := openLarge(t, engine, total)
			ctx, cancel := context.WithCancel(context.Background())
			defer cancel()
			seen := 0
			rows, scanErr := db.RowsContext(ctx, "r", "master")
			for range rows {
				seen++
				if seen == 10 {
					cancel() // cancel mid-scan; the iterator must stop on its own
				}
			}
			if err := scanErr(); !errors.Is(err, context.Canceled) {
				t.Fatalf("scan error = %v, want context.Canceled", err)
			}
			// The wrapped callback stops within one record of cancellation.
			if seen > 11 {
				t.Fatalf("scan yielded %d records after cancellation, want <= 11", seen)
			}
		})
	}
}

// TestDiffContextCancel checks cancellation propagates through the diff
// iterator as well.
func TestDiffContextCancel(t *testing.T) {
	db, _ := openLarge(t, "hybrid", 2000)
	if _, err := db.Branch("master", "dev"); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Commit("dev", func(tx *decibel.Tx) error {
		schema := decibel.NewSchema().Int64("id").Int64("v").MustBuild()
		for pk := int64(1); pk <= 1000; pk++ {
			rec := decibel.NewRecord(schema)
			rec.SetPK(pk)
			rec.Set(1, -pk)
			if err := tx.Insert("r", rec); err != nil {
				return err
			}
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	seen := 0
	diff, diffErr := db.DiffContext(ctx, "r", "dev", "master")
	for range diff {
		seen++
		if seen == 5 {
			cancel()
		}
	}
	if err := diffErr(); !errors.Is(err, context.Canceled) {
		t.Fatalf("diff error = %v, want context.Canceled", err)
	}
	if seen > 6 {
		t.Fatalf("diff yielded %d records after cancellation, want <= 6", seen)
	}
}

// TestPreCanceledContext: operations under an already-canceled context
// fail fast with ctx.Err() without doing any work.
func TestPreCanceledContext(t *testing.T) {
	db, tbl := openLarge(t, "hybrid", 10)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()

	if _, err := decibel.OpenContext(ctx, t.TempDir()); !errors.Is(err, context.Canceled) {
		t.Fatalf("OpenContext: got %v, want context.Canceled", err)
	}
	if _, err := db.CommitContext(ctx, "master", func(*decibel.Tx) error {
		t.Fatal("callback ran under a canceled context")
		return nil
	}); !errors.Is(err, context.Canceled) {
		t.Fatalf("CommitContext: got %v, want context.Canceled", err)
	}
	rows, scanErr := db.RowsContext(ctx, "r", "master")
	for range rows {
		t.Fatal("canceled scan yielded a record")
	}
	if err := scanErr(); !errors.Is(err, context.Canceled) {
		t.Fatalf("RowsContext: got %v, want context.Canceled", err)
	}
	master, err := db.BranchNamed("master")
	if err != nil {
		t.Fatal(err)
	}
	at, atErr := tbl.RowsMultiContext(ctx, []decibel.BranchID{master.ID})
	for range at {
		t.Fatal("canceled multi scan yielded a record")
	}
	if err := atErr(); !errors.Is(err, context.Canceled) {
		t.Fatalf("RowsMultiContext: got %v, want context.Canceled", err)
	}

	s, err := db.NewSession()
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	rec := decibel.NewRecord(tbl.Schema())
	rec.SetPK(99)
	if err := s.InsertContext(ctx, "r", rec); !errors.Is(err, context.Canceled) {
		t.Fatalf("Session.InsertContext: got %v, want context.Canceled", err)
	}
	if err := s.ScanContext(ctx, "r", func(*decibel.Record) bool { return true }); !errors.Is(err, context.Canceled) {
		t.Fatalf("Session.ScanContext: got %v, want context.Canceled", err)
	}
	if _, err := s.CommitWorkContext(ctx, "msg"); !errors.Is(err, context.Canceled) {
		t.Fatalf("Session.CommitWorkContext: got %v, want context.Canceled", err)
	}
}

// TestCheckoutAt positions a session at historical commits by
// branch-name-plus-sequence, the CLI's "checkout <branch>@<n>".
func TestCheckoutAt(t *testing.T) {
	db, _ := openLarge(t, "hybrid", 3) // master@1 = three records
	schema := decibel.NewSchema().Int64("id").Int64("v").MustBuild()
	if _, err := db.Commit("master", func(tx *decibel.Tx) error {
		rec := decibel.NewRecord(schema)
		rec.SetPK(4)
		rec.Set(1, 4)
		return tx.Insert("r", rec) // master@2 = four records
	}); err != nil {
		t.Fatal(err)
	}

	s, err := db.NewSession()
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	countAt := func(seq int) int {
		t.Helper()
		if err := s.CheckoutAt("master", seq); err != nil {
			t.Fatal(err)
		}
		n := 0
		if err := s.Scan("r", func(*decibel.Record) bool { n++; return true }); err != nil {
			t.Fatal(err)
		}
		return n
	}
	if n := countAt(0); n != 0 {
		t.Fatalf("master@0 has %d records, want 0 (init commit)", n)
	}
	if n := countAt(1); n != 3 {
		t.Fatalf("master@1 has %d records, want 3", n)
	}
	if n := countAt(2); n != 4 {
		t.Fatalf("master@2 has %d records, want 4", n)
	}

	// Historical checkouts are read-only...
	rec := decibel.NewRecord(schema)
	rec.SetPK(100)
	if err := s.CheckoutAt("master", 1); err != nil {
		t.Fatal(err)
	}
	if err := s.Insert("r", rec); !errors.Is(err, decibel.ErrNotAtHead) && !errors.Is(err, decibel.ErrDetachedHead) {
		t.Fatalf("write at historical commit: got %v, want ErrNotAtHead/ErrDetachedHead", err)
	}
	// ...but checking out the newest commit re-attaches to the head.
	if err := s.CheckoutAt("master", 2); err != nil {
		t.Fatal(err)
	}
	if err := s.Insert("r", rec); err != nil {
		t.Fatalf("write after re-attaching at head: %v", err)
	}

	if err := s.CheckoutAt("nope", 0); !errors.Is(err, decibel.ErrNoSuchBranch) {
		t.Fatalf("CheckoutAt missing branch: got %v, want ErrNoSuchBranch", err)
	}
	if err := s.CheckoutAt("master", 99); !errors.Is(err, decibel.ErrNoSuchCommit) {
		t.Fatalf("CheckoutAt missing seq: got %v, want ErrNoSuchCommit", err)
	}
}
