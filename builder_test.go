package decibel_test

// Query-builder contract tests: the four paper query shapes
// (single-version scan, positive diff, version join, HEAD scan) driven
// through db.Query on every registered engine, with typed name-based
// predicates, projections, aggregates, plan-time sentinel errors and
// context cancellation — exercising both the engines' pushdown fast
// paths and the facade surface above them.

import (
	"context"
	"errors"
	"slices"
	"sort"
	"testing"

	"decibel"
)

// queryFixture builds, on the given engine: table "products"
// (id, price float64, qty int32, sku bytes8) with pks 1..10 on master
// (price = pk/2, qty = pk, sku = "sku-<pk>"), committed twice (pks 1..5
// at commit seq 1, all ten at seq 2); branch "dev" where pk 3 has
// price 99.5, pk 10 is deleted and pk 11 is added.
func queryFixture(t *testing.T, engine string) *decibel.DB {
	t.Helper()
	db, err := decibel.Open(t.TempDir(), decibel.WithEngine(engine),
		decibel.WithPageSize(64<<10), decibel.WithPoolPages(64))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { db.Close() })
	schema := decibel.NewSchema().Int64("id").Float64("price").Int32("qty").Bytes("sku", 8).MustBuild()
	if _, err := db.CreateTable("products", schema); err != nil {
		t.Fatal(err)
	}
	if _, _, err := db.Init("init"); err != nil {
		t.Fatal(err)
	}
	mk := func(pk int64, price float64) *decibel.Record {
		rec := decibel.NewRecord(schema)
		rec.SetPK(pk)
		rec.SetFloat64(1, price)
		rec.Set(2, pk)
		if err := rec.SetBytes(3, []byte("sku-"+string(rune('0'+pk%10)))); err != nil {
			t.Fatal(err)
		}
		return rec
	}
	commit := func(lo, hi int64) {
		t.Helper()
		if _, err := db.Commit("master", func(tx *decibel.Tx) error {
			recs := make([]*decibel.Record, 0, hi-lo+1)
			for pk := lo; pk <= hi; pk++ {
				recs = append(recs, mk(pk, float64(pk)/2))
			}
			return tx.InsertBatch("products", recs)
		}); err != nil {
			t.Fatal(err)
		}
	}
	commit(1, 5)  // seq 1
	commit(6, 10) // seq 2
	if _, err := db.Branch("master", "dev"); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Commit("dev", func(tx *decibel.Tx) error {
		if err := tx.Insert("products", mk(3, 99.5)); err != nil {
			return err
		}
		if err := tx.Delete("products", 10); err != nil {
			return err
		}
		return tx.Insert("products", mk(11, 5.5))
	}); err != nil {
		t.Fatal(err)
	}
	return db
}

func collectPKs(t *testing.T, rows func(func(*decibel.Record) bool), qErr func() error) []int64 {
	t.Helper()
	var pks []int64
	for rec := range rows {
		pks = append(pks, rec.PK())
	}
	if err := qErr(); err != nil {
		t.Fatal(err)
	}
	sort.Slice(pks, func(i, j int) bool { return pks[i] < pks[j] })
	return pks
}

func TestQueryBuilderSingleVersionScan(t *testing.T) {
	for _, engine := range facadeEngines {
		t.Run(engine, func(t *testing.T) {
			db := queryFixture(t, engine)

			// Full scan of master.
			rows, qErr := db.Query("products").On("master").Rows()
			if got := collectPKs(t, rows, qErr); len(got) != 10 {
				t.Fatalf("master rows = %v", got)
			}

			// Typed predicate pushdown: price < 2.0 matches pks 1..3.
			rows, qErr = db.Query("products").On("master").
				Where(decibel.Col("price").Lt(2.0)).Rows()
			if got := collectPKs(t, rows, qErr); !slices.Equal(got, []int64{1, 2, 3}) {
				t.Fatalf("price<2 rows = %v", got)
			}

			// Conjunction + integer column.
			rows, qErr = db.Query("products").On("dev").
				Where(decibel.Col("qty").Ge(3).And(decibel.Col("qty").Le(4))).Rows()
			if got := collectPKs(t, rows, qErr); !slices.Equal(got, []int64{3, 4}) {
				t.Fatalf("qty in [3,4] rows = %v", got)
			}

			// Bytes prefix predicate.
			n, err := db.Query("products").On("master").
				Where(decibel.Col("sku").HasPrefix("sku-")).Count()
			if err != nil || n != 10 {
				t.Fatalf("prefix count = %d (%v)", n, err)
			}

			// Projection keeps the pk and narrows the schema.
			rows, qErr = db.Query("products").On("dev").
				Where(decibel.Col("price").Eq(99.5)).
				Select("price").Rows()
			var got []*decibel.Record
			for rec := range rows {
				got = append(got, rec.Clone())
			}
			if err := qErr(); err != nil {
				t.Fatal(err)
			}
			if len(got) != 1 || got[0].PK() != 3 {
				t.Fatalf("projected rows = %v", got)
			}
			if nc := got[0].Schema().NumColumns(); nc != 2 {
				t.Fatalf("projected schema has %d columns, want 2", nc)
			}
			if v := got[0].GetFloat64(1); v != 99.5 {
				t.Fatalf("projected price = %g", v)
			}

			// Historical read: master@1 has only pks 1..5.
			rows, qErr = db.Query("products").On("master").At(1).Rows()
			if got := collectPKs(t, rows, qErr); !slices.Equal(got, []int64{1, 2, 3, 4, 5}) {
				t.Fatalf("master@1 rows = %v", got)
			}
		})
	}
}

func TestQueryBuilderDiffAndJoin(t *testing.T) {
	for _, engine := range facadeEngines {
		t.Run(engine, func(t *testing.T) {
			db := queryFixture(t, engine)

			// Positive diff dev minus master: updated 3, added 11.
			rows, qErr := db.Query("products").Diff("dev", "master")
			if got := collectPKs(t, rows, qErr); !slices.Equal(got, []int64{3, 11}) {
				t.Fatalf("dev-not-master = %v", got)
			}
			// Reverse side: stale copy of 3, deleted 10.
			rows, qErr = db.Query("products").Diff("master", "dev")
			if got := collectPKs(t, rows, qErr); !slices.Equal(got, []int64{3, 10}) {
				t.Fatalf("master-not-dev = %v", got)
			}
			// Diff with predicate on the emitted side.
			rows, qErr = db.Query("products").
				Where(decibel.Col("id").Gt(5)).Diff("dev", "master")
			if got := collectPKs(t, rows, qErr); !slices.Equal(got, []int64{11}) {
				t.Fatalf("filtered diff = %v", got)
			}

			// Version join master ⋈ dev: shared keys 1..9.
			pairs, jErr := db.Query("products").Join("master", "dev")
			n := 0
			for l, r := range pairs {
				if l.PK() != r.PK() {
					t.Fatalf("join key mismatch: %d vs %d", l.PK(), r.PK())
				}
				if l.PK() == 3 {
					if l.GetFloat64(1) != 1.5 || r.GetFloat64(1) != 99.5 {
						t.Fatalf("join sides swapped: %g / %g", l.GetFloat64(1), r.GetFloat64(1))
					}
				}
				n++
			}
			if err := jErr(); err != nil {
				t.Fatal(err)
			}
			if n != 9 {
				t.Fatalf("join rows = %d, want 9", n)
			}

			// Join with a selective left predicate.
			pairs, jErr = db.Query("products").
				Where(decibel.Col("qty").Eq(5)).Join("master", "dev")
			n = 0
			for range pairs {
				n++
			}
			if err := jErr(); err != nil {
				t.Fatal(err)
			}
			if n != 1 {
				t.Fatalf("selective join rows = %d", n)
			}
		})
	}
}

func TestQueryBuilderMultiBranch(t *testing.T) {
	for _, engine := range facadeEngines {
		t.Run(engine, func(t *testing.T) {
			db := queryFixture(t, engine)

			// HEAD scan over every branch with membership names.
			perBranch := map[string]int{}
			rows := 0
			annotated, qErr := db.Query("products").Heads().Annotated()
			for rec, branches := range annotated {
				if rec == nil || len(branches) == 0 {
					t.Fatal("record with no active branches")
				}
				for _, b := range branches {
					perBranch[b]++
				}
				rows++
			}
			if err := qErr(); err != nil {
				t.Fatal(err)
			}
			if perBranch["master"] != 10 || perBranch["dev"] != 10 {
				t.Fatalf("per-branch counts = %v", perBranch)
			}
			if rows >= 20 {
				t.Fatalf("rows = %d, expected shared records emitted once", rows)
			}

			// Explicit branch list with a predicate: price < 2 on either
			// head. dev re-priced pk 3 to 99.5, so its copy shows for
			// master only; pks 1,2 are shared.
			seen := map[int64][]string{}
			annotated, qErr = db.Query("products").On("master", "dev").
				Where(decibel.Col("price").Lt(2.0)).Annotated()
			for rec, branches := range annotated {
				seen[rec.PK()] = append([]string(nil), branches...)
			}
			if err := qErr(); err != nil {
				t.Fatal(err)
			}
			if len(seen) != 3 {
				t.Fatalf("matched records = %v", seen)
			}
			if !slices.Equal(seen[1], []string{"master", "dev"}) {
				t.Fatalf("pk 1 branches = %v", seen[1])
			}
			if !slices.Equal(seen[3], []string{"master"}) {
				t.Fatalf("pk 3 branches = %v", seen[3])
			}

			// Rows() over a multi-branch scan yields each record once.
			plain, pErr := db.Query("products").Heads().Rows()
			n := 0
			for range plain {
				n++
			}
			if err := pErr(); err != nil {
				t.Fatal(err)
			}
			if n != rows {
				t.Fatalf("Rows over heads = %d, Annotated = %d", n, rows)
			}
		})
	}
}

func TestQueryBuilderAggregates(t *testing.T) {
	for _, engine := range facadeEngines {
		t.Run(engine, func(t *testing.T) {
			db := queryFixture(t, engine)

			n, err := db.Query("products").On("master").
				Where(decibel.Col("qty").Le(5)).Count()
			if err != nil || n != 5 {
				t.Fatalf("count = %d (%v)", n, err)
			}
			// Sum of qty (int32) 1..10 = 55.
			s, err := db.Query("products").On("master").Sum("qty")
			if err != nil || s != 55 {
				t.Fatalf("sum = %g (%v)", s, err)
			}
			// Max price on dev is the re-priced record.
			mx, err := db.Query("products").On("dev").Max("price")
			if err != nil || mx != 99.5 {
				t.Fatalf("max = %g (%v)", mx, err)
			}
			mn, err := db.Query("products").On("dev").Min("price")
			if err != nil || mn != 0.5 {
				t.Fatalf("min = %g (%v)", mn, err)
			}
			// Multi-branch count: distinct live records across heads.
			heads, err := db.Query("products").Heads().Count()
			if err != nil {
				t.Fatal(err)
			}
			if heads < 11 || heads >= 20 {
				t.Fatalf("heads count = %d", heads)
			}
			// Min over an empty scan fails with ErrNoRows.
			if _, err := db.Query("products").On("master").
				Where(decibel.Col("price").Gt(1000.0)).Min("price"); !errors.Is(err, decibel.ErrNoRows) {
				t.Fatalf("empty min err = %v", err)
			}
		})
	}
}

func TestQueryBuilderPlanErrors(t *testing.T) {
	db := queryFixture(t, "hybrid")

	check := func(got error, want error, what string) {
		t.Helper()
		if !errors.Is(got, want) {
			t.Fatalf("%s: err = %v, want %v", what, got, want)
		}
	}

	_, err := db.Query("nope").On("master").Count()
	check(err, decibel.ErrNoSuchTable, "unknown table")

	_, err = db.Query("products").On("nope").Count()
	check(err, decibel.ErrNoSuchBranch, "unknown branch")

	_, err = db.Query("products").On("master").
		Where(decibel.Col("nope").Eq(1)).Count()
	check(err, decibel.ErrNoSuchColumn, "unknown predicate column")

	_, err = db.Query("products").On("master").
		Where(decibel.Col("price").HasPrefix("x")).Count()
	check(err, decibel.ErrTypeMismatch, "prefix on float column")

	_, err = db.Query("products").On("master").
		Where(decibel.Col("sku").Eq(7)).Count()
	check(err, decibel.ErrTypeMismatch, "int against bytes column")

	_, err = db.Query("products").On("master").Select("ghost").Count()
	check(err, decibel.ErrNoSuchColumn, "unknown projected column")

	_, err = db.Query("products").On("master").Sum("sku")
	check(err, decibel.ErrTypeMismatch, "sum over bytes column")

	_, err = db.Query("products").On("master").At(99).Count()
	check(err, decibel.ErrNoSuchCommit, "missing commit seq")

	_, err = db.Query("products").Heads().At(1).Count()
	check(err, decibel.ErrBadQuery, "At with Heads")

	_, err = db.Query("products").Count()
	check(err, decibel.ErrBadQuery, "no branches")

	_, qErr := db.Query("products").On("master").Heads().Rows()
	check(qErr(), decibel.ErrBadQuery, "On combined with Heads")

	_, qErr = db.Query("products").On("master").Diff("master", "dev")
	check(qErr(), decibel.ErrBadQuery, "Diff combined with On")

	_, err = db.Query("products").On("master", "dev").At(1).Count()
	check(err, decibel.ErrBadQuery, "At with two branches")
}

func TestQueryBuilderContextCancel(t *testing.T) {
	db := queryFixture(t, "hybrid")

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	rows, qErr := db.Query("products").On("master").RowsContext(ctx)
	n := 0
	for range rows {
		n++
		if n == 2 {
			cancel()
		}
	}
	if err := qErr(); !errors.Is(err, context.Canceled) {
		t.Fatalf("canceled scan err = %v", err)
	}
	if n > 3 {
		t.Fatalf("scan continued after cancel: %d rows", n)
	}

	pre, preCancel := context.WithCancel(context.Background())
	preCancel()
	if _, err := db.Query("products").Heads().CountContext(pre); !errors.Is(err, context.Canceled) {
		t.Fatalf("pre-canceled count err = %v", err)
	}
}

func TestMergeContextCancel(t *testing.T) {
	db := queryFixture(t, "hybrid")
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, _, err := db.MergeContext(ctx, "master", "dev"); !errors.Is(err, context.Canceled) {
		t.Fatalf("pre-canceled merge err = %v", err)
	}
	// The canceled merge must not have left master's lock held.
	if _, _, err := db.Merge("master", "dev"); err != nil {
		t.Fatalf("merge after canceled merge: %v", err)
	}
}

func TestInsertBatchRollback(t *testing.T) {
	for _, engine := range facadeEngines {
		t.Run(engine, func(t *testing.T) {
			db := queryFixture(t, engine)
			boom := errors.New("boom")
			_, err := db.Commit("master", func(tx *decibel.Tx) error {
				schema := decibel.NewSchema().Int64("id").Float64("price").Int32("qty").Bytes("sku", 8).MustBuild()
				recs := make([]*decibel.Record, 0, 3)
				for pk := int64(100); pk < 103; pk++ {
					rec := decibel.NewRecord(schema)
					rec.SetPK(pk)
					recs = append(recs, rec)
				}
				if err := tx.InsertBatch("products", recs); err != nil {
					return err
				}
				return boom
			})
			if !errors.Is(err, boom) {
				t.Fatalf("commit err = %v", err)
			}
			n, err := db.Query("products").On("master").
				Where(decibel.Col("id").Ge(100)).Count()
			if err != nil || n != 0 {
				t.Fatalf("rolled-back batch left %d rows (%v)", n, err)
			}
		})
	}
}
