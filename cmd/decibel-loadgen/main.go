// Command decibel-loadgen drives mixed read/commit traffic against a
// decibel serve endpoint and prints a latency summary. The CI smoke
// job runs it against a fresh server and asserts zero errors; -json
// writes the summary as an artifact.
//
// Usage:
//
//	decibel-loadgen -url http://localhost:8527 -clients 32 -duration 5s \
//	    -commit-frac 0.2 -table r -branch master -json latency.json
//
// Exits non-zero when any operation failed, so a smoke run doubles as
// an assertion.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	"decibel/loadgen"
)

func main() {
	var cfg loadgen.Config
	flag.StringVar(&cfg.URL, "url", "http://localhost:8527", "server base URL")
	flag.StringVar(&cfg.Table, "table", "r", "table to read and write")
	flag.StringVar(&cfg.Branch, "branch", "master", "branch all traffic addresses")
	flag.IntVar(&cfg.Clients, "clients", 32, "concurrent clients")
	flag.DurationVar(&cfg.Duration, "duration", 5*time.Second, "run length")
	flag.Float64Var(&cfg.CommitFrac, "commit-frac", 0.2, "fraction of operations that are commits")
	flag.Int64Var(&cfg.Keys, "keys", 10000, "primary keys drawn from [0, keys)")
	flag.IntVar(&cfg.BatchSize, "batch", 4, "records per commit")
	flag.Int64Var(&cfg.Seed, "seed", 1, "base RNG seed")
	jsonPath := flag.String("json", "", "write the summary as JSON to this path")
	flag.Parse()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	sum, err := loadgen.Run(ctx, cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "decibel-loadgen:", err)
		os.Exit(1)
	}
	fmt.Print(sum)
	if *jsonPath != "" {
		buf, err := json.MarshalIndent(sum, "", "  ")
		if err == nil {
			err = os.WriteFile(*jsonPath, append(buf, '\n'), 0o644)
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, "decibel-loadgen: writing summary:", err)
			os.Exit(1)
		}
	}
	if sum.Errors > 0 {
		os.Exit(1)
	}
}
