// Command decibel is a small CLI over a Decibel dataset: init, branch,
// commit, insert, delete, scan, diff, merge and log against a dataset
// directory, with a choice of storage engine.
//
// Usage:
//
//	decibel -dir data -engine hybrid init col1,col2,...
//	decibel -dir data insert <branch> <pk> <v1> <v2> ...
//	decibel -dir data delete <branch> <pk>
//	decibel -dir data commit <branch> [message]
//	decibel -dir data branch <name> <from-branch>
//	decibel -dir data scan <branch>
//	decibel -dir data diff <branchA> <branchB>
//	decibel -dir data merge <into> <other> [two|three] [first|second]
//	decibel -dir data log
//	decibel -dir data stats
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"decibel/internal/core"
	"decibel/internal/hy"
	"decibel/internal/record"
	"decibel/internal/tf"
	"decibel/internal/vf"
	"decibel/internal/vgraph"
)

func main() {
	dir := flag.String("dir", "decibel-data", "dataset directory")
	engine := flag.String("engine", "hybrid", "storage engine: tuple-first | version-first | hybrid")
	table := flag.String("table", "r", "table name")
	flag.Parse()
	if flag.NArg() < 1 {
		fmt.Fprintln(os.Stderr, "usage: decibel [flags] <command> [args]  (see -h)")
		os.Exit(2)
	}
	if err := run(*dir, *engine, *table, flag.Args()); err != nil {
		fmt.Fprintln(os.Stderr, "decibel:", err)
		os.Exit(1)
	}
}

func factoryFor(name string) (core.Factory, error) {
	switch name {
	case "tuple-first", "tf":
		return tf.Factory, nil
	case "version-first", "vf":
		return vf.Factory, nil
	case "hybrid", "hy":
		return hy.Factory, nil
	default:
		return nil, fmt.Errorf("unknown engine %q", name)
	}
}

func run(dir, engine, table string, args []string) error {
	factory, err := factoryFor(engine)
	if err != nil {
		return err
	}
	db, err := core.Open(dir, factory, core.Options{})
	if err != nil {
		return err
	}
	defer db.Close()
	cmd, rest := args[0], args[1:]

	branchID := func(name string) (vgraph.BranchID, error) {
		b, ok := db.Graph().BranchByName(name)
		if !ok {
			return 0, fmt.Errorf("branch %q does not exist", name)
		}
		return b.ID, nil
	}

	switch cmd {
	case "init":
		cols := []record.Column{{Name: "id", Type: record.Int64}}
		if len(rest) > 0 {
			for _, c := range strings.Split(rest[0], ",") {
				cols = append(cols, record.Column{Name: c, Type: record.Int64})
			}
		} else {
			cols = append(cols, record.Column{Name: "value", Type: record.Int64})
		}
		schema, err := record.NewSchema(cols...)
		if err != nil {
			return err
		}
		if _, err := db.CreateTable(table, schema); err != nil {
			return err
		}
		master, c0, err := db.Init("init")
		if err != nil {
			return err
		}
		fmt.Printf("initialized %s: branch %q, commit %d\n", dir, master.Name, c0.ID)
		return nil

	case "insert":
		if len(rest) < 2 {
			return fmt.Errorf("insert <branch> <pk> <values...>")
		}
		bid, err := branchID(rest[0])
		if err != nil {
			return err
		}
		t, ok := db.Table(table)
		if !ok {
			return fmt.Errorf("table %q does not exist", table)
		}
		rec := record.New(t.Schema())
		for i, v := range rest[1:] {
			if i >= t.Schema().NumColumns() {
				break
			}
			n, err := strconv.ParseInt(v, 10, 64)
			if err != nil {
				return fmt.Errorf("column %d: %w", i, err)
			}
			rec.Set(i, n)
		}
		return t.Insert(bid, rec)

	case "delete":
		if len(rest) != 2 {
			return fmt.Errorf("delete <branch> <pk>")
		}
		bid, err := branchID(rest[0])
		if err != nil {
			return err
		}
		pk, err := strconv.ParseInt(rest[1], 10, 64)
		if err != nil {
			return err
		}
		t, _ := db.Table(table)
		return t.Delete(bid, pk)

	case "commit":
		if len(rest) < 1 {
			return fmt.Errorf("commit <branch> [message]")
		}
		bid, err := branchID(rest[0])
		if err != nil {
			return err
		}
		msg := strings.Join(rest[1:], " ")
		c, err := db.Commit(bid, msg)
		if err != nil {
			return err
		}
		fmt.Printf("commit %d on %s\n", c.ID, rest[0])
		return nil

	case "branch":
		if len(rest) != 2 {
			return fmt.Errorf("branch <name> <from-branch>")
		}
		b, err := db.BranchFromHead(rest[0], rest[1])
		if err != nil {
			return err
		}
		fmt.Printf("branch %q created from %q (head commit %d)\n", b.Name, rest[1], b.From)
		return nil

	case "scan":
		if len(rest) != 1 {
			return fmt.Errorf("scan <branch>")
		}
		bid, err := branchID(rest[0])
		if err != nil {
			return err
		}
		t, _ := db.Table(table)
		n := 0
		err = t.Scan(bid, func(rec *record.Record) bool {
			fmt.Println(rec.String())
			n++
			return true
		})
		fmt.Printf("%d records\n", n)
		return err

	case "diff":
		if len(rest) != 2 {
			return fmt.Errorf("diff <branchA> <branchB>")
		}
		a, err := branchID(rest[0])
		if err != nil {
			return err
		}
		bb, err := branchID(rest[1])
		if err != nil {
			return err
		}
		t, _ := db.Table(table)
		return t.Diff(a, bb, func(rec *record.Record, inA bool) bool {
			side := "+B"
			if inA {
				side = "+A"
			}
			fmt.Printf("%s %s\n", side, rec.String())
			return true
		})

	case "merge":
		if len(rest) < 2 {
			return fmt.Errorf("merge <into> <other> [two|three] [first|second]")
		}
		into, err := branchID(rest[0])
		if err != nil {
			return err
		}
		other, err := branchID(rest[1])
		if err != nil {
			return err
		}
		kind := core.ThreeWay
		if len(rest) > 2 && rest[2] == "two" {
			kind = core.TwoWay
		}
		precFirst := true
		if len(rest) > 3 && rest[3] == "second" {
			precFirst = false
		}
		mc, st, err := db.Merge(into, other, "merge "+rest[1], kind, precFirst)
		if err != nil {
			return err
		}
		fmt.Printf("merge commit %d: %d conflicts, %d records changed in %s, %d in %s\n",
			mc.ID, st.Conflicts, st.ChangedA, rest[0], st.ChangedB, rest[1])
		return nil

	case "log":
		for _, b := range db.Graph().Branches() {
			status := "active"
			if !b.Active {
				status = "retired"
			}
			fmt.Printf("branch %-12s head=commit %-4d (%s)\n", b.Name, b.Head, status)
		}
		fmt.Printf("%d commits total\n", db.Graph().NumCommits())
		return nil

	case "stats":
		st, err := db.Stats()
		if err != nil {
			return err
		}
		fmt.Printf("records:        %d (%d live across heads)\n", st.Records, st.LiveRecords)
		fmt.Printf("data bytes:     %d\n", st.DataBytes)
		fmt.Printf("index bytes:    %d\n", st.IndexBytes)
		fmt.Printf("history bytes:  %d\n", st.CommitBytes)
		fmt.Printf("segments:       %d\n", st.SegmentCount)
		return nil

	default:
		return fmt.Errorf("unknown command %q", cmd)
	}
}
