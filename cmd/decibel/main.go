// Command decibel is a small CLI over a Decibel dataset: init, branch,
// commit, insert, delete, scan, checkout, diff, merge and log against a
// dataset directory, with a choice of storage engine resolved through
// the engine registry. Branches and historical versions are always
// addressed by name — the CLI is written entirely against the
// name-based facade API.
//
// Usage:
//
//	decibel -dir data -engine hybrid init price:float64,sku:bytes16
//	decibel -dir data insert <branch> <pk> <v1> <v2> ...
//	decibel -dir data load <branch> <pk:v1:v2...> <pk:v1:v2...> ...
//	decibel -dir data delete <branch> <pk>
//	decibel -dir data commit <branch> [message]
//	decibel -dir data branch <name> <from-branch>
//	decibel -dir data scan <branch>
//	decibel -dir data checkout <branch>[@<n>]
//	decibel -dir data diff <branchA> <branchB>
//	decibel -dir data merge <into> <other> [two|three] [first|second]
//	decibel -dir data alter <branch> add price:float64=9.5
//	decibel -dir data alter <branch> drop <col>
//	decibel -dir data select [table] -branch a,b -where 'price<9.5' -cols sku,price
//	decibel -dir data select [table] -diff dev,master -where 'price<9.5' -order price:desc -limit 10
//	decibel -dir data log [branch]
//	decibel -dir data stats [table]
//	decibel help
//
// Column types in init are name:type pairs; type is one of int32,
// int64, float64 or bytes<N> (a byte string of up to N bytes) and
// defaults to int64. checkout <branch>@<n> reads the n-th commit made
// on the branch (zero-based), the session time-travel of Section 2.2.3.
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"decibel"
)

const usageText = `usage: decibel [flags] <command> [args]

commands:
  init <col:type,...>        create the table and the master branch
                             (types: int32 | int64 | float64 | bytes<N>;
                             default int64; the int64 "id" key is implicit)
  insert <branch> <pk> <v...>  upsert a record into a branch, committed
                             as one transaction on the branch head
  load <branch> <pk:v:...> ...  batch-insert one record per argument
                             (colon-separated values), one transaction
  delete <branch> <pk>       remove a key from a branch, committed
  commit <branch> [message]  snapshot the branch head as a new version
  branch <name> <from>       create branch <name> from the head of <from>
  scan <branch>              print the records live at a branch head
  checkout <branch>[@<n>]    print the records of the n-th commit made on
                             the branch (zero-based; no @<n> reads the head)
  diff <branchA> <branchB>   print the symmetric difference of two heads
  merge <into> <other> [two|three] [first|second]
                             merge <other> into <into> (default three-way,
                             <into> wins conflicts)
  alter <branch> add <name:type[=default]>
                             add a column on the branch (committed as a
                             schema-change version; existing rows read
                             back the default, no data is rewritten)
  alter <branch> drop <col>  drop a column on the branch (logical: reads
                             of earlier versions still see it)
  select [table]             run a versioned query (defaults to -table):
                               -branch a[,b,...]  branch head(s) to scan
                               -heads             scan every branch head
                               -at <n>            the n-th commit on the branch
                               -diff a,b          records at a's head but not b's
                                                  (-where runs inside the diff scan)
                               -where <expr>      conjuncts joined by &&, each
                                                  col{=|!=|<|<=|>|>=|^=}value
                               -cols a,b          project named columns
                               -order col[:desc]  sort the output by a column
                               -limit <n>         emit at most n rows
                               -count             print the count only
                               -join t:l[=r][@b]  equi-join table t: left col l
                                                  matches t's col r (default l),
                                                  scanning t's branch b (default:
                                                  the query's); repeat for N-way
                               -declared-order    pin joins to the declared order
                                                  (skip greedy zone-map ordering)
                               -group-by a[,b]    group rows (or joined tuples)
                                                  by the named columns
                               -agg <list>        grouped aggregates, e.g.
                                                  count,sum:price,avg:price
  compact                    run one compaction pass: merge runs of small
                             frozen segments, drop unreachable tombstones,
                             re-encode frozen segments as compressed pages
  serve                      serve the dataset over HTTP/JSON until
                             SIGINT/SIGTERM, then drain and close:
                               -addr <host:port>  listen address
                                                  (default localhost:8527)
  log [branch]               list branches and commit counts; with a
                             branch, its commits (seq, id, time, message)
  stats [table]              storage statistics; with a table, its
                             per-segment summaries (encoding, raw vs
                             on-disk bytes, tombstones, zone maps)
  help                       print this help

flags:
  -dir <path>     dataset directory (default "decibel-data")
  -engine <name>  storage engine (default "` + decibel.DefaultEngine + `")
  -table <name>   table name (default "r")
`

func main() {
	dir := flag.String("dir", "decibel-data", "dataset directory")
	engine := flag.String("engine", decibel.DefaultEngine,
		"storage engine: "+strings.Join(decibel.Engines(), " | "))
	table := flag.String("table", "r", "table name")
	flag.Usage = func() { fmt.Fprint(os.Stderr, usageText) }
	flag.Parse()
	if flag.NArg() < 1 {
		flag.Usage()
		os.Exit(2)
	}
	if flag.Arg(0) == "help" {
		fmt.Print(usageText)
		return
	}
	if err := run(*dir, *engine, *table, flag.Args()); err != nil {
		fmt.Fprintln(os.Stderr, "decibel:", err)
		os.Exit(1)
	}
}

// parseSchema turns "price:float64,sku:bytes16,qty" into a schema with
// the implicit int64 "id" primary key in front (an explicit leading
// "id" or "id:int64" is accepted and folded into it).
func parseSchema(spec string) (*decibel.Schema, error) {
	b := decibel.NewSchema().Int64("id")
	for i, part := range strings.Split(spec, ",") {
		name, typ, _ := strings.Cut(strings.TrimSpace(part), ":")
		if i == 0 && name == "id" && (typ == "" || typ == "int64") {
			continue
		}
		switch {
		case typ == "" || typ == "int64":
			b = b.Int64(name)
		case typ == "int32":
			b = b.Int32(name)
		case typ == "float64":
			b = b.Float64(name)
		case strings.HasPrefix(typ, "bytes"):
			size, err := strconv.Atoi(typ[len("bytes"):])
			if err != nil {
				return nil, fmt.Errorf("column %q: bytes type needs a size, e.g. bytes16", name)
			}
			b = b.Bytes(name, size)
		default:
			return nil, fmt.Errorf("column %q: unknown type %q (want int32|int64|float64|bytes<N>)", name, typ)
		}
	}
	return b.Build()
}

// parseColumn turns one "name:type" spec (same grammar as init) into a
// column descriptor for alter add.
func parseColumn(spec string) (decibel.Column, error) {
	name, typ, _ := strings.Cut(strings.TrimSpace(spec), ":")
	if name == "" {
		return decibel.Column{}, fmt.Errorf("alter add: empty column name")
	}
	switch {
	case typ == "" || typ == "int64":
		return decibel.Int64Column(name), nil
	case typ == "int32":
		return decibel.Int32Column(name), nil
	case typ == "float64":
		return decibel.Float64Column(name), nil
	case strings.HasPrefix(typ, "bytes"):
		size, err := strconv.Atoi(typ[len("bytes"):])
		if err != nil {
			return decibel.Column{}, fmt.Errorf("column %q: bytes type needs a size, e.g. bytes16", name)
		}
		return decibel.BytesColumn(name, size), nil
	default:
		return decibel.Column{}, fmt.Errorf("column %q: unknown type %q (want int32|int64|float64|bytes<N>)", name, typ)
	}
}

// parseColumnValue converts a textual default to the Go type the
// column expects.
func parseColumnValue(col decibel.Column, raw string) (any, error) {
	switch col.Type {
	case decibel.Float64:
		f, err := strconv.ParseFloat(raw, 64)
		if err != nil {
			return nil, fmt.Errorf("default for %q: %w", col.Name, err)
		}
		return f, nil
	case decibel.Bytes:
		return raw, nil
	default:
		n, err := strconv.ParseInt(raw, 10, 64)
		if err != nil {
			return nil, fmt.Errorf("default for %q: %w", col.Name, err)
		}
		return n, nil
	}
}

// setColumn parses v according to the type of column i and stores it
// into rec.
func setColumn(rec *decibel.Record, schema *decibel.Schema, i int, v string) error {
	switch c := schema.Column(i); c.Type {
	case decibel.Float64:
		f, err := strconv.ParseFloat(v, 64)
		if err != nil {
			return fmt.Errorf("column %q: %w", c.Name, err)
		}
		rec.SetFloat64(i, f)
	case decibel.Bytes:
		if err := rec.SetBytes(i, []byte(v)); err != nil {
			return err
		}
	default:
		n, err := strconv.ParseInt(v, 10, 64)
		if err != nil {
			return fmt.Errorf("column %q: %w", c.Name, err)
		}
		rec.Set(i, n)
	}
	return nil
}

func run(dir, engine, table string, args []string) error {
	opts := []decibel.Option{decibel.WithEngine(engine)}
	// compact runs a pass on demand; serve exposes POST /v1/compact.
	// Both need the subsystem enabled in manual mode.
	if args[0] == "compact" || args[0] == "serve" {
		opts = append(opts, decibel.WithCompaction("manual"))
	}
	db, err := decibel.Open(dir, opts...)
	if err != nil {
		return err
	}
	defer db.Close()
	cmd, rest := args[0], args[1:]

	switch cmd {
	case "init":
		spec := "value"
		if len(rest) > 0 {
			spec = rest[0]
		}
		s, err := parseSchema(spec)
		if err != nil {
			return err
		}
		if _, err := db.CreateTable(table, s); err != nil {
			return err
		}
		master, c0, err := db.Init("init")
		if err != nil {
			return err
		}
		fmt.Printf("initialized %s: branch %q, commit %d\n", dir, master.Name, c0.ID)
		return nil

	case "insert":
		if len(rest) < 2 {
			return fmt.Errorf("insert <branch> <pk> <values...>")
		}
		t, err := db.TableByName(table)
		if err != nil {
			return err
		}
		rec := decibel.NewRecord(t.Schema())
		for i, v := range rest[1:] {
			if i >= t.Schema().NumColumns() {
				break
			}
			if err := setColumn(rec, t.Schema(), i, v); err != nil {
				return err
			}
		}
		c, err := db.Commit(rest[0], func(tx *decibel.Tx) error {
			tx.SetMessage("insert pk " + rest[1])
			return tx.Insert(table, rec)
		})
		if err != nil {
			return err
		}
		fmt.Printf("commit %d on %s\n", c.ID, rest[0])
		return nil

	case "load":
		if len(rest) < 2 {
			return fmt.Errorf("load <branch> <pk:v:...> ...")
		}
		t, err := db.TableByName(table)
		if err != nil {
			return err
		}
		recs := make([]*decibel.Record, 0, len(rest)-1)
		for _, spec := range rest[1:] {
			rec := decibel.NewRecord(t.Schema())
			for i, v := range strings.Split(spec, ":") {
				if i >= t.Schema().NumColumns() {
					break
				}
				if err := setColumn(rec, t.Schema(), i, v); err != nil {
					return err
				}
			}
			recs = append(recs, rec)
		}
		c, err := db.Commit(rest[0], func(tx *decibel.Tx) error {
			tx.SetMessage(fmt.Sprintf("load %d records", len(recs)))
			return tx.InsertBatch(table, recs)
		})
		if err != nil {
			return err
		}
		fmt.Printf("commit %d on %s (%d records)\n", c.ID, rest[0], len(recs))
		return nil

	case "delete":
		if len(rest) != 2 {
			return fmt.Errorf("delete <branch> <pk>")
		}
		pk, err := strconv.ParseInt(rest[1], 10, 64)
		if err != nil {
			return err
		}
		c, err := db.Commit(rest[0], func(tx *decibel.Tx) error {
			tx.SetMessage("delete pk " + rest[1])
			return tx.Delete(table, pk)
		})
		if err != nil {
			return err
		}
		fmt.Printf("commit %d on %s\n", c.ID, rest[0])
		return nil

	case "commit":
		if len(rest) < 1 {
			return fmt.Errorf("commit <branch> [message]")
		}
		branch := rest[0]
		msg := strings.Join(rest[1:], " ")
		c, err := db.Commit(branch, func(tx *decibel.Tx) error {
			if msg != "" {
				tx.SetMessage(msg)
			}
			return nil // snapshot the branch head as-is
		})
		if err != nil {
			return err
		}
		fmt.Printf("commit %d on %s\n", c.ID, branch)
		return nil

	case "branch":
		if len(rest) != 2 {
			return fmt.Errorf("branch <name> <from-branch>")
		}
		b, err := db.Branch(rest[1], rest[0])
		if err != nil {
			return err
		}
		fmt.Printf("branch %q created from %q (head commit %d)\n", b.Name, rest[1], b.From)
		return nil

	case "scan":
		if len(rest) != 1 {
			return fmt.Errorf("scan <branch>")
		}
		n := 0
		rows, scanErr := db.Rows(table, rest[0])
		for rec := range rows {
			fmt.Println(rec.String())
			n++
		}
		if err := scanErr(); err != nil {
			return err
		}
		fmt.Printf("%d records\n", n)
		return nil

	case "checkout":
		if len(rest) != 1 {
			return fmt.Errorf("checkout <branch>[@<n>]")
		}
		branch, at, hasAt := strings.Cut(rest[0], "@")
		s, err := db.NewSession()
		if err != nil {
			return err
		}
		defer s.Close()
		if hasAt {
			seq, err := strconv.Atoi(at)
			if err != nil {
				return fmt.Errorf("checkout %s: %q is not a commit number", rest[0], at)
			}
			if err := s.CheckoutAt(branch, seq); err != nil {
				return err
			}
		} else if err := s.Checkout(branch); err != nil {
			return err
		}
		c := s.Commit()
		fmt.Printf("checked out %s: commit %d (%q)\n", rest[0], c.ID, c.Message)
		n := 0
		if err := s.Scan(table, func(rec *decibel.Record) bool {
			fmt.Println(rec.String())
			n++
			return true
		}); err != nil {
			return err
		}
		fmt.Printf("%d records\n", n)
		return nil

	case "diff":
		if len(rest) != 2 {
			return fmt.Errorf("diff <branchA> <branchB>")
		}
		diff, diffErr := db.Diff(table, rest[0], rest[1])
		for rec, inA := range diff {
			side := "+B"
			if inA {
				side = "+A"
			}
			fmt.Printf("%s %s\n", side, rec.String())
		}
		return diffErr()

	case "alter":
		// alter <branch> add <name:type[=default]> | alter <branch> drop <col>
		if len(rest) < 3 {
			return fmt.Errorf("alter <branch> add <name:type[=default]> | alter <branch> drop <col>")
		}
		branch, op := rest[0], rest[1]
		switch op {
		case "add":
			spec, defRaw, hasDef := strings.Cut(rest[2], "=")
			col, err := parseColumn(spec)
			if err != nil {
				return err
			}
			var defs []decibel.ColumnDefault
			if hasDef {
				v, err := parseColumnValue(col, defRaw)
				if err != nil {
					return err
				}
				defs = append(defs, decibel.Default(v))
			}
			c, err := db.Commit(branch, func(tx *decibel.Tx) error {
				tx.SetMessage("add column " + col.Name)
				return tx.AddColumn(table, col, defs...)
			})
			if err != nil {
				return err
			}
			fmt.Printf("commit %d on %s: added column %s (schema v%d); existing rows read back the default\n",
				c.ID, branch, col.String(), c.SchemaVer)
		case "drop":
			c, err := db.Commit(branch, func(tx *decibel.Tx) error {
				tx.SetMessage("drop column " + rest[2])
				return tx.DropColumn(table, rest[2])
			})
			if err != nil {
				return err
			}
			fmt.Printf("commit %d on %s: dropped column %q (schema v%d); earlier versions keep it\n",
				c.ID, branch, rest[2], c.SchemaVer)
		default:
			return fmt.Errorf("alter: unknown operation %q (want add or drop)", op)
		}
		return nil

	case "merge":
		if len(rest) < 2 {
			return fmt.Errorf("merge <into> <other> [two|three] [first|second]")
		}
		opts := []decibel.MergeOption{decibel.WithMergeMessage("merge " + rest[1])}
		if len(rest) > 2 && rest[2] == "two" {
			opts = append(opts, decibel.WithMergeKind(decibel.TwoWay))
		}
		if len(rest) > 3 && rest[3] == "second" {
			opts = append(opts, decibel.WithMergePrecedence(false))
		}
		mc, st, err := db.Merge(rest[0], rest[1], opts...)
		if err != nil {
			return err
		}
		fmt.Printf("merge commit %d: %d conflicts, %d records changed in %s, %d in %s\n",
			mc.ID, st.Conflicts, st.ChangedA, rest[0], st.ChangedB, rest[1])
		return nil

	case "compact":
		st, err := db.Compact()
		if err != nil {
			return err
		}
		fmt.Printf("compacted: %d segments merged, %d compressed, %d tombstones dropped, %d pages written, %d bytes reclaimed\n",
			st.SegmentsMerged, st.SegmentsCompressed, st.TombstonesDropped, st.PagesCompressed, st.BytesReclaimed)
		return nil

	case "select":
		return runSelect(db, table, rest)

	case "serve":
		return runServe(db, rest)

	case "log":
		if len(rest) == 1 {
			b, err := db.BranchNamed(rest[0])
			if err != nil {
				return err
			}
			commits := db.Graph().CommitsOnBranch(b.ID)
			// The schema-change marker compares each commit against the
			// previous one on the branch, seeded from the branch point so
			// a change in the branch's first commit is marked too.
			prevVer := -1
			if fc, ok := db.Graph().Commit(b.From); ok {
				prevVer = fc.SchemaVer
			}
			for _, c := range commits {
				when := "-"
				if c.Time != 0 {
					when = time.Unix(c.Time, 0).UTC().Format(time.RFC3339)
				}
				marker := " "
				if c.ID == b.Head {
					marker = "*"
				}
				// Mark commits that evolved (or adopted, via merge) the
				// schema relative to the branch's previous commit.
				schemaNote := ""
				if prevVer >= 0 && c.SchemaVer != prevVer {
					schemaNote = fmt.Sprintf("  [schema v%d]", c.SchemaVer)
				}
				prevVer = c.SchemaVer
				fmt.Printf("%s %s@%-3d commit %-4d %s  %s%s\n", marker, rest[0], c.Seq, c.ID, when, c.Message, schemaNote)
			}
			fmt.Printf("checkout any with: checkout %s@<n>\n", rest[0])
			return nil
		}
		for _, b := range db.Graph().Branches() {
			status := "active"
			if !b.Active {
				status = "retired"
			}
			fmt.Printf("branch %-12s head=commit %-4d (%s)\n", b.Name, b.Head, status)
		}
		fmt.Printf("%d commits total\n", db.Graph().NumCommits())
		return nil

	case "stats":
		st, err := db.Stats()
		if err != nil {
			return err
		}
		fmt.Printf("engine:         %s (registered: %s)\n", engine, strings.Join(decibel.Engines(), ", "))
		fmt.Printf("records:        %d (%d live across heads)\n", st.Records, st.LiveRecords)
		fmt.Printf("data bytes:     %d\n", st.DataBytes)
		fmt.Printf("index bytes:    %d\n", st.IndexBytes)
		fmt.Printf("history bytes:  %d\n", st.CommitBytes)
		fmt.Printf("segments:       %d\n", st.SegmentCount)
		// stats <table>: per-segment zone-map summaries (what predicate
		// pushdown prunes scans with).
		if len(rest) == 1 {
			t, err := db.TableByName(rest[0])
			if err != nil {
				return err
			}
			segs := t.SegmentStats()
			fmt.Printf("\ntable %q: %d segments (zone maps; * marks open append heads)\n", rest[0], len(segs))
			for _, sg := range segs {
				lineage := ""
				if sg.LineageDepth > 0 {
					// Version-first: the lineage depth a scan rooted here
					// resolves through, and the merge override-table size.
					lineage = fmt.Sprintf(" lineage=%d ovr=%d", sg.LineageDepth, sg.Overrides)
				}
				fmt.Printf("  %-22s rows=%-7d schema-cols=%d enc=%-4s raw=%-9d disk=%-9d tombstones=%d%s\n",
					sg.Name, sg.Rows, sg.Cols, sg.Encoding, sg.RawBytes, sg.DiskBytes, sg.Tombstones, lineage)
				for _, z := range sg.Zones {
					fmt.Printf("    %-14s [%s .. %s]\n", z.Column, z.Min, z.Max)
				}
			}
		}
		return nil

	default:
		return fmt.Errorf("unknown command %q (try: decibel help)", cmd)
	}
}

// multiFlag collects a repeatable string flag.
type multiFlag []string

func (m *multiFlag) String() string     { return strings.Join(*m, ",") }
func (m *multiFlag) Set(v string) error { *m = append(*m, v); return nil }

// parseJoin parses one -join spec, table:left_col[=right_col][@branch],
// into the leg query and its join key. The right column defaults to
// the left one; the branch defaults to the root query's.
func parseJoin(db *decibel.DB, spec string) (*decibel.Query, decibel.JoinKey, error) {
	tbl, rest, ok := strings.Cut(spec, ":")
	if !ok || tbl == "" || rest == "" {
		return nil, decibel.JoinKey{}, fmt.Errorf("-join wants table:left_col[=right_col][@branch], got %q", spec)
	}
	branch := ""
	if i := strings.LastIndexByte(rest, '@'); i >= 0 {
		rest, branch = rest[:i], rest[i+1:]
	}
	left, right, ok := strings.Cut(rest, "=")
	if !ok {
		right = left
	}
	if left == "" || right == "" {
		return nil, decibel.JoinKey{}, fmt.Errorf("-join %q: empty join column", spec)
	}
	jq := db.Query(tbl)
	if branch != "" {
		jq = jq.On(branch)
	}
	return jq, decibel.On(left, right), nil
}

// parseAggs parses the -agg list (count,sum:col,min:col,max:col,avg:col)
// into aggregate specs plus the labels the group output prints.
func parseAggs(s string) ([]decibel.Agg, []string, error) {
	if s == "" {
		return nil, nil, nil
	}
	var aggs []decibel.Agg
	var labels []string
	for _, part := range strings.Split(s, ",") {
		name, col, _ := strings.Cut(part, ":")
		if name != "count" && col == "" {
			return nil, nil, fmt.Errorf("-agg %q wants a column: %s:col", part, name)
		}
		switch name {
		case "count":
			aggs = append(aggs, decibel.Count())
		case "sum":
			aggs = append(aggs, decibel.Sum(col))
		case "min":
			aggs = append(aggs, decibel.Min(col))
		case "max":
			aggs = append(aggs, decibel.Max(col))
		case "avg":
			aggs = append(aggs, decibel.Avg(col))
		default:
			return nil, nil, fmt.Errorf("-agg %q: unknown aggregate %q", part, name)
		}
		labels = append(labels, part)
	}
	return aggs, labels, nil
}

// runSelect implements the select command: a versioned query through
// the facade's fluent builder, with branches, predicate and projection
// taken from flags. An explicit positional argument overrides the
// global -table flag.
func runSelect(db *decibel.DB, table string, args []string) error {
	fs := flag.NewFlagSet("select", flag.ContinueOnError)
	branches := fs.String("branch", "", "comma-separated branch name(s) to scan")
	heads := fs.Bool("heads", false, "scan every branch head (HEAD() query)")
	at := fs.Int("at", -1, "historical commit seq on the single branch")
	diff := fs.String("diff", "", "a,b: positive diff — records live at a's head but not b's (-where/-cols apply)")
	where := fs.String("where", "", "predicate: conjuncts joined by &&, each col{=|!=|<|<=|>|>=|^=}value")
	cols := fs.String("cols", "", "comma-separated columns to project")
	order := fs.String("order", "", "column to sort the output by; append ':desc' to reverse")
	limit := fs.Int("limit", 0, "emit at most this many rows (0 = all)")
	count := fs.Bool("count", false, "print only the matching record count")
	var joins multiFlag
	fs.Var(&joins, "join", "equi-join another table: table:left_col[=right_col][@branch] (repeatable)")
	declared := fs.Bool("declared-order", false, "pin joins to the declared order (skip greedy reordering)")
	groupBy := fs.String("group-by", "", "comma-separated columns to group by")
	aggList := fs.String("agg", "", "grouped aggregates: count,sum:col,min:col,max:col,avg:col")
	// Accept "select <table> -flags" and "select -flags <table>".
	if len(args) > 0 && !strings.HasPrefix(args[0], "-") {
		table = args[0]
		args = args[1:]
	}
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() > 0 {
		table = fs.Arg(0)
	}

	t, err := db.TableByName(table)
	if err != nil {
		return err
	}
	q := db.Query(table)
	multi := *heads
	isDiff := *diff != ""
	var diffA, diffB string
	switch {
	case isDiff && (*heads || *branches != "" || *at >= 0):
		return fmt.Errorf("-diff cannot combine with -heads, -branch or -at")
	case isDiff:
		var ok bool
		diffA, diffB, ok = strings.Cut(*diff, ",")
		if !ok || diffA == "" || diffB == "" {
			return fmt.Errorf("-diff wants two branch names: -diff a,b")
		}
	case *heads && *branches != "":
		return fmt.Errorf("-heads and -branch are mutually exclusive")
	case *heads:
		q = q.Heads()
	case *branches != "":
		names := strings.Split(*branches, ",")
		q = q.On(names...)
		multi = len(names) > 1
	default:
		q = q.On(decibel.Master)
	}
	if *at >= 0 {
		q = q.At(*at)
	}
	if *where != "" {
		expr, err := parseWhere(t.Schema(), *where)
		if err != nil {
			return err
		}
		q = q.Where(expr)
	}
	if *cols != "" {
		q = q.Select(strings.Split(*cols, ",")...)
	}
	if *order != "" {
		col, dir, _ := strings.Cut(*order, ":")
		if dir != "" && dir != "asc" && dir != "desc" {
			return fmt.Errorf("-order %q: direction must be asc or desc", *order)
		}
		q = q.OrderBy(col, dir == "desc")
	}
	if *limit > 0 {
		q = q.Limit(*limit)
	}

	if len(joins) > 0 {
		if isDiff || *heads {
			return fmt.Errorf("-join cannot combine with -diff or -heads")
		}
		for _, spec := range joins {
			jq, key, err := parseJoin(db, spec)
			if err != nil {
				return err
			}
			q = q.JoinOn(jq, key)
		}
		if *declared {
			q = q.DeclaredJoinOrder()
		}
	}
	if *aggList != "" && *groupBy == "" {
		return fmt.Errorf("-agg requires -group-by")
	}

	if *groupBy != "" {
		if isDiff {
			return fmt.Errorf("-group-by cannot combine with -diff")
		}
		gcols := strings.Split(*groupBy, ",")
		aggs, labels, err := parseAggs(*aggList)
		if err != nil {
			return err
		}
		groups, gErr := q.GroupBy(gcols...).Groups(aggs...)
		n := 0
		for g := range groups {
			parts := make([]string, 0, len(g.Key)+len(g.Aggs))
			for i, v := range g.Key {
				if b, ok := v.([]byte); ok {
					v = string(b)
				}
				parts = append(parts, fmt.Sprintf("%s=%v", gcols[i], v))
			}
			for i, a := range g.Aggs {
				parts = append(parts, fmt.Sprintf("%s=%g", labels[i], a))
			}
			fmt.Println(strings.Join(parts, " "))
			n++
		}
		if err := gErr(); err != nil {
			return err
		}
		fmt.Printf("%d groups\n", n)
		return nil
	}

	if len(joins) > 0 && !*count {
		tuples, tErr := q.Tuples()
		n := 0
		for tup := range tuples {
			parts := make([]string, len(tup))
			for i, rec := range tup {
				parts[i] = rec.String()
			}
			fmt.Println(strings.Join(parts, " | "))
			n++
		}
		if err := tErr(); err != nil {
			return err
		}
		fmt.Printf("%d joined tuples\n", n)
		return nil
	}

	if isDiff {
		// The positive diff of Query 2, with -where evaluated inside the
		// engines' XOR/lineage diff scans (predicate pushdown) and
		// -cols/-order/-limit applied to the emitted side.
		rows, qErr := q.Diff(diffA, diffB)
		n := 0
		for rec := range rows {
			if !*count {
				fmt.Println(rec.String())
			}
			n++
		}
		if err := qErr(); err != nil {
			return err
		}
		fmt.Printf("%d records in %s but not %s\n", n, diffA, diffB)
		return nil
	}

	if *count {
		n, err := q.Count()
		if err != nil {
			return err
		}
		fmt.Printf("%d records\n", n)
		return nil
	}
	n := 0
	if multi {
		annotated, qErr := q.Annotated()
		for rec, active := range annotated {
			fmt.Printf("%s @ %s\n", rec.String(), strings.Join(active, ","))
			n++
		}
		if err := qErr(); err != nil {
			return err
		}
	} else {
		rows, qErr := q.Rows()
		for rec := range rows {
			fmt.Println(rec.String())
			n++
		}
		if err := qErr(); err != nil {
			return err
		}
	}
	fmt.Printf("%d records\n", n)
	return nil
}

// whereOps are the recognized comparison spellings, longest first so
// "<=" wins over "<".
var whereOps = []string{"!=", "<=", ">=", "^=", "==", "=", "<", ">"}

// parseWhere parses "price<9.5 && sku^=widget" into a typed predicate,
// resolving each value's Go type from the column's schema type so the
// builder's plan-time validation sees properly typed comparisons.
func parseWhere(schema *decibel.Schema, input string) (decibel.Expr, error) {
	var expr decibel.Expr
	first := true
	for _, conjunct := range strings.Split(input, "&&") {
		conjunct = strings.TrimSpace(conjunct)
		if conjunct == "" {
			continue
		}
		leaf, err := parseConjunct(schema, conjunct)
		if err != nil {
			return expr, err
		}
		if first {
			expr = leaf
			first = false
		} else {
			expr = expr.And(leaf)
		}
	}
	if first {
		return expr, fmt.Errorf("empty -where expression")
	}
	return expr, nil
}

func parseConjunct(schema *decibel.Schema, s string) (decibel.Expr, error) {
	for _, op := range whereOps {
		i := strings.Index(s, op)
		if i <= 0 {
			continue
		}
		name := strings.TrimSpace(s[:i])
		raw := strings.TrimSpace(s[i+len(op):])
		val, err := parseValue(schema, name, raw)
		if err != nil {
			return decibel.Expr{}, err
		}
		col := decibel.Col(name)
		switch op {
		case "=", "==":
			return col.Eq(val), nil
		case "!=":
			return col.Ne(val), nil
		case "<":
			return col.Lt(val), nil
		case "<=":
			return col.Le(val), nil
		case ">":
			return col.Gt(val), nil
		case ">=":
			return col.Ge(val), nil
		case "^=":
			return col.HasPrefix(val), nil
		}
	}
	return decibel.Expr{}, fmt.Errorf("cannot parse predicate %q (want col{=|!=|<|<=|>|>=|^=}value)", s)
}

// parseValue converts the textual value to the Go type the named
// column's schema type expects; unknown columns pass the raw string
// through so the builder reports ErrNoSuchColumn with the right name.
func parseValue(schema *decibel.Schema, col, raw string) (any, error) {
	i := schema.ColumnIndex(col)
	if i < 0 {
		return raw, nil
	}
	switch schema.Column(i).Type {
	case decibel.Float64:
		f, err := strconv.ParseFloat(raw, 64)
		if err != nil {
			return nil, fmt.Errorf("column %q: %w", col, err)
		}
		return f, nil
	case decibel.Bytes:
		return raw, nil
	default:
		n, err := strconv.ParseInt(raw, 10, 64)
		if err != nil {
			return nil, fmt.Errorf("column %q: %w", col, err)
		}
		return n, nil
	}
}

// runServe runs the HTTP/JSON serving layer over the open dataset
// until SIGINT/SIGTERM, then drains in-flight requests and sessions
// and closes the database (run's deferred Close is a no-op by then).
func runServe(db *decibel.DB, args []string) error {
	fs := flag.NewFlagSet("serve", flag.ContinueOnError)
	addr := fs.String("addr", "localhost:8527", "listen address")
	if err := fs.Parse(args); err != nil {
		return err
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	fmt.Printf("decibel serving on http://%s (SIGINT/SIGTERM to stop)\n", ln.Addr())
	return decibel.NewServer(db).Serve(ctx, ln)
}
