// Command decibel is a small CLI over a Decibel dataset: init, branch,
// commit, insert, delete, scan, diff, merge and log against a dataset
// directory, with a choice of storage engine resolved through the
// engine registry.
//
// Usage:
//
//	decibel -dir data -engine hybrid init col1,col2,...
//	decibel -dir data insert <branch> <pk> <v1> <v2> ...
//	decibel -dir data delete <branch> <pk>
//	decibel -dir data commit <branch> [message]
//	decibel -dir data branch <name> <from-branch>
//	decibel -dir data scan <branch>
//	decibel -dir data diff <branchA> <branchB>
//	decibel -dir data merge <into> <other> [two|three] [first|second]
//	decibel -dir data log
//	decibel -dir data stats
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"decibel"
)

func main() {
	dir := flag.String("dir", "decibel-data", "dataset directory")
	engine := flag.String("engine", decibel.DefaultEngine,
		"storage engine: "+strings.Join(decibel.Engines(), " | "))
	table := flag.String("table", "r", "table name")
	flag.Parse()
	if flag.NArg() < 1 {
		fmt.Fprintln(os.Stderr, "usage: decibel [flags] <command> [args]  (see -h)")
		os.Exit(2)
	}
	if err := run(*dir, *engine, *table, flag.Args()); err != nil {
		fmt.Fprintln(os.Stderr, "decibel:", err)
		os.Exit(1)
	}
}

func run(dir, engine, table string, args []string) error {
	db, err := decibel.Open(dir, decibel.WithEngine(engine))
	if err != nil {
		return err
	}
	defer db.Close()
	cmd, rest := args[0], args[1:]

	branchID := func(name string) (decibel.BranchID, error) {
		b, err := db.BranchNamed(name)
		if err != nil {
			return 0, err
		}
		return b.ID, nil
	}

	switch cmd {
	case "init":
		schema := decibel.NewSchema().Int64("id")
		if len(rest) > 0 {
			for _, c := range strings.Split(rest[0], ",") {
				schema = schema.Int64(c)
			}
		} else {
			schema = schema.Int64("value")
		}
		s, err := schema.Build()
		if err != nil {
			return err
		}
		if _, err := db.CreateTable(table, s); err != nil {
			return err
		}
		master, c0, err := db.Init("init")
		if err != nil {
			return err
		}
		fmt.Printf("initialized %s: branch %q, commit %d\n", dir, master.Name, c0.ID)
		return nil

	case "insert":
		if len(rest) < 2 {
			return fmt.Errorf("insert <branch> <pk> <values...>")
		}
		bid, err := branchID(rest[0])
		if err != nil {
			return err
		}
		t, err := db.TableByName(table)
		if err != nil {
			return err
		}
		rec := decibel.NewRecord(t.Schema())
		for i, v := range rest[1:] {
			if i >= t.Schema().NumColumns() {
				break
			}
			n, err := strconv.ParseInt(v, 10, 64)
			if err != nil {
				return fmt.Errorf("column %d: %w", i, err)
			}
			rec.Set(i, n)
		}
		return t.Insert(bid, rec)

	case "delete":
		if len(rest) != 2 {
			return fmt.Errorf("delete <branch> <pk>")
		}
		bid, err := branchID(rest[0])
		if err != nil {
			return err
		}
		pk, err := strconv.ParseInt(rest[1], 10, 64)
		if err != nil {
			return err
		}
		t, err := db.TableByName(table)
		if err != nil {
			return err
		}
		return t.Delete(bid, pk)

	case "commit":
		if len(rest) < 1 {
			return fmt.Errorf("commit <branch> [message]")
		}
		bid, err := branchID(rest[0])
		if err != nil {
			return err
		}
		msg := strings.Join(rest[1:], " ")
		c, err := db.Commit(bid, msg)
		if err != nil {
			return err
		}
		fmt.Printf("commit %d on %s\n", c.ID, rest[0])
		return nil

	case "branch":
		if len(rest) != 2 {
			return fmt.Errorf("branch <name> <from-branch>")
		}
		b, err := db.BranchFromHead(rest[0], rest[1])
		if err != nil {
			return err
		}
		fmt.Printf("branch %q created from %q (head commit %d)\n", b.Name, rest[1], b.From)
		return nil

	case "scan":
		if len(rest) != 1 {
			return fmt.Errorf("scan <branch>")
		}
		bid, err := branchID(rest[0])
		if err != nil {
			return err
		}
		t, err := db.TableByName(table)
		if err != nil {
			return err
		}
		n := 0
		rows, scanErr := t.Rows(bid)
		for rec := range rows {
			fmt.Println(rec.String())
			n++
		}
		if err := scanErr(); err != nil {
			return err
		}
		fmt.Printf("%d records\n", n)
		return nil

	case "diff":
		if len(rest) != 2 {
			return fmt.Errorf("diff <branchA> <branchB>")
		}
		a, err := branchID(rest[0])
		if err != nil {
			return err
		}
		bb, err := branchID(rest[1])
		if err != nil {
			return err
		}
		t, err := db.TableByName(table)
		if err != nil {
			return err
		}
		diff, diffErr := t.Diff(a, bb)
		for rec, inA := range diff {
			side := "+B"
			if inA {
				side = "+A"
			}
			fmt.Printf("%s %s\n", side, rec.String())
		}
		return diffErr()

	case "merge":
		if len(rest) < 2 {
			return fmt.Errorf("merge <into> <other> [two|three] [first|second]")
		}
		into, err := branchID(rest[0])
		if err != nil {
			return err
		}
		other, err := branchID(rest[1])
		if err != nil {
			return err
		}
		kind := decibel.ThreeWay
		if len(rest) > 2 && rest[2] == "two" {
			kind = decibel.TwoWay
		}
		precFirst := true
		if len(rest) > 3 && rest[3] == "second" {
			precFirst = false
		}
		mc, st, err := db.Merge(into, other, "merge "+rest[1], kind, precFirst)
		if err != nil {
			return err
		}
		fmt.Printf("merge commit %d: %d conflicts, %d records changed in %s, %d in %s\n",
			mc.ID, st.Conflicts, st.ChangedA, rest[0], st.ChangedB, rest[1])
		return nil

	case "log":
		for _, b := range db.Graph().Branches() {
			status := "active"
			if !b.Active {
				status = "retired"
			}
			fmt.Printf("branch %-12s head=commit %-4d (%s)\n", b.Name, b.Head, status)
		}
		fmt.Printf("%d commits total\n", db.Graph().NumCommits())
		return nil

	case "stats":
		st, err := db.Stats()
		if err != nil {
			return err
		}
		fmt.Printf("engine:         %s (registered: %s)\n", engine, strings.Join(decibel.Engines(), ", "))
		fmt.Printf("records:        %d (%d live across heads)\n", st.Records, st.LiveRecords)
		fmt.Printf("data bytes:     %d\n", st.DataBytes)
		fmt.Printf("index bytes:    %d\n", st.IndexBytes)
		fmt.Printf("history bytes:  %d\n", st.CommitBytes)
		fmt.Printf("segments:       %d\n", st.SegmentCount)
		return nil

	default:
		return fmt.Errorf("unknown command %q", cmd)
	}
}
