package main

// CLI coverage for the join/group-by flags: the -join spec grammar,
// the -agg list grammar, and select round-trips through run() whose
// failure modes must surface the facade's sentinel errors (the same
// taxonomy the server maps to stable wire codes).

import (
	"errors"
	"fmt"
	"testing"

	"decibel"
)

// buildCLIDataset creates a small orders/users dataset in dir with the
// facade, closed again so run() can reopen it.
func buildCLIDataset(t *testing.T) string {
	t.Helper()
	dir := t.TempDir()
	db, err := decibel.Open(dir, decibel.WithEngine(decibel.DefaultEngine))
	if err != nil {
		t.Fatal(err)
	}
	users := decibel.NewSchema().Int64("id").Int64("region").Bytes("name", 12).MustBuild()
	orders := decibel.NewSchema().Int64("id").Int64("user_id").Int64("qty").Float64("price").MustBuild()
	if _, err := db.CreateTable("users", users); err != nil {
		t.Fatal(err)
	}
	if _, err := db.CreateTable("orders", orders); err != nil {
		t.Fatal(err)
	}
	if _, _, err := db.Init("init"); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Commit("master", func(tx *decibel.Tx) error {
		for pk := int64(0); pk < 8; pk++ {
			rec := decibel.NewRecord(users)
			rec.SetPK(pk)
			rec.Set(1, pk%3)
			if err := rec.SetBytes(2, []byte(fmt.Sprintf("user-%d", pk))); err != nil {
				return err
			}
			if err := tx.Insert("users", rec); err != nil {
				return err
			}
		}
		for pk := int64(0); pk < 40; pk++ {
			rec := decibel.NewRecord(orders)
			rec.SetPK(pk)
			rec.Set(1, pk%8)
			rec.Set(2, pk%5)
			rec.SetFloat64(3, float64(pk)+0.5)
			if err := tx.Insert("orders", rec); err != nil {
				return err
			}
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Branch("master", "dev"); err != nil {
		t.Fatal(err)
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	return dir
}

func TestParseJoinSpec(t *testing.T) {
	dir := buildCLIDataset(t)
	db, err := decibel.Open(dir, decibel.WithEngine(decibel.DefaultEngine))
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()

	for _, tc := range []struct {
		spec        string
		left, right string
		ok          bool
	}{
		{"users:user_id=id", "user_id", "id", true},
		{"users:id", "id", "id", true}, // right defaults to left
		{"users:user_id=id@dev", "user_id", "id", true},
		{"users", "", "", false},  // no column
		{"users:", "", "", false}, // empty column
		{":user_id", "", "", false},
		{"users:=id", "", "", false},
	} {
		jq, key, err := parseJoin(db, tc.spec)
		if tc.ok != (err == nil) {
			t.Fatalf("parseJoin(%q): err = %v, want ok=%v", tc.spec, err, tc.ok)
		}
		if !tc.ok {
			continue
		}
		if jq == nil || key.Left != tc.left || key.Right != tc.right {
			t.Fatalf("parseJoin(%q) = (%v, %v)", tc.spec, key.Left, key.Right)
		}
	}
}

func TestParseAggsSpec(t *testing.T) {
	aggs, labels, err := parseAggs("count,sum:price,avg:price,min:qty,max:qty")
	if err != nil {
		t.Fatal(err)
	}
	if len(aggs) != 5 || len(labels) != 5 {
		t.Fatalf("parsed %d aggs, %d labels, want 5", len(aggs), len(labels))
	}
	if labels[1] != "sum:price" || labels[2] != "avg:price" {
		t.Fatalf("labels = %v", labels)
	}
	for _, bad := range []string{"median:price", "sum", "min", "sum:,count"} {
		if _, _, err := parseAggs(bad); err == nil {
			t.Fatalf("parseAggs(%q) accepted", bad)
		}
	}
	if aggs, labels, err = parseAggs(""); err != nil || aggs != nil || labels != nil {
		t.Fatalf("empty -agg should parse to nothing, got (%v, %v, %v)", aggs, labels, err)
	}
}

func TestSelectJoinGroupCLI(t *testing.T) {
	dir := buildCLIDataset(t)
	engine := decibel.DefaultEngine
	sel := func(args ...string) error {
		return run(dir, engine, "orders", append([]string{"select"}, args...))
	}

	// Happy paths: joined tuples, joined count, declared order, grouped
	// aggregates plain and over a join, branch-pinned leg.
	for _, args := range [][]string{
		{"-branch", "master", "-join", "users:user_id=id"},
		{"-branch", "master", "-join", "users:user_id=id", "-count"},
		{"-branch", "master", "-join", "users:user_id=id", "-declared-order"},
		{"-branch", "master", "-join", "users:user_id=id@dev"},
		{"-branch", "master", "-group-by", "qty", "-agg", "count,sum:price,avg:price"},
		{"-branch", "master", "-group-by", "qty"}, // DISTINCT
		{"-branch", "master", "-join", "users:user_id=id", "-group-by", "region", "-agg", "count,sum:qty"},
		{"-branch", "master", "-where", "qty<3", "-join", "users:user_id=id", "-count"},
	} {
		if err := sel(args...); err != nil {
			t.Fatalf("select %v: %v", args, err)
		}
	}

	// Error taxonomy: the CLI surfaces the facade's sentinels.
	for _, tc := range []struct {
		args []string
		want error
	}{
		{[]string{"-branch", "master", "-join", "users:qty=region"}, nil}, // joinable int key: control
		{[]string{"-branch", "master", "-join", "users:price=id"}, decibel.ErrBadQuery},
		{[]string{"-branch", "master", "-join", "users:user_id=name"}, decibel.ErrTypeMismatch},
		{[]string{"-branch", "master", "-join", "users:nope=id"}, decibel.ErrNoSuchColumn},
		{[]string{"-branch", "master", "-group-by", "nope", "-agg", "count"}, decibel.ErrNoSuchColumn},
		{[]string{"-branch", "master", "-order", "qty", "-group-by", "qty", "-agg", "count"}, decibel.ErrBadQuery},
		{[]string{"-branch", "master", "-group-by", "qty,qty", "-agg", "count"}, decibel.ErrBadQuery},
	} {
		err := sel(tc.args...)
		if tc.want == nil {
			if err != nil {
				t.Fatalf("select %v: %v", tc.args, err)
			}
			continue
		}
		if !errors.Is(err, tc.want) {
			t.Fatalf("select %v: err = %v, want %v", tc.args, err, tc.want)
		}
	}

	// Flag-level misuse is rejected before any query runs.
	for _, args := range [][]string{
		{"-branch", "master", "-agg", "count"},                         // -agg without -group-by
		{"-diff", "master,dev", "-join", "users:user_id=id"},           // join over diff
		{"-heads", "-join", "users:user_id=id"},                        // join over heads
		{"-diff", "master,dev", "-group-by", "qty", "-agg", "count"},   // group over diff
		{"-branch", "master", "-join", "users"},                        // malformed spec
		{"-branch", "master", "-group-by", "qty", "-agg", "median:id"}, // unknown aggregate
	} {
		if err := sel(args...); err == nil {
			t.Fatalf("select %v unexpectedly succeeded", args)
		}
	}
}
