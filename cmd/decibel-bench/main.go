// Command decibel-bench runs the paper's evaluation experiments
// (Section 5) at a configurable scale and prints the corresponding
// figure/table rows. It is the CLI counterpart of the bench_test.go
// harness; use `go test -bench .` for testing.B-based measurements.
//
// Usage:
//
//	decibel-bench -experiment fig6a -branches 10,50,100 -total 12000
//	decibel-bench -experiment fig7
//	decibel-bench -experiment table3
//	decibel-bench -experiment table6
//	decibel-bench -experiment all
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"
	"strconv"
	"strings"
	"time"

	"decibel"
	"decibel/bench"
	"decibel/gitstore"
	"decibel/query"
)

// engines under comparison, in the paper's order (short registry
// aliases).
var engines = []string{"vf", "tf", "hy"}

var (
	flagExperiment = flag.String("experiment", "all", "fig6a|fig6b|fig7|fig8|fig9|fig10|fig11|table2|table3|table5|table6|table7|all")
	flagBranches   = flag.String("branches", "10,50,100", "branch counts for scaling experiments")
	flagTotal      = flag.Int("total", 12000, "total operations for fixed-size experiments")
	flagPerBranch  = flag.Int("per-branch", 600, "operations per branch for per-strategy experiments")
	flagNBranches  = flag.Int("n-branches", 20, "branch count for per-strategy experiments")
	flagRecord     = flag.Int("record-bytes", 256, "record size in bytes")
)

func opts() bench.Options { return bench.Options{PageSize: 64 << 10, PoolPages: 256} }

func cfgFor(s bench.Strategy, branches, perBranch int) bench.Config {
	cfg := bench.DefaultConfig(s)
	cfg.Branches = branches
	cfg.RecordsPerBranch = perBranch
	cfg.RecordBytes = *flagRecord
	cfg.CommitEvery = perBranch / 5
	if cfg.CommitEvery < 1 {
		cfg.CommitEvery = 1
	}
	cfg.ScienceLifetime = perBranch * 2
	cfg.CurationDevOps = perBranch
	cfg.CurationFeatOps = perBranch / 4
	return cfg
}

func load(engine string, cfg bench.Config) (*bench.Dataset, func()) {
	dir, err := os.MkdirTemp("", "decibel-bench-*")
	check(err)
	d, err := bench.Load(dir, engine, opts(), cfg)
	check(err)
	return d, func() { d.Close(); os.RemoveAll(dir) }
}

func check(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "decibel-bench:", err)
		os.Exit(1)
	}
}

func timeScan(d *bench.Dataset, b decibel.BranchID) (time.Duration, int) {
	t0 := time.Now()
	n := 0
	check(query.SingleVersionScan(d.Table, b, query.True, func(*decibel.Record) bool { n++; return true }))
	return time.Since(t0), n
}

func timeHeads(d *bench.Dataset) (time.Duration, int) {
	t0 := time.Now()
	n := 0
	check(query.HeadScan(d.DB.Graph(), d.Table, query.True, func(query.HeadRecord) bool { n++; return true }))
	return time.Since(t0), n
}

func header(title string) { fmt.Printf("\n== %s ==\n", title) }

func fig6a() {
	header("Figure 6a: Q1 single-branch scan vs branch count (flat)")
	fmt.Printf("%-8s %-10s %-12s %-10s\n", "engine", "branches", "latency", "records")
	for _, bs := range parseInts(*flagBranches) {
		cfg := cfgFor(bench.Flat, bs, *flagTotal/bs)
		for _, e := range engines {
			d, done := load(e, cfg)
			r := rand.New(rand.NewSource(7))
			child := d.RandomChild(r)
			timeScan(d, child.ID) // warm
			el, n := timeScan(d, child.ID)
			fmt.Printf("%-8s %-10d %-12s %-10d\n", e, bs, el.Round(time.Microsecond), n)
			done()
		}
	}
}

func fig6b() {
	header("Figure 6b: Q4 all-heads scan vs branch count (deep, flat)")
	fmt.Printf("%-8s %-6s %-10s %-12s %-10s\n", "engine", "strat", "branches", "latency", "records")
	for _, s := range []bench.Strategy{bench.Deep, bench.Flat} {
		for _, bs := range parseInts(*flagBranches) {
			cfg := cfgFor(s, bs, *flagTotal/bs)
			for _, e := range engines {
				d, done := load(e, cfg)
				timeHeads(d)
				el, n := timeHeads(d)
				fmt.Printf("%-8s %-6s %-10d %-12s %-10d\n", e, s, bs, el.Round(time.Microsecond), n)
				done()
			}
		}
	}
}

func fig7() {
	header("Figure 7: Q1 per strategy and scan target")
	cases := []struct {
		s      bench.Strategy
		target string
	}{
		{bench.Deep, "tail"}, {bench.Flat, "child"},
		{bench.Science, "young"}, {bench.Science, "old"},
		{bench.Curation, "feature"}, {bench.Curation, "dev"}, {bench.Curation, "mainline"},
	}
	fmt.Printf("%-8s %-14s %-12s %-10s\n", "engine", "case", "latency", "records")
	for _, c := range cases {
		cfg := cfgFor(c.s, *flagNBranches, *flagPerBranch)
		for _, e := range engines {
			d, done := load(e, cfg)
			r := rand.New(rand.NewSource(7))
			b := pickTarget(d, c.target, r)
			timeScan(d, b)
			el, n := timeScan(d, b)
			fmt.Printf("%-8s %-14s %-12s %-10d\n", e, fmt.Sprintf("%s-%s", c.s, c.target), el.Round(time.Microsecond), n)
			done()
		}
	}
}

func pickTarget(d *bench.Dataset, target string, r *rand.Rand) decibel.BranchID {
	switch target {
	case "tail":
		return d.TailBranch().ID
	case "child":
		return d.RandomChild(r).ID
	case "young":
		return d.YoungestActive().ID
	case "old":
		return d.OldestActive().ID
	case "dev":
		return d.RandomDev(r).ID
	case "feature":
		return d.RandomFeature(r).ID
	default:
		return d.Mainline.ID
	}
}

func pair(d *bench.Dataset, r *rand.Rand) (decibel.BranchID, decibel.BranchID) {
	switch d.Cfg.Strategy {
	case bench.Deep:
		return d.TailBranch().ID, d.Branches[len(d.Branches)-2].ID
	case bench.Flat:
		return d.RandomChild(r).ID, d.Mainline.ID
	case bench.Science:
		return d.OldestActive().ID, d.Mainline.ID
	default:
		return d.Mainline.ID, d.RandomDev(r).ID
	}
}

func fig8() {
	header("Figure 8: Q2 positive diff per strategy")
	fmt.Printf("%-8s %-6s %-12s %-10s\n", "engine", "strat", "latency", "rows")
	for _, s := range []bench.Strategy{bench.Deep, bench.Flat, bench.Science, bench.Curation} {
		cfg := cfgFor(s, *flagNBranches, *flagPerBranch)
		for _, e := range engines {
			d, done := load(e, cfg)
			r := rand.New(rand.NewSource(7))
			a, b := pair(d, r)
			run := func() (time.Duration, int) {
				t0 := time.Now()
				n := 0
				check(query.PositiveDiff(d.Table, a, b, func(*decibel.Record) bool { n++; return true }))
				return time.Since(t0), n
			}
			run()
			el, n := run()
			fmt.Printf("%-8s %-6s %-12s %-10d\n", e, s, el.Round(time.Microsecond), n)
			done()
		}
	}
}

func fig9() {
	header("Figure 9: Q3 multi-version join per strategy")
	fmt.Printf("%-8s %-6s %-12s %-10s\n", "engine", "strat", "latency", "rows")
	for _, s := range []bench.Strategy{bench.Deep, bench.Flat, bench.Science, bench.Curation} {
		cfg := cfgFor(s, *flagNBranches, *flagPerBranch)
		for _, e := range engines {
			d, done := load(e, cfg)
			r := rand.New(rand.NewSource(7))
			a, b := pair(d, r)
			pred := query.ColumnMod(1, 2, 0)
			run := func() (time.Duration, int) {
				t0 := time.Now()
				n := 0
				check(query.VersionJoin(d.Table, a, b, pred, func(query.JoinedPair) bool { n++; return true }))
				return time.Since(t0), n
			}
			run()
			el, n := run()
			fmt.Printf("%-8s %-6s %-12s %-10d\n", e, s, el.Round(time.Microsecond), n)
			done()
		}
	}
}

func fig10() {
	header("Figure 10: Q4 all-heads scan with predicate per strategy")
	fmt.Printf("%-8s %-6s %-12s %-10s\n", "engine", "strat", "latency", "rows")
	for _, s := range []bench.Strategy{bench.Deep, bench.Flat, bench.Science, bench.Curation} {
		cfg := cfgFor(s, *flagNBranches, *flagPerBranch)
		for _, e := range engines {
			d, done := load(e, cfg)
			pred := query.Not(query.ColumnMod(1, 10, 0))
			run := func() (time.Duration, int) {
				t0 := time.Now()
				n := 0
				check(query.HeadScan(d.DB.Graph(), d.Table, pred, func(query.HeadRecord) bool { n++; return true }))
				return time.Since(t0), n
			}
			run()
			el, n := run()
			fmt.Printf("%-8s %-6s %-12s %-10d\n", e, s, el.Round(time.Microsecond), n)
			done()
		}
	}
}

func fig11() {
	header("Figure 11 + Table 4: Q1 before/after table-wise update (10 branches)")
	fmt.Printf("%-8s %-6s %-12s %-12s %-12s %-12s\n", "engine", "strat", "pre-scan", "post-scan", "pre-MB", "post-MB")
	for _, s := range []bench.Strategy{bench.Deep, bench.Flat, bench.Science, bench.Curation} {
		for _, e := range engines {
			cfg := cfgFor(s, 10, *flagPerBranch)
			d, done := load(e, cfg)
			r := rand.New(rand.NewSource(7))
			var b decibel.BranchID
			switch s {
			case bench.Deep:
				b = d.TailBranch().ID
			case bench.Flat:
				b = d.RandomChild(r).ID
			case bench.Science:
				b = d.YoungestActive().ID
			default:
				b = d.Mainline.ID
			}
			st0, _ := d.DB.Stats()
			timeScan(d, b)
			pre, _ := timeScan(d, b)
			check(d.TableWiseUpdate(b))
			st1, _ := d.DB.Stats()
			timeScan(d, b)
			post, _ := timeScan(d, b)
			fmt.Printf("%-8s %-6s %-12s %-12s %-12.1f %-12.1f\n", e, s,
				pre.Round(time.Microsecond), post.Round(time.Microsecond),
				float64(st0.DataBytes)/(1<<20), float64(st1.DataBytes)/(1<<20))
			done()
		}
	}
}

func table2() {
	header("Table 2: bitmap commit data (tf vs hy)")
	fmt.Printf("%-6s %-6s %-14s %-14s %-14s\n", "strat", "eng", "history-KB", "commit", "checkout")
	for _, s := range []bench.Strategy{bench.Deep, bench.Flat, bench.Science, bench.Curation} {
		for _, e := range engines {
			if e == "vf" {
				continue
			}
			cfg := cfgFor(s, *flagNBranches, *flagPerBranch)
			d, done := load(e, cfg)
			// Commit latency.
			var commitTotal time.Duration
			const nC = 20
			for i := 0; i < nC; i++ {
				t0 := time.Now()
				_, err := d.DB.Commit(d.Mainline.ID, "sample")
				check(err)
				commitTotal += time.Since(t0)
			}
			// Checkout latency over random commits.
			r := rand.New(rand.NewSource(3))
			var checkoutTotal time.Duration
			const nK = 20
			for i := 0; i < nK; i++ {
				c := d.Commits[r.Intn(len(d.Commits))]
				t0 := time.Now()
				check(d.Table.ScanCommit(c, func(*decibel.Record) bool { return true }))
				checkoutTotal += time.Since(t0)
			}
			st, _ := d.DB.Stats()
			fmt.Printf("%-6s %-6s %-14.1f %-14s %-14s\n", s, e,
				float64(st.CommitBytes)/1024,
				(commitTotal / nC).Round(time.Microsecond),
				(checkoutTotal / nK).Round(time.Microsecond))
			done()
		}
	}
}

func table3() {
	header("Table 3: merge throughput (curation)")
	fmt.Printf("%-8s %-12s %-12s %-8s\n", "engine", "kind", "MB/s", "merges")
	for _, threeWay := range []bool{false, true} {
		kind := "two-way"
		if threeWay {
			kind = "three-way"
		}
		for _, e := range engines {
			cfg := cfgFor(bench.Curation, 12, *flagPerBranch)
			cfg.ThreeWayMerges = threeWay
			d, done := load(e, cfg)
			var mb, secs float64
			for _, m := range d.Merges {
				mb += float64(m.Stats.DiffBytes) / (1 << 20)
				secs += m.Elapsed.Seconds()
			}
			rate := 0.0
			if secs > 0 {
				rate = mb / secs
			}
			fmt.Printf("%-8s %-12s %-12.1f %-8d\n", e, kind, rate, len(d.Merges))
			done()
		}
	}
}

func table5() {
	header("Table 5: build times")
	fmt.Printf("%-6s %-8s %-12s %-10s\n", "strat", "engine", "load-time", "data-MB")
	for _, s := range []bench.Strategy{bench.Deep, bench.Flat, bench.Science, bench.Curation} {
		for _, e := range engines {
			cfg := cfgFor(s, *flagNBranches, *flagPerBranch)
			d, done := load(e, cfg)
			st, _ := d.DB.Stats()
			fmt.Printf("%-6s %-8s %-12s %-10.1f\n", s, e, d.LoadTime.Round(time.Millisecond), float64(st.DataBytes)/(1<<20))
			done()
		}
	}
}

func gitTables(insertFrac float64, title string) {
	header(title)
	const branches, opsPerBranch, commitEvery = 10, 300, 30
	schema := decibel.BenchmarkSchema(*flagRecord)
	cases := []struct {
		name   string
		layout gitstore.Layout
		format gitstore.Format
	}{
		{"git 1 file (bin)", gitstore.OneFile, gitstore.Binary},
		{"git 1 file (csv)", gitstore.OneFile, gitstore.CSV},
		{"git file/tup (bin)", gitstore.FilePerTuple, gitstore.Binary},
		{"git file/tup (csv)", gitstore.FilePerTuple, gitstore.CSV},
	}
	fmt.Printf("%-20s %-10s %-10s %-12s %-12s %-12s\n", "system", "data-MB", "repo-MB", "repack", "commit", "checkout")
	for _, c := range cases {
		dir, err := os.MkdirTemp("", "decibel-git-*")
		check(err)
		tbl, err := gitstore.NewTable(dir, schema, c.layout, c.format)
		check(err)
		r := rand.New(rand.NewSource(42))
		var commits []gitstore.Hash
		var commitTotal time.Duration
		nCommits := 0
		cur := "master"
		nextPK := int64(1)
		var keys []int64
		for br := 0; br < branches; br++ {
			if br > 0 {
				name := fmt.Sprintf("b%d", br)
				check(tbl.Branch(name, cur))
				cur = name
			}
			for n := 0; n < opsPerBranch; n++ {
				rec := decibel.NewRecord(schema)
				if len(keys) > 0 && r.Float64() >= insertFrac {
					rec.SetPK(keys[r.Intn(len(keys))])
				} else {
					rec.SetPK(nextPK)
					keys = append(keys, nextPK)
					nextPK++
				}
				for i := 1; i < schema.NumColumns(); i++ {
					rec.Set(i, r.Int63())
				}
				check(tbl.Insert(cur, rec))
				if (n+1)%commitEvery == 0 {
					t0 := time.Now()
					h, err := tbl.Commit(cur, "load")
					check(err)
					commitTotal += time.Since(t0)
					nCommits++
					commits = append(commits, h)
				}
			}
		}
		t0 := time.Now()
		check(tbl.Repo().Repack(10))
		repack := time.Since(t0)
		var checkoutTotal time.Duration
		const nK = 20
		for i := 0; i < nK; i++ {
			h := commits[r.Intn(len(commits))]
			t1 := time.Now()
			_, _, err := tbl.Checkout(h)
			check(err)
			checkoutTotal += time.Since(t1)
		}
		repoMB, _ := tbl.Repo().RepoSizeBytes()
		fmt.Printf("%-20s %-10.1f %-10.1f %-12s %-12s %-12s\n", c.name,
			float64(tbl.DataSizeBytes(cur))/(1<<20), float64(repoMB)/(1<<20),
			repack.Round(time.Millisecond),
			(commitTotal / time.Duration(nCommits)).Round(time.Microsecond),
			(checkoutTotal / nK).Round(time.Microsecond))
		os.RemoveAll(dir)
	}
	// Decibel (hybrid) row.
	cfg := cfgFor(bench.Deep, branches, opsPerBranch)
	cfg.UpdateFrac = 1 - insertFrac
	cfg.CommitEvery = commitEvery
	d, done := load("hy", cfg)
	tail := d.TailBranch().ID
	var commitTotal time.Duration
	const nC = 10
	for i := 0; i < nC; i++ {
		t0 := time.Now()
		_, err := d.DB.Commit(tail, "sample")
		check(err)
		commitTotal += time.Since(t0)
	}
	r := rand.New(rand.NewSource(5))
	var checkoutTotal time.Duration
	const nK = 20
	for i := 0; i < nK; i++ {
		c := d.Commits[r.Intn(len(d.Commits))]
		t0 := time.Now()
		check(d.Table.ScanCommit(c, func(*decibel.Record) bool { return true }))
		checkoutTotal += time.Since(t0)
	}
	st, _ := d.DB.Stats()
	fmt.Printf("%-20s %-10.1f %-10.1f %-12s %-12s %-12s\n", "Decibel (hybrid)",
		float64(st.DataBytes)/(1<<20), float64(st.DataBytes+st.CommitBytes)/(1<<20),
		"n/a",
		(commitTotal / nC).Round(time.Microsecond),
		(checkoutTotal / nK).Round(time.Microsecond))
	done()
}

func parseInts(s string) []int {
	var out []int
	for _, part := range strings.Split(s, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(part))
		check(err)
		out = append(out, n)
	}
	return out
}

func main() {
	flag.Parse()
	run := map[string]func(){
		"fig6a": fig6a, "fig6b": fig6b, "fig7": fig7, "fig8": fig8,
		"fig9": fig9, "fig10": fig10, "fig11": fig11,
		"table2": table2, "table3": table3, "table5": table5,
		"table6": func() { gitTables(1.0, "Table 6: git vs Decibel, deep, 100% inserts") },
		"table7": func() { gitTables(0.5, "Table 7: git vs Decibel, deep, 50% updates") },
	}
	order := []string{"fig6a", "fig6b", "fig7", "fig8", "fig9", "fig10", "fig11", "table2", "table3", "table5", "table6", "table7"}
	if *flagExperiment == "all" {
		for _, name := range order {
			run[name]()
		}
		return
	}
	fn, ok := run[*flagExperiment]
	if !ok {
		fmt.Fprintf(os.Stderr, "unknown experiment %q\n", *flagExperiment)
		os.Exit(2)
	}
	fn()
}
