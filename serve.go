package decibel

import (
	"context"
	"net"
	"net/http"
	"time"

	"decibel/internal/server"
)

// Server serves a DB over HTTP/JSON — the network serving layer the
// `decibel serve` subcommand runs, exposed here so programs can embed
// it. The protocol (endpoints, wire types, the decibel/client Go
// client) exposes the full query builder, transactional commits,
// branch/merge and schema alters.
//
// Reads are snapshot-isolated and lock-free: each single-branch query
// pins the branch head commit resolved at request start and scans
// immutable history, so readers never wait on (or block) writers.
// Writes serialize through the same branch-exclusive-lock commit path
// as DB.Commit. Request contexts cancel mid-scan within one record,
// so a disconnected client stops costing anything almost immediately.
//
// Observability: GET /debug/vars exposes the process's expvar
// counters — decibel.segments_scanned/_skipped, decibel.point_lookups,
// decibel.server.{requests,errors,canceled,commits,active_sessions} —
// and GET /healthz reports liveness (503 once shutdown has begun).
type Server struct {
	inner *server.Server
}

// NewServer returns a server for db. The database's lifecycle belongs
// to the caller unless Serve is used, which closes it on shutdown.
func NewServer(db *DB) *Server {
	return &Server{inner: server.New(db.Database)}
}

// Handler returns the server's root http.Handler, for mounting on a
// caller-owned http.Server (tests use httptest.NewServer around it).
func (s *Server) Handler() http.Handler { return s.inner.Handler() }

// SetShutdownTimeout bounds the graceful drain Serve performs when
// its context is canceled (default 5s).
func (s *Server) SetShutdownTimeout(d time.Duration) { s.inner.ShutdownTimeout = d }

// Serve accepts connections on ln until ctx is canceled, then shuts
// down gracefully: stop accepting, drain in-flight requests, drain
// the database's sessions (late arrivals get ErrDatabaseClosed, never
// a hang) and close the database. The serve subcommand cancels ctx on
// SIGTERM/SIGINT.
func (s *Server) Serve(ctx context.Context, ln net.Listener) error {
	return s.inner.Serve(ctx, ln)
}
