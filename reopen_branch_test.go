package decibel_test

// Regression test: a branch that was created but never committed to
// must still hold its branch-point snapshot after the dataset is closed
// and reopened. The tuple-first and hybrid engines used to recover such
// branches as empty (their own commit logs have no entries yet), which
// made any cross-process branch-then-write workflow — e.g. the CLI —
// silently lose the parent's records.

import (
	"testing"

	"decibel"
)

func TestReopenBranchHead(t *testing.T) {
	for _, engine := range []string{"tuple-first", "version-first", "hybrid"} {
		t.Run(engine, func(t *testing.T) {
			dir := t.TempDir()
			db, err := decibel.Open(dir, decibel.WithEngine(engine))
			if err != nil {
				t.Fatal(err)
			}
			schema := decibel.NewSchema().Int64("id").Int64("v").MustBuild()
			if _, err := db.CreateTable("r", schema); err != nil {
				t.Fatal(err)
			}
			if _, _, err := db.Init("init"); err != nil {
				t.Fatal(err)
			}
			if _, err := db.Commit("master", func(tx *decibel.Tx) error {
				for pk := int64(1); pk <= 3; pk++ {
					rec := decibel.NewRecord(schema)
					rec.SetPK(pk)
					rec.Set(1, pk*10)
					if err := tx.Insert("r", rec); err != nil {
						return err
					}
				}
				return nil
			}); err != nil {
				t.Fatal(err)
			}
			if _, err := db.Branch("master", "dev"); err != nil {
				t.Fatal(err)
			}
			count := func(db *decibel.DB, branch string) int {
				n := 0
				rows, errf := db.Rows("r", branch)
				for range rows {
					n++
				}
				if err := errf(); err != nil {
					t.Fatal(err)
				}
				return n
			}
			if n := count(db, "dev"); n != 3 {
				t.Fatalf("before reopen: dev has %d records, want 3", n)
			}
			db.Close()
			db2, err := decibel.Open(dir, decibel.WithEngine(engine))
			if err != nil {
				t.Fatal(err)
			}
			defer db2.Close()
			if n := count(db2, "master"); n != 3 {
				t.Fatalf("after reopen: master has %d records, want 3", n)
			}
			if n := count(db2, "dev"); n != 3 {
				t.Fatalf("after reopen: dev has %d records, want 3", n)
			}
		})
	}
}
