package decibel

import (
	"decibel/internal/record"
)

// SchemaBuilder builds a Schema fluently:
//
//	schema, err := decibel.NewSchema().
//		Int64("id").
//		Float64("price").
//		Int32("qty").
//		Bytes("sku", 16).
//		Build()
//
// Column 0 must be Int64; it is the primary key Decibel uses to track
// records across versions.
type SchemaBuilder struct {
	cols []record.Column
}

// NewSchema starts an empty schema.
func NewSchema() *SchemaBuilder { return &SchemaBuilder{} }

// Int64 appends an 8-byte signed integer column.
func (b *SchemaBuilder) Int64(name string) *SchemaBuilder {
	b.cols = append(b.cols, record.Column{Name: name, Type: record.Int64})
	return b
}

// Int32 appends a 4-byte signed integer column.
func (b *SchemaBuilder) Int32(name string) *SchemaBuilder {
	b.cols = append(b.cols, record.Column{Name: name, Type: record.Int32})
	return b
}

// Float64 appends an 8-byte IEEE 754 double column, read and written
// with Record.GetFloat64 and Record.SetFloat64.
func (b *SchemaBuilder) Float64(name string) *SchemaBuilder {
	b.cols = append(b.cols, record.Column{Name: name, Type: record.Float64})
	return b
}

// Bytes appends a byte-string column holding values up to size bytes
// (records stay fixed-width: the column occupies size bytes plus a
// two-byte length prefix). Read and written with Record.GetBytes and
// Record.SetBytes.
func (b *SchemaBuilder) Bytes(name string, size int) *SchemaBuilder {
	b.cols = append(b.cols, record.Column{Name: name, Type: record.Bytes, Size: size})
	return b
}

// Int32Column describes a 4-byte signed integer column, for
// Tx.AddColumn.
func Int32Column(name string) Column { return Column{Name: name, Type: record.Int32} }

// Int64Column describes an 8-byte signed integer column.
func Int64Column(name string) Column { return Column{Name: name, Type: record.Int64} }

// Float64Column describes an 8-byte IEEE 754 double column.
func Float64Column(name string) Column { return Column{Name: name, Type: record.Float64} }

// BytesColumn describes a fixed-capacity byte-string column holding
// values up to size bytes.
func BytesColumn(name string, size int) Column {
	return Column{Name: name, Type: record.Bytes, Size: size}
}

// Build validates and returns the schema.
func (b *SchemaBuilder) Build() (*Schema, error) {
	return record.NewSchema(b.cols...)
}

// MustBuild is Build panicking on error, for fixed schemas.
func (b *SchemaBuilder) MustBuild() *Schema {
	s, err := b.Build()
	if err != nil {
		panic(err)
	}
	return s
}
