package decibel_test

// Schema evolution end-to-end: add a column with a default on one
// branch, verify old rows decode with the default and old versions
// keep their shape, exercise a three-way merge over rows from mixed
// schema versions, and check everything again after close/reopen — on
// all three storage engines.

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"decibel"
)

func evolutionEngines() []string { return []string{"tuple-first", "version-first", "hybrid"} }

// seedEvolution builds the shared fixture:
//
//	master: create products(id, qty), insert pks 1..5 (qty = 10*pk), commit  -> master@1 (epoch 0)
//	branch dev off master's head
//	master: update pk 4 qty=444, commit                                      -> old shape
//	dev:    AddColumn price (default 9.5), commit                            -> epoch 1
//	dev:    insert pk 6 (qty 60, price 6.5), update pk 4 price=4.0, commit
//	merge dev into master (three-way)
func seedEvolution(t *testing.T, dir, engine string) *decibel.DB {
	t.Helper()
	db, err := decibel.Open(dir, decibel.WithEngine(engine))
	if err != nil {
		t.Fatal(err)
	}
	schema := decibel.NewSchema().Int64("id").Int32("qty").MustBuild()
	tbl, err := db.CreateTable("products", schema)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := db.Init("init"); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Commit("master", func(tx *decibel.Tx) error {
		for pk := int64(1); pk <= 5; pk++ {
			rec := decibel.NewRecord(schema)
			rec.SetPK(pk)
			rec.Set(1, 10*pk)
			if err := tx.Insert("products", rec); err != nil {
				return err
			}
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Branch("master", "dev"); err != nil {
		t.Fatal(err)
	}
	// master keeps writing the old shape after the branch point.
	if _, err := db.Commit("master", func(tx *decibel.Tx) error {
		rec := decibel.NewRecord(schema)
		rec.SetPK(4)
		rec.Set(1, 444)
		return tx.Insert("products", rec)
	}); err != nil {
		t.Fatal(err)
	}
	// dev evolves the schema; the change applies at commit.
	if _, err := db.Commit("dev", func(tx *decibel.Tx) error {
		return tx.AddColumn("products", decibel.Float64Column("price"), decibel.Default(9.5))
	}); err != nil {
		t.Fatal(err)
	}
	// From the next transaction the column is writable on dev.
	wide := tbl.Schema()
	if wide.ColumnIndex("price") < 0 {
		t.Fatal("Table.Schema() does not show the added column")
	}
	if _, err := db.Commit("dev", func(tx *decibel.Tx) error {
		rec := decibel.NewRecord(wide)
		rec.SetPK(6)
		rec.Set(1, 60)
		rec.SetFloat64(2, 6.5)
		if err := tx.Insert("products", rec); err != nil {
			return err
		}
		rec = decibel.NewRecord(wide)
		rec.SetPK(4)
		rec.Set(1, 40) // unchanged vs the branch point
		rec.SetFloat64(2, 4.0)
		return tx.Insert("products", rec)
	}); err != nil {
		t.Fatal(err)
	}
	// Three-way merge: master changed pk4's qty, dev changed pk4's
	// price — disjoint fields across schema versions auto-merge.
	if _, _, err := db.Merge("master", "dev"); err != nil {
		t.Fatal(err)
	}
	return db
}

// verifyEvolution checks the fixture's invariants; it runs both before
// and after a close/reopen.
func verifyEvolution(t *testing.T, db *decibel.DB, engine string) {
	t.Helper()

	// Head reads of dev: old rows show the default, new row its value.
	price := make(map[int64]float64)
	qty := make(map[int64]int64)
	rows, rowsErr := db.Rows("products", "dev")
	for rec := range rows {
		i := rec.Schema().ColumnIndex("price")
		if i < 0 {
			t.Fatalf("[%s] dev head row lacks the price column: %v", engine, rec)
		}
		price[rec.PK()] = rec.GetFloat64(i)
		qty[rec.PK()] = rec.Get(1)
	}
	if err := rowsErr(); err != nil {
		t.Fatalf("[%s] dev rows: %v", engine, err)
	}
	if len(price) != 6 {
		t.Fatalf("[%s] dev has %d rows, want 6", engine, len(price))
	}
	if price[1] != 9.5 || price[6] != 6.5 || price[4] != 4.0 {
		t.Fatalf("[%s] dev prices wrong: %v", engine, price)
	}

	// The merge carried the column to master, resolving mixed-version
	// rows field-wise: pk4 keeps master's qty and dev's price.
	price = map[int64]float64{}
	rows, rowsErr = db.Rows("products", "master")
	for rec := range rows {
		i := rec.Schema().ColumnIndex("price")
		if i < 0 {
			t.Fatalf("[%s] merged master row lacks the price column", engine)
		}
		price[rec.PK()] = rec.GetFloat64(i)
		qty[rec.PK()] = rec.Get(1)
	}
	if err := rowsErr(); err != nil {
		t.Fatalf("[%s] master rows: %v", engine, err)
	}
	if len(price) != 6 {
		t.Fatalf("[%s] merged master has %d rows, want 6", engine, len(price))
	}
	if qty[4] != 444 || price[4] != 4.0 {
		t.Fatalf("[%s] mixed-version three-way merge wrong for pk4: qty=%d price=%g (want 444, 4.0)",
			engine, qty[4], price[4])
	}
	if price[2] != 9.5 || price[6] != 6.5 {
		t.Fatalf("[%s] merged master prices wrong: %v", engine, price)
	}

	// Historical reads keep the schema as of the commit: master@1
	// predates the change, so its rows still have exactly two columns.
	s, err := db.NewSession()
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if err := s.CheckoutAt("master", 1); err != nil {
		t.Fatalf("[%s] checkout master@1: %v", engine, err)
	}
	n := 0
	if err := s.Scan("products", func(rec *decibel.Record) bool {
		n++
		if rec.Schema().NumColumns() != 2 {
			t.Fatalf("[%s] master@1 row has %d columns, want 2", engine, rec.Schema().NumColumns())
		}
		return true
	}); err != nil {
		t.Fatalf("[%s] scan master@1: %v", engine, err)
	}
	if n != 5 {
		t.Fatalf("[%s] master@1 has %d rows, want 5", engine, n)
	}

	// The query builder resolves predicates against the version's
	// schema: price works on dev's head and on the merged master...
	cnt, err := db.Query("products").On("dev").Where(decibel.Col("price").Lt(9.0)).Count()
	if err != nil {
		t.Fatalf("[%s] price query on dev: %v", engine, err)
	}
	if cnt != 2 { // pk 4 (4.0) and pk 6 (6.5); defaults are 9.5
		t.Fatalf("[%s] dev price<9 count = %d, want 2", engine, cnt)
	}
	// ... but At a version predating the column it is not yet there.
	_, err = db.Query("products").On("master").At(1).Where(decibel.Col("price").Lt(9.0)).Count()
	if !errors.Is(err, decibel.ErrColumnNotYetAdded) {
		t.Fatalf("[%s] price@master@1 = %v, want ErrColumnNotYetAdded", engine, err)
	}
	// Selecting it too early fails the same way.
	rows, rowsErr = db.Query("products").On("master").At(1).Select("price").Rows()
	for range rows {
	}
	if err := rowsErr(); !errors.Is(err, decibel.ErrColumnNotYetAdded) {
		t.Fatalf("[%s] select price@master@1 = %v, want ErrColumnNotYetAdded", engine, err)
	}
	// At the merge commit it resolves fine, defaults filled.
	sum, err := db.Query("products").On("master").Sum("price")
	if err != nil {
		t.Fatalf("[%s] sum(price) on master: %v", engine, err)
	}
	if want := 9.5*4 + 4.0 + 6.5; sum != want {
		t.Fatalf("[%s] sum(price) = %g, want %g", engine, sum, want)
	}
}

func TestSchemaEvolutionAcrossEnginesAndReopen(t *testing.T) {
	for _, engine := range evolutionEngines() {
		t.Run(engine, func(t *testing.T) {
			dir := t.TempDir()
			db := seedEvolution(t, dir, engine)
			verifyEvolution(t, db, engine)
			if err := db.Close(); err != nil {
				t.Fatal(err)
			}
			// Reopen: the catalog history, per-segment schema-version ids
			// and commit epoch stamps all come back from disk.
			db, err := decibel.Open(dir, decibel.WithEngine(engine))
			if err != nil {
				t.Fatalf("[%s] reopen: %v", engine, err)
			}
			defer db.Close()
			verifyEvolution(t, db, engine)
		})
	}
}

// TestSchemaEvolutionWriteGates covers the write-side version checks:
// a record carrying a column a branch has not adopted is rejected with
// ErrColumnNotYetAdded, and old-shape records keep working everywhere.
func TestSchemaEvolutionWriteGates(t *testing.T) {
	for _, engine := range evolutionEngines() {
		t.Run(engine, func(t *testing.T) {
			db, err := decibel.Open(t.TempDir(), decibel.WithEngine(engine))
			if err != nil {
				t.Fatal(err)
			}
			defer db.Close()
			schema := decibel.NewSchema().Int64("id").Int32("qty").MustBuild()
			tbl, err := db.CreateTable("t", schema)
			if err != nil {
				t.Fatal(err)
			}
			if _, _, err := db.Init("init"); err != nil {
				t.Fatal(err)
			}
			if _, err := db.Branch("master", "dev"); err != nil {
				t.Fatal(err)
			}
			if _, err := db.Commit("dev", func(tx *decibel.Tx) error {
				return tx.AddColumn("t", decibel.Int32Column("extra"), decibel.Default(7))
			}); err != nil {
				t.Fatal(err)
			}
			wide := tbl.Schema()

			// The new column is writable on dev...
			if _, err := db.Commit("dev", func(tx *decibel.Tx) error {
				rec := decibel.NewRecord(wide)
				rec.SetPK(1)
				return tx.Insert("t", rec)
			}); err != nil {
				t.Fatal(err)
			}
			// ... but not on master, which never adopted the change.
			_, err = db.Commit("master", func(tx *decibel.Tx) error {
				rec := decibel.NewRecord(wide)
				rec.SetPK(2)
				return tx.Insert("t", rec)
			})
			if !errors.Is(err, decibel.ErrColumnNotYetAdded) {
				t.Fatalf("wide insert on master = %v, want ErrColumnNotYetAdded", err)
			}
			// Old-shape records still insert fine on both branches.
			for _, branch := range []string{"master", "dev"} {
				if _, err := db.Commit(branch, func(tx *decibel.Tx) error {
					rec := decibel.NewRecord(schema)
					rec.SetPK(3)
					rec.Set(1, 33)
					return tx.Insert("t", rec)
				}); err != nil {
					t.Fatalf("old-shape insert on %s: %v", branch, err)
				}
			}
			// On dev the old-shape row reads back widened with the
			// declared default; the wide row wrote its own (zero) value.
			rows, rowsErr := db.Query("t").On("dev").Where(decibel.Col("extra").Eq(7)).Rows()
			var matched []int64
			for rec := range rows {
				matched = append(matched, rec.PK())
			}
			if err := rowsErr(); err != nil {
				t.Fatal(err)
			}
			if len(matched) != 1 || matched[0] != 3 {
				t.Fatalf("extra=7 on dev matched %v, want [3]", matched)
			}
		})
	}
}

// TestSchemaEvolutionDropColumn covers the logical drop: the column
// disappears from the visible schema but earlier versions keep it.
func TestSchemaEvolutionDropColumn(t *testing.T) {
	db, err := decibel.Open(t.TempDir(), decibel.WithEngine("hybrid"))
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	schema := decibel.NewSchema().Int64("id").Int32("qty").Float64("price").MustBuild()
	tbl, err := db.CreateTable("t", schema)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := db.Init("init"); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Commit("master", func(tx *decibel.Tx) error {
		rec := decibel.NewRecord(schema)
		rec.SetPK(1)
		rec.Set(1, 10)
		rec.SetFloat64(2, 1.5)
		return tx.Insert("t", rec)
	}); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Commit("master", func(tx *decibel.Tx) error {
		return tx.DropColumn("t", "price")
	}); err != nil {
		t.Fatal(err)
	}
	if tbl.Schema().ColumnIndex("price") >= 0 {
		t.Fatal("dropped column still in the visible schema")
	}
	// Head reads lack it; the historical version still has it.
	rows, rowsErr := db.Rows("t", "master")
	for rec := range rows {
		if rec.Schema().ColumnIndex("price") >= 0 {
			t.Fatal("dropped column leaked into a head read")
		}
	}
	if err := rowsErr(); err != nil {
		t.Fatal(err)
	}
	n, err := db.Query("t").On("master").At(1).Where(decibel.Col("price").Gt(1.0)).Count()
	if err != nil {
		t.Fatalf("querying the dropped column at an earlier version: %v", err)
	}
	if n != 1 {
		t.Fatalf("price>1 at master@1 = %d, want 1", n)
	}
	// At the head it is gone.
	if _, err := db.Query("t").On("master").Where(decibel.Col("price").Gt(1.0)).Count(); !errors.Is(err, decibel.ErrNoSuchColumn) {
		t.Fatalf("price at head = %v, want ErrNoSuchColumn", err)
	}
	// The primary key cannot be dropped.
	if _, err := db.Commit("master", func(tx *decibel.Tx) error {
		return tx.DropColumn("t", "id")
	}); !errors.Is(err, decibel.ErrSchemaChange) {
		t.Fatalf("dropping the pk = %v, want ErrSchemaChange", err)
	}
}

// copyTree copies a dataset directory recursively (crash-simulation
// snapshots).
func copyTree(t *testing.T, src, dst string) {
	t.Helper()
	if err := filepath.WalkDir(src, func(p string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		rel, err := filepath.Rel(src, p)
		if err != nil {
			return err
		}
		target := filepath.Join(dst, rel)
		if d.IsDir() {
			return os.MkdirAll(target, 0o755)
		}
		data, err := os.ReadFile(p)
		if err != nil {
			return err
		}
		return os.WriteFile(target, data, 0o644)
	}); err != nil {
		t.Fatal(err)
	}
}

// TestSchemaChangeRollsBackWithTornCommit simulates the crash window
// of a schema-change commit: the catalog was persisted with the new
// version but the commit itself never reached the version graph. On
// reopen the catalog history must reconcile against the graph's
// newest stamped epoch — the uncommitted change disappears with its
// commit and the dataset keeps working in the old shape.
func TestSchemaChangeRollsBackWithTornCommit(t *testing.T) {
	for _, engine := range evolutionEngines() {
		t.Run(engine, func(t *testing.T) {
			dirA, dirB := t.TempDir(), t.TempDir()
			db, err := decibel.Open(dirA, decibel.WithEngine(engine))
			if err != nil {
				t.Fatal(err)
			}
			schema := decibel.NewSchema().Int64("id").Int32("qty").MustBuild()
			if _, err := db.CreateTable("t", schema); err != nil {
				t.Fatal(err)
			}
			if _, _, err := db.Init("init"); err != nil {
				t.Fatal(err)
			}
			if _, err := db.Commit("master", func(tx *decibel.Tx) error {
				rec := decibel.NewRecord(schema)
				rec.SetPK(1)
				rec.Set(1, 10)
				return tx.Insert("t", rec)
			}); err != nil {
				t.Fatal(err)
			}
			if err := db.Close(); err != nil {
				t.Fatal(err)
			}
			// Snapshot the consistent pre-DDL state, run the schema
			// change, then graft only the new catalog onto the snapshot:
			// exactly what a crash between the catalog write and the
			// graph write leaves behind.
			copyTree(t, dirA, dirB)
			db, err = decibel.Open(dirA, decibel.WithEngine(engine))
			if err != nil {
				t.Fatal(err)
			}
			if _, err := db.Commit("master", func(tx *decibel.Tx) error {
				return tx.AddColumn("t", decibel.Int32Column("extra"), decibel.Default(7))
			}); err != nil {
				t.Fatal(err)
			}
			if err := db.Close(); err != nil {
				t.Fatal(err)
			}
			cat, err := os.ReadFile(filepath.Join(dirA, "catalog.json"))
			if err != nil {
				t.Fatal(err)
			}
			if err := os.WriteFile(filepath.Join(dirB, "catalog.json"), cat, 0o644); err != nil {
				t.Fatal(err)
			}

			db, err = decibel.Open(dirB, decibel.WithEngine(engine))
			if err != nil {
				t.Fatalf("reopen after torn schema commit: %v", err)
			}
			defer db.Close()
			tbl, err := db.TableByName("t")
			if err != nil {
				t.Fatal(err)
			}
			if tbl.Schema().ColumnIndex("extra") >= 0 {
				t.Fatal("uncommitted schema change survived the torn commit")
			}
			// The dataset keeps working in the old shape, and the change
			// can be re-applied cleanly.
			if _, err := db.Commit("master", func(tx *decibel.Tx) error {
				return tx.AddColumn("t", decibel.Int32Column("extra"), decibel.Default(7))
			}); err != nil {
				t.Fatalf("re-applying the rolled-back change: %v", err)
			}
			if tbl.Schema().ColumnIndex("extra") < 0 {
				t.Fatal("re-applied column missing")
			}
			n, err := db.Query("t").On("master").Where(decibel.Col("extra").Eq(7)).Count()
			if err != nil {
				t.Fatal(err)
			}
			if n != 1 {
				t.Fatalf("default fill after re-apply: %d rows, want 1", n)
			}
		})
	}
}

// TestSchemaEvolutionLinearChain: schema evolution is one linear chain
// of epochs — a branch whose head has not adopted the newest schema
// change (by making it or merging it) cannot commit its own change;
// without this gate the second change would silently surface the
// first branch's unmerged columns.
func TestSchemaEvolutionLinearChain(t *testing.T) {
	db, err := decibel.Open(t.TempDir(), decibel.WithEngine("hybrid"))
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	schema := decibel.NewSchema().Int64("id").Int32("qty").MustBuild()
	tbl, err := db.CreateTable("t", schema)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := db.Init("init"); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Branch("master", "dev"); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Commit("dev", func(tx *decibel.Tx) error {
		return tx.AddColumn("t", decibel.Int32Column("a"), decibel.Default(1))
	}); err != nil {
		t.Fatal(err)
	}
	// master has not merged dev's change: its own change is rejected ...
	_, err = db.Commit("master", func(tx *decibel.Tx) error {
		return tx.AddColumn("t", decibel.Int32Column("b"), decibel.Default(2))
	})
	if !errors.Is(err, decibel.ErrSchemaChange) {
		t.Fatalf("diverged schema change = %v, want ErrSchemaChange", err)
	}
	// ... and master must not see dev's unmerged column.
	if _, err := db.Query("t").On("master").Select("a").Count(); !errors.Is(err, decibel.ErrColumnNotYetAdded) {
		t.Fatalf("unmerged column on master = %v, want ErrColumnNotYetAdded", err)
	}
	// The evolving branch may keep evolving; after a merge, master may too.
	if _, err := db.Commit("dev", func(tx *decibel.Tx) error {
		return tx.AddColumn("t", decibel.Int32Column("c"), decibel.Default(3))
	}); err != nil {
		t.Fatalf("second change on the evolving branch: %v", err)
	}
	if _, _, err := db.Merge("master", "dev"); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Commit("master", func(tx *decibel.Tx) error {
		return tx.AddColumn("t", decibel.Int32Column("b"), decibel.Default(2))
	}); err != nil {
		t.Fatalf("change after merge: %v", err)
	}
	for _, col := range []string{"a", "b", "c"} {
		if tbl.Schema().ColumnIndex(col) < 0 {
			t.Fatalf("column %q missing after merge + change", col)
		}
	}
}

// TestConcurrentSchemaRotation races head scans of one branch against
// writes on another that keep rotating storage to wider layouts (new
// extents in tuple-first, new head segments in vf/hy). Runs under the
// CI race detector via the TestConcurrent pattern.
func TestConcurrentSchemaRotation(t *testing.T) {
	for _, engine := range evolutionEngines() {
		t.Run(engine, func(t *testing.T) {
			db, err := decibel.Open(t.TempDir(), decibel.WithEngine(engine))
			if err != nil {
				t.Fatal(err)
			}
			defer db.Close()
			schema := decibel.NewSchema().Int64("id").Int32("qty").MustBuild()
			tbl, err := db.CreateTable("t", schema)
			if err != nil {
				t.Fatal(err)
			}
			if _, _, err := db.Init("init"); err != nil {
				t.Fatal(err)
			}
			if _, err := db.Commit("master", func(tx *decibel.Tx) error {
				for pk := int64(1); pk <= 20; pk++ {
					rec := decibel.NewRecord(schema)
					rec.SetPK(pk)
					rec.Set(1, pk)
					if err := tx.Insert("t", rec); err != nil {
						return err
					}
				}
				return nil
			}); err != nil {
				t.Fatal(err)
			}
			if _, err := db.Branch("master", "dev"); err != nil {
				t.Fatal(err)
			}

			done := make(chan struct{})
			scanErrs := make(chan error, 1)
			go func() {
				defer close(scanErrs)
				for {
					select {
					case <-done:
						return
					default:
					}
					n := 0
					rows, rowsErr := db.Rows("t", "master")
					for range rows {
						n++
					}
					if err := rowsErr(); err != nil {
						scanErrs <- err
						return
					}
					if n != 20 {
						scanErrs <- fmt.Errorf("master scan saw %d rows, want 20", n)
						return
					}
				}
			}()
			// Each round adds a column on dev (bumping the epoch) and
			// inserts, which rotates dev's storage to the wider layout
			// while the other goroutine keeps scanning master.
			for i := 0; i < 4; i++ {
				col := decibel.Int32Column(fmt.Sprintf("c%d", i))
				if _, err := db.Commit("dev", func(tx *decibel.Tx) error {
					return tx.AddColumn("t", col, decibel.Default(i))
				}); err != nil {
					t.Fatal(err)
				}
				if _, err := db.Commit("dev", func(tx *decibel.Tx) error {
					rec := decibel.NewRecord(tbl.Schema())
					rec.SetPK(int64(100 + i))
					return tx.Insert("t", rec)
				}); err != nil {
					t.Fatal(err)
				}
			}
			close(done)
			if err := <-scanErrs; err != nil {
				t.Fatal(err)
			}
		})
	}
}
