package decibel_test

// Order-aware segment visiting: an OrderBy+Limit query visits scan
// units sorted by the order column's zone bound and skips units that
// provably cannot reach the top-k — and its output must stay
// byte-identical to the Sequential() gather baseline, including
// arrival-order tie-breaks, for every engine, order column, direction,
// limit and predicate. The test also asserts units were actually
// skipped (decibel.ordered_skips moved), so a silently disabled visit
// path cannot pass.

import (
	"fmt"
	"math/rand"
	"testing"

	"decibel"
	iquery "decibel/internal/query"
)

func TestOrderedVisitEquivalence(t *testing.T) {
	skipsBefore := iquery.CountOrderedSkips()
	for _, engine := range facadeEngines {
		t.Run(engine, func(t *testing.T) {
			db := buildPruningDB(t, engine)

			type ordered struct {
				col  string
				desc bool
			}
			orders := []ordered{
				{"id", false}, {"id", true},
				{"v", false}, {"v", true},
				{"price", false}, {"price", true}, // widened default + duplicates: heavy ties
				{"sku", false}, {"sku", true}, // bytes bounds, truncated prefixes
			}
			limits := []int{1, 3, 17, 1000} // beyond-result-size limit keeps everything

			preds := []iquery.Expr{
				{},
				iquery.Col("v").Ge(60),
				iquery.Col("sku").HasPrefix("b"),
			}
			rng := rand.New(rand.NewSource(0x0bdeed))
			for i := 0; i < 8; i++ {
				preds = append(preds, randExpr(rng, 1))
			}

			run := func(q *decibel.Query) ([]string, error) { return collectRows(q.Rows()) }
			diff := func(q *decibel.Query) ([]string, error) { return collectRows(q.Diff("master", "b1")) }

			for pi, where := range preds {
				for _, o := range orders {
					for _, limit := range limits {
						label := fmt.Sprintf("pred[%d] %s desc=%v limit=%d", pi, o.col, o.desc, limit)
						build := func(q *decibel.Query) *decibel.Query {
							return q.Where(where).OrderBy(o.col, o.desc).Limit(limit)
						}
						// Single-branch head scan.
						got, gotErr := run(build(db.Query("r").On("master")))
						want, wantErr := run(build(db.Query("r").On("master")).Sequential())
						compareStreams(t, label+" scan", got, want, gotErr, wantErr)
						// Historical commit scan.
						got, gotErr = run(build(db.Query("r").On("master").At(2)))
						want, wantErr = run(build(db.Query("r").On("master").At(2)).Sequential())
						compareStreams(t, label+" at", got, want, gotErr, wantErr)
						// Multi-branch heads scan.
						got, gotErr = run(build(db.Query("r").Heads()))
						want, wantErr = run(build(db.Query("r").Heads()).Sequential())
						compareStreams(t, label+" heads", got, want, gotErr, wantErr)
						// Positive diff.
						got, gotErr = diff(build(db.Query("r")))
						want, wantErr = diff(build(db.Query("r")).Sequential())
						compareStreams(t, label+" diff", got, want, gotErr, wantErr)
					}
				}
			}
		})
	}
	if skipsAfter := iquery.CountOrderedSkips(); skipsAfter == skipsBefore {
		t.Fatalf("ordered visitor never skipped a unit (ordered_skips stuck at %d)", skipsBefore)
	}
}
