package decibel_test

// Crash-safety regression test combining two recovery paths: the
// commit-log torn-tail truncation (a crash mid-append leaves a partial
// entry at the end of a branch history file, which open must detect by
// length and discard) and the never-committed-branch restoration fixed
// in an earlier PR (a branch created but not yet committed to recovers
// its branch-point snapshot from its parent's log). A single crash can
// leave a dataset in both states at once — one branch's log torn, a
// sibling branch log-less — and reopening must recover every committed
// record of both.

import (
	"os"
	"path/filepath"
	"testing"

	"decibel"
)

// tearCommitLogs appends garbage to every engine commit-history file
// under dir, simulating a crash that tore the final log append (the
// commit it belonged to never reached the version graph).
func tearCommitLogs(t *testing.T, dir string) int {
	t.Helper()
	torn := 0
	err := filepath.WalkDir(dir, func(path string, d os.DirEntry, err error) error {
		if err != nil || d.IsDir() || filepath.Ext(path) != ".hist" {
			return err
		}
		f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			return err
		}
		// A plausible-looking but truncated entry: a base-delta header
		// declaring a 200-byte payload followed by only a few bytes.
		if _, err := f.Write([]byte{0, 200, 1, 2, 3}); err != nil {
			f.Close()
			return err
		}
		torn++
		return f.Close()
	})
	if err != nil {
		t.Fatal(err)
	}
	return torn
}

func TestRecoverTornLogAndUncommittedBranch(t *testing.T) {
	// The torn-tail path exists in the bitmap commit logs, which only
	// tuple-first and hybrid use (version-first rolls back through its
	// SafeCount catalog instead).
	for _, engine := range []string{"tuple-first", "hybrid"} {
		t.Run(engine, func(t *testing.T) {
			dir := t.TempDir()
			db, err := decibel.Open(dir, decibel.WithEngine(engine))
			if err != nil {
				t.Fatal(err)
			}
			schema := decibel.NewSchema().Int64("id").Int64("v").MustBuild()
			if _, err := db.CreateTable("r", schema); err != nil {
				t.Fatal(err)
			}
			if _, _, err := db.Init("init"); err != nil {
				t.Fatal(err)
			}
			put := func(branch string, pks ...int64) {
				t.Helper()
				if _, err := db.Commit(branch, func(tx *decibel.Tx) error {
					recs := make([]*decibel.Record, len(pks))
					for i, pk := range pks {
						rec := decibel.NewRecord(schema)
						rec.SetPK(pk)
						rec.Set(1, pk*10)
						recs[i] = rec
					}
					return tx.InsertBatch("r", recs)
				}); err != nil {
					t.Fatal(err)
				}
			}
			put("master", 1, 2, 3)
			put("master", 4, 5)
			// A branch that commits once, and one that never commits:
			// the latter must recover from its branch point alone.
			if _, err := db.Branch("master", "dev"); err != nil {
				t.Fatal(err)
			}
			put("dev", 6)
			if _, err := db.Branch("master", "wip"); err != nil {
				t.Fatal(err)
			}
			db.Close()

			if torn := tearCommitLogs(t, dir); torn == 0 {
				t.Fatal("no commit-history files found to tear")
			}

			db2, err := decibel.Open(dir, decibel.WithEngine(engine))
			if err != nil {
				t.Fatalf("reopen after torn logs: %v", err)
			}
			defer db2.Close()

			want := map[string][]int64{
				"master": {1, 2, 3, 4, 5},
				"dev":    {1, 2, 3, 4, 5, 6},
				"wip":    {1, 2, 3, 4, 5},
			}
			for branch, pks := range want {
				got, err := db2.Query("r").On(branch).Count()
				if err != nil {
					t.Fatalf("%s: %v", branch, err)
				}
				if got != len(pks) {
					t.Fatalf("%s has %d records after recovery, want %d", branch, got, len(pks))
				}
				for _, pk := range pks {
					n, err := db2.Query("r").On(branch).
						Where(decibel.Col("id").Eq(pk).And(decibel.Col("v").Eq(pk * 10))).Count()
					if err != nil || n != 1 {
						t.Fatalf("%s: pk %d -> %d matches (%v)", branch, pk, n, err)
					}
				}
			}

			// The recovered dataset must accept new commits: the torn
			// entries were truncated, so log positions line up with the
			// version graph again.
			if _, err := db2.Commit("wip", func(tx *decibel.Tx) error {
				rec := decibel.NewRecord(schema)
				rec.SetPK(7)
				rec.Set(1, 70)
				return tx.Insert("r", rec)
			}); err != nil {
				t.Fatalf("commit after recovery: %v", err)
			}
			if n, err := db2.Query("r").On("wip").Count(); err != nil || n != 6 {
				t.Fatalf("wip after post-recovery commit: %d (%v)", n, err)
			}
		})
	}
}
