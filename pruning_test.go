package decibel_test

// Zone-map pruning correctness: for random predicates over a dataset
// whose segments span schema epochs (widened defaults must participate
// in bounds), branch points and a merge, a pruned scan must emit
// exactly what the unpruned scan emits — on every engine, for every
// query shape (single branch, historical At, multi-branch, diff). The
// test also asserts pruning actually engaged (segments were skipped),
// so a silently disabled fast path cannot pass.

import (
	"context"
	"fmt"
	"math/rand"
	"sort"
	"testing"

	"decibel"
	iquery "decibel/internal/query"
	"decibel/internal/record"
	"decibel/internal/store"
)

// buildPruningDB loads a small dataset engineered to spread values
// across segments: three insert waves with disjoint ranges, a branch
// per wave boundary (freezing hybrid heads), a schema change between
// wave one and two (price exists only from epoch 1, default 7.5), a
// few deletes and a merge.
func buildPruningDB(t *testing.T, engine string, opts ...decibel.Option) *decibel.DB {
	t.Helper()
	return buildPruningDBIn(t, t.TempDir(), engine, opts...)
}

// buildPruningDBIn is buildPruningDB against a caller-owned directory,
// for tests that close and reopen the dataset (compaction recovery).
func buildPruningDBIn(t *testing.T, dir, engine string, opts ...decibel.Option) *decibel.DB {
	t.Helper()
	db, err := decibel.Open(dir, append([]decibel.Option{decibel.WithEngine(engine)}, opts...)...)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { db.Close() })
	base := decibel.NewSchema().Int64("id").Int64("v").Bytes("sku", 8).MustBuild()
	if _, err := db.CreateTable("r", base); err != nil {
		t.Fatal(err)
	}
	if _, _, err := db.Init("init"); err != nil {
		t.Fatal(err)
	}
	mk := func(s *decibel.Schema, pk int64, tag byte) *decibel.Record {
		rec := decibel.NewRecord(s)
		rec.SetPK(pk)
		rec.Set(1, pk)
		if err := rec.SetBytes(2, []byte(fmt.Sprintf("%c%03d", tag, pk))); err != nil {
			t.Fatal(err)
		}
		return rec
	}
	load := func(branch string, s *decibel.Schema, lo, hi int64, tag byte, price float64) {
		t.Helper()
		if _, err := db.Commit(branch, func(tx *decibel.Tx) error {
			recs := make([]*decibel.Record, 0, hi-lo)
			for pk := lo; pk < hi; pk++ {
				rec := mk(s, pk, tag)
				if i := s.ColumnIndex("price"); i >= 0 {
					rec.SetFloat64(i, price+float64(pk%7))
				}
				recs = append(recs, rec)
			}
			return tx.InsertBatch("r", recs)
		}); err != nil {
			t.Fatal(err)
		}
	}

	load("master", base, 0, 50, 'a', 0) // wave 1, epoch 0
	if _, err := db.Branch("master", "b1"); err != nil {
		t.Fatal(err) // b1 stays at epoch 0 forever
	}
	if _, err := db.Commit("master", func(tx *decibel.Tx) error {
		return tx.AddColumn("r", decibel.Column{Name: "price", Type: decibel.Float64}, decibel.Default(7.5))
	}); err != nil {
		t.Fatal(err)
	}
	tbl, err := db.TableByName("r")
	if err != nil {
		t.Fatal(err)
	}
	wide := tbl.Schema() // id, v, sku, price
	load("master", wide, 50, 100, 'b', 40)
	if _, err := db.Branch("master", "b2"); err != nil {
		t.Fatal(err)
	}
	load("b2", wide, 100, 150, 'c', 90)
	if _, err := db.Commit("master", func(tx *decibel.Tx) error {
		for pk := int64(10); pk < 15; pk++ {
			if err := tx.Delete("r", pk); err != nil {
				return err
			}
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if _, _, err := db.Merge("master", "b2"); err != nil {
		t.Fatal(err)
	}
	return db
}

// randExpr builds a random predicate tree of bounded depth over the
// dataset's columns, mixing comparisons the bounds extractor can use
// with ones it cannot (Ne, Not) so both paths stay honest.
func randExpr(rng *rand.Rand, depth int) iquery.Expr {
	if depth > 0 && rng.Intn(3) == 0 {
		a, b := randExpr(rng, depth-1), randExpr(rng, depth-1)
		switch rng.Intn(3) {
		case 0:
			return a.And(b)
		case 1:
			return a.Or(b)
		default:
			return a.Not()
		}
	}
	switch rng.Intn(4) {
	case 0: // v: int64
		v := rng.Int63n(360) - 20
		switch rng.Intn(6) {
		case 0:
			return iquery.Col("v").Eq(v)
		case 1:
			return iquery.Col("v").Ne(v)
		case 2:
			return iquery.Col("v").Lt(v)
		case 3:
			return iquery.Col("v").Le(v)
		case 4:
			return iquery.Col("v").Gt(v)
		default:
			return iquery.Col("v").Ge(v)
		}
	case 1: // price: float64 (added at epoch 1; default 7.5)
		p := []float64{-5, 0, 7.5, 8, 42, 44.5, 90, 96, 160}[rng.Intn(9)]
		switch rng.Intn(5) {
		case 0:
			return iquery.Col("price").Eq(p)
		case 1:
			return iquery.Col("price").Lt(p)
		case 2:
			return iquery.Col("price").Le(p)
		case 3:
			return iquery.Col("price").Gt(p)
		default:
			return iquery.Col("price").Ge(p)
		}
	case 2: // sku: bytes
		sku := fmt.Sprintf("%c%03d", 'a'+byte(rng.Intn(3)), rng.Intn(150))
		switch rng.Intn(5) {
		case 0:
			return iquery.Col("sku").Eq(sku)
		case 1:
			return iquery.Col("sku").Lt(sku)
		case 2:
			return iquery.Col("sku").Ge(sku)
		case 3:
			return iquery.Col("sku").HasPrefix(sku[:1+rng.Intn(2)])
		default:
			return iquery.Col("sku").HasPrefix(sku)
		}
	default: // id
		v := rng.Int63n(170)
		if rng.Intn(2) == 0 {
			return iquery.Col("id").Lt(v)
		}
		return iquery.Col("id").Ge(v)
	}
}

// runShape executes one plan in the given shape ("scan", "multi",
// "diff", "diff-postfilter") and returns its sorted output lines, or
// the error (plan-time errors like ErrColumnNotYetAdded included —
// pruned and unpruned runs must fail identically too).
func runShape(db *decibel.DB, plan iquery.Plan, shape string) ([]string, error) {
	c, err := plan.Compile(db.Database)
	if err != nil {
		return nil, err
	}
	var out []string
	ctx := context.Background()
	switch shape {
	case "diff", "diff-postfilter": // positive diff
		fn := func(rec *record.Record) bool {
			out = append(out, rec.String())
			return true
		}
		if shape == "diff-postfilter" {
			err = c.DiffPostFilter(ctx, fn)
		} else {
			err = c.Diff(ctx, fn)
		}
	case "multi":
		err = c.ScanMulti(ctx, func(rec *record.Record, m *decibel.Bitmap) bool {
			key := rec.String() + " @"
			for i := 0; i < len(c.Branches()); i++ {
				if m.Get(i) {
					key += fmt.Sprintf("%d,", i)
				}
			}
			out = append(out, key)
			return true
		})
	default:
		err = c.Scan(ctx, func(rec *record.Record) bool {
			out = append(out, rec.String())
			return true
		})
	}
	if err != nil {
		return nil, err
	}
	sort.Strings(out)
	return out, nil
}

func comparePrunedUnpruned(t *testing.T, db *decibel.DB, plan iquery.Plan, shape, label string) {
	t.Helper()
	pruned := plan
	pruned.NoPrune = false
	unpruned := plan
	unpruned.NoPrune = true

	got, gotErr := runShape(db, pruned, shape)
	want, wantErr := runShape(db, unpruned, shape)
	if (gotErr == nil) != (wantErr == nil) {
		t.Fatalf("%s: pruned err=%v unpruned err=%v", label, gotErr, wantErr)
	}
	if gotErr != nil {
		if gotErr.Error() != wantErr.Error() {
			t.Fatalf("%s: error mismatch: %v vs %v", label, gotErr, wantErr)
		}
		return
	}
	if len(got) != len(want) {
		t.Fatalf("%s: pruned %d rows, unpruned %d rows", label, len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("%s: row %d: pruned %q unpruned %q", label, i, got[i], want[i])
		}
	}
	// Diff shape: the pushed-down diff must also equal the retained
	// post-filter baseline.
	if shape == "diff" {
		base, baseErr := runShape(db, unpruned, "diff-postfilter")
		if baseErr != nil {
			t.Fatalf("%s: post-filter baseline: %v", label, baseErr)
		}
		if len(base) != len(got) {
			t.Fatalf("%s: pushdown diff %d rows, post-filter %d rows", label, len(got), len(base))
		}
		for i := range got {
			if got[i] != base[i] {
				t.Fatalf("%s: diff row %d: pushdown %q post-filter %q", label, i, got[i], base[i])
			}
		}
	}
}

func TestZoneMapPruningProperty(t *testing.T) {
	scannedBefore, skippedBefore := store.SegmentScanCounters()
	for _, engine := range facadeEngines {
		t.Run(engine, func(t *testing.T) {
			db := buildPruningDB(t, engine)
			rng := rand.New(rand.NewSource(0xdecbe1))
			type shaped struct {
				plan  iquery.Plan
				shape string
			}
			shapes := func(where iquery.Expr) []shaped {
				return []shaped{
					{iquery.Plan{Table: "r", Branches: []string{"master"}, AtSeq: -1, Where: where}, "scan"},
					{iquery.Plan{Table: "r", Branches: []string{"b1"}, AtSeq: -1, Where: where}, "scan"},
					{iquery.Plan{Table: "r", Branches: []string{"b2"}, AtSeq: -1, Where: where}, "scan"},
					{iquery.Plan{Table: "r", Branches: []string{"master"}, AtSeq: 0, Where: where}, "scan"}, // pre-evolution epoch
					{iquery.Plan{Table: "r", Branches: []string{"master", "b1"}, AtSeq: -1, Where: where}, "multi"},
					{iquery.Plan{Table: "r", Branches: []string{"master", "b1"}, AtSeq: -1, Where: where}, "diff"},
				}
			}
			// A few fixed predicates guaranteeing the interesting edges:
			// the widened default (7.5) in and out of range, and prefix
			// bounds at segment boundaries.
			fixed := []iquery.Expr{
				iquery.Col("price").Lt(7.5),
				iquery.Col("price").Eq(7.5),
				iquery.Col("price").Ge(7.5),
				iquery.Col("price").Gt(100),
				iquery.Col("sku").HasPrefix("c"),
				iquery.Col("v").Ge(120).And(iquery.Col("sku").HasPrefix("b")),
			}
			for i, where := range fixed {
				for j, sh := range shapes(where) {
					comparePrunedUnpruned(t, db, sh.plan, sh.shape, fmt.Sprintf("fixed[%d] shape[%d]", i, j))
				}
			}
			for i := 0; i < 60; i++ {
				where := randExpr(rng, 2)
				for j, sh := range shapes(where) {
					comparePrunedUnpruned(t, db, sh.plan, sh.shape, fmt.Sprintf("rand[%d] shape[%d]", i, j))
				}
			}
		})
	}
	scannedAfter, skippedAfter := store.SegmentScanCounters()
	if skippedAfter == skippedBefore {
		t.Fatalf("pruning never skipped a segment (scanned %d→%d): zone maps are not engaging",
			scannedBefore, scannedAfter)
	}
}
