#!/bin/sh
# check-links.sh — verify that every relative link target referenced
# from README.md and docs/*.md exists in the repository. External
# (http/https) links and pure #fragment links are skipped so the check
# needs no network and stays deterministic in CI.
set -eu

cd "$(dirname "$0")/.."

fail=0
for md in README.md docs/*.md; do
    [ -f "$md" ] || continue
    # Extract the (target) of every [text](target) markdown link.
    links=$(grep -oE '\]\([^)]+\)' "$md" | sed -e 's/^](//' -e 's/)$//') || continue
    for link in $links; do
        case "$link" in
        http://*|https://*|\#*) continue ;;
        esac
        target=${link%%#*} # drop any fragment
        [ -n "$target" ] || continue
        # Resolve relative to the file's directory.
        base=$(dirname "$md")
        if [ ! -e "$base/$target" ] && [ ! -e "$target" ]; then
            echo "$md: dead link -> $link" >&2
            fail=1
        fi
    done
done

if [ "$fail" -ne 0 ]; then
    echo "dead links found" >&2
    exit 1
fi
echo "all markdown links resolve"
