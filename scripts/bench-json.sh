#!/bin/sh
# bench-json.sh — run the query benchmarks and emit their results as
# JSON, so CI can record the perf trajectory as an artifact and the
# regression gate can diff runs.
#
# Usage: sh scripts/bench-json.sh [out.json]
#
# Environment:
#   BENCH     benchmark regexp           (default: the query, zone-map and parallel-scan benchmarks)
#   BENCHTIME -benchtime value           (default 3x)
#   COUNT     -count value               (default 3)
#   PKG       package to benchmark       (default ./bench)
#
# Output schema: {"benchmarks":[{"name":"...","ns_per_op":N}, ...]}
# with one entry per benchmark name, ns_per_op the minimum across
# -count runs (minimum is the stable estimator on noisy CI machines).
set -eu

OUT="${1:-BENCH_pr.json}"
BENCH="${BENCH:-BenchmarkMultiBranchScan|BenchmarkQueryShapes|BenchmarkSegmentSkipWhere|BenchmarkDiffPushdown|BenchmarkPointLookup|BenchmarkParallelScanCount|BenchmarkParallelScanRows|BenchmarkParallelDiff|BenchmarkCompactionPass|BenchmarkCompactedScan|BenchmarkJoin2Way|BenchmarkJoin3Way|BenchmarkGroupBy|BenchmarkVFResolve}"
BENCHTIME="${BENCHTIME:-3x}"
COUNT="${COUNT:-3}"
PKG="${PKG:-./bench}"

TMP="$(mktemp)"
trap 'rm -f "$TMP"' EXIT

go test -run='^$' -bench="$BENCH" -benchtime="$BENCHTIME" -count="$COUNT" "$PKG" | tee "$TMP" >&2

awk '
/^Benchmark/ && $4 == "ns/op" {
    name = $1
    sub(/-[0-9]+$/, "", name)  # strip the GOMAXPROCS suffix
    ns = $3 + 0
    if (!(name in best) || ns < best[name]) best[name] = ns
    if (!(name in seen)) { order[++n] = name; seen[name] = 1 }
}
END {
    if (n == 0) { print "bench-json: no benchmark results parsed" > "/dev/stderr"; exit 1 }
    printf "{\"benchmarks\":[";
    for (i = 1; i <= n; i++) {
        name = order[i]
        printf "%s{\"name\":\"%s\",\"ns_per_op\":%.1f}", (i > 1 ? "," : ""), name, best[name]
    }
    printf "]}\n"
}' "$TMP" > "$OUT"

echo "bench-json: wrote $OUT" >&2
cat "$OUT"
