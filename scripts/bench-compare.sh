#!/bin/sh
# bench-compare.sh — compare two bench-json.sh outputs and fail when
# the candidate is more than THRESHOLD_PCT percent slower than the
# baseline on the geometric mean across shared benchmarks. This is the
# CI regression gate guarding the pushdown fast paths.
#
# Benchmarks matching PER_BENCH_REGEX are additionally gated
# individually at PER_BENCH_THRESHOLD_PCT: the geomean can hide a
# single benchmark regressing badly while the rest hold, and the vf
# resolution benches exist precisely to catch the cached fast paths
# silently degrading to the full-walk baseline.
#
# Usage: sh scripts/bench-compare.sh BENCH_baseline.json BENCH_pr.json
set -eu

BASE="${1:?usage: bench-compare.sh baseline.json candidate.json}"
CAND="${2:?usage: bench-compare.sh baseline.json candidate.json}"
THRESHOLD_PCT="${THRESHOLD_PCT:-25}"
PER_BENCH_REGEX="${PER_BENCH_REGEX:-BenchmarkMultiBranchScan/vf/pushdown|BenchmarkDiffPushdown/vf/pushdown|BenchmarkVFResolve/.*/warm}"
PER_BENCH_THRESHOLD_PCT="${PER_BENCH_THRESHOLD_PCT:-75}"

# Flatten {"benchmarks":[{"name":...,"ns_per_op":...}]} to "name ns" lines.
flat() {
    tr '{' '\n' < "$1" | sed -n \
        's/.*"name":"\([^"]*\)".*"ns_per_op":\([0-9.]*\).*/\1 \2/p'
}

flat "$BASE" > /tmp/bench_base.$$
flat "$CAND" > /tmp/bench_cand.$$
trap 'rm -f /tmp/bench_base.$$ /tmp/bench_cand.$$' EXIT

awk -v threshold="$THRESHOLD_PCT" \
    -v per_regex="$PER_BENCH_REGEX" -v per_threshold="$PER_BENCH_THRESHOLD_PCT" '
NR == FNR { base[$1] = $2; next }
{
    if (!($1 in base) || base[$1] <= 0 || $2 <= 0) next
    ratio = $2 / base[$1]
    printf "%-70s %12.1f -> %12.1f ns/op  (%+.1f%%)\n", $1, base[$1], $2, (ratio - 1) * 100
    logsum += log(ratio)
    n++
    if (per_regex != "" && $1 ~ per_regex && ratio > 1 + per_threshold / 100) {
        printf "bench-compare: FAIL — %s is %.1f%% slower than baseline (per-bench threshold %s%%)\n", \
            $1, (ratio - 1) * 100, per_threshold
        perfail++
    }
}
END {
    if (n == 0) { print "bench-compare: no shared benchmarks between the two files"; exit 1 }
    geo = exp(logsum / n)
    printf "geomean ratio: %.3f over %d benchmarks (gate: %.2f)\n", geo, n, 1 + threshold / 100
    if (perfail > 0) {
        printf "bench-compare: FAIL — %d benchmark(s) over the per-bench gate\n", perfail
        exit 1
    }
    if (geo > 1 + threshold / 100) {
        printf "bench-compare: FAIL — candidate is %.1f%% slower than baseline (threshold %s%%)\n", (geo - 1) * 100, threshold
        exit 1
    }
    print "bench-compare: OK"
}' /tmp/bench_base.$$ /tmp/bench_cand.$$
