#!/bin/sh
# server-smoke.sh — end-to-end smoke of the serving layer: build the
# CLI and the load generator, init a dataset, start `decibel serve`,
# drive ~5s of mixed read/commit traffic with 32 concurrent clients,
# then assert zero errors, that the server's counters moved, and that
# SIGTERM shuts the server down cleanly. A second, shorter phase serves
# a version-first dataset and asserts the lineage cache engages
# (decibel.vf.lineage_cache_hits moves) with zero errors.
#
# Usage: sh scripts/server-smoke.sh [latency.json]
#
# Environment:
#   ADDR      listen address  (default 127.0.0.1:18527)
#   DURATION  loadgen run     (default 5s)
#   CLIENTS   loadgen clients (default 32)
set -eu

OUT="${1:-latency.json}"
ADDR="${ADDR:-127.0.0.1:18527}"
DURATION="${DURATION:-5s}"
CLIENTS="${CLIENTS:-32}"

WORK="$(mktemp -d)"
SRV_PID=""
cleanup() {
    [ -n "$SRV_PID" ] && kill "$SRV_PID" 2>/dev/null || true
    rm -rf "$WORK"
}
trap cleanup EXIT

go build -o "$WORK/decibel" ./cmd/decibel
go build -o "$WORK/decibel-loadgen" ./cmd/decibel-loadgen

"$WORK/decibel" -dir "$WORK/data" init qty,price:float64,sku:bytes8

"$WORK/decibel" -dir "$WORK/data" serve -addr "$ADDR" &
SRV_PID=$!

# Wait for the server to come up.
i=0
until curl -fsS "http://$ADDR/healthz" >/dev/null 2>&1; do
    i=$((i + 1))
    if [ "$i" -gt 100 ]; then
        echo "server-smoke: server never became healthy" >&2
        exit 1
    fi
    sleep 0.1
done

# var NAME [ADDR] — read one integer counter off /debug/vars.
var() {
    curl -fsS "http://${2:-$ADDR}/debug/vars" |
        tr '{,}' '\n' | grep "\"$1\"" | grep -o '[0-9][0-9]*$'
}

# Mixed traffic; the loadgen exits non-zero if any operation failed.
"$WORK/decibel-loadgen" -url "http://$ADDR" -table r -branch master \
    -clients "$CLIENTS" -duration "$DURATION" -commit-frac 0.2 -json "$OUT" &
LOAD_PID=$!

# Mid-load, trigger a compaction pass over the live dataset: segment
# merges and page re-encoding must retire files under the 32 clients
# without a single failed request.
sleep 2
COMPACT_BEFORE="$(var decibel.compactions)"
curl -fsS -X POST "http://$ADDR/v1/compact" >/dev/null
COMPACT_AFTER="$(var decibel.compactions)"

# set -eu: a loadgen failure (any errored operation) aborts here.
wait "$LOAD_PID"

# One join and one group-by over /v1/query: the relational-algebra
# clauses must serve against the freshly written dataset. The self-join
# on the primary key pairs every master row with itself; the grouped
# aggregate buckets by qty. Both must report a positive count.
JOIN_COUNT="$(curl -fsS -X POST "http://$ADDR/v1/query" \
    -d '{"table":"r","branches":["master"],"join":[{"table":"r","on":["id","id"]}]}' |
    grep -o '"count":[0-9][0-9]*' | grep -o '[0-9][0-9]*$')"
[ "$JOIN_COUNT" -gt 0 ] || { echo "server-smoke: join query returned no tuples" >&2; exit 1; }

GROUP_COUNT="$(curl -fsS -X POST "http://$ADDR/v1/query" \
    -d '{"table":"r","branches":["master"],"groupBy":["qty"],"aggs":[{"agg":"count"},{"agg":"avg","col":"price"}]}' |
    grep -o '"count":[0-9][0-9]*' | grep -o '[0-9][0-9]*$')"
[ "$GROUP_COUNT" -gt 0 ] || { echo "server-smoke: group-by query returned no groups" >&2; exit 1; }
echo "server-smoke: join tuples=$JOIN_COUNT groups=$GROUP_COUNT"

[ "$COMPACT_AFTER" -gt "$COMPACT_BEFORE" ] || {
    echo "server-smoke: compaction counter never moved ($COMPACT_BEFORE -> $COMPACT_AFTER)" >&2
    exit 1
}

REQUESTS="$(var decibel.server.requests)"
COMMITS="$(var decibel.server.commits)"
ERRORS="$(var decibel.server.errors)"
echo "server-smoke: requests=$REQUESTS commits=$COMMITS errors=$ERRORS"
[ "$REQUESTS" -gt 0 ] || { echo "server-smoke: request counter never moved" >&2; exit 1; }
[ "$COMMITS" -gt 0 ] || { echo "server-smoke: commit counter never moved" >&2; exit 1; }
[ "$ERRORS" -eq 0 ] || { echo "server-smoke: server counted $ERRORS errors" >&2; exit 1; }

# Graceful shutdown: SIGTERM drains and exits 0.
kill -TERM "$SRV_PID"
if ! wait "$SRV_PID"; then
    echo "server-smoke: serve did not exit cleanly on SIGTERM" >&2
    exit 1
fi
SRV_PID=""

# Version-first phase: serve a vf dataset and assert the lineage cache
# engages under live traffic — repeated head resolutions must hit the
# cache, so a silently disabled cache fails the smoke.
VF_ADDR="${VF_ADDR:-127.0.0.1:18528}"
VF_DURATION="${VF_DURATION:-2s}"

"$WORK/decibel" -dir "$WORK/data-vf" -engine vf init qty,price:float64,sku:bytes8
"$WORK/decibel" -dir "$WORK/data-vf" -engine vf serve -addr "$VF_ADDR" &
SRV_PID=$!

i=0
until curl -fsS "http://$VF_ADDR/healthz" >/dev/null 2>&1; do
    i=$((i + 1))
    if [ "$i" -gt 100 ]; then
        echo "server-smoke: vf server never became healthy" >&2
        exit 1
    fi
    sleep 0.1
done

"$WORK/decibel-loadgen" -url "http://$VF_ADDR" -table r -branch master \
    -clients 8 -duration "$VF_DURATION" -commit-frac 0.2 -json "$WORK/vf-latency.json"

VF_HITS="$(var decibel.vf.lineage_cache_hits "$VF_ADDR")"
VF_ERRORS="$(var decibel.server.errors "$VF_ADDR")"
echo "server-smoke: vf lineage_cache_hits=$VF_HITS errors=$VF_ERRORS"
[ "$VF_HITS" -gt 0 ] || { echo "server-smoke: vf lineage cache never hit" >&2; exit 1; }
[ "$VF_ERRORS" -eq 0 ] || { echo "server-smoke: vf server counted $VF_ERRORS errors" >&2; exit 1; }

kill -TERM "$SRV_PID"
if ! wait "$SRV_PID"; then
    echo "server-smoke: vf serve did not exit cleanly on SIGTERM" >&2
    exit 1
fi
SRV_PID=""
echo "server-smoke: ok"
