module decibel

go 1.23
