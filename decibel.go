// Package decibel is the public API of this Decibel reproduction
// (Maddox et al., "Decibel: The Relational Dataset Branching System",
// PVLDB 2016): a dataset of relations versioned together under one
// version graph, with the git-like workflow of Section 2.2 — open,
// branch, insert, commit, diff, merge — over a choice of storage
// engine.
//
// Open a dataset with functional options and work with branch heads:
//
//	db, err := decibel.Open(dir, decibel.WithEngine("hybrid"))
//	...
//	t, err := db.CreateTable("products", decibel.NewSchema().Int64("id").Int64("price").MustBuild())
//	master, _, err := db.Init("initial catalog")
//	err = t.Insert(master.ID, rec)
//	rows, scanErr := t.Rows(master.ID)
//	for rec := range rows { ... }
//	if err := scanErr(); err != nil { ... }
//
// Storage engines register themselves by name ("tuple-first",
// "version-first", "hybrid", with short aliases "tf", "vf", "hy");
// importing this package links all three. Failure conditions worth
// branching on are exposed as sentinel errors (ErrNoSuchBranch,
// ErrSessionClosed, ...) tested with errors.Is.
//
// The packages under internal/ are the engine-facing SPI and may change
// freely; everything a consumer needs is re-exported here and in the
// decibel/bench, decibel/query and decibel/gitstore companion packages.
package decibel

import (
	"decibel/internal/bitmap"
	"decibel/internal/core"
	"decibel/internal/record"
	"decibel/internal/vgraph"

	// Link the three storage engines into every facade consumer; each
	// registers itself with the engine registry from init.
	_ "decibel/internal/hy"
	_ "decibel/internal/tf"
	_ "decibel/internal/vf"
)

// Core workflow types, aliased from the SPI so facade consumers never
// import decibel/internal/... themselves.
type (
	// DB is an open Decibel dataset: a collection of relations
	// versioned together under one version graph.
	DB = core.Database

	// Table is one versioned relation inside a DB.
	Table = core.Table

	// Session captures a user's working position — the branch or
	// commit their reads and writes address — under two-phase locking.
	Session = core.Session

	// Record is one fixed-width tuple; column 0 is the int64 primary key.
	Record = record.Record

	// Schema is an ordered list of fixed-width columns; build one with
	// NewSchema.
	Schema = record.Schema

	// Column describes one schema column.
	Column = record.Column

	// ColumnType identifies a fixed-width column type (Int32, Int64).
	ColumnType = record.Type

	// Branch is a named working line: a head commit plus bookkeeping.
	Branch = vgraph.Branch

	// Commit is one immutable version in the graph.
	Commit = vgraph.Commit

	// BranchID identifies a branch.
	BranchID = vgraph.BranchID

	// CommitID identifies a commit; 0 is the invalid/none value.
	CommitID = vgraph.CommitID

	// Graph is the version graph: commits, branches, heads, LCAs.
	Graph = vgraph.Graph

	// Bitmap annotates multi-branch scan results with branch membership.
	Bitmap = bitmap.Bitmap

	// MergeKind selects the conflict model of a merge (TwoWay, ThreeWay).
	MergeKind = core.MergeKind

	// MergeStats summarizes a merge (conflicts, changed records, bytes).
	MergeStats = core.MergeStats

	// Stats reports a dataset's storage footprint.
	Stats = core.Stats

	// ScanFunc receives each record of a scan; returning false stops it.
	ScanFunc = core.ScanFunc

	// MultiScanFunc receives each record live in any scanned branch
	// with its membership bitmap.
	MultiScanFunc = core.MultiScanFunc

	// DiffFunc receives diff records; inA marks the positive side.
	DiffFunc = core.DiffFunc
)

// Column types.
const (
	Int32 = record.Int32 // 4-byte signed integer
	Int64 = record.Int64 // 8-byte signed integer
)

// Merge conflict models (Section 2.2.3).
const (
	TwoWay   = core.TwoWay   // tuple-granularity conflicts, precedence wins wholesale
	ThreeWay = core.ThreeWay // field-level merge against the lowest common ancestor
)

// Master is the name of the initial branch, "the authoritative branch
// of record for the evolving dataset".
const Master = vgraph.MasterName

// Open opens (or creates) the dataset at dir. With no options it uses
// the hybrid engine and default tuning; see WithEngine, WithPageSize,
// WithPoolPages, WithFsync and WithCommitFanout.
func Open(dir string, opts ...Option) (*DB, error) {
	cfg := newConfig(opts)
	factory, err := core.LookupEngine(cfg.engine)
	if err != nil {
		return nil, err
	}
	return core.Open(dir, factory, cfg.opt)
}

// Engines returns the canonical names of all registered storage
// engines, sorted.
func Engines() []string { return core.EngineNames() }

// NewRecord allocates an empty record of the schema.
func NewRecord(s *Schema) *Record { return record.New(s) }

// BenchmarkSchema returns the paper's benchmark schema: an int64
// primary key plus Int32 columns padding the encoded record to about
// recordBytes.
func BenchmarkSchema(recordBytes int) *Schema { return record.Benchmark(recordBytes) }
