// Package decibel is the public API of this Decibel reproduction
// (Maddox et al., "Decibel: The Relational Dataset Branching System",
// PVLDB 2016): a dataset of relations versioned together under one
// version graph, with the git-like workflow of Section 2.2 — open,
// branch, insert, commit, diff, merge — over a choice of storage
// engine.
//
// Open a dataset with functional options and work with named branches —
// the IDs of the underlying version graph never need to appear:
//
//	db, err := decibel.Open(dir, decibel.WithEngine("hybrid"))
//	...
//	t, err := db.CreateTable("products", decibel.NewSchema().Int64("id").Float64("price").MustBuild())
//	_, _, err = db.Init("initial catalog")
//	_, err = db.Commit("master", func(tx *decibel.Tx) error {
//		rec := decibel.NewRecord(t.Schema())
//		rec.SetPK(1)
//		rec.SetFloat64(1, 9.99)
//		return tx.Insert("products", rec)
//	})
//	rows, scanErr := db.Rows("products", "master")
//	for rec := range rows { ... }
//	if err := scanErr(); err != nil { ... }
//
// Versioned queries — the paper's single-version scan, positive diff,
// version join and HEAD() scan — run through the fluent builder, with
// typed column predicates validated against the catalog and pushed
// down into the storage engine:
//
//	rows, qErr := db.Query("products").
//		On("master").
//		Where(decibel.Col("price").Lt(9.5)).
//		Select("sku", "price").
//		Rows()
//	annotated, _ := db.Query("products").Heads().Annotated() // one pass over all heads
//
// Every scan has a Context form (OpenContext, RowsContext, ...) that
// aborts promptly with ctx.Err() when the context is canceled.
//
// Storage engines register themselves by name ("tuple-first",
// "version-first", "hybrid", with short aliases "tf", "vf", "hy");
// importing this package links all three. Failure conditions worth
// branching on are exposed as sentinel errors (ErrNoSuchBranch,
// ErrSessionClosed, ...) tested with errors.Is.
//
// The packages under internal/ are the engine-facing SPI and may change
// freely; everything a consumer needs is re-exported here and in the
// decibel/bench, decibel/query and decibel/gitstore companion packages.
package decibel

import (
	"context"

	"decibel/internal/bitmap"
	"decibel/internal/compact"
	"decibel/internal/core"
	"decibel/internal/record"
	"decibel/internal/store"
	"decibel/internal/vgraph"

	// Link the three storage engines into every facade consumer; each
	// registers itself with the engine registry from init.
	_ "decibel/internal/hy"
	_ "decibel/internal/tf"
	_ "decibel/internal/vf"
)

// DB is an open Decibel dataset: a collection of relations versioned
// together under one version graph. It embeds the ID-based core
// database and layers the name-based workflow on top — Commit, Branch
// and Merge address branches by name, so callers never handle raw
// branch or commit IDs. The ID-based operations remain reachable
// through the embedded Database (db.Database.Branch, ...) for tools
// that already hold IDs.
type DB struct {
	*core.Database
}

// Core workflow types, aliased from the SPI so facade consumers never
// import decibel/internal/... themselves.
type (
	// Table is one versioned relation inside a DB.
	Table = core.Table

	// Session captures a user's working position — the branch or
	// commit their reads and writes address — under two-phase locking.
	Session = core.Session

	// Record is one fixed-width tuple; column 0 is the int64 primary key.
	Record = record.Record

	// Schema is an ordered list of fixed-width columns; build one with
	// NewSchema.
	Schema = record.Schema

	// Column describes one schema column.
	Column = record.Column

	// ColumnType identifies a fixed-width column type (Int32, Int64,
	// Float64, Bytes).
	ColumnType = record.Type

	// Branch is a named working line: a head commit plus bookkeeping.
	Branch = vgraph.Branch

	// Commit is one immutable version in the graph.
	Commit = vgraph.Commit

	// BranchID identifies a branch.
	BranchID = vgraph.BranchID

	// CommitID identifies a commit; 0 is the invalid/none value.
	CommitID = vgraph.CommitID

	// Graph is the version graph: commits, branches, heads, LCAs.
	Graph = vgraph.Graph

	// Bitmap annotates multi-branch scan results with branch membership.
	Bitmap = bitmap.Bitmap

	// MergeKind selects the conflict model of a merge (TwoWay, ThreeWay).
	MergeKind = core.MergeKind

	// MergeStats summarizes a merge (conflicts, changed records, bytes).
	MergeStats = core.MergeStats

	// Stats reports a dataset's storage footprint.
	Stats = core.Stats

	// ScanFunc receives each record of a scan; returning false stops it.
	ScanFunc = core.ScanFunc

	// MultiScanFunc receives each record live in any scanned branch
	// with its membership bitmap.
	MultiScanFunc = core.MultiScanFunc

	// DiffFunc receives diff records; inA marks the positive side.
	DiffFunc = core.DiffFunc

	// SegmentStat summarizes one storage segment — row count, schema
	// version id, freeze state and per-column zone map — for
	// diagnostics; see Table.SegmentStats and the CLI's `stats`.
	SegmentStat = store.SegmentStat

	// CompactionStats is what one compaction pass accomplished —
	// segments merged and compressed, tombstones dropped, bytes
	// reclaimed; returned by DB.Compact.
	CompactionStats = compact.Stats
)

// Column types. Int32 and Int64 are read and written with Record.Get
// and Record.Set; Float64 with GetFloat64/SetFloat64; Bytes — a
// fixed-capacity byte string whose capacity is declared per column —
// with GetBytes/SetBytes.
const (
	Int32   = record.Int32   // 4-byte signed integer
	Int64   = record.Int64   // 8-byte signed integer
	Float64 = record.Float64 // 8-byte IEEE 754 double
	Bytes   = record.Bytes   // fixed-capacity byte string
)

// Merge conflict models (Section 2.2.3).
const (
	TwoWay   = core.TwoWay   // tuple-granularity conflicts, precedence wins wholesale
	ThreeWay = core.ThreeWay // field-level merge against the lowest common ancestor
)

// Master is the name of the initial branch, "the authoritative branch
// of record for the evolving dataset".
const Master = vgraph.MasterName

// Open opens (or creates) the dataset at dir. With no options it uses
// the hybrid engine and default tuning; see WithEngine, WithPageSize,
// WithPoolPages, WithFsync and WithCommitFanout.
func Open(dir string, opts ...Option) (*DB, error) {
	return OpenContext(context.Background(), dir, opts...)
}

// OpenContext is Open bounded by a context. Cancellation is checked
// before the open starts and between tables during catalog reload; an
// individual table's engine recovery runs to completion, so the
// effective granularity is one table. On cancellation the partially
// opened dataset is released and ctx.Err() returned.
func OpenContext(ctx context.Context, dir string, opts ...Option) (*DB, error) {
	cfg := newConfig(opts)
	factory, err := core.LookupEngine(cfg.engine)
	if err != nil {
		return nil, err
	}
	cdb, err := core.OpenContext(ctx, dir, factory, cfg.opt)
	if err != nil {
		return nil, err
	}
	return &DB{Database: cdb}, nil
}

// Engines returns the canonical names of all registered storage
// engines, sorted.
func Engines() []string { return core.EngineNames() }

// NewRecord allocates an empty record of the schema.
func NewRecord(s *Schema) *Record { return record.New(s) }

// BenchmarkSchema returns the paper's benchmark schema: an int64
// primary key plus Int32 columns padding the encoded record to about
// recordBytes.
func BenchmarkSchema(recordBytes int) *Schema { return record.Benchmark(recordBytes) }
