package decibel_test

// Column-type round trip: Float64 and Bytes columns must survive the
// full commit → scan → diff → merge → reopen cycle on every storage
// engine, including field-level three-way merges that touch only one of
// the typed columns.

import (
	"math"
	"testing"

	"decibel"
)

func TestTypedColumnsRoundTrip(t *testing.T) {
	for _, engine := range facadeEngines {
		t.Run(engine, func(t *testing.T) {
			dir := t.TempDir()
			db, err := decibel.Open(dir, decibel.WithEngine(engine))
			if err != nil {
				t.Fatal(err)
			}
			schema := decibel.NewSchema().
				Int64("id").
				Float64("score").
				Bytes("tag", 24).
				Int32("n").
				MustBuild()
			if _, err := db.CreateTable("m", schema); err != nil {
				t.Fatal(err)
			}
			if _, _, err := db.Init("init"); err != nil {
				t.Fatal(err)
			}

			put := func(tx *decibel.Tx, pk int64, score float64, tag string, n int64) error {
				rec := decibel.NewRecord(schema)
				rec.SetPK(pk)
				rec.SetFloat64(1, score)
				if err := rec.SetBytes(2, []byte(tag)); err != nil {
					return err
				}
				rec.Set(3, n)
				return tx.Insert("m", rec)
			}
			if _, err := db.Commit("master", func(tx *decibel.Tx) error {
				if err := put(tx, 1, 1.5, "alpha", 10); err != nil {
					return err
				}
				if err := put(tx, 2, math.Inf(1), "", 20); err != nil { // empty bytes, +Inf survive
					return err
				}
				// Negative zero (a constant -0.0 would fold to +0.0) and a
				// tag at the column's declared capacity.
				return put(tx, 3, math.Copysign(0, -1), "gamma-gamma-gamma-12345", 30)
			}); err != nil {
				t.Fatal(err)
			}

			// Diverge: dev changes only the score of pk 1; master changes
			// only the tag — disjoint typed fields must auto-merge.
			if _, err := db.Branch("master", "dev"); err != nil {
				t.Fatal(err)
			}
			if _, err := db.Commit("dev", func(tx *decibel.Tx) error {
				return put(tx, 1, 99.25, "alpha", 10)
			}); err != nil {
				t.Fatal(err)
			}
			if _, err := db.Commit("master", func(tx *decibel.Tx) error {
				return put(tx, 1, 1.5, "alpha-renamed", 10)
			}); err != nil {
				t.Fatal(err)
			}

			// Diff sees the typed divergence on pk 1.
			inDev := 0
			diff, diffErr := db.Diff("m", "dev", "master")
			for rec, inA := range diff {
				if rec.PK() != 1 {
					t.Fatalf("diff touched pk %d, want only pk 1", rec.PK())
				}
				if inA {
					inDev++
					if got := rec.GetFloat64(1); got != 99.25 {
						t.Fatalf("dev side score = %g, want 99.25", got)
					}
				}
			}
			if err := diffErr(); err != nil {
				t.Fatal(err)
			}
			if inDev != 1 {
				t.Fatalf("diff saw %d dev-side records, want 1", inDev)
			}

			if _, st, err := db.Merge("master", "dev"); err != nil {
				t.Fatal(err)
			} else if st.Conflicts != 0 {
				t.Fatalf("disjoint typed fields conflicted: %d", st.Conflicts)
			}

			check := func(db *decibel.DB, phase string) {
				t.Helper()
				got := map[int64]*decibel.Record{}
				rows, scanErr := db.Rows("m", "master")
				for rec := range rows {
					got[rec.PK()] = rec.Clone()
				}
				if err := scanErr(); err != nil {
					t.Fatal(err)
				}
				if len(got) != 3 {
					t.Fatalf("%s: master has %d records, want 3", phase, len(got))
				}
				// pk 1 merged both typed updates.
				if s := got[1].GetFloat64(1); s != 99.25 {
					t.Fatalf("%s: pk 1 score = %g, want dev's 99.25", phase, s)
				}
				if tag := string(got[1].GetBytes(2)); tag != "alpha-renamed" {
					t.Fatalf("%s: pk 1 tag = %q, want master's %q", phase, tag, "alpha-renamed")
				}
				if s := got[2].GetFloat64(1); !math.IsInf(s, 1) {
					t.Fatalf("%s: pk 2 score = %g, want +Inf", phase, s)
				}
				if tag := got[2].GetBytes(2); len(tag) != 0 {
					t.Fatalf("%s: pk 2 tag = %q, want empty", phase, tag)
				}
				if s := got[3].GetFloat64(1); s != 0 || !math.Signbit(s) {
					t.Fatalf("%s: pk 3 score = %g, want -0.0", phase, s)
				}
				if tag := string(got[3].GetBytes(2)); tag != "gamma-gamma-gamma-12345" {
					t.Fatalf("%s: pk 3 tag = %q", phase, tag)
				}
				if n := got[3].Get(3); n != 30 {
					t.Fatalf("%s: pk 3 n = %d, want 30", phase, n)
				}
			}
			check(db, "before reopen")

			if err := db.Close(); err != nil {
				t.Fatal(err)
			}
			db2, err := decibel.Open(dir, decibel.WithEngine(engine))
			if err != nil {
				t.Fatal(err)
			}
			defer db2.Close()
			tbl, err := db2.TableByName("m")
			if err != nil {
				t.Fatal(err)
			}
			if !tbl.Schema().Equal(schema) {
				t.Fatal("typed schema did not survive the catalog round trip")
			}
			check(db2, "after reopen")
		})
	}
}
