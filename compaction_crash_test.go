package decibel_test

// Compaction crash recovery: a pass killed in either crash window must
// leave a dataset that reads back byte-identical after reopen.
//
//   - after-temp: new segment files are written and fsynced but the
//     catalog swap never happened. The new files are orphans; the
//     catalog still references the old ones.
//   - before-unlink: the catalog swap committed and in-memory state
//     moved to the new files, but the replaced files were never
//     unlinked. The old files are orphans.
//
// Each window is driven through the injected fail points on every
// engine: the pass fails with the fail-point error, scans keep serving
// the same streams, and after close/reopen the orphan sweep leaves no
// temp files behind while a clean pass still completes and compacts.

import (
	"io/fs"
	"path/filepath"
	"strings"
	"testing"

	"decibel"
	"decibel/internal/compact"
)

func TestCompactionCrashRecovery(t *testing.T) {
	for _, engine := range facadeEngines {
		for _, point := range []string{compact.FailAfterTemp, compact.FailBeforeUnlink} {
			t.Run(engine+"/"+point, func(t *testing.T) {
				dir := t.TempDir()
				base := []decibel.Option{
					decibel.WithCompaction("manual"),
					decibel.WithCompactionThresholds(2, 4096),
				}
				built := buildPruningDBIn(t, dir, engine, base...)
				if err := built.Close(); err != nil {
					t.Fatal(err)
				}

				corpus := compactionCorpus(6)
				injected := buildReopen(t, dir, engine,
					append([]decibel.Option{decibel.WithCompactionFailPoint(point)}, base...)...)
				want := captureCompactionStreams(t, injected, corpus)

				if _, err := injected.Compact(); !compact.ErrFailPoint(err) {
					t.Fatalf("injected pass returned %v, want a fail-point abort", err)
				}
				// Whichever window the pass died in, the in-memory state
				// it left behind still serves the same streams.
				compareCompactionStreams(t, "post-abort", captureCompactionStreams(t, injected, corpus), want)
				if err := injected.Close(); err != nil {
					t.Fatal(err)
				}

				// Reopen: recovery reads whichever catalog generation the
				// "crash" left committed and sweeps the window's orphans.
				db := buildReopen(t, dir, engine, base...)
				compareCompactionStreams(t, "reopened", captureCompactionStreams(t, db, corpus), want)
				assertNoTempFiles(t, dir)

				// A clean pass on the recovered dataset still does its
				// work (unless the aborted pass already committed it).
				st, err := db.Compact()
				if err != nil {
					t.Fatalf("clean compact after recovery: %v", err)
				}
				if point == compact.FailAfterTemp && st.SegmentsMerged == 0 && st.SegmentsCompressed == 0 {
					t.Fatalf("pass after an after-temp crash found nothing to compact: %+v", st)
				}
				compareCompactionStreams(t, "post-compaction", captureCompactionStreams(t, db, corpus), want)

				// And the compacted state survives one more reopen.
				if err := db.Close(); err != nil {
					t.Fatal(err)
				}
				db2 := buildReopen(t, dir, engine, base...)
				compareCompactionStreams(t, "final reopen", captureCompactionStreams(t, db2, corpus), want)
				assertNoTempFiles(t, dir)
			})
		}
	}
}

// assertNoTempFiles fails if any in-flight temp file survived recovery
// anywhere under dir.
func assertNoTempFiles(t *testing.T, dir string) {
	t.Helper()
	err := filepath.WalkDir(dir, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() && strings.HasSuffix(d.Name(), ".tmp") {
			t.Errorf("temp file survived recovery: %s", path)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}
