package decibel

import "decibel/internal/core"

// Sentinel errors. Every operation that fails for one of these reasons
// returns an error wrapping the sentinel, so callers branch with
// errors.Is(err, decibel.ErrNoSuchBranch) instead of string matching.
var (
	// ErrNoSuchBranch reports a branch name or ID that does not exist.
	ErrNoSuchBranch = core.ErrNoSuchBranch

	// ErrNoSuchTable reports a table name missing from the catalog.
	ErrNoSuchTable = core.ErrNoSuchTable

	// ErrNoSuchCommit reports a commit ID absent from the version graph.
	ErrNoSuchCommit = core.ErrNoSuchCommit

	// ErrDetachedHead reports a write attempted while the session is
	// checked out at a historical commit rather than a branch head.
	ErrDetachedHead = core.ErrDetachedHead

	// ErrNotAtHead reports a write attempted while the session's branch
	// has advanced past its checked-out commit.
	ErrNotAtHead = core.ErrNotAtHead

	// ErrSessionClosed reports any operation on a closed session.
	ErrSessionClosed = core.ErrSessionClosed

	// ErrAlreadyInitialized reports Init on an initialized dataset, or
	// CreateTable after Init.
	ErrAlreadyInitialized = core.ErrAlreadyInitialized

	// ErrUnknownEngine reports an engine name absent from the registry.
	ErrUnknownEngine = core.ErrUnknownEngine

	// ErrDatabaseClosed reports an operation on a closed DB.
	ErrDatabaseClosed = core.ErrDatabaseClosed

	// ErrNoSuchColumn reports a column name absent from the queried
	// table's schema (query builder, plan time).
	ErrNoSuchColumn = core.ErrNoSuchColumn

	// ErrTypeMismatch reports a predicate or aggregate whose value type
	// does not fit the column it addresses (query builder, plan time).
	ErrTypeMismatch = core.ErrTypeMismatch

	// ErrBadQuery reports a structurally invalid query, such as At()
	// combined with a multi-branch scan.
	ErrBadQuery = core.ErrBadQuery

	// ErrNoRows reports Min/Max over a scan that matched no records.
	ErrNoRows = core.ErrNoRows

	// ErrColumnNotYetAdded reports a reference to a column that was
	// added at a later schema version than the one the operation
	// addresses (an At(seq) query naming a column a later commit
	// introduced, or a write carrying it to a branch that has not
	// adopted the change).
	ErrColumnNotYetAdded = core.ErrColumnNotYetAdded

	// ErrSchemaChange reports an invalid Tx.AddColumn/DropColumn request
	// (duplicate column, bad default, dropping the primary key, ...).
	ErrSchemaChange = core.ErrSchemaChange
)
