// Versioned queries: the four benchmark query classes of Table 1 run
// against the same dataset on all three storage engines through the
// fluent query builder, demonstrating that the engines are
// interchangeable behind the facade and that typed predicates push
// down into each one.
package main

import (
	"fmt"
	"log"
	"os"

	"decibel"
)

func main() {
	for _, engine := range decibel.Engines() {
		fmt.Printf("=== %s ===\n", engine)
		run(engine)
	}
}

func run(engine string) {
	dir, err := os.MkdirTemp("", "decibel-queries-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	db, err := decibel.Open(dir, decibel.WithEngine(engine))
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()

	schema := decibel.NewSchema().
		Int64("id").
		Int64("name"). // name code
		Int64("age").
		MustBuild()
	if _, err := db.CreateTable("people", schema); err != nil {
		log.Fatal(err)
	}
	if _, _, err := db.Init("init"); err != nil {
		log.Fatal(err)
	}

	const sam = 42 // "Sam"
	mk := func(pk, name, age int64) *decibel.Record {
		rec := decibel.NewRecord(schema)
		rec.SetPK(pk)
		rec.Set(1, name)
		rec.Set(2, age)
		return rec
	}

	// v01 state on master, written as one name-based transaction.
	if _, err := db.Commit("master", func(tx *decibel.Tx) error {
		tx.SetMessage("v01")
		for _, rec := range []*decibel.Record{mk(1, sam, 30), mk(2, 7, 25), mk(3, sam, 41)} {
			if err := tx.Insert("people", rec); err != nil {
				return err
			}
		}
		return nil
	}); err != nil {
		log.Fatal(err)
	}

	// v02 lives on a branch: Sam #1 ages, person 2 leaves, 4 arrives.
	if _, err := db.Branch("master", "v02"); err != nil {
		log.Fatal(err)
	}
	if _, err := db.Commit("v02", func(tx *decibel.Tx) error {
		tx.SetMessage("v02")
		if err := tx.Insert("people", mk(1, sam, 31)); err != nil {
			return err
		}
		if err := tx.Delete("people", 2); err != nil {
			return err
		}
		return tx.Insert("people", mk(4, 9, 19))
	}); err != nil {
		log.Fatal(err)
	}

	// Query 1: single-version scan.
	n, err := db.Query("people").On("master").Count()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Q1  SELECT * WHERE Version='v01'                -> %d rows\n", n)

	// Query 2: positive diff v01 minus v02.
	var diffPKs []int64
	diff, diffErr := db.Query("people").Diff("master", "v02")
	for rec := range diff {
		diffPKs = append(diffPKs, rec.PK())
	}
	if err := diffErr(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Q2  records in v01 but not v02                  -> pks %v\n", diffPKs)

	// Query 3: join v01 x v02 where name = 'Sam'.
	pairs, joinErr := db.Query("people").
		Where(decibel.Col("name").Eq(sam)).
		Join("master", "v02")
	for left, right := range pairs {
		fmt.Printf("Q3  join row: pk=%d age %d -> %d\n", left.PK(), left.Get(2), right.Get(2))
	}
	if err := joinErr(); err != nil {
		log.Fatal(err)
	}

	// Query 4: all branch heads with membership, one engine pass.
	fmt.Print("Q4  HEAD() scan: ")
	rows := 0
	annotated, headErr := db.Query("people").Heads().Annotated()
	for range annotated {
		rows++
	}
	if err := headErr(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%d distinct records across %d heads\n\n", rows, len(db.Graph().Heads()))
}
