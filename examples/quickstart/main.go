// Quickstart: create a Decibel dataset, branch it, modify both
// branches, diff them, and merge the changes back — the basic workflow
// of Section 2.2.
package main

import (
	"fmt"
	"log"
	"os"

	"decibel/internal/core"
	"decibel/internal/hy"
	"decibel/internal/record"
)

func main() {
	dir, err := os.MkdirTemp("", "decibel-quickstart-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	// Open a dataset backed by the hybrid storage engine.
	db, err := core.Open(dir, hy.Factory, core.Options{})
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()

	// One relation: products(id, price, stock).
	schema := record.MustSchema(
		record.Column{Name: "id", Type: record.Int64},
		record.Column{Name: "price", Type: record.Int64},
		record.Column{Name: "stock", Type: record.Int64},
	)
	if _, err := db.CreateTable("products", schema); err != nil {
		log.Fatal(err)
	}
	master, _, err := db.Init("initial catalog")
	if err != nil {
		log.Fatal(err)
	}
	products, _ := db.Table("products")

	// Populate and commit version 1.
	for pk := int64(1); pk <= 5; pk++ {
		rec := record.New(schema)
		rec.SetPK(pk)
		rec.Set(1, pk*100) // price
		rec.Set(2, 10)     // stock
		if err := products.Insert(master.ID, rec); err != nil {
			log.Fatal(err)
		}
	}
	if _, err := db.Commit(master.ID, "five products"); err != nil {
		log.Fatal(err)
	}

	// Branch: a pricing experiment works in isolation.
	pricing, err := db.BranchFromHead("pricing-experiment", "master")
	if err != nil {
		log.Fatal(err)
	}
	sale := record.New(schema)
	sale.SetPK(3)
	sale.Set(1, 150) // discounted price
	sale.Set(2, 10)
	if err := products.Insert(pricing.ID, sale); err != nil {
		log.Fatal(err)
	}

	// Meanwhile master keeps selling: stock of product 5 drops.
	sold := record.New(schema)
	sold.SetPK(5)
	sold.Set(1, 500)
	sold.Set(2, 7)
	if err := products.Insert(master.ID, sold); err != nil {
		log.Fatal(err)
	}

	// Diff the branches.
	fmt.Println("diff(pricing-experiment, master):")
	products.Diff(pricing.ID, master.ID, func(rec *record.Record, inA bool) bool {
		side := "only in master:            "
		if inA {
			side = "only in pricing-experiment:"
		}
		fmt.Printf("  %s %v\n", side, rec)
		return true
	})

	// Merge the experiment back. Non-overlapping field updates
	// auto-merge: the discount (price of 3) and the sale (stock of 5)
	// both survive.
	if _, st, err := db.Merge(master.ID, pricing.ID, "adopt discount", core.ThreeWay, true); err != nil {
		log.Fatal(err)
	} else {
		fmt.Printf("\nmerged with %d conflicts\n", st.Conflicts)
	}

	fmt.Println("\nmaster after merge:")
	products.Scan(master.ID, func(rec *record.Record) bool {
		fmt.Printf("  %v\n", rec)
		return true
	})
}
