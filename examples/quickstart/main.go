// Quickstart: create a Decibel dataset, branch it, modify both
// branches, diff them, and merge the changes back — the basic workflow
// of Section 2.2, written against the public decibel facade: Open with
// functional options, the fluent schema builder, and range-over-func
// iterators for scans and diffs.
package main

import (
	"fmt"
	"log"
	"os"

	"decibel"
)

func main() {
	dir, err := os.MkdirTemp("", "decibel-quickstart-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	// Open a dataset backed by the hybrid storage engine.
	db, err := decibel.Open(dir, decibel.WithEngine("hybrid"))
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()

	// One relation: products(id, price, stock).
	schema := decibel.NewSchema().Int64("id").Int64("price").Int64("stock").MustBuild()
	products, err := db.CreateTable("products", schema)
	if err != nil {
		log.Fatal(err)
	}
	master, _, err := db.Init("initial catalog")
	if err != nil {
		log.Fatal(err)
	}

	// Populate and commit version 1.
	for pk := int64(1); pk <= 5; pk++ {
		rec := decibel.NewRecord(schema)
		rec.SetPK(pk)
		rec.Set(1, pk*100) // price
		rec.Set(2, 10)     // stock
		if err := products.Insert(master.ID, rec); err != nil {
			log.Fatal(err)
		}
	}
	if _, err := db.Commit(master.ID, "five products"); err != nil {
		log.Fatal(err)
	}

	// Branch: a pricing experiment works in isolation.
	pricing, err := db.BranchFromHead("pricing-experiment", "master")
	if err != nil {
		log.Fatal(err)
	}
	sale := decibel.NewRecord(schema)
	sale.SetPK(3)
	sale.Set(1, 150) // discounted price
	sale.Set(2, 10)
	if err := products.Insert(pricing.ID, sale); err != nil {
		log.Fatal(err)
	}

	// Meanwhile master keeps selling: stock of product 5 drops.
	sold := decibel.NewRecord(schema)
	sold.SetPK(5)
	sold.Set(1, 500)
	sold.Set(2, 7)
	if err := products.Insert(master.ID, sold); err != nil {
		log.Fatal(err)
	}

	// Diff the branches with the iterator API.
	fmt.Println("diff(pricing-experiment, master):")
	diff, diffErr := products.Diff(pricing.ID, master.ID)
	for rec, inA := range diff {
		side := "only in master:            "
		if inA {
			side = "only in pricing-experiment:"
		}
		fmt.Printf("  %s %v\n", side, rec)
	}
	if err := diffErr(); err != nil {
		log.Fatal(err)
	}

	// Merge the experiment back. Non-overlapping field updates
	// auto-merge: the discount (price of 3) and the sale (stock of 5)
	// both survive.
	if _, st, err := db.Merge(master.ID, pricing.ID, "adopt discount", decibel.ThreeWay, true); err != nil {
		log.Fatal(err)
	} else {
		fmt.Printf("\nmerged with %d conflicts\n", st.Conflicts)
	}

	fmt.Println("\nmaster after merge:")
	rows, scanErr := products.Rows(master.ID)
	for rec := range rows {
		fmt.Printf("  %v\n", rec)
	}
	if err := scanErr(); err != nil {
		log.Fatal(err)
	}
}
