// Quickstart: create a Decibel dataset, branch it, modify both
// branches, diff them, and merge the changes back — the basic workflow
// of Section 2.2, written against the public decibel facade. Everything
// is addressed by name: db.Commit("master", ...) runs a write
// transaction against a branch head, db.Branch forks it, db.Diff and
// db.Rows iterate it — no branch or commit IDs in sight.
package main

import (
	"fmt"
	"log"
	"os"

	"decibel"
)

func main() {
	dir, err := os.MkdirTemp("", "decibel-quickstart-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	// Open a dataset backed by the hybrid storage engine.
	db, err := decibel.Open(dir, decibel.WithEngine("hybrid"))
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()

	// One relation: products(id, price, stock, sku) — a float column
	// for prices and a fixed-capacity byte-string column for SKUs.
	schema := decibel.NewSchema().
		Int64("id").
		Float64("price").
		Int64("stock").
		Bytes("sku", 12).
		MustBuild()
	if _, err := db.CreateTable("products", schema); err != nil {
		log.Fatal(err)
	}
	if _, _, err := db.Init("initial catalog"); err != nil {
		log.Fatal(err)
	}

	// Populate and commit version 1 as one transaction on master.
	put := func(tx *decibel.Tx, pk int64, price float64, stock int64, sku string) error {
		rec := decibel.NewRecord(schema)
		rec.SetPK(pk)
		rec.SetFloat64(1, price)
		rec.Set(2, stock)
		if err := rec.SetBytes(3, []byte(sku)); err != nil {
			return err
		}
		return tx.Insert("products", rec)
	}
	if _, err := db.Commit("master", func(tx *decibel.Tx) error {
		tx.SetMessage("five products")
		for pk := int64(1); pk <= 5; pk++ {
			if err := put(tx, pk, float64(pk)*99.99, 10, fmt.Sprintf("SKU-%04d", pk)); err != nil {
				return err
			}
		}
		return nil
	}); err != nil {
		log.Fatal(err)
	}

	// Branch: a pricing experiment works in isolation.
	if _, err := db.Branch("master", "pricing-experiment"); err != nil {
		log.Fatal(err)
	}
	if _, err := db.Commit("pricing-experiment", func(tx *decibel.Tx) error {
		tx.SetMessage("discount product 3")
		return put(tx, 3, 150.00, 10, "SKU-0003")
	}); err != nil {
		log.Fatal(err)
	}

	// Meanwhile master keeps selling: stock of product 5 drops.
	if _, err := db.Commit("master", func(tx *decibel.Tx) error {
		tx.SetMessage("sold three of product 5")
		return put(tx, 5, 5*99.99, 7, "SKU-0005")
	}); err != nil {
		log.Fatal(err)
	}

	// Diff the branches with the name-based iterator API.
	fmt.Println("diff(pricing-experiment, master):")
	diff, diffErr := db.Diff("products", "pricing-experiment", "master")
	for rec, inA := range diff {
		side := "only in master:            "
		if inA {
			side = "only in pricing-experiment:"
		}
		fmt.Printf("  %s %v\n", side, rec)
	}
	if err := diffErr(); err != nil {
		log.Fatal(err)
	}

	// Merge the experiment back. Non-overlapping field updates
	// auto-merge: the discount (price of 3) and the sale (stock of 5)
	// both survive.
	if _, st, err := db.Merge("master", "pricing-experiment",
		decibel.WithMergeMessage("adopt discount")); err != nil {
		log.Fatal(err)
	} else {
		fmt.Printf("\nmerged with %d conflicts\n", st.Conflicts)
	}

	fmt.Println("\nmaster after merge:")
	rows, scanErr := db.Rows("products", "master")
	for rec := range rows {
		fmt.Printf("  %v\n", rec)
	}
	if err := scanErr(); err != nil {
		log.Fatal(err)
	}
}
