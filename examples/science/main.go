// Science pattern (Section 1.1): a data science team pins its analysis
// to a snapshot of an evolving dataset. The mainline keeps ingesting;
// each analyst branches from a commit, cleans and features their copy,
// and can always return to (or re-run against) the exact version the
// analysis started from — without duplicating the data.
package main

import (
	"fmt"
	"log"
	"os"

	"decibel"
	"decibel/query"
)

func main() {
	dir, err := os.MkdirTemp("", "decibel-science-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	// The science pattern reads single branches end-to-end — the
	// version-first engine's sweet spot.
	db, err := decibel.Open(dir, decibel.WithEngine("version-first"))
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()

	// events(id, user, score)
	schema := decibel.NewSchema().Int64("id").Int64("user").Int64("score").MustBuild()
	if _, err := db.CreateTable("events", schema); err != nil {
		log.Fatal(err)
	}
	master, _, err := db.Init("event stream")
	if err != nil {
		log.Fatal(err)
	}
	events, _ := db.Table("events")

	ingest := func(message string, from, to int64) *decibel.Commit {
		c, err := db.Commit("master", func(tx *decibel.Tx) error {
			tx.SetMessage(message)
			for pk := from; pk <= to; pk++ {
				rec := decibel.NewRecord(schema)
				rec.SetPK(pk)
				rec.Set(1, pk%7)     // user
				rec.Set(2, pk*3%100) // raw score
				if err := tx.Insert("events", rec); err != nil {
					return err
				}
			}
			return nil
		})
		if err != nil {
			log.Fatal(err)
		}
		return c
	}

	// Day 1 of ingestion, committed as the analysis snapshot.
	snapshot := ingest("day-1 snapshot", 1, 1000)

	// The analyst branches from the snapshot; ingestion continues on
	// mainline concurrently. Branching from a historical commit (rather
	// than a head) goes through the ID-based core API.
	analysis, err := db.Database.Branch("score-cleaning", snapshot.ID)
	if err != nil {
		log.Fatal(err)
	}
	ingest("day-2 data", 1001, 2000)

	// Cleaning on the analysis branch: cap outlier scores at 50, found
	// and fixed inside one transaction on the branch head.
	var outliers []int64
	if _, err := db.Commit("score-cleaning", func(tx *decibel.Tx) error {
		tx.SetMessage("capped outliers")
		rows, scanErr := tx.Rows("events")
		for r := range rows {
			if r.Get(2) > 50 {
				outliers = append(outliers, r.PK())
			}
		}
		if err := scanErr(); err != nil {
			return err
		}
		for _, pk := range outliers {
			rec := decibel.NewRecord(schema)
			rec.SetPK(pk)
			rec.Set(1, pk%7)
			rec.Set(2, 50)
			if err := tx.Insert("events", rec); err != nil {
				return err
			}
		}
		return nil
	}); err != nil {
		log.Fatal(err)
	}

	// The analysis branch still has exactly the day-1 population, with
	// the cleaning applied; mainline has moved on.
	nAnalysis, _ := query.Count(events, analysis.ID, query.True)
	nMainline, _ := query.Count(events, master.ID, query.True)
	maxAnalysis, _ := query.Sum(events, analysis.ID, 2, func(r *decibel.Record) bool { return r.Get(2) > 50 })
	fmt.Printf("analysis branch: %d events (day-1 only), capped %d outliers, scores>50 remaining: %d\n",
		nAnalysis, len(outliers), maxAnalysis)
	fmt.Printf("mainline:        %d events (ingestion kept going)\n", nMainline)

	// A second experiment forks from the same snapshot to try a
	// different strategy — cheap, because branches share storage.
	alt, _ := db.Database.Branch("score-dropping", snapshot.ID)
	if _, err := db.Commit("score-dropping", func(tx *decibel.Tx) error {
		tx.SetMessage("dropped outliers instead")
		for _, pk := range outliers {
			if err := tx.Delete("events", pk); err != nil {
				return err
			}
		}
		return nil
	}); err != nil {
		log.Fatal(err)
	}
	nAlt, _ := query.Count(events, alt.ID, query.True)
	fmt.Printf("alt strategy:    %d events after dropping outliers\n", nAlt)

	// Reproducibility: re-read the exact day-1 snapshot at any time.
	n := 0
	day1, day1Err := events.RowsAt(snapshot)
	for range day1 {
		n++
	}
	if err := day1Err(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("day-1 snapshot:  %d events, immutable\n", n)
}
