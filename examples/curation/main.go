// Curation pattern (Section 1.1): a team collaboratively maintains a
// canonical dataset. Fixes are developed on branches, validated, and
// merged back; conflicting edits are detected at field granularity and
// resolved by precedence.
package main

import (
	"fmt"
	"log"
	"os"

	"decibel"
)

func main() {
	dir, err := os.MkdirTemp("", "decibel-curation-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	db, err := decibel.Open(dir, decibel.WithEngine("hybrid"))
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()

	// pois(id, lat, lon, category) — an OpenStreetMap-style catalog.
	schema := decibel.NewSchema().Int64("id").Int64("lat").Int64("lon").Int64("category").MustBuild()
	if _, err := db.CreateTable("pois", schema); err != nil {
		log.Fatal(err)
	}
	master, _, err := db.Init("canonical map")
	if err != nil {
		log.Fatal(err)
	}
	pois, _ := db.Table("pois")

	add := func(pk, lat, lon, cat int64) *decibel.Record {
		rec := decibel.NewRecord(schema)
		rec.SetPK(pk)
		rec.Set(1, lat)
		rec.Set(2, lon)
		rec.Set(3, cat)
		return rec
	}
	// commit runs one branch-head transaction and dies on failure.
	commit := func(branch, message string, fn func(tx *decibel.Tx) error) {
		if _, err := db.Commit(branch, func(tx *decibel.Tx) error {
			tx.SetMessage(message)
			return fn(tx)
		}); err != nil {
			log.Fatal(err)
		}
	}

	// Seed the canonical catalog.
	commit("master", "seed catalog", func(tx *decibel.Tx) error {
		for pk := int64(1); pk <= 100; pk++ {
			if err := tx.Insert("pois", add(pk, pk*10, pk*20, pk%5)); err != nil {
				return err
			}
		}
		return nil
	})

	// Curator A fixes geometry in one region on a dev branch.
	if _, err := db.Branch("master", "fix-geometry"); err != nil {
		log.Fatal(err)
	}
	commit("fix-geometry", "geometry pass", func(tx *decibel.Tx) error {
		for pk := int64(1); pk <= 10; pk++ {
			if err := tx.Insert("pois", add(pk, pk*10+1, pk*20+1, pk%5)); err != nil { // nudge lat/lon
				return err
			}
		}
		return nil
	})

	// Curator B re-categorizes some of the same POIs on another branch.
	if _, err := db.Branch("master", "fix-categories"); err != nil {
		log.Fatal(err)
	}
	commit("fix-categories", "category pass", func(tx *decibel.Tx) error {
		for pk := int64(5); pk <= 15; pk++ {
			if err := tx.Insert("pois", add(pk, pk*10, pk*20, 4)); err != nil { // category only
				return err
			}
		}
		return nil
	})

	// Meanwhile production edits the canonical version too: POI 7 moves.
	commit("master", "hotfix POI 7", func(tx *decibel.Tx) error {
		return tx.Insert("pois", add(7, 777, 7777, 7%5))
	})

	// Merge the geometry pass. POI 7 was moved both in master and in the
	// branch: a field-level conflict on lat/lon, resolved in favor of
	// the canonical version (precedence first).
	_, st1, err := db.Merge("master", "fix-geometry", decibel.WithMergeMessage("merge geometry pass"))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("merge fix-geometry:  %d records from branch, %d conflicts (canonical wins)\n", st1.ChangedB, st1.Conflicts)

	// Merge the category pass. Its edits touch the *category* field of
	// POIs whose *geometry* just changed — disjoint fields, so they
	// auto-merge without conflicts.
	_, st2, err := db.Merge("master", "fix-categories", decibel.WithMergeMessage("merge category pass"))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("merge fix-categories: %d records from branch, %d conflicts\n", st2.ChangedB, st2.Conflicts)

	// Verify the merged canonical state: POI 7 keeps the hotfix
	// position, POI 5 has both the geometry nudge and category 4.
	pois.Scan(master.ID, func(rec *decibel.Record) bool {
		switch rec.PK() {
		case 5:
			fmt.Printf("POI 5: lat=%d lon=%d category=%d (geometry + category merged)\n",
				rec.Get(1), rec.Get(2), rec.Get(3))
		case 7:
			fmt.Printf("POI 7: lat=%d lon=%d category=%d (hotfix preserved)\n",
				rec.Get(1), rec.Get(2), rec.Get(3))
		}
		return true
	})
}
