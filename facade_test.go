package decibel_test

// Facade contract tests: the full git-like round trip of Section 2.2
// driven purely through the public decibel package on every registered
// engine, plus errors.Is assertions for each sentinel error.

import (
	"errors"
	"slices"
	"testing"

	"decibel"
)

// facadeEngines are the canonical registry names the round trip runs on.
var facadeEngines = []string{"tuple-first", "version-first", "hybrid"}

func TestEnginesRegistered(t *testing.T) {
	got := decibel.Engines()
	want := []string{"hybrid", "tuple-first", "version-first"}
	if !slices.Equal(got, want) {
		t.Fatalf("Engines() = %v, want %v", got, want)
	}
}

// TestFacadeRoundTrip: open → create table → init → branch → insert →
// commit → merge → reopen, checking the catalog and version graph
// survive the reopen, on all three engines.
func TestFacadeRoundTrip(t *testing.T) {
	for _, engine := range facadeEngines {
		t.Run(engine, func(t *testing.T) {
			dir := t.TempDir()
			db, err := decibel.Open(dir, decibel.WithEngine(engine),
				decibel.WithPageSize(64<<10), decibel.WithPoolPages(64))
			if err != nil {
				t.Fatal(err)
			}

			schema, err := decibel.NewSchema().Int64("id").Int64("price").Int32("qty").Build()
			if err != nil {
				t.Fatal(err)
			}
			products, err := db.CreateTable("products", schema)
			if err != nil {
				t.Fatal(err)
			}
			master, _, err := db.Init("init")
			if err != nil {
				t.Fatal(err)
			}

			mkRec := func(pk, price, qty int64) *decibel.Record {
				rec := decibel.NewRecord(schema)
				rec.SetPK(pk)
				rec.Set(1, price)
				rec.Set(2, qty)
				return rec
			}
			// Name-based write transaction: ten products on master.
			if _, err := db.Commit("master", func(tx *decibel.Tx) error {
				tx.SetMessage("ten products")
				for pk := int64(1); pk <= 10; pk++ {
					if err := tx.Insert("products", mkRec(pk, pk*100, 5)); err != nil {
						return err
					}
				}
				return nil
			}); err != nil {
				t.Fatal(err)
			}

			dev, err := db.Branch("master", "dev")
			if err != nil {
				t.Fatal(err)
			}
			if _, err := db.Commit("dev", func(tx *decibel.Tx) error {
				tx.SetMessage("dev work")
				if err := tx.Insert("products", mkRec(3, 333, 5)); err != nil { // price change on dev
					return err
				}
				return tx.Insert("products", mkRec(11, 1100, 1)) // new record on dev
			}); err != nil {
				t.Fatal(err)
			}
			// Uncommitted head write through the ID-based table API: qty
			// change on master, visible to diff and merge below.
			if err := products.Insert(master.ID, mkRec(5, 500, 1)); err != nil {
				t.Fatal(err)
			}

			// Name-based diff iterator: dev has pk 3 (changed) and 11
			// (new) vs master; master has pk 3 (old), 5 (changed) and
			// no 11.
			inDev, inMaster := 0, 0
			diff, diffErr := db.Diff("products", "dev", "master")
			for _, inA := range diff {
				if inA {
					inDev++
				} else {
					inMaster++
				}
			}
			if err := diffErr(); err != nil {
				t.Fatal(err)
			}
			if inDev != 3 || inMaster != 2 {
				t.Fatalf("diff(dev, master) = %d/%d records, want 3/2", inDev, inMaster)
			}

			mc, st, err := db.Merge("master", "dev", decibel.WithMergeMessage("merge dev"))
			if err != nil {
				t.Fatal(err)
			}
			if !mc.IsMerge() {
				t.Fatal("merge commit has one parent")
			}
			if st.Conflicts != 0 {
				t.Fatalf("unexpected conflicts: %d", st.Conflicts)
			}

			// Master now holds 11 records: dev's price fix and new row
			// plus master's own qty change.
			rows, scanErr := db.Rows("products", "master")
			byPK := map[int64][2]int64{}
			for rec := range rows {
				byPK[rec.PK()] = [2]int64{rec.Get(1), rec.Get(2)}
			}
			if err := scanErr(); err != nil {
				t.Fatal(err)
			}
			if len(byPK) != 11 {
				t.Fatalf("master has %d records after merge, want 11", len(byPK))
			}
			if byPK[3][0] != 333 {
				t.Fatalf("pk 3 price = %d, want dev's 333", byPK[3][0])
			}
			if byPK[5][1] != 1 {
				t.Fatalf("pk 5 qty = %d, want master's 1", byPK[5][1])
			}

			// RowsMulti sees the merged record set across both heads.
			distinct := 0
			multi, multiErr := products.RowsMulti([]decibel.BranchID{master.ID, dev.ID})
			for _, membership := range multi {
				if membership.Count() == 0 {
					t.Fatal("record with empty membership")
				}
				distinct++
			}
			if err := multiErr(); err != nil {
				t.Fatal(err)
			}
			if distinct < 11 {
				t.Fatalf("multi-branch scan saw %d records, want >= 11", distinct)
			}

			nCommits := db.Graph().NumCommits()
			if err := db.Close(); err != nil {
				t.Fatal(err)
			}
			if err := db.Close(); err != nil {
				t.Fatalf("second Close not idempotent: %v", err)
			}

			// Reopen: catalog, graph and committed data must all be back.
			db2, err := decibel.Open(dir, decibel.WithEngine(engine),
				decibel.WithPageSize(64<<10), decibel.WithPoolPages(64))
			if err != nil {
				t.Fatal(err)
			}
			defer db2.Close()
			products2, err := db2.TableByName("products")
			if err != nil {
				t.Fatal(err)
			}
			if !products2.Schema().Equal(schema) {
				t.Fatal("reopened schema differs")
			}
			if got := db2.Graph().NumCommits(); got != nCommits {
				t.Fatalf("reopened graph has %d commits, want %d", got, nCommits)
			}
			master2, err := db2.BranchNamed("master")
			if err != nil {
				t.Fatal(err)
			}
			if _, err := db2.BranchNamed("dev"); err != nil {
				t.Fatal(err)
			}
			n := 0
			rows2, scanErr2 := products2.Rows(master2.ID)
			for range rows2 {
				n++
			}
			if err := scanErr2(); err != nil {
				t.Fatal(err)
			}
			if n != 11 {
				t.Fatalf("reopened master has %d records, want 11", n)
			}
		})
	}
}

// TestIteratorEarlyBreak checks range-over-func scans stop cleanly
// mid-iteration.
func TestIteratorEarlyBreak(t *testing.T) {
	db, products, master := openSeeded(t, "hybrid")
	defer db.Close()
	n := 0
	rows, scanErr := products.Rows(master.ID)
	for range rows {
		n++
		if n == 3 {
			break
		}
	}
	if err := scanErr(); err != nil {
		t.Fatal(err)
	}
	if n != 3 {
		t.Fatalf("broke after %d records, want 3", n)
	}
}

// openSeeded opens a fresh dataset with one table and ten committed
// records on master.
func openSeeded(t *testing.T, engine string) (*decibel.DB, *decibel.Table, *decibel.Branch) {
	t.Helper()
	db, err := decibel.Open(t.TempDir(), decibel.WithEngine(engine))
	if err != nil {
		t.Fatal(err)
	}
	schema := decibel.NewSchema().Int64("id").Int64("v").MustBuild()
	tbl, err := db.CreateTable("r", schema)
	if err != nil {
		t.Fatal(err)
	}
	master, _, err := db.Init("init")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := db.Commit("master", func(tx *decibel.Tx) error {
		tx.SetMessage("seed")
		for pk := int64(1); pk <= 10; pk++ {
			rec := decibel.NewRecord(schema)
			rec.SetPK(pk)
			rec.Set(1, pk)
			if err := tx.Insert("r", rec); err != nil {
				return err
			}
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	return db, tbl, master
}

func TestSentinelErrors(t *testing.T) {
	if _, err := decibel.Open(t.TempDir(), decibel.WithEngine("btree")); !errors.Is(err, decibel.ErrUnknownEngine) {
		t.Fatalf("unknown engine: got %v, want ErrUnknownEngine", err)
	}

	db, tbl, master := openSeeded(t, "hybrid")
	defer db.Close()

	if _, err := db.TableByName("nope"); !errors.Is(err, decibel.ErrNoSuchTable) {
		t.Fatalf("missing table: got %v, want ErrNoSuchTable", err)
	}
	if _, err := db.BranchNamed("nope"); !errors.Is(err, decibel.ErrNoSuchBranch) {
		t.Fatalf("missing branch: got %v, want ErrNoSuchBranch", err)
	}
	if _, err := db.Branch("nope", "b"); !errors.Is(err, decibel.ErrNoSuchBranch) {
		t.Fatalf("branch from missing parent: got %v, want ErrNoSuchBranch", err)
	}
	if _, err := db.Database.Branch("b", decibel.CommitID(9999)); !errors.Is(err, decibel.ErrNoSuchCommit) {
		t.Fatalf("branch from missing commit: got %v, want ErrNoSuchCommit", err)
	}
	if _, err := db.Commit("nope", func(*decibel.Tx) error { return nil }); !errors.Is(err, decibel.ErrNoSuchBranch) {
		t.Fatalf("commit on missing branch: got %v, want ErrNoSuchBranch", err)
	}
	if _, _, err := db.Merge("master", "nope"); !errors.Is(err, decibel.ErrNoSuchBranch) {
		t.Fatalf("merge from missing branch: got %v, want ErrNoSuchBranch", err)
	}
	txErr := errors.New("callback failed")
	before := db.Graph().NumCommits()
	if _, err := db.Commit("master", func(*decibel.Tx) error { return txErr }); !errors.Is(err, txErr) {
		t.Fatalf("failing callback: got %v, want the callback's error", err)
	}
	if got := db.Graph().NumCommits(); got != before {
		t.Fatalf("failing callback still committed: %d commits, want %d", got, before)
	}
	if _, _, err := db.Init("again"); !errors.Is(err, decibel.ErrAlreadyInitialized) {
		t.Fatalf("double init: got %v, want ErrAlreadyInitialized", err)
	}
	if _, err := db.CreateTable("late", tbl.Schema()); !errors.Is(err, decibel.ErrAlreadyInitialized) {
		t.Fatalf("create after init: got %v, want ErrAlreadyInitialized", err)
	}

	// Session positioning errors.
	rec := decibel.NewRecord(tbl.Schema())
	rec.SetPK(100)

	detached, err := db.NewSession()
	if err != nil {
		t.Fatal(err)
	}
	defer detached.Close()
	if err := detached.CheckoutCommit(decibel.CommitID(9999)); !errors.Is(err, decibel.ErrNoSuchCommit) {
		t.Fatalf("checkout missing commit: got %v, want ErrNoSuchCommit", err)
	}
	if err := detached.CheckoutCommit(decibel.CommitID(1)); err != nil { // init commit, not a head
		t.Fatal(err)
	}
	if err := detached.Insert("r", rec); !errors.Is(err, decibel.ErrDetachedHead) {
		t.Fatalf("write while detached: got %v, want ErrDetachedHead", err)
	}

	stale, err := db.NewSession()
	if err != nil {
		t.Fatal(err)
	}
	defer stale.Close()
	if err := stale.Checkout("master"); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Commit("master", func(*decibel.Tx) error { return nil }); err != nil {
		t.Fatal(err)
	}
	if err := stale.Insert("r", rec); !errors.Is(err, decibel.ErrNotAtHead) {
		t.Fatalf("write behind head: got %v, want ErrNotAtHead", err)
	}
	if err := stale.Checkout("nope"); !errors.Is(err, decibel.ErrNoSuchBranch) {
		t.Fatalf("checkout missing branch: got %v, want ErrNoSuchBranch", err)
	}

	atHead, err := db.NewSession()
	if err != nil {
		t.Fatal(err)
	}
	defer atHead.Close()
	if err := atHead.Insert("nope", rec); !errors.Is(err, decibel.ErrNoSuchTable) {
		t.Fatalf("insert into missing table: got %v, want ErrNoSuchTable", err)
	}

	// Every session method fails with ErrSessionClosed after Close.
	closed, err := db.NewSession()
	if err != nil {
		t.Fatal(err)
	}
	closed.Close()
	closed.Close() // idempotent
	if err := closed.Checkout("master"); !errors.Is(err, decibel.ErrSessionClosed) {
		t.Fatalf("Checkout on closed session: got %v, want ErrSessionClosed", err)
	}
	if err := closed.CheckoutCommit(decibel.CommitID(1)); !errors.Is(err, decibel.ErrSessionClosed) {
		t.Fatalf("CheckoutCommit on closed session: got %v, want ErrSessionClosed", err)
	}
	if err := closed.Insert("r", rec); !errors.Is(err, decibel.ErrSessionClosed) {
		t.Fatalf("Insert on closed session: got %v, want ErrSessionClosed", err)
	}
	if err := closed.Delete("r", 1); !errors.Is(err, decibel.ErrSessionClosed) {
		t.Fatalf("Delete on closed session: got %v, want ErrSessionClosed", err)
	}
	if err := closed.Scan("r", func(*decibel.Record) bool { return true }); !errors.Is(err, decibel.ErrSessionClosed) {
		t.Fatalf("Scan on closed session: got %v, want ErrSessionClosed", err)
	}
	if _, err := closed.CommitWork("msg"); !errors.Is(err, decibel.ErrSessionClosed) {
		t.Fatalf("CommitWork on closed session: got %v, want ErrSessionClosed", err)
	}

	// Database operations fail with ErrDatabaseClosed after Close.
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Commit("master", func(*decibel.Tx) error { return nil }); !errors.Is(err, decibel.ErrDatabaseClosed) {
		t.Fatalf("Commit on closed db: got %v, want ErrDatabaseClosed", err)
	}
	if _, err := db.NewSession(); !errors.Is(err, decibel.ErrDatabaseClosed) {
		t.Fatalf("NewSession on closed db: got %v, want ErrDatabaseClosed", err)
	}
	if err := db.Flush(); !errors.Is(err, decibel.ErrDatabaseClosed) {
		t.Fatalf("Flush on closed db: got %v, want ErrDatabaseClosed", err)
	}
	if _, err := db.Stats(); !errors.Is(err, decibel.ErrDatabaseClosed) {
		t.Fatalf("Stats on closed db: got %v, want ErrDatabaseClosed", err)
	}
	if err := tbl.Insert(master.ID, rec); !errors.Is(err, decibel.ErrDatabaseClosed) {
		t.Fatalf("Insert on closed db: got %v, want ErrDatabaseClosed", err)
	}
	rows, scanErr := tbl.Rows(master.ID)
	for range rows {
		t.Fatal("scan on closed db yielded a record")
	}
	if err := scanErr(); !errors.Is(err, decibel.ErrDatabaseClosed) {
		t.Fatalf("Rows on closed db: got %v, want ErrDatabaseClosed", err)
	}
}

func TestSchemaBuilderValidation(t *testing.T) {
	if _, err := decibel.NewSchema().Build(); err == nil {
		t.Fatal("empty schema accepted")
	}
	if _, err := decibel.NewSchema().Int32("id").Build(); err == nil {
		t.Fatal("non-Int64 primary key accepted")
	}
	if _, err := decibel.NewSchema().Int64("id").Int64("id").Build(); err == nil {
		t.Fatal("duplicate column accepted")
	}
	s, err := decibel.NewSchema().Int64("id").Int64("a").Int32("b").Build()
	if err != nil {
		t.Fatal(err)
	}
	if s.NumColumns() != 3 || s.Column(2).Type != decibel.Int32 {
		t.Fatalf("built schema wrong: %d columns", s.NumColumns())
	}
}
