// Package query is the public face of the versioned query operators of
// Decibel's benchmark (Table 1): single-version scans with predicates,
// positive diffs between versions, primary-key joins across versions,
// and HEAD() scans over all branch heads.
//
// The fluent, name-based way to run these queries is the builder on
// the facade — decibel.DB.Query — which adds typed column predicates,
// projections, aggregates and engine-level pushdown:
//
//	rows, qErr := db.Query("products").
//		On("master").
//		Where(query.Col("price").Lt(9.5)).
//		Select("sku", "price").
//		Rows()
//
// Since the relational-algebra generalization the builder also
// composes N-way equi-joins across tables (decibel.Query.JoinOn with
// decibel.On, consumed by Tuples) and grouped streaming aggregates
// (decibel.Query.GroupBy with Groups and the decibel.Count / Sum /
// Min / Max / Avg aggregate constructors); the fixed two-branch
// version join of Query 3 is one configuration of that join node.
//
// The free functions below are the original ID-based operators, kept
// for callers that already hold vgraph IDs. They are thin wrappers
// over the same pushdown-capable scan paths the builder compiles to,
// and are deprecated in favor of it.
package query

import (
	"decibel"
	iquery "decibel/internal/query"
)

// Predicate filters records (the legacy, integer-indexed form).
//
// Deprecated: build typed, name-based predicates with Col and pass
// them to decibel.DB.Query's Where.
type Predicate = iquery.Predicate

// Expr is a typed predicate over named columns; see decibel.Expr.
type Expr = iquery.Expr

// ColRef references a named column inside a predicate.
type ColRef = iquery.ColRef

// Col starts a typed predicate on the named column, e.g.
// query.Col("price").Lt(9.5); see decibel.Col.
func Col(name string) ColRef { return iquery.Col(name) }

// MatchAll is the explicit always-true typed predicate.
func MatchAll() Expr { return iquery.All() }

// JoinedPair is one output row of a version join.
type JoinedPair = iquery.JoinedPair

// HeadRecord is one output row of a HEAD() scan: a record plus the
// branches whose heads contain it.
type HeadRecord = iquery.HeadRecord

// True matches every record.
//
// Deprecated: with the builder, simply omit Where (or use MatchAll).
func True(r *decibel.Record) bool { return iquery.True(r) }

// ColumnEquals matches records whose column equals v.
//
// Deprecated: use Col(name).Eq(v) with decibel.DB.Query.
func ColumnEquals(col int, v int64) Predicate { return iquery.ColumnEquals(col, v) }

// ColumnLess matches records whose column is less than v.
//
// Deprecated: use Col(name).Lt(v) with decibel.DB.Query.
func ColumnLess(col int, v int64) Predicate { return iquery.ColumnLess(col, v) }

// ColumnMod matches records whose column value modulo m equals rem.
func ColumnMod(col int, m, rem int64) Predicate { return iquery.ColumnMod(col, m, rem) }

// And combines predicates conjunctively.
//
// Deprecated: use Expr.And.
func And(ps ...Predicate) Predicate { return iquery.And(ps...) }

// Or combines predicates disjunctively.
//
// Deprecated: use Expr.Or.
func Or(ps ...Predicate) Predicate { return iquery.Or(ps...) }

// Not negates a predicate.
//
// Deprecated: use Expr.Not.
func Not(p Predicate) Predicate { return iquery.Not(p) }

// SingleVersionScan is Query 1: scan one branch head under a predicate.
//
// Deprecated: use db.Query(table).On(branch).Where(...).Rows().
func SingleVersionScan(t *decibel.Table, branch decibel.BranchID, pred Predicate, fn decibel.ScanFunc) error {
	return iquery.SingleVersionScan(t, branch, pred, fn)
}

// CommitScan is Query 1 against a committed (checked-out) version.
//
// Deprecated: use db.Query(table).On(branch).At(seq).Rows().
func CommitScan(t *decibel.Table, c *decibel.Commit, pred Predicate, fn decibel.ScanFunc) error {
	return iquery.CommitScan(t, c, pred, fn)
}

// PositiveDiff is Query 2: emit the records in branch a that do not
// appear in branch b.
//
// Deprecated: use db.Query(table).Diff(a, b).
func PositiveDiff(t *decibel.Table, a, b decibel.BranchID, fn decibel.ScanFunc) error {
	return iquery.PositiveDiff(t, a, b, fn)
}

// VersionJoin is Query 3: a primary-key join between two branch heads,
// emitting pairs whose left record satisfies the predicate.
//
// Deprecated: use the general join node —
// db.Query(table).On(left).Where(...).JoinOn(db.Query(table).On(right),
// decibel.On("pk", "pk")).Tuples() — or the compatibility terminal
// db.Query(table).Where(...).Join(left, right), itself deprecated.
func VersionJoin(t *decibel.Table, left, right decibel.BranchID, pred Predicate, fn func(JoinedPair) bool) error {
	return iquery.VersionJoin(t, left, right, pred, fn)
}

// HeadScan is Query 4: emit every record live in the head of any
// branch satisfying the predicate, annotated with its active branches.
//
// Deprecated: use db.Query(table).Heads().Annotated().
func HeadScan(g *decibel.Graph, t *decibel.Table, pred Predicate, fn func(HeadRecord) bool) error {
	return iquery.HeadScan(g, t, pred, fn)
}

// HeadScanBranches is HeadScan restricted to an explicit branch list.
//
// Deprecated: use db.Query(table).On(branches...).Annotated().
func HeadScanBranches(t *decibel.Table, ids []decibel.BranchID, pred Predicate, fn func(HeadRecord) bool) error {
	return iquery.HeadScanBranches(t, ids, pred, fn)
}

// Count runs a counting aggregate over a single-version scan.
//
// Deprecated: use db.Query(table).On(branch).Count().
func Count(t *decibel.Table, branch decibel.BranchID, pred Predicate) (int, error) {
	return iquery.Count(t, branch, pred)
}

// Sum aggregates one column over a single-version scan.
//
// Deprecated: use db.Query(table).On(branch).Sum(col).
func Sum(t *decibel.Table, branch decibel.BranchID, col int, pred Predicate) (int64, error) {
	return iquery.Sum(t, branch, col, pred)
}
