// Package query is the public face of the versioned query operators of
// Decibel's benchmark (Table 1): single-version scans with predicates,
// positive diffs between versions, primary-key joins across versions,
// and HEAD() scans over all branch heads. Operators work on any
// decibel.Table regardless of storage engine.
package query

import (
	"decibel"
	iquery "decibel/internal/query"
)

// Predicate filters records.
type Predicate = iquery.Predicate

// JoinedPair is one output row of a version join.
type JoinedPair = iquery.JoinedPair

// HeadRecord is one output row of a HEAD() scan: a record plus the
// branches whose heads contain it.
type HeadRecord = iquery.HeadRecord

// True matches every record.
func True(r *decibel.Record) bool { return iquery.True(r) }

// ColumnEquals matches records whose column equals v.
func ColumnEquals(col int, v int64) Predicate { return iquery.ColumnEquals(col, v) }

// ColumnLess matches records whose column is less than v.
func ColumnLess(col int, v int64) Predicate { return iquery.ColumnLess(col, v) }

// ColumnMod matches records whose column value modulo m equals rem.
func ColumnMod(col int, m, rem int64) Predicate { return iquery.ColumnMod(col, m, rem) }

// And combines predicates conjunctively.
func And(ps ...Predicate) Predicate { return iquery.And(ps...) }

// Or combines predicates disjunctively.
func Or(ps ...Predicate) Predicate { return iquery.Or(ps...) }

// Not negates a predicate.
func Not(p Predicate) Predicate { return iquery.Not(p) }

// SingleVersionScan is Query 1: scan one branch head under a predicate.
func SingleVersionScan(t *decibel.Table, branch decibel.BranchID, pred Predicate, fn decibel.ScanFunc) error {
	return iquery.SingleVersionScan(t, branch, pred, fn)
}

// CommitScan is Query 1 against a committed (checked-out) version.
func CommitScan(t *decibel.Table, c *decibel.Commit, pred Predicate, fn decibel.ScanFunc) error {
	return iquery.CommitScan(t, c, pred, fn)
}

// PositiveDiff is Query 2: emit the records in branch a that do not
// appear in branch b.
func PositiveDiff(t *decibel.Table, a, b decibel.BranchID, fn decibel.ScanFunc) error {
	return iquery.PositiveDiff(t, a, b, fn)
}

// VersionJoin is Query 3: a primary-key join between two branch heads,
// emitting pairs whose left record satisfies the predicate.
func VersionJoin(t *decibel.Table, left, right decibel.BranchID, pred Predicate, fn func(JoinedPair) bool) error {
	return iquery.VersionJoin(t, left, right, pred, fn)
}

// HeadScan is Query 4: emit every record live in the head of any
// branch satisfying the predicate, annotated with its active branches.
func HeadScan(g *decibel.Graph, t *decibel.Table, pred Predicate, fn func(HeadRecord) bool) error {
	return iquery.HeadScan(g, t, pred, fn)
}

// HeadScanBranches is HeadScan restricted to an explicit branch list.
func HeadScanBranches(t *decibel.Table, ids []decibel.BranchID, pred Predicate, fn func(HeadRecord) bool) error {
	return iquery.HeadScanBranches(t, ids, pred, fn)
}

// Count runs a counting aggregate over a single-version scan.
func Count(t *decibel.Table, branch decibel.BranchID, pred Predicate) (int, error) {
	return iquery.Count(t, branch, pred)
}

// Sum aggregates one column over a single-version scan.
func Sum(t *decibel.Table, branch decibel.BranchID, col int, pred Predicate) (int64, error) {
	return iquery.Sum(t, branch, col, pred)
}
