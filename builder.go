package decibel

import (
	"context"
	"fmt"
	"iter"

	iquery "decibel/internal/query"
	"decibel/internal/record"
)

// Expr is a typed predicate over named columns, built with Col and
// combined with its And/Or/Not methods. The zero value matches every
// record. Expressions are validated against the table's catalog when
// the query runs — unknown columns fail with ErrNoSuchColumn,
// ill-typed comparisons with ErrTypeMismatch.
type Expr = iquery.Expr

// ColRef references a named column inside a predicate; its comparison
// methods (Eq, Ne, Lt, Le, Gt, Ge, HasPrefix) produce Exprs.
type ColRef = iquery.ColRef

// Col starts a typed predicate on the named column:
//
//	decibel.Col("price").Lt(9.5)
//	decibel.Col("sku").HasPrefix("widget-").And(decibel.Col("qty").Ge(3))
//
// Integer values fit Int32/Int64 columns, floats (or integers) fit
// Float64 columns, strings and []byte fit Bytes columns.
func Col(name string) ColRef { return iquery.Col(name) }

// MatchAll is the explicit always-true predicate (the zero Expr
// behaves the same).
func MatchAll() Expr { return iquery.All() }

// JoinKey is the equi-join condition JoinOn composes on, built with On:
// Left names a column of the relations already in the query (the root
// table or an earlier JoinOn leg), Right a column of the newly joined
// query's table.
type JoinKey struct{ Left, Right string }

// On builds the equi-join key for JoinOn:
//
//	db.Query("orders").On("master").
//		JoinOn(db.Query("users"), decibel.On("user_id", "id")).
//		Tuples()
//
// joins each order to the user whose id equals the order's user_id.
// Keys must be integer or byte-string columns — Float64 keys fail at
// plan time with ErrBadQuery (float equality is ill-defined), and
// mixing the two families fails with ErrTypeMismatch.
func On(left, right string) JoinKey { return JoinKey{Left: left, Right: right} }

// JoinTuple is one joined output row: one record per relation in the
// order the query composed them (index 0 is the root table).
type JoinTuple = iquery.JoinTuple

// GroupRow is one group of a grouped aggregation: the GroupBy column
// values (int64, float64 or []byte, in GroupBy order) and one float64
// result per aggregate passed to Groups, in argument order.
type GroupRow = iquery.GroupRow

// Agg names one per-group aggregate for the Groups terminal, built
// with the Count, Sum, Min, Max and Avg constructors.
type Agg = iquery.AggSpec

// Count is the per-group row count for Groups.
func Count() Agg { return Agg{Kind: iquery.AggCount} }

// Sum folds the named numeric column per group.
func Sum(col string) Agg { return Agg{Kind: iquery.AggSum, Col: col} }

// Min keeps the named numeric column's smallest value per group.
func Min(col string) Agg { return Agg{Kind: iquery.AggMin, Col: col} }

// Max keeps the named numeric column's largest value per group.
func Max(col string) Agg { return Agg{Kind: iquery.AggMax, Col: col} }

// Avg folds the named numeric column's mean per group.
func Avg(col string) Agg { return Agg{Kind: iquery.AggAvg, Col: col} }

// Query is a fluent, name-based versioned query over one table,
// started with DB.Query. Configure it with On/At/Heads/Where/Select —
// and compose relations with JoinOn and GroupBy — then run one
// terminal: Rows, Annotated, Diff, Tuples, Groups, Count, Sum, Min,
// Max or Avg (each with a Context variant). A Query is cheap to build and
// reusable — every terminal compiles the logical plan afresh against
// the catalog and version graph, so plan-time validation errors
// (ErrNoSuchBranch, ErrNoSuchColumn, ErrTypeMismatch, ErrBadQuery, ...)
// surface from the terminal, wrapped for errors.Is.
//
// Under the hood the plan is pushed into the storage engine where
// possible: predicates are compiled to raw buffer comparisons the
// engines evaluate before materializing records, and multi-branch
// scans (On with several branches, or Heads) run as a single pass
// driven by the union of the branches' liveness bitmaps instead of one
// rescan per branch.
type Query struct {
	db       *DB
	plan     iquery.Plan
	hasWhere bool
	err      error // sticky builder error, surfaced by the terminals
}

// Query starts a query over the named table:
//
//	rows, qErr := db.Query("products").
//		On("master").
//		Where(decibel.Col("price").Lt(9.5)).
//		Select("sku", "price").
//		Rows()
func (db *DB) Query(table string) *Query {
	return &Query{db: db, plan: iquery.Plan{Table: table, AtSeq: -1}}
}

// On adds the named branches to the scan set. One branch is the
// single-version scan of Query 1; several make the query a
// multi-branch scan executed in one engine pass (see Annotated).
func (q *Query) On(branches ...string) *Query {
	q.plan.Branches = append(q.plan.Branches, branches...)
	return q
}

// Heads makes the query scan every branch head (the paper's HEAD()
// scan, Query 4). It cannot be combined with On.
func (q *Query) Heads() *Query {
	q.plan.AllHeads = true
	return q
}

// At addresses a historical version: the seq'th commit made on the
// query's single branch, zero-based (the CLI's "branch@seq"
// time-travel). Requires exactly one On branch.
func (q *Query) At(seq int) *Query {
	q.plan.AtSeq = seq
	return q
}

// AtCommit pins the read to an explicit commit ID — any commit in the
// graph, including a branch head captured before later commits moved
// it. Reading a pinned commit takes no branch locks (history is
// immutable), which is how the server serves snapshot-isolated reads.
// Requires exactly one On branch; cannot combine with At.
func (q *Query) AtCommit(id CommitID) *Query {
	q.plan.AtCommit = id
	return q
}

// Where filters the scanned records with a typed predicate. Calling
// Where repeatedly ANDs the predicates together.
func (q *Query) Where(e Expr) *Query {
	if q.hasWhere {
		q.plan.Where = q.plan.Where.And(e)
	} else {
		q.plan.Where = e
		q.hasWhere = true
	}
	return q
}

// Select projects the output to the named columns. The primary key
// column is always retained (prepended when not listed) because
// Decibel addresses records by key across versions.
func (q *Query) Select(cols ...string) *Query {
	q.plan.Cols = append(q.plan.Cols, cols...)
	return q
}

// OrderBy sorts the rows Rows/Diff emit by the named column,
// ascending (desc flips the direction; NaN orders below every number).
// The column must exist at the addressed version — unknown names fail
// at plan time with ErrNoSuchColumn — and must survive Select. OrderBy
// requires a gather, so combine it with Limit where possible: together
// they run as a bounded top-k heap instead of a full sort.
func (q *Query) OrderBy(col string, desc bool) *Query {
	q.plan.OrderCol = col
	q.plan.OrderDesc = desc
	return q
}

// Limit caps the number of rows Rows/Diff emit. Without OrderBy the
// scan simply stops early; with it, the query keeps the first n rows
// of the ordered output via a top-k heap.
func (q *Query) Limit(n int) *Query {
	q.plan.Limit = n
	return q
}

// Sequential pins the query to the sequential scan path, bypassing the
// database's parallel scan executor (see Open's WithScanWorkers). The
// results are identical either way; this exists as the explicit
// baseline for equivalence tests and benchmarks.
func (q *Query) Sequential() *Query {
	q.plan.NoParallel = true
	return q
}

// JoinOn composes an N-way equi-join: the rows of other's table whose
// key.Right column equals the key.Left column of the relations already
// in the query. Each JoinOn adds one relation; other carries its own
// branch, Where and Select (a leg without On inherits this query's
// branch), and its predicate/projection push into its own scan. The
// planner orders the relations greedily by zone-map row estimate —
// smallest first, hash-build on the accumulated side, streaming-probe
// the larger — unless DeclaredJoinOrder pins the composed order; the
// joined tuples are identical either way, emitted in ascending
// composite primary-key order through Tuples (or grouped through
// GroupBy and Groups). other's configuration is captured at the
// JoinOn call.
func (q *Query) JoinOn(other *Query, key JoinKey) *Query {
	if other == nil {
		q.fail(fmt.Errorf("%w: JoinOn with a nil query", ErrBadQuery))
		return q
	}
	if other.db != q.db {
		q.fail(fmt.Errorf("%w: JoinOn composes queries of the same DB", ErrBadQuery))
		return q
	}
	if other.err != nil {
		q.fail(other.err)
		return q
	}
	q.plan.Joins = append(q.plan.Joins, iquery.JoinLeg{Plan: other.plan, LeftCol: key.Left, RightCol: key.Right})
	return q
}

// GroupBy makes the query a grouped aggregation: rows (or joined
// tuples) bucket by the named columns and the Groups terminal streams
// one row per distinct key with the requested aggregates, in
// first-arrival order. Grouping is bounded hash aggregation — state
// per distinct group, not per row — pushed through the parallel
// executor like the scalar aggregates. GroupBy cannot combine with
// OrderBy or Limit.
func (q *Query) GroupBy(cols ...string) *Query {
	q.plan.GroupCols = append(q.plan.GroupCols, cols...)
	return q
}

// DeclaredJoinOrder pins join execution to the order the relations
// were composed in, bypassing the greedy zone-map ordering. Results
// are identical; this exists as the explicit baseline for the
// join-ordering benchmarks.
func (q *Query) DeclaredJoinOrder() *Query {
	q.plan.NoReorder = true
	return q
}

// fail records the first builder error; terminals surface it.
func (q *Query) fail(err error) {
	if q.err == nil {
		q.err = err
	}
}

// compile resolves the plan against the database.
func (q *Query) compile() (*iquery.Compiled, error) {
	if q.err != nil {
		return nil, q.err
	}
	return q.plan.Compile(q.db.Database)
}

// errSeq returns an empty sequence carrying err.
func errSeq(err error) (iter.Seq[*Record], func() error) {
	return func(func(*Record) bool) {}, func() error { return err }
}

func errSeq2[A, B any](err error) (iter.Seq2[A, B], func() error) {
	return func(func(A, B) bool) {}, func() error { return err }
}

func errSeq1[T any](err error) (iter.Seq[T], func() error) {
	return func(func(T) bool) {}, func() error { return err }
}

// Rows runs the query and iterates its records: the single-version
// scan of Query 1 (On one branch, optionally At a historical commit),
// or — with several branches or Heads — each record live in any
// scanned head exactly once. Records may alias engine buffers and must
// be Cloned to be retained. The trailing error accessor is valid once
// iteration finishes.
func (q *Query) Rows() (iter.Seq[*Record], func() error) {
	return q.RowsContext(context.Background())
}

// RowsContext is Rows bounded by a context: the sequence stops within
// one record of ctx being canceled and the error accessor reports
// ctx.Err().
func (q *Query) RowsContext(ctx context.Context) (iter.Seq[*Record], func() error) {
	c, err := q.compile()
	if err != nil {
		return errSeq(err)
	}
	var scanErr error
	seq := func(yield func(*Record) bool) {
		scanErr = c.EmitRows(ctx, func(rec *record.Record) bool { return yield(rec) })
	}
	return seq, func() error { return scanErr }
}

// Annotated runs a multi-branch scan (On with several branches, or
// Heads) and iterates each live record together with the names of the
// branches whose heads contain it — the output shape of the paper's
// HEAD() query. The scan is one engine pass over the union of the
// branches' bitmaps. The yielded name slice is reused across
// iterations; copy it to retain it.
func (q *Query) Annotated() (iter.Seq2[*Record, []string], func() error) {
	return q.AnnotatedContext(context.Background())
}

// AnnotatedContext is Annotated bounded by a context.
func (q *Query) AnnotatedContext(ctx context.Context) (iter.Seq2[*Record, []string], func() error) {
	if q.plan.OrderCol != "" || q.plan.Limit > 0 {
		return errSeq2[*Record, []string](fmt.Errorf("%w: OrderBy/Limit do not apply to Annotated", ErrBadQuery))
	}
	c, err := q.compile()
	if err != nil {
		return errSeq2[*Record, []string](err)
	}
	branches := c.Branches()
	names := make([]string, 0, len(branches))
	var scanErr error
	seq := func(yield func(*Record, []string) bool) {
		scanErr = c.ScanMulti(ctx, func(rec *record.Record, member *Bitmap) bool {
			names = names[:0]
			member.ForEach(func(i int) bool {
				names = append(names, branches[i].Name)
				return true
			})
			return yield(rec, names)
		})
	}
	return seq, func() error { return scanErr }
}

// Diff runs the positive diff of Query 2: the records live at branch
// a's head but not at branch b's, with Where and Select applied to the
// emitted records. Diff provides the two versions itself; combining it
// with On or Heads is an error.
func (q *Query) Diff(a, b string) (iter.Seq[*Record], func() error) {
	return q.DiffContext(context.Background(), a, b)
}

// DiffContext is Diff bounded by a context.
func (q *Query) DiffContext(ctx context.Context, a, b string) (iter.Seq[*Record], func() error) {
	c, err := q.pairCompile(a, b)
	if err != nil {
		return errSeq(err)
	}
	var scanErr error
	seq := func(yield func(*Record) bool) {
		scanErr = c.EmitDiffRows(ctx, func(rec *record.Record) bool { return yield(rec) })
	}
	return seq, func() error { return scanErr }
}

// Join runs the primary-key version join of Query 3 between two branch
// heads: pairs (left record, right record) sharing a primary key,
// where the left record satisfies Where. Select applies to both sides.
// Like Diff, Join provides the two versions itself. Pairs emit in
// ascending primary-key order.
//
// Deprecated: Join is the fixed two-branch configuration of the
// general join node and is retained for compatibility. Compose joins
// with JoinOn and decibel.On, and consume them with Tuples:
//
//	db.Query("t").On("master").
//		JoinOn(db.Query("t").On("branch"), decibel.On("id", "id")).
//		Tuples()
func (q *Query) Join(left, right string) (iter.Seq2[*Record, *Record], func() error) {
	return q.JoinContext(context.Background(), left, right)
}

// JoinContext is Join bounded by a context.
//
// Deprecated: see Join; use JoinOn with TuplesContext.
func (q *Query) JoinContext(ctx context.Context, left, right string) (iter.Seq2[*Record, *Record], func() error) {
	c, err := q.pairCompile(left, right)
	if err != nil {
		return errSeq2[*Record, *Record](err)
	}
	var scanErr error
	seq := func(yield func(*Record, *Record) bool) {
		scanErr = c.Join(ctx, func(p iquery.JoinedPair) bool { return yield(p.Left, p.Right) })
	}
	return seq, func() error { return scanErr }
}

// pairCompile compiles the plan with the two given branches as its
// scan set, rejecting queries that also configured On or Heads.
func (q *Query) pairCompile(a, b string) (*iquery.Compiled, error) {
	if len(q.plan.Branches) > 0 || q.plan.AllHeads {
		return nil, fmt.Errorf("%w: Diff/Join name their versions directly; do not combine with On or Heads", ErrBadQuery)
	}
	plan := q.plan
	plan.Branches = []string{a, b}
	return plan.Compile(q.db.Database)
}

// Count runs the query and returns the number of matching records (a
// multi-branch count counts each record live in any scanned head
// once).
func (q *Query) Count() (int, error) { return q.CountContext(context.Background()) }

// CountContext is Count bounded by a context.
func (q *Query) CountContext(ctx context.Context) (int, error) {
	c, err := q.compile()
	if err != nil {
		return 0, err
	}
	n, err := c.Aggregate(ctx, iquery.AggCount, "")
	return int(n), err
}

// Sum folds the named numeric column over the matching records.
// Integer columns are accumulated exactly as int64 and converted to
// float64 on return.
func (q *Query) Sum(col string) (float64, error) { return q.SumContext(context.Background(), col) }

// SumContext is Sum bounded by a context.
func (q *Query) SumContext(ctx context.Context, col string) (float64, error) {
	return q.agg(ctx, iquery.AggSum, col)
}

// Min returns the smallest value of the named numeric column among the
// matching records; an empty scan fails with ErrNoRows.
func (q *Query) Min(col string) (float64, error) { return q.MinContext(context.Background(), col) }

// MinContext is Min bounded by a context.
func (q *Query) MinContext(ctx context.Context, col string) (float64, error) {
	return q.agg(ctx, iquery.AggMin, col)
}

// Max returns the largest value of the named numeric column among the
// matching records; an empty scan fails with ErrNoRows.
func (q *Query) Max(col string) (float64, error) { return q.MaxContext(context.Background(), col) }

// MaxContext is Max bounded by a context.
func (q *Query) MaxContext(ctx context.Context, col string) (float64, error) {
	return q.agg(ctx, iquery.AggMax, col)
}

// Avg returns the mean of the named numeric column over the matching
// records; an empty scan fails with ErrNoRows.
func (q *Query) Avg(col string) (float64, error) { return q.AvgContext(context.Background(), col) }

// AvgContext is Avg bounded by a context.
func (q *Query) AvgContext(ctx context.Context, col string) (float64, error) {
	return q.agg(ctx, iquery.AggAvg, col)
}

func (q *Query) agg(ctx context.Context, kind iquery.AggKind, col string) (float64, error) {
	c, err := q.compile()
	if err != nil {
		return 0, err
	}
	return c.Aggregate(ctx, kind, col)
}

// Tuples runs the composed join (JoinOn) and iterates its joined
// tuples — one record per relation, in composition order, emitted in
// ascending composite primary-key order. Tuple records are cloned:
// safe to retain across iterations. The trailing error accessor is
// valid once iteration finishes.
func (q *Query) Tuples() (iter.Seq[JoinTuple], func() error) {
	return q.TuplesContext(context.Background())
}

// TuplesContext is Tuples bounded by a context.
func (q *Query) TuplesContext(ctx context.Context) (iter.Seq[JoinTuple], func() error) {
	c, err := q.compile()
	if err != nil {
		return errSeq1[JoinTuple](err)
	}
	var scanErr error
	seq := func(yield func(JoinTuple) bool) {
		scanErr = c.JoinTuples(ctx, func(t iquery.JoinTuple) bool { return yield(t) })
	}
	return seq, func() error { return scanErr }
}

// Groups runs the grouped aggregation (GroupBy) and iterates one
// GroupRow per distinct key in first-arrival order, folding the given
// aggregates per group:
//
//	groups, gErr := db.Query("orders").On("master").
//		GroupBy("sku").
//		Groups(decibel.Count(), decibel.Avg("price"))
//
// With no aggregates Groups degenerates to DISTINCT over the GroupBy
// columns. The trailing error accessor is valid once iteration
// finishes.
func (q *Query) Groups(aggs ...Agg) (iter.Seq[*GroupRow], func() error) {
	return q.GroupsContext(context.Background(), aggs...)
}

// GroupsContext is Groups bounded by a context.
func (q *Query) GroupsContext(ctx context.Context, aggs ...Agg) (iter.Seq[*GroupRow], func() error) {
	c, err := q.compile()
	if err != nil {
		return errSeq1[*GroupRow](err)
	}
	var scanErr error
	seq := func(yield func(*GroupRow) bool) {
		scanErr = c.GroupScan(ctx, aggs, func(g *iquery.GroupRow) bool { return yield(g) })
	}
	return seq, func() error { return scanErr }
}
