package decibel_test

// Point-lookup fast-path tests: Where(Col("id").Eq(k)) on a branch
// head resolves through the primary-key index instead of a segment
// scan on the engines that maintain one (tuple-first, hybrid),
// observable through the decibel.point_lookups counter. Results must
// be indistinguishable from the scan path: residual predicates and
// projections still apply, absent and deleted keys read back empty,
// and historical reads bypass the index (it describes heads only).

import (
	"expvar"
	"strconv"
	"testing"

	"decibel"
)

func pointLookupCount(t *testing.T) int64 {
	t.Helper()
	v := expvar.Get("decibel.point_lookups")
	if v == nil {
		t.Fatal("decibel.point_lookups not published")
	}
	n, err := strconv.ParseInt(v.String(), 10, 64)
	if err != nil {
		t.Fatalf("decibel.point_lookups = %q: %v", v.String(), err)
	}
	return n
}

func TestPointLookupFastPath(t *testing.T) {
	for _, engine := range facadeEngines {
		t.Run(engine, func(t *testing.T) {
			db, err := decibel.Open(t.TempDir(), decibel.WithEngine(engine))
			if err != nil {
				t.Fatal(err)
			}
			defer db.Close()
			schema := decibel.NewSchema().Int64("id").Int64("v").MustBuild()
			if _, err := db.CreateTable("r", schema); err != nil {
				t.Fatal(err)
			}
			if _, _, err := db.Init("init"); err != nil {
				t.Fatal(err)
			}
			if _, err := db.Commit("master", func(tx *decibel.Tx) error {
				for pk := int64(0); pk < 100; pk++ {
					rec := decibel.NewRecord(schema)
					rec.SetPK(pk)
					rec.Set(1, pk*10)
					if err := tx.Insert("r", rec); err != nil {
						return err
					}
				}
				return nil
			}); err != nil {
				t.Fatal(err)
			}

			// All three engines serve the fast path (version-first resolves
			// through its lineage live-set instead of a pk index).
			serves := true
			expect := pointLookupCount(t)
			// check runs one query and asserts both the result and
			// whether the point-lookup counter moved.
			check := func(q *decibel.Query, wantRows int, wantV int64, served bool) {
				t.Helper()
				rows, qErr := q.Rows()
				n := 0
				for rec := range rows {
					n++
					if wantRows == 1 {
						if got := rec.Get(rec.Schema().ColumnIndex("v")); got != wantV {
							t.Fatalf("v = %d, want %d", got, wantV)
						}
					}
				}
				if err := qErr(); err != nil {
					t.Fatal(err)
				}
				if n != wantRows {
					t.Fatalf("%d rows, want %d", n, wantRows)
				}
				if served {
					expect++
				}
				if got := pointLookupCount(t); got != expect {
					t.Fatalf("point_lookups = %d, want %d (served=%v)", got, expect, served)
				}
			}

			// The plain point read.
			check(db.Query("r").On("master").Where(decibel.Col("id").Eq(int64(7))), 1, 70, serves)
			// An equivalent closed range [7,7] extracts the same point bound.
			check(db.Query("r").On("master").Where(decibel.Col("id").Ge(int64(7)).And(decibel.Col("id").Le(int64(7)))), 1, 70, serves)
			// Absent key: a served empty result, not a fallback scan.
			check(db.Query("r").On("master").Where(decibel.Col("id").Eq(int64(1000))), 0, 0, serves)
			// Residual predicate still filters the looked-up record.
			check(db.Query("r").On("master").Where(decibel.Col("id").Eq(int64(7)).And(decibel.Col("v").Eq(int64(0)))), 0, 0, serves)
			// Projection applies on the fast path too.
			check(db.Query("r").On("master").Where(decibel.Col("id").Eq(int64(7))).Select("v"), 1, 70, serves)
			// Historical reads never use the head index.
			check(db.Query("r").On("master").At(0).Where(decibel.Col("id").Eq(int64(7))), 0, 0, false)

			// Deleted key: the index reflects the head.
			if _, err := db.Commit("master", func(tx *decibel.Tx) error { return tx.Delete("r", 7) }); err != nil {
				t.Fatal(err)
			}
			check(db.Query("r").On("master").Where(decibel.Col("id").Eq(int64(7))), 0, 0, serves)
			// A range that is not a point still scans.
			check(db.Query("r").On("master").Where(decibel.Col("id").Ge(int64(7)).And(decibel.Col("id").Le(int64(9)))), 2, 0, false)
		})
	}
}
