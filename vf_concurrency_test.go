package decibel_test

// Lineage-cache invalidation under concurrency: readers resolving
// branch heads and pinned historical commits race writers that commit,
// branch and merge (merges fill override tables after the first
// resolution — the cache's one true invalidation hazard) while
// auto-compaction replaces segment files underneath. Run with -race
// (the CI race matrix picks the test up by name). The pinned AtCommit
// reader is the strong assertion: a committed version is immutable, so
// every re-read must be byte-identical to the snapshot taken before
// the writers started — a stale or torn cache entry shows up as a
// changed row set.

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"decibel"
)

func TestConcurrentVFCacheInvalidation(t *testing.T) {
	db, err := decibel.Open(t.TempDir(), decibel.WithEngine("vf"),
		decibel.WithCompaction("auto"), decibel.WithCompactionInterval(5*time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	schema := decibel.NewSchema().Int64("id").Int64("v").MustBuild()
	if _, err := db.CreateTable("r", schema); err != nil {
		t.Fatal(err)
	}
	if _, _, err := db.Init("init"); err != nil {
		t.Fatal(err)
	}
	mk := func(pk, v int64) *decibel.Record {
		rec := decibel.NewRecord(schema)
		rec.SetPK(pk)
		rec.Set(1, v)
		return rec
	}
	const baseRows = 300
	pinned, err := db.Commit("master", func(tx *decibel.Tx) error {
		recs := make([]*decibel.Record, baseRows)
		for i := range recs {
			recs[i] = mk(int64(i), int64(i))
		}
		return tx.InsertBatch("r", recs)
	})
	if err != nil {
		t.Fatal(err)
	}

	readPinned := func() ([]string, error) {
		rows, scanErr := db.Query("r").On("master").AtCommit(pinned.ID).Rows()
		var out []string
		for rec := range rows {
			out = append(out, rec.String())
		}
		if err := scanErr(); err != nil {
			return nil, err
		}
		sort.Strings(out)
		return out, nil
	}
	want, err := readPinned()
	if err != nil {
		t.Fatal(err)
	}
	if len(want) != baseRows {
		t.Fatalf("pinned snapshot has %d rows, want %d", len(want), baseRows)
	}

	var (
		wg   sync.WaitGroup
		done atomic.Bool
	)
	errs := make(chan error, 16)
	fail := func(err error) {
		select {
		case errs <- err:
		default:
		}
	}

	// Writer: committed updates marching over the base rows.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for round := 0; round < 15; round++ {
			if _, err := db.Commit("master", func(tx *decibel.Tx) error {
				lo := (round * 20) % baseRows
				for pk := lo; pk < lo+20; pk++ {
					if err := tx.Insert("r", mk(int64(pk), int64(pk+1000*(round+1)))); err != nil {
						return err
					}
				}
				return tx.Delete("r", int64((round*7)%baseRows))
			}); err != nil {
				fail(fmt.Errorf("writer round %d: %w", round, err))
				return
			}
		}
	}()

	// Merger: branch off master, change a private slice, merge back.
	// Each merge invalidates the new head's cached resolutions.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 8; i++ {
			name := fmt.Sprintf("m%d", i)
			if _, err := db.Branch("master", name); err != nil {
				fail(fmt.Errorf("branch %s: %w", name, err))
				return
			}
			if _, err := db.Commit(name, func(tx *decibel.Tx) error {
				for pk := 1000 + i*10; pk < 1000+i*10+10; pk++ {
					if err := tx.Insert("r", mk(int64(pk), int64(pk))); err != nil {
						return err
					}
				}
				return nil
			}); err != nil {
				fail(fmt.Errorf("commit %s: %w", name, err))
				return
			}
			if _, _, err := db.Merge("master", name); err != nil {
				fail(fmt.Errorf("merge %s: %w", name, err))
				return
			}
		}
	}()

	// Head readers: master's live set morphs, but every scan must
	// complete cleanly and never shrink below the surviving base rows.
	for r := 0; r < 2; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for !done.Load() {
				rows, scanErr := db.Rows("r", "master")
				n := 0
				for range rows {
					n++
				}
				if err := scanErr(); err != nil {
					fail(fmt.Errorf("head reader: %w", err))
					return
				}
				if n < baseRows-15 {
					fail(fmt.Errorf("head reader: %d rows, want >= %d", n, baseRows-15))
					return
				}
			}
		}()
	}

	// Pinned readers: the committed version must never change.
	for r := 0; r < 2; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for !done.Load() {
				got, err := readPinned()
				if err != nil {
					fail(fmt.Errorf("pinned reader: %w", err))
					return
				}
				if len(got) != len(want) {
					fail(fmt.Errorf("pinned reader: %d rows, want %d", len(got), len(want)))
					return
				}
				for i := range got {
					if got[i] != want[i] {
						fail(fmt.Errorf("pinned reader: row %d changed: %q != %q", i, got[i], want[i]))
						return
					}
				}
			}
		}()
	}

	// Diff readers: master vs the pinned fork point, racing the merges.
	wg.Add(1)
	go func() {
		defer wg.Done()
		if _, err := db.Branch("master", "anchor"); err != nil {
			fail(fmt.Errorf("branch anchor: %w", err))
			return
		}
		for !done.Load() {
			rows, scanErr := db.Query("r").Diff("master", "anchor")
			for range rows {
			}
			if err := scanErr(); err != nil {
				fail(fmt.Errorf("diff reader: %w", err))
				return
			}
		}
	}()

	// Let the writers finish, then release the readers.
	writersDone := make(chan struct{})
	go func() {
		defer close(writersDone)
		wg.Wait()
	}()
	go func() {
		time.Sleep(400 * time.Millisecond)
		done.Store(true)
	}()
	<-writersDone
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	// One compaction pass after the dust settles, then the pinned view
	// must still match (compaction clears the cache tiers; the re-read
	// resolves fresh against the replaced files).
	if _, err := db.Compact(); err != nil {
		t.Fatal(err)
	}
	got, err := readPinned()
	if err != nil {
		t.Fatal(err)
	}
	for i := range got {
		if i >= len(want) || got[i] != want[i] {
			t.Fatalf("post-compaction pinned read diverged at row %d", i)
		}
	}
}
