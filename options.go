package decibel

import "decibel/internal/core"

// DefaultEngine is the storage engine Open uses when WithEngine is not
// given. The hybrid scheme is the paper's headline design (Section 3.4).
const DefaultEngine = "hybrid"

type config struct {
	engine string
	opt    core.Options
}

func newConfig(opts []Option) config {
	cfg := config{engine: DefaultEngine}
	for _, o := range opts {
		o(&cfg)
	}
	return cfg
}

// Option configures Open.
type Option func(*config)

// WithEngine selects the storage engine by registered name or alias:
// "tuple-first"/"tf", "version-first"/"vf" or "hybrid"/"hy".
func WithEngine(name string) Option {
	return func(c *config) { c.engine = name }
}

// WithPageSize sets the heap page size in bytes (0 = default).
func WithPageSize(bytes int) Option {
	return func(c *config) { c.opt.PageSize = bytes }
}

// WithPoolPages sets the buffer pool capacity in pages (0 = default).
func WithPoolPages(pages int) Option {
	return func(c *config) { c.opt.PoolPages = pages }
}

// WithFsync enables fsync on commit. It is off by default, matching
// the paper's load phase.
func WithFsync(on bool) Option {
	return func(c *config) { c.opt.Fsync = on }
}

// WithCommitFanout sets the commit-log composite layer fanout
// (0 = default).
func WithCommitFanout(fanout int) Option {
	return func(c *config) { c.opt.CommitFanout = fanout }
}

// WithTupleOrientedBitmaps switches the tuple-first engine to its
// tuple-oriented bitmap matrix (the Section 3.1 layout ablation).
func WithTupleOrientedBitmaps(on bool) Option {
	return func(c *config) { c.opt.TupleOriented = on }
}

// WithScanWorkers sets the parallel scan pool size. The default (0)
// takes the DECIBEL_SCAN_WORKERS environment variable, else GOMAXPROCS;
// 1 disables parallel scans.
func WithScanWorkers(n int) Option {
	return func(c *config) { c.opt.ScanWorkers = n }
}
