package decibel

import (
	"time"

	"decibel/internal/compact"
	"decibel/internal/core"
)

// DefaultEngine is the storage engine Open uses when WithEngine is not
// given. The hybrid scheme is the paper's headline design (Section 3.4).
const DefaultEngine = "hybrid"

type config struct {
	engine string
	opt    core.Options
}

func newConfig(opts []Option) config {
	cfg := config{engine: DefaultEngine}
	for _, o := range opts {
		o(&cfg)
	}
	return cfg
}

// Option configures Open.
type Option func(*config)

// WithEngine selects the storage engine by registered name or alias:
// "tuple-first"/"tf", "version-first"/"vf" or "hybrid"/"hy".
func WithEngine(name string) Option {
	return func(c *config) { c.engine = name }
}

// WithPageSize sets the heap page size in bytes (0 = default).
func WithPageSize(bytes int) Option {
	return func(c *config) { c.opt.PageSize = bytes }
}

// WithPoolPages sets the buffer pool capacity in pages (0 = default).
func WithPoolPages(pages int) Option {
	return func(c *config) { c.opt.PoolPages = pages }
}

// WithFsync enables fsync on commit. It is off by default, matching
// the paper's load phase.
func WithFsync(on bool) Option {
	return func(c *config) { c.opt.Fsync = on }
}

// WithCommitFanout sets the commit-log composite layer fanout
// (0 = default).
func WithCommitFanout(fanout int) Option {
	return func(c *config) { c.opt.CommitFanout = fanout }
}

// WithTupleOrientedBitmaps switches the tuple-first engine to its
// tuple-oriented bitmap matrix (the Section 3.1 layout ablation).
func WithTupleOrientedBitmaps(on bool) Option {
	return func(c *config) { c.opt.TupleOriented = on }
}

// WithScanWorkers sets the parallel scan pool size. The default (0)
// takes the DECIBEL_SCAN_WORKERS environment variable, else GOMAXPROCS;
// 1 disables parallel scans.
func WithScanWorkers(n int) Option {
	return func(c *config) { c.opt.ScanWorkers = n }
}

// WithLineageCache bounds the version-first engine's lineage/live-set
// cache by resident key count (the sum of cached live-map sizes): n > 0
// sets the budget, n < 0 disables the cache entirely (every resolution
// re-walks the branch lineage — the pre-cache baseline, kept for
// equivalence testing), and 0 (the default) takes the DECIBEL_VF_CACHE
// environment variable ("off", "0" or a negative number disable; a
// positive number is the budget) falling back to the engine default.
// Engines other than version-first ignore it.
func WithLineageCache(n int) Option {
	return func(c *config) { c.opt.VFLineageCache = n }
}

// WithCompaction enables the background compaction subsystem with page
// compression on: "manual" runs a pass only on DB.Compact (or the CLI
// `compact` subcommand / the server's /v1/compact endpoint), "auto"
// additionally runs passes on a background ticker, and "off" (the
// default) disables compaction entirely. Unknown modes read as "off".
func WithCompaction(mode string) Option {
	return func(c *config) {
		switch mode {
		case "manual":
			c.opt.Compaction.Mode = compact.ModeManual
		case "auto":
			c.opt.Compaction.Mode = compact.ModeAuto
		default:
			c.opt.Compaction.Mode = compact.ModeOff
		}
		c.opt.Compaction.Compress = c.opt.Compaction.Mode != compact.ModeOff
	}
}

// WithCompactionInterval sets the auto-mode compaction ticker period
// (0 = default 5s). It has no effect outside auto mode.
func WithCompactionInterval(d time.Duration) Option {
	return func(c *config) { c.opt.Compaction.Interval = d }
}

// WithCompactionFailPoint injects a crash point into every compaction
// pass: "after-temp" aborts after new segment files are written and
// fsynced but before the catalog swap, "before-unlink" after the swap
// but before replaced files are unlinked. The pass fails with an error
// compact.ErrFailPoint recognizes and disk is left exactly as a crash
// there would leave it — the crash-recovery tests reopen and verify.
// An empty string (the default) disables injection.
func WithCompactionFailPoint(point string) Option {
	return func(c *config) { c.opt.Compaction.FailPoint = point }
}

// WithCompactionThresholds tunes what a merge pass considers worth
// merging: runs of at least minRun adjacent frozen segments, each
// under smallRows rows (0 keeps the respective default: 2 and 4096).
func WithCompactionThresholds(minRun int, smallRows int64) Option {
	return func(c *config) {
		c.opt.Compaction.MinRun = minRun
		c.opt.Compaction.SmallRows = smallRows
	}
}
