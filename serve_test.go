package decibel_test

// Serving-layer tests: the HTTP/JSON protocol end to end through the
// decibel/client package (queries of every shape, transactional
// commits, branch/merge, schema alters, error codes), snapshot-pinned
// reads via AtCommit, and graceful shutdown (drain then
// ErrDatabaseClosed, never a hang). The concurrent-serving stress test
// lives in serve_stress_test.go so CI's -race pass picks it up by
// name.

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"net/http/httptest"
	"slices"
	"testing"
	"time"

	"decibel"
	"decibel/client"
)

// newServeClient opens a products dataset on the engine, mounts a
// Server on an httptest listener and returns a client for it.
func newServeClient(t *testing.T, engine string) (*decibel.DB, *client.Client) {
	t.Helper()
	db := newServeDB(t, engine)
	ts := httptest.NewServer(decibel.NewServer(db).Handler())
	t.Cleanup(ts.Close)
	return db, client.New(ts.URL)
}

func newServeDB(t *testing.T, engine string) *decibel.DB {
	t.Helper()
	db, err := decibel.Open(t.TempDir(), decibel.WithEngine(engine))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { db.Close() })
	schema := decibel.NewSchema().Int64("id").Int64("qty").Float64("price").Bytes("sku", 8).MustBuild()
	if _, err := db.CreateTable("products", schema); err != nil {
		t.Fatal(err)
	}
	if _, _, err := db.Init("init"); err != nil {
		t.Fatal(err)
	}
	return db
}

func insertOp(pk, qty int64, price float64, sku string) client.Op {
	return client.Op{Op: "insert", Table: "products", Values: map[string]any{
		"id": pk, "qty": qty, "price": price, "sku": sku,
	}}
}

// rowInt reads an integer column out of a wire row (the client decodes
// numbers as json.Number to keep int64 values exact).
func rowInt(t *testing.T, row client.Row, col string) int64 {
	t.Helper()
	n, ok := row[col].(json.Number)
	if !ok {
		t.Fatalf("row[%q] = %T(%v), want json.Number", col, row[col], row[col])
	}
	v, err := n.Int64()
	if err != nil {
		t.Fatalf("row[%q] = %v: %v", col, n, err)
	}
	return v
}

func TestServeEndToEnd(t *testing.T) {
	for _, engine := range facadeEngines {
		t.Run(engine, func(t *testing.T) {
			_, c := newServeClient(t, engine)
			ctx := context.Background()

			// Ten products committed as one transaction.
			ops := make([]client.Op, 0, 10)
			for pk := int64(1); pk <= 10; pk++ {
				ops = append(ops, insertOp(pk, pk, float64(pk)*1.5, fmt.Sprintf("sku-%03d", pk)))
			}
			cm, err := c.Commit(ctx, client.CommitRequest{Branch: "master", Message: "ten products", Ops: ops})
			if err != nil {
				t.Fatal(err)
			}
			if cm.Commit == 0 {
				t.Fatal("commit reported ID 0")
			}

			// Full single-branch read: ten rows, pinned to a commit.
			head, err := c.Query(ctx, client.QueryRequest{Table: "products", Branches: []string{"master"}})
			if err != nil {
				t.Fatal(err)
			}
			if head.Count != 10 || len(head.Rows) != 10 {
				t.Fatalf("head read: count=%d rows=%d, want 10", head.Count, len(head.Rows))
			}
			if head.Commit != cm.Commit || head.Branch != "master" {
				t.Fatalf("head read pinned to commit %d on %q, want %d on master", head.Commit, head.Branch, cm.Commit)
			}

			// Predicate + projection + order + limit.
			resp, err := c.Query(ctx, client.QueryRequest{
				Table:    "products",
				Branches: []string{"master"},
				Where:    &client.Expr{Col: "price", Op: "le", Val: 9.0},
				Select:   []string{"sku", "price"},
				OrderBy:  "price", Desc: true, Limit: 3,
			})
			if err != nil {
				t.Fatal(err)
			}
			if len(resp.Rows) != 3 {
				t.Fatalf("ordered read: %d rows, want 3", len(resp.Rows))
			}
			if sku := resp.Rows[0]["sku"]; sku != "sku-006" { // price 9.0 is pk 6
				t.Fatalf("top row sku = %v, want sku-006", sku)
			}
			if _, ok := resp.Rows[0]["qty"]; ok {
				t.Fatal("projection leaked the qty column")
			}

			// Aggregates.
			if resp, err = c.Query(ctx, client.QueryRequest{Table: "products", Branches: []string{"master"}, Agg: "count"}); err != nil {
				t.Fatal(err)
			} else if resp.Count != 10 {
				t.Fatalf("count = %d, want 10", resp.Count)
			}
			if resp, err = c.Query(ctx, client.QueryRequest{Table: "products", Branches: []string{"master"}, Agg: "sum", AggCol: "qty"}); err != nil {
				t.Fatal(err)
			} else if resp.Agg != 55 {
				t.Fatalf("sum(qty) = %v, want 55", resp.Agg)
			}

			// Branch, diverge, diff, multi-branch annotated read.
			if _, err := c.Branch(ctx, "master", "dev"); err != nil {
				t.Fatal(err)
			}
			if _, err := c.Commit(ctx, client.CommitRequest{Branch: "dev", Ops: []client.Op{insertOp(11, 11, 16.5, "sku-011")}}); err != nil {
				t.Fatal(err)
			}
			if resp, err = c.Query(ctx, client.QueryRequest{Table: "products", Diff: []string{"dev", "master"}}); err != nil {
				t.Fatal(err)
			} else if len(resp.Rows) != 1 || rowInt(t, resp.Rows[0], "id") != 11 {
				t.Fatalf("diff(dev, master) = %v, want the one dev record", resp.Rows)
			}
			if resp, err = c.Query(ctx, client.QueryRequest{Table: "products", Branches: []string{"master", "dev"}}); err != nil {
				t.Fatal(err)
			} else {
				if len(resp.Rows) != 11 {
					t.Fatalf("multi-branch read: %d rows, want 11", len(resp.Rows))
				}
				for _, row := range resp.Rows {
					names, ok := row["_branches"].([]any)
					if !ok {
						t.Fatalf("multi-branch row lacks _branches: %v", row)
					}
					want := 2
					if rowInt(t, row, "id") == 11 {
						want = 1
					}
					if len(names) != want {
						t.Fatalf("row %v live on %v branches, want %d", row, names, want)
					}
				}
			}
			if resp, err = c.Query(ctx, client.QueryRequest{Table: "products", Heads: true, Agg: "count"}); err != nil {
				t.Fatal(err)
			} else if resp.Count != 11 {
				t.Fatalf("heads count = %d, want 11", resp.Count)
			}

			// Time travel: the n-th commit on the branch, and the listing
			// that tells us what n is.
			branches, err := c.Branches(ctx)
			if err != nil {
				t.Fatal(err)
			}
			i := slices.IndexFunc(branches, func(b client.BranchResponse) bool { return b.Name == "master" })
			if i < 0 {
				t.Fatalf("branch listing %v lacks master", branches)
			}
			at := branches[i].Commit - 1 // head's zero-based seq
			if resp, err = c.Query(ctx, client.QueryRequest{Table: "products", Branches: []string{"master"}, At: &at}); err != nil {
				t.Fatal(err)
			} else if len(resp.Rows) != 10 {
				t.Fatalf("At(%d) read: %d rows, want 10", at, len(resp.Rows))
			}

			// Snapshot pinning: a head captured before later commits
			// re-reads identically via AtCommit.
			pinned := head.Commit
			if _, err := c.Commit(ctx, client.CommitRequest{Branch: "master", Ops: []client.Op{insertOp(20, 20, 30, "sku-020")}}); err != nil {
				t.Fatal(err)
			}
			if resp, err = c.Query(ctx, client.QueryRequest{Table: "products", Branches: []string{"master"}, AtCommit: pinned}); err != nil {
				t.Fatal(err)
			} else if len(resp.Rows) != 10 || resp.Commit != pinned {
				t.Fatalf("AtCommit(%d) read: %d rows at commit %d, want 10 at %d", pinned, len(resp.Rows), resp.Commit, pinned)
			}
			if resp, err = c.Query(ctx, client.QueryRequest{Table: "products", Branches: []string{"master"}}); err != nil {
				t.Fatal(err)
			} else if len(resp.Rows) != 11 {
				t.Fatalf("post-commit head read: %d rows, want 11", len(resp.Rows))
			}

			// Delete op round trip.
			if _, err := c.Commit(ctx, client.CommitRequest{Branch: "master", Ops: []client.Op{{Op: "delete", Table: "products", PK: 20}}}); err != nil {
				t.Fatal(err)
			}
			if resp, err = c.Query(ctx, client.QueryRequest{Table: "products", Branches: []string{"master"},
				Where: &client.Expr{Col: "id", Op: "eq", Val: 20}}); err != nil {
				t.Fatal(err)
			} else if len(resp.Rows) != 0 {
				t.Fatalf("deleted key still read back: %v", resp.Rows)
			}

			// Merge dev back into master.
			mr, err := c.Merge(ctx, client.MergeRequest{Into: "master", From: "dev"})
			if err != nil {
				t.Fatal(err)
			}
			if mr.Commit == 0 || mr.Conflicts != 0 {
				t.Fatalf("merge = %+v, want a conflict-free commit", mr)
			}
			if resp, err = c.Query(ctx, client.QueryRequest{Table: "products", Branches: []string{"master"},
				Where: &client.Expr{Col: "id", Op: "eq", Val: 11}}); err != nil {
				t.Fatal(err)
			} else if len(resp.Rows) != 1 {
				t.Fatalf("merged record missing: %v", resp.Rows)
			}

			// Schema alter: add a column with a default, insert with it,
			// read the default back off a pre-existing row.
			if _, err := c.Alter(ctx, client.AlterRequest{Branch: "master", Table: "products",
				Add: &client.ColumnDef{Name: "tag", Type: "bytes", Cap: 4, Default: "new"}}); err != nil {
				t.Fatal(err)
			}
			if _, err := c.Commit(ctx, client.CommitRequest{Branch: "master", Ops: []client.Op{
				{Op: "insert", Table: "products", Values: map[string]any{"id": 21, "qty": 21, "price": 1.0, "sku": "sku-021", "tag": "abc"}},
			}}); err != nil {
				t.Fatal(err)
			}
			for pk, want := range map[int64]string{21: "abc", 1: "new"} {
				resp, err = c.Query(ctx, client.QueryRequest{Table: "products", Branches: []string{"master"},
					Where: &client.Expr{Col: "id", Op: "eq", Val: pk}, Select: []string{"tag"}})
				if err != nil {
					t.Fatal(err)
				}
				if len(resp.Rows) != 1 || resp.Rows[0]["tag"] != want {
					t.Fatalf("tag of pk %d = %v, want %q", pk, resp.Rows, want)
				}
			}

			// Listings and liveness.
			tables, err := c.Tables(ctx)
			if err != nil {
				t.Fatal(err)
			}
			if len(tables) != 1 || tables[0].Name != "products" || len(tables[0].Columns) != 5 {
				t.Fatalf("tables = %+v, want products with 5 columns", tables)
			}
			if !c.Healthy(ctx) {
				t.Fatal("healthz reported unhealthy on a live server")
			}
			vars, err := c.Vars(ctx)
			if err != nil {
				t.Fatal(err)
			}
			if n, ok := vars["decibel.server.requests"].(json.Number); !ok || n.String() == "0" {
				t.Fatalf("decibel.server.requests = %v, want a moved counter", vars["decibel.server.requests"])
			}
		})
	}
}

// TestServeErrorCodes checks the protocol's stable error mapping: each
// failure class arrives as a client.Error with the documented HTTP
// status and code.
func TestServeErrorCodes(t *testing.T) {
	_, c := newServeClient(t, "hybrid")
	ctx := context.Background()

	cases := []struct {
		name   string
		do     func() error
		status int
		code   string
	}{
		{"no_such_table", func() error {
			_, err := c.Query(ctx, client.QueryRequest{Table: "nope", Branches: []string{"master"}})
			return err
		}, 404, "no_such_table"},
		{"no_such_branch", func() error {
			_, err := c.Query(ctx, client.QueryRequest{Table: "products", Branches: []string{"nope"}})
			return err
		}, 404, "no_such_branch"},
		{"no_such_column", func() error {
			_, err := c.Query(ctx, client.QueryRequest{Table: "products", Branches: []string{"master"},
				Where: &client.Expr{Col: "nope", Op: "eq", Val: 1}})
			return err
		}, 400, "no_such_column"},
		{"type_mismatch", func() error {
			_, err := c.Query(ctx, client.QueryRequest{Table: "products", Branches: []string{"master"},
				Where: &client.Expr{Col: "price", Op: "prefix", Val: "x"}})
			return err
		}, 400, "type_mismatch"},
		{"bad_query_diff_arity", func() error {
			_, err := c.Query(ctx, client.QueryRequest{Table: "products", Diff: []string{"master"}})
			return err
		}, 400, "bad_request"},
		{"bad_predicate_node", func() error {
			_, err := c.Query(ctx, client.QueryRequest{Table: "products", Branches: []string{"master"},
				Where: &client.Expr{Col: "qty", Op: "eq", Val: 1, And: []client.Expr{{Col: "qty", Op: "eq", Val: 1}}}})
			return err
		}, 400, "bad_request"},
		{"unknown_agg", func() error {
			_, err := c.Query(ctx, client.QueryRequest{Table: "products", Branches: []string{"master"}, Agg: "median"})
			return err
		}, 400, "bad_request"},
		{"unknown_op", func() error {
			_, err := c.Commit(ctx, client.CommitRequest{Branch: "master", Ops: []client.Op{{Op: "upsertish", Table: "products"}}})
			return err
		}, 400, "bad_request"},
		{"unknown_insert_column", func() error {
			_, err := c.Commit(ctx, client.CommitRequest{Branch: "master", Ops: []client.Op{
				{Op: "insert", Table: "products", Values: map[string]any{"id": 1, "nope": 2}}}})
			return err
		}, 400, "bad_request"},
		{"missing_pk", func() error {
			_, err := c.Commit(ctx, client.CommitRequest{Branch: "master", Ops: []client.Op{
				{Op: "insert", Table: "products", Values: map[string]any{"qty": 2}}}})
			return err
		}, 400, "bad_request"},
		{"alter_needs_one_change", func() error {
			_, err := c.Alter(ctx, client.AlterRequest{Branch: "master", Table: "products"})
			return err
		}, 400, "bad_request"},
		{"no_rows", func() error {
			_, err := c.Query(ctx, client.QueryRequest{Table: "products", Branches: []string{"master"},
				Where: &client.Expr{Col: "qty", Op: "lt", Val: 0}, Agg: "min", AggCol: "qty"})
			return err
		}, 404, "no_rows"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := tc.do()
			var ce *client.Error
			if !errors.As(err, &ce) {
				t.Fatalf("err = %v (%T), want *client.Error", err, err)
			}
			if ce.Status != tc.status || ce.Code != tc.code {
				t.Fatalf("err = (%d, %q), want (%d, %q): %v", ce.Status, ce.Code, tc.status, tc.code, ce)
			}
		})
	}
}

// TestQueryAtCommit covers the new builder verb directly on the
// facade: pin a head, commit past it, re-read the pinned version.
func TestQueryAtCommit(t *testing.T) {
	for _, engine := range facadeEngines {
		t.Run(engine, func(t *testing.T) {
			db := newServeDB(t, engine)
			rec := func(pk int64) *decibel.Record {
				r := decibel.NewRecord(db.Tables()[0].Schema())
				r.SetPK(pk)
				return r
			}
			pinned, err := db.Commit("master", func(tx *decibel.Tx) error { return tx.Insert("products", rec(1)) })
			if err != nil {
				t.Fatal(err)
			}
			if _, err := db.Commit("master", func(tx *decibel.Tx) error { return tx.Insert("products", rec(2)) }); err != nil {
				t.Fatal(err)
			}
			n, err := db.Query("products").On("master").AtCommit(pinned.ID).Count()
			if err != nil {
				t.Fatal(err)
			}
			if n != 1 {
				t.Fatalf("pinned count = %d, want 1", n)
			}
			if n, err = db.Query("products").On("master").Count(); err != nil || n != 2 {
				t.Fatalf("head count = %d (%v), want 2", n, err)
			}
			// Structural misuse fails with ErrBadQuery.
			if _, err := db.Query("products").On("master").At(0).AtCommit(pinned.ID).Count(); !errors.Is(err, decibel.ErrBadQuery) {
				t.Fatalf("At+AtCommit err = %v, want ErrBadQuery", err)
			}
			if _, err := db.Query("products").Heads().AtCommit(pinned.ID).Count(); !errors.Is(err, decibel.ErrBadQuery) {
				t.Fatalf("Heads+AtCommit err = %v, want ErrBadQuery", err)
			}
		})
	}
}

// TestCloseContextDrainsSessions: Close with an in-flight transaction
// waits for it, while new work started during the drain is refused
// with ErrDatabaseClosed.
func TestCloseContextDrainsSessions(t *testing.T) {
	db := newServeDB(t, "hybrid")
	// The drain poll below must not contend for the blocked writer's
	// branch lock, so it commits on its own branch.
	if _, err := db.Branch("master", "side"); err != nil {
		t.Fatal(err)
	}
	started := make(chan struct{})
	release := make(chan struct{})
	commitDone := make(chan error, 1)
	go func() {
		_, err := db.Commit("master", func(tx *decibel.Tx) error {
			close(started)
			<-release
			r := decibel.NewRecord(db.Tables()[0].Schema())
			r.SetPK(1)
			return tx.Insert("products", r)
		})
		commitDone <- err
	}()
	<-started

	closeDone := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		closeDone <- db.CloseContext(ctx)
	}()

	// Wait for the drain to begin: once it has, fresh transactions are
	// refused rather than queued or hung.
	deadline := time.Now().Add(5 * time.Second)
	for {
		_, err := db.Commit("side", func(tx *decibel.Tx) error { return nil })
		if errors.Is(err, decibel.ErrDatabaseClosed) {
			break
		}
		if err != nil {
			t.Fatalf("commit during drain: %v", err)
		}
		if time.Now().After(deadline) {
			t.Fatal("drain never refused new sessions")
		}
	}
	select {
	case err := <-closeDone:
		t.Fatalf("CloseContext returned (%v) with a session still active", err)
	default:
	}

	close(release)
	if err := <-commitDone; err != nil {
		t.Fatalf("in-flight commit failed during drain: %v", err)
	}
	if err := <-closeDone; err != nil {
		t.Fatalf("CloseContext = %v", err)
	}
}

// TestServeGracefulShutdown runs the managed lifecycle on a real
// listener: cancel the serve context, Serve drains and closes the
// database, late arrivals are refused instead of hanging.
func TestServeGracefulShutdown(t *testing.T) {
	db := newServeDB(t, "hybrid")
	srv := decibel.NewServer(db)
	srv.SetShutdownTimeout(5 * time.Second)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	done := make(chan error, 1)
	go func() { done <- srv.Serve(ctx, ln) }()

	c := client.New("http://" + ln.Addr().String())
	deadline := time.Now().Add(5 * time.Second)
	for !c.Healthy(context.Background()) {
		if time.Now().After(deadline) {
			t.Fatal("server never became healthy")
		}
		time.Sleep(10 * time.Millisecond)
	}
	if _, err := c.Commit(context.Background(), client.CommitRequest{Branch: "master", Ops: []client.Op{insertOp(1, 1, 1, "a")}}); err != nil {
		t.Fatal(err)
	}

	cancel()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("Serve = %v, want clean shutdown", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("Serve did not return after cancellation")
	}
	if c.Healthy(context.Background()) {
		t.Fatal("server still serving after shutdown")
	}
	if _, err := db.Commit("master", func(tx *decibel.Tx) error { return nil }); !errors.Is(err, decibel.ErrDatabaseClosed) {
		t.Fatalf("post-shutdown commit err = %v, want ErrDatabaseClosed", err)
	}
}
