// Package decibel_test is the benchmark harness that regenerates every
// table and figure of the paper's evaluation (Section 5) at laptop
// scale. Each BenchmarkFigureN / BenchmarkTableN corresponds to one
// figure or table; sub-benchmark names carry the engine, strategy and
// parameters, and custom metrics report the paper's units (sizes in
// bytes, commit/checkout latencies, merge MB/s). EXPERIMENTS.md records
// the paper-vs-measured comparison for each.
//
// Scale note: the paper loads 100 GB; we load megabytes with the same
// record layout (fixed-width integer columns), update mix (20%), commit
// cadence ratios and branching structures, and compare shapes rather
// than absolute numbers.
package decibel_test

import (
	"fmt"
	"math/rand"
	"os"
	"runtime"
	"sync"
	"testing"
	"time"

	"decibel"
	"decibel/bench"
	"decibel/gitstore"
	"decibel/query"
)

// engines under comparison, in the paper's order (short registry
// aliases).
var engines = []string{"vf", "tf", "hy"}

// benchOpts is the storage tuning every benchmark engine runs with.
func benchOpts() bench.Options { return bench.Options{PageSize: 64 << 10, PoolPages: 256} }

// benchConfig mirrors the paper's knobs at reduced scale: 256-byte
// records of 4-byte columns, 20% updates, commits every 1/5 of a
// branch's operations.
func benchConfig(s bench.Strategy, branches, perBranch int) bench.Config {
	cfg := bench.DefaultConfig(s)
	cfg.Branches = branches
	cfg.RecordsPerBranch = perBranch
	cfg.RecordBytes = 256
	cfg.CommitEvery = perBranch / 5
	if cfg.CommitEvery < 1 {
		cfg.CommitEvery = 1
	}
	cfg.ScienceLifetime = perBranch * 2
	cfg.CurationDevOps = perBranch
	cfg.CurationFeatOps = perBranch / 4
	return cfg
}

// Dataset cache: figures reuse loaded datasets across sub-benchmarks.
var (
	dsMu    sync.Mutex
	dsCache = map[string]*bench.Dataset{}
	dsDirs  []string
)

func getDataset(b *testing.B, engine string, cfg bench.Config) *bench.Dataset {
	b.Helper()
	key := fmt.Sprintf("%s/%s/b%d/r%d/cl%v/3w%v", engine, cfg.Strategy, cfg.Branches, cfg.RecordsPerBranch, cfg.Clustered, cfg.ThreeWayMerges)
	dsMu.Lock()
	defer dsMu.Unlock()
	if d, ok := dsCache[key]; ok {
		return d
	}
	dir, err := os.MkdirTemp("", "decibel-bench-*")
	if err != nil {
		b.Fatal(err)
	}
	dsDirs = append(dsDirs, dir)
	d, err := bench.Load(dir, engine, benchOpts(), cfg)
	if err != nil {
		b.Fatal(err)
	}
	dsCache[key] = d
	return d
}

func TestMain(m *testing.M) {
	baseline := runtime.NumGoroutine()
	code := m.Run()
	dsMu.Lock()
	for _, d := range dsCache {
		d.Close()
	}
	for _, dir := range dsDirs {
		os.RemoveAll(dir)
	}
	dsMu.Unlock()
	// Goroutine-leak gate: the parallel scan pool spawns per-scan
	// goroutines only, so once every test's databases are closed the
	// count must settle back to the pre-run baseline (small tolerance
	// for lazily started runtime/testing goroutines).
	if code == 0 {
		if got := settledGoroutines(baseline+4, 10*time.Second); got > baseline+4 {
			fmt.Fprintf(os.Stderr, "goroutine leak: %d at start, %d after all tests settled\n", baseline, got)
			code = 1
		}
	}
	os.Exit(code)
}

// scanBranch runs Query 1 and returns the records scanned.
func scanBranch(b *testing.B, d *bench.Dataset, br decibel.BranchID) int {
	b.Helper()
	n := 0
	if err := query.SingleVersionScan(d.Table, br, query.True, func(*decibel.Record) bool {
		n++
		return true
	}); err != nil {
		b.Fatal(err)
	}
	return n
}

// BenchmarkFigure6a — Figure 6a: Query 1 (single-branch scan) on the
// flat strategy as the branch count scales, total dataset size held
// fixed. Expected shape: vf/hy latency falls with more (smaller)
// branches while tf stays flat-to-worse because it always scans the
// whole shared heap.
func BenchmarkFigure6a(b *testing.B) {
	const totalOps = 12000
	for _, branches := range []int{10, 50, 100} {
		cfg := benchConfig(bench.Flat, branches, totalOps/branches)
		for _, e := range engines {
			b.Run(fmt.Sprintf("%s/branches=%d", e, branches), func(b *testing.B) {
				d := getDataset(b, e, cfg)
				r := rand.New(rand.NewSource(7))
				child := d.RandomChild(r)
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					scanBranch(b, d, child.ID)
				}
			})
		}
	}
}

// BenchmarkFigure6b — Figure 6b: Query 4 (scan all branch heads) as
// branches scale, deep and flat. Expected shape: vf degrades sharply
// with branch count (it must resolve every lineage); tf/hy stay near
// one sequential pass thanks to their bitmap indexes.
func BenchmarkFigure6b(b *testing.B) {
	const totalOps = 12000
	for _, strategy := range []bench.Strategy{bench.Deep, bench.Flat} {
		for _, branches := range []int{10, 50, 100} {
			cfg := benchConfig(strategy, branches, totalOps/branches)
			for _, e := range engines {
				b.Run(fmt.Sprintf("%s/%s/branches=%d", e, strategy, branches), func(b *testing.B) {
					d := getDataset(b, e, cfg)
					b.ResetTimer()
					for i := 0; i < b.N; i++ {
						n := 0
						if err := query.HeadScan(d.DB.Graph(), d.Table, query.True, func(query.HeadRecord) bool {
							n++
							return true
						}); err != nil {
							b.Fatal(err)
						}
					}
				})
			}
		}
	}
}

// figure7Target resolves the paper's Figure 7 scan targets.
func figure7Target(d *bench.Dataset, target string, r *rand.Rand) decibel.BranchID {
	switch target {
	case "tail":
		return d.TailBranch().ID
	case "child":
		return d.RandomChild(r).ID
	case "young":
		return d.YoungestActive().ID
	case "old":
		return d.OldestActive().ID
	case "mainline":
		return d.Mainline.ID
	case "dev":
		return d.RandomDev(r).ID
	case "feature":
		return d.RandomFeature(r).ID
	default:
		panic("unknown target " + target)
	}
}

// BenchmarkFigure7 — Figure 7: Query 1 across every strategy and scan
// target, including the tuple-first clustered-loading ablation
// ("tfc"). Expected shape: tf pays a full heap scan everywhere;
// clustering rescues tf on flat; vf/hy win on flat and science; hybrid
// beats vf under curation's merge-heavy lineages.
func BenchmarkFigure7(b *testing.B) {
	cases := []struct {
		strategy bench.Strategy
		target   string
	}{
		{bench.Deep, "tail"},
		{bench.Flat, "child"},
		{bench.Science, "young"},
		{bench.Science, "old"},
		{bench.Curation, "feature"},
		{bench.Curation, "dev"},
		{bench.Curation, "mainline"},
	}
	const branches, perBranch = 20, 600
	for _, c := range cases {
		cfg := benchConfig(c.strategy, branches, perBranch)
		names := []string{"vf", "tf", "hy"}
		for _, name := range names {
			b.Run(fmt.Sprintf("%s/%s-%s", name, c.strategy, c.target), func(b *testing.B) {
				d := getDataset(b, name, cfg)
				r := rand.New(rand.NewSource(7))
				br := figure7Target(d, c.target, r)
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					scanBranch(b, d, br)
				}
			})
		}
		if c.strategy == bench.Flat {
			// Ablation: tuple-first over a clustered load.
			ccfg := cfg
			ccfg.Clustered = true
			b.Run(fmt.Sprintf("tfc/%s-%s", c.strategy, c.target), func(b *testing.B) {
				d := getDataset(b, "tf", ccfg)
				r := rand.New(rand.NewSource(7))
				br := figure7Target(d, c.target, r)
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					scanBranch(b, d, br)
				}
			})
		}
	}
}

// figure8Pair resolves the paper's Figure 8/9 branch pairs.
func figure8Pair(d *bench.Dataset, r *rand.Rand) (decibel.BranchID, decibel.BranchID) {
	switch d.Cfg.Strategy {
	case bench.Deep:
		tail := d.TailBranch()
		parent := d.Branches[len(d.Branches)-2]
		return tail.ID, parent.ID
	case bench.Flat:
		return d.RandomChild(r).ID, d.Mainline.ID
	case bench.Science:
		return d.OldestActive().ID, d.Mainline.ID
	default: // Curation
		return d.Mainline.ID, d.RandomDev(r).ID
	}
}

// BenchmarkFigure8 — Figure 8: Query 2 (positive diff) per strategy.
// Expected shape: vf uniformly worst (multiple passes to resolve both
// live sets); tf and hy close, with hy ahead as interleaving grows.
func BenchmarkFigure8(b *testing.B) {
	const branches, perBranch = 20, 600
	for _, strategy := range []bench.Strategy{bench.Deep, bench.Flat, bench.Science, bench.Curation} {
		cfg := benchConfig(strategy, branches, perBranch)
		for _, e := range engines {
			b.Run(fmt.Sprintf("%s/%s", e, strategy), func(b *testing.B) {
				d := getDataset(b, e, cfg)
				r := rand.New(rand.NewSource(7))
				x, y := figure8Pair(d, r)
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					n := 0
					if err := query.PositiveDiff(d.Table, x, y, func(*decibel.Record) bool {
						n++
						return true
					}); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// BenchmarkFigure9 — Figure 9: Query 3 (primary-key join of two
// versions under a predicate). Expected shape: like Figure 8, but vf
// closes the gap in merge-free strategies (its live sets feed a hash
// join directly) and falls behind again under curation.
func BenchmarkFigure9(b *testing.B) {
	const branches, perBranch = 20, 600
	for _, strategy := range []bench.Strategy{bench.Deep, bench.Flat, bench.Science, bench.Curation} {
		cfg := benchConfig(strategy, branches, perBranch)
		for _, e := range engines {
			b.Run(fmt.Sprintf("%s/%s", e, strategy), func(b *testing.B) {
				d := getDataset(b, e, cfg)
				r := rand.New(rand.NewSource(7))
				x, y := figure8Pair(d, r)
				pred := query.ColumnMod(1, 2, 0) // ~50% selectivity
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					n := 0
					if err := query.VersionJoin(d.Table, x, y, pred, func(query.JoinedPair) bool {
						n++
						return true
					}); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// BenchmarkFigure10 — Figure 10: Query 4 (all-heads scan with a
// non-selective predicate) per strategy. Expected shape: tf and hy
// comparable (one pass, bitmap membership); vf worst, degrading most
// under curation's merges.
func BenchmarkFigure10(b *testing.B) {
	const branches, perBranch = 20, 600
	for _, strategy := range []bench.Strategy{bench.Deep, bench.Flat, bench.Science, bench.Curation} {
		cfg := benchConfig(strategy, branches, perBranch)
		for _, e := range engines {
			b.Run(fmt.Sprintf("%s/%s", e, strategy), func(b *testing.B) {
				d := getDataset(b, e, cfg)
				pred := query.ColumnMod(1, 10, 0) // non-selective: drops ~10%... keeps 10%? rem 0 keeps ~10%
				pred = query.Not(pred)            // keep ~90%: "very non-selective"
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					n := 0
					if err := query.HeadScan(d.DB.Graph(), d.Table, pred, func(query.HeadRecord) bool {
						n++
						return true
					}); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// BenchmarkFigure11 — Figure 11 and Table 4: Query 1 before and after a
// table-wise update, 10 branches. Expected shape: vf scan degrades in
// proportion to the copied data; the bitmap engines do not, and tf
// *improves* after the update because the rewrite clusters the
// branch's records. Table 4's storage growth is reported as
// pre/post-size metrics.
func BenchmarkFigure11(b *testing.B) {
	const branches, perBranch = 10, 600
	for _, strategy := range []bench.Strategy{bench.Deep, bench.Flat, bench.Science, bench.Curation} {
		for _, e := range engines {
			b.Run(fmt.Sprintf("%s/%s", e, strategy), func(b *testing.B) {
				// Table-wise updates mutate the dataset: build privately.
				cfg := benchConfig(strategy, branches, perBranch)
				cfg.Seed = 99
				dir := b.TempDir()
				d, err := bench.Load(dir, e, benchOpts(), cfg)
				if err != nil {
					b.Fatal(err)
				}
				defer d.Close()
				r := rand.New(rand.NewSource(7))
				var target decibel.BranchID
				switch strategy {
				case bench.Deep:
					target = d.TailBranch().ID
				case bench.Flat:
					target = d.RandomChild(r).ID
				case bench.Science:
					target = d.YoungestActive().ID
				default:
					target = d.Mainline.ID
				}
				st0, _ := d.DB.Stats()
				t0 := time.Now()
				for i := 0; i < 3; i++ {
					scanBranch(b, d, target)
				}
				pre := time.Since(t0) / 3
				if err := d.TableWiseUpdate(target); err != nil {
					b.Fatal(err)
				}
				st1, _ := d.DB.Stats()
				t1 := time.Now()
				for i := 0; i < 3; i++ {
					scanBranch(b, d, target)
				}
				post := time.Since(t1) / 3
				b.ReportMetric(float64(pre.Microseconds()), "pre-scan-us")
				b.ReportMetric(float64(post.Microseconds()), "post-scan-us")
				b.ReportMetric(float64(st0.DataBytes), "pre-bytes")
				b.ReportMetric(float64(st1.DataBytes), "post-bytes")
				// Keep the harness happy with at least one timed iteration.
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					scanBranch(b, d, target)
				}
			})
		}
	}
}

// BenchmarkTable2 — Table 2: commit history size, commit latency and
// checkout latency for the bitmap engines (tf vs hy) per strategy.
// Expected shape: hy's per-(branch, segment) histories are smaller and
// its checkouts faster than tf's single wide bitmap per branch;
// storage overhead stays well under 1% of data size for both.
func BenchmarkTable2(b *testing.B) {
	const branches, perBranch = 20, 600
	for _, strategy := range []bench.Strategy{bench.Deep, bench.Flat, bench.Science, bench.Curation} {
		cfg := benchConfig(strategy, branches, perBranch)
		for _, name := range []string{"tf", "hy"} {
			b.Run(fmt.Sprintf("%s/%s/commit", name, strategy), func(b *testing.B) {
				d := getDataset(b, name, cfg)
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if _, err := d.DB.Commit(d.Mainline.ID, "bench commit"); err != nil {
						b.Fatal(err)
					}
				}
				b.StopTimer()
				st, _ := d.DB.Stats()
				b.ReportMetric(float64(st.CommitBytes), "history-bytes")
				b.ReportMetric(float64(st.DataBytes), "data-bytes")
			})
			b.Run(fmt.Sprintf("%s/%s/checkout", name, strategy), func(b *testing.B) {
				d := getDataset(b, name, cfg)
				r := rand.New(rand.NewSource(3))
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					c := d.Commits[r.Intn(len(d.Commits))]
					n := 0
					if err := d.Table.ScanCommit(c, func(*decibel.Record) bool { n++; return true }); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// BenchmarkTable3 — Table 3: merge throughput (MB/s over the diffed
// bytes) for two-way and three-way merges on the curation strategy.
// Expected shape: hy fastest, tf close, vf slowest — and vf hit
// hardest by three-way merges, which need the LCA resolved.
func BenchmarkTable3(b *testing.B) {
	const branches, perBranch = 12, 500
	for _, threeWay := range []bool{false, true} {
		kind := "two-way"
		if threeWay {
			kind = "three-way"
		}
		for _, e := range engines {
			b.Run(fmt.Sprintf("%s/%s", e, kind), func(b *testing.B) {
				var mb, secs float64
				for i := 0; i < b.N; i++ {
					cfg := benchConfig(bench.Curation, branches, perBranch)
					cfg.ThreeWayMerges = threeWay
					cfg.Seed = int64(100 + i)
					dir := b.TempDir()
					d, err := bench.Load(dir, e, benchOpts(), cfg)
					if err != nil {
						b.Fatal(err)
					}
					for _, m := range d.Merges {
						mb += float64(m.Stats.DiffBytes) / (1 << 20)
						secs += m.Elapsed.Seconds()
					}
					d.Close()
				}
				if secs > 0 {
					b.ReportMetric(mb/secs, "merge-MB/s")
				}
			})
		}
	}
}

// BenchmarkTable5 — Table 5: build (load) time per strategy and engine.
// Expected shape: vf loads fastest (append-only, no index maintenance)
// except under curation where its merge machinery dominates; hy loads
// faster than tf (smaller indexes).
func BenchmarkTable5(b *testing.B) {
	const branches, perBranch = 10, 500
	for _, strategy := range []bench.Strategy{bench.Deep, bench.Flat, bench.Science, bench.Curation} {
		for _, e := range engines {
			b.Run(fmt.Sprintf("%s/%s", e, strategy), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					cfg := benchConfig(strategy, branches, perBranch)
					cfg.Seed = int64(i + 1)
					dir := b.TempDir()
					d, err := bench.Load(dir, e, benchOpts(), cfg)
					if err != nil {
						b.Fatal(err)
					}
					st, _ := d.DB.Stats()
					b.ReportMetric(float64(st.DataBytes)/(1<<20), "data-MB")
					d.Close()
					os.RemoveAll(dir)
				}
			})
		}
	}
}

// gitDeepLoad drives the git-backed table through the deep strategy:
// insertFrac=1.0 reproduces Table 6 (100% inserts), 0.5 reproduces
// Table 7 (50% updates). Returns average commit and checkout times.
func gitDeepLoad(b *testing.B, layout gitstore.Layout, format gitstore.Format, insertFrac float64, branches, opsPerBranch, commitEvery int) (commitAvg, checkoutAvg time.Duration, repoBytes, dataBytes int64, repackTime time.Duration) {
	b.Helper()
	schema := decibel.BenchmarkSchema(256)
	tbl, err := gitstore.NewTable(b.TempDir(), schema, layout, format)
	if err != nil {
		b.Fatal(err)
	}
	r := rand.New(rand.NewSource(42))
	var commits []gitstore.Hash
	var commitTotal time.Duration
	nCommits := 0
	cur := "master"
	nextPK := int64(1)
	var keys []int64
	for br := 0; br < branches; br++ {
		if br > 0 {
			name := fmt.Sprintf("b%d", br)
			if err := tbl.Branch(name, cur); err != nil {
				b.Fatal(err)
			}
			cur = name
		}
		for n := 0; n < opsPerBranch; n++ {
			rec := decibel.NewRecord(schema)
			if len(keys) > 0 && r.Float64() >= insertFrac {
				rec.SetPK(keys[r.Intn(len(keys))])
			} else {
				rec.SetPK(nextPK)
				keys = append(keys, nextPK)
				nextPK++
			}
			for i := 1; i < schema.NumColumns(); i++ {
				rec.Set(i, r.Int63())
			}
			if err := tbl.Insert(cur, rec); err != nil {
				b.Fatal(err)
			}
			if (n+1)%commitEvery == 0 {
				t0 := time.Now()
				h, err := tbl.Commit(cur, "load")
				if err != nil {
					b.Fatal(err)
				}
				commitTotal += time.Since(t0)
				nCommits++
				commits = append(commits, h)
			}
		}
	}
	t0 := time.Now()
	if err := tbl.Repo().Repack(10); err != nil {
		b.Fatal(err)
	}
	repackTime = time.Since(t0)

	var checkoutTotal time.Duration
	nCheckouts := 20
	for i := 0; i < nCheckouts; i++ {
		h := commits[r.Intn(len(commits))]
		t0 := time.Now()
		if _, _, err := tbl.Checkout(h); err != nil {
			b.Fatal(err)
		}
		checkoutTotal += time.Since(t0)
	}
	repoBytes, _ = tbl.Repo().RepoSizeBytes()
	dataBytes = tbl.DataSizeBytes(cur)
	return commitTotal / time.Duration(nCommits), checkoutTotal / time.Duration(nCheckouts), repoBytes, dataBytes, repackTime
}

// decibelDeepLoad mirrors gitDeepLoad on the hybrid engine for the
// Decibel rows of Tables 6 and 7.
func decibelDeepLoad(b *testing.B, insertFrac float64, branches, opsPerBranch, commitEvery int) (commitAvg, checkoutAvg time.Duration, repoBytes int64) {
	b.Helper()
	cfg := benchConfig(bench.Deep, branches, opsPerBranch)
	cfg.UpdateFrac = 1 - insertFrac
	cfg.CommitEvery = commitEvery
	dir := b.TempDir()
	d, err := bench.Load(dir, "hy", benchOpts(), cfg)
	if err != nil {
		b.Fatal(err)
	}
	defer d.Close()
	// Commit latency: sample fresh commits on the tail branch.
	tail := d.TailBranch().ID
	var commitTotal time.Duration
	const nC = 10
	for i := 0; i < nC; i++ {
		t0 := time.Now()
		if _, err := d.DB.Commit(tail, "sample"); err != nil {
			b.Fatal(err)
		}
		commitTotal += time.Since(t0)
	}
	r := rand.New(rand.NewSource(5))
	var checkoutTotal time.Duration
	const nK = 20
	for i := 0; i < nK; i++ {
		c := d.Commits[r.Intn(len(d.Commits))]
		t0 := time.Now()
		n := 0
		if err := d.Table.ScanCommit(c, func(*decibel.Record) bool { n++; return true }); err != nil {
			b.Fatal(err)
		}
		checkoutTotal += time.Since(t0)
	}
	st, _ := d.DB.Stats()
	return commitTotal / nC, checkoutTotal / nK, st.DataBytes + st.CommitBytes
}

// BenchmarkTable6 — Table 6: git-backed storage vs Decibel (hybrid) on
// the deep strategy with 100% inserts. Expected shape: git commit and
// checkout latencies orders of magnitude above Decibel's, repack
// expensive, git repo smaller after repack (delta chains) while
// Decibel trades space for speed.
func BenchmarkTable6(b *testing.B) {
	const branches, opsPerBranch, commitEvery = 10, 300, 30
	cases := []struct {
		name   string
		layout gitstore.Layout
		format gitstore.Format
	}{
		{"git-1file-bin", gitstore.OneFile, gitstore.Binary},
		{"git-1file-csv", gitstore.OneFile, gitstore.CSV},
		{"git-filetup-bin", gitstore.FilePerTuple, gitstore.Binary},
		{"git-filetup-csv", gitstore.FilePerTuple, gitstore.CSV},
	}
	for _, c := range cases {
		b.Run(c.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				commit, checkout, repo, data, repack := gitDeepLoad(b, c.layout, c.format, 1.0, branches, opsPerBranch, commitEvery)
				b.ReportMetric(float64(commit.Microseconds()), "commit-us")
				b.ReportMetric(float64(checkout.Microseconds()), "checkout-us")
				b.ReportMetric(float64(repo)/(1<<20), "repo-MB")
				b.ReportMetric(float64(data)/(1<<20), "data-MB")
				b.ReportMetric(repack.Seconds()*1000, "repack-ms")
			}
		})
	}
	b.Run("decibel-hy", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			commit, checkout, repo := decibelDeepLoad(b, 1.0, branches, opsPerBranch, commitEvery)
			b.ReportMetric(float64(commit.Microseconds()), "commit-us")
			b.ReportMetric(float64(checkout.Microseconds()), "checkout-us")
			b.ReportMetric(float64(repo)/(1<<20), "repo-MB")
		}
	})
}

// BenchmarkTable7 — Table 7: the update-heavy variant (50% updates) of
// the git comparison. Expected shape: same orders-of-magnitude gap;
// file-per-tuple checkouts degrade further as history accumulates
// update blobs.
func BenchmarkTable7(b *testing.B) {
	const branches, opsPerBranch, commitEvery = 10, 300, 30
	cases := []struct {
		name   string
		layout gitstore.Layout
		format gitstore.Format
	}{
		{"git-1file-csv", gitstore.OneFile, gitstore.CSV},
		{"git-filetup-csv", gitstore.FilePerTuple, gitstore.CSV},
	}
	for _, c := range cases {
		b.Run(c.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				commit, checkout, repo, data, repack := gitDeepLoad(b, c.layout, c.format, 0.5, branches, opsPerBranch, commitEvery)
				b.ReportMetric(float64(commit.Microseconds()), "commit-us")
				b.ReportMetric(float64(checkout.Microseconds()), "checkout-us")
				b.ReportMetric(float64(repo)/(1<<20), "repo-MB")
				b.ReportMetric(float64(data)/(1<<20), "data-MB")
				b.ReportMetric(repack.Seconds()*1000, "repack-ms")
			}
		})
	}
	b.Run("decibel-hy", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			commit, checkout, repo := decibelDeepLoad(b, 0.5, branches, opsPerBranch, commitEvery)
			b.ReportMetric(float64(commit.Microseconds()), "commit-us")
			b.ReportMetric(float64(checkout.Microseconds()), "checkout-us")
			b.ReportMetric(float64(repo)/(1<<20), "repo-MB")
		}
	})
}

// BenchmarkAblationBitmapLayout — Section 3.1 ablation: branch-oriented
// vs tuple-oriented bitmaps in tuple-first. Single-branch scans must
// favor branch-oriented (column materialization scans the whole matrix
// in the tuple-oriented layout); the membership row lookups of
// multi-branch scans are the tuple-oriented layout's strength.
func BenchmarkAblationBitmapLayout(b *testing.B) {
	const branches, perBranch = 20, 600
	cfg := benchConfig(bench.Flat, branches, perBranch)
	for _, tupleOriented := range []bool{false, true} {
		name := "branch-oriented"
		opt := benchOpts()
		if tupleOriented {
			name = "tuple-oriented"
			opt.TupleOriented = true
		}
		b.Run("scan1/"+name, func(b *testing.B) {
			dir := b.TempDir()
			d, err := bench.Load(dir, "tf", opt, cfg)
			if err != nil {
				b.Fatal(err)
			}
			defer d.Close()
			r := rand.New(rand.NewSource(7))
			child := d.RandomChild(r)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				scanBranch(b, d, child.ID)
			}
		})
		b.Run("scanheads/"+name, func(b *testing.B) {
			dir := b.TempDir()
			d, err := bench.Load(dir, "tf", opt, cfg)
			if err != nil {
				b.Fatal(err)
			}
			defer d.Close()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				n := 0
				if err := query.HeadScan(d.DB.Graph(), d.Table, query.True, func(query.HeadRecord) bool {
					n++
					return true
				}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
