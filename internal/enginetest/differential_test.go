package enginetest

import (
	"fmt"
	"math/rand"
	"sort"
	"testing"

	"decibel/internal/bitmap"
	"decibel/internal/core"
	"decibel/internal/hy"
	"decibel/internal/record"
	"decibel/internal/tf"
	"decibel/internal/vf"
	"decibel/internal/vgraph"
)

// harness drives one workload through all engines plus the model.
type harness struct {
	t      *testing.T
	schema *record.Schema
	dbs    map[string]*core.Database
	model  *Model
	graph  *vgraph.Graph // graph of the first db (all evolve identically)
	names  []string
}

func testSchema() *record.Schema {
	return record.MustSchema(
		record.Column{Name: "id", Type: record.Int64},
		record.Column{Name: "a", Type: record.Int64},
		record.Column{Name: "b", Type: record.Int64},
		record.Column{Name: "c", Type: record.Int32},
	)
}

func newHarness(t *testing.T) *harness {
	t.Helper()
	h := &harness{t: t, schema: testSchema(), dbs: make(map[string]*core.Database), model: NewModel(testSchema())}
	opt := core.Options{PageSize: 4096, PoolPages: 16}
	for _, name := range []string{"tuple-first", "tuple-first-toriented", "version-first", "hybrid"} {
		o := opt
		if name == "tuple-first-toriented" {
			o.TupleOriented = true
		}
		factory := tf.Factory
		switch name {
		case "version-first":
			factory = vf.Factory
		case "hybrid":
			factory = hy.Factory
		}
		db, err := core.Open(t.TempDir(), factory, o)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if _, err := db.CreateTable("t", h.schema); err != nil {
			t.Fatal(err)
		}
		h.dbs[name] = db
		h.names = append(h.names, name)
	}
	t.Cleanup(func() {
		for _, db := range h.dbs {
			db.Close()
		}
	})
	return h
}

func (h *harness) init() (*vgraph.Branch, *vgraph.Commit) {
	var master *vgraph.Branch
	var c0 *vgraph.Commit
	for _, name := range h.names {
		m, c, err := h.dbs[name].Init("init")
		if err != nil {
			h.t.Fatalf("%s init: %v", name, err)
		}
		master, c0 = m, c
	}
	h.graph = h.dbs[h.names[0]].Graph()
	h.model.Init(master, c0)
	return master, c0
}

func (h *harness) branch(name string, from vgraph.CommitID) *vgraph.Branch {
	var b *vgraph.Branch
	for _, n := range h.names {
		nb, err := h.dbs[n].Branch(name, from)
		if err != nil {
			h.t.Fatalf("%s branch: %v", n, err)
		}
		b = nb
	}
	fc, _ := h.graph.Commit(from)
	h.model.Branch(b, fc)
	return b
}

func (h *harness) commit(b vgraph.BranchID) *vgraph.Commit {
	var c *vgraph.Commit
	for _, n := range h.names {
		nc, err := h.dbs[n].Commit(b, "c")
		if err != nil {
			h.t.Fatalf("%s commit: %v", n, err)
		}
		c = nc
	}
	h.model.Commit(c)
	return c
}

func (h *harness) insert(b vgraph.BranchID, rec *record.Record) {
	for _, n := range h.names {
		tbl, _ := h.dbs[n].Table("t")
		if err := tbl.Insert(b, rec); err != nil {
			h.t.Fatalf("%s insert: %v", n, err)
		}
	}
	h.model.Insert(b, rec)
}

func (h *harness) delete(b vgraph.BranchID, pk int64) {
	for _, n := range h.names {
		tbl, _ := h.dbs[n].Table("t")
		if err := tbl.Delete(b, pk); err != nil {
			h.t.Fatalf("%s delete: %v", n, err)
		}
	}
	h.model.Delete(b, pk)
}

func (h *harness) merge(into, other vgraph.BranchID, kind core.MergeKind, precFirst bool) {
	var conflicts []int
	var mc *vgraph.Commit
	for _, n := range h.names {
		c, st, err := h.dbs[n].Merge(into, other, "m", kind, precFirst)
		if err != nil {
			h.t.Fatalf("%s merge: %v", n, err)
		}
		conflicts = append(conflicts, st.Conflicts)
		mc = c
	}
	want := h.model.Merge(h.graph, into, other, mc, kind)
	for i, n := range h.names {
		if conflicts[i] != want {
			h.t.Errorf("%s merge conflicts = %d, model says %d", n, conflicts[i], want)
		}
	}
}

// branchScanSet collects a branch scan as a set of record byte strings.
func (h *harness) branchScanSet(db *core.Database, b vgraph.BranchID) map[string]bool {
	tbl, _ := db.Table("t")
	out := make(map[string]bool)
	err := tbl.Scan(b, func(rec *record.Record) bool {
		out[string(rec.Bytes())] = true
		return true
	})
	if err != nil {
		h.t.Fatalf("scan: %v", err)
	}
	return out
}

func stateSet(s state) map[string]bool {
	out := make(map[string]bool, len(s))
	for _, v := range s {
		out[v] = true
	}
	return out
}

func describeSetDiff(a, b map[string]bool) string {
	var onlyA, onlyB int
	for k := range a {
		if !b[k] {
			onlyA++
		}
	}
	for k := range b {
		if !a[k] {
			onlyB++
		}
	}
	return fmt.Sprintf("%d records only in engine, %d only in model (engine=%d model=%d)", onlyA, onlyB, len(a), len(b))
}

// verify checks every branch scan, sampled commits, diffs and
// multi-branch scans across all engines against the model.
func (h *harness) verify(r *rand.Rand, commits []*vgraph.Commit) {
	branches := h.graph.Branches()
	// Branch scans.
	for _, br := range branches {
		want := stateSet(h.model.BranchState(br.ID))
		for _, n := range h.names {
			got := h.branchScanSet(h.dbs[n], br.ID)
			if !setsEqual(got, want) {
				h.t.Errorf("%s: branch %s scan mismatch: %s", n, br.Name, describeSetDiff(got, want))
				if n == "version-first" {
					tbl, _ := h.dbs[n].Table("t")
					eng := tbl.Engine().(*vf.Engine)
					h.t.Log(eng.DumpLineage(br.ID))
					for k := range got {
						if !want[k] {
							rec, _ := record.FromBytes(h.schema, []byte(k))
							h.t.Logf("extra pk=%d:\n%s", rec.PK(), eng.DumpKey(rec.PK()))
						}
					}
					for k := range want {
						if !got[k] {
							rec, _ := record.FromBytes(h.schema, []byte(k))
							h.t.Logf("missing pk=%d:\n%s", rec.PK(), eng.DumpKey(rec.PK()))
						}
					}
				}
			}
		}
	}
	// Commit checkouts (sampled).
	for i := 0; i < 5 && len(commits) > 0; i++ {
		c := commits[r.Intn(len(commits))]
		want := stateSet(h.model.CommitState(c.ID))
		for _, n := range h.names {
			tbl, _ := h.dbs[n].Table("t")
			got := make(map[string]bool)
			if err := tbl.ScanCommit(c, func(rec *record.Record) bool {
				got[string(rec.Bytes())] = true
				return true
			}); err != nil {
				h.t.Fatalf("%s scanCommit: %v", n, err)
			}
			if !setsEqual(got, want) {
				h.t.Errorf("%s: commit %d checkout mismatch: %s", n, c.ID, describeSetDiff(got, want))
			}
		}
	}
	// Diffs (sampled pairs).
	for i := 0; i < 4 && len(branches) >= 2; i++ {
		a := branches[r.Intn(len(branches))].ID
		b := branches[r.Intn(len(branches))].ID
		if a == b {
			continue
		}
		want := h.model.Diff(a, b)
		for _, n := range h.names {
			tbl, _ := h.dbs[n].Table("t")
			got := make(map[string]bool)
			if err := tbl.ScanDiff(a, b, func(rec *record.Record, inA bool) bool {
				side := "\x00B"
				if inA {
					side = "\x00A"
				}
				got[string(rec.Bytes())+side] = true
				return true
			}); err != nil {
				h.t.Fatalf("%s diff: %v", n, err)
			}
			if !setsEqual(got, want) {
				h.t.Errorf("%s: diff(%d,%d) mismatch: %s", n, a, b, describeSetDiff(got, want))
			}
		}
	}
	// Multi-branch scan: per-branch projection must equal single scans.
	ids := make([]vgraph.BranchID, 0, len(branches))
	for _, br := range branches {
		ids = append(ids, br.ID)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, n := range h.names {
		tbl, _ := h.dbs[n].Table("t")
		proj := make([]map[string]bool, len(ids))
		for i := range proj {
			proj[i] = make(map[string]bool)
		}
		if err := tbl.ScanMulti(ids, func(rec *record.Record, member *bitmap.Bitmap) bool {
			if !member.Any() {
				h.t.Errorf("%s: ScanMulti emitted record with empty membership", n)
			}
			for i := range ids {
				if member.Get(i) {
					proj[i][string(rec.Bytes())] = true
				}
			}
			return true
		}); err != nil {
			h.t.Fatalf("%s scanMulti: %v", n, err)
		}
		for i, id := range ids {
			want := stateSet(h.model.BranchState(id))
			if !setsEqual(proj[i], want) {
				h.t.Errorf("%s: ScanMulti projection of branch %d mismatch: %s", n, id, describeSetDiff(proj[i], want))
			}
		}
	}
}

func setsEqual(a, b map[string]bool) bool {
	if len(a) != len(b) {
		return false
	}
	for k := range a {
		if !b[k] {
			return false
		}
	}
	return true
}

// mkRec builds a record with random payload for pk.
func mkRec(schema *record.Schema, r *rand.Rand, pk int64) *record.Record {
	rec := record.New(schema)
	rec.SetPK(pk)
	for i := 1; i < schema.NumColumns(); i++ {
		rec.Set(i, r.Int63())
	}
	return rec
}

// runWorkload drives a seeded random versioned workload and verifies
// continuously.
func runWorkload(t *testing.T, seed int64, ops int, allowMerge bool, threeWay bool) {
	h := newHarness(t)
	r := rand.New(rand.NewSource(seed))
	master, c0 := h.init()
	commits := []*vgraph.Commit{c0}
	branches := []*vgraph.Branch{master}
	nextPK := int64(1)
	nextBranch := 1
	_ = master

	for op := 0; op < ops; op++ {
		switch k := r.Intn(100); {
		case k < 50: // insert
			b := branches[r.Intn(len(branches))]
			h.insert(b.ID, mkRec(h.schema, r, nextPK))
			nextPK++
		case k < 70: // update existing
			b := branches[r.Intn(len(branches))]
			st := h.model.BranchState(b.ID)
			if pk, ok := anyKey(r, st); ok {
				h.insert(b.ID, mkRec(h.schema, r, pk))
			}
		case k < 80: // delete
			b := branches[r.Intn(len(branches))]
			st := h.model.BranchState(b.ID)
			if pk, ok := anyKey(r, st); ok {
				h.delete(b.ID, pk)
			}
		case k < 90: // commit
			b := branches[r.Intn(len(branches))]
			commits = append(commits, h.commit(b.ID))
		case k < 96: // branch (mostly from head, sometimes historical)
			var from vgraph.CommitID
			if r.Intn(4) == 0 {
				from = commits[r.Intn(len(commits))].ID
			} else {
				pb := branches[r.Intn(len(branches))]
				cur, _ := h.graph.Branch(pb.ID)
				from = cur.Head
			}
			nb := h.branch(fmt.Sprintf("b%d", nextBranch), from)
			nextBranch++
			branches = append(branches, nb)
		default: // merge
			if !allowMerge || len(branches) < 2 {
				continue
			}
			i, j := r.Intn(len(branches)), r.Intn(len(branches))
			if i == j {
				continue
			}
			kind := core.TwoWay
			if threeWay {
				kind = core.ThreeWay
			}
			h.merge(branches[i].ID, branches[j].ID, kind, r.Intn(2) == 0)
			mb, _ := h.graph.Branch(branches[i].ID)
			mcommit, _ := h.graph.Commit(mb.Head)
			commits = append(commits, mcommit)
		}
		if op%50 == 49 {
			h.verify(r, commits)
			if h.t.Failed() {
				h.t.Fatalf("divergence detected at op %d (seed %d)", op, seed)
			}
		}
	}
	h.verify(r, commits)
	if h.t.Failed() {
		h.t.Fatalf("divergence detected at end (seed %d)", seed)
	}
}

func TestDifferentialLinear(t *testing.T) {
	runWorkload(t, 1, 300, false, false)
}

func TestDifferentialBranchingNoMerge(t *testing.T) {
	runWorkload(t, 2, 300, false, false)
}

func TestDifferentialTwoWayMerges(t *testing.T) {
	runWorkload(t, 3, 300, true, false)
}

func TestDifferentialThreeWayMerges(t *testing.T) {
	runWorkload(t, 4, 300, true, true)
}

func TestDifferentialManySeedsTwoWay(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	for seed := int64(10); seed < 16; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			runWorkload(t, seed, 200, true, false)
		})
	}
}

func TestDifferentialManySeedsThreeWay(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	for seed := int64(20); seed < 26; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			runWorkload(t, seed, 200, true, true)
		})
	}
}

func anyKey(r *rand.Rand, s state) (int64, bool) {
	if len(s) == 0 {
		return 0, false
	}
	keys := make([]int64, 0, len(s))
	for k := range s {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	return keys[r.Intn(len(keys))], true
}
