package enginetest

import (
	"testing"

	"decibel/internal/core"
	"decibel/internal/hy"
	"decibel/internal/record"
	"decibel/internal/tf"
	"decibel/internal/vf"
	"decibel/internal/vgraph"
)

// engineCases enumerates every engine configuration under test.
func engineCases() []struct {
	name    string
	factory core.Factory
	opt     core.Options
} {
	base := core.Options{PageSize: 4096, PoolPages: 16}
	to := base
	to.TupleOriented = true
	return []struct {
		name    string
		factory core.Factory
		opt     core.Options
	}{
		{"tuple-first", tf.Factory, base},
		{"tuple-first-toriented", tf.Factory, to},
		{"version-first", vf.Factory, base},
		{"hybrid", hy.Factory, base},
	}
}

func openDB(t *testing.T, dir string, factory core.Factory, opt core.Options) *core.Database {
	t.Helper()
	db, err := core.Open(dir, factory, opt)
	if err != nil {
		t.Fatal(err)
	}
	return db
}

func scanPKs(t *testing.T, db *core.Database, b vgraph.BranchID) map[int64]int64 {
	t.Helper()
	tbl, _ := db.Table("t")
	out := make(map[int64]int64)
	if err := tbl.Scan(b, func(rec *record.Record) bool {
		out[rec.PK()] = rec.Get(1)
		return true
	}); err != nil {
		t.Fatal(err)
	}
	return out
}

func simpleRec(s *record.Schema, pk, v int64) *record.Record {
	r := record.New(s)
	r.SetPK(pk)
	r.Set(1, v)
	return r
}

// TestEngineBasicLifecycle covers insert/update/delete/commit/checkout
// on every engine.
func TestEngineBasicLifecycle(t *testing.T) {
	for _, tc := range engineCases() {
		t.Run(tc.name, func(t *testing.T) {
			db := openDB(t, t.TempDir(), tc.factory, tc.opt)
			defer db.Close()
			schema := testSchema()
			if _, err := db.CreateTable("t", schema); err != nil {
				t.Fatal(err)
			}
			master, _, err := db.Init("init")
			if err != nil {
				t.Fatal(err)
			}
			tbl, _ := db.Table("t")
			for pk := int64(1); pk <= 10; pk++ {
				if err := tbl.Insert(master.ID, simpleRec(schema, pk, pk*10)); err != nil {
					t.Fatal(err)
				}
			}
			c1, err := db.Commit(master.ID, "ten rows")
			if err != nil {
				t.Fatal(err)
			}
			// Update 3, delete 7.
			if err := tbl.Insert(master.ID, simpleRec(schema, 3, 999)); err != nil {
				t.Fatal(err)
			}
			if err := tbl.Delete(master.ID, 7); err != nil {
				t.Fatal(err)
			}
			got := scanPKs(t, db, master.ID)
			if len(got) != 9 || got[3] != 999 || got[1] != 10 {
				t.Fatalf("head state = %v", got)
			}
			if _, deleted := got[7]; deleted {
				t.Fatal("pk 7 still visible")
			}
			// Historical checkout still sees the committed state.
			snap := make(map[int64]int64)
			if err := tbl.ScanCommit(c1, func(rec *record.Record) bool {
				snap[rec.PK()] = rec.Get(1)
				return true
			}); err != nil {
				t.Fatal(err)
			}
			if len(snap) != 10 || snap[3] != 30 || snap[7] != 70 {
				t.Fatalf("commit snapshot = %v", snap)
			}
			// Deleting a missing key is a no-op.
			if err := tbl.Delete(master.ID, 12345); err != nil {
				t.Fatal(err)
			}
			if len(scanPKs(t, db, master.ID)) != 9 {
				t.Fatal("no-op delete changed state")
			}
		})
	}
}

// TestEngineBranchIsolation verifies writes to a child are invisible to
// the parent and vice versa.
func TestEngineBranchIsolation(t *testing.T) {
	for _, tc := range engineCases() {
		t.Run(tc.name, func(t *testing.T) {
			db := openDB(t, t.TempDir(), tc.factory, tc.opt)
			defer db.Close()
			schema := testSchema()
			db.CreateTable("t", schema)
			master, _, _ := db.Init("init")
			tbl, _ := db.Table("t")
			tbl.Insert(master.ID, simpleRec(schema, 1, 100))
			db.Commit(master.ID, "c")
			dev, err := db.BranchFromHead("dev", "master")
			if err != nil {
				t.Fatal(err)
			}
			tbl.Insert(dev.ID, simpleRec(schema, 2, 200))    // child-only insert
			tbl.Insert(dev.ID, simpleRec(schema, 1, 111))    // child-only update
			tbl.Insert(master.ID, simpleRec(schema, 3, 300)) // parent-only insert
			tbl.Delete(master.ID, 1)                         // parent-only delete

			m := scanPKs(t, db, master.ID)
			d := scanPKs(t, db, dev.ID)
			if len(m) != 1 || m[3] != 300 {
				t.Fatalf("master = %v", m)
			}
			if len(d) != 2 || d[1] != 111 || d[2] != 200 {
				t.Fatalf("dev = %v", d)
			}
		})
	}
}

// TestEngineBranchFromHistoricalCommit branches off a non-head commit.
func TestEngineBranchFromHistoricalCommit(t *testing.T) {
	for _, tc := range engineCases() {
		t.Run(tc.name, func(t *testing.T) {
			db := openDB(t, t.TempDir(), tc.factory, tc.opt)
			defer db.Close()
			schema := testSchema()
			db.CreateTable("t", schema)
			master, _, _ := db.Init("init")
			tbl, _ := db.Table("t")
			tbl.Insert(master.ID, simpleRec(schema, 1, 1))
			c1, _ := db.Commit(master.ID, "v1")
			tbl.Insert(master.ID, simpleRec(schema, 2, 2))
			db.Commit(master.ID, "v2")
			tbl.Insert(master.ID, simpleRec(schema, 3, 3))

			old, err := db.Branch("old", c1.ID)
			if err != nil {
				t.Fatal(err)
			}
			got := scanPKs(t, db, old.ID)
			if len(got) != 1 || got[1] != 1 {
				t.Fatalf("historical branch state = %v (want only pk 1)", got)
			}
			// The historical branch is writable going forward.
			tbl.Insert(old.ID, simpleRec(schema, 9, 9))
			got = scanPKs(t, db, old.ID)
			if len(got) != 2 || got[9] != 9 {
				t.Fatalf("after write: %v", got)
			}
			// Master unaffected.
			if m := scanPKs(t, db, master.ID); len(m) != 3 {
				t.Fatalf("master = %v", m)
			}
		})
	}
}

// TestEngineUncommittedRollbackOnReopen verifies the transaction
// semantics of Section 2.2.3: updates not covered by a commit are
// rolled back when the dataset is reopened.
func TestEngineUncommittedRollbackOnReopen(t *testing.T) {
	for _, tc := range engineCases() {
		t.Run(tc.name, func(t *testing.T) {
			dir := t.TempDir()
			schema := testSchema()
			db := openDB(t, dir, tc.factory, tc.opt)
			db.CreateTable("t", schema)
			master, _, _ := db.Init("init")
			tbl, _ := db.Table("t")
			tbl.Insert(master.ID, simpleRec(schema, 1, 1))
			db.Commit(master.ID, "v1")
			tbl.Insert(master.ID, simpleRec(schema, 2, 2)) // uncommitted
			if err := db.Close(); err != nil {
				t.Fatal(err)
			}

			db2 := openDB(t, dir, tc.factory, tc.opt)
			defer db2.Close()
			m, _ := db2.Graph().BranchByName("master")
			got := scanPKs(t, db2, m.ID)
			if len(got) != 1 || got[1] != 1 {
				t.Fatalf("state after reopen = %v (want committed state only)", got)
			}
			// The reopened dataset accepts new writes and commits.
			tbl2, _ := db2.Table("t")
			if err := tbl2.Insert(m.ID, simpleRec(schema, 5, 5)); err != nil {
				t.Fatal(err)
			}
			if _, err := db2.Commit(m.ID, "v2"); err != nil {
				t.Fatal(err)
			}
			got = scanPKs(t, db2, m.ID)
			if len(got) != 2 || got[5] != 5 {
				t.Fatalf("after reopen write: %v", got)
			}
		})
	}
}

// TestEngineReopenPreservesBranchesAndHistory exercises full reload of
// a branched dataset.
func TestEngineReopenPreservesBranchesAndHistory(t *testing.T) {
	for _, tc := range engineCases() {
		t.Run(tc.name, func(t *testing.T) {
			dir := t.TempDir()
			schema := testSchema()
			db := openDB(t, dir, tc.factory, tc.opt)
			db.CreateTable("t", schema)
			master, _, _ := db.Init("init")
			tbl, _ := db.Table("t")
			tbl.Insert(master.ID, simpleRec(schema, 1, 1))
			c1, _ := db.Commit(master.ID, "v1")
			dev, _ := db.BranchFromHead("dev", "master")
			tbl.Insert(dev.ID, simpleRec(schema, 2, 2))
			db.Commit(dev.ID, "dev v1")
			tbl.Insert(master.ID, simpleRec(schema, 3, 3))
			c3, _ := db.Commit(master.ID, "v2")
			db.Close()

			db2 := openDB(t, dir, tc.factory, tc.opt)
			defer db2.Close()
			m, _ := db2.Graph().BranchByName("master")
			d, _ := db2.Graph().BranchByName("dev")
			if got := scanPKs(t, db2, m.ID); len(got) != 2 || got[3] != 3 {
				t.Fatalf("master after reopen = %v", got)
			}
			if got := scanPKs(t, db2, d.ID); len(got) != 2 || got[2] != 2 {
				t.Fatalf("dev after reopen = %v", got)
			}
			// Historical checkouts still work.
			tbl2, _ := db2.Table("t")
			for _, c := range []*vgraph.Commit{c1, c3} {
				cc, ok := db2.Graph().Commit(c.ID)
				if !ok {
					t.Fatalf("commit %d missing after reopen", c.ID)
				}
				n := 0
				if err := tbl2.ScanCommit(cc, func(*record.Record) bool { n++; return true }); err != nil {
					t.Fatal(err)
				}
				want := 1
				if c.ID == c3.ID {
					want = 2
				}
				if n != want {
					t.Fatalf("commit %d has %d records after reopen, want %d", c.ID, n, want)
				}
			}
		})
	}
}

// TestEngineMergeAfterReopen verifies merges work on a reloaded
// dataset (commit logs, overrides and segment metadata all survive).
func TestEngineMergeAfterReopen(t *testing.T) {
	for _, tc := range engineCases() {
		t.Run(tc.name, func(t *testing.T) {
			dir := t.TempDir()
			schema := testSchema()
			db := openDB(t, dir, tc.factory, tc.opt)
			db.CreateTable("t", schema)
			master, _, _ := db.Init("init")
			tbl, _ := db.Table("t")
			tbl.Insert(master.ID, simpleRec(schema, 1, 1))
			db.Commit(master.ID, "base")
			dev, _ := db.BranchFromHead("dev", "master")
			tbl.Insert(dev.ID, simpleRec(schema, 2, 2))
			db.Commit(dev.ID, "dev")
			tbl.Insert(master.ID, simpleRec(schema, 3, 3))
			db.Commit(master.ID, "more")
			db.Close()

			db2 := openDB(t, dir, tc.factory, tc.opt)
			defer db2.Close()
			m, _ := db2.Graph().BranchByName("master")
			d, _ := db2.Graph().BranchByName("dev")
			if _, st, err := db2.Merge(m.ID, d.ID, "merge", core.ThreeWay, true); err != nil {
				t.Fatal(err)
			} else if st.Conflicts != 0 {
				t.Fatalf("unexpected conflicts: %d", st.Conflicts)
			}
			got := scanPKs(t, db2, m.ID)
			if len(got) != 3 || got[2] != 2 {
				t.Fatalf("merged state = %v", got)
			}
		})
	}
}

// TestEngineMergeConflictPrecedence checks both precedence directions
// for both merge kinds on a concrete conflicting update.
func TestEngineMergeConflictPrecedence(t *testing.T) {
	for _, tc := range engineCases() {
		for _, kind := range []core.MergeKind{core.TwoWay, core.ThreeWay} {
			for _, precFirst := range []bool{true, false} {
				name := tc.name + "/" + kind.String()
				if precFirst {
					name += "/precA"
				} else {
					name += "/precB"
				}
				t.Run(name, func(t *testing.T) {
					db := openDB(t, t.TempDir(), tc.factory, tc.opt)
					defer db.Close()
					schema := testSchema()
					db.CreateTable("t", schema)
					master, _, _ := db.Init("init")
					tbl, _ := db.Table("t")
					base := record.New(schema)
					base.SetPK(1)
					base.Set(1, 10)
					base.Set(2, 20)
					tbl.Insert(master.ID, base)
					db.Commit(master.ID, "base")
					dev, _ := db.BranchFromHead("dev", "master")

					// master changes col1, dev changes col1 (conflict) and
					// col2 (mergeable in three-way).
					up1 := base.Clone()
					up1.Set(1, 11)
					tbl.Insert(master.ID, up1)
					up2 := base.Clone()
					up2.Set(1, 12)
					up2.Set(2, 22)
					tbl.Insert(dev.ID, up2)

					_, st, err := db.Merge(master.ID, dev.ID, "m", kind, precFirst)
					if err != nil {
						t.Fatal(err)
					}
					if st.Conflicts != 1 {
						t.Fatalf("conflicts = %d, want 1", st.Conflicts)
					}
					var got *record.Record
					tbl.Scan(master.ID, func(rec *record.Record) bool {
						if rec.PK() == 1 {
							got = rec.Clone()
						}
						return true
					})
					if got == nil {
						t.Fatal("pk 1 missing after merge")
					}
					switch {
					case kind == core.TwoWay && precFirst:
						if got.Get(1) != 11 || got.Get(2) != 20 {
							t.Fatalf("two-way precA: %v", got)
						}
					case kind == core.TwoWay && !precFirst:
						if got.Get(1) != 12 || got.Get(2) != 22 {
							t.Fatalf("two-way precB: %v", got)
						}
					case kind == core.ThreeWay && precFirst:
						// Field-level: col1 conflict -> A wins; col2 auto-merges.
						if got.Get(1) != 11 || got.Get(2) != 22 {
							t.Fatalf("three-way precA: %v", got)
						}
					default:
						if got.Get(1) != 12 || got.Get(2) != 22 {
							t.Fatalf("three-way precB: %v", got)
						}
					}
				})
			}
		}
	}
}

// TestEngineStats sanity-checks the storage statistics.
func TestEngineStats(t *testing.T) {
	for _, tc := range engineCases() {
		t.Run(tc.name, func(t *testing.T) {
			db := openDB(t, t.TempDir(), tc.factory, tc.opt)
			defer db.Close()
			schema := testSchema()
			db.CreateTable("t", schema)
			master, _, _ := db.Init("init")
			tbl, _ := db.Table("t")
			for pk := int64(1); pk <= 50; pk++ {
				tbl.Insert(master.ID, simpleRec(schema, pk, pk))
			}
			db.Commit(master.ID, "c")
			st, err := db.Stats()
			if err != nil {
				t.Fatal(err)
			}
			if st.Records < 50 {
				t.Fatalf("records = %d", st.Records)
			}
			if st.DataBytes < 50*int64(schema.RecordSize()) {
				t.Fatalf("data bytes = %d", st.DataBytes)
			}
			if st.LiveRecords != 50 {
				t.Fatalf("live records = %d", st.LiveRecords)
			}
			if st.SegmentCount < 1 {
				t.Fatal("no segments")
			}
		})
	}
}

// TestSessionWorkflow exercises the Session 2PL surface end to end.
func TestSessionWorkflow(t *testing.T) {
	for _, tc := range engineCases() {
		t.Run(tc.name, func(t *testing.T) {
			db := openDB(t, t.TempDir(), tc.factory, tc.opt)
			defer db.Close()
			schema := testSchema()
			db.CreateTable("t", schema)
			db.Init("init")

			s, err := db.NewSession()
			if err != nil {
				t.Fatal(err)
			}
			defer s.Close()
			if err := s.Insert("t", simpleRec(schema, 1, 1)); err != nil {
				t.Fatal(err)
			}
			c1, err := s.CommitWork("v1")
			if err != nil {
				t.Fatal(err)
			}
			if err := s.Insert("t", simpleRec(schema, 2, 2)); err != nil {
				t.Fatal(err)
			}
			s.CommitWork("v2")

			// A second session checks out the historical commit and reads
			// the old state without seeing v2.
			s2, err := db.NewSession()
			if err != nil {
				t.Fatal(err)
			}
			defer s2.Close()
			if err := s2.CheckoutCommit(c1.ID); err != nil {
				t.Fatal(err)
			}
			n := 0
			if err := s2.Scan("t", func(*record.Record) bool { n++; return true }); err != nil {
				t.Fatal(err)
			}
			if n != 1 {
				t.Fatalf("historical session sees %d records, want 1", n)
			}
			// Writes from a detached historical position are rejected.
			if err := s2.Insert("t", simpleRec(schema, 9, 9)); err == nil {
				t.Fatal("write at non-head commit accepted")
			}
		})
	}
}

// TestDatabaseCatalogReload verifies multi-table datasets reload with
// their schemas.
func TestDatabaseCatalogReload(t *testing.T) {
	dir := t.TempDir()
	schemaR := testSchema()
	schemaS := record.MustSchema(
		record.Column{Name: "id", Type: record.Int64},
		record.Column{Name: "x", Type: record.Int32},
	)
	db := openDB(t, dir, hy.Factory, core.Options{PageSize: 4096, PoolPages: 8})
	db.CreateTable("r", schemaR)
	db.CreateTable("s", schemaS)
	master, _, _ := db.Init("init")
	tr, _ := db.Table("r")
	ts, _ := db.Table("s")
	tr.Insert(master.ID, simpleRec(schemaR, 1, 1))
	sRec := record.New(schemaS)
	sRec.SetPK(7)
	sRec.Set(1, 70)
	ts.Insert(master.ID, sRec)
	db.Commit(master.ID, "both tables")
	db.Close()

	db2 := openDB(t, dir, hy.Factory, core.Options{PageSize: 4096, PoolPages: 8})
	defer db2.Close()
	if len(db2.Tables()) != 2 {
		t.Fatalf("tables after reload = %d", len(db2.Tables()))
	}
	s2, ok := db2.Table("s")
	if !ok || !s2.Schema().Equal(schemaS) {
		t.Fatal("schema s lost or changed")
	}
	m, _ := db2.Graph().BranchByName("master")
	n := 0
	s2.Scan(m.ID, func(rec *record.Record) bool {
		if rec.PK() != 7 || rec.Get(1) != 70 {
			t.Fatalf("bad record %v", rec)
		}
		n++
		return true
	})
	if n != 1 {
		t.Fatalf("table s has %d records", n)
	}
	if _, err := db2.CreateTable("late", schemaS); err == nil {
		t.Fatal("table created after init")
	}
}

// TestMergeStatsThroughputFields ensures DiffBytes is populated (Table
// 3 computes MB/s relative to the diff size).
func TestMergeStatsThroughputFields(t *testing.T) {
	for _, tc := range engineCases() {
		t.Run(tc.name, func(t *testing.T) {
			db := openDB(t, t.TempDir(), tc.factory, tc.opt)
			defer db.Close()
			schema := testSchema()
			db.CreateTable("t", schema)
			master, _, _ := db.Init("init")
			tbl, _ := db.Table("t")
			for pk := int64(1); pk <= 20; pk++ {
				tbl.Insert(master.ID, simpleRec(schema, pk, pk))
			}
			db.Commit(master.ID, "base")
			dev, _ := db.BranchFromHead("dev", "master")
			for pk := int64(21); pk <= 30; pk++ {
				tbl.Insert(dev.ID, simpleRec(schema, pk, pk))
			}
			_, st, err := db.Merge(master.ID, dev.ID, "m", core.ThreeWay, true)
			if err != nil {
				t.Fatal(err)
			}
			if st.ChangedB != 10 || st.ChangedA != 0 {
				t.Fatalf("changed A=%d B=%d", st.ChangedA, st.ChangedB)
			}
			if st.DiffBytes < 10*int64(schema.RecordSize()) {
				t.Fatalf("diff bytes = %d", st.DiffBytes)
			}
			if got := scanPKs(t, db, master.ID); len(got) != 30 {
				t.Fatalf("merged size = %d", len(got))
			}
		})
	}
}
