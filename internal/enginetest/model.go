// Package enginetest provides cross-engine differential testing: the
// same randomized versioned workload is applied to the tuple-first,
// version-first and hybrid engines plus an in-memory reference model,
// and every scan, checkout, diff and merge outcome must agree. This is
// the strongest correctness check in the repository: any semantic
// divergence between the three physical schemes of Section 3 fails
// here.
package enginetest

import (
	"decibel/internal/core"
	"decibel/internal/record"
	"decibel/internal/vgraph"
)

// state maps primary key -> encoded record bytes for one version.
type state map[int64]string

func (s state) clone() state {
	c := make(state, len(s))
	for k, v := range s {
		c[k] = v
	}
	return c
}

// Model is the naive reference implementation: full state copies per
// branch and per commit. Obviously not a storage engine — it is the
// executable specification the engines are compared against.
type Model struct {
	schema   *record.Schema
	branches map[vgraph.BranchID]state
	commits  map[vgraph.CommitID]state
}

// NewModel creates a reference model for the schema.
func NewModel(schema *record.Schema) *Model {
	return &Model{
		schema:   schema,
		branches: make(map[vgraph.BranchID]state),
		commits:  make(map[vgraph.CommitID]state),
	}
}

// Init mirrors Database.Init.
func (m *Model) Init(master *vgraph.Branch, c0 *vgraph.Commit) {
	m.branches[master.ID] = state{}
	m.commits[c0.ID] = state{}
}

// Branch mirrors Database.Branch: the child starts from the commit's
// snapshot.
func (m *Model) Branch(child *vgraph.Branch, from *vgraph.Commit) {
	m.branches[child.ID] = m.commits[from.ID].clone()
}

// Commit mirrors Database.Commit.
func (m *Model) Commit(c *vgraph.Commit) {
	m.commits[c.ID] = m.branches[c.Branch].clone()
}

// Insert mirrors Table.Insert (upsert).
func (m *Model) Insert(b vgraph.BranchID, rec *record.Record) {
	m.branches[b][rec.PK()] = string(rec.Bytes())
}

// Delete mirrors Table.Delete.
func (m *Model) Delete(b vgraph.BranchID, pk int64) {
	delete(m.branches[b], pk)
}

// BranchState returns the live state of a branch head.
func (m *Model) BranchState(b vgraph.BranchID) state { return m.branches[b] }

// CommitState returns a committed snapshot.
func (m *Model) CommitState(c vgraph.CommitID) state { return m.commits[c] }

// Diff returns the byte-level diff: (record bytes, side) pairs where
// side true = in a not in b.
func (m *Model) Diff(a, b vgraph.BranchID) map[string]bool {
	out := make(map[string]bool)
	sa, sb := m.branches[a], m.branches[b]
	for pk, bytesA := range sa {
		if bytesB, ok := sb[pk]; !ok || bytesB != bytesA {
			out[bytesA+"\x00A"] = true
		}
	}
	for pk, bytesB := range sb {
		if bytesA, ok := sa[pk]; !ok || bytesA != bytesB {
			out[bytesB+"\x00B"] = true
		}
	}
	return out
}

func (m *Model) rec(encoded string) *record.Record {
	r, err := record.FromBytes(m.schema, []byte(encoded))
	if err != nil {
		panic(err)
	}
	return r
}

// Merge mirrors Database.Merge against the model: per-key three-way (or
// two-way tuple-level) resolution against the LCA snapshot, with the
// merged state becoming both into's branch state and mc's snapshot.
// Returns the number of conflicts.
func (m *Model) Merge(g *vgraph.Graph, into, other vgraph.BranchID, mc *vgraph.Commit, kind core.MergeKind) int {
	lcaID := g.LCA(mc.Parents[0], mc.Parents[1])
	lca := m.commits[lcaID]
	sa, sb := m.branches[into], m.branches[other]
	merged := sa.clone()
	conflicts := 0

	union := make(map[int64]struct{})
	for pk := range sa {
		union[pk] = struct{}{}
	}
	for pk := range sb {
		union[pk] = struct{}{}
	}
	for pk := range lca {
		union[pk] = struct{}{}
	}
	for pk := range union {
		va, okA := sa[pk]
		vb, okB := sb[pk]
		vl, okL := lca[pk]
		changedA := okA != okL || (okA && va != vl)
		changedB := okB != okL || (okB && vb != vl)
		switch {
		case !changedA && !changedB:
			// keep
		case changedA && !changedB:
			// keep into's state (already in merged)
		case changedB && !changedA:
			if okB {
				merged[pk] = vb
			} else {
				delete(merged, pk)
			}
		default:
			if kind == core.TwoWay {
				same := okA == okB && (!okA || va == vb)
				if !same {
					conflicts++
				}
				if mc.PrecedenceFirst {
					// into's state stays
				} else if okB {
					merged[pk] = vb
				} else {
					delete(merged, pk)
				}
				continue
			}
			var base, ra, rb *record.Record
			if okL {
				base = m.rec(vl)
			}
			if okA {
				ra = m.rec(va)
			}
			if okB {
				rb = m.rec(vb)
			}
			res := record.Merge3(base, ra, rb, mc.PrecedenceFirst)
			if res.Conflict {
				conflicts++
			}
			if res.Deleted {
				delete(merged, pk)
			} else {
				merged[pk] = string(res.Record.Bytes())
			}
		}
	}
	m.branches[into] = merged
	m.commits[mc.ID] = merged.clone()
	return conflicts
}
