package enginetest

// Core-level schema evolution across every engine configuration
// (including the tuple-oriented tf index the facade never selects):
// add a column with a default on one branch, commit on two diverging
// branches, close/reopen, and verify historical reads decode without
// rewrites and the three-way merge resolves rows from mixed schema
// versions.

import (
	"testing"

	"decibel/internal/core"
	"decibel/internal/record"
	"decibel/internal/vgraph"
)

func TestSchemaEvolutionAcrossReopen(t *testing.T) {
	for _, tc := range engineCases() {
		t.Run(tc.name, func(t *testing.T) {
			dir := t.TempDir()
			db := openDB(t, dir, tc.factory, tc.opt)
			schema := testSchema()
			if _, err := db.CreateTable("t", schema); err != nil {
				t.Fatal(err)
			}
			master, _, err := db.Init("init")
			if err != nil {
				t.Fatal(err)
			}
			tbl, _ := db.Table("t")
			for pk := int64(1); pk <= 4; pk++ {
				if err := tbl.Insert(master.ID, simpleRec(schema, pk, 10*pk)); err != nil {
					t.Fatal(err)
				}
			}
			base, err := db.Commit(master.ID, "seed")
			if err != nil {
				t.Fatal(err)
			}
			dev, err := db.Branch("dev", base.ID)
			if err != nil {
				t.Fatal(err)
			}
			// master diverges in the old shape: pk 2's value changes.
			if err := tbl.Insert(master.ID, simpleRec(schema, 2, 222)); err != nil {
				t.Fatal(err)
			}
			if _, err := db.Commit(master.ID, "old-shape update"); err != nil {
				t.Fatal(err)
			}
			// dev evolves the schema through a session commit.
			s, err := db.NewSession()
			if err != nil {
				t.Fatal(err)
			}
			if err := s.Checkout("dev"); err != nil {
				t.Fatal(err)
			}
			if err := s.AddColumn("t", record.Column{Name: "extra", Type: record.Int64}, int64(77)); err != nil {
				t.Fatal(err)
			}
			if _, err := s.CommitWorkContext(t.Context(), "add extra"); err != nil {
				t.Fatal(err)
			}
			s.Close()
			// dev writes the new shape: pk 2 gains an extra value while
			// keeping the branch-point v (so the merge sees disjoint
			// field changes on the two sides), pk 5 is brand new.
			wide := tbl.Schema()
			ei := wide.ColumnIndex("extra")
			if ei < 0 {
				t.Fatalf("latest schema misses extra: %v", wide)
			}
			w := record.New(wide)
			w.SetPK(2)
			w.Set(1, 20)
			w.Set(ei, 2222)
			if err := tbl.Insert(dev.ID, w); err != nil {
				t.Fatal(err)
			}
			w = record.New(wide)
			w.SetPK(5)
			w.Set(1, 50)
			w.Set(ei, 55)
			if err := tbl.Insert(dev.ID, w); err != nil {
				t.Fatal(err)
			}
			if _, err := db.Commit(dev.ID, "wide rows"); err != nil {
				t.Fatal(err)
			}
			// Merge dev into master: pk 2's qty changed on master, its
			// extra on dev — a three-way merge across schema versions.
			if _, _, err := db.Merge(master.ID, dev.ID, "merge dev", core.ThreeWay, true); err != nil {
				t.Fatal(err)
			}
			if err := db.Close(); err != nil {
				t.Fatal(err)
			}

			db = openDB(t, dir, tc.factory, tc.opt)
			defer db.Close()
			tbl, _ = db.Table("t")
			// The pre-change commit still decodes in its own shape.
			rowsAt, errAt := tbl.RowsAt(base)
			n := 0
			for rec := range rowsAt {
				n++
				if rec.Schema().ColumnIndex("extra") >= 0 {
					t.Fatal("pre-change commit row shows the later-added column")
				}
				if rec.Schema().NumColumns() != schema.NumColumns() {
					t.Fatalf("pre-change commit row has %d columns, want %d",
						rec.Schema().NumColumns(), schema.NumColumns())
				}
			}
			if err := errAt(); err != nil {
				t.Fatal(err)
			}
			if n != 4 {
				t.Fatalf("pre-change commit has %d rows, want 4", n)
			}
			// The merged master head carries the merged fields and fills
			// the default for rows that never wrote the column.
			mb, ok := db.Graph().BranchByName(vgraph.MasterName)
			if !ok {
				t.Fatal("master branch missing after reopen")
			}
			extra := make(map[int64]int64)
			vals := make(map[int64]int64)
			rows, rowsErr := tbl.Rows(mb.ID)
			for rec := range rows {
				i := rec.Schema().ColumnIndex("extra")
				if i < 0 {
					t.Fatalf("merged head row lacks extra: %v", rec)
				}
				extra[rec.PK()] = rec.Get(i)
				vals[rec.PK()] = rec.Get(1)
			}
			if err := rowsErr(); err != nil {
				t.Fatal(err)
			}
			if len(extra) != 5 {
				t.Fatalf("merged master has %d rows, want 5", len(extra))
			}
			if vals[2] != 222 || extra[2] != 2222 {
				t.Fatalf("three-way merge across versions wrong for pk2: v=%d extra=%d (want 222, 2222)",
					vals[2], extra[2])
			}
			if extra[1] != 77 || extra[5] != 55 {
				t.Fatalf("defaults wrong after merge: %v", extra)
			}
		})
	}
}
