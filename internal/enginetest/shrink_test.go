package enginetest

import (
	"fmt"
	"math/rand"
	"sort"
	"testing"

	"decibel/internal/core"
	"decibel/internal/record"
	"decibel/internal/vf"
	"decibel/internal/vgraph"
)

// TestVFShrink fuzzes the version-first engine against the model with
// many small seeded workloads; on failure it prints a minimal replay
// trace. Version-first has the subtlest merge machinery (lineage
// intervals plus overrides), so it gets this dedicated shrinker on top
// of the cross-engine differential tests.
func TestVFShrink(t *testing.T) {
	seeds := int64(40)
	if !testing.Short() {
		seeds = 150
	}
	for seed := int64(0); seed < seeds; seed++ {
		for _, ops := range []int{25, 50} {
			trace, ok := tryVF(t, seed, ops)
			if !ok {
				t.Logf("seed=%d ops=%d FAILS; trace:", seed, ops)
				for _, line := range trace {
					t.Log(line)
				}
				t.FailNow()
			}
		}
	}
	t.Log("no small failures found")
}

func tryVF(t *testing.T, seed int64, ops int) ([]string, bool) {
	dir := t.TempDir()
	db, err := core.Open(dir, vf.Factory, core.Options{PageSize: 4096, PoolPages: 16})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	schema := testSchema()
	if _, err := db.CreateTable("t", schema); err != nil {
		t.Fatal(err)
	}
	model := NewModel(schema)
	r := rand.New(rand.NewSource(seed))
	master, c0, err := db.Init("init")
	if err != nil {
		t.Fatal(err)
	}
	model.Init(master, c0)
	g := db.Graph()
	tbl, _ := db.Table("t")
	var trace []string
	branches := []*vgraph.Branch{master}
	commits := []*vgraph.Commit{c0}
	nextPK := int64(1)
	nextBranch := 1

	check := func() bool {
		for _, br := range g.Branches() {
			want := stateSet(model.BranchState(br.ID))
			got := make(map[string]bool)
			tbl.Scan(br.ID, func(rec *record.Record) bool { got[string(rec.Bytes())] = true; return true })
			if !setsEqual(got, want) {
				var missing, extra []int64
				wantPK := map[int64]string{}
				for pk, v := range model.BranchState(br.ID) {
					wantPK[pk] = v
				}
				gotPK := map[int64]bool{}
				tbl.Scan(br.ID, func(rec *record.Record) bool { gotPK[rec.PK()] = true; return true })
				for pk := range wantPK {
					if !gotPK[pk] {
						missing = append(missing, pk)
					}
				}
				for pk := range gotPK {
					if _, ok := wantPK[pk]; !ok {
						extra = append(extra, pk)
					}
				}
				sort.Slice(missing, func(i, j int) bool { return missing[i] < missing[j] })
				trace = append(trace, fmt.Sprintf("DIVERGE branch=%s missing=%v extra=%v", br.Name, missing, extra))
				return false
			}
		}
		return true
	}

	for op := 0; op < ops; op++ {
		switch k := r.Intn(100); {
		case k < 40:
			b := branches[r.Intn(len(branches))]
			rec := record.New(schema)
			rec.SetPK(nextPK)
			for i := 1; i < schema.NumColumns(); i++ {
				rec.Set(i, int64(op*100+i))
			}
			trace = append(trace, fmt.Sprintf("op%d insert pk=%d branch=%d", op, nextPK, b.ID))
			tbl.Insert(b.ID, rec)
			model.Insert(b.ID, rec)
			nextPK++
		case k < 55:
			b := branches[r.Intn(len(branches))]
			if pk, ok := anyKey(r, model.BranchState(b.ID)); ok {
				rec := record.New(schema)
				rec.SetPK(pk)
				for i := 1; i < schema.NumColumns(); i++ {
					rec.Set(i, int64(op*1000+i))
				}
				trace = append(trace, fmt.Sprintf("op%d update pk=%d branch=%d", op, pk, b.ID))
				tbl.Insert(b.ID, rec)
				model.Insert(b.ID, rec)
			}
		case k < 65:
			b := branches[r.Intn(len(branches))]
			if pk, ok := anyKey(r, model.BranchState(b.ID)); ok {
				trace = append(trace, fmt.Sprintf("op%d delete pk=%d branch=%d", op, pk, b.ID))
				tbl.Delete(b.ID, pk)
				model.Delete(b.ID, pk)
			}
		case k < 78:
			b := branches[r.Intn(len(branches))]
			c, err := db.Commit(b.ID, "c")
			if err != nil {
				t.Fatal(err)
			}
			model.Commit(c)
			commits = append(commits, c)
			trace = append(trace, fmt.Sprintf("op%d commit branch=%d -> c%d", op, b.ID, c.ID))
		case k < 90:
			var from vgraph.CommitID
			if r.Intn(3) == 0 {
				from = commits[r.Intn(len(commits))].ID
			} else {
				pb := branches[r.Intn(len(branches))]
				cur, _ := g.Branch(pb.ID)
				from = cur.Head
			}
			nb, err := db.Branch(fmt.Sprintf("b%d", nextBranch), from)
			if err != nil {
				t.Fatal(err)
			}
			fc, _ := g.Commit(from)
			model.Branch(nb, fc)
			branches = append(branches, nb)
			trace = append(trace, fmt.Sprintf("op%d branch %s from c%d (branch %d seq %d)", op, nb.Name, from, fc.Branch, fc.Seq))
			nextBranch++
		default:
			if len(branches) < 2 {
				continue
			}
			i, j := r.Intn(len(branches)), r.Intn(len(branches))
			if i == j {
				continue
			}
			kind := core.TwoWay
			if r.Intn(2) == 0 {
				kind = core.ThreeWay
			}
			prec := r.Intn(2) == 0
			mc, _, err := db.Merge(branches[i].ID, branches[j].ID, "m", kind, prec)
			if err != nil {
				t.Fatal(err)
			}
			model.Merge(g, branches[i].ID, branches[j].ID, mc, kind)
			commits = append(commits, mc)
			trace = append(trace, fmt.Sprintf("op%d merge into=%d other=%d kind=%v precFirst=%v -> c%d", op, branches[i].ID, branches[j].ID, kind, prec, mc.ID))
		}
		if !check() {
			return trace, false
		}
	}
	return trace, true
}
