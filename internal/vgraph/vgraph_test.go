package vgraph

import (
	"math/rand"
	"path/filepath"
	"testing"
	"testing/quick"
)

func initGraph(t *testing.T) (*Graph, *Branch, *Commit) {
	t.Helper()
	g, err := New("")
	if err != nil {
		t.Fatal(err)
	}
	b, c, err := g.Init("init")
	if err != nil {
		t.Fatal(err)
	}
	return g, b, c
}

func TestInit(t *testing.T) {
	g, master, c0 := initGraph(t)
	if master.Name != MasterName || !master.Active {
		t.Fatalf("master = %+v", master)
	}
	if c0.Depth != 0 || len(c0.Parents) != 0 {
		t.Fatalf("init commit = %+v", c0)
	}
	if master.Head != c0.ID {
		t.Fatal("master head wrong")
	}
	if _, _, err := g.Init("again"); err == nil {
		t.Fatal("double init accepted")
	}
	if !g.Initialized() {
		t.Fatal("Initialized false after init")
	}
}

func TestCommitAdvancesHead(t *testing.T) {
	g, master, c0 := initGraph(t)
	c1, err := g.NewCommit(master.ID, "one")
	if err != nil {
		t.Fatal(err)
	}
	if c1.Parents[0] != c0.ID || c1.Depth != 1 || c1.Seq != 1 {
		t.Fatalf("c1 = %+v", c1)
	}
	b, _ := g.Branch(master.ID)
	if b.Head != c1.ID {
		t.Fatal("head not advanced")
	}
}

func TestBranchFromAnyCommit(t *testing.T) {
	g, master, c0 := initGraph(t)
	c1, _ := g.NewCommit(master.ID, "one")
	g.NewCommit(master.ID, "two")
	// Branch from a historical (non-head) commit.
	dev, err := g.NewBranch("dev", c1.ID)
	if err != nil {
		t.Fatal(err)
	}
	if dev.Head != c1.ID || dev.From != c1.ID || dev.Parent != master.ID {
		t.Fatalf("dev = %+v", dev)
	}
	if _, err := g.NewBranch("dev", c0.ID); err == nil {
		t.Fatal("duplicate branch name accepted")
	}
	if _, err := g.NewBranch("x", 999); err == nil {
		t.Fatal("branch from missing commit accepted")
	}
	// A commit on dev does not move master.
	cd, _ := g.NewCommit(dev.ID, "dev work")
	if cd.Seq != 0 {
		t.Fatalf("first commit on dev has seq %d", cd.Seq)
	}
	m, _ := g.Branch(master.ID)
	if m.Head == cd.ID {
		t.Fatal("commit on dev moved master head")
	}
}

func TestMergeCommit(t *testing.T) {
	g, master, c0 := initGraph(t)
	dev, _ := g.NewBranch("dev", c0.ID)
	cm, _ := g.NewCommit(master.ID, "m")
	cd, _ := g.NewCommit(dev.ID, "d")
	mc, err := g.NewMergeCommit(master.ID, dev.ID, "merge dev", true)
	if err != nil {
		t.Fatal(err)
	}
	if !mc.IsMerge() || mc.Parents[0] != cm.ID || mc.Parents[1] != cd.ID {
		t.Fatalf("merge commit = %+v", mc)
	}
	if !mc.PrecedenceFirst {
		t.Fatal("precedence lost")
	}
	m, _ := g.Branch(master.ID)
	if m.Head != mc.ID {
		t.Fatal("merge did not advance master head")
	}
	if _, err := g.NewMergeCommit(master.ID, master.ID, "self", true); err == nil {
		t.Fatal("self merge accepted")
	}
}

func TestLCALinear(t *testing.T) {
	g, master, c0 := initGraph(t)
	c1, _ := g.NewCommit(master.ID, "1")
	c2, _ := g.NewCommit(master.ID, "2")
	if got := g.LCA(c1.ID, c2.ID); got != c1.ID {
		t.Fatalf("LCA linear = %d, want %d", got, c1.ID)
	}
	if got := g.LCA(c0.ID, c2.ID); got != c0.ID {
		t.Fatalf("LCA with root = %d", got)
	}
	if got := g.LCA(c2.ID, c2.ID); got != c2.ID {
		t.Fatalf("LCA self = %d", got)
	}
}

func TestLCAFork(t *testing.T) {
	g, master, _ := initGraph(t)
	c1, _ := g.NewCommit(master.ID, "1")
	dev, _ := g.NewBranch("dev", c1.ID)
	cm, _ := g.NewCommit(master.ID, "m")
	cd, _ := g.NewCommit(dev.ID, "d")
	if got := g.LCA(cm.ID, cd.ID); got != c1.ID {
		t.Fatalf("LCA fork = %d, want %d", got, c1.ID)
	}
}

func TestLCAAfterMerge(t *testing.T) {
	// Criss-cross-free: after merging dev into master, LCA(master head,
	// dev head) is dev's head itself (it is an ancestor of the merge).
	g, master, c0 := initGraph(t)
	dev, _ := g.NewBranch("dev", c0.ID)
	g.NewCommit(master.ID, "m")
	cd, _ := g.NewCommit(dev.ID, "d")
	g.NewMergeCommit(master.ID, dev.ID, "merge", true)
	m, _ := g.Branch(master.ID)
	if got := g.LCA(m.Head, cd.ID); got != cd.ID {
		t.Fatalf("LCA after merge = %d, want %d", got, cd.ID)
	}
}

func TestIsAncestor(t *testing.T) {
	g, master, c0 := initGraph(t)
	c1, _ := g.NewCommit(master.ID, "1")
	dev, _ := g.NewBranch("dev", c0.ID)
	cd, _ := g.NewCommit(dev.ID, "d")
	if !g.IsAncestor(c0.ID, c1.ID) || !g.IsAncestor(c0.ID, cd.ID) {
		t.Fatal("root not ancestor of descendants")
	}
	if g.IsAncestor(c1.ID, cd.ID) || g.IsAncestor(cd.ID, c1.ID) {
		t.Fatal("siblings reported as ancestors")
	}
}

func TestFirstParentChain(t *testing.T) {
	g, master, c0 := initGraph(t)
	c1, _ := g.NewCommit(master.ID, "1")
	dev, _ := g.NewBranch("dev", c1.ID)
	g.NewCommit(dev.ID, "d")
	mc, _ := g.NewMergeCommit(master.ID, dev.ID, "merge", true)
	chain := g.FirstParentChain(mc.ID)
	want := []CommitID{mc.ID, c1.ID, c0.ID}
	if len(chain) != len(want) {
		t.Fatalf("chain = %v", chain)
	}
	for i := range want {
		if chain[i] != want[i] {
			t.Fatalf("chain = %v, want %v", chain, want)
		}
	}
}

func TestTopoOrder(t *testing.T) {
	g, master, c0 := initGraph(t)
	dev, _ := g.NewBranch("dev", c0.ID)
	cm, _ := g.NewCommit(master.ID, "m")
	cd, _ := g.NewCommit(dev.ID, "d")
	mc, _ := g.NewMergeCommit(master.ID, dev.ID, "merge", true)
	order := g.TopoOrder(mc.ID, cd.ID)
	pos := make(map[CommitID]int)
	for i, id := range order {
		if _, dup := pos[id]; dup {
			t.Fatalf("duplicate %d in topo order %v", id, order)
		}
		pos[id] = i
	}
	for _, pair := range [][2]CommitID{{c0.ID, cm.ID}, {c0.ID, cd.ID}, {cm.ID, mc.ID}, {cd.ID, mc.ID}} {
		if pos[pair[0]] >= pos[pair[1]] {
			t.Fatalf("topo order violated for %v: %v", pair, order)
		}
	}
}

func TestHeadsAndActive(t *testing.T) {
	g, master, c0 := initGraph(t)
	dev, _ := g.NewBranch("dev", c0.ID)
	heads := g.Heads()
	if len(heads) != 2 {
		t.Fatalf("heads = %v", heads)
	}
	if err := g.SetActive(dev.ID, false); err != nil {
		t.Fatal(err)
	}
	d, _ := g.Branch(dev.ID)
	if d.Active {
		t.Fatal("branch still active")
	}
	if err := g.SetActive(99, false); err == nil {
		t.Fatal("missing branch accepted")
	}
	_ = master
}

func TestPersistence(t *testing.T) {
	path := filepath.Join(t.TempDir(), "graph.json")
	g, err := New(path)
	if err != nil {
		t.Fatal(err)
	}
	master, c0, err := g.Init("init")
	if err != nil {
		t.Fatal(err)
	}
	dev, _ := g.NewBranch("dev", c0.ID)
	g.NewCommit(dev.ID, "work")
	mc, _ := g.NewMergeCommit(master.ID, dev.ID, "merge", false)

	g2, err := New(path)
	if err != nil {
		t.Fatal(err)
	}
	if g2.NumCommits() != g.NumCommits() {
		t.Fatalf("commit count after reload: %d != %d", g2.NumCommits(), g.NumCommits())
	}
	m2, ok := g2.BranchByName(MasterName)
	if !ok || m2.Head != mc.ID {
		t.Fatalf("master after reload = %+v", m2)
	}
	c, ok := g2.Commit(mc.ID)
	if !ok || !c.IsMerge() || c.PrecedenceFirst {
		t.Fatalf("merge commit after reload = %+v", c)
	}
	// New IDs continue past the loaded maximum.
	cN, _ := g2.NewCommit(m2.ID, "post")
	if cN.ID <= mc.ID {
		t.Fatalf("new commit id %d not past %d", cN.ID, mc.ID)
	}
}

// Property: for random graphs, the LCA is a common ancestor of both
// inputs and no deeper common ancestor exists.
func TestQuickLCAIsDeepestCommonAncestor(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		g, _ := New("")
		master, _, _ := g.Init("init")
		branches := []BranchID{master.ID}
		for op := 0; op < 40; op++ {
			switch r.Intn(3) {
			case 0:
				g.NewCommit(branches[r.Intn(len(branches))], "c")
			case 1:
				b, _ := g.Branch(branches[r.Intn(len(branches))])
				nb, err := g.NewBranch(string(rune('a'+len(branches)))+"x", b.Head)
				if err == nil {
					branches = append(branches, nb.ID)
				}
			case 2:
				if len(branches) >= 2 {
					i, j := r.Intn(len(branches)), r.Intn(len(branches))
					if i != j {
						g.NewMergeCommit(branches[i], branches[j], "m", r.Intn(2) == 0)
					}
				}
			}
		}
		bs := g.Branches()
		a := bs[r.Intn(len(bs))].Head
		b := bs[r.Intn(len(bs))].Head
		lca := g.LCA(a, b)
		if lca == None {
			return false // every pair shares the init commit
		}
		if !g.IsAncestor(lca, a) || !g.IsAncestor(lca, b) {
			return false
		}
		lc, _ := g.Commit(lca)
		aa := g.Ancestors(a)
		for id := range g.Ancestors(b) {
			if aa[id] {
				c, _ := g.Commit(id)
				if c.Depth > lc.Depth {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
