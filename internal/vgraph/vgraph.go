// Package vgraph implements Decibel's version graph (Section 2.2): a
// directed acyclic graph of immutable versions (commits) plus the set
// of named branches whose heads point into it. All three storage
// engines "depend on a version graph recording the relationships
// between the versions being available in memory" (Section 3); the
// graph is updated and persisted on disk as part of each branch or
// commit operation.
package vgraph

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"sort"
	"sync"
	"time"
)

// CommitID identifies a version. IDs are dense, starting at 1; 0 is
// the invalid/none value.
type CommitID uint64

// None is the zero CommitID.
const None CommitID = 0

// BranchID identifies a branch. Dense, starting at 0.
type BranchID uint32

// MasterName is the name of the initial branch, "the authoritative
// branch of record for the evolving dataset".
const MasterName = "master"

// Commit is one immutable version in the graph.
type Commit struct {
	ID      CommitID   `json:"id"`
	Parents []CommitID `json:"parents"` // empty for init, two for merges
	Branch  BranchID   `json:"branch"`  // branch the commit was made on
	Seq     int        `json:"seq"`     // zero-based commit index within that branch
	Message string     `json:"message"`
	Depth   int        `json:"depth"`          // longest path from the init commit
	Time    int64      `json:"time,omitempty"` // creation time, Unix seconds (0 in pre-existing graphs)
	// SchemaVer is the dataset schema epoch in effect at this commit:
	// inherited from the first parent (the max of both parents for
	// merges), bumped when the commit itself carries schema changes.
	// Reads "as of" this commit resolve the catalog at this epoch.
	SchemaVer int `json:"schemaVer,omitempty"`
	// PrecedenceFirst applies to merge commits: true if Parents[0] (the
	// branch merged into) wins conflicting fields, the paper's default
	// precedence policy.
	PrecedenceFirst bool `json:"precedenceFirst,omitempty"`
}

// IsMerge reports whether the commit has multiple parents.
func (c *Commit) IsMerge() bool { return len(c.Parents) > 1 }

// Branch is a named working copy: a head commit plus bookkeeping about
// where it branched from.
type Branch struct {
	ID     BranchID `json:"id"`
	Name   string   `json:"name"`
	Head   CommitID `json:"head"`
	From   CommitID `json:"from"`   // commit the branch was created at (None for master)
	Parent BranchID `json:"parent"` // branch it was created from (self for master)
	Active bool     `json:"active"` // benchmark strategies retire branches
}

// Graph is the in-memory version graph with on-disk persistence. All
// methods are safe for concurrent use.
type Graph struct {
	mu       sync.RWMutex
	path     string // persistence file ("" = memory only)
	commits  map[CommitID]*Commit
	branches map[BranchID]*Branch
	byName   map[string]BranchID
	nextC    CommitID
	nextB    BranchID
}

type graphFile struct {
	Commits  []*Commit `json:"commits"`
	Branches []*Branch `json:"branches"`
}

// New creates an empty graph persisted at path (empty string keeps the
// graph memory-only). If the file exists, the graph is loaded from it.
func New(path string) (*Graph, error) {
	g := &Graph{
		path:     path,
		commits:  make(map[CommitID]*Commit),
		branches: make(map[BranchID]*Branch),
		byName:   make(map[string]BranchID),
		nextC:    1,
	}
	if path != "" {
		if data, err := os.ReadFile(path); err == nil {
			if err := g.load(data); err != nil {
				return nil, err
			}
		} else if !errors.Is(err, os.ErrNotExist) {
			return nil, fmt.Errorf("vgraph: %w", err)
		}
	}
	return g, nil
}

func (g *Graph) load(data []byte) error {
	var gf graphFile
	if err := json.Unmarshal(data, &gf); err != nil {
		return fmt.Errorf("vgraph: corrupt graph file: %w", err)
	}
	for _, c := range gf.Commits {
		g.commits[c.ID] = c
		if c.ID >= g.nextC {
			g.nextC = c.ID + 1
		}
	}
	for _, b := range gf.Branches {
		g.branches[b.ID] = b
		g.byName[b.Name] = b.ID
		if b.ID >= g.nextB {
			g.nextB = b.ID + 1
		}
	}
	return nil
}

// persistLocked writes the graph to disk; caller holds g.mu.
func (g *Graph) persistLocked() error {
	if g.path == "" {
		return nil
	}
	gf := graphFile{}
	for _, c := range g.commits {
		gf.Commits = append(gf.Commits, c)
	}
	for _, b := range g.branches {
		gf.Branches = append(gf.Branches, b)
	}
	sort.Slice(gf.Commits, func(i, j int) bool { return gf.Commits[i].ID < gf.Commits[j].ID })
	sort.Slice(gf.Branches, func(i, j int) bool { return gf.Branches[i].ID < gf.Branches[j].ID })
	data, err := json.Marshal(&gf)
	if err != nil {
		return fmt.Errorf("vgraph: %w", err)
	}
	tmp := g.path + ".tmp"
	if err := os.WriteFile(tmp, data, 0o644); err != nil {
		return fmt.Errorf("vgraph: %w", err)
	}
	return os.Rename(tmp, g.path)
}

// Init creates the master branch and its initial commit (Section 2.2.3
// "Init"). It fails if the graph already has commits.
func (g *Graph) Init(message string) (*Branch, *Commit, error) {
	g.mu.Lock()
	defer g.mu.Unlock()
	if len(g.commits) != 0 {
		return nil, nil, errors.New("vgraph: already initialized")
	}
	b := &Branch{ID: g.nextB, Name: MasterName, Parent: g.nextB, Active: true}
	g.nextB++
	c := &Commit{ID: g.nextC, Branch: b.ID, Seq: 0, Message: message, Depth: 0, Time: time.Now().Unix()}
	g.nextC++
	b.Head = c.ID
	g.commits[c.ID] = c
	g.branches[b.ID] = b
	g.byName[b.Name] = b.ID
	cp := *b
	return &cp, c, g.persistLocked()
}

// Initialized reports whether Init has run.
func (g *Graph) Initialized() bool {
	g.mu.RLock()
	defer g.mu.RUnlock()
	return len(g.commits) > 0
}

// NewBranch creates a branch named name rooted at commit from. Any
// commit in any branch may serve as the branch point (Section 2.2.3).
func (g *Graph) NewBranch(name string, from CommitID) (*Branch, error) {
	g.mu.Lock()
	defer g.mu.Unlock()
	if _, dup := g.byName[name]; dup {
		return nil, fmt.Errorf("vgraph: branch %q already exists", name)
	}
	fc, ok := g.commits[from]
	if !ok {
		return nil, fmt.Errorf("vgraph: commit %d does not exist", from)
	}
	b := &Branch{ID: g.nextB, Name: name, Head: from, From: from, Parent: fc.Branch, Active: true}
	g.nextB++
	g.branches[b.ID] = b
	g.byName[name] = b.ID
	cp := *b
	return &cp, g.persistLocked()
}

// NewCommit appends a commit to the branch, advancing its head.
// Commits are only allowed at branch heads (Section 2.2.3: "Commits are
// not allowed to non-head versions of branches"), which this enforces
// by construction.
func (g *Graph) NewCommit(branch BranchID, message string) (*Commit, error) {
	return g.NewCommitSchema(branch, message, -1)
}

// NewCommitSchema is NewCommit with an explicit schema epoch stamp:
// schemaVer >= 0 marks the commit as carrying schema changes up to
// that epoch, while -1 inherits the branch head's epoch (the common
// case — most commits change data, not schema).
func (g *Graph) NewCommitSchema(branch BranchID, message string, schemaVer int) (*Commit, error) {
	g.mu.Lock()
	defer g.mu.Unlock()
	b, ok := g.branches[branch]
	if !ok {
		return nil, fmt.Errorf("vgraph: branch %d does not exist", branch)
	}
	head := g.commits[b.Head]
	if schemaVer < 0 {
		schemaVer = head.SchemaVer
	}
	c := &Commit{
		ID:        g.nextC,
		Parents:   []CommitID{b.Head},
		Branch:    branch,
		Seq:       g.seqOnBranchLocked(branch),
		Message:   message,
		Depth:     head.Depth + 1,
		Time:      time.Now().Unix(),
		SchemaVer: schemaVer,
	}
	g.nextC++
	g.commits[c.ID] = c
	b.Head = c.ID
	return c, g.persistLocked()
}

// Head returns the branch's current head commit under the graph lock —
// the cheap way to re-read just the head when a Branch snapshot may
// have gone stale (the server's snapshot pinning, head-coherence
// checks before scans).
func (g *Graph) Head(branch BranchID) (CommitID, bool) {
	g.mu.RLock()
	defer g.mu.RUnlock()
	b, ok := g.branches[branch]
	if !ok {
		return None, false
	}
	return b.Head, true
}

// MaxSchemaVer returns the newest schema epoch any commit is stamped
// with — the dataset's committed schema epoch. Crash recovery rolls
// catalog histories back to this point, so schema changes whose commit
// never made it to the graph disappear with their commit.
func (g *Graph) MaxSchemaVer() int {
	g.mu.RLock()
	defer g.mu.RUnlock()
	max := 0
	for _, c := range g.commits {
		if c.SchemaVer > max {
			max = c.SchemaVer
		}
	}
	return max
}

// seqOnBranchLocked counts prior commits made on the branch (the
// branch's own commit log index; branch creation itself makes none).
func (g *Graph) seqOnBranchLocked(branch BranchID) int {
	n := 0
	for _, c := range g.commits {
		if c.Branch == branch {
			n++
		}
	}
	return n
}

// NewMergeCommit merges the head of branch other into branch into,
// creating a commit with two parents whose first parent is into's head.
// precedenceFirst selects the paper's default conflict policy (first
// parent wins). The merged commit becomes the head of into.
func (g *Graph) NewMergeCommit(into, other BranchID, message string, precedenceFirst bool) (*Commit, error) {
	g.mu.Lock()
	defer g.mu.Unlock()
	bi, ok := g.branches[into]
	if !ok {
		return nil, fmt.Errorf("vgraph: branch %d does not exist", into)
	}
	bo, ok := g.branches[other]
	if !ok {
		return nil, fmt.Errorf("vgraph: branch %d does not exist", other)
	}
	if into == other {
		return nil, errors.New("vgraph: cannot merge a branch into itself")
	}
	d := g.commits[bi.Head].Depth
	if od := g.commits[bo.Head].Depth; od > d {
		d = od
	}
	// A merge adopts the newer schema epoch of its two parents: rows
	// inherited from the older side decode with defaults filled.
	sv := g.commits[bi.Head].SchemaVer
	if osv := g.commits[bo.Head].SchemaVer; osv > sv {
		sv = osv
	}
	c := &Commit{
		ID:              g.nextC,
		Parents:         []CommitID{bi.Head, bo.Head},
		Branch:          into,
		Seq:             g.seqOnBranchLocked(into),
		Message:         message,
		Depth:           d + 1,
		Time:            time.Now().Unix(),
		SchemaVer:       sv,
		PrecedenceFirst: precedenceFirst,
	}
	g.nextC++
	g.commits[c.ID] = c
	bi.Head = c.ID
	return c, g.persistLocked()
}

// SetActive marks a branch active or retired (benchmark strategies
// retire science/curation branches after a fixed lifetime).
func (g *Graph) SetActive(branch BranchID, active bool) error {
	g.mu.Lock()
	defer g.mu.Unlock()
	b, ok := g.branches[branch]
	if !ok {
		return fmt.Errorf("vgraph: branch %d does not exist", branch)
	}
	b.Active = active
	return g.persistLocked()
}

// Commit returns the commit with the given ID.
func (g *Graph) Commit(id CommitID) (*Commit, bool) {
	g.mu.RLock()
	defer g.mu.RUnlock()
	c, ok := g.commits[id]
	return c, ok
}

// Branch returns the branch with the given ID. Branch accessors
// return snapshot copies, never the live struct: commits advance Head
// in place under the graph lock, so a shared pointer would race with
// every unlocked field read. A snapshot may go stale — callers that
// need the freshest head re-read via Head or a fresh Branch call.
func (g *Graph) Branch(id BranchID) (*Branch, bool) {
	g.mu.RLock()
	defer g.mu.RUnlock()
	b, ok := g.branches[id]
	if !ok {
		return nil, false
	}
	cp := *b
	return &cp, true
}

// BranchByName resolves a branch name.
func (g *Graph) BranchByName(name string) (*Branch, bool) {
	g.mu.RLock()
	defer g.mu.RUnlock()
	id, ok := g.byName[name]
	if !ok {
		return nil, false
	}
	cp := *g.branches[id]
	return &cp, true
}

// Branches returns all branches ordered by ID.
func (g *Graph) Branches() []*Branch {
	g.mu.RLock()
	defer g.mu.RUnlock()
	out := make([]*Branch, 0, len(g.branches))
	for _, b := range g.branches {
		cp := *b
		out = append(out, &cp)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// Heads returns the head commit IDs of all branches, ordered by branch
// ID. These are the versions Query 4's HEAD() function selects.
func (g *Graph) Heads() []CommitID {
	bs := g.Branches()
	out := make([]CommitID, len(bs))
	for i, b := range bs {
		out[i] = b.Head
	}
	return out
}

// NumCommits returns the number of commits in the graph.
func (g *Graph) NumCommits() int {
	g.mu.RLock()
	defer g.mu.RUnlock()
	return len(g.commits)
}

// Ancestors returns the set of all ancestors of c, including c itself.
func (g *Graph) Ancestors(c CommitID) map[CommitID]bool {
	g.mu.RLock()
	defer g.mu.RUnlock()
	return g.ancestorsLocked(c)
}

func (g *Graph) ancestorsLocked(c CommitID) map[CommitID]bool {
	seen := make(map[CommitID]bool)
	stack := []CommitID{c}
	for len(stack) > 0 {
		id := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if seen[id] {
			continue
		}
		cm, ok := g.commits[id]
		if !ok {
			continue
		}
		seen[id] = true
		stack = append(stack, cm.Parents...)
	}
	return seen
}

// IsAncestor reports whether a is an ancestor of b (or equal).
func (g *Graph) IsAncestor(a, b CommitID) bool {
	return g.Ancestors(b)[a]
}

// LCA returns the lowest common ancestor of two commits: the common
// ancestor with the greatest depth. Merge conflict detection compares
// both branch heads against this commit (Section 3.2 "the lca commit is
// restored"). Returns None if the commits share no ancestor.
func (g *Graph) LCA(a, b CommitID) CommitID {
	g.mu.RLock()
	defer g.mu.RUnlock()
	aa := g.ancestorsLocked(a)
	best, bestDepth := None, -1
	for id := range g.ancestorsLocked(b) {
		if !aa[id] {
			continue
		}
		c := g.commits[id]
		if c.Depth > bestDepth || (c.Depth == bestDepth && c.ID > best) {
			best, bestDepth = id, c.Depth
		}
	}
	return best
}

// FirstParentChain returns the chain of commits from c to the init
// commit following first parents only: the linear history of the
// branch line c sits on, youngest first.
func (g *Graph) FirstParentChain(c CommitID) []CommitID {
	g.mu.RLock()
	defer g.mu.RUnlock()
	var out []CommitID
	for c != None {
		cm, ok := g.commits[c]
		if !ok {
			break
		}
		out = append(out, c)
		if len(cm.Parents) == 0 {
			break
		}
		c = cm.Parents[0]
	}
	return out
}

// TopoOrder returns every ancestor of the given commits (deduplicated)
// in a topological order where parents precede children. Version-first
// multi-branch scans visit segments in the reverse of this order.
func (g *Graph) TopoOrder(roots ...CommitID) []CommitID {
	g.mu.RLock()
	defer g.mu.RUnlock()
	state := make(map[CommitID]int) // 0 new, 1 visiting, 2 done
	var out []CommitID
	var visit func(CommitID)
	visit = func(id CommitID) {
		if state[id] != 0 {
			return
		}
		state[id] = 1
		if cm, ok := g.commits[id]; ok {
			for _, p := range cm.Parents {
				visit(p)
			}
		}
		state[id] = 2
		out = append(out, id)
	}
	for _, r := range roots {
		visit(r)
	}
	return out
}

// BranchOf returns the branch whose head is the commit, if any.
func (g *Graph) BranchOf(head CommitID) (*Branch, bool) {
	g.mu.RLock()
	defer g.mu.RUnlock()
	for _, b := range g.branches {
		if b.Head == head {
			cp := *b
			return &cp, true
		}
	}
	return nil, false
}

// CommitsOnBranch returns the commits made on the given branch in Seq
// order (the branch's own commit log).
func (g *Graph) CommitsOnBranch(branch BranchID) []*Commit {
	g.mu.RLock()
	defer g.mu.RUnlock()
	var out []*Commit
	for _, c := range g.commits {
		if c.Branch == branch {
			out = append(out, c)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Seq < out[j].Seq })
	return out
}
