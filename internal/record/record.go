// Package record implements Decibel's tuple layer: fixed-width schemas
// of integer, float and fixed-capacity byte-string columns with an
// immutable int64 primary key in column 0, a
// compact binary codec with a per-record header (tombstone flag), and
// the field-level three-way merge used by every storage engine's merge
// operation (Section 2.2.3: "two records in Decibel are said to
// conflict if they (a) have the same primary key and (b) different
// field values", resolved field-wise against the lowest common
// ancestor).
//
// The paper's benchmark uses 1 KB records of 250 four-byte integer
// columns plus an integer primary key; Benchmark builds exactly that
// shape.
package record

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"math"
)

// Type identifies a fixed-width column type.
type Type uint8

// Supported column types.
const (
	Int32   Type = iota // 4-byte signed integer
	Int64               // 8-byte signed integer
	Float64             // 8-byte IEEE 754 double
	Bytes               // fixed-capacity byte string (capacity set per column)
)

// Width returns the encoded width of the type in bytes. Bytes columns
// have no intrinsic width — their capacity is declared per column — so
// use Column.Width for the general form.
func (t Type) Width() int {
	switch t {
	case Int32:
		return 4
	case Int64, Float64:
		return 8
	default:
		panic(fmt.Sprintf("record: type %v has no intrinsic width", t))
	}
}

// String returns the SQL-ish name of the type.
func (t Type) String() string {
	switch t {
	case Int32:
		return "INT"
	case Int64:
		return "BIGINT"
	case Float64:
		return "DOUBLE"
	case Bytes:
		return "BYTES"
	default:
		return fmt.Sprintf("Type(%d)", t)
	}
}

// bytesLenPrefix is the length-prefix width of a Bytes column: the
// stored value's actual length as a little-endian uint16, followed by
// Size payload bytes (records stay fixed-width, which is what lets the
// heap layer address records by slot).
const bytesLenPrefix = 2

// MaxBytesSize caps the declared capacity of a Bytes column (the length
// prefix is a uint16).
const MaxBytesSize = math.MaxUint16

// Column describes one schema column. Size is the payload capacity of a
// Bytes column in bytes (1..MaxBytesSize) and must be zero for every
// other type.
type Column struct {
	Name string
	Type Type
	Size int
}

// Width returns the encoded width of the column in bytes.
func (c Column) Width() int {
	if c.Type == Bytes {
		return bytesLenPrefix + c.Size
	}
	return c.Type.Width()
}

// String renders the column as name + SQL-ish type.
func (c Column) String() string {
	if c.Type == Bytes {
		return fmt.Sprintf("%s BYTES(%d)", c.Name, c.Size)
	}
	return fmt.Sprintf("%s %v", c.Name, c.Type)
}

// Schema is an ordered list of fixed-width columns. Column 0 is always
// the int64 primary key, which Decibel uses to track records across
// versions and therefore treats as immutable.
type Schema struct {
	cols    []Column
	offsets []int // byte offset of each column within the payload
	size    int   // total encoded record size including header
}

// HeaderSize is the per-record header length in bytes: one flags byte.
const HeaderSize = 1

// Record flag bits.
const (
	// FlagTombstone marks a deletion marker: version-first cannot remove
	// records for historical reasons, so deletes "insert a special
	// record with a deleted header bit" (Section 3.3).
	FlagTombstone byte = 1 << 0
)

// NewSchema builds a schema from the given columns. The first column
// must be of type Int64; it is the primary key.
func NewSchema(cols ...Column) (*Schema, error) {
	if len(cols) == 0 {
		return nil, errors.New("record: schema needs at least the primary key column")
	}
	if cols[0].Type != Int64 {
		return nil, errors.New("record: primary key (column 0) must be Int64")
	}
	seen := make(map[string]bool, len(cols))
	s := &Schema{cols: make([]Column, len(cols)), offsets: make([]int, len(cols))}
	off := 0
	for i, c := range cols {
		if c.Name == "" {
			return nil, fmt.Errorf("record: column %d has empty name", i)
		}
		if seen[c.Name] {
			return nil, fmt.Errorf("record: duplicate column name %q", c.Name)
		}
		if c.Type > Bytes {
			return nil, fmt.Errorf("record: column %q has unknown type %d", c.Name, c.Type)
		}
		if c.Type == Bytes {
			if c.Size < 1 || c.Size > MaxBytesSize {
				return nil, fmt.Errorf("record: bytes column %q needs a size in 1..%d, got %d", c.Name, MaxBytesSize, c.Size)
			}
		} else if c.Size != 0 {
			return nil, fmt.Errorf("record: column %q of type %v must not declare a size", c.Name, c.Type)
		}
		seen[c.Name] = true
		s.cols[i] = c
		s.offsets[i] = off
		off += c.Width()
	}
	s.size = HeaderSize + off
	return s, nil
}

// MustSchema is NewSchema that panics on error, for tests and fixed
// internal schemas.
func MustSchema(cols ...Column) *Schema {
	s, err := NewSchema(cols...)
	if err != nil {
		panic(err)
	}
	return s
}

// Benchmark returns the paper's benchmark schema: an int64 primary key
// followed by extra Int32 columns, sized so that the encoded record is
// close to recordBytes (the paper fixes 1 KB records of 4-byte
// columns). extra = (recordBytes - header - 8) / 4.
func Benchmark(recordBytes int) *Schema {
	extra := (recordBytes - HeaderSize - 8) / 4
	if extra < 1 {
		extra = 1
	}
	cols := make([]Column, 1+extra)
	cols[0] = Column{Name: "id", Type: Int64}
	for i := 1; i <= extra; i++ {
		cols[i] = Column{Name: fmt.Sprintf("c%d", i), Type: Int32}
	}
	return MustSchema(cols...)
}

// NumColumns returns the number of columns, including the primary key.
func (s *Schema) NumColumns() int { return len(s.cols) }

// Column returns the i-th column descriptor.
func (s *Schema) Column(i int) Column { return s.cols[i] }

// ColumnIndex returns the index of the named column, or -1.
func (s *Schema) ColumnIndex(name string) int {
	for i, c := range s.cols {
		if c.Name == name {
			return i
		}
	}
	return -1
}

// RecordSize returns the encoded size of a record in bytes, header
// included. All records of a schema have the same size, which is what
// lets the heap layer address records by slot.
func (s *Schema) RecordSize() int { return s.size }

// ColumnOffset returns the byte offset of column i within the encoded
// record (header included). Predicate compilers use it to evaluate
// pushed-down comparisons directly on encoded buffers.
func (s *Schema) ColumnOffset(i int) int { return HeaderSize + s.offsets[i] }

// Equal reports whether two schemas have identical columns.
func (s *Schema) Equal(o *Schema) bool {
	if len(s.cols) != len(o.cols) {
		return false
	}
	for i := range s.cols {
		if s.cols[i] != o.cols[i] {
			return false
		}
	}
	return true
}

// MarshalBinary encodes the schema (for the dataset catalog file).
func (s *Schema) MarshalBinary() ([]byte, error) {
	buf := binary.AppendUvarint(nil, uint64(len(s.cols)))
	for _, c := range s.cols {
		buf = append(buf, byte(c.Type))
		buf = binary.AppendUvarint(buf, uint64(c.Size))
		buf = binary.AppendUvarint(buf, uint64(len(c.Name)))
		buf = append(buf, c.Name...)
	}
	return buf, nil
}

// UnmarshalSchema decodes a schema from the front of data, returning it
// and the number of bytes consumed.
func UnmarshalSchema(data []byte) (*Schema, int, error) {
	n, used := binary.Uvarint(data)
	if used <= 0 {
		return nil, 0, errors.New("record: truncated schema header")
	}
	pos := used
	cols := make([]Column, 0, n)
	for i := uint64(0); i < n; i++ {
		if pos >= len(data) {
			return nil, 0, errors.New("record: truncated schema column")
		}
		typ := Type(data[pos])
		pos++
		size, used := binary.Uvarint(data[pos:])
		if used <= 0 {
			return nil, 0, errors.New("record: truncated schema size")
		}
		pos += used
		l, used := binary.Uvarint(data[pos:])
		if used <= 0 || pos+used+int(l) > len(data) {
			return nil, 0, errors.New("record: truncated schema name")
		}
		pos += used
		cols = append(cols, Column{Name: string(data[pos : pos+int(l)]), Type: typ, Size: int(size)})
		pos += int(l)
	}
	s, err := NewSchema(cols...)
	if err != nil {
		return nil, 0, err
	}
	return s, pos, nil
}

// PKOf reads the primary key straight from an encoded record buffer.
// Column 0 is Int64 at a fixed offset in every schema version (the
// physical layout only appends columns), so key extraction never needs
// the buffer's schema.
func PKOf(buf []byte) int64 {
	return int64(binary.LittleEndian.Uint64(buf[HeaderSize:]))
}

// TombstoneOf reads the deletion flag straight from an encoded record
// buffer, schema-free like PKOf.
func TombstoneOf(buf []byte) bool { return buf[0]&FlagTombstone != 0 }

// Record is one fixed-width tuple: a flags header followed by the
// encoded column values. A Record owns its buffer.
type Record struct {
	schema *Schema
	buf    []byte
}

// New returns a zeroed record of the schema.
func New(s *Schema) *Record {
	return &Record{schema: s, buf: make([]byte, s.RecordSize())}
}

// FromBytes wraps an encoded record buffer. The buffer is used directly
// (not copied); it must be exactly RecordSize bytes.
func FromBytes(s *Schema, buf []byte) (*Record, error) {
	if len(buf) != s.RecordSize() {
		return nil, fmt.Errorf("record: buffer is %d bytes, schema needs %d", len(buf), s.RecordSize())
	}
	return &Record{schema: s, buf: buf}, nil
}

// Schema returns the record's schema.
func (r *Record) Schema() *Schema { return r.schema }

// Bytes returns the encoded form. The slice aliases the record.
func (r *Record) Bytes() []byte { return r.buf }

// Clone returns a deep copy.
func (r *Record) Clone() *Record {
	buf := make([]byte, len(r.buf))
	copy(buf, r.buf)
	return &Record{schema: r.schema, buf: buf}
}

// Tombstone reports whether the record is a deletion marker.
func (r *Record) Tombstone() bool { return r.buf[0]&FlagTombstone != 0 }

// SetTombstone sets or clears the deletion marker flag.
func (r *Record) SetTombstone(v bool) {
	if v {
		r.buf[0] |= FlagTombstone
	} else {
		r.buf[0] &^= FlagTombstone
	}
}

// PK returns the primary key (column 0).
func (r *Record) PK() int64 { return r.Get(0) }

// SetPK sets the primary key.
func (r *Record) SetPK(v int64) { r.Set(0, v) }

// Get returns integer column i as an int64 (Int32 columns are
// sign-extended). It panics on Float64 and Bytes columns; use GetFloat64
// or GetBytes for those.
func (r *Record) Get(i int) int64 {
	c := r.schema.cols[i]
	off := HeaderSize + r.schema.offsets[i]
	switch c.Type {
	case Int32:
		return int64(int32(binary.LittleEndian.Uint32(r.buf[off:])))
	case Int64:
		return int64(binary.LittleEndian.Uint64(r.buf[off:]))
	default:
		panic(fmt.Sprintf("record: Get on %v column %q; use the typed accessor", c.Type, c.Name))
	}
}

// Set stores v into integer column i, truncating to the column width.
// It panics on Float64 and Bytes columns; use SetFloat64 or SetBytes
// for those.
func (r *Record) Set(i int, v int64) {
	c := r.schema.cols[i]
	off := HeaderSize + r.schema.offsets[i]
	switch c.Type {
	case Int32:
		binary.LittleEndian.PutUint32(r.buf[off:], uint32(int32(v)))
	case Int64:
		binary.LittleEndian.PutUint64(r.buf[off:], uint64(v))
	default:
		panic(fmt.Sprintf("record: Set on %v column %q; use the typed accessor", c.Type, c.Name))
	}
}

// GetFloat64 returns Float64 column i.
func (r *Record) GetFloat64(i int) float64 {
	c := r.schema.cols[i]
	if c.Type != Float64 {
		panic(fmt.Sprintf("record: GetFloat64 on %v column %q", c.Type, c.Name))
	}
	off := HeaderSize + r.schema.offsets[i]
	return math.Float64frombits(binary.LittleEndian.Uint64(r.buf[off:]))
}

// SetFloat64 stores v into Float64 column i.
func (r *Record) SetFloat64(i int, v float64) {
	c := r.schema.cols[i]
	if c.Type != Float64 {
		panic(fmt.Sprintf("record: SetFloat64 on %v column %q", c.Type, c.Name))
	}
	off := HeaderSize + r.schema.offsets[i]
	binary.LittleEndian.PutUint64(r.buf[off:], math.Float64bits(v))
}

// GetBytes returns the value of Bytes column i. The slice aliases the
// record's buffer; copy it to retain it past the next mutation.
func (r *Record) GetBytes(i int) []byte {
	c := r.schema.cols[i]
	if c.Type != Bytes {
		panic(fmt.Sprintf("record: GetBytes on %v column %q", c.Type, c.Name))
	}
	off := HeaderSize + r.schema.offsets[i]
	n := int(binary.LittleEndian.Uint16(r.buf[off:]))
	if n > c.Size {
		n = c.Size // corrupt length prefix; clamp rather than slice out of the column
	}
	return r.buf[off+bytesLenPrefix : off+bytesLenPrefix+n]
}

// SetBytes stores v into Bytes column i. It fails if v exceeds the
// column's declared capacity; shorter values zero-pad the remainder so
// records with equal values stay bytewise equal.
func (r *Record) SetBytes(i int, v []byte) error {
	c := r.schema.cols[i]
	if c.Type != Bytes {
		panic(fmt.Sprintf("record: SetBytes on %v column %q", c.Type, c.Name))
	}
	if len(v) > c.Size {
		return fmt.Errorf("record: value of %d bytes exceeds capacity %d of column %q", len(v), c.Size, c.Name)
	}
	off := HeaderSize + r.schema.offsets[i]
	binary.LittleEndian.PutUint16(r.buf[off:], uint16(len(v)))
	payload := r.buf[off+bytesLenPrefix : off+bytesLenPrefix+c.Size]
	copy(payload, v)
	for j := len(v); j < c.Size; j++ {
		payload[j] = 0
	}
	return nil
}

// ColumnBytes returns the raw encoded bytes of column i (for a Bytes
// column this includes the length prefix). The slice aliases the record.
func (r *Record) ColumnBytes(i int) []byte {
	off := HeaderSize + r.schema.offsets[i]
	return r.buf[off : off+r.schema.cols[i].Width()]
}

// CopyColumn copies column i of src into r. Both records must share a
// schema; the copy is a raw byte move, so it works for every column
// type.
func (r *Record) CopyColumn(src *Record, i int) {
	copy(r.ColumnBytes(i), src.ColumnBytes(i))
}

// ColumnEq reports whether column i holds the same value in a and b.
func ColumnEq(a, b *Record, i int) bool {
	return bytes.Equal(a.ColumnBytes(i), b.ColumnBytes(i))
}

// Equal reports whether two records have identical schema and contents
// (including flags).
func (r *Record) Equal(o *Record) bool {
	if !r.schema.Equal(o.schema) || len(r.buf) != len(o.buf) {
		return false
	}
	for i := range r.buf {
		if r.buf[i] != o.buf[i] {
			return false
		}
	}
	return true
}

// String renders the record for debugging.
func (r *Record) String() string {
	s := fmt.Sprintf("(pk=%d", r.PK())
	if r.Tombstone() {
		s += " DEL"
	}
	n := r.schema.NumColumns()
	show := n
	if show > 6 {
		show = 6
	}
	for i := 1; i < show; i++ {
		c := r.schema.cols[i]
		switch c.Type {
		case Float64:
			s += fmt.Sprintf(", %s=%g", c.Name, r.GetFloat64(i))
		case Bytes:
			s += fmt.Sprintf(", %s=%q", c.Name, r.GetBytes(i))
		default:
			s += fmt.Sprintf(", %s=%d", c.Name, r.Get(i))
		}
	}
	if show < n {
		s += ", ..."
	}
	return s + ")"
}

// DiffFields returns the indices of non-key columns whose values differ
// between a and b. Both records must share a schema and primary key;
// this is the field-level comparison step of the three-way merge.
func DiffFields(a, b *Record) []int {
	var out []int
	for i := 1; i < a.schema.NumColumns(); i++ {
		if !ColumnEq(a, b, i) {
			out = append(out, i)
		}
	}
	return out
}

// MergeResult reports the outcome of a three-way record merge.
type MergeResult struct {
	Record   *Record // merged record (nil if both sides deleted)
	Conflict bool    // overlapping field updated on both sides, or delete vs modify
	Deleted  bool    // merged outcome is a deletion
}

// Merge3 performs the field-level three-way merge of Section 2.2.3.
// base is the record at the lowest common ancestor (nil if the key did
// not exist there); a and b are the records in the two branches being
// merged (nil meaning deleted/absent in that branch). precedenceA says
// which branch wins conflicting fields, implementing the paper's
// default precedence policy.
//
// Non-overlapping field updates auto-merge. Overlapping updates of the
// same field to different values are conflicts, resolved by precedence.
// Delete-versus-modify is a conflict (Section 2.2.3: "a record that was
// deleted in one version and modified in the other will generate a
// conflict"), resolved by precedence as well.
func Merge3(base, a, b *Record, precedenceA bool) MergeResult {
	aDel := a == nil || a.Tombstone()
	bDel := b == nil || b.Tombstone()
	switch {
	case aDel && bDel:
		return MergeResult{Deleted: true}
	case aDel || bDel:
		live := a
		if aDel {
			live = b
		}
		// Deleted on one side. If the surviving side did not modify the
		// record relative to base, the delete wins silently; otherwise
		// it is a delete-vs-modify conflict resolved by precedence.
		if base != nil && len(DiffFields(base, live)) == 0 {
			return MergeResult{Deleted: true}
		}
		if base == nil {
			// Added on one side only: not a conflict, keep the addition.
			return MergeResult{Record: live.Clone()}
		}
		conflictWinsDelete := (aDel && precedenceA) || (bDel && !precedenceA)
		if conflictWinsDelete {
			return MergeResult{Deleted: true, Conflict: true}
		}
		return MergeResult{Record: live.Clone(), Conflict: true}
	}
	if base == nil {
		// Inserted independently in both branches with the same key. If
		// identical there is nothing to do; otherwise every differing
		// field conflicts and precedence picks a side wholesale.
		if len(DiffFields(a, b)) == 0 {
			return MergeResult{Record: a.Clone()}
		}
		if precedenceA {
			return MergeResult{Record: a.Clone(), Conflict: true}
		}
		return MergeResult{Record: b.Clone(), Conflict: true}
	}
	da := DiffFields(base, a)
	db := DiffFields(base, b)
	merged := base.Clone()
	for _, i := range da {
		merged.CopyColumn(a, i)
	}
	conflict := false
	inA := make(map[int]bool, len(da))
	for _, i := range da {
		inA[i] = true
	}
	for _, i := range db {
		if inA[i] && !ColumnEq(a, b, i) {
			conflict = true
			if precedenceA {
				continue // keep a's value already applied
			}
		}
		if !inA[i] || !precedenceA || ColumnEq(a, b, i) {
			merged.CopyColumn(b, i)
		}
	}
	return MergeResult{Record: merged, Conflict: conflict}
}
