package record

// This file implements versioned schema evolution (ROADMAP "schema
// evolution (add-column with default) across versions"): a History is
// the ordered sequence of schema versions one table has gone through,
// keyed by the dataset-wide schema epoch stamped on every commit.
//
// The physical layout only ever appends: AddColumn places the new
// column after every existing one, and DropColumn is logical (the
// column disappears from later visible schemas but keeps its bytes in
// the physical layout). A record encoded under an older version is
// therefore a byte prefix of any newer encoding, which is what lets
// pages written before a schema change be read forever without being
// rewritten: decoding fills the declared default for columns the
// stored prefix does not contain.

import (
	"encoding/binary"
	"fmt"
	"math"
	"sort"
	"sync"
)

// histCol is one column of the physical layout with its evolution
// metadata.
type histCol struct {
	col       Column
	addedIn   int    // schema epoch that introduced the column (0 = table creation)
	droppedIn int    // schema epoch from which the column is invisible (0 = never)
	def       []byte // encoded default (col.Width() bytes); nil = zero value
}

// HistoryColumn is the exported view of one physical column and its
// evolution metadata, used by the catalog to persist a History and by
// the CLI to render it.
type HistoryColumn struct {
	Col       Column
	AddedIn   int
	DroppedIn int
	Default   []byte
}

// History is the versioned schema of one table: the append-only
// physical column layout plus, per schema epoch, the visible schema as
// of that epoch. All methods are safe for concurrent use; schemas
// returned for equal inputs are pointer-identical, so callers can use
// pointer comparison as a fast path.
type History struct {
	mu    sync.RWMutex
	cols  []histCol
	epoch int // highest epoch that changed this table's schema

	physByCount map[int]*Schema // physical column count -> schema
	visByEpoch  map[int]*Schema // clamped epoch -> visible schema
	convs       map[convKey]*Conv
	storage     map[storageKey]*storageConv
	writable    map[writableKey]error
}

type convKey struct {
	physCols int
	epoch    int
}

type storageKey struct {
	src      *Schema
	physCols int
}

type writableKey struct {
	src   *Schema
	epoch int
}

// NewHistory starts a history at epoch 0 with the given base schema.
func NewHistory(base *Schema) *History {
	h := &History{
		physByCount: make(map[int]*Schema),
		visByEpoch:  make(map[int]*Schema),
		convs:       make(map[convKey]*Conv),
		storage:     make(map[storageKey]*storageConv),
		writable:    make(map[writableKey]error),
	}
	for i := 0; i < base.NumColumns(); i++ {
		h.cols = append(h.cols, histCol{col: base.Column(i)})
	}
	h.physByCount[len(h.cols)] = base
	h.visByEpoch[0] = base
	return h
}

// RestoreHistory rebuilds a history from its persisted columns (the
// catalog file). The columns must be in physical order with column 0
// the Int64 primary key.
func RestoreHistory(cols []HistoryColumn) (*History, error) {
	if len(cols) == 0 {
		return nil, fmt.Errorf("record: history needs at least the primary key column")
	}
	base := make([]Column, 0, len(cols))
	for _, c := range cols {
		if c.AddedIn == 0 {
			base = append(base, c.Col)
		}
	}
	bs, err := NewSchema(base...)
	if err != nil {
		return nil, err
	}
	h := NewHistory(bs)
	// Replay adds and drops in epoch order: a later column's add may
	// predate an earlier column's drop, and the epoch guard enforces the
	// linear chain.
	type op struct {
		epoch int
		add   *HistoryColumn
		drop  string
	}
	var ops []op
	for i := range cols {
		c := &cols[i]
		if c.AddedIn > 0 {
			ops = append(ops, op{epoch: c.AddedIn, add: c})
		}
		if c.DroppedIn > 0 {
			ops = append(ops, op{epoch: c.DroppedIn, drop: c.Col.Name})
		}
	}
	sort.SliceStable(ops, func(i, j int) bool {
		if ops[i].epoch != ops[j].epoch {
			return ops[i].epoch < ops[j].epoch
		}
		// Same epoch: adds first, preserving physical order.
		return ops[i].add != nil && ops[j].add == nil
	})
	for _, o := range ops {
		if o.add != nil {
			if err := h.AddColumnBytes(o.epoch, o.add.Col, o.add.Default); err != nil {
				return nil, err
			}
			continue
		}
		if err := h.DropColumn(o.epoch, o.drop); err != nil {
			return nil, err
		}
	}
	return h, nil
}

// Columns returns the physical layout with evolution metadata, in
// physical order (the persistence form consumed by RestoreHistory).
func (h *History) Columns() []HistoryColumn {
	h.mu.RLock()
	defer h.mu.RUnlock()
	out := make([]HistoryColumn, len(h.cols))
	for i, c := range h.cols {
		out[i] = HistoryColumn{Col: c.col, AddedIn: c.addedIn, DroppedIn: c.droppedIn, Default: c.def}
	}
	return out
}

// Epoch returns the highest schema epoch that changed this table.
func (h *History) Epoch() int {
	h.mu.RLock()
	defer h.mu.RUnlock()
	return h.epoch
}

// EncodeDefault encodes a default value for the column: nil gives the
// zero value; integers fit Int32/Int64, floats (or integers) fit
// Float64, strings and []byte fit Bytes columns.
func EncodeDefault(c Column, v any) ([]byte, error) {
	buf := make([]byte, c.Width())
	if v == nil {
		if c.Type == Bytes {
			binary.LittleEndian.PutUint16(buf, 0)
		}
		return buf, nil
	}
	switch c.Type {
	case Int32, Int64:
		n, ok := asDefInt(v)
		if !ok {
			return nil, fmt.Errorf("record: default %T does not fit %v column %q", v, c.Type, c.Name)
		}
		if c.Type == Int32 {
			if n < math.MinInt32 || n > math.MaxInt32 {
				return nil, fmt.Errorf("record: default %d overflows INT column %q", n, c.Name)
			}
			binary.LittleEndian.PutUint32(buf, uint32(int32(n)))
		} else {
			binary.LittleEndian.PutUint64(buf, uint64(n))
		}
	case Float64:
		var f float64
		switch x := v.(type) {
		case float64:
			f = x
		case float32:
			f = float64(x)
		default:
			n, ok := asDefInt(v)
			if !ok {
				return nil, fmt.Errorf("record: default %T does not fit DOUBLE column %q", v, c.Name)
			}
			f = float64(n)
		}
		binary.LittleEndian.PutUint64(buf, math.Float64bits(f))
	case Bytes:
		var b []byte
		switch x := v.(type) {
		case []byte:
			b = x
		case string:
			b = []byte(x)
		default:
			return nil, fmt.Errorf("record: default %T does not fit BYTES column %q", v, c.Name)
		}
		if len(b) > c.Size {
			return nil, fmt.Errorf("record: default of %d bytes exceeds capacity %d of column %q", len(b), c.Size, c.Name)
		}
		binary.LittleEndian.PutUint16(buf, uint16(len(b)))
		copy(buf[bytesLenPrefix:], b)
	default:
		return nil, fmt.Errorf("record: column %q has unknown type %d", c.Name, c.Type)
	}
	return buf, nil
}

func asDefInt(v any) (int64, bool) {
	switch n := v.(type) {
	case int:
		return int64(n), true
	case int8:
		return int64(n), true
	case int16:
		return int64(n), true
	case int32:
		return int64(n), true
	case int64:
		return n, true
	case uint8:
		return int64(n), true
	case uint16:
		return int64(n), true
	case uint32:
		return int64(n), true
	default:
		return 0, false
	}
}

// AddColumn appends a column at the given epoch with a default value
// (nil = zero value). The epoch must be newer than every change the
// history already holds: schema evolution is linear, one chain of
// versions for the whole dataset.
func (h *History) AddColumn(epoch int, c Column, def any) error {
	enc, err := EncodeDefault(c, def)
	if err != nil {
		return err
	}
	return h.AddColumnBytes(epoch, c, enc)
}

// AddColumnBytes is AddColumn with the default already encoded (the
// catalog-reload path). def may be nil for the zero value; otherwise it
// must be exactly c.Width() bytes.
func (h *History) AddColumnBytes(epoch int, c Column, def []byte) error {
	h.mu.Lock()
	defer h.mu.Unlock()
	// Equal epochs are allowed: one commit may batch several changes,
	// all stamped with the same new epoch.
	if epoch < h.epoch || epoch < 1 {
		return fmt.Errorf("record: schema epoch %d is older than %d", epoch, h.epoch)
	}
	if c.Name == "" {
		return fmt.Errorf("record: column has empty name")
	}
	for _, hc := range h.cols {
		if hc.col.Name == c.Name {
			return fmt.Errorf("record: column %q already exists in the table's history", c.Name)
		}
	}
	if c.Type > Bytes {
		return fmt.Errorf("record: column %q has unknown type %d", c.Name, c.Type)
	}
	if c.Type == Bytes {
		if c.Size < 1 || c.Size > MaxBytesSize {
			return fmt.Errorf("record: bytes column %q needs a size in 1..%d, got %d", c.Name, MaxBytesSize, c.Size)
		}
	} else if c.Size != 0 {
		return fmt.Errorf("record: column %q of type %v must not declare a size", c.Name, c.Type)
	}
	if def != nil && len(def) != c.Width() {
		return fmt.Errorf("record: default for column %q is %d bytes, want %d", c.Name, len(def), c.Width())
	}
	h.cols = append(h.cols, histCol{col: c, addedIn: epoch, def: def})
	h.epoch = epoch
	h.invalidateLocked()
	return nil
}

// DropColumn hides the named column from the given epoch onward. The
// drop is logical: stored records keep the column's bytes, historical
// reads at earlier epochs still see it, and the name stays reserved
// (it cannot be re-added). The primary key cannot be dropped.
func (h *History) DropColumn(epoch int, name string) error {
	h.mu.Lock()
	defer h.mu.Unlock()
	if epoch < h.epoch || epoch < 1 {
		return fmt.Errorf("record: schema epoch %d is older than %d", epoch, h.epoch)
	}
	for i := range h.cols {
		if h.cols[i].col.Name != name {
			continue
		}
		if i == 0 {
			return fmt.Errorf("record: cannot drop the primary key column %q", name)
		}
		if h.cols[i].droppedIn != 0 {
			return fmt.Errorf("record: column %q is already dropped", name)
		}
		h.cols[i].droppedIn = epoch
		h.epoch = epoch
		h.invalidateLocked()
		return nil
	}
	return fmt.Errorf("record: no column %q in the table's history", name)
}

// Revert undoes every change made at epochs greater than epoch: crash
// recovery rolls uncommitted schema changes back to the newest epoch
// any commit in the version graph was stamped with.
func (h *History) Revert(epoch int) {
	h.mu.Lock()
	defer h.mu.Unlock()
	kept := h.cols[:0]
	max := 0
	for _, c := range h.cols {
		if c.addedIn > epoch {
			continue
		}
		if c.droppedIn > epoch {
			c.droppedIn = 0
		}
		if c.addedIn > max {
			max = c.addedIn
		}
		if c.droppedIn > max {
			max = c.droppedIn
		}
		kept = append(kept, c)
	}
	h.cols = kept
	h.epoch = max
	h.invalidateLocked()
}

// invalidateLocked drops the schema and converter caches; caller holds
// h.mu exclusively.
func (h *History) invalidateLocked() {
	h.physByCount = make(map[int]*Schema)
	h.visByEpoch = make(map[int]*Schema)
	h.convs = make(map[convKey]*Conv)
	h.storage = make(map[storageKey]*storageConv)
	h.writable = make(map[writableKey]error)
}

// PhysCols returns the current number of physical columns. Engines tag
// every heap file / segment they create with this count — the file's
// schema-version id — so stored buffers can be decoded forever.
func (h *History) PhysCols() int {
	h.mu.RLock()
	defer h.mu.RUnlock()
	return len(h.cols)
}

// NumPhysAt returns the number of physical columns as of a schema
// epoch: the storage generation a branch whose head commit carries
// that epoch writes at.
func (h *History) NumPhysAt(epoch int) int {
	h.mu.RLock()
	defer h.mu.RUnlock()
	n := 0
	for _, c := range h.cols {
		if c.addedIn <= epoch {
			n++
		}
	}
	return n
}

// PhysByCount returns the physical schema of the first n columns (the
// layout of a file tagged with n). The result is cached and
// pointer-stable.
func (h *History) PhysByCount(n int) (*Schema, error) {
	h.mu.RLock()
	s, ok := h.physByCount[n]
	h.mu.RUnlock()
	if ok {
		return s, nil
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	if s, ok := h.physByCount[n]; ok {
		return s, nil
	}
	if n < 1 || n > len(h.cols) {
		return nil, fmt.Errorf("record: no physical schema with %d columns (history has %d)", n, len(h.cols))
	}
	cols := make([]Column, n)
	for i := 0; i < n; i++ {
		cols[i] = h.cols[i].col
	}
	s, err := NewSchema(cols...)
	if err != nil {
		return nil, err
	}
	h.physByCount[n] = s
	return s, nil
}

// PhysLatest returns the current physical schema (every column ever
// added, dropped ones included).
func (h *History) PhysLatest() *Schema {
	s, err := h.PhysByCount(h.PhysCols())
	if err != nil {
		panic(err) // the full physical layout always forms a valid schema
	}
	return s
}

// VisibleAt returns the schema visible as of a schema epoch: columns
// added by then and not yet dropped. Epochs beyond the history's
// newest change clamp to the latest visible schema, so any commit's
// stamped epoch resolves. The result is cached and pointer-stable.
func (h *History) VisibleAt(epoch int) *Schema {
	h.mu.RLock()
	if epoch > h.epoch {
		epoch = h.epoch
	}
	s, ok := h.visByEpoch[epoch]
	h.mu.RUnlock()
	if ok {
		return s
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	if epoch > h.epoch {
		epoch = h.epoch
	}
	if s, ok := h.visByEpoch[epoch]; ok {
		return s
	}
	var cols []Column
	for _, c := range h.cols {
		if c.addedIn <= epoch && (c.droppedIn == 0 || c.droppedIn > epoch) {
			cols = append(cols, c.col)
		}
	}
	s, err := NewSchema(cols...)
	if err != nil {
		panic(err) // visible schemas always keep the pk and stay duplicate-free
	}
	h.visByEpoch[epoch] = s
	return s
}

// VisibleLatest returns the current visible schema — what Table.Schema
// reports and what new records are built against.
func (h *History) VisibleLatest() *Schema {
	h.mu.RLock()
	e := h.epoch
	h.mu.RUnlock()
	return h.VisibleAt(e)
}

// VisiblePhys returns, for each column of the schema visible at epoch,
// its index in the physical layout. Zone maps are kept per physical
// column of each segment; this is the mapping a pruning decision uses
// to look a predicate's (visible) column up in a segment's zones.
func (h *History) VisiblePhys(epoch int) []int {
	vis := h.VisibleAt(epoch)
	h.mu.RLock()
	defer h.mu.RUnlock()
	out := make([]int, vis.NumColumns())
	for i := 0; i < vis.NumColumns(); i++ {
		out[i] = -1
		name := vis.Column(i).Name
		for j := range h.cols {
			if h.cols[j].col.Name == name {
				out[i] = j
				break
			}
		}
	}
	return out
}

// DefaultBytes returns the encoded declared default of the physical
// column at index phys (nil means the zero value). Records stored
// before the column existed read back this value, so it participates
// in zone-map pruning for segments the column postdates.
func (h *History) DefaultBytes(phys int) []byte {
	h.mu.RLock()
	defer h.mu.RUnlock()
	if phys < 0 || phys >= len(h.cols) {
		return nil
	}
	return h.cols[phys].def
}

// ColumnEpochs reports when the named column entered (and, if dropped,
// left) the schema. ok is false for names the table never had.
func (h *History) ColumnEpochs(name string) (addedIn, droppedIn int, ok bool) {
	h.mu.RLock()
	defer h.mu.RUnlock()
	for _, c := range h.cols {
		if c.col.Name == name {
			return c.addedIn, c.droppedIn, true
		}
	}
	return 0, 0, false
}

// Conv converts stored record buffers from one physical layout to one
// visible schema. Identity conversions (the common case: data written
// at the current epoch) are free; otherwise Convert copies the shared
// prefix columns and fills declared defaults for columns the stored
// buffer predates.
type Conv struct {
	out      *Schema
	identity bool
	srcOff   []int    // per output column: byte offset in the source buffer, or -1
	width    []int    // per output column: encoded width
	defaults [][]byte // per output column: default bytes when srcOff < 0 (nil = zeros)
}

// Out returns the schema Convert's output buffers are encoded under.
func (cv *Conv) Out() *Schema { return cv.out }

// Identity reports whether Convert returns its input unchanged.
func (cv *Conv) Identity() bool { return cv.identity }

// NewScratch allocates a destination buffer for Convert.
func (cv *Conv) NewScratch() []byte { return make([]byte, cv.out.RecordSize()) }

// Convert decodes buf (a record stored under the conversion's physical
// source layout) into the output schema. Identity conversions return
// buf itself; otherwise dst (which must be Out().RecordSize() bytes) is
// filled and returned.
func (cv *Conv) Convert(buf, dst []byte) []byte {
	if cv.identity {
		return buf
	}
	dst[0] = buf[0] // header flags (tombstone)
	pos := HeaderSize
	for i, off := range cv.srcOff {
		w := cv.width[i]
		out := dst[pos : pos+w]
		switch {
		case off >= 0:
			copy(out, buf[off:off+w])
		case cv.defaults[i] != nil:
			copy(out, cv.defaults[i])
		default:
			for j := range out {
				out[j] = 0
			}
		}
		pos += w
	}
	return dst
}

// Materialize decodes buf into a freshly allocated record of the
// output schema (for callers that must retain several converted
// records at once, e.g. the three sides of a merge).
func (cv *Conv) Materialize(buf []byte) *Record {
	r := New(cv.out)
	if cv.identity {
		copy(r.buf, buf)
	} else {
		cv.Convert(buf, r.buf)
	}
	return r
}

// Conv returns the (cached) conversion from the physical layout with
// physCols columns to the schema visible at epoch.
func (h *History) Conv(physCols, epoch int) (*Conv, error) {
	h.mu.RLock()
	if epoch > h.epoch {
		epoch = h.epoch
	}
	key := convKey{physCols: physCols, epoch: epoch}
	cv, ok := h.convs[key]
	h.mu.RUnlock()
	if ok {
		return cv, nil
	}
	src, err := h.PhysByCount(physCols)
	if err != nil {
		return nil, err
	}
	out := h.VisibleAt(epoch)

	h.mu.Lock()
	defer h.mu.Unlock()
	key = convKey{physCols: physCols, epoch: epoch}
	if cv, ok := h.convs[key]; ok {
		return cv, nil
	}
	cv = &Conv{out: out, identity: out.Equal(src)}
	if !cv.identity {
		cv.srcOff = make([]int, out.NumColumns())
		cv.width = make([]int, out.NumColumns())
		cv.defaults = make([][]byte, out.NumColumns())
		for i := 0; i < out.NumColumns(); i++ {
			c := out.Column(i)
			cv.width[i] = c.Width()
			cv.srcOff[i] = -1
			for j := 0; j < physCols; j++ {
				if h.cols[j].col.Name == c.Name {
					cv.srcOff[i] = src.ColumnOffset(j)
					break
				}
			}
			if cv.srcOff[i] < 0 {
				// Column added after the buffer was stored: fill its default.
				for _, hc := range h.cols {
					if hc.col.Name == c.Name {
						cv.defaults[i] = hc.def
						break
					}
				}
			}
		}
	}
	h.convs[key] = cv
	return cv, nil
}

// storageConv widens a user-visible record into one physical layout.
type storageConv struct {
	identity bool
	out      *Schema
	srcOff   []int
	width    []int
	defaults [][]byte
}

// StorageBytes encodes rec — built under any schema this history has
// produced (a current or older visible schema, or a physical layout) —
// into the physical layout with physCols columns, filling declared
// defaults for physical columns the record's schema lacks. The
// returned buffer is dst (which must be the physical record size) or
// rec's own bytes for identity conversions. Columns in rec that are
// not part of the target layout are rejected.
func (h *History) StorageBytes(rec *Record, physCols int, dst []byte) ([]byte, error) {
	src := rec.Schema()
	h.mu.RLock()
	sc, ok := h.storage[storageKey{src: src, physCols: physCols}]
	h.mu.RUnlock()
	if !ok {
		var err error
		sc, err = h.buildStorageConv(src, physCols)
		if err != nil {
			return nil, err
		}
	}
	if sc.identity {
		return rec.Bytes(), nil
	}
	buf := rec.Bytes()
	dst[0] = buf[0]
	pos := HeaderSize
	for i, off := range sc.srcOff {
		w := sc.width[i]
		out := dst[pos : pos+w]
		switch {
		case off >= 0:
			copy(out, buf[off:off+w])
		case sc.defaults[i] != nil:
			copy(out, sc.defaults[i])
		default:
			for j := range out {
				out[j] = 0
			}
		}
		pos += w
	}
	return dst, nil
}

func (h *History) buildStorageConv(src *Schema, physCols int) (*storageConv, error) {
	out, err := h.PhysByCount(physCols)
	if err != nil {
		return nil, err
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	key := storageKey{src: src, physCols: physCols}
	if sc, ok := h.storage[key]; ok {
		return sc, nil
	}
	// The cache is keyed by caller schema pointers, which nothing forces
	// to be pointer-stable; bound it so callers that build a fresh
	// Schema per batch cannot grow it without limit.
	if len(h.storage) >= schemaCacheLimit {
		h.storage = make(map[storageKey]*storageConv)
	}
	sc := &storageConv{out: out, identity: out.Equal(src)}
	if !sc.identity {
		sc.srcOff = make([]int, out.NumColumns())
		sc.width = make([]int, out.NumColumns())
		sc.defaults = make([][]byte, out.NumColumns())
		for i := 0; i < out.NumColumns(); i++ {
			c := out.Column(i)
			sc.width[i] = c.Width()
			sc.srcOff[i] = -1
			if j := src.ColumnIndex(c.Name); j >= 0 {
				if src.Column(j) != c {
					return nil, fmt.Errorf("record: column %q changed shape between schema versions", c.Name)
				}
				sc.srcOff[i] = src.ColumnOffset(j)
			} else {
				sc.defaults[i] = h.cols[i].def
			}
		}
		// Every source column must land somewhere in the target layout,
		// or the write would silently lose data.
		for j := 0; j < src.NumColumns(); j++ {
			if out.ColumnIndex(src.Column(j).Name) < 0 {
				return nil, fmt.Errorf("record: column %q does not exist in the target storage layout", src.Column(j).Name)
			}
		}
	}
	h.storage[key] = sc
	return sc, nil
}

// CheckWritable reports whether records built under schema s may be
// written to a branch whose head commit carries the given schema
// epoch: every column of s must be part of the schema visible there.
// The error distinguishes columns added later (ErrColumnNotYetAdded is
// wrapped by the caller) via ColumnEpochs.
func (h *History) CheckWritable(s *Schema, epoch int) error {
	h.mu.RLock()
	if epoch > h.epoch {
		epoch = h.epoch
	}
	key := writableKey{src: s, epoch: epoch}
	err, ok := h.writable[key]
	h.mu.RUnlock()
	if ok {
		return err
	}
	vis := h.VisibleAt(epoch)
	err = nil
	if !vis.Equal(s) {
		for i := 0; i < s.NumColumns(); i++ {
			c := s.Column(i)
			j := vis.ColumnIndex(c.Name)
			if j < 0 {
				err = fmt.Errorf("record: column %q is not in the schema visible at epoch %d", c.Name, epoch)
				break
			}
			if vis.Column(j) != c {
				err = fmt.Errorf("record: column %q changed shape between schema versions", c.Name)
				break
			}
		}
	}
	h.mu.Lock()
	if len(h.writable) >= schemaCacheLimit {
		h.writable = make(map[writableKey]error)
	}
	h.writable[key] = err
	h.mu.Unlock()
	return err
}

// schemaCacheLimit bounds the pointer-keyed memo maps (writable checks
// and storage conversions): schemas are few in practice — the cached
// VisibleAt/PhysByCount instances — but callers may legally build fresh
// ones, and an unbounded memo would leak one entry per instance.
const schemaCacheLimit = 128
