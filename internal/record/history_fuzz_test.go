package record

import (
	"bytes"
	"testing"
)

// FuzzRecordDecodeVersioned drives the versioned decode path with
// arbitrary stored bytes and evolution shapes: whatever the inputs,
// conversion must never panic, must preserve the shared prefix columns
// byte-for-byte, and must fill the declared default (or zeros) for
// every column the stored buffer predates.
func FuzzRecordDecodeVersioned(f *testing.F) {
	f.Add([]byte{0}, uint8(1), uint8(0), int64(42))
	f.Add([]byte{1, 2, 3, 4, 5, 6, 7, 8, 9}, uint8(3), uint8(2), int64(-7))
	f.Add(bytes.Repeat([]byte{0xff}, 64), uint8(4), uint8(4), int64(0))

	f.Fuzz(func(t *testing.T, raw []byte, extraCols, readEpoch uint8, defVal int64) {
		base := MustSchema(
			Column{Name: "id", Type: Int64},
			Column{Name: "v", Type: Int32},
		)
		h := NewHistory(base)
		nExtra := int(extraCols % 5)
		for i := 0; i < nExtra; i++ {
			c := Column{Name: string(rune('a' + i)), Type: Int64}
			if i%2 == 1 {
				c = Column{Name: string(rune('a' + i)), Type: Int32}
			}
			if err := h.AddColumn(i+1, c, defVal+int64(i)); err != nil {
				t.Fatalf("AddColumn: %v", err)
			}
		}

		for physCols := 2; physCols <= h.PhysCols(); physCols++ {
			src, err := h.PhysByCount(physCols)
			if err != nil {
				t.Fatalf("PhysByCount(%d): %v", physCols, err)
			}
			// Shape the fuzz input into one stored record of this layout.
			buf := make([]byte, src.RecordSize())
			copy(buf, raw)
			epoch := int(readEpoch % uint8(nExtra+1))
			cv, err := h.Conv(physCols, epoch)
			if err != nil {
				t.Fatalf("Conv(%d,%d): %v", physCols, epoch, err)
			}
			out := cv.Convert(buf, cv.NewScratch())
			rec, err := FromBytes(cv.Out(), out)
			if err != nil {
				t.Fatalf("converted buffer has wrong size: %v", err)
			}
			// Shared columns survive byte-for-byte.
			stored, err := FromBytes(src, buf)
			if err != nil {
				t.Fatal(err)
			}
			if rec.PK() != stored.PK() {
				t.Fatalf("pk changed: %d != %d", rec.PK(), stored.PK())
			}
			if rec.Tombstone() != stored.Tombstone() {
				t.Fatal("tombstone flag changed")
			}
			outSchema := cv.Out()
			for i := 0; i < outSchema.NumColumns(); i++ {
				name := outSchema.Column(i).Name
				if j := src.ColumnIndex(name); j >= 0 {
					if !bytes.Equal(rec.ColumnBytes(i), stored.ColumnBytes(j)) {
						t.Fatalf("column %q not preserved", name)
					}
					continue
				}
				// Added after the buffer was stored: the declared default.
				addedIn, _, _ := h.ColumnEpochs(name)
				want := defVal + int64(addedIn-1)
				if got := rec.Get(i); got != want {
					t.Fatalf("column %q default = %d, want %d", name, got, want)
				}
			}
		}
	})
}
