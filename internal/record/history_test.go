package record

import (
	"bytes"
	"testing"
)

func baseSchema(t *testing.T) *Schema {
	t.Helper()
	return MustSchema(
		Column{Name: "id", Type: Int64},
		Column{Name: "qty", Type: Int32},
	)
}

func TestHistoryAddColumnVisibility(t *testing.T) {
	h := NewHistory(baseSchema(t))
	if err := h.AddColumn(1, Column{Name: "price", Type: Float64}, 9.5); err != nil {
		t.Fatal(err)
	}
	if err := h.AddColumn(2, Column{Name: "sku", Type: Bytes, Size: 8}, "none"); err != nil {
		t.Fatal(err)
	}
	if got := h.Epoch(); got != 2 {
		t.Fatalf("epoch = %d, want 2", got)
	}
	if n := h.VisibleAt(0).NumColumns(); n != 2 {
		t.Fatalf("visible@0 has %d columns, want 2", n)
	}
	if n := h.VisibleAt(1).NumColumns(); n != 3 {
		t.Fatalf("visible@1 has %d columns, want 3", n)
	}
	if n := h.VisibleLatest().NumColumns(); n != 4 {
		t.Fatalf("visible latest has %d columns, want 4", n)
	}
	// Epochs beyond the newest change clamp.
	if h.VisibleAt(99) != h.VisibleLatest() {
		t.Fatal("visible schema beyond the last change should clamp to latest")
	}
	// Pointer stability: same inputs, same schema.
	if h.VisibleAt(1) != h.VisibleAt(1) {
		t.Fatal("VisibleAt is not pointer-stable")
	}
	if h.NumPhysAt(0) != 2 || h.NumPhysAt(1) != 3 || h.NumPhysAt(2) != 4 {
		t.Fatalf("NumPhysAt = %d/%d/%d, want 2/3/4", h.NumPhysAt(0), h.NumPhysAt(1), h.NumPhysAt(2))
	}
}

func TestHistoryAddColumnValidation(t *testing.T) {
	h := NewHistory(baseSchema(t))
	if err := h.AddColumn(1, Column{Name: "qty", Type: Int32}, nil); err == nil {
		t.Fatal("duplicate column name accepted")
	}
	if err := h.AddColumn(0, Column{Name: "x", Type: Int32}, nil); err == nil {
		t.Fatal("stale epoch accepted")
	}
	if err := h.AddColumn(1, Column{Name: "x", Type: Int32}, "not-an-int"); err == nil {
		t.Fatal("ill-typed default accepted")
	}
	if err := h.AddColumn(1, Column{Name: "x", Type: Bytes, Size: 4}, "toolong"); err == nil {
		t.Fatal("oversized bytes default accepted")
	}
}

func TestHistoryConvFillsDefaults(t *testing.T) {
	h := NewHistory(baseSchema(t))
	old := New(h.VisibleAt(0))
	old.SetPK(7)
	old.Set(1, 42)

	if err := h.AddColumn(1, Column{Name: "price", Type: Float64}, 2.5); err != nil {
		t.Fatal(err)
	}
	cv, err := h.Conv(2, 1) // stored with 2 physical columns, read at epoch 1
	if err != nil {
		t.Fatal(err)
	}
	if cv.Identity() {
		t.Fatal("conversion across an added column cannot be identity")
	}
	out := cv.Convert(old.Bytes(), cv.NewScratch())
	rec, err := FromBytes(cv.Out(), out)
	if err != nil {
		t.Fatal(err)
	}
	if rec.PK() != 7 || rec.Get(1) != 42 {
		t.Fatalf("shared prefix lost: pk=%d qty=%d", rec.PK(), rec.Get(1))
	}
	if got := rec.GetFloat64(2); got != 2.5 {
		t.Fatalf("default not filled: price=%g, want 2.5", got)
	}

	// Reading the same buffer at epoch 0 is the identity conversion.
	cv0, err := h.Conv(2, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !cv0.Identity() {
		t.Fatal("same-version read should be identity")
	}
}

func TestHistoryDropColumnLogical(t *testing.T) {
	h := NewHistory(baseSchema(t))
	if err := h.AddColumn(1, Column{Name: "price", Type: Float64}, 1.0); err != nil {
		t.Fatal(err)
	}
	if err := h.DropColumn(2, "qty"); err != nil {
		t.Fatal(err)
	}
	if err := h.DropColumn(3, "id"); err == nil {
		t.Fatal("dropping the primary key accepted")
	}
	vis := h.VisibleLatest()
	if vis.ColumnIndex("qty") >= 0 {
		t.Fatal("dropped column still visible")
	}
	if h.VisibleAt(1).ColumnIndex("qty") < 0 {
		t.Fatal("historical read lost the dropped column")
	}
	// Physical layout keeps the column.
	if h.PhysCols() != 3 {
		t.Fatalf("physical columns = %d, want 3", h.PhysCols())
	}
	// A v0 buffer read at epoch 2: qty projected away, price defaulted.
	old := New(h.VisibleAt(0))
	old.SetPK(1)
	old.Set(1, 9)
	cv, err := h.Conv(2, 2)
	if err != nil {
		t.Fatal(err)
	}
	rec, err := FromBytes(cv.Out(), cv.Convert(old.Bytes(), cv.NewScratch()))
	if err != nil {
		t.Fatal(err)
	}
	if rec.Schema().ColumnIndex("qty") >= 0 {
		t.Fatal("dropped column leaked into converted record")
	}
	if rec.GetFloat64(rec.Schema().ColumnIndex("price")) != 1.0 {
		t.Fatal("default not filled after drop")
	}
	// The dropped name stays reserved.
	if err := h.AddColumn(3, Column{Name: "qty", Type: Int32}, nil); err == nil {
		t.Fatal("re-adding a dropped column name accepted")
	}
}

func TestHistoryStorageBytes(t *testing.T) {
	h := NewHistory(baseSchema(t))
	oldVis := h.VisibleAt(0)
	if err := h.AddColumn(1, Column{Name: "price", Type: Float64}, 3.25); err != nil {
		t.Fatal(err)
	}
	// A record built under the old visible schema widens with defaults.
	rec := New(oldVis)
	rec.SetPK(5)
	rec.Set(1, 11)
	dst := make([]byte, h.PhysLatest().RecordSize())
	buf, err := h.StorageBytes(rec, 3, dst)
	if err != nil {
		t.Fatal(err)
	}
	wide, err := FromBytes(h.PhysLatest(), buf)
	if err != nil {
		t.Fatal(err)
	}
	if wide.PK() != 5 || wide.Get(1) != 11 || wide.GetFloat64(2) != 3.25 {
		t.Fatalf("widened record wrong: %v", wide)
	}
	// A record already at the physical layout passes through untouched.
	cur := New(h.PhysLatest())
	cur.SetPK(6)
	got, err := h.StorageBytes(cur, 3, dst)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, cur.Bytes()) {
		t.Fatal("identity storage conversion copied")
	}
}

func TestHistoryRevert(t *testing.T) {
	h := NewHistory(baseSchema(t))
	if err := h.AddColumn(1, Column{Name: "price", Type: Float64}, nil); err != nil {
		t.Fatal(err)
	}
	if err := h.DropColumn(2, "qty"); err != nil {
		t.Fatal(err)
	}
	h.Revert(1) // the drop at epoch 2 never committed
	if h.Epoch() != 1 {
		t.Fatalf("epoch after revert = %d, want 1", h.Epoch())
	}
	if h.VisibleLatest().ColumnIndex("qty") < 0 {
		t.Fatal("reverted drop still hides the column")
	}
	h.Revert(0)
	if h.PhysCols() != 2 || h.Epoch() != 0 {
		t.Fatalf("full revert left %d cols at epoch %d", h.PhysCols(), h.Epoch())
	}
}

func TestHistoryRestoreRoundTrip(t *testing.T) {
	h := NewHistory(baseSchema(t))
	if err := h.AddColumn(1, Column{Name: "price", Type: Float64}, 7.5); err != nil {
		t.Fatal(err)
	}
	if err := h.DropColumn(2, "qty"); err != nil {
		t.Fatal(err)
	}
	r, err := RestoreHistory(h.Columns())
	if err != nil {
		t.Fatal(err)
	}
	if r.Epoch() != h.Epoch() || r.PhysCols() != h.PhysCols() {
		t.Fatalf("restored epoch/cols %d/%d, want %d/%d", r.Epoch(), r.PhysCols(), h.Epoch(), h.PhysCols())
	}
	if !r.VisibleLatest().Equal(h.VisibleLatest()) {
		t.Fatal("restored visible schema differs")
	}
	for e := 0; e <= h.Epoch(); e++ {
		if !r.VisibleAt(e).Equal(h.VisibleAt(e)) {
			t.Fatalf("restored visible schema differs at epoch %d", e)
		}
	}
}

func TestHistoryCheckWritable(t *testing.T) {
	h := NewHistory(baseSchema(t))
	v0 := h.VisibleAt(0)
	if err := h.AddColumn(1, Column{Name: "price", Type: Float64}, nil); err != nil {
		t.Fatal(err)
	}
	v1 := h.VisibleLatest()
	if err := h.CheckWritable(v0, 1); err != nil {
		t.Fatalf("old-schema write to new epoch rejected: %v", err)
	}
	if err := h.CheckWritable(v1, 0); err == nil {
		t.Fatal("new-column write to an old epoch accepted")
	}
	if err := h.CheckWritable(v1, 1); err != nil {
		t.Fatalf("current write rejected: %v", err)
	}
}
