package record

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func testSchema(t *testing.T) *Schema {
	t.Helper()
	return MustSchema(
		Column{Name: "id", Type: Int64},
		Column{Name: "a", Type: Int32},
		Column{Name: "b", Type: Int32},
		Column{Name: "c", Type: Int64},
	)
}

func TestSchemaValidation(t *testing.T) {
	if _, err := NewSchema(); err == nil {
		t.Fatal("empty schema accepted")
	}
	if _, err := NewSchema(Column{Name: "id", Type: Int32}); err == nil {
		t.Fatal("non-int64 primary key accepted")
	}
	if _, err := NewSchema(Column{Name: "id", Type: Int64}, Column{Name: "id", Type: Int32}); err == nil {
		t.Fatal("duplicate column name accepted")
	}
	if _, err := NewSchema(Column{Name: "id", Type: Int64}, Column{Name: "", Type: Int32}); err == nil {
		t.Fatal("empty column name accepted")
	}
}

func TestSchemaLayout(t *testing.T) {
	s := testSchema(t)
	if got, want := s.RecordSize(), HeaderSize+8+4+4+8; got != want {
		t.Fatalf("record size = %d, want %d", got, want)
	}
	if s.NumColumns() != 4 {
		t.Fatalf("num columns = %d", s.NumColumns())
	}
	if s.ColumnIndex("b") != 2 || s.ColumnIndex("zz") != -1 {
		t.Fatal("ColumnIndex wrong")
	}
	if s.Column(3).Type != Int64 {
		t.Fatal("column type wrong")
	}
}

func TestBenchmarkSchemaMatchesPaper(t *testing.T) {
	s := Benchmark(1024)
	// Paper: 1 KB records, 4-byte columns, single integer primary key.
	if s.RecordSize() > 1024 || s.RecordSize() < 1024-4 {
		t.Fatalf("benchmark record size = %d, want ~1024", s.RecordSize())
	}
	if got := s.NumColumns(); got < 250 {
		t.Fatalf("benchmark columns = %d, want >= 250", got)
	}
}

func TestRecordGetSet(t *testing.T) {
	s := testSchema(t)
	r := New(s)
	r.SetPK(42)
	r.Set(1, -7)
	r.Set(2, 1<<30)
	r.Set(3, -1<<40)
	if r.PK() != 42 || r.Get(1) != -7 || r.Get(2) != 1<<30 || r.Get(3) != -1<<40 {
		t.Fatalf("round trip values wrong: %v", r)
	}
	// Int32 truncation is defined behaviour.
	r.Set(1, 1<<33|5)
	if r.Get(1) != 5 {
		t.Fatalf("int32 truncation: got %d", r.Get(1))
	}
}

func TestRecordTombstone(t *testing.T) {
	s := testSchema(t)
	r := New(s)
	if r.Tombstone() {
		t.Fatal("fresh record is tombstone")
	}
	r.SetTombstone(true)
	if !r.Tombstone() {
		t.Fatal("tombstone not set")
	}
	r.SetTombstone(false)
	if r.Tombstone() {
		t.Fatal("tombstone not cleared")
	}
}

func TestRecordBytesRoundTrip(t *testing.T) {
	s := testSchema(t)
	r := New(s)
	r.SetPK(9)
	r.Set(2, 77)
	r.SetTombstone(true)
	got, err := FromBytes(s, append([]byte(nil), r.Bytes()...))
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(r) {
		t.Fatal("FromBytes round trip mismatch")
	}
	if _, err := FromBytes(s, make([]byte, 3)); err == nil {
		t.Fatal("short buffer accepted")
	}
}

func TestRecordCloneIndependence(t *testing.T) {
	s := testSchema(t)
	r := New(s)
	r.SetPK(1)
	c := r.Clone()
	c.Set(1, 99)
	if r.Get(1) == 99 {
		t.Fatal("clone aliases original")
	}
}

func TestSchemaMarshalRoundTrip(t *testing.T) {
	s := testSchema(t)
	data, err := s.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	got, used, err := UnmarshalSchema(data)
	if err != nil {
		t.Fatal(err)
	}
	if used != len(data) || !got.Equal(s) {
		t.Fatal("schema round trip mismatch")
	}
	for cut := 0; cut < len(data); cut++ {
		if _, _, err := UnmarshalSchema(data[:cut]); err == nil {
			t.Fatalf("truncated schema at %d accepted", cut)
		}
	}
}

func TestDiffFields(t *testing.T) {
	s := testSchema(t)
	a := New(s)
	b := New(s)
	a.SetPK(1)
	b.SetPK(1)
	if got := DiffFields(a, b); len(got) != 0 {
		t.Fatalf("identical records differ: %v", got)
	}
	b.Set(1, 5)
	b.Set(3, 6)
	if got := DiffFields(a, b); len(got) != 2 || got[0] != 1 || got[1] != 3 {
		t.Fatalf("diff fields = %v", got)
	}
}

func mk(t *testing.T, s *Schema, pk int64, vals ...int64) *Record {
	t.Helper()
	r := New(s)
	r.SetPK(pk)
	for i, v := range vals {
		r.Set(i+1, v)
	}
	return r
}

func TestMerge3NonOverlappingAutoMerge(t *testing.T) {
	s := testSchema(t)
	base := mk(t, s, 1, 10, 20, 30)
	a := mk(t, s, 1, 11, 20, 30)  // changed col1
	b2 := mk(t, s, 1, 10, 20, 33) // changed col3
	res := Merge3(base, a, b2, true)
	if res.Conflict || res.Deleted {
		t.Fatalf("unexpected conflict/delete: %+v", res)
	}
	if res.Record.Get(1) != 11 || res.Record.Get(3) != 33 || res.Record.Get(2) != 20 {
		t.Fatalf("merged = %v", res.Record)
	}
}

func TestMerge3OverlappingConflictPrecedence(t *testing.T) {
	s := testSchema(t)
	base := mk(t, s, 1, 10, 20, 30)
	a := mk(t, s, 1, 11, 20, 30)
	b2 := mk(t, s, 1, 12, 20, 35)
	resA := Merge3(base, a, b2, true)
	if !resA.Conflict {
		t.Fatal("overlapping update not flagged as conflict")
	}
	if resA.Record.Get(1) != 11 {
		t.Fatalf("precedence A: col1 = %d, want 11", resA.Record.Get(1))
	}
	if resA.Record.Get(3) != 35 {
		t.Fatalf("non-conflicting field from B lost: col3 = %d", resA.Record.Get(3))
	}
	resB := Merge3(base, a, b2, false)
	if resB.Record.Get(1) != 12 || resB.Record.Get(3) != 35 {
		t.Fatalf("precedence B merged = %v", resB.Record)
	}
}

func TestMerge3SameValueBothSidesNoConflict(t *testing.T) {
	s := testSchema(t)
	base := mk(t, s, 1, 10, 20, 30)
	a := mk(t, s, 1, 15, 20, 30)
	b2 := mk(t, s, 1, 15, 20, 30)
	res := Merge3(base, a, b2, true)
	if res.Conflict {
		t.Fatal("same-value updates flagged as conflict")
	}
	if res.Record.Get(1) != 15 {
		t.Fatalf("merged col1 = %d", res.Record.Get(1))
	}
}

func TestMerge3DeleteVsUnmodified(t *testing.T) {
	s := testSchema(t)
	base := mk(t, s, 1, 10, 20, 30)
	b2 := base.Clone()
	res := Merge3(base, nil, b2, false)
	if !res.Deleted || res.Conflict {
		t.Fatalf("delete vs unmodified: %+v", res)
	}
}

func TestMerge3DeleteVsModifyConflict(t *testing.T) {
	s := testSchema(t)
	base := mk(t, s, 1, 10, 20, 30)
	mod := mk(t, s, 1, 99, 20, 30)
	// Delete in A, modify in B, A precedence: delete wins, conflict.
	res := Merge3(base, nil, mod, true)
	if !res.Conflict || !res.Deleted {
		t.Fatalf("delete-vs-modify A-precedence: %+v", res)
	}
	// B precedence: modification survives.
	res = Merge3(base, nil, mod, false)
	if !res.Conflict || res.Deleted || res.Record.Get(1) != 99 {
		t.Fatalf("delete-vs-modify B-precedence: %+v", res)
	}
}

func TestMerge3BothDeleted(t *testing.T) {
	s := testSchema(t)
	base := mk(t, s, 1, 10, 20, 30)
	res := Merge3(base, nil, nil, true)
	if !res.Deleted || res.Conflict {
		t.Fatalf("both deleted: %+v", res)
	}
}

func TestMerge3IndependentInsertsSameKey(t *testing.T) {
	s := testSchema(t)
	a := mk(t, s, 7, 1, 2, 3)
	b2 := mk(t, s, 7, 9, 2, 3)
	res := Merge3(nil, a, b2, true)
	if !res.Conflict || res.Record.Get(1) != 1 {
		t.Fatalf("independent insert conflict: %+v", res)
	}
	same := Merge3(nil, a, a.Clone(), false)
	if same.Conflict || same.Record.Get(1) != 1 {
		t.Fatalf("identical independent inserts: %+v", same)
	}
}

func TestMerge3InsertOneSide(t *testing.T) {
	s := testSchema(t)
	a := mk(t, s, 7, 1, 2, 3)
	res := Merge3(nil, a, nil, false)
	if res.Conflict || res.Deleted || !res.Record.Equal(a) {
		t.Fatalf("one-sided insert: %+v", res)
	}
}

// Property: Merge3 with precedence A and precedence B agree whenever no
// conflict is reported, and the merged record never differs from base
// on fields untouched by both sides.
func TestQuickMerge3(t *testing.T) {
	s := MustSchema(
		Column{Name: "id", Type: Int64},
		Column{Name: "a", Type: Int32},
		Column{Name: "b", Type: Int32},
		Column{Name: "c", Type: Int32},
	)
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		base := New(s)
		base.SetPK(1)
		for i := 1; i < s.NumColumns(); i++ {
			base.Set(i, int64(r.Intn(5)))
		}
		perturb := func() *Record {
			c := base.Clone()
			for i := 1; i < s.NumColumns(); i++ {
				if r.Intn(2) == 0 {
					c.Set(i, int64(r.Intn(5)))
				}
			}
			return c
		}
		a, b := perturb(), perturb()
		ra := Merge3(base, a, b, true)
		rb := Merge3(base, a, b, false)
		if ra.Conflict != rb.Conflict {
			return false
		}
		if !ra.Conflict && !ra.Record.Equal(rb.Record) {
			return false
		}
		for i := 1; i < s.NumColumns(); i++ {
			if a.Get(i) == base.Get(i) && b.Get(i) == base.Get(i) && ra.Record.Get(i) != base.Get(i) {
				return false
			}
			// Merged value must come from one of the three inputs.
			v := ra.Record.Get(i)
			if v != base.Get(i) && v != a.Get(i) && v != b.Get(i) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkRecordEncodeDecode(b *testing.B) {
	s := Benchmark(1024)
	r := New(s)
	r.SetPK(1)
	b.ReportAllocs()
	b.SetBytes(int64(s.RecordSize()))
	for i := 0; i < b.N; i++ {
		r.Set(1+i%250, int64(i))
		if _, err := FromBytes(s, r.Bytes()); err != nil {
			b.Fatal(err)
		}
	}
}

// typedSchema covers every column type: int key, int32, float64, bytes.
func typedSchema(t *testing.T) *Schema {
	t.Helper()
	return MustSchema(
		Column{Name: "id", Type: Int64},
		Column{Name: "n", Type: Int32},
		Column{Name: "score", Type: Float64},
		Column{Name: "tag", Type: Bytes, Size: 16},
	)
}

func TestTypedColumnsValidation(t *testing.T) {
	if _, err := NewSchema(Column{Name: "id", Type: Int64}, Column{Name: "b", Type: Bytes}); err == nil {
		t.Fatal("bytes column without size accepted")
	}
	if _, err := NewSchema(Column{Name: "id", Type: Int64}, Column{Name: "b", Type: Bytes, Size: MaxBytesSize + 1}); err == nil {
		t.Fatal("oversized bytes column accepted")
	}
	if _, err := NewSchema(Column{Name: "id", Type: Int64}, Column{Name: "n", Type: Int32, Size: 4}); err == nil {
		t.Fatal("sized int column accepted")
	}
	if _, err := NewSchema(Column{Name: "id", Type: Int64}, Column{Name: "x", Type: Type(99)}); err == nil {
		t.Fatal("unknown column type accepted")
	}
}

func TestTypedColumnsLayout(t *testing.T) {
	s := typedSchema(t)
	if got, want := s.RecordSize(), HeaderSize+8+4+8+2+16; got != want {
		t.Fatalf("record size = %d, want %d", got, want)
	}
	if w := (Column{Name: "b", Type: Bytes, Size: 5}).Width(); w != 7 {
		t.Fatalf("bytes column width = %d, want 7", w)
	}
}

func TestFloat64RoundTrip(t *testing.T) {
	s := typedSchema(t)
	r := New(s)
	for _, v := range []float64{0, 1.5, -2.25e30, 3.141592653589793} {
		r.SetFloat64(2, v)
		if got := r.GetFloat64(2); got != v {
			t.Fatalf("float round trip: got %g, want %g", got, v)
		}
	}
}

func TestBytesColumnRoundTrip(t *testing.T) {
	s := typedSchema(t)
	r := New(s)
	if err := r.SetBytes(3, []byte("hello")); err != nil {
		t.Fatal(err)
	}
	if got := string(r.GetBytes(3)); got != "hello" {
		t.Fatalf("bytes round trip: got %q", got)
	}
	// Shrinking the value must not leak the old suffix.
	if err := r.SetBytes(3, []byte("hi")); err != nil {
		t.Fatal(err)
	}
	if got := string(r.GetBytes(3)); got != "hi" {
		t.Fatalf("bytes shrink: got %q", got)
	}
	other := New(s)
	if err := other.SetBytes(3, []byte("hi")); err != nil {
		t.Fatal(err)
	}
	if !ColumnEq(r, other, 3) {
		t.Fatal("equal bytes values not bytewise equal after shrink")
	}
	if err := r.SetBytes(3, make([]byte, 17)); err == nil {
		t.Fatal("over-capacity value accepted")
	}
	if err := r.SetBytes(3, nil); err != nil || len(r.GetBytes(3)) != 0 {
		t.Fatalf("empty value round trip: %v, %q", err, r.GetBytes(3))
	}
}

func TestTypedAccessorPanics(t *testing.T) {
	s := typedSchema(t)
	r := New(s)
	for name, fn := range map[string]func(){
		"Get on float":        func() { r.Get(2) },
		"Set on bytes":        func() { r.Set(3, 1) },
		"GetFloat64 on int":   func() { r.GetFloat64(1) },
		"GetBytes on float":   func() { r.GetBytes(2) },
		"SetFloat64 on bytes": func() { r.SetFloat64(3, 1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("%s did not panic", name)
				}
			}()
			fn()
		}()
	}
}

func TestTypedSchemaMarshalRoundTrip(t *testing.T) {
	s := typedSchema(t)
	data, err := s.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	got, used, err := UnmarshalSchema(data)
	if err != nil {
		t.Fatal(err)
	}
	if used != len(data) || !got.Equal(s) {
		t.Fatal("typed schema round trip mismatch")
	}
	if got.Column(3).Size != 16 {
		t.Fatalf("bytes size lost: %d", got.Column(3).Size)
	}
}

func TestMerge3TypedColumns(t *testing.T) {
	s := typedSchema(t)
	mk := func(n int64, score float64, tag string) *Record {
		r := New(s)
		r.SetPK(1)
		r.Set(1, n)
		r.SetFloat64(2, score)
		if err := r.SetBytes(3, []byte(tag)); err != nil {
			t.Fatal(err)
		}
		return r
	}
	base := mk(1, 1.0, "base")
	a := mk(1, 2.5, "base")  // a changes only the float
	b := mk(1, 1.0, "other") // b changes only the bytes
	res := Merge3(base, a, b, true)
	if res.Conflict {
		t.Fatal("non-overlapping typed updates conflicted")
	}
	if got := res.Record.GetFloat64(2); got != 2.5 {
		t.Fatalf("merged float = %g, want 2.5", got)
	}
	if got := string(res.Record.GetBytes(3)); got != "other" {
		t.Fatalf("merged bytes = %q, want \"other\"", got)
	}

	// Overlapping bytes update resolves by precedence.
	a2 := mk(1, 1.0, "from-a")
	b2 := mk(1, 1.0, "from-b")
	if res := Merge3(base, a2, b2, true); !res.Conflict || string(res.Record.GetBytes(3)) != "from-a" {
		t.Fatalf("precedence-A bytes conflict: conflict=%v tag=%q", res.Conflict, res.Record.GetBytes(3))
	}
	if res := Merge3(base, a2, b2, false); !res.Conflict || string(res.Record.GetBytes(3)) != "from-b" {
		t.Fatalf("precedence-B bytes conflict: conflict=%v tag=%q", res.Conflict, res.Record.GetBytes(3))
	}
}
