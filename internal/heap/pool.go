// Package heap implements Decibel's paged heap-file layer: append-only
// files of fixed-size records read and written through a shared buffer
// pool, mirroring the "fairly conventional buffer pool architecture
// (with 4 MB pages)" of Section 2.1. Every storage engine stores its
// tuple payloads in heap files from this package: tuple-first uses one
// shared file, version-first and hybrid use one segment file per
// branch.
package heap

import (
	"container/list"
	"fmt"
	"os"
	"sync"
)

// DefaultPageSize is the paper's 4 MB page size.
const DefaultPageSize = 4 << 20

// pageKey identifies a page within the pool across all files.
type pageKey struct {
	file uint64
	page int64
}

// frame is one resident page.
type frame struct {
	key   pageKey
	data  []byte
	size  int // valid bytes (the final page of a file may be partial)
	dirty bool
	pins  int
	lru   *list.Element
	owner *File
}

// Pool is a shared buffer pool with LRU replacement and pin counting.
// All methods are safe for concurrent use.
type Pool struct {
	mu       sync.Mutex
	pageSize int
	capacity int
	frames   map[pageKey]*frame
	lru      *list.List // unpinned frames, front = most recent
	nextFile uint64

	// Statistics.
	hits, misses, evictions int64
}

// NewPool creates a pool holding up to capacity pages of pageSize
// bytes. pageSize <= 0 selects DefaultPageSize; capacity <= 0 selects a
// small default suitable for tests.
func NewPool(capacity, pageSize int) *Pool {
	if pageSize <= 0 {
		pageSize = DefaultPageSize
	}
	if capacity <= 0 {
		capacity = 64
	}
	return &Pool{
		pageSize: pageSize,
		capacity: capacity,
		frames:   make(map[pageKey]*frame),
		lru:      list.New(),
	}
}

// PageSize returns the pool's page size in bytes.
func (p *Pool) PageSize() int { return p.pageSize }

// Stats returns cumulative hit/miss/eviction counters.
func (p *Pool) Stats() (hits, misses, evictions int64) {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.hits, p.misses, p.evictions
}

// get returns the pinned frame for (f, page), reading it from disk on a
// miss. create indicates the page is being appended and may not exist
// on disk yet.
func (p *Pool) get(f *File, page int64, create bool) (*frame, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	key := pageKey{file: f.poolID, page: page}
	if fr, ok := p.frames[key]; ok {
		p.hits++
		if fr.pins == 0 && fr.lru != nil {
			p.lru.Remove(fr.lru)
			fr.lru = nil
		}
		fr.pins++
		return fr, nil
	}
	p.misses++
	if err := p.evictLocked(); err != nil {
		return nil, err
	}
	fr := &frame{key: key, data: make([]byte, p.pageSize), pins: 1, owner: f}
	off := page * int64(p.pageSize)
	n, err := f.f.ReadAt(fr.data, off)
	if err != nil && n == 0 && !create {
		return nil, fmt.Errorf("heap: reading page %d of %s: %w", page, f.path, err)
	}
	fr.size = n
	p.frames[key] = fr
	return fr, nil
}

// evictLocked makes room for one more frame if the pool is full.
func (p *Pool) evictLocked() error {
	for len(p.frames) >= p.capacity {
		el := p.lru.Back()
		if el == nil {
			// Every frame is pinned; allow temporary over-subscription
			// rather than deadlocking. This matches the usual steal
			// policy for scan-heavy workloads.
			return nil
		}
		fr := el.Value.(*frame)
		p.lru.Remove(el)
		fr.lru = nil
		if fr.dirty {
			if err := fr.owner.writePage(fr); err != nil {
				return err
			}
		}
		delete(p.frames, fr.key)
		p.evictions++
	}
	return nil
}

// unpin releases one pin on the frame.
func (p *Pool) unpin(fr *frame) {
	p.mu.Lock()
	defer p.mu.Unlock()
	fr.pins--
	if fr.pins < 0 {
		panic("heap: unpin without pin")
	}
	if fr.pins == 0 {
		fr.lru = p.lru.PushFront(fr)
	}
}

// flushFile writes back all dirty pages of one file.
func (p *Pool) flushFile(f *File) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	for _, fr := range p.frames {
		if fr.key.file == f.poolID && fr.dirty {
			if err := f.writePage(fr); err != nil {
				return err
			}
		}
	}
	return nil
}

// dropFile removes all of one file's pages from the pool without
// writing them back (used by Close after flush, and by delete).
func (p *Pool) dropFile(f *File) {
	p.mu.Lock()
	defer p.mu.Unlock()
	for key, fr := range p.frames {
		if key.file == f.poolID {
			if fr.lru != nil {
				p.lru.Remove(fr.lru)
			}
			delete(p.frames, key)
		}
	}
}

// File is an append-only heap file of fixed-size records. Records never
// straddle page boundaries: each page holds floor(pageSize/recordSize)
// record slots, so slot s lives on page s/perPage. (The paper's 4 MB
// pages divide evenly by its 1 KB records; for other sizes the final
// partial slot of each page is padding.)
type File struct {
	mu      sync.Mutex
	pool    *Pool
	path    string
	f       *os.File
	poolID  uint64
	recSize int
	perPage int
	count   int64 // number of records, including any tombstones
	frozen  bool  // appends rejected (hybrid internal segments freeze)
}

// Open opens or creates the heap file at path with the given record
// size, attaching it to the pool. The record count is recovered from
// the file length; a torn trailing record is ignored.
func Open(pool *Pool, path string, recSize int) (*File, error) {
	if recSize <= 0 || recSize > pool.pageSize {
		return nil, fmt.Errorf("heap: record size %d invalid for page size %d", recSize, pool.pageSize)
	}
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, fmt.Errorf("heap: %w", err)
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("heap: %w", err)
	}
	perPage := pool.pageSize / recSize
	size := st.Size()
	fullPages := size / int64(pool.pageSize)
	tail := size % int64(pool.pageSize)
	count := fullPages*int64(perPage) + tail/int64(recSize)
	pool.mu.Lock()
	id := pool.nextFile
	pool.nextFile++
	pool.mu.Unlock()
	return &File{
		pool:    pool,
		path:    path,
		f:       f,
		poolID:  id,
		recSize: recSize,
		perPage: perPage,
		count:   count,
	}, nil
}

// Path returns the file's path.
func (f *File) Path() string { return f.path }

// Count returns the number of record slots written.
func (f *File) Count() int64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.count
}

// RecordSize returns the fixed record size in bytes.
func (f *File) RecordSize() int { return f.recSize }

// SizeBytes returns the logical data size (records * record size).
func (f *File) SizeBytes() int64 {
	return f.Count() * int64(f.recSize)
}

// DiskBytes returns the file's current on-disk size. Dirty pages still
// resident in the pool are not counted; the value is a footprint
// statistic, not a durability guarantee.
func (f *File) DiskBytes() int64 {
	st, err := f.f.Stat()
	if err != nil {
		return 0
	}
	return st.Size()
}

// Freeze marks the file immutable; further appends fail. Hybrid head
// segments freeze into internal segments at branch points (Section
// 3.4).
func (f *File) Freeze() {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.frozen = true
}

// writePage writes a frame back to disk. Caller holds the pool lock or
// otherwise guarantees exclusive access to the frame.
func (f *File) writePage(fr *frame) error {
	off := fr.key.page * int64(f.pool.pageSize)
	if _, err := f.f.WriteAt(fr.data[:fr.size], off); err != nil {
		return fmt.Errorf("heap: writing page %d of %s: %w", fr.key.page, f.path, err)
	}
	fr.dirty = false
	return nil
}

// Append writes one record and returns its slot number.
func (f *File) Append(rec []byte) (int64, error) {
	if len(rec) != f.recSize {
		return 0, fmt.Errorf("heap: record is %d bytes, file expects %d", len(rec), f.recSize)
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.frozen {
		return 0, fmt.Errorf("heap: %s is frozen", f.path)
	}
	slot := f.count
	page := slot / int64(f.perPage)
	idx := int(slot % int64(f.perPage))
	fr, err := f.pool.get(f, page, true)
	if err != nil {
		return 0, err
	}
	defer f.pool.unpin(fr)
	off := idx * f.recSize
	copy(fr.data[off:off+f.recSize], rec)
	if off+f.recSize > fr.size {
		fr.size = off + f.recSize
	}
	fr.dirty = true
	f.count++
	return slot, nil
}

// Read copies the record at slot into dst, which must be RecordSize
// bytes.
func (f *File) Read(slot int64, dst []byte) error {
	if len(dst) != f.recSize {
		return fmt.Errorf("heap: dst is %d bytes, want %d", len(dst), f.recSize)
	}
	f.mu.Lock()
	count := f.count
	f.mu.Unlock()
	if slot < 0 || slot >= count {
		return fmt.Errorf("heap: slot %d out of range [0,%d)", slot, count)
	}
	page := slot / int64(f.perPage)
	idx := int(slot % int64(f.perPage))
	fr, err := f.pool.get(f, page, false)
	if err != nil {
		return err
	}
	defer f.pool.unpin(fr)
	copy(dst, fr.data[idx*f.recSize:(idx+1)*f.recSize])
	return nil
}

// Scan calls fn for every slot in [from, to) in ascending order with a
// buffer that aliases the page; fn must not retain it. Returning false
// stops the scan early. Scan pins one page at a time, giving the
// sequential I/O pattern of a branch scan.
func (f *File) Scan(from, to int64, fn func(slot int64, rec []byte) bool) error {
	f.mu.Lock()
	count := f.count
	f.mu.Unlock()
	if to > count {
		to = count
	}
	if from < 0 {
		from = 0
	}
	for slot := from; slot < to; {
		page := slot / int64(f.perPage)
		fr, err := f.pool.get(f, page, false)
		if err != nil {
			return err
		}
		end := (page + 1) * int64(f.perPage)
		if end > to {
			end = to
		}
		for ; slot < end; slot++ {
			idx := int(slot % int64(f.perPage))
			if !fn(slot, fr.data[idx*f.recSize:(idx+1)*f.recSize]) {
				f.pool.unpin(fr)
				return nil
			}
		}
		f.pool.unpin(fr)
	}
	return nil
}

// Truncate discards all records at slot n and beyond (rolling back
// uncommitted appends after a crash). Resident pages past the new end
// are dropped; the boundary page is reloaded on next access.
func (f *File) Truncate(n int64) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if n < 0 || n > f.count {
		return fmt.Errorf("heap: truncate to %d out of range [0,%d]", n, f.count)
	}
	if err := f.pool.flushFile(f); err != nil {
		return err
	}
	f.pool.dropFile(f)
	page := n / int64(f.perPage)
	tail := n % int64(f.perPage)
	size := page * int64(f.pool.pageSize)
	if tail > 0 {
		size += tail * int64(f.recSize)
	}
	if err := f.f.Truncate(size); err != nil {
		return fmt.Errorf("heap: %w", err)
	}
	f.count = n
	return nil
}

// PerPage returns the number of record slots per page.
func (f *File) PerPage() int { return f.perPage }

// ScanLive scans only the pages containing at least one set bit of
// live (bit index = slot), calling fn for every slot of those pages.
// On branch-clustered data this skips the pages holding other
// branches' records — the page-granularity benefit the paper attributes
// to clustering (Section 5.5) — while fully interleaved data degrades
// to a whole-file scan.
func (f *File) ScanLive(live Bitmapper, fn func(slot int64, rec []byte) bool) error {
	f.mu.Lock()
	count := f.count
	f.mu.Unlock()
	per := int64(f.perPage)
	next := int64(live.NextSet(0))
	for next >= 0 && next < count {
		pageStart := (next / per) * per
		pageEnd := pageStart + per
		if pageEnd > count {
			pageEnd = count
		}
		stop := false
		err := f.Scan(pageStart, pageEnd, func(slot int64, rec []byte) bool {
			if !fn(slot, rec) {
				stop = true
				return false
			}
			return true
		})
		if err != nil || stop {
			return err
		}
		next = int64(live.NextSet(int(pageEnd)))
	}
	return nil
}

// ScanLiveRange is ScanLive restricted to slots in [from, to): only
// pages of that window containing a set bit of live are visited. The
// page-zone scans use it to drive one window per unpruned page chunk.
func (f *File) ScanLiveRange(live Bitmapper, from, to int64, fn func(slot int64, rec []byte) bool) error {
	f.mu.Lock()
	count := f.count
	f.mu.Unlock()
	if to > count {
		to = count
	}
	if from < 0 {
		from = 0
	}
	per := int64(f.perPage)
	next := int64(live.NextSet(int(from)))
	for next >= 0 && next < to {
		pageStart := (next / per) * per
		if pageStart < from {
			pageStart = from
		}
		pageEnd := (next/per + 1) * per
		if pageEnd > to {
			pageEnd = to
		}
		stop := false
		err := f.Scan(pageStart, pageEnd, func(slot int64, rec []byte) bool {
			if !fn(slot, rec) {
				stop = true
				return false
			}
			return true
		})
		if err != nil || stop {
			return err
		}
		next = int64(live.NextSet(int(pageEnd)))
	}
	return nil
}

// Bitmapper is the minimal bitmap-iteration surface ScanLive needs,
// satisfied by *bitmap.Bitmap (declared here to keep the heap layer
// free of higher-level dependencies).
type Bitmapper interface {
	NextSet(i int) int
}

// Sync flushes dirty pages and fsyncs the file.
func (f *File) Sync() error {
	if err := f.pool.flushFile(f); err != nil {
		return err
	}
	return f.f.Sync()
}

// Flush writes dirty pages without fsync (benchmark loads use this).
func (f *File) Flush() error { return f.pool.flushFile(f) }

// Close flushes and closes the file, dropping its pages from the pool.
func (f *File) Close() error {
	if err := f.pool.flushFile(f); err != nil {
		return err
	}
	f.pool.dropFile(f)
	return f.f.Close()
}
