package heap

import (
	"encoding/binary"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"testing"
)

func newTestPool() *Pool { return NewPool(8, 4096) }

func mkRec(size int, slot int64) []byte {
	rec := make([]byte, size)
	binary.LittleEndian.PutUint64(rec, uint64(slot))
	for i := 8; i < size; i++ {
		rec[i] = byte(slot)
	}
	return rec
}

func TestAppendReadRoundTrip(t *testing.T) {
	pool := newTestPool()
	f, err := Open(pool, filepath.Join(t.TempDir(), "t.heap"), 100)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	const n = 500 // spans many 4096-byte pages (40 recs/page)
	for i := int64(0); i < n; i++ {
		slot, err := f.Append(mkRec(100, i))
		if err != nil {
			t.Fatal(err)
		}
		if slot != i {
			t.Fatalf("slot = %d, want %d", slot, i)
		}
	}
	if f.Count() != n {
		t.Fatalf("count = %d", f.Count())
	}
	buf := make([]byte, 100)
	for _, i := range []int64{0, 39, 40, 123, n - 1} {
		if err := f.Read(i, buf); err != nil {
			t.Fatal(err)
		}
		if got := int64(binary.LittleEndian.Uint64(buf)); got != i {
			t.Fatalf("slot %d: payload %d", i, got)
		}
	}
	if err := f.Read(n, buf); err == nil {
		t.Fatal("read past end succeeded")
	}
	if err := f.Read(-1, buf); err == nil {
		t.Fatal("negative read succeeded")
	}
}

func TestAppendWrongSize(t *testing.T) {
	pool := newTestPool()
	f, err := Open(pool, filepath.Join(t.TempDir(), "t.heap"), 100)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if _, err := f.Append(make([]byte, 99)); err == nil {
		t.Fatal("wrong-size append accepted")
	}
}

func TestPersistenceAcrossReopen(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "t.heap")
	pool := newTestPool()
	f, err := Open(pool, path, 64)
	if err != nil {
		t.Fatal(err)
	}
	const n = 300
	for i := int64(0); i < n; i++ {
		if _, err := f.Append(mkRec(64, i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	pool2 := newTestPool()
	f2, err := Open(pool2, path, 64)
	if err != nil {
		t.Fatal(err)
	}
	defer f2.Close()
	if f2.Count() != n {
		t.Fatalf("reopened count = %d, want %d", f2.Count(), n)
	}
	buf := make([]byte, 64)
	for i := int64(0); i < n; i++ {
		if err := f2.Read(i, buf); err != nil {
			t.Fatal(err)
		}
		if got := int64(binary.LittleEndian.Uint64(buf)); got != i {
			t.Fatalf("slot %d: payload %d after reopen", i, got)
		}
	}
}

func TestTornTrailingRecordIgnored(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "t.heap")
	pool := newTestPool()
	f, err := Open(pool, path, 64)
	if err != nil {
		t.Fatal(err)
	}
	for i := int64(0); i < 10; i++ {
		if _, err := f.Append(mkRec(64, i)); err != nil {
			t.Fatal(err)
		}
	}
	f.Close()
	// Append 30 garbage bytes: a torn record.
	fh, err := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	fh.Write(make([]byte, 30))
	fh.Close()

	f2, err := Open(newTestPool(), path, 64)
	if err != nil {
		t.Fatal(err)
	}
	defer f2.Close()
	if f2.Count() != 10 {
		t.Fatalf("count with torn tail = %d, want 10", f2.Count())
	}
}

func TestScan(t *testing.T) {
	pool := newTestPool()
	f, err := Open(pool, filepath.Join(t.TempDir(), "t.heap"), 128)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	const n = 200
	for i := int64(0); i < n; i++ {
		f.Append(mkRec(128, i))
	}
	var seen []int64
	err = f.Scan(0, n, func(slot int64, rec []byte) bool {
		if int64(binary.LittleEndian.Uint64(rec)) != slot {
			t.Fatalf("slot %d payload mismatch", slot)
		}
		seen = append(seen, slot)
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(seen) != n {
		t.Fatalf("scanned %d records", len(seen))
	}
	// Partial range and early stop.
	count := 0
	f.Scan(50, 150, func(slot int64, rec []byte) bool {
		if slot < 50 {
			t.Fatal("scan below from")
		}
		count++
		return count < 10
	})
	if count != 10 {
		t.Fatalf("early stop scanned %d", count)
	}
	// Range clamped to count.
	count = 0
	f.Scan(150, 100000, func(int64, []byte) bool { count++; return true })
	if count != 50 {
		t.Fatalf("clamped scan saw %d", count)
	}
}

func TestEvictionWritesBackDirtyPages(t *testing.T) {
	// Pool of 2 pages; write far more pages than fit.
	pool := NewPool(2, 1024)
	f, err := Open(pool, filepath.Join(t.TempDir(), "t.heap"), 256)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	const n = 64 // 4 recs/page -> 16 pages
	for i := int64(0); i < n; i++ {
		if _, err := f.Append(mkRec(256, i)); err != nil {
			t.Fatal(err)
		}
	}
	_, _, ev := pool.Stats()
	if ev == 0 {
		t.Fatal("no evictions despite tiny pool")
	}
	buf := make([]byte, 256)
	for i := int64(0); i < n; i++ {
		if err := f.Read(i, buf); err != nil {
			t.Fatal(err)
		}
		if got := int64(binary.LittleEndian.Uint64(buf)); got != i {
			t.Fatalf("slot %d read back %d after eviction", i, got)
		}
	}
}

func TestPoolHitMissStats(t *testing.T) {
	pool := NewPool(4, 1024)
	f, err := Open(pool, filepath.Join(t.TempDir(), "t.heap"), 256)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	f.Append(mkRec(256, 0))
	buf := make([]byte, 256)
	f.Read(0, buf)
	f.Read(0, buf)
	hits, misses, _ := pool.Stats()
	if hits < 2 || misses < 1 {
		t.Fatalf("stats hits=%d misses=%d", hits, misses)
	}
}

func TestFreeze(t *testing.T) {
	pool := newTestPool()
	f, err := Open(pool, filepath.Join(t.TempDir(), "t.heap"), 64)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	f.Append(mkRec(64, 0))
	f.Freeze()
	if _, err := f.Append(mkRec(64, 1)); err == nil {
		t.Fatal("append to frozen file succeeded")
	}
	buf := make([]byte, 64)
	if err := f.Read(0, buf); err != nil {
		t.Fatal("read from frozen file failed")
	}
}

func TestMultipleFilesShareOnePool(t *testing.T) {
	pool := NewPool(4, 1024)
	dir := t.TempDir()
	var files []*File
	for i := 0; i < 5; i++ {
		f, err := Open(pool, filepath.Join(dir, fmt.Sprintf("f%d.heap", i)), 128)
		if err != nil {
			t.Fatal(err)
		}
		defer f.Close()
		files = append(files, f)
	}
	for round := int64(0); round < 30; round++ {
		for fi, f := range files {
			if _, err := f.Append(mkRec(128, round*10+int64(fi))); err != nil {
				t.Fatal(err)
			}
		}
	}
	buf := make([]byte, 128)
	for fi, f := range files {
		for round := int64(0); round < 30; round++ {
			if err := f.Read(round, buf); err != nil {
				t.Fatal(err)
			}
			if got := int64(binary.LittleEndian.Uint64(buf)); got != round*10+int64(fi) {
				t.Fatalf("file %d slot %d: got %d", fi, round, got)
			}
		}
	}
}

func TestRecordLargerThanPageRejected(t *testing.T) {
	pool := NewPool(4, 1024)
	if _, err := Open(pool, filepath.Join(t.TempDir(), "t.heap"), 2048); err == nil {
		t.Fatal("record larger than page accepted")
	}
}

func TestRandomizedAgainstModel(t *testing.T) {
	r := rand.New(rand.NewSource(42))
	pool := NewPool(3, 512) // tiny pool forces constant eviction
	f, err := Open(pool, filepath.Join(t.TempDir(), "t.heap"), 64)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	var model [][]byte
	buf := make([]byte, 64)
	for op := 0; op < 2000; op++ {
		if r.Intn(2) == 0 || len(model) == 0 {
			rec := mkRec(64, int64(r.Int63()))
			if _, err := f.Append(rec); err != nil {
				t.Fatal(err)
			}
			model = append(model, append([]byte(nil), rec...))
		} else {
			i := int64(r.Intn(len(model)))
			if err := f.Read(i, buf); err != nil {
				t.Fatal(err)
			}
			if string(buf) != string(model[i]) {
				t.Fatalf("op %d: slot %d diverged from model", op, i)
			}
		}
	}
}

func BenchmarkHeapAppend(b *testing.B) {
	pool := NewPool(64, 64<<10)
	f, err := Open(pool, filepath.Join(b.TempDir(), "t.heap"), 1024)
	if err != nil {
		b.Fatal(err)
	}
	defer f.Close()
	rec := mkRec(1024, 7)
	b.ReportAllocs()
	b.SetBytes(1024)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := f.Append(rec); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkHeapScan(b *testing.B) {
	pool := NewPool(64, 64<<10)
	f, err := Open(pool, filepath.Join(b.TempDir(), "t.heap"), 1024)
	if err != nil {
		b.Fatal(err)
	}
	defer f.Close()
	rec := mkRec(1024, 7)
	const n = 10000
	for i := 0; i < n; i++ {
		f.Append(rec)
	}
	b.ReportAllocs()
	b.SetBytes(n * 1024)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sum := 0
		f.Scan(0, n, func(slot int64, rec []byte) bool { sum += int(rec[0]); return true })
	}
}

type sliceBitmap []int64

func (s sliceBitmap) NextSet(i int) int {
	for _, v := range s {
		if v >= int64(i) {
			return int(v)
		}
	}
	return -1
}

func TestScanLiveSkipsDeadPages(t *testing.T) {
	pool := NewPool(8, 1024) // 4 records of 256B per page
	f, err := Open(pool, filepath.Join(t.TempDir(), "t.heap"), 256)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	const n = 64 // 16 pages
	for i := int64(0); i < n; i++ {
		f.Append(mkRec(256, i))
	}
	// Live bits only on pages 0 and 10 (slots 1 and 41).
	live := sliceBitmap{1, 41}
	var visited []int64
	if err := f.ScanLive(live, func(slot int64, rec []byte) bool {
		visited = append(visited, slot)
		return true
	}); err != nil {
		t.Fatal(err)
	}
	// Whole pages 0 (slots 0-3) and 10 (slots 40-43) visited, nothing else.
	want := []int64{0, 1, 2, 3, 40, 41, 42, 43}
	if len(visited) != len(want) {
		t.Fatalf("visited %v", visited)
	}
	for i := range want {
		if visited[i] != want[i] {
			t.Fatalf("visited %v, want %v", visited, want)
		}
	}
	// Early stop works.
	count := 0
	f.ScanLive(live, func(int64, []byte) bool { count++; return count < 2 })
	if count != 2 {
		t.Fatalf("early stop visited %d", count)
	}
	// Empty bitmap: nothing visited.
	count = 0
	f.ScanLive(sliceBitmap{}, func(int64, []byte) bool { count++; return true })
	if count != 0 {
		t.Fatalf("empty live visited %d", count)
	}
}
