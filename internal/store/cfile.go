package store

// cfile.go is the EncDCZ segment file: a frozen, read-optimized
// container of fixed-width records compressed page by page with the
// cpage codec. Compaction writes one with a CompressedWriter and
// swaps it into the catalog under a fresh filename; from then on the
// segment is immutable — Append always errors, Truncate only lowers
// the logical record count (version-first re-clamps to the catalog's
// SafeCount on every open), and Freeze/Sync/Flush are no-ops.
//
// File layout (little-endian):
//
//	header  "DCZ1" | u32 recSize | u32 perPage | u64 count |
//	        u32 npages | u32 crc(first 24 bytes)
//	index   npages × (u64 off | u32 len | u32 crc) | u32 crc(entries)
//	pages   page blocks (cpage.go) at their absolute offsets
//
// Pages decode lazily on first touch and are cached decoded via
// atomic pointers, so concurrent scans share the work without a lock.
// Every read path re-validates CRCs and the block structure; a torn
// or corrupted file surfaces as an error, never as wrong records.

import (
	"encoding/binary"
	"expvar"
	"fmt"
	"hash/crc32"
	"os"
	"sync"
	"sync/atomic"

	"decibel/internal/heap"
	"decibel/internal/record"
)

// pageDecodes counts compressed pages decoded across every open file
// (expvar "decibel.compressed_page_decodes"); the cache makes repeat
// scans of the same page free, which this counter makes observable.
var pageDecodes atomic.Int64

func init() {
	expvar.Publish("decibel.compressed_page_decodes", expvar.Func(func() any { return pageDecodes.Load() }))
}

const (
	dczMagic      = "DCZ1"
	dczHeaderSize = 4 + 4 + 4 + 8 + 4 + 4
	dczIndexEntry = 8 + 4 + 4
)

type cIndexEntry struct {
	off int64
	len uint32
	crc uint32
}

// CompressedWriter accumulates records and writes them out as one
// .dcz file. Records must arrive in final slot order; the writer cuts
// a page every perPage records and encodes it immediately.
type CompressedWriter struct {
	recSize int
	perPage int
	planes  []cplane
	pending []byte
	rows    int
	pages   []byte
	index   []cIndexEntry
	count   int64
}

// NewCompressedWriter returns a writer for records of the given
// physical schema, perPage records per compressed page.
func NewCompressedWriter(schema *record.Schema, perPage int) *CompressedWriter {
	if perPage < 1 {
		perPage = 1
	}
	return &CompressedWriter{
		recSize: schema.RecordSize(),
		perPage: perPage,
		planes:  planesFor(schema),
	}
}

// Count returns the number of records appended so far.
func (w *CompressedWriter) Count() int64 { return w.count }

// Append adds one encoded record.
func (w *CompressedWriter) Append(rec []byte) error {
	if len(rec) != w.recSize {
		return fmt.Errorf("dcz: record is %d bytes, want %d", len(rec), w.recSize)
	}
	w.pending = append(w.pending, rec...)
	w.rows++
	w.count++
	if w.rows == w.perPage {
		w.flushPage()
	}
	return nil
}

func (w *CompressedWriter) flushPage() {
	if w.rows == 0 {
		return
	}
	start := len(w.pages)
	w.pages = encodePage(w.pages, w.pending, w.rows, w.recSize, w.planes)
	blk := w.pages[start:]
	w.index = append(w.index, cIndexEntry{
		off: int64(start), // relative to data start; made absolute in WriteFile
		len: uint32(len(blk)),
		crc: crc32.ChecksumIEEE(blk),
	})
	w.pending = w.pending[:0]
	w.rows = 0
}

// WriteFile assembles the file and writes it to path with an fsync.
// The caller renames it into place (crash-safety lives in the
// catalog-swap protocol, not here).
func (w *CompressedWriter) WriteFile(path string) error {
	w.flushPage()
	dataStart := int64(dczHeaderSize + len(w.index)*dczIndexEntry + 4)

	buf := make([]byte, 0, int(dataStart)+len(w.pages))
	buf = append(buf, dczMagic...)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(w.recSize))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(w.perPage))
	buf = binary.LittleEndian.AppendUint64(buf, uint64(w.count))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(w.index)))
	buf = binary.LittleEndian.AppendUint32(buf, crc32.ChecksumIEEE(buf))

	idxStart := len(buf)
	for _, e := range w.index {
		buf = binary.LittleEndian.AppendUint64(buf, uint64(e.off+dataStart))
		buf = binary.LittleEndian.AppendUint32(buf, e.len)
		buf = binary.LittleEndian.AppendUint32(buf, e.crc)
	}
	buf = binary.LittleEndian.AppendUint32(buf, crc32.ChecksumIEEE(buf[idxStart:]))
	buf = append(buf, w.pages...)

	f, err := os.OpenFile(path, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Write(buf); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// CompressedFile is the read side, implementing SegFile.
type CompressedFile struct {
	path     string
	f        *os.File
	recSize  int
	perPage  int
	total    int64 // records physically in the file
	fileSize int64
	index    []cIndexEntry
	cache    []atomic.Pointer[[]byte]

	mu    sync.Mutex
	count int64 // logical count, <= total (lowered by Truncate)
}

// OpenCompressed opens and validates a .dcz file. The header and page
// index are read eagerly and checksummed; page payloads stay on disk
// until a scan touches them.
func OpenCompressed(path string) (*CompressedFile, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	c, err := readCompressed(f, path)
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("dcz: %s: %w", path, err)
	}
	return c, nil
}

func readCompressed(f *os.File, path string) (*CompressedFile, error) {
	st, err := f.Stat()
	if err != nil {
		return nil, err
	}
	fileSize := st.Size()
	if fileSize < dczHeaderSize {
		return nil, fmt.Errorf("file too short (%d bytes)", fileSize)
	}
	hdr := make([]byte, dczHeaderSize)
	if _, err := f.ReadAt(hdr, 0); err != nil {
		return nil, err
	}
	if string(hdr[:4]) != dczMagic {
		return nil, fmt.Errorf("bad magic %q", hdr[:4])
	}
	if crc32.ChecksumIEEE(hdr[:dczHeaderSize-4]) != binary.LittleEndian.Uint32(hdr[dczHeaderSize-4:]) {
		return nil, fmt.Errorf("header checksum mismatch")
	}
	recSize := int(binary.LittleEndian.Uint32(hdr[4:8]))
	perPage := int(binary.LittleEndian.Uint32(hdr[8:12]))
	count := int64(binary.LittleEndian.Uint64(hdr[12:20]))
	npages := int(binary.LittleEndian.Uint32(hdr[20:24]))
	if recSize <= 0 || perPage <= 0 || count < 0 {
		return nil, fmt.Errorf("bad geometry: recSize=%d perPage=%d count=%d", recSize, perPage, count)
	}
	wantPages := int((count + int64(perPage) - 1) / int64(perPage))
	if npages != wantPages {
		return nil, fmt.Errorf("%d pages for %d records of %d/page, want %d", npages, count, perPage, wantPages)
	}
	idxSize := int64(npages)*dczIndexEntry + 4
	dataStart := dczHeaderSize + idxSize
	if fileSize < dataStart {
		return nil, fmt.Errorf("file too short for %d-page index", npages)
	}
	idxBuf := make([]byte, idxSize)
	if _, err := f.ReadAt(idxBuf, dczHeaderSize); err != nil {
		return nil, err
	}
	if crc32.ChecksumIEEE(idxBuf[:idxSize-4]) != binary.LittleEndian.Uint32(idxBuf[idxSize-4:]) {
		return nil, fmt.Errorf("page index checksum mismatch")
	}
	index := make([]cIndexEntry, npages)
	at := dataStart
	for i := range index {
		e := idxBuf[i*dczIndexEntry:]
		index[i] = cIndexEntry{
			off: int64(binary.LittleEndian.Uint64(e[0:8])),
			len: binary.LittleEndian.Uint32(e[8:12]),
			crc: binary.LittleEndian.Uint32(e[12:16]),
		}
		if index[i].off != at || int64(index[i].len) > fileSize-at {
			return nil, fmt.Errorf("page %d at [%d,+%d) breaks file layout", i, index[i].off, index[i].len)
		}
		at += int64(index[i].len)
	}
	if at != fileSize {
		return nil, fmt.Errorf("%d trailing bytes after last page", fileSize-at)
	}
	return &CompressedFile{
		path:     path,
		f:        f,
		recSize:  recSize,
		perPage:  perPage,
		total:    count,
		count:    count,
		fileSize: fileSize,
		index:    index,
		cache:    make([]atomic.Pointer[[]byte], npages),
	}, nil
}

// page returns page i fully decoded (record-major), decoding and
// caching it on first touch.
func (c *CompressedFile) page(i int) ([]byte, error) {
	if p := c.cache[i].Load(); p != nil {
		return *p, nil
	}
	e := c.index[i]
	raw := make([]byte, e.len)
	if _, err := c.f.ReadAt(raw, e.off); err != nil {
		return nil, fmt.Errorf("dcz: %s: page %d: %w", c.path, i, err)
	}
	if crc32.ChecksumIEEE(raw) != e.crc {
		return nil, fmt.Errorf("dcz: %s: page %d checksum mismatch", c.path, i)
	}
	wantRows := c.perPage
	if i == len(c.index)-1 {
		wantRows = int(c.total - int64(i)*int64(c.perPage))
	}
	dec, err := decodePage(raw, c.recSize, c.perPage, wantRows)
	if err != nil {
		return nil, fmt.Errorf("dcz: %s: page %d: %w", c.path, i, err)
	}
	c.cache[i].Store(&dec)
	pageDecodes.Add(1)
	return dec, nil
}

// Path returns the file's path.
func (c *CompressedFile) Path() string { return c.path }

// Count returns the logical record count.
func (c *CompressedFile) Count() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.count
}

// RecordSize returns the fixed record size in bytes.
func (c *CompressedFile) RecordSize() int { return c.recSize }

// SizeBytes returns the logical (uncompressed) data size.
func (c *CompressedFile) SizeBytes() int64 {
	return c.Count() * int64(c.recSize)
}

// DiskBytes returns the compressed on-disk footprint.
func (c *CompressedFile) DiskBytes() int64 { return c.fileSize }

// PerPage returns records per compressed page.
func (c *CompressedFile) PerPage() int { return c.perPage }

// Freeze is a no-op: a compressed file is born frozen.
func (c *CompressedFile) Freeze() {}

// Append always fails: compressed segments are immutable.
func (c *CompressedFile) Append(rec []byte) (int64, error) {
	return 0, fmt.Errorf("dcz: %s: append to compressed segment", c.path)
}

// Read copies the record at slot into dst.
func (c *CompressedFile) Read(slot int64, dst []byte) error {
	if len(dst) != c.recSize {
		return fmt.Errorf("dcz: dst is %d bytes, want %d", len(dst), c.recSize)
	}
	count := c.Count()
	if slot < 0 || slot >= count {
		return fmt.Errorf("dcz: slot %d out of range [0,%d)", slot, count)
	}
	p, err := c.page(int(slot / int64(c.perPage)))
	if err != nil {
		return err
	}
	idx := int(slot % int64(c.perPage))
	copy(dst, p[idx*c.recSize:(idx+1)*c.recSize])
	return nil
}

// Scan calls fn for each slot in [from, to), clamped to the logical
// count. The rec slice aliases the decoded page cache and is only
// valid during the callback, same contract as heap.File.Scan.
func (c *CompressedFile) Scan(from, to int64, fn func(slot int64, rec []byte) bool) error {
	count := c.Count()
	if to > count {
		to = count
	}
	if from < 0 {
		from = 0
	}
	per := int64(c.perPage)
	for slot := from; slot < to; {
		p, err := c.page(int(slot / per))
		if err != nil {
			return err
		}
		end := (slot/per + 1) * per
		if end > to {
			end = to
		}
		for ; slot < end; slot++ {
			idx := int(slot % per)
			if !fn(slot, p[idx*c.recSize:(idx+1)*c.recSize]) {
				return nil
			}
		}
	}
	return nil
}

// ScanLive scans only pages that contain at least one set bit in
// live, page-skip granularity matching heap.File.ScanLive: fn still
// sees every slot of a touched page.
func (c *CompressedFile) ScanLive(live heap.Bitmapper, fn func(slot int64, rec []byte) bool) error {
	return c.ScanLiveRange(live, 0, c.Count(), fn)
}

// ScanLiveRange is ScanLive restricted to [from, to).
func (c *CompressedFile) ScanLiveRange(live heap.Bitmapper, from, to int64, fn func(slot int64, rec []byte) bool) error {
	count := c.Count()
	if to > count {
		to = count
	}
	if from < 0 {
		from = 0
	}
	per := int64(c.perPage)
	next := int64(live.NextSet(int(from)))
	for next >= 0 && next < to {
		pageStart := (next / per) * per
		if pageStart < from {
			pageStart = from
		}
		pageEnd := (next/per + 1) * per
		if pageEnd > to {
			pageEnd = to
		}
		stop := false
		err := c.Scan(pageStart, pageEnd, func(slot int64, rec []byte) bool {
			if !fn(slot, rec) {
				stop = true
				return false
			}
			return true
		})
		if err != nil || stop {
			return err
		}
		next = int64(live.NextSet(int(pageEnd)))
	}
	return nil
}

// Truncate lowers the logical record count without touching the file.
// The version-first engine re-clamps every segment to the catalog's
// SafeCount on open; for a frozen compressed segment that is always
// its full count, so nothing is ever physically discarded.
func (c *CompressedFile) Truncate(n int64) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if n < 0 || n > c.count {
		return fmt.Errorf("dcz: truncate to %d out of range [0,%d]", n, c.count)
	}
	c.count = n
	return nil
}

// Sync is a no-op: the file was fsynced when written and never
// changes after.
func (c *CompressedFile) Sync() error { return nil }

// Flush is a no-op: there is no dirty state.
func (c *CompressedFile) Flush() error { return nil }

// Close releases the file handle.
func (c *CompressedFile) Close() error { return c.f.Close() }
