package store

import (
	"bytes"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"testing"

	"decibel/internal/record"
)

func cTestSchema(t *testing.T) *record.Schema {
	t.Helper()
	s, err := record.NewSchema(
		record.Column{Name: "id", Type: record.Int64},
		record.Column{Name: "qty", Type: record.Int32},
		record.Column{Name: "price", Type: record.Float64},
		record.Column{Name: "tag", Type: record.Bytes, Size: 12},
	)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// cTestRecords builds n encoded records with compressible shape:
// sequential ids (delta), low-cardinality qty and tag (dict/const),
// varied price (raw).
func cTestRecords(t *testing.T, s *record.Schema, n int) [][]byte {
	t.Helper()
	rng := rand.New(rand.NewSource(7))
	tags := []string{"alpha", "beta", "gamma"}
	recs := make([][]byte, n)
	for i := range recs {
		r := record.New(s)
		r.Set(0, int64(1000+i))
		r.Set(1, int64(i%4))
		r.SetFloat64(2, rng.Float64()*100)
		if err := r.SetBytes(3, []byte(tags[i%len(tags)])); err != nil {
			t.Fatal(err)
		}
		recs[i] = append([]byte(nil), r.Bytes()...)
	}
	return recs
}

func writeCompressed(t *testing.T, s *record.Schema, recs [][]byte, perPage int) string {
	t.Helper()
	w := NewCompressedWriter(s, perPage)
	for _, rec := range recs {
		if err := w.Append(rec); err != nil {
			t.Fatal(err)
		}
	}
	path := filepath.Join(t.TempDir(), "seg.dcz")
	if err := w.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestCompressedRoundTrip(t *testing.T) {
	s := cTestSchema(t)
	const n = 257 // several pages plus a short tail page
	recs := cTestRecords(t, s, n)
	path := writeCompressed(t, s, recs, 64)

	c, err := OpenCompressed(path)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	if c.Count() != n {
		t.Fatalf("Count = %d, want %d", c.Count(), n)
	}
	if c.RecordSize() != s.RecordSize() {
		t.Fatalf("RecordSize = %d, want %d", c.RecordSize(), s.RecordSize())
	}
	if c.DiskBytes() >= c.SizeBytes() {
		t.Errorf("no compression: disk %d >= raw %d", c.DiskBytes(), c.SizeBytes())
	}

	// Point reads.
	dst := make([]byte, s.RecordSize())
	for i, want := range recs {
		if err := c.Read(int64(i), dst); err != nil {
			t.Fatalf("Read(%d): %v", i, err)
		}
		if !bytes.Equal(dst, want) {
			t.Fatalf("Read(%d) mismatch", i)
		}
	}
	if err := c.Read(n, dst); err == nil {
		t.Fatal("Read past count succeeded")
	}

	// Full scan, order and contents.
	next := int64(0)
	err = c.Scan(0, n, func(slot int64, rec []byte) bool {
		if slot != next {
			t.Fatalf("scan slot %d, want %d", slot, next)
		}
		if !bytes.Equal(rec, recs[slot]) {
			t.Fatalf("scan slot %d mismatch", slot)
		}
		next++
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
	if next != n {
		t.Fatalf("scanned %d records, want %d", next, n)
	}

	// Range scan with early stop.
	got := 0
	if err := c.Scan(100, 200, func(slot int64, rec []byte) bool {
		got++
		return got < 10
	}); err != nil {
		t.Fatal(err)
	}
	if got != 10 {
		t.Fatalf("early-stop scan saw %d records, want 10", got)
	}

	// Immutability.
	if _, err := c.Append(recs[0]); err == nil {
		t.Fatal("Append to compressed file succeeded")
	}

	// Logical truncate.
	if err := c.Truncate(n + 1); err == nil {
		t.Fatal("Truncate past count succeeded")
	}
	if err := c.Truncate(10); err != nil {
		t.Fatal(err)
	}
	if c.Count() != 10 {
		t.Fatalf("Count after truncate = %d, want 10", c.Count())
	}
	saw := 0
	if err := c.Scan(0, n, func(int64, []byte) bool { saw++; return true }); err != nil {
		t.Fatal(err)
	}
	if saw != 10 {
		t.Fatalf("scan after truncate saw %d records, want 10", saw)
	}
}

// sliceBitmap is a test heap.Bitmapper over explicit slot indexes.
type sliceBitmap []int

func (b sliceBitmap) NextSet(i int) int {
	for _, s := range b {
		if s >= i {
			return s
		}
	}
	return -1
}

func TestCompressedScanLive(t *testing.T) {
	s := cTestSchema(t)
	recs := cTestRecords(t, s, 200)
	path := writeCompressed(t, s, recs, 32)
	c, err := OpenCompressed(path)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	// Live bits in pages 0 and 4 only: the scan must touch exactly
	// those pages' slot ranges (page-skip granularity, like heap).
	live := sliceBitmap{3, 140}
	var slots []int64
	if err := c.ScanLive(live, func(slot int64, rec []byte) bool {
		if !bytes.Equal(rec, recs[slot]) {
			t.Fatalf("slot %d mismatch", slot)
		}
		slots = append(slots, slot)
		return true
	}); err != nil {
		t.Fatal(err)
	}
	if len(slots) != 64 || slots[0] != 0 || slots[31] != 31 || slots[32] != 128 || slots[63] != 159 {
		t.Fatalf("ScanLive visited %d slots (first %v...), want pages [0,32) and [128,160)", len(slots), slots[:min(4, len(slots))])
	}

	var ranged []int64
	if err := c.ScanLiveRange(live, 130, 150, func(slot int64, rec []byte) bool {
		ranged = append(ranged, slot)
		return true
	}); err != nil {
		t.Fatal(err)
	}
	if len(ranged) != 20 || ranged[0] != 130 || ranged[19] != 149 {
		t.Fatalf("ScanLiveRange visited %v, want [130,150)", ranged)
	}
}

// TestCompressedCorruption flips every byte of a small file one at a
// time: each corrupt copy must either fail to open, fail to scan, or
// (if the flip is in logically-dead space) still return byte-exact
// records. Wrong records are never acceptable.
func TestCompressedCorruption(t *testing.T) {
	s := cTestSchema(t)
	recs := cTestRecords(t, s, 50)
	path := writeCompressed(t, s, recs, 16)
	orig, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	for off := range orig {
		corrupt := append([]byte(nil), orig...)
		corrupt[off] ^= 0x5a
		p := filepath.Join(dir, "c.dcz")
		if err := os.WriteFile(p, corrupt, 0o644); err != nil {
			t.Fatal(err)
		}
		c, err := OpenCompressed(p)
		if err != nil {
			continue // detected at open: fine
		}
		scanErr := c.Scan(0, int64(len(recs)), func(slot int64, rec []byte) bool {
			if !bytes.Equal(rec, recs[slot]) {
				t.Fatalf("flip at %d: slot %d misdecoded without error", off, slot)
			}
			return true
		})
		c.Close()
		_ = scanErr // detected at scan (or benign): fine either way
	}
}

// FuzzCompressedPage throws arbitrary bytes at the page decoder. The
// decoder must never panic, and on success must produce exactly
// rows×recSize bytes. Round-trips of valid pages are seeded so the
// fuzzer starts from structurally interesting corpora.
func FuzzCompressedPage(f *testing.F) {
	seed := func(recSize, perPage, n int) []byte {
		data := make([]byte, n*recSize)
		for i := range data {
			data[i] = byte(i * 31)
		}
		planes := []cplane{{0, 1}}
		for at := 1; at < recSize; at += 8 {
			w := 8
			if at+w > recSize {
				w = recSize - at
			}
			planes = append(planes, cplane{at, w})
		}
		return encodePage(nil, data, n, recSize, planes)
	}
	f.Add(seed(25, 16, 16), uint16(25))
	f.Add(seed(9, 16, 5), uint16(9))
	f.Add(seed(64, 8, 8), uint16(64))
	f.Add([]byte{}, uint16(8))
	f.Fuzz(func(t *testing.T, blk []byte, recSize16 uint16) {
		recSize := int(recSize16%512) + 1
		maxRows := 4096 / recSize
		if maxRows < 1 {
			maxRows = 1
		}
		out, err := decodePage(blk, recSize, maxRows, -1)
		if err != nil {
			return
		}
		if len(out) == 0 || len(out)%recSize != 0 || len(out) > maxRows*recSize {
			t.Fatalf("decodePage returned %d bytes for recSize %d, maxRows %d", len(out), recSize, maxRows)
		}
		// Successful decode must be deterministic and re-encodable: a
		// second decode of the same block yields identical bytes.
		out2, err := decodePage(blk, recSize, maxRows, len(out)/recSize)
		if err != nil || !bytes.Equal(out, out2) {
			t.Fatalf("unstable decode: %v", err)
		}
	})
}

// TestCompressedWriterPicksEncodings sanity-checks that the writer
// actually chooses the specialized encodings on fixtures shaped for
// them, by measuring the file footprint against raw size.
func TestCompressedWriterPicksEncodings(t *testing.T) {
	s, err := record.NewSchema(
		record.Column{Name: "id", Type: record.Int64},
		record.Column{Name: "tag", Type: record.Bytes, Size: 32},
	)
	if err != nil {
		t.Fatal(err)
	}
	w := NewCompressedWriter(s, 256)
	for i := 0; i < 1024; i++ {
		r := record.New(s)
		r.Set(0, int64(i)) // delta: ~1 byte/row
		if err := r.SetBytes(1, []byte(fmt.Sprintf("tag-%d", i%5))); err != nil {
			t.Fatal(err)
		}
		if err := w.Append(r.Bytes()); err != nil {
			t.Fatal(err)
		}
	}
	path := filepath.Join(t.TempDir(), "enc.dcz")
	if err := w.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	c, err := OpenCompressed(path)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	raw := c.SizeBytes()
	if c.DiskBytes()*4 > raw {
		t.Fatalf("dict/delta fixture compressed to %d of %d raw bytes, want at least 4x", c.DiskBytes(), raw)
	}
}
