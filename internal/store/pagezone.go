package store

import (
	"expvar"
	"sync"
	"sync/atomic"

	"decibel/internal/record"
)

// PageZones is a segment's page-granularity sparse index: one ZoneMap
// per heap-page-sized chunk of record slots, built in memory when an
// engine opts a segment in (EnablePageZones) and folded forward on
// every append. It exists for layouts whose segments rarely rotate —
// the tuple-first engine keeps one extent per schema epoch, so its
// segment-level zone spans every branch's rows and almost never prunes;
// per-page zones restore skipping at the granularity scans actually pin
// (cf. the per-block sparse indexes the segment-level maps borrow
// from). Not persisted: rebuilt by one sequential file scan at open.
type PageZones struct {
	mu      sync.Mutex
	numCols int
	chunk   int64 // record slots per zone, = the heap file's PerPage
	rows    int64 // slots covered so far
	zones   []*ZoneMap
}

// NewPageZones returns an empty page-zone index of numCols physical
// columns with chunk slots per zone.
func NewPageZones(numCols int, chunk int64) *PageZones {
	if chunk < 1 {
		chunk = 1
	}
	return &PageZones{numCols: numCols, chunk: chunk}
}

// Update folds the next appended record buffer into the zone of its
// page. Calls run under the owning engine's lock, in slot order,
// mirroring ZoneMap.Update on the segment zone.
func (pz *PageZones) Update(schema *record.Schema, buf []byte) {
	pz.mu.Lock()
	idx := int(pz.rows / pz.chunk)
	for idx >= len(pz.zones) {
		pz.zones = append(pz.zones, NewZoneMap(pz.numCols))
	}
	z := pz.zones[idx]
	pz.rows++
	pz.mu.Unlock()
	z.Update(schema, buf)
}

// Chunk returns the number of record slots each zone covers.
func (pz *PageZones) Chunk() int64 { return pz.chunk }

// NumChunks returns the number of zones built so far. Rows appended
// after a liveness snapshot was taken can only add or widen zones, so a
// scan driving its snapshot through [0, NumChunks()) sees every slot
// its snapshot can mark live.
func (pz *PageZones) NumChunks() int {
	pz.mu.Lock()
	defer pz.mu.Unlock()
	return len(pz.zones)
}

// Zone returns the zone of chunk i (slots [i*Chunk, (i+1)*Chunk)), or
// nil when out of range.
func (pz *PageZones) Zone(i int) *ZoneMap {
	pz.mu.Lock()
	defer pz.mu.Unlock()
	if i < 0 || i >= len(pz.zones) {
		return nil
	}
	return pz.zones[i]
}

// EnablePageZones builds the segment's in-memory page-zone index from
// the rows already on file and keeps it current on append. Idempotent;
// called under the owning engine's lock before the segment is visible
// to scans.
func (s *Segment) EnablePageZones() error {
	if s.pages != nil {
		return nil
	}
	pz := NewPageZones(s.Schema.NumColumns(), int64(s.File.PerPage()))
	err := s.File.Scan(0, s.File.Count(), func(_ int64, buf []byte) bool {
		pz.Update(s.Schema, buf)
		return true
	})
	if err != nil {
		return err
	}
	s.pages = pz
	return nil
}

// Pages returns the segment's page-zone index, or nil when the engine
// did not enable one.
func (s *Segment) Pages() *PageZones { return s.pages }

// Page-scan counters, the page-granularity mirror of the segment
// counters: every per-page pruning decision increments exactly one
// (expvar "decibel.pages_scanned"/".pages_skipped").
var (
	pagesScanned atomic.Int64
	pagesSkipped atomic.Int64
)

func init() {
	expvar.Publish("decibel.pages_scanned", expvar.Func(func() any { return pagesScanned.Load() }))
	expvar.Publish("decibel.pages_skipped", expvar.Func(func() any { return pagesSkipped.Load() }))
}

// CountPageScanned records a page chunk a pruning decision let through.
func CountPageScanned() { pagesScanned.Add(1) }

// CountPageSkipped records a page chunk a page zone pruned.
func CountPageSkipped() { pagesSkipped.Add(1) }

// PageScanCounters returns the cumulative page-pruning counters.
func PageScanCounters() (scanned, skipped int64) {
	return pagesScanned.Load(), pagesSkipped.Load()
}
