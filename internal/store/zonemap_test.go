package store

import (
	"bytes"
	"encoding/json"
	"math"
	"path/filepath"
	"testing"

	"decibel/internal/heap"
	"decibel/internal/record"
)

func testSchema(t *testing.T) *record.Schema {
	t.Helper()
	return record.MustSchema(
		record.Column{Name: "id", Type: record.Int64},
		record.Column{Name: "v", Type: record.Int32},
		record.Column{Name: "price", Type: record.Float64},
		record.Column{Name: "sku", Type: record.Bytes, Size: 16},
	)
}

func mkRec(t *testing.T, s *record.Schema, pk int64, v int64, price float64, sku string) *record.Record {
	t.Helper()
	r := record.New(s)
	r.SetPK(pk)
	r.Set(1, v)
	r.SetFloat64(2, price)
	if err := r.SetBytes(3, []byte(sku)); err != nil {
		t.Fatal(err)
	}
	return r
}

func TestZoneMapObserve(t *testing.T) {
	s := testSchema(t)
	z := NewZoneMap(s.NumColumns())
	z.Update(s, mkRec(t, s, 5, -3, 2.5, "melon").Bytes())
	z.Update(s, mkRec(t, s, 9, 12, -1.5, "apple").Bytes())

	id, _ := z.Col(0)
	if id.MinI != 5 || id.MaxI != 9 {
		t.Fatalf("id zone [%d,%d]", id.MinI, id.MaxI)
	}
	v, _ := z.Col(1)
	if v.MinI != -3 || v.MaxI != 12 {
		t.Fatalf("v zone [%d,%d]", v.MinI, v.MaxI)
	}
	p, _ := z.Col(2)
	if p.MinF != -1.5 || p.MaxF != 2.5 {
		t.Fatalf("price zone [%g,%g]", p.MinF, p.MaxF)
	}
	sku, _ := z.Col(3)
	if string(sku.MinB) != "apple" || string(sku.MaxB) != "melon" || sku.MaxBTrunc {
		t.Fatalf("sku zone [%q,%q] trunc=%v", sku.MinB, sku.MaxB, sku.MaxBTrunc)
	}
	if z.Rows() != 2 {
		t.Fatalf("rows = %d", z.Rows())
	}
}

func TestZoneMapTombstonesExcluded(t *testing.T) {
	s := testSchema(t)
	z := NewZoneMap(s.NumColumns())
	tomb := record.New(s)
	tomb.SetPK(1)
	tomb.SetTombstone(true)
	z.Update(s, tomb.Bytes())
	if z.Rows() != 1 {
		t.Fatalf("rows = %d", z.Rows())
	}
	cz, _ := z.Col(1)
	if !cz.Empty {
		t.Fatal("tombstone leaked into the zone")
	}
}

func TestZoneMapFloatSpecials(t *testing.T) {
	s := testSchema(t)
	for _, bad := range []float64{math.NaN(), math.Inf(1), math.Inf(-1)} {
		z := NewZoneMap(s.NumColumns())
		z.Update(s, mkRec(t, s, 1, 1, bad, "x").Bytes())
		cz, _ := z.Col(2)
		if !cz.Unbounded {
			t.Fatalf("%v did not disable pruning", bad)
		}
		// And the map still marshals.
		if _, err := json.Marshal(z); err != nil {
			t.Fatalf("marshal after %v: %v", bad, err)
		}
	}
}

func TestZoneMapBytesTruncation(t *testing.T) {
	s := testSchema(t)
	z := NewZoneMap(s.NumColumns())
	long := "zzzzzzzzzz-long" // > zonePrefixLen
	z.Update(s, mkRec(t, s, 1, 1, 0, long).Bytes())
	cz, _ := z.Col(3)
	if len(cz.MaxB) != zonePrefixLen || !cz.MaxBTrunc {
		t.Fatalf("max = %q trunc=%v", cz.MaxB, cz.MaxBTrunc)
	}
	ub, excl, ok := cz.BytesUpper()
	if !ok || !excl {
		t.Fatalf("BytesUpper = %q excl=%v ok=%v", ub, excl, ok)
	}
	if !bytes.Equal(ub, []byte("zzzzzzz{")) { // succ of the 8-byte prefix
		t.Fatalf("upper bound = %q", ub)
	}
	// The truncated prefix itself is still a valid lower bound.
	if string(cz.MinB) != long[:zonePrefixLen] {
		t.Fatalf("min = %q", cz.MinB)
	}
}

func TestBytesSucc(t *testing.T) {
	if s, ok := BytesSucc([]byte("ab")); !ok || string(s) != "ac" {
		t.Fatalf("succ(ab) = %q %v", s, ok)
	}
	if s, ok := BytesSucc([]byte{0x61, 0xff}); !ok || string(s) != "b" {
		t.Fatalf("succ(a\\xff) = %q %v", s, ok)
	}
	if _, ok := BytesSucc([]byte{0xff, 0xff}); ok {
		t.Fatal("succ(\\xff\\xff) should not exist")
	}
	if _, ok := BytesSucc(nil); ok {
		t.Fatal("succ(empty) should not exist")
	}
}

func TestZoneMapJSONRoundTrip(t *testing.T) {
	s := testSchema(t)
	z := NewZoneMap(s.NumColumns())
	z.Update(s, mkRec(t, s, 7, 3, 1.25, "kiwi").Bytes())
	data, err := json.Marshal(z)
	if err != nil {
		t.Fatal(err)
	}
	var back ZoneMap
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back.Rows() != 1 {
		t.Fatalf("rows = %d", back.Rows())
	}
	cz, ok := back.Col(0)
	if !ok || cz.MinI != 7 || cz.MaxI != 7 {
		t.Fatalf("restored id zone %+v ok=%v", cz, ok)
	}
}

// TestStoreOpenRebuildsZones simulates a legacy directory: the segment
// file exists but the catalog entry has no zone map. Open must rebuild
// it by scanning the file, and a persisted map must extend over rows
// appended after it was written.
func TestStoreOpenRebuildsZones(t *testing.T) {
	dir := t.TempDir()
	schema := testSchema(t)
	hist := record.NewHistory(schema)
	pool := heap.NewPool(8, 1<<16)
	st := New(pool, hist)

	path := filepath.Join(dir, "seg0.dat")
	seg, err := st.Create(path, schema.NumColumns())
	if err != nil {
		t.Fatal(err)
	}
	for i := int64(0); i < 10; i++ {
		if _, err := st.Append(seg, mkRec(t, schema, i, i*2, float64(i), "s")); err != nil {
			t.Fatal(err)
		}
	}
	if err := seg.File.Close(); err != nil {
		t.Fatal(err)
	}

	// Legacy: no zone in the metadata at all.
	reopened, err := st.Open(path, SegMeta{Cols: schema.NumColumns()}, -1)
	if err != nil {
		t.Fatal(err)
	}
	cz, _ := reopened.Zone().Col(1)
	if cz.MinI != 0 || cz.MaxI != 18 {
		t.Fatalf("rebuilt v zone [%d,%d]", cz.MinI, cz.MaxI)
	}
	if reopened.Zone().Rows() != 10 {
		t.Fatalf("rebuilt rows = %d", reopened.Zone().Rows())
	}

	// Partial: a persisted map covering only the first 4 rows extends.
	partial := NewZoneMap(schema.NumColumns())
	buf := make([]byte, schema.RecordSize())
	for i := int64(0); i < 4; i++ {
		if err := reopened.File.Read(i, buf); err != nil {
			t.Fatal(err)
		}
		partial.Update(schema, buf)
	}
	if err := reopened.File.Close(); err != nil {
		t.Fatal(err)
	}
	extended, err := st.Open(path, SegMeta{Cols: schema.NumColumns(), Zone: partial}, -1)
	if err != nil {
		t.Fatal(err)
	}
	defer extended.File.Close()
	cz, _ = extended.Zone().Col(1)
	if extended.Zone().Rows() != 10 || cz.MaxI != 18 {
		t.Fatalf("extended rows=%d max=%d", extended.Zone().Rows(), cz.MaxI)
	}
}

// TestStoreTruncateRebuildsZones: a map wider than the (rolled-back)
// file is rebuilt, keeping bounds tight.
func TestStoreTruncateRebuildsZones(t *testing.T) {
	dir := t.TempDir()
	schema := testSchema(t)
	hist := record.NewHistory(schema)
	st := New(heap.NewPool(8, 1<<16), hist)

	path := filepath.Join(dir, "seg0.dat")
	seg, err := st.Create(path, schema.NumColumns())
	if err != nil {
		t.Fatal(err)
	}
	for i := int64(0); i < 10; i++ {
		if _, err := st.Append(seg, mkRec(t, schema, i, i, 0, "s")); err != nil {
			t.Fatal(err)
		}
	}
	wide := seg.Zone()
	if err := seg.File.Close(); err != nil {
		t.Fatal(err)
	}
	// Reopen with safeCount 5: the file truncates and the stale (wider)
	// map must be rebuilt over the surviving rows.
	back, err := st.Open(path, SegMeta{Cols: schema.NumColumns(), Zone: wide}, 5)
	if err != nil {
		t.Fatal(err)
	}
	defer back.File.Close()
	cz, _ := back.Zone().Col(1)
	if back.Zone().Rows() != 5 || cz.MaxI != 4 {
		t.Fatalf("truncated rows=%d max=%d", back.Zone().Rows(), cz.MaxI)
	}
}
