// Package store is the shared segment layer beneath Decibel's three
// physical designs. All of them store records in append-only fixed-
// width heap files that freeze at branch points and rotate when the
// schema widens; this package owns that lifecycle — opening, creating,
// rotating and freezing segments, encoding records into a segment's
// physical layout, and persisting per-segment metadata — so the
// engines shrink to their layout-specific liveness and emit logic.
//
// The layer also maintains a sparse secondary index per segment: a
// zone map recording each column's min/max (numeric) or prefix bounds
// (bytes), updated incrementally on append and persisted with the
// segment metadata. Query predicates compiled to interval bounds
// consult the zone maps to skip whole segments before any page byte is
// touched (cf. Sneller's per-block sparse indexes).
package store

import (
	"bytes"
	"encoding/binary"
	"encoding/json"
	"math"
	"sync"

	"decibel/internal/record"
)

// zonePrefixLen bounds the stored prefix of Bytes-column zone values.
// Longer values are truncated; the truncation flag keeps the bound
// conservative.
const zonePrefixLen = 8

// ColZone is the zone of one physical column: the range its values
// span across every non-tombstone record of the segment. Exactly one
// of the I/F/B families is meaningful, selected by the column's type.
type ColZone struct {
	// Empty reports that no non-tombstone record has been observed:
	// nothing in the segment can be emitted, so any bound prunes it.
	Empty bool `json:"empty,omitempty"`
	// Unbounded disables pruning on this column (a NaN was stored, so
	// no total order covers the values).
	Unbounded bool `json:"unbounded,omitempty"`

	MinI int64 `json:"minI,omitempty"` // Int32/Int64 bounds, inclusive
	MaxI int64 `json:"maxI,omitempty"`

	MinF float64 `json:"minF,omitempty"` // Float64 bounds, inclusive
	MaxF float64 `json:"maxF,omitempty"`

	// Bytes bounds: MinB is a true inclusive lower bound (a prefix of
	// the minimum orders at or below it). MaxB is the maximum's first
	// zonePrefixLen bytes; MaxBTrunc marks that the maximum extends
	// beyond it, making the effective upper bound succ(MaxB), exclusive.
	MinB      []byte `json:"minB,omitempty"`
	MaxB      []byte `json:"maxB,omitempty"`
	MaxBTrunc bool   `json:"maxBTrunc,omitempty"`
}

// ZoneMap is the per-segment sparse index: one ColZone per physical
// column, covering the first Rows record slots of the segment's file
// (tombstone slots count toward Rows but not toward any zone).
// Updates run under the owning engine's lock; reads may race appends,
// so every access goes through the internal lock. A zone map is always
// conservative: concurrent readers may see a slightly stale (narrower
// in time, never narrower in range) view of rows their liveness
// snapshot predates.
type ZoneMap struct {
	mu    sync.RWMutex
	rows  int64
	tombs int64
	cols  []ColZone
}

// zoneJSON is the persisted form.
type zoneJSON struct {
	Rows  int64     `json:"rows"`
	Tombs int64     `json:"tombs,omitempty"`
	Cols  []ColZone `json:"cols"`
}

// NewZoneMap returns an empty zone map for a segment of numCols
// physical columns.
func NewZoneMap(numCols int) *ZoneMap {
	z := &ZoneMap{cols: make([]ColZone, numCols)}
	for i := range z.cols {
		z.cols[i].Empty = true
	}
	return z
}

// MarshalJSON persists the zone map. NaN cannot appear in the float
// bounds (a NaN flips the column to Unbounded and leaves them zero),
// so the encoding never fails on the values.
func (z *ZoneMap) MarshalJSON() ([]byte, error) {
	z.mu.RLock()
	defer z.mu.RUnlock()
	return json.Marshal(zoneJSON{Rows: z.rows, Tombs: z.tombs, Cols: z.cols})
}

// UnmarshalJSON restores a persisted zone map.
func (z *ZoneMap) UnmarshalJSON(data []byte) error {
	var j zoneJSON
	if err := json.Unmarshal(data, &j); err != nil {
		return err
	}
	z.mu.Lock()
	defer z.mu.Unlock()
	z.rows = j.Rows
	z.tombs = j.Tombs
	z.cols = j.Cols
	return nil
}

// Rows returns the number of record slots the map covers.
func (z *ZoneMap) Rows() int64 {
	z.mu.RLock()
	defer z.mu.RUnlock()
	return z.rows
}

// Tombstones returns the number of tombstone slots among the rows the
// map covers — rows a scan can never emit, and what compaction can
// reclaim from a frozen segment.
func (z *ZoneMap) Tombstones() int64 {
	z.mu.RLock()
	defer z.mu.RUnlock()
	return z.tombs
}

// Col returns a copy of the zone of physical column i; ok is false
// when the map does not cover that column (corrupt or foreign
// metadata — callers must then not prune).
func (z *ZoneMap) Col(i int) (ColZone, bool) {
	z.mu.RLock()
	defer z.mu.RUnlock()
	if i < 0 || i >= len(z.cols) {
		return ColZone{}, false
	}
	return z.cols[i], true
}

// NumCols returns the number of columns the map tracks.
func (z *ZoneMap) NumCols() int {
	z.mu.RLock()
	defer z.mu.RUnlock()
	return len(z.cols)
}

// Update folds one encoded record buffer (header byte included, laid
// out under schema — the segment's physical schema) into the map.
// Tombstones advance the row count without touching any zone: they are
// never emitted by a scan, so letting their zero-valued columns into
// the bounds would only cost pruning power.
func (z *ZoneMap) Update(schema *record.Schema, buf []byte) {
	z.mu.Lock()
	defer z.mu.Unlock()
	z.rows++
	if record.TombstoneOf(buf) {
		z.tombs++
		return
	}
	n := schema.NumColumns()
	if n > len(z.cols) {
		n = len(z.cols)
	}
	for i := 0; i < n; i++ {
		z.cols[i].observe(schema.Column(i), buf[schema.ColumnOffset(i):])
	}
}

// observe folds one encoded column value into the zone.
func (cz *ColZone) observe(c record.Column, val []byte) {
	switch c.Type {
	case record.Int32:
		cz.observeInt(int64(int32(binary.LittleEndian.Uint32(val))))
	case record.Int64:
		cz.observeInt(int64(binary.LittleEndian.Uint64(val)))
	case record.Float64:
		cz.observeFloat(math.Float64frombits(binary.LittleEndian.Uint64(val)))
	case record.Bytes:
		n := int(binary.LittleEndian.Uint16(val))
		if n > c.Size {
			n = c.Size
		}
		cz.observeBytes(val[2 : 2+n])
	}
}

func (cz *ColZone) observeInt(v int64) {
	if cz.Empty {
		cz.Empty = false
		cz.MinI, cz.MaxI = v, v
		return
	}
	if v < cz.MinI {
		cz.MinI = v
	}
	if v > cz.MaxI {
		cz.MaxI = v
	}
}

func (cz *ColZone) observeFloat(v float64) {
	if math.IsNaN(v) || math.IsInf(v, 0) {
		// NaN has no place in a total order, and infinities do not
		// survive the JSON persistence round-trip; both disable pruning
		// on the column.
		cz.Empty = false
		cz.Unbounded = true
		cz.MinF, cz.MaxF = 0, 0
		return
	}
	if cz.Empty {
		cz.Empty = false
		cz.MinF, cz.MaxF = v, v
		return
	}
	if cz.Unbounded {
		return
	}
	if v < cz.MinF {
		cz.MinF = v
	}
	if v > cz.MaxF {
		cz.MaxF = v
	}
}

func (cz *ColZone) observeBytes(v []byte) {
	p := v
	trunc := false
	if len(p) > zonePrefixLen {
		p = p[:zonePrefixLen]
		trunc = true
	}
	// MinB/MaxB buffers are immutable once published: Col hands struct
	// copies to readers that compare them outside the map's lock, so a
	// bound is always replaced with a freshly allocated slice, never
	// rewritten in place. Replacement only happens when the bound
	// actually moves, so the allocation is rare.
	if cz.Empty {
		cz.Empty = false
		cz.MinB = append([]byte(nil), p...)
		cz.MaxB = append([]byte(nil), p...)
		cz.MaxBTrunc = trunc
		return
	}
	// MinB: prefix of the minimum still lower-bounds every value.
	if bytes.Compare(p, cz.MinB) < 0 {
		cz.MinB = append([]byte(nil), p...)
	}
	// MaxB: compare against the current upper bound conservatively — a
	// value that reaches or exceeds the stored max prefix replaces it.
	if c := bytes.Compare(p, cz.MaxB); c > 0 || (c == 0 && trunc && !cz.MaxBTrunc) {
		cz.MaxB = append([]byte(nil), p...)
		cz.MaxBTrunc = trunc
	}
}

// BytesUpper returns the column's effective upper bound for bytes
// values and whether it is exclusive. ok is false when the zone places
// no upper bound (truncated max with no byte successor).
func (cz ColZone) BytesUpper() (ub []byte, exclusive, ok bool) {
	if !cz.MaxBTrunc {
		return cz.MaxB, false, true
	}
	s, ok := BytesSucc(cz.MaxB)
	return s, true, ok
}

// BytesSucc returns the smallest byte string greater than every string
// with prefix p: p with its last byte incremented (carrying through
// trailing 0xff). ok is false when no such string exists (all 0xff).
func BytesSucc(p []byte) ([]byte, bool) {
	s := append([]byte(nil), p...)
	for i := len(s) - 1; i >= 0; i-- {
		if s[i] != 0xff {
			s[i]++
			return s[:i+1], true
		}
	}
	return nil, false
}
