package store

import (
	"expvar"
	"fmt"
	"sync"
	"sync/atomic"

	"decibel/internal/heap"
	"decibel/internal/record"
)

// Segment encodings. The empty string means heap (the legacy value:
// catalogs written before page compression carry no tag and read
// transparently as heap files).
const (
	// EncHeap is the uncompressed paged heap-file layout.
	EncHeap = "heap"
	// EncDCZ is the compressed per-column page layout of cfile.go
	// (dictionary for low-cardinality planes, delta+varint for int64,
	// CRC-checked pages).
	EncDCZ = "dcz"
)

// SegFile is the file surface a segment reads and writes through —
// the full method set of heap.File, which compressed segment files
// (CompressedFile) implement read-only. Engines address segments only
// through this interface, so a compacted, compressed segment scans
// exactly like a heap one.
type SegFile interface {
	Path() string
	Count() int64
	RecordSize() int
	SizeBytes() int64
	DiskBytes() int64
	PerPage() int
	Freeze()
	Append(rec []byte) (int64, error)
	Read(slot int64, dst []byte) error
	Scan(from, to int64, fn func(slot int64, rec []byte) bool) error
	ScanLive(live heap.Bitmapper, fn func(slot int64, rec []byte) bool) error
	ScanLiveRange(live heap.Bitmapper, from, to int64, fn func(slot int64, rec []byte) bool) error
	Truncate(n int64) error
	Sync() error
	Flush() error
	Close() error
}

// SegMeta is the persisted, engine-independent part of a segment's
// catalog entry. Engines embed it in their own catalog JSON (tf's
// extent table, vf's and hy's segment lists) so the shared state —
// the physical schema-version id, the freeze flag, the encoding tag
// and the zone map — serializes alongside the engine-specific fields.
// Catalogs written before this layer existed lack the zone (and may
// record Cols 0 for "full layout"); Open rebuilds transparently.
type SegMeta struct {
	Cols     int      `json:"cols,omitempty"`
	Frozen   bool     `json:"frozen,omitempty"`
	Encoding string   `json:"enc,omitempty"` // "", EncHeap or EncDCZ
	Zone     *ZoneMap `json:"zone,omitempty"`
}

// Segment is one append target: a fixed-width heap file tagged with
// the physical layout its records are encoded under, plus its zone
// map. Engines embed *Segment in their per-scheme segment structs and
// add layout-specific state (tf's global slot base, vf's lineage link,
// hy's local bitmaps).
type Segment struct {
	File     SegFile
	Cols     int            // physical schema columns records here are encoded with
	Schema   *record.Schema // layout of Cols columns
	Frozen   bool
	Encoding string // "" (heap), EncHeap or EncDCZ
	zone     *ZoneMap
	pages    *PageZones // optional page-granularity zones (EnablePageZones)

	// Reader pinning: scans that snapshot the segment table outside the
	// engine lock pin each segment they will read; compaction retires
	// replaced segments, deferring close+unlink until the last pinned
	// reader drains.
	pinMu   sync.Mutex
	pins    int
	retired bool
	cleanup func()
}

// Store owns the shared segment mechanics for one engine instance:
// opening and creating segments against the table's schema history,
// rotating append targets when the schema widens, and encoding records
// into a segment's physical layout. Mutating methods run under the
// owning engine's lock (the Store has no lock of its own — the
// append scratch buffer relies on the engine's).
type Store struct {
	Pool *heap.Pool
	Hist *record.History

	insBuf []byte // storage-conversion scratch; guarded by the engine's lock
}

// New builds a Store over the engine's buffer pool and schema history.
func New(pool *heap.Pool, hist *record.History) *Store {
	return &Store{Pool: pool, Hist: hist}
}

// Open opens (or creates) the segment whose heap file lives at path,
// restoring the shared state from m. A non-positive m.Cols means the
// catalog predates schema versioning and the segment uses the table's
// full physical layout. safeCount >= 0 rolls back uncommitted appends
// by truncating the file past it (vf's recovery contract); pass -1 to
// keep every record. The zone map is restored from m.Zone and extended
// over any rows it does not cover — which rebuilds it wholesale for
// catalogs from before zone maps existed.
func (st *Store) Open(path string, m SegMeta, safeCount int64) (*Segment, error) {
	cols := m.Cols
	if cols <= 0 {
		cols = st.Hist.PhysCols()
	}
	schema, err := st.Hist.PhysByCount(cols)
	if err != nil {
		return nil, err
	}
	var f SegFile
	switch m.Encoding {
	case "", EncHeap:
		f, err = heap.Open(st.Pool, path, schema.RecordSize())
	case EncDCZ:
		f, err = OpenCompressed(path)
		if err == nil && f.RecordSize() != schema.RecordSize() {
			f.Close()
			err = fmt.Errorf("store: %s: compressed record size %d, schema wants %d", path, f.RecordSize(), schema.RecordSize())
		}
	default:
		err = fmt.Errorf("store: %s: unknown segment encoding %q", path, m.Encoding)
	}
	if err != nil {
		return nil, err
	}
	if safeCount >= 0 && f.Count() > safeCount {
		if err := f.Truncate(safeCount); err != nil {
			f.Close()
			return nil, err
		}
	}
	s := &Segment{File: f, Cols: cols, Schema: schema, Encoding: m.Encoding, zone: m.Zone}
	if m.Frozen {
		s.Freeze()
	}
	if err := st.extendZone(s); err != nil {
		f.Close()
		return nil, err
	}
	return s, nil
}

// Create creates a fresh, empty segment at path with the physical
// layout of cols columns.
func (st *Store) Create(path string, cols int) (*Segment, error) {
	return st.Open(path, SegMeta{Cols: cols}, -1)
}

// extendZone brings the segment's zone map up to the file's row count,
// scanning only the uncovered tail. A missing, over-long (the file was
// truncated below what the map covered) or shape-mismatched map is
// rebuilt from scratch.
func (st *Store) extendZone(s *Segment) error {
	count := s.File.Count()
	z := s.zone
	if z == nil || z.Rows() > count || z.NumCols() != s.Schema.NumColumns() {
		z = NewZoneMap(s.Schema.NumColumns())
		s.zone = z
	}
	from := z.Rows()
	if from >= count {
		return nil
	}
	return s.File.Scan(from, count, func(_ int64, buf []byte) bool {
		z.Update(s.Schema, buf)
		return true
	})
}

// Meta returns the segment's persistable shared state. The zone map is
// shared, not copied; its JSON marshaling snapshots it under its own
// lock.
func (s *Segment) Meta() SegMeta {
	return SegMeta{Cols: s.Cols, Frozen: s.Frozen, Encoding: s.Encoding, Zone: s.zone}
}

// Pin marks the segment in use by a reader whose liveness snapshot was
// taken under the engine lock but whose page reads run outside it.
// Every Pin must be matched by one Unpin.
func (s *Segment) Pin() {
	s.pinMu.Lock()
	s.pins++
	s.pinMu.Unlock()
}

// Unpin releases one reader pin. If the segment was retired while
// pinned, the last Unpin runs the deferred cleanup.
func (s *Segment) Unpin() {
	s.pinMu.Lock()
	if s.pins <= 0 {
		s.pinMu.Unlock()
		panic("store: segment unpin without pin")
	}
	s.pins--
	var cl func()
	if s.pins == 0 && s.retired {
		cl, s.cleanup = s.cleanup, nil
	}
	s.pinMu.Unlock()
	if cl != nil {
		cl()
	}
}

// Retire marks a segment replaced by compaction: cleanup (close the
// file, unlink it) runs immediately when no reader holds a pin, or on
// the last Unpin otherwise. The caller must have removed the segment
// from every structure new scans resolve through before retiring it.
func (s *Segment) Retire(cleanup func()) {
	s.pinMu.Lock()
	s.retired = true
	if s.pins == 0 {
		s.pinMu.Unlock()
		if cleanup != nil {
			cleanup()
		}
		return
	}
	s.cleanup = cleanup
	s.pinMu.Unlock()
}

// Zone returns the segment's zone map.
func (s *Segment) Zone() *ZoneMap { return s.zone }

// Freeze marks the segment immutable: the heap file rejects further
// appends. Freezing twice is a no-op.
func (s *Segment) Freeze() {
	if !s.Frozen {
		s.Frozen = true
		s.File.Freeze()
	}
}

// NeedsRotation reports whether the segment's layout is too narrow to
// store records at the physical width `need` — the trigger for sealing
// it and opening a successor (a schema change never rewrites pages).
func (s *Segment) NeedsRotation(need int) bool { return s.Cols < need }

// AppendRaw appends one record buffer already encoded in the segment's
// layout, folding it into the zone map.
func (s *Segment) AppendRaw(buf []byte) (int64, error) {
	slot, err := s.File.Append(buf)
	if err != nil {
		return 0, err
	}
	s.zone.Update(s.Schema, buf)
	if s.pages != nil {
		s.pages.Update(s.Schema, buf)
	}
	return slot, nil
}

// Append encodes rec — built under any schema the history has produced
// — into the segment's physical layout (widening older-schema records
// with declared defaults) and appends it. Caller holds the engine
// lock guarding the Store's scratch buffer.
func (st *Store) Append(s *Segment, rec *record.Record) (int64, error) {
	if n := s.Schema.RecordSize(); len(st.insBuf) < n {
		st.insBuf = make([]byte, n)
	}
	buf, err := st.Hist.StorageBytes(rec, s.Cols, st.insBuf[:s.Schema.RecordSize()])
	if err != nil {
		return 0, err
	}
	return s.AppendRaw(buf)
}

// AppendTombstone appends a deletion marker for pk in the segment's
// layout (vf's delete path). Tombstones never enter the zone map.
func (s *Segment) AppendTombstone(pk int64) (int64, error) {
	tomb := record.New(s.Schema)
	tomb.SetPK(pk)
	tomb.SetTombstone(true)
	return s.AppendRaw(tomb.Bytes())
}

// WriteTarget is the shared rotation step of every engine's write
// path: it returns s unchanged while its layout can hold records of
// physical width need; otherwise it freezes s (when freeze is set —
// hybrid freezes rotated heads like branch points, version-first
// leaves them as plain lineage parents) and creates a successor at
// newPath with the wider layout. rotated reports which happened, so
// the engine can relink its bookkeeping (extent table, lineage link,
// head-segment map) around the new segment.
func (st *Store) WriteTarget(s *Segment, need int, freeze bool, newPath string) (ns *Segment, rotated bool, err error) {
	if !s.NeedsRotation(need) {
		return s, false, nil
	}
	if freeze {
		// Flush first so the sealed segment's recorded row count is
		// backed by the file on reopen.
		if err := s.File.Flush(); err != nil {
			return nil, false, err
		}
		s.Freeze()
	}
	ns, err = st.Create(newPath, need)
	if err != nil {
		return nil, false, err
	}
	return ns, true, nil
}

// Segment-scan counters: every zone-map pruning decision increments
// exactly one of them, so a selective scan's segment skipping is
// observable (expvar "decibel.segments_scanned"/".segments_skipped",
// and per-op deltas in the bench harness).
var (
	segsScanned atomic.Int64
	segsSkipped atomic.Int64
)

func init() {
	expvar.Publish("decibel.segments_scanned", expvar.Func(func() any { return segsScanned.Load() }))
	expvar.Publish("decibel.segments_skipped", expvar.Func(func() any { return segsSkipped.Load() }))
}

// CountSegmentScanned records a segment that a pruning decision let
// through to a page-level scan.
func CountSegmentScanned() { segsScanned.Add(1) }

// CountSegmentSkipped records a segment a zone map pruned entirely.
func CountSegmentSkipped() { segsSkipped.Add(1) }

// SegmentScanCounters returns the cumulative pruning counters.
func SegmentScanCounters() (scanned, skipped int64) {
	return segsScanned.Load(), segsSkipped.Load()
}

// ColZoneStat is one formatted zone-map entry for diagnostics.
type ColZoneStat struct {
	Column string
	Min    string
	Max    string
}

// SegmentStat is the per-segment summary behind the CLI's
// `stats <table>` output.
type SegmentStat struct {
	Name       string
	Rows       int64
	Cols       int
	Frozen     bool
	Encoding   string // "heap" or "dcz"
	RawBytes   int64  // logical record bytes (rows * record size)
	DiskBytes  int64  // bytes the segment file occupies on disk
	Tombstones int64  // tombstone slots (reclaimable by compaction)
	// Version-first lineage shape (zero on other engines): the number
	// of lineage steps a scan rooted at this segment's tip resolves
	// through, and the size of the segment's merge override table.
	LineageDepth int
	Overrides    int
	Zones        []ColZoneStat
}

// Stat summarizes the segment under the given display name.
func (s *Segment) Stat(name string) SegmentStat {
	enc := s.Encoding
	if enc == "" {
		enc = EncHeap
	}
	st := SegmentStat{
		Name: name, Rows: s.File.Count(), Cols: s.Cols, Frozen: s.Frozen,
		Encoding:  enc,
		RawBytes:  s.File.SizeBytes(),
		DiskBytes: s.File.DiskBytes(),
	}
	if s.zone != nil {
		st.Tombstones = s.zone.Tombstones()
	}
	for i := 0; i < s.Schema.NumColumns(); i++ {
		cz, ok := s.zone.Col(i)
		zs := ColZoneStat{Column: s.Schema.Column(i).Name, Min: "-", Max: "-"}
		if ok && !cz.Empty && !cz.Unbounded {
			switch s.Schema.Column(i).Type {
			case record.Int32, record.Int64:
				zs.Min, zs.Max = fmt.Sprintf("%d", cz.MinI), fmt.Sprintf("%d", cz.MaxI)
			case record.Float64:
				zs.Min, zs.Max = fmt.Sprintf("%g", cz.MinF), fmt.Sprintf("%g", cz.MaxF)
			case record.Bytes:
				zs.Min = fmt.Sprintf("%q", cz.MinB)
				zs.Max = fmt.Sprintf("%q", cz.MaxB)
				if cz.MaxBTrunc {
					zs.Max += "…"
				}
			}
		}
		st.Zones = append(st.Zones, zs)
	}
	return st
}
