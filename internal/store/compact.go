package store

import "os"

// Compaction helpers shared by the three engines' passes: re-encoding
// a frozen segment into the compressed page layout, and retiring a
// replaced segment once its pinned readers drain. The catalog-swap
// protocol itself (temp write, fsync, rename, unlink) belongs to the
// engines — each owns its own catalog invariants.

// Pages returns the number of compressed pages flushed so far; after
// WriteFile it is the file's final page count.
func (w *CompressedWriter) Pages() int { return len(w.index) }

// CompressSegment re-encodes the first count rows of segment s into a
// compressed .dcz file at newPath (written and fsynced in full) and
// opens it as a frozen replacement segment sharing s's schema-version
// id. count normally equals s.File.Count(); tuple-first passes the
// sealed extent length, dropping rows past the seal that no global
// slot can address. The returned page count feeds the pass's
// PagesCompressed stat. The caller is responsible for swapping the
// replacement into its catalog and retiring s.
func (st *Store) CompressSegment(s *Segment, newPath string, count int64) (*Segment, int, error) {
	w := NewCompressedWriter(s.Schema, s.File.PerPage())
	var aerr error
	err := s.File.Scan(0, count, func(_ int64, rec []byte) bool {
		aerr = w.Append(rec)
		return aerr == nil
	})
	if err == nil {
		err = aerr
	}
	if err != nil {
		return nil, 0, err
	}
	if err := w.WriteFile(newPath); err != nil {
		return nil, 0, err
	}
	ns, err := st.Open(newPath, SegMeta{Cols: s.Cols, Frozen: true, Encoding: EncDCZ, Zone: s.zone}, -1)
	if err != nil {
		os.Remove(newPath)
		return nil, 0, err
	}
	return ns, w.Pages(), nil
}

// Retire schedules the segment's cleanup — close its file and remove
// path — for when the last pinned reader drains (immediately when
// nothing is pinned). See Segment.Retire for the pinning protocol.
func (s *Segment) RetireAndRemove(path string) {
	s.Retire(func() {
		s.File.Close()
		os.Remove(path)
	})
}
