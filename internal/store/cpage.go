package store

// cpage.go is the page codec behind EncDCZ segment files. A page block
// holds up to perPage records transposed into per-plane columns: one
// plane per byte range of the record layout (the header byte and each
// column), each plane independently encoded with whichever of four
// encodings is smallest for its data. Planes are self-describing —
// they carry their own byte offset and width — so the decoder needs no
// schema and can fully validate a block in isolation, which is what
// makes the format fuzzable: a torn or corrupted page must fail one of
// the structural checks, never silently misdecode.
//
// Page block layout (all integers little-endian):
//
//	u32 rows | u16 nplanes | nplanes × plane
//
// Plane layout:
//
//	u32 off | u32 width | u8 enc | u32 len | len bytes payload
//
// Plane encodings:
//
//	0 raw    payload is rows×width column bytes verbatim
//	1 const  payload is width bytes, replicated into every row
//	2 dict   u16 ndict | ndict×width values | rows × u8 index
//	3 delta  zigzag-varint deltas of the int64 values (width 8 only);
//	         the first varint is the absolute first value
import (
	"encoding/binary"
	"fmt"

	"decibel/internal/record"
)

const (
	cEncRaw   = 0
	cEncConst = 1
	cEncDict  = 2
	cEncDelta = 3

	// cDictMax caps dictionary size: indexes are one byte.
	cDictMax = 256
)

// cplane is one byte range of the record layout, encoded as a column.
type cplane struct {
	off, width int
}

// planesFor derives the plane tiling from a physical schema: the
// header byte, then one plane per column. NewSchema packs columns
// back-to-back after the header, so the planes tile the record exactly.
func planesFor(schema *record.Schema) []cplane {
	n := schema.NumColumns()
	ps := make([]cplane, 0, n+1)
	ps = append(ps, cplane{off: 0, width: record.HeaderSize})
	for i := 0; i < n; i++ {
		ps = append(ps, cplane{off: schema.ColumnOffset(i), width: schema.Column(i).Width()})
	}
	return ps
}

// encodePage compresses rows records stored back-to-back in data
// (rows*recSize bytes) into one page block, appended to dst.
func encodePage(dst []byte, data []byte, rows, recSize int, planes []cplane) []byte {
	dst = binary.LittleEndian.AppendUint32(dst, uint32(rows))
	dst = binary.LittleEndian.AppendUint16(dst, uint16(len(planes)))
	col := make([]byte, 0, rows*8)
	for _, p := range planes {
		// Transpose the plane's bytes into a contiguous column.
		col = col[:0]
		for r := 0; r < rows; r++ {
			at := r*recSize + p.off
			col = append(col, data[at:at+p.width]...)
		}
		enc, payload := encodePlane(col, rows, p.width)
		dst = binary.LittleEndian.AppendUint32(dst, uint32(p.off))
		dst = binary.LittleEndian.AppendUint32(dst, uint32(p.width))
		dst = append(dst, enc)
		dst = binary.LittleEndian.AppendUint32(dst, uint32(len(payload)))
		dst = append(dst, payload...)
	}
	return dst
}

// encodePlane picks the smallest encoding for one transposed column of
// rows values of the given width. col is reused by the caller; the
// returned payload aliases it only for cEncRaw, which the caller
// appends before the next plane overwrites it.
func encodePlane(col []byte, rows, width int) (byte, []byte) {
	bestEnc, best := byte(cEncRaw), col

	if p, ok := encodeConst(col, rows, width); ok && len(p) < len(best) {
		bestEnc, best = cEncConst, p
	}
	if p, ok := encodeDict(col, rows, width); ok && len(p) < len(best) {
		bestEnc, best = cEncDict, p
	}
	if width == 8 {
		if p := encodeDelta(col, rows); len(p) < len(best) {
			bestEnc, best = cEncDelta, p
		}
	}
	return bestEnc, best
}

func encodeConst(col []byte, rows, width int) ([]byte, bool) {
	first := col[:width]
	for r := 1; r < rows; r++ {
		if string(col[r*width:(r+1)*width]) != string(first) {
			return nil, false
		}
	}
	return first, true
}

func encodeDict(col []byte, rows, width int) ([]byte, bool) {
	if rows < 2 {
		return nil, false
	}
	idx := make(map[string]int, 16)
	var values []byte
	indexes := make([]byte, rows)
	for r := 0; r < rows; r++ {
		v := string(col[r*width : (r+1)*width])
		i, ok := idx[v]
		if !ok {
			i = len(idx)
			if i >= cDictMax {
				return nil, false
			}
			idx[v] = i
			values = append(values, v...)
		}
		indexes[r] = byte(i)
	}
	p := make([]byte, 0, 2+len(values)+rows)
	p = binary.LittleEndian.AppendUint16(p, uint16(len(idx)))
	p = append(p, values...)
	p = append(p, indexes...)
	return p, true
}

func encodeDelta(col []byte, rows int) []byte {
	p := make([]byte, 0, rows*2)
	prev := int64(0)
	for r := 0; r < rows; r++ {
		v := int64(binary.LittleEndian.Uint64(col[r*8 : (r+1)*8]))
		p = binary.AppendVarint(p, v-prev)
		prev = v
	}
	return p
}

// decodePage decodes one page block into a freshly allocated
// rows*recSize record-major buffer. maxRows bounds the row count
// (perPage); wantRows, when >= 0, is the exact row count the caller
// expects from the file header. Every structural invariant is checked
// so corrupted input errors instead of misdecoding.
func decodePage(blk []byte, recSize, maxRows, wantRows int) ([]byte, error) {
	if len(blk) < 6 {
		return nil, fmt.Errorf("dcz: page block truncated (%d bytes)", len(blk))
	}
	rows := int(binary.LittleEndian.Uint32(blk[0:4]))
	nplanes := int(binary.LittleEndian.Uint16(blk[4:6]))
	if rows <= 0 || rows > maxRows {
		return nil, fmt.Errorf("dcz: page rows %d out of range (1..%d)", rows, maxRows)
	}
	if wantRows >= 0 && rows != wantRows {
		return nil, fmt.Errorf("dcz: page has %d rows, want %d", rows, wantRows)
	}
	if nplanes == 0 {
		return nil, fmt.Errorf("dcz: page has no planes")
	}
	out := make([]byte, rows*recSize)
	blk = blk[6:]
	cur := 0 // next record byte offset a plane must cover
	for pi := 0; pi < nplanes; pi++ {
		if len(blk) < 13 {
			return nil, fmt.Errorf("dcz: plane %d header truncated", pi)
		}
		off := int(binary.LittleEndian.Uint32(blk[0:4]))
		width := int(binary.LittleEndian.Uint32(blk[4:8]))
		enc := blk[8]
		plen := int(binary.LittleEndian.Uint32(blk[9:13]))
		blk = blk[13:]
		if off != cur || width <= 0 || off+width > recSize {
			return nil, fmt.Errorf("dcz: plane %d at [%d,%d) breaks record tiling (at %d of %d)", pi, off, off+width, cur, recSize)
		}
		if plen < 0 || plen > len(blk) {
			return nil, fmt.Errorf("dcz: plane %d payload truncated (%d of %d bytes)", pi, len(blk), plen)
		}
		if err := decodePlane(out, enc, blk[:plen], rows, recSize, off, width); err != nil {
			return nil, fmt.Errorf("dcz: plane %d: %w", pi, err)
		}
		blk = blk[plen:]
		cur += width
	}
	if cur != recSize {
		return nil, fmt.Errorf("dcz: planes cover %d of %d record bytes", cur, recSize)
	}
	if len(blk) != 0 {
		return nil, fmt.Errorf("dcz: %d trailing bytes after last plane", len(blk))
	}
	return out, nil
}

// decodePlane scatters one plane's payload into the record-major out
// buffer at the plane's byte range.
func decodePlane(out []byte, enc byte, payload []byte, rows, recSize, off, width int) error {
	switch enc {
	case cEncRaw:
		if len(payload) != rows*width {
			return fmt.Errorf("raw payload %d bytes, want %d", len(payload), rows*width)
		}
		for r := 0; r < rows; r++ {
			copy(out[r*recSize+off:], payload[r*width:(r+1)*width])
		}
	case cEncConst:
		if len(payload) != width {
			return fmt.Errorf("const payload %d bytes, want %d", len(payload), width)
		}
		for r := 0; r < rows; r++ {
			copy(out[r*recSize+off:], payload)
		}
	case cEncDict:
		if len(payload) < 2 {
			return fmt.Errorf("dict payload truncated")
		}
		ndict := int(binary.LittleEndian.Uint16(payload[0:2]))
		if ndict < 1 || ndict > cDictMax {
			return fmt.Errorf("dict size %d out of range", ndict)
		}
		if len(payload) != 2+ndict*width+rows {
			return fmt.Errorf("dict payload %d bytes, want %d", len(payload), 2+ndict*width+rows)
		}
		values := payload[2 : 2+ndict*width]
		indexes := payload[2+ndict*width:]
		for r := 0; r < rows; r++ {
			i := int(indexes[r])
			if i >= ndict {
				return fmt.Errorf("dict index %d out of range (%d values)", i, ndict)
			}
			copy(out[r*recSize+off:], values[i*width:(i+1)*width])
		}
	case cEncDelta:
		if width != 8 {
			return fmt.Errorf("delta encoding on width-%d plane", width)
		}
		prev := int64(0)
		for r := 0; r < rows; r++ {
			d, n := binary.Varint(payload)
			if n <= 0 {
				return fmt.Errorf("delta varint %d malformed", r)
			}
			payload = payload[n:]
			prev += d
			binary.LittleEndian.PutUint64(out[r*recSize+off:], uint64(prev))
		}
		if len(payload) != 0 {
			return fmt.Errorf("%d trailing bytes after deltas", len(payload))
		}
	default:
		return fmt.Errorf("unknown plane encoding %d", enc)
	}
	return nil
}
