// Package bench implements Decibel's versioning benchmark (Section 4):
// a seeded data generator and loader that build synthetic versioned
// datasets under the four branching strategies — deep, flat, science
// and curation — with the paper's knobs (update/insert mix, commit
// cadence, interleaved loading, mainline skew), plus the branch
// selection helpers the evaluation queries use (tail, random child,
// oldest/youngest active, mainline/dev/feature).
package bench

import (
	"fmt"
	"math/rand"
	"time"

	"decibel/internal/core"
	"decibel/internal/record"
	"decibel/internal/vgraph"
)

// Strategy is one of the benchmark's branching strategies (Figure 5).
type Strategy int

// The four branching strategies.
const (
	// Deep is a single linear branch chain: each branch is created from
	// the end of the previous one and, once a branch is created, no
	// further records are inserted into its parent.
	Deep Strategy = iota
	// Flat creates many child branches from a single initial parent.
	Flat
	// Science models data science teams: branches fork from mainline
	// commits (or active branch heads), live for a fixed lifetime, then
	// retire. No merges. Inserts may be skewed toward mainline.
	Science
	// Curation models collaborative curation: development branches fork
	// from mainline and merge back; short-lived feature/fix branches
	// fork from mainline or a dev branch and merge back into their
	// parents.
	Curation
)

// String returns the strategy name as used in the paper's figures.
func (s Strategy) String() string {
	switch s {
	case Deep:
		return "deep"
	case Flat:
		return "flat"
	case Science:
		return "sci"
	case Curation:
		return "cur"
	default:
		return fmt.Sprintf("Strategy(%d)", int(s))
	}
}

// Config tunes the generated dataset. The zero value is not valid; use
// DefaultConfig and override.
type Config struct {
	Strategy         Strategy
	Branches         int     // number of branches to create
	RecordsPerBranch int     // insert/update operations per branch
	RecordBytes      int     // encoded record size (paper: 1024)
	UpdateFrac       float64 // fraction of operations that are updates (paper: 0.2)
	CommitEvery      int     // operations per branch between commits (paper: 10000)
	Seed             int64   // deterministic generator seed
	MainlineSkew     int     // science: mainline receives Skew× the ops of a branch (paper: 2)
	ScienceLifetime  int     // science: ops a branch receives before retiring
	CurationDevOps   int     // curation: ops a dev branch receives before merging back
	CurationFeatOps  int     // curation: ops a feature branch receives before merging back
	ThreeWayMerges   bool    // curation: use field-level merges
	// Clustered selects the benchmark's clustered loading mode (Section
	// 4.2): operations for each branch are batched together instead of
	// interleaved, so tuple-first's shared heap file ends up clustered
	// by branch (the "tuple-first clustered" variant of Figure 7).
	Clustered bool
}

// DefaultConfig returns a laptop-scale configuration that preserves the
// paper's ratios (1 KB records, 20% updates, commits every
// RecordsPerBranch/5 ops).
func DefaultConfig(s Strategy) Config {
	return Config{
		Strategy:         s,
		Branches:         10,
		RecordsPerBranch: 1000,
		RecordBytes:      1024,
		UpdateFrac:       0.2,
		CommitEvery:      200,
		Seed:             1,
		MainlineSkew:     2,
		ScienceLifetime:  2000,
		CurationDevOps:   1500,
		CurationFeatOps:  300,
	}
}

// Dataset is a loaded benchmark dataset plus the bookkeeping the
// evaluation queries need.
type Dataset struct {
	DB     *core.Database
	Table  *core.Table
	Schema *record.Schema
	Cfg    Config

	Mainline *vgraph.Branch
	// Branches in creation order (mainline first).
	Branches []*vgraph.Branch
	// Commits in creation order.
	Commits []*vgraph.Commit
	// Per-role branch sets for query targeting.
	Children []*vgraph.Branch // flat: children of the root
	Active   []*vgraph.Branch // science/curation: currently active branches
	Retired  []*vgraph.Branch // science: retired branches
	Devs     []*vgraph.Branch // curation: active development branches
	Feats    []*vgraph.Branch // curation: active feature branches

	// Merge performance samples (curation): stats plus wall time.
	Merges []MergeSample

	LoadTime time.Duration

	rng    *rand.Rand
	nextPK int64
	keys   map[vgraph.BranchID][]int64 // live keys per branch (for updates)
	since  map[vgraph.BranchID]int     // ops since last commit
}

// MergeSample is one merge measurement for Table 3.
type MergeSample struct {
	Stats   core.MergeStats
	Elapsed time.Duration
}

// Load builds a dataset at dir with the given engine and configuration.
func Load(dir string, factory core.Factory, opt core.Options, cfg Config) (*Dataset, error) {
	start := time.Now()
	db, err := core.Open(dir, factory, opt)
	if err != nil {
		return nil, err
	}
	schema := record.Benchmark(cfg.RecordBytes)
	if _, err := db.CreateTable("r", schema); err != nil {
		db.Close()
		return nil, err
	}
	d := &Dataset{
		DB:     db,
		Schema: schema,
		Cfg:    cfg,
		rng:    rand.New(rand.NewSource(cfg.Seed)),
		nextPK: 1,
		keys:   make(map[vgraph.BranchID][]int64),
		since:  make(map[vgraph.BranchID]int),
	}
	tbl, _ := db.Table("r")
	d.Table = tbl
	master, c0, err := db.Init("benchmark load")
	if err != nil {
		db.Close()
		return nil, err
	}
	d.Mainline = master
	d.Branches = append(d.Branches, master)
	d.Commits = append(d.Commits, c0)
	d.keys[master.ID] = nil

	switch cfg.Strategy {
	case Deep:
		err = d.loadDeep()
	case Flat:
		err = d.loadFlat()
	case Science:
		err = d.loadScience()
	case Curation:
		err = d.loadCuration()
	default:
		err = fmt.Errorf("bench: unknown strategy %d", cfg.Strategy)
	}
	if err != nil {
		db.Close()
		return nil, err
	}
	// Final commit on every branch with pending operations, so head
	// state is durable.
	for _, b := range d.Branches {
		if d.since[b.ID] > 0 {
			if err := d.commit(b.ID); err != nil {
				db.Close()
				return nil, err
			}
		}
	}
	if err := db.Flush(); err != nil {
		db.Close()
		return nil, err
	}
	d.LoadTime = time.Since(start)
	return d, nil
}

// Close releases the dataset.
func (d *Dataset) Close() error { return d.DB.Close() }

// op performs one insert or update on a branch, per the configured mix.
func (d *Dataset) op(b vgraph.BranchID) error {
	keys := d.keys[b]
	rec := record.New(d.Schema)
	if len(keys) > 0 && d.rng.Float64() < d.Cfg.UpdateFrac {
		rec.SetPK(keys[d.rng.Intn(len(keys))])
	} else {
		rec.SetPK(d.nextPK)
		d.keys[b] = append(keys, d.nextPK)
		d.nextPK++
	}
	for i := 1; i < d.Schema.NumColumns(); i++ {
		rec.Set(i, d.rng.Int63())
	}
	if err := d.Table.Insert(b, rec); err != nil {
		return err
	}
	d.since[b]++
	if d.since[b] >= d.Cfg.CommitEvery {
		return d.commit(b)
	}
	return nil
}

func (d *Dataset) commit(b vgraph.BranchID) error {
	c, err := d.DB.Commit(b, "load")
	if err != nil {
		return err
	}
	d.Commits = append(d.Commits, c)
	d.since[b] = 0
	return nil
}

// branchFromHead creates and registers a branch off another branch's
// head, committing the parent first if it has pending operations (a
// branch point must be a commit).
func (d *Dataset) branchFromHead(name string, parent vgraph.BranchID) (*vgraph.Branch, error) {
	if d.since[parent] > 0 {
		if err := d.commit(parent); err != nil {
			return nil, err
		}
	}
	pb, _ := d.DB.Graph().Branch(parent)
	b, err := d.DB.Branch(name, pb.Head)
	if err != nil {
		return nil, err
	}
	d.Branches = append(d.Branches, b)
	d.keys[b.ID] = append([]int64(nil), d.keys[parent]...)
	return b, nil
}

// loadDeep builds the linear chain: branch i+1 forks from the end of
// branch i after branch i received its full quota.
func (d *Dataset) loadDeep() error {
	cur := d.Mainline
	for i := 0; ; i++ {
		for n := 0; n < d.Cfg.RecordsPerBranch; n++ {
			if err := d.op(cur.ID); err != nil {
				return err
			}
		}
		if i == d.Cfg.Branches-1 {
			break
		}
		nb, err := d.branchFromHead(fmt.Sprintf("deep%d", i+1), cur.ID)
		if err != nil {
			return err
		}
		cur = nb
	}
	return nil
}

// TailBranch returns the most recently created branch (the deep tail).
func (d *Dataset) TailBranch() *vgraph.Branch { return d.Branches[len(d.Branches)-1] }

// loadFlat gives the root its quota, then forks Branches-1 children and
// interleaves their operations uniformly at random (the paper's
// interleaved loading mode).
func (d *Dataset) loadFlat() error {
	for n := 0; n < d.Cfg.RecordsPerBranch; n++ {
		if err := d.op(d.Mainline.ID); err != nil {
			return err
		}
	}
	for i := 1; i < d.Cfg.Branches; i++ {
		nb, err := d.branchFromHead(fmt.Sprintf("flat%d", i), d.Mainline.ID)
		if err != nil {
			return err
		}
		d.Children = append(d.Children, nb)
	}
	if d.Cfg.Clustered {
		// Clustered mode: each child receives its whole quota in one
		// batch, so its records are contiguous in shared storage.
		for _, child := range d.Children {
			for n := 0; n < d.Cfg.RecordsPerBranch; n++ {
				if err := d.op(child.ID); err != nil {
					return err
				}
			}
		}
		return nil
	}
	total := (d.Cfg.Branches - 1) * d.Cfg.RecordsPerBranch
	for n := 0; n < total; n++ {
		child := d.Children[d.rng.Intn(len(d.Children))]
		if err := d.op(child.ID); err != nil {
			return err
		}
	}
	return nil
}

// RandomChild returns a uniformly random flat child.
func (d *Dataset) RandomChild(r *rand.Rand) *vgraph.Branch {
	return d.Children[r.Intn(len(d.Children))]
}

// loadScience interleaves operations across mainline and active working
// branches (mainline favored by MainlineSkew), forking a new working
// branch from the mainline head at regular intervals and retiring each
// after ScienceLifetime operations.
func (d *Dataset) loadScience() error {
	total := d.Cfg.Branches * d.Cfg.RecordsPerBranch
	spawnEvery := total / d.Cfg.Branches
	opsOn := make(map[vgraph.BranchID]int)
	nb := 1
	for n := 0; n < total; n++ {
		if n%spawnEvery == 0 && nb < d.Cfg.Branches {
			var b *vgraph.Branch
			var err error
			// Mostly fork from mainline commits; occasionally from an
			// active working branch head (Section 4.1).
			if len(d.Active) > 0 && d.rng.Intn(4) == 0 {
				parent := d.Active[d.rng.Intn(len(d.Active))]
				b, err = d.branchFromHead(fmt.Sprintf("sci%d", nb), parent.ID)
			} else {
				b, err = d.branchFromHead(fmt.Sprintf("sci%d", nb), d.Mainline.ID)
			}
			if err != nil {
				return err
			}
			d.Active = append(d.Active, b)
			nb++
		}
		// Pick a target: mainline weighted by skew against active branches.
		targets := len(d.Active) + d.Cfg.MainlineSkew
		t := d.rng.Intn(targets)
		var b *vgraph.Branch
		if t < d.Cfg.MainlineSkew || len(d.Active) == 0 {
			b = d.Mainline
		} else {
			b = d.Active[t-d.Cfg.MainlineSkew]
		}
		if err := d.op(b.ID); err != nil {
			return err
		}
		if b != d.Mainline {
			opsOn[b.ID]++
			if opsOn[b.ID] >= d.Cfg.ScienceLifetime {
				if err := d.retire(b); err != nil {
					return err
				}
			}
		}
	}
	return nil
}

func (d *Dataset) retire(b *vgraph.Branch) error {
	if d.since[b.ID] > 0 {
		if err := d.commit(b.ID); err != nil {
			return err
		}
	}
	if err := d.DB.Graph().SetActive(b.ID, false); err != nil {
		return err
	}
	for i, a := range d.Active {
		if a.ID == b.ID {
			d.Active = append(d.Active[:i], d.Active[i+1:]...)
			break
		}
	}
	d.Retired = append(d.Retired, b)
	return nil
}

// OldestActive returns the oldest still-active working branch (or
// mainline when none).
func (d *Dataset) OldestActive() *vgraph.Branch {
	if len(d.Active) == 0 {
		return d.Mainline
	}
	return d.Active[0]
}

// YoungestActive returns the most recently created active branch (or
// mainline when none).
func (d *Dataset) YoungestActive() *vgraph.Branch {
	if len(d.Active) == 0 {
		return d.Mainline
	}
	return d.Active[len(d.Active)-1]
}

// loadCuration runs the curation lifecycle: dev branches fork from
// mainline and merge back after CurationDevOps; feature branches fork
// from mainline or a dev branch and merge back into their parent after
// CurationFeatOps. Operations go to a uniformly random active head.
func (d *Dataset) loadCuration() error {
	type liveBranch struct {
		b      *vgraph.Branch
		parent vgraph.BranchID
		quota  int
		isDev  bool
	}
	var live []*liveBranch
	total := d.Cfg.Branches * d.Cfg.RecordsPerBranch
	spawnEvery := total / d.Cfg.Branches
	nb := 1
	mergeKind := core.TwoWay
	if d.Cfg.ThreeWayMerges {
		mergeKind = core.ThreeWay
	}

	refreshRoles := func() {
		d.Devs = d.Devs[:0]
		d.Feats = d.Feats[:0]
		d.Active = d.Active[:0]
		for _, lb := range live {
			d.Active = append(d.Active, lb.b)
			if lb.isDev {
				d.Devs = append(d.Devs, lb.b)
			} else {
				d.Feats = append(d.Feats, lb.b)
			}
		}
	}
	mergeBack := func(lb *liveBranch) error {
		if d.since[lb.b.ID] > 0 {
			if err := d.commit(lb.b.ID); err != nil {
				return err
			}
		}
		if d.since[lb.parent] > 0 {
			if err := d.commit(lb.parent); err != nil {
				return err
			}
		}
		t0 := time.Now()
		mc, st, err := d.DB.Merge(lb.parent, lb.b.ID, "merge back", mergeKind, false)
		if err != nil {
			return err
		}
		d.Merges = append(d.Merges, MergeSample{Stats: st, Elapsed: time.Since(t0)})
		d.Commits = append(d.Commits, mc)
		// Merged keys flow into the parent.
		seen := make(map[int64]bool, len(d.keys[lb.parent]))
		for _, k := range d.keys[lb.parent] {
			seen[k] = true
		}
		for _, k := range d.keys[lb.b.ID] {
			if !seen[k] {
				d.keys[lb.parent] = append(d.keys[lb.parent], k)
			}
		}
		return d.DB.Graph().SetActive(lb.b.ID, false)
	}

	for n := 0; n < total; n++ {
		if n%spawnEvery == 0 && nb < d.Cfg.Branches {
			isDev := d.rng.Intn(3) != 0 // two thirds dev, one third feature/fix
			parent := d.Mainline.ID
			quota := d.Cfg.CurationDevOps
			name := fmt.Sprintf("dev%d", nb)
			if !isDev {
				quota = d.Cfg.CurationFeatOps
				name = fmt.Sprintf("feat%d", nb)
				// Feature branches fork from mainline or an active dev.
				var devs []*liveBranch
				for _, lb := range live {
					if lb.isDev {
						devs = append(devs, lb)
					}
				}
				if len(devs) > 0 && d.rng.Intn(2) == 0 {
					parent = devs[d.rng.Intn(len(devs))].b.ID
				}
			}
			b, err := d.branchFromHead(name, parent)
			if err != nil {
				return err
			}
			live = append(live, &liveBranch{b: b, parent: parent, quota: quota, isDev: isDev})
			refreshRoles()
			nb++
		}
		// Uniform choice across mainline and live heads.
		idx := d.rng.Intn(len(live) + 1)
		if idx == len(live) {
			if err := d.op(d.Mainline.ID); err != nil {
				return err
			}
		} else {
			lb := live[idx]
			if err := d.op(lb.b.ID); err != nil {
				return err
			}
			lb.quota--
			if lb.quota <= 0 {
				// Merge back; feature branches whose dev parent already
				// merged away still merge into that (inactive) parent,
				// whose changes later merge to mainline transitively only
				// if the parent merges again — matching the benchmark's
				// "merged back into their parents".
				if err := mergeBack(lb); err != nil {
					return err
				}
				for i, l := range live {
					if l == lb {
						live = append(live[:i], live[i+1:]...)
						break
					}
				}
				refreshRoles()
			}
		}
	}
	// Merge any stragglers back so the dataset ends quiesced.
	for len(live) > 0 {
		lb := live[len(live)-1]
		if err := mergeBack(lb); err != nil {
			return err
		}
		live = live[:len(live)-1]
	}
	refreshRoles()
	return nil
}

// RandomDev returns a random active development branch (mainline if
// none are active).
func (d *Dataset) RandomDev(r *rand.Rand) *vgraph.Branch {
	if len(d.Devs) == 0 {
		return d.Mainline
	}
	return d.Devs[r.Intn(len(d.Devs))]
}

// RandomFeature returns a random active feature branch (mainline if
// none are active).
func (d *Dataset) RandomFeature(r *rand.Rand) *vgraph.Branch {
	if len(d.Feats) == 0 {
		return d.Mainline
	}
	return d.Feats[r.Intn(len(d.Feats))]
}

// TableWiseUpdate rewrites every live record in the branch (Section
// 5.5): each record is copied with fresh values, roughly doubling the
// branch's storage footprint.
func (d *Dataset) TableWiseUpdate(b vgraph.BranchID) error {
	keys := append([]int64(nil), d.keys[b]...)
	for _, pk := range keys {
		rec := record.New(d.Schema)
		rec.SetPK(pk)
		for i := 1; i < d.Schema.NumColumns(); i++ {
			rec.Set(i, d.rng.Int63())
		}
		if err := d.Table.Insert(b, rec); err != nil {
			return err
		}
		d.since[b]++
		if d.since[b] >= d.Cfg.CommitEvery {
			if err := d.commit(b); err != nil {
				return err
			}
		}
	}
	if d.since[b] > 0 {
		return d.commit(b)
	}
	return nil
}

// LiveKeys returns the number of live keys tracked for a branch.
func (d *Dataset) LiveKeys(b vgraph.BranchID) int { return len(d.keys[b]) }
