package bench

import (
	"math/rand"
	"testing"

	"decibel/internal/core"
	"decibel/internal/hy"
	"decibel/internal/record"
	"decibel/internal/tf"
	"decibel/internal/vf"
)

func tinyConfig(s Strategy) Config {
	cfg := DefaultConfig(s)
	cfg.Branches = 5
	cfg.RecordsPerBranch = 120
	cfg.RecordBytes = 128
	cfg.CommitEvery = 40
	cfg.ScienceLifetime = 150
	cfg.CurationDevOps = 100
	cfg.CurationFeatOps = 30
	return cfg
}

func testOpts() core.Options { return core.Options{PageSize: 4096, PoolPages: 32} }

func TestLoadDeep(t *testing.T) {
	d, err := Load(t.TempDir(), hy.Factory, testOpts(), tinyConfig(Deep))
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	if len(d.Branches) != 5 {
		t.Fatalf("branches = %d", len(d.Branches))
	}
	// The deep tail sees all inserted keys (inherits every ancestor).
	tail := d.TailBranch()
	n := 0
	if err := d.Table.Scan(tail.ID, func(*record.Record) bool { n++; return true }); err != nil {
		t.Fatal(err)
	}
	// 5 branches x 120 ops with ~20% updates: distinct keys below 600.
	if n < 400 || n > 600 {
		t.Fatalf("tail live records = %d", n)
	}
	if n != d.LiveKeys(tail.ID) {
		t.Fatalf("scan %d != tracked %d", n, d.LiveKeys(tail.ID))
	}
	// Earlier branches must be smaller: no inserts after their fork.
	first := d.Branches[0]
	n0 := 0
	d.Table.Scan(first.ID, func(*record.Record) bool { n0++; return true })
	if n0 >= n {
		t.Fatalf("root (%d) not smaller than tail (%d)", n0, n)
	}
}

func TestLoadFlat(t *testing.T) {
	d, err := Load(t.TempDir(), tf.Factory, testOpts(), tinyConfig(Flat))
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	if len(d.Children) != 4 {
		t.Fatalf("children = %d", len(d.Children))
	}
	rootN := 0
	d.Table.Scan(d.Mainline.ID, func(*record.Record) bool { rootN++; return true })
	child := d.RandomChild(rand.New(rand.NewSource(1)))
	childN := 0
	d.Table.Scan(child.ID, func(*record.Record) bool { childN++; return true })
	if childN <= rootN {
		t.Fatalf("child (%d) should exceed root (%d)", childN, rootN)
	}
}

func TestLoadScience(t *testing.T) {
	d, err := Load(t.TempDir(), vf.Factory, testOpts(), tinyConfig(Science))
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	if len(d.Branches) != 5 {
		t.Fatalf("branches = %d", len(d.Branches))
	}
	if len(d.Merges) != 0 {
		t.Fatal("science strategy must not merge")
	}
	// Oldest/youngest selectors return usable branches.
	o, y := d.OldestActive(), d.YoungestActive()
	for _, b := range []string{o.Name, y.Name} {
		if b == "" {
			t.Fatal("empty branch name")
		}
	}
	n := 0
	d.Table.Scan(y.ID, func(*record.Record) bool { n++; return true })
	if n == 0 {
		t.Fatal("youngest active branch is empty")
	}
}

func TestLoadCuration(t *testing.T) {
	d, err := Load(t.TempDir(), hy.Factory, testOpts(), tinyConfig(Curation))
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	if len(d.Merges) == 0 {
		t.Fatal("curation produced no merges")
	}
	for _, m := range d.Merges {
		if m.Elapsed <= 0 {
			t.Fatal("merge sample without timing")
		}
	}
	n := 0
	d.Table.Scan(d.Mainline.ID, func(*record.Record) bool { n++; return true })
	if n == 0 {
		t.Fatal("mainline empty after curation load")
	}
}

// TestLoadDeterminism: the same seed yields the same dataset shape
// across engines ("we deterministically seed the random number
// generator to ensure each scheme performs the same set of operations
// in the same order", Section 5.6).
func TestLoadDeterminism(t *testing.T) {
	cfg := tinyConfig(Curation)
	counts := map[string][2]int{}
	for name, f := range map[string]core.Factory{"tf": tf.Factory, "vf": vf.Factory, "hy": hy.Factory} {
		d, err := Load(t.TempDir(), f, testOpts(), cfg)
		if err != nil {
			t.Fatal(err)
		}
		n := 0
		d.Table.Scan(d.Mainline.ID, func(*record.Record) bool { n++; return true })
		counts[name] = [2]int{n, len(d.Commits)}
		d.Close()
	}
	if counts["tf"] != counts["vf"] || counts["vf"] != counts["hy"] {
		t.Fatalf("engines diverge on identical seed: %v", counts)
	}
}

func TestTableWiseUpdate(t *testing.T) {
	d, err := Load(t.TempDir(), hy.Factory, testOpts(), tinyConfig(Flat))
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	st0, _ := d.DB.Stats()
	child := d.Children[0]
	before := 0
	d.Table.Scan(child.ID, func(*record.Record) bool { before++; return true })
	if err := d.TableWiseUpdate(child.ID); err != nil {
		t.Fatal(err)
	}
	after := 0
	d.Table.Scan(child.ID, func(*record.Record) bool { after++; return true })
	if after != before {
		t.Fatalf("live count changed: %d -> %d", before, after)
	}
	st1, _ := d.DB.Stats()
	// Every record was copied: total stored records must grow by the
	// branch's live count (Section 5.5 "will tend to increase the data
	// set size by the current size of that branch").
	if st1.Records < st0.Records+int64(before) {
		t.Fatalf("records %d -> %d, want growth >= %d", st0.Records, st1.Records, before)
	}
}

func TestStrategyString(t *testing.T) {
	cases := map[Strategy]string{Deep: "deep", Flat: "flat", Science: "sci", Curation: "cur"}
	for s, want := range cases {
		if s.String() != want {
			t.Fatalf("%d -> %q", s, s.String())
		}
	}
}
