package tf

import (
	"decibel/internal/bitmap"
	"decibel/internal/core"
	"decibel/internal/vgraph"
)

// Pushdown scans (core.PushdownScanner). Tuple-first's liveness is one
// bitmap per branch over the shared heap, so a pushed-down predicate is
// evaluated on the raw page buffer before any record is materialized,
// and a multi-branch scan is driven by the OR of the branch columns —
// one pass over the heap touching only pages with at least one live
// tuple in at least one requested branch, instead of one rescan per
// branch.

var (
	_ core.PushdownScanner = (*Engine)(nil)
	_ core.BatchInserter   = (*Engine)(nil)
)

// passSpec is the match-all, project-nothing spec the plain Scan*
// entry points delegate through, so the engine has exactly one copy of
// each scan loop.
func (e *Engine) passSpec() *core.ScanSpec {
	sp, err := core.NewScanSpec(e.env.Schema, nil, nil)
	if err != nil {
		panic(err) // no projection: cannot fail
	}
	return sp
}

// scanBitmapSpec is scanBitmap with the spec evaluated on the raw
// buffer before materialization.
func (e *Engine) scanBitmapSpec(bm *bitmap.Bitmap, spec *core.ScanSpec, fn core.ScanFunc) error {
	var ferr error
	err := e.file.ScanLive(bm, func(slot int64, buf []byte) bool {
		if !bm.Get(int(slot)) {
			return true
		}
		rec, err := spec.Apply(buf)
		if err != nil {
			ferr = err
			return false
		}
		if rec == nil {
			return true
		}
		return fn(rec)
	})
	if err == nil {
		err = ferr
	}
	return err
}

// ScanBranchPushdown implements core.PushdownScanner.
func (e *Engine) ScanBranchPushdown(branch vgraph.BranchID, spec *core.ScanSpec, fn core.ScanFunc) error {
	e.mu.Lock()
	bm := e.idx.column(branch)
	e.mu.Unlock()
	return e.scanBitmapSpec(bm, spec, fn)
}

// ScanCommitPushdown implements core.PushdownScanner.
func (e *Engine) ScanCommitPushdown(c *vgraph.Commit, spec *core.ScanSpec, fn core.ScanFunc) error {
	e.mu.Lock()
	log, err := e.openLog(c.Branch)
	if err != nil {
		e.mu.Unlock()
		return err
	}
	bm, err := log.Checkout(c.Seq)
	e.mu.Unlock()
	if err != nil {
		return err
	}
	return e.scanBitmapSpec(bm, spec, fn)
}

// ScanMultiPushdown implements core.PushdownScanner. With the
// branch-oriented index the branch columns are ORed into one union
// bitmap and the heap is walked once under it; the tuple-oriented
// layout has no cheap columns, so it keeps the full-heap walk with the
// predicate evaluated on the raw buffer before the per-row membership
// lookup.
func (e *Engine) ScanMultiPushdown(branches []vgraph.BranchID, spec *core.ScanSpec, fn core.MultiScanFunc) error {
	e.mu.Lock()
	var cols []*bitmap.Bitmap
	var union *bitmap.Bitmap
	if _, tupleOriented := e.idx.(*tupleIndex); !tupleOriented {
		cols = make([]*bitmap.Bitmap, len(branches))
		union = bitmap.New(0)
		for i, b := range branches {
			cols[i] = e.idx.column(b)
			union.Or(cols[i])
		}
	}
	e.mu.Unlock()

	member := bitmap.New(len(branches))
	var ferr error
	if cols != nil {
		err := e.file.ScanLive(union, func(slot int64, buf []byte) bool {
			if !union.Get(int(slot)) {
				return true
			}
			rec, err := spec.Apply(buf)
			if err != nil {
				ferr = err
				return false
			}
			if rec == nil {
				return true
			}
			for i := range branches {
				member.SetTo(i, cols[i].Get(int(slot)))
			}
			return fn(rec, member)
		})
		if err == nil {
			err = ferr
		}
		return err
	}

	err := e.file.Scan(0, e.file.Count(), func(slot int64, buf []byte) bool {
		rec, err := spec.Apply(buf)
		if err != nil {
			ferr = err
			return false
		}
		if rec == nil {
			return true
		}
		e.mu.Lock()
		e.idx.membership(slot, branches, member)
		e.mu.Unlock()
		if !member.Any() {
			return true
		}
		return fn(rec, member)
	})
	if err == nil {
		err = ferr
	}
	return err
}
