package tf

import (
	"decibel/internal/bitmap"
	"decibel/internal/core"
	"decibel/internal/vgraph"
)

// Pushdown scans (core.PushdownScanner, core.DiffScanner). Tuple-
// first's liveness is one bitmap per branch over the shared heap, so a
// pushed-down predicate is evaluated on the raw page buffer before any
// record is materialized, and a multi-branch scan is driven by the OR
// of the branch columns — one pass over the heap touching only pages
// with at least one live tuple in at least one requested branch,
// instead of one rescan per branch. The heap is walked extent by
// extent: an extent whose zone map proves no record can satisfy the
// spec's bounds is skipped without touching a page, and buffers from
// extents older than the spec's schema epoch are widened (defaults
// filled) before the predicate sees them, so old pages are never
// rewritten.

var (
	_ core.PushdownScanner = (*Engine)(nil)
	_ core.DiffScanner     = (*Engine)(nil)
	_ core.BatchInserter   = (*Engine)(nil)
	_ core.PKLookupScanner = (*Engine)(nil)
)

// LookupPKPushdown implements core.PKLookupScanner: a branch-head read
// of one primary key answered from the per-branch pk index (Section
// 3.2's update/delete index) instead of a heap walk. The index maps
// the key to its live slot in the shared heap; the spec's full
// predicate and projection run on that one record, so the result is
// identical to the scan it replaces.
func (e *Engine) LookupPKPushdown(branch vgraph.BranchID, pk int64, spec *core.ScanSpec, fn core.ScanFunc) (bool, error) {
	e.mu.Lock()
	idx, ok := e.pk[branch]
	if !ok {
		e.mu.Unlock()
		return false, nil
	}
	slot := idx.live(pk)
	if slot < 0 {
		e.mu.Unlock()
		return true, nil // served: the key is not live in this branch
	}
	buf, ext, err := e.reader().read(slot)
	if err != nil {
		e.mu.Unlock()
		return false, err
	}
	prep, err := spec.Prep(ext.Cols)
	if err != nil {
		e.mu.Unlock()
		return false, err
	}
	if prep != nil {
		buf = prep(buf)
	}
	rec, err := spec.Apply(buf)
	e.mu.Unlock()
	if err != nil {
		return false, err
	}
	if rec != nil {
		fn(rec)
	}
	return true, nil
}

// passSpec is the match-all, project-nothing spec the plain Scan*
// entry points delegate through, so the engine has exactly one copy of
// each scan loop. epoch selects the schema version records are emitted
// under.
func (e *Engine) passSpec(epoch int) *core.ScanSpec {
	sp, err := core.NewScanSpecAt(e.hist, epoch, nil, nil)
	if err != nil {
		panic(err) // no projection: cannot fail
	}
	return sp
}

// scanBitmapSpec walks the extents under a global liveness bitmap with
// the spec evaluated on the (version-converted) raw buffer before
// materialization. Extents pruned by their zone maps are skipped
// whole.
func (e *Engine) scanBitmapSpec(bm *bitmap.Bitmap, spec *core.ScanSpec, fn core.ScanFunc) error {
	var ferr error
	err := e.scanExtents(func(ext *extent) (bool, error) {
		if spec.SkipSegment(ext.Zone(), ext.Cols) {
			return true, nil
		}
		prep, err := spec.Prep(ext.Cols)
		if err != nil {
			return false, err
		}
		cont := true
		err = ext.File.ScanLive(offsetBitmap{bm: bm, base: ext.base}, func(local int64, buf []byte) bool {
			if !bm.Get(int(ext.base + local)) {
				return true
			}
			if prep != nil {
				buf = prep(buf)
			}
			rec, err := spec.Apply(buf)
			if err != nil {
				ferr = err
				return false
			}
			if rec == nil {
				return true
			}
			if !fn(rec) {
				cont = false
				return false
			}
			return true
		})
		return cont, err
	})
	if err == nil {
		err = ferr
	}
	return err
}

// ScanBranchPushdown implements core.PushdownScanner.
func (e *Engine) ScanBranchPushdown(branch vgraph.BranchID, spec *core.ScanSpec, fn core.ScanFunc) error {
	e.mu.Lock()
	bm := e.idx.column(branch)
	e.mu.Unlock()
	return e.scanBitmapSpec(bm, spec, fn)
}

// ScanCommitPushdown implements core.PushdownScanner.
func (e *Engine) ScanCommitPushdown(c *vgraph.Commit, spec *core.ScanSpec, fn core.ScanFunc) error {
	e.mu.Lock()
	log, err := e.openLog(c.Branch)
	if err != nil {
		e.mu.Unlock()
		return err
	}
	bm, err := log.Checkout(c.Seq)
	e.mu.Unlock()
	if err != nil {
		return err
	}
	return e.scanBitmapSpec(bm, spec, fn)
}

// ScanDiffPushdown implements core.DiffScanner: the branch bitmaps are
// XORed and the heap walked once under the result, with zone-map
// extent pruning and the predicate evaluated on the raw buffer before
// either output side materializes a record.
func (e *Engine) ScanDiffPushdown(a, b vgraph.BranchID, spec *core.ScanSpec, fn core.DiffFunc) error {
	e.mu.Lock()
	colA := e.idx.column(a)
	colB := e.idx.column(b)
	e.mu.Unlock()
	x := bitmap.Xor(colA, colB)
	var ferr error
	err := e.scanExtents(func(ext *extent) (bool, error) {
		if spec.SkipSegment(ext.Zone(), ext.Cols) {
			return true, nil
		}
		prep, err := spec.Prep(ext.Cols)
		if err != nil {
			return false, err
		}
		cont := true
		err = ext.File.ScanLive(offsetBitmap{bm: x, base: ext.base}, func(local int64, buf []byte) bool {
			slot := ext.base + local
			if !x.Get(int(slot)) {
				return true
			}
			if prep != nil {
				buf = prep(buf)
			}
			rec, err := spec.Apply(buf)
			if err != nil {
				ferr = err
				return false
			}
			if rec == nil {
				return true
			}
			if !fn(rec, colA.Get(int(slot))) {
				cont = false
				return false
			}
			return true
		})
		return cont, err
	})
	if err == nil {
		err = ferr
	}
	return err
}

// ScanMultiPushdown implements core.PushdownScanner. With the
// branch-oriented index the branch columns are ORed into one union
// bitmap and the heap is walked once under it; the tuple-oriented
// layout has no cheap columns, so it keeps the full-heap walk with the
// predicate evaluated on the raw buffer before the per-row membership
// lookup. Either way, zone-pruned extents are skipped whole.
func (e *Engine) ScanMultiPushdown(branches []vgraph.BranchID, spec *core.ScanSpec, fn core.MultiScanFunc) error {
	e.mu.Lock()
	var cols []*bitmap.Bitmap
	var union *bitmap.Bitmap
	if _, tupleOriented := e.idx.(*tupleIndex); !tupleOriented {
		cols = make([]*bitmap.Bitmap, len(branches))
		union = bitmap.New(0)
		for i, b := range branches {
			cols[i] = e.idx.column(b)
			union.Or(cols[i])
		}
	}
	e.mu.Unlock()

	member := bitmap.New(len(branches))
	var ferr error
	if cols != nil {
		err := e.scanExtents(func(ext *extent) (bool, error) {
			if spec.SkipSegment(ext.Zone(), ext.Cols) {
				return true, nil
			}
			prep, err := spec.Prep(ext.Cols)
			if err != nil {
				return false, err
			}
			cont := true
			err = ext.File.ScanLive(offsetBitmap{bm: union, base: ext.base}, func(local int64, buf []byte) bool {
				slot := ext.base + local
				if !union.Get(int(slot)) {
					return true
				}
				if prep != nil {
					buf = prep(buf)
				}
				rec, err := spec.Apply(buf)
				if err != nil {
					ferr = err
					return false
				}
				if rec == nil {
					return true
				}
				for i := range branches {
					member.SetTo(i, cols[i].Get(int(slot)))
				}
				if !fn(rec, member) {
					cont = false
					return false
				}
				return true
			})
			return cont, err
		})
		if err == nil {
			err = ferr
		}
		return err
	}

	err := e.scanExtents(func(ext *extent) (bool, error) {
		if spec.SkipSegment(ext.Zone(), ext.Cols) {
			return true, nil
		}
		prep, err := spec.Prep(ext.Cols)
		if err != nil {
			return false, err
		}
		cont := true
		err = ext.File.Scan(0, ext.File.Count(), func(local int64, buf []byte) bool {
			slot := ext.base + local
			if prep != nil {
				buf = prep(buf)
			}
			rec, err := spec.Apply(buf)
			if err != nil {
				ferr = err
				return false
			}
			if rec == nil {
				return true
			}
			e.mu.Lock()
			e.idx.membership(slot, branches, member)
			e.mu.Unlock()
			if !member.Any() {
				return true
			}
			if !fn(rec, member) {
				cont = false
				return false
			}
			return true
		})
		return cont, err
	})
	if err == nil {
		err = ferr
	}
	return err
}
