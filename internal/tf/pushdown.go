package tf

import (
	"decibel/internal/bitmap"
	"decibel/internal/core"
	"decibel/internal/record"
	"decibel/internal/vgraph"
)

// Pushdown scans (core.PushdownScanner, core.DiffScanner,
// core.ParallelScanner). Tuple-first's liveness is one bitmap per
// branch over the shared heap, so a pushed-down predicate is evaluated
// on the raw page buffer before any record is materialized, and a
// multi-branch scan is driven by the OR of the branch columns — one
// pass over the heap touching only pages with at least one live tuple
// in at least one requested branch, instead of one rescan per branch.
// The heap is walked extent by extent: an extent whose zone map proves
// no record can satisfy the spec's bounds is skipped without touching
// a page, and buffers from extents older than the spec's schema epoch
// are widened (defaults filled) before the predicate sees them, so old
// pages are never rewritten.
//
// Because extents rotate only on schema change, one extent typically
// spans every branch's rows and its segment-level zone rarely prunes;
// each extent therefore also carries an in-memory page-zone index
// (store.PageZones) and bounded scans skip page-sized chunks inside
// the surviving extents.
//
// Each scan shape partitions into one core.ScanUnit per extent
// (PartitionScan) — sealed extents are frozen units the parallel
// executor may fan out; the open tail stays on the caller's goroutine —
// and the sequential entry points drive the same units through
// core.RunUnitsSequential.

var (
	_ core.PushdownScanner = (*Engine)(nil)
	_ core.DiffScanner     = (*Engine)(nil)
	_ core.BatchInserter   = (*Engine)(nil)
	_ core.PKLookupScanner = (*Engine)(nil)
	_ core.ParallelScanner = (*Engine)(nil)
)

// LookupPKPushdown implements core.PKLookupScanner: a branch-head read
// of one primary key answered from the per-branch pk index (Section
// 3.2's update/delete index) instead of a heap walk. The index maps
// the key to its live slot in the shared heap; the spec's full
// predicate and projection run on that one record, so the result is
// identical to the scan it replaces.
func (e *Engine) LookupPKPushdown(branch vgraph.BranchID, pk int64, spec *core.ScanSpec, fn core.ScanFunc) (bool, error) {
	e.mu.Lock()
	idx, ok := e.pk[branch]
	if !ok {
		e.mu.Unlock()
		return false, nil
	}
	slot := idx.live(pk)
	if slot < 0 {
		e.mu.Unlock()
		return true, nil // served: the key is not live in this branch
	}
	buf, ext, err := e.reader().read(slot)
	if err != nil {
		e.mu.Unlock()
		return false, err
	}
	prep, err := spec.Prep(ext.Cols)
	if err != nil {
		e.mu.Unlock()
		return false, err
	}
	if prep != nil {
		buf = prep(buf)
	}
	rec, err := spec.Apply(buf)
	e.mu.Unlock()
	if err != nil {
		return false, err
	}
	if rec != nil {
		fn(rec)
	}
	return true, nil
}

// passSpec is the match-all, project-nothing spec the plain Scan*
// entry points delegate through, so the engine has exactly one copy of
// each scan loop. epoch selects the schema version records are emitted
// under.
func (e *Engine) passSpec(epoch int) *core.ScanSpec {
	sp, err := core.NewScanSpecAt(e.hist, epoch, nil, nil)
	if err != nil {
		panic(err) // no projection: cannot fail
	}
	return sp
}

// scanExtentSpec is the one extent scan body every pushdown shape
// shares: segment-level zone pruning, then — when the spec carries
// bounds and the extent has a page-zone index — a chunk walk skipping
// the page-sized ranges whose zones exclude the bounds, else a plain
// live-page walk. fn receives the global slot with the materialized
// record.
func scanExtentSpec(ext *extent, bm *bitmap.Bitmap, spec *core.ScanSpec, fn func(slot int64, rec *record.Record) bool) error {
	if spec.SkipSegment(ext.Zone(), ext.Cols) {
		return nil
	}
	prep, err := spec.Prep(ext.Cols)
	if err != nil {
		return err
	}
	var ferr error
	stop := false
	visit := func(local int64, buf []byte) bool {
		if !bm.Get(int(ext.base + local)) {
			return true
		}
		if prep != nil {
			buf = prep(buf)
		}
		rec, err := spec.Apply(buf)
		if err != nil {
			ferr = err
			return false
		}
		if rec == nil {
			return true
		}
		if !fn(ext.base+local, rec) {
			stop = true
			return false
		}
		return true
	}
	live := offsetBitmap{bm: bm, base: ext.base}
	if pz := ext.Pages(); pz != nil && spec.HasBounds() {
		// Any slot the liveness snapshot can mark live was appended —
		// and folded into its page zone — before the snapshot was taken,
		// so [0, NumChunks) covers every visitable slot.
		chunk := pz.Chunk()
		for p, n := 0, pz.NumChunks(); p < n; p++ {
			if z := pz.Zone(p); z != nil && spec.SkipPage(z, ext.Cols) {
				continue
			}
			err := ext.File.ScanLiveRange(live, int64(p)*chunk, int64(p+1)*chunk, visit)
			if err == nil {
				err = ferr
			}
			if err != nil {
				return err
			}
			if stop {
				return nil
			}
		}
		return nil
	}
	err = ext.File.ScanLive(live, visit)
	if err == nil {
		err = ferr
	}
	return err
}

// extUnit builds the scan unit of one extent over a global-slot
// liveness bitmap; aux derives the per-record annotation from the
// global slot. Sealed extents are frozen (immutable pages, immutable
// bitmapped prefix) and safe on any goroutine.
func extUnit(ext *extent, bm *bitmap.Bitmap, aux func(slot int64) core.UnitAux) core.ScanUnit {
	return core.ScanUnit{
		Frozen:   ext.Frozen,
		Zone:     ext.Zone(),
		PhysCols: ext.Cols,
		Run: func(spec *core.ScanSpec, fn core.UnitFunc) error {
			return scanExtentSpec(ext, bm, spec, func(slot int64, rec *record.Record) bool {
				return fn(rec, aux(slot))
			})
		},
	}
}

func noAux(int64) core.UnitAux { return core.UnitAux{} }

// bitmapUnits partitions one global liveness bitmap into per-extent
// units. exts was snapshotted under e.mu (published extents are
// immutable; only the tail, which is never Frozen, still grows).
func bitmapUnits(exts []*extent, bm *bitmap.Bitmap, aux func(slot int64) core.UnitAux) []core.ScanUnit {
	units := make([]core.ScanUnit, 0, len(exts))
	for _, x := range exts {
		units = append(units, extUnit(x, bm, aux))
	}
	return units
}

// PartitionScan implements core.ParallelScanner: one unit per extent
// in global slot order, with the branch/checkout bitmaps resolved
// under the engine lock at partition time. The tuple-oriented
// multi-branch layout has no cheap branch columns — its per-row
// membership lookups need the engine lock — so its units all stay
// non-frozen (caller's goroutine), preserving the sequential walk.
func (e *Engine) PartitionScan(req core.ScanRequest) ([]core.ScanUnit, func(), error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	exts := e.exts
	// Pin every extent the partition can touch until release: a
	// concurrent compaction swapping an extent's file retires the old
	// one only after the pins drain.
	release := func() {
		for _, x := range exts {
			x.Segment.Unpin()
		}
	}
	pin := func() {
		for _, x := range exts {
			x.Segment.Pin()
		}
	}
	switch req.Kind {
	case core.ScanKindBranch:
		pin()
		return bitmapUnits(exts, e.idx.column(req.Branch), noAux), release, nil

	case core.ScanKindCommit:
		log, err := e.openLog(req.Commit.Branch)
		if err != nil {
			return nil, nil, err
		}
		bm, err := log.Checkout(req.Commit.Seq)
		if err != nil {
			return nil, nil, err
		}
		pin()
		return bitmapUnits(exts, bm, noAux), release, nil

	case core.ScanKindDiff:
		colA := e.idx.column(req.A)
		colB := e.idx.column(req.B)
		x := bitmap.Xor(colA, colB)
		pin()
		return bitmapUnits(exts, x, func(slot int64) core.UnitAux {
			return core.UnitAux{InA: colA.Get(int(slot))}
		}), release, nil

	case core.ScanKindMulti:
		if _, tupleOriented := e.idx.(*tupleIndex); tupleOriented {
			units := make([]core.ScanUnit, 0, len(exts))
			for _, x := range exts {
				units = append(units, e.tupleMultiUnit(x, req.Branches))
			}
			pin()
			return units, release, nil
		}
		cols := make([]*bitmap.Bitmap, len(req.Branches))
		union := bitmap.New(0)
		for i, b := range req.Branches {
			cols[i] = e.idx.column(b)
			union.Or(cols[i])
		}
		units := make([]core.ScanUnit, 0, len(exts))
		for _, x := range exts {
			// member is per-unit scratch so parallel workers never share.
			member := bitmap.New(len(req.Branches))
			units = append(units, extUnit(x, union, func(slot int64) core.UnitAux {
				for i := range cols {
					member.SetTo(i, cols[i].Get(int(slot)))
				}
				return core.UnitAux{Member: member}
			}))
		}
		pin()
		return units, release, nil
	}
	return nil, func() {}, nil
}

// tupleMultiUnit is the tuple-oriented multi-branch walk of one
// extent: a full-extent scan with the predicate evaluated before the
// per-row membership lookup under the engine lock. Never frozen — the
// lock round-trip per row serializes it anyway.
func (e *Engine) tupleMultiUnit(ext *extent, branches []vgraph.BranchID) core.ScanUnit {
	return core.ScanUnit{
		Run: func(spec *core.ScanSpec, fn core.UnitFunc) error {
			if spec.SkipSegment(ext.Zone(), ext.Cols) {
				return nil
			}
			prep, err := spec.Prep(ext.Cols)
			if err != nil {
				return err
			}
			member := bitmap.New(len(branches))
			var ferr error
			err = ext.File.Scan(0, ext.File.Count(), func(local int64, buf []byte) bool {
				slot := ext.base + local
				if prep != nil {
					buf = prep(buf)
				}
				rec, err := spec.Apply(buf)
				if err != nil {
					ferr = err
					return false
				}
				if rec == nil {
					return true
				}
				e.mu.Lock()
				e.idx.membership(slot, branches, member)
				e.mu.Unlock()
				if !member.Any() {
					return true
				}
				return fn(rec, core.UnitAux{Member: member})
			})
			if err == nil {
				err = ferr
			}
			return err
		},
	}
}

// ScanBranchPushdown implements core.PushdownScanner.
func (e *Engine) ScanBranchPushdown(branch vgraph.BranchID, spec *core.ScanSpec, fn core.ScanFunc) error {
	units, release, err := e.PartitionScan(core.ScanRequest{Kind: core.ScanKindBranch, Branch: branch})
	if err != nil {
		return err
	}
	defer release()
	return core.RunUnitsSequential(units, spec, func(rec *record.Record, _ core.UnitAux) bool { return fn(rec) })
}

// ScanCommitPushdown implements core.PushdownScanner.
func (e *Engine) ScanCommitPushdown(c *vgraph.Commit, spec *core.ScanSpec, fn core.ScanFunc) error {
	units, release, err := e.PartitionScan(core.ScanRequest{Kind: core.ScanKindCommit, Commit: c})
	if err != nil {
		return err
	}
	defer release()
	return core.RunUnitsSequential(units, spec, func(rec *record.Record, _ core.UnitAux) bool { return fn(rec) })
}

// ScanDiffPushdown implements core.DiffScanner: the branch bitmaps are
// XORed and the heap walked once under the result, with zone-map
// extent pruning and the predicate evaluated on the raw buffer before
// either output side materializes a record.
func (e *Engine) ScanDiffPushdown(a, b vgraph.BranchID, spec *core.ScanSpec, fn core.DiffFunc) error {
	units, release, err := e.PartitionScan(core.ScanRequest{Kind: core.ScanKindDiff, A: a, B: b})
	if err != nil {
		return err
	}
	defer release()
	return core.RunUnitsSequential(units, spec, func(rec *record.Record, aux core.UnitAux) bool { return fn(rec, aux.InA) })
}

// ScanMultiPushdown implements core.PushdownScanner. With the
// branch-oriented index the branch columns are ORed into one union
// bitmap and the heap is walked once under it; the tuple-oriented
// layout has no cheap columns, so it keeps the full-heap walk with the
// predicate evaluated on the raw buffer before the per-row membership
// lookup. Either way, zone-pruned extents are skipped whole.
func (e *Engine) ScanMultiPushdown(branches []vgraph.BranchID, spec *core.ScanSpec, fn core.MultiScanFunc) error {
	units, release, err := e.PartitionScan(core.ScanRequest{Kind: core.ScanKindMulti, Branches: branches})
	if err != nil {
		return err
	}
	defer release()
	return core.RunUnitsSequential(units, spec, func(rec *record.Record, aux core.UnitAux) bool { return fn(rec, aux.Member) })
}
