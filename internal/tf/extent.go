package tf

// Schema-versioned storage for the tuple-first scheme. The shared heap
// is a sequence of extents: fixed-width heap files managed by the
// shared segment store (internal/store), each tagged with the number
// of physical schema columns its records were encoded under. Slot
// numbers — what the bitmap index and the primary-key indexes address
// — are global: an extent covers [base, base+count). A schema change
// never rewrites a page; it just seals the current extent, and the
// next insert under the wider layout opens a new one. Reads convert
// old-extent buffers on the fly, filling declared defaults for columns
// the extent predates, and each extent's zone map lets bounded scans
// skip it wholesale.

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"

	"decibel/internal/heap"
	"decibel/internal/record"
	"decibel/internal/store"
)

// extent is one fixed-width run of the shared heap: a store segment
// plus the global slot of its slot 0. name is the extent's data file
// basename when it differs from the positional default (compaction
// rewrites sealed extents under data.e<i>.dcz).
type extent struct {
	*store.Segment
	base int64
	name string
}

// extMeta is the persisted extent table entry: the shared segment
// state (schema-version id, freeze flag, zone map) plus the sealed
// extent's final slot count (0 and unused for the open tail extent,
// whose count comes from the file length) and, for rewritten extents,
// the data file basename (empty = the positional extPath name).
type extMeta struct {
	store.SegMeta
	Count int64  `json:"count,omitempty"`
	Name  string `json:"name,omitempty"`
}

type extFile struct {
	Extents []extMeta `json:"extents"`
}

func (e *Engine) extPath(i int) string {
	if i == 0 {
		return filepath.Join(e.env.Dir, "data.heap")
	}
	return filepath.Join(e.env.Dir, fmt.Sprintf("data.e%d.heap", i))
}

func (e *Engine) extMetaPath() string { return filepath.Join(e.env.Dir, "extents.json") }

// openExtents loads (or initializes) the extent table. Datasets from
// before schema versioning have no extents.json and exactly one extent
// at the table's full physical layout; catalogs from before zone maps
// have no persisted zones — the store rebuilds them from the files.
func (e *Engine) openExtents() error {
	metas := []extMeta{{SegMeta: store.SegMeta{Cols: e.hist.PhysCols()}}}
	data, err := os.ReadFile(e.extMetaPath())
	switch {
	case err == nil:
		var ef extFile
		if err := json.Unmarshal(data, &ef); err != nil {
			return fmt.Errorf("tf: corrupt extent table: %w", err)
		}
		if len(ef.Extents) > 0 {
			metas = ef.Extents
		}
	case !errors.Is(err, os.ErrNotExist):
		return fmt.Errorf("tf: %w", err)
	}
	base := int64(0)
	for i, m := range metas {
		sealed := i < len(metas)-1
		m.Frozen = sealed // positional; ignore whatever the catalog says
		path := e.extPath(i)
		if m.Name != "" {
			path = filepath.Join(e.env.Dir, m.Name)
		}
		seg, err := e.st.Open(path, m.SegMeta, -1)
		if err != nil {
			return fmt.Errorf("tf: extent %d: %w", i, err)
		}
		if sealed && seg.File.Count() < m.Count {
			seg.File.Close()
			return fmt.Errorf("tf: extent %d holds %d records, sealed at %d", i, seg.File.Count(), m.Count)
		}
		// The extent-level zone spans every branch's rows and rarely
		// prunes; page zones restore skipping inside the extent.
		if err := seg.EnablePageZones(); err != nil {
			seg.File.Close()
			return fmt.Errorf("tf: extent %d page zones: %w", i, err)
		}
		e.exts = append(e.exts, &extent{Segment: seg, base: base, name: m.Name})
		if sealed {
			base += m.Count
		} else {
			base += seg.File.Count()
		}
	}
	e.sweepOrphans()
	return nil
}

// persistExtentsLocked writes the extent table (zone maps included);
// caller holds e.mu.
func (e *Engine) persistExtentsLocked() error {
	ef := extFile{}
	for _, x := range e.exts {
		m := extMeta{SegMeta: x.Meta(), Name: x.name}
		if x.Frozen {
			m.Count = x.File.Count()
		}
		ef.Extents = append(ef.Extents, m)
	}
	data, err := json.Marshal(&ef)
	if err != nil {
		return fmt.Errorf("tf: %w", err)
	}
	tmp := e.extMetaPath() + ".tmp"
	if err := os.WriteFile(tmp, data, 0o644); err != nil {
		return fmt.Errorf("tf: %w", err)
	}
	return os.Rename(tmp, e.extMetaPath())
}

// lastExt returns the open tail extent.
func (e *Engine) lastExt() *extent { return e.exts[len(e.exts)-1] }

// extFor locates the extent containing a global slot. Extents are few
// (one per schema change), so a backward linear scan suffices.
func (e *Engine) extFor(slot int64) *extent {
	for i := len(e.exts) - 1; i >= 0; i-- {
		if slot >= e.exts[i].base {
			return e.exts[i]
		}
	}
	return e.exts[0]
}

// totalCount returns the next global slot number.
func (e *Engine) totalCount() int64 {
	last := e.lastExt()
	return last.base + last.File.Count()
}

// ensureExtentLocked makes the tail extent hold at least cols physical
// columns, sealing the current tail and opening a new extent when the
// schema has widened since it was created (the shared store's
// rotation). Caller holds e.mu.
func (e *Engine) ensureExtentLocked(cols int) error {
	last := e.lastExt()
	ns, rotated, err := e.st.WriteTarget(last.Segment, cols, true, e.extPath(len(e.exts)))
	if err != nil || !rotated {
		return err
	}
	if err := ns.EnablePageZones(); err != nil {
		return err
	}
	e.exts = append(e.exts, &extent{Segment: ns, base: last.base + last.File.Count()})
	return e.persistExtentsLocked()
}

// appendLocked encodes rec into the tail extent's layout and returns
// its global slot. Caller holds e.mu.
func (e *Engine) appendLocked(rec *record.Record) (int64, error) {
	last := e.lastExt()
	slot, err := e.st.Append(last.Segment, rec)
	if err != nil {
		return 0, err
	}
	return last.base + slot, nil
}

// extReader reads raw record buffers by global slot, reusing one
// scratch buffer per extent width.
type extReader struct {
	e   *Engine
	ext *extent
	buf []byte
}

func (e *Engine) reader() *extReader { return &extReader{e: e} }

// read returns the raw stored buffer of a global slot and its extent.
// The buffer is valid until the next read call.
func (r *extReader) read(slot int64) ([]byte, *extent, error) {
	x := r.e.extFor(slot)
	if r.ext != x {
		r.ext = x
		r.buf = make([]byte, x.Schema.RecordSize())
	}
	if err := x.File.Read(slot-x.base, r.buf); err != nil {
		return nil, nil, err
	}
	return r.buf, x, nil
}

// readRecAt materializes the record at a global slot under the schema
// visible at the given epoch (defaults filled for columns the record's
// extent predates).
func (e *Engine) readRecAt(r *extReader, slot int64, epoch int) (*record.Record, error) {
	buf, x, err := r.read(slot)
	if err != nil {
		return nil, err
	}
	cv, err := e.hist.Conv(x.Cols, epoch)
	if err != nil {
		return nil, err
	}
	return cv.Materialize(buf), nil
}

// offsetBitmap adapts a global-slot bitmap to one extent's local slot
// space for heap.File.ScanLive.
type offsetBitmap struct {
	bm   heap.Bitmapper
	base int64
}

func (o offsetBitmap) NextSet(i int) int {
	n := o.bm.NextSet(i + int(o.base))
	if n < 0 {
		return -1
	}
	return n - int(o.base)
}

// scanExtents walks every extent in global slot order, handing fn the
// per-extent segment plus base. Returning false stops the walk. The
// extent slice is snapshotted under e.mu: a concurrent insert may
// rotate (append) a new extent mid-scan, and published extents are
// immutable, so the snapshot stays consistent.
func (e *Engine) scanExtents(fn func(x *extent) (cont bool, err error)) error {
	e.mu.Lock()
	exts := e.exts
	e.mu.Unlock()
	for _, x := range exts {
		cont, err := fn(x)
		if err != nil {
			return err
		}
		if !cont {
			return nil
		}
	}
	return nil
}
