package tf

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"decibel/internal/compact"
	"decibel/internal/core"
	"decibel/internal/store"
)

var _ core.Compactor = (*Engine)(nil)

// extFilePath returns extent i's data file: the positional default or
// its recorded rewrite name.
func (e *Engine) extFilePath(i int, name string) string {
	if name != "" {
		return filepath.Join(e.env.Dir, name)
	}
	return e.extPath(i)
}

// CompactSegments implements core.Compactor for the tuple-first
// scheme. The shared heap's slot numbers are global — every bitmap,
// commit delta and pk index addresses them — so extents can never be
// merged or have rows dropped; the pass re-encodes sealed extents into
// compressed pages, preserving slot numbering exactly. Rows past an
// extent's sealed count (torn appends no global slot maps into) are
// not carried over.
//
// Crash safety: the .dcz replacements are written and fsynced first
// (FailAfterTemp aborts here, leaving orphans the next open sweeps),
// the extent-table rename is the commit point, and the old files are
// unlinked last (FailBeforeUnlink returns first), each deferred until
// its pinned readers drain.
func (e *Engine) CompactSegments(opt compact.Options) (compact.Stats, error) {
	opt = opt.Defaults()
	var st compact.Stats
	if opt.Mode == compact.ModeOff || !opt.Compress {
		return st, nil
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	type repl struct {
		i       int
		ns      *store.Segment
		name    string
		pages   int
		oldDisk int64
	}
	var repls []repl
	abort := func() {
		for _, r := range repls {
			r.ns.File.Close()
			os.Remove(r.ns.File.Path())
		}
	}
	for i := 0; i < len(e.exts)-1; i++ {
		x := e.exts[i]
		count := e.exts[i+1].base - x.base
		if x.Encoding == store.EncDCZ || count == 0 {
			continue
		}
		name := fmt.Sprintf("data.e%d.dcz", i)
		ns, pages, err := e.st.CompressSegment(x.Segment, filepath.Join(e.env.Dir, name), count)
		if err != nil {
			abort()
			return st, err
		}
		if err := ns.EnablePageZones(); err != nil {
			ns.File.Close()
			os.Remove(ns.File.Path())
			abort()
			return st, err
		}
		repls = append(repls, repl{i: i, ns: ns, name: name, pages: pages, oldDisk: x.File.DiskBytes()})
	}
	if len(repls) == 0 {
		return st, nil
	}
	if opt.FailPoint == compact.FailAfterTemp {
		// Simulate a crash after the new files hit disk but before the
		// extent-table swap: the .dcz files stay behind as orphans.
		for _, r := range repls {
			r.ns.File.Close()
		}
		return st, compact.FailPointErr(opt.FailPoint)
	}

	// Swap copy-on-write: in-flight scans snapshotted the old slice and
	// pinned the extents they read.
	prev := e.exts
	exts := append([]*extent(nil), e.exts...)
	for _, r := range repls {
		exts[r.i] = &extent{Segment: r.ns, base: prev[r.i].base, name: r.name}
	}
	e.exts = exts
	if err := e.persistExtentsLocked(); err != nil {
		e.exts = prev
		abort()
		return st, err
	}
	for _, r := range repls {
		st.SegmentsCompressed++
		st.PagesCompressed += int64(r.pages)
		st.BytesReclaimed += r.oldDisk - r.ns.File.DiskBytes()
	}
	if opt.FailPoint == compact.FailBeforeUnlink {
		// Simulate a crash after the swap but before the old files are
		// unlinked; the next open sweeps them.
		return st, compact.FailPointErr(opt.FailPoint)
	}
	for _, r := range repls {
		prev[r.i].Segment.RetireAndRemove(e.extFilePath(r.i, prev[r.i].name))
	}
	return st, nil
}

// sweepOrphans removes heap data files the extent table does not
// reference — debris of a compaction (or crash) that wrote replacement
// files without committing, or committed without unlinking — plus
// stale catalog temp files. Called once the extent table is loaded.
func (e *Engine) sweepOrphans() {
	keep := make(map[string]bool, len(e.exts))
	for _, x := range e.exts {
		keep[filepath.Base(x.File.Path())] = true
	}
	ents, err := os.ReadDir(e.env.Dir)
	if err != nil {
		return
	}
	for _, ent := range ents {
		name := ent.Name()
		if ent.IsDir() || keep[name] {
			continue
		}
		dataFile := strings.HasPrefix(name, "data") &&
			(strings.HasSuffix(name, ".heap") || strings.HasSuffix(name, ".dcz"))
		if dataFile || strings.HasSuffix(name, ".tmp") {
			os.Remove(filepath.Join(e.env.Dir, name))
		}
	}
}
