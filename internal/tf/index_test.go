package tf

import (
	"math/rand"
	"testing"
	"testing/quick"

	"decibel/internal/bitmap"
	"decibel/internal/vgraph"
)

func TestPKIndexBasic(t *testing.T) {
	p := newPKIndex()
	if _, ok := p.get(1); ok {
		t.Fatal("empty index has entries")
	}
	p.set(1, 100)
	if s, ok := p.get(1); !ok || s != 100 {
		t.Fatalf("get = %d, %v", s, ok)
	}
	if p.live(1) != 100 {
		t.Fatal("live wrong")
	}
	p.set(1, -1) // delete marker
	if p.live(1) != -1 {
		t.Fatal("deleted key still live")
	}
	if s, ok := p.get(1); !ok || s != -1 {
		t.Fatalf("deleted get = %d, %v", s, ok)
	}
	if p.live(99) != -1 {
		t.Fatal("missing key live")
	}
}

func TestPKIndexForkIsolation(t *testing.T) {
	p := newPKIndex()
	p.set(1, 10)
	p.set(2, 20)
	a, b := p.fork()
	// Both see the frozen base.
	if a.live(1) != 10 || b.live(2) != 20 {
		t.Fatal("fork lost base entries")
	}
	// Writes to one overlay are invisible to the other.
	a.set(1, 11)
	if b.live(1) != 10 {
		t.Fatal("overlay write leaked")
	}
	b.set(3, 30)
	if a.live(3) != -1 {
		t.Fatal("sibling write visible")
	}
	// Deeper chains still resolve.
	c, d := a.fork()
	if c.live(1) != 11 || d.live(2) != 20 {
		t.Fatal("second-level fork lost entries")
	}
	if c.bytes() <= 0 {
		t.Fatal("bytes accounting empty")
	}
}

// Property: branchIndex and tupleIndex implement identical semantics.
func TestQuickIndexLayoutsAgree(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		bi := newBranchIndex()
		ti := newTupleIndex()
		idxs := []index{bi, ti}
		var branches []vgraph.BranchID
		add := func(b vgraph.BranchID, bm *bitmap.Bitmap) {
			for _, ix := range idxs {
				ix.addBranch(b, bm)
			}
			branches = append(branches, b)
		}
		add(0, bitmap.New(0))
		maxSlot := int64(0)
		for op := 0; op < 200; op++ {
			switch r.Intn(5) {
			case 0: // new branch cloned from existing column
				parent := branches[r.Intn(len(branches))]
				add(vgraph.BranchID(len(branches)), bi.column(parent))
			case 1: // append tuple
				for _, ix := range idxs {
					ix.appendTuple(maxSlot)
				}
				maxSlot++
			case 2: // set
				b := branches[r.Intn(len(branches))]
				s := r.Int63n(maxSlot + 1)
				for _, ix := range idxs {
					ix.set(s, b)
				}
				if s >= maxSlot {
					maxSlot = s + 1
				}
			case 3: // clear
				b := branches[r.Intn(len(branches))]
				if maxSlot > 0 {
					s := r.Int63n(maxSlot)
					for _, ix := range idxs {
						ix.clear(s, b)
					}
				}
			case 4: // setColumn
				b := branches[r.Intn(len(branches))]
				bm := bitmap.New(0)
				for i := int64(0); i < maxSlot; i++ {
					if r.Intn(3) == 0 {
						bm.Set(int(i))
					}
				}
				for _, ix := range idxs {
					ix.setColumn(b, bm)
				}
			}
		}
		// Columns agree.
		for _, b := range branches {
			if !bi.column(b).Equal(ti.column(b)) {
				return false
			}
		}
		// Point queries and membership agree.
		member1 := bitmap.New(len(branches))
		member2 := bitmap.New(len(branches))
		for s := int64(0); s < maxSlot; s++ {
			for _, b := range branches {
				if bi.get(s, b) != ti.get(s, b) {
					return false
				}
			}
			bi.membership(s, branches, member1)
			ti.membership(s, branches, member2)
			if !member1.Equal(member2) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestTupleIndexMembershipPastEnd(t *testing.T) {
	ti := newTupleIndex()
	ti.addBranch(1, bitmap.New(0))
	m := bitmap.New(1)
	m.Set(0)
	ti.membership(100, []vgraph.BranchID{1}, m)
	if m.Any() {
		t.Fatal("membership past end not cleared")
	}
	if ti.get(100, 1) {
		t.Fatal("get past end true")
	}
	ti.clear(100, 1) // must not panic
}

func TestBranchIndexUnknownBranch(t *testing.T) {
	bi := newBranchIndex()
	if bi.get(0, 42) {
		t.Fatal("unknown branch bit set")
	}
	if bi.column(42).Any() {
		t.Fatal("unknown branch column non-empty")
	}
}
