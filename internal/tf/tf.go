package tf

import (
	"fmt"
	"path/filepath"
	"sync"

	"decibel/internal/bitmap"
	"decibel/internal/core"
	"decibel/internal/record"
	"decibel/internal/store"
	"decibel/internal/vgraph"
)

// Engine is the tuple-first storage engine. All branches share one
// heap — a sequence of fixed-width extents managed by the shared
// segment store, one per schema version the table has stored records
// under (see extent.go); liveness is tracked by the bitmap index over
// global slots; per-branch commit history files store RLE-compressed
// XOR deltas of branch bitmaps.
type Engine struct {
	mu   sync.Mutex
	env  *core.Env
	hist *record.History
	st   *store.Store

	exts []*extent
	idx  index
	pk   map[vgraph.BranchID]*pkIndex
	logs map[vgraph.BranchID]*bitmap.CommitLog
}

func init() { core.RegisterEngine("tuple-first", Factory, "tf") }

// Factory builds a tuple-first engine; it satisfies core.Factory.
func Factory(env *core.Env) (core.Engine, error) {
	e := &Engine{
		env:  env,
		hist: env.History(),
		st:   store.New(env.Pool, env.History()),
		pk:   make(map[vgraph.BranchID]*pkIndex),
		logs: make(map[vgraph.BranchID]*bitmap.CommitLog),
	}
	if env.Opt.TupleOriented {
		e.idx = newTupleIndex()
	} else {
		e.idx = newBranchIndex()
	}
	if err := e.openExtents(); err != nil {
		return nil, err
	}
	if err := e.recover(); err != nil {
		e.closeFiles()
		return nil, err
	}
	return e, nil
}

func (e *Engine) closeFiles() {
	for _, x := range e.exts {
		x.File.Close()
	}
}

// Kind implements core.Engine.
func (e *Engine) Kind() string { return "tuple-first" }

func (e *Engine) logPath(b vgraph.BranchID) string {
	return filepath.Join(e.env.Dir, "commits", fmt.Sprintf("b%d.hist", b))
}

// openLog returns (opening if needed) the commit history file of a
// branch.
func (e *Engine) openLog(b vgraph.BranchID) (*bitmap.CommitLog, error) {
	if l, ok := e.logs[b]; ok {
		return l, nil
	}
	l, err := bitmap.OpenCommitLog(e.logPath(b), e.env.Opt.CommitFanout)
	if err != nil {
		return nil, err
	}
	e.logs[b] = l
	return l, nil
}

// recover rebuilds in-memory state from the commit history files after
// a reopen: each branch's live bitmap is its last committed snapshot
// (uncommitted modifications are rolled back, per Section 2.2.3), and
// the per-branch primary-key indexes are rebuilt from the live bitmaps.
func (e *Engine) recover() error {
	if !e.env.Graph.Initialized() {
		return nil
	}
	for _, b := range e.env.Graph.Branches() {
		l, err := e.openLog(b.ID)
		if err != nil {
			return err
		}
		bm := l.Head()
		if l.NumCommits() == 0 && b.From != vgraph.None {
			// The branch was created but never committed to, so its own
			// log is empty; its head is the snapshot it branched from,
			// recorded in the log of the branch that made that commit.
			from, ok := e.env.Graph.Commit(b.From)
			if !ok {
				return fmt.Errorf("tf: recover branch %d: missing branch-point commit %d", b.ID, b.From)
			}
			pl, err := e.openLog(from.Branch)
			if err != nil {
				return err
			}
			if bm, err = pl.Checkout(from.Seq); err != nil {
				return fmt.Errorf("tf: recover branch %d: %w", b.ID, err)
			}
		}
		e.idx.addBranch(b.ID, bm)
		idx := newPKIndex()
		e.pk[b.ID] = idx
		r := e.reader()
		var scanErr error
		bm.ForEach(func(slot int) bool {
			buf, _, err := r.read(int64(slot))
			if err != nil {
				scanErr = err
				return false
			}
			idx.set(record.PKOf(buf), int64(slot))
			return true
		})
		if scanErr != nil {
			return scanErr
		}
	}
	return nil
}

// Init implements core.Engine: registers the master branch and records
// the (empty) init commit.
func (e *Engine) Init(master *vgraph.Branch, c0 *vgraph.Commit) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.idx.addBranch(master.ID, bitmap.New(0))
	e.pk[master.ID] = newPKIndex()
	return e.commitLocked(c0)
}

// Branch implements core.Engine: "a branch operation clones the state
// of the parent branch's bitmap and adds it to the index as the initial
// state of the child branch".
func (e *Engine) Branch(child *vgraph.Branch, from *vgraph.Commit) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	parent := from.Branch
	log, err := e.openLog(parent)
	if err != nil {
		return err
	}
	snap, err := log.Checkout(from.Seq)
	if err != nil {
		return fmt.Errorf("tf: branch from commit %d: %w", from.ID, err)
	}
	e.idx.addBranch(child.ID, snap)
	// Fast path: branching from the parent's current state shares the
	// primary-key index via overlays; a historical branch point rebuilds
	// the child's index from the snapshot.
	if cur := e.idx.column(parent); cur.Equal(snap) {
		if parentIdx, ok := e.pk[parent]; ok {
			a, b := parentIdx.fork()
			e.pk[parent] = a
			e.pk[child.ID] = b
			return nil
		}
	}
	idx := newPKIndex()
	r := e.reader()
	var scanErr error
	snap.ForEach(func(slot int) bool {
		buf, _, err := r.read(int64(slot))
		if err != nil {
			scanErr = err
			return false
		}
		idx.set(record.PKOf(buf), int64(slot))
		return true
	})
	if scanErr != nil {
		return scanErr
	}
	e.pk[child.ID] = idx
	return nil
}

// Commit implements core.Engine: append the branch's bitmap delta to
// its commit history file.
func (e *Engine) Commit(c *vgraph.Commit) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.commitLocked(c)
}

func (e *Engine) commitLocked(c *vgraph.Commit) error {
	log, err := e.openLog(c.Branch)
	if err != nil {
		return err
	}
	if got := log.NumCommits(); got != c.Seq {
		return fmt.Errorf("tf: commit seq %d does not match log position %d on branch %d", c.Seq, got, c.Branch)
	}
	if _, err := log.Append(e.idx.column(c.Branch)); err != nil {
		return err
	}
	if e.env.Opt.Fsync {
		if err := log.Sync(); err != nil {
			return err
		}
		for _, x := range e.exts {
			if err := x.File.Sync(); err != nil {
				return err
			}
		}
	}
	return nil
}

// Insert implements core.Engine (upsert: the previous copy's bit is
// unset and the new copy appended at the end of the heap file).
func (e *Engine) Insert(branch vgraph.BranchID, rec *record.Record) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.insertLocked(branch, rec)
}

// InsertBatch implements core.BatchInserter: one lock acquisition and
// one branch-index lookup for the whole batch.
func (e *Engine) InsertBatch(branch vgraph.BranchID, recs []*record.Record) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	for _, rec := range recs {
		if err := e.insertLocked(branch, rec); err != nil {
			return err
		}
	}
	return nil
}

func (e *Engine) insertLocked(branch vgraph.BranchID, rec *record.Record) error {
	idx, ok := e.pk[branch]
	if !ok {
		return fmt.Errorf("tf: unknown branch %d", branch)
	}
	// The branch writes at its head commit's schema generation; widen
	// the shared heap's tail extent if the schema has grown past it.
	if err := e.ensureExtentLocked(e.hist.NumPhysAt(e.env.BranchEpoch(branch))); err != nil {
		return err
	}
	slot, err := e.appendLocked(rec)
	if err != nil {
		return err
	}
	e.idx.appendTuple(slot)
	if old := idx.live(rec.PK()); old >= 0 {
		e.idx.clear(old, branch)
	}
	e.idx.set(slot, branch)
	idx.set(rec.PK(), slot)
	return nil
}

// Delete implements core.Engine. Old records cannot be removed (they
// remain visible in historical commits); the branch's bit is simply
// unset.
func (e *Engine) Delete(branch vgraph.BranchID, pk int64) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	idx, ok := e.pk[branch]
	if !ok {
		return fmt.Errorf("tf: unknown branch %d", branch)
	}
	old := idx.live(pk)
	if old < 0 {
		return nil
	}
	e.idx.clear(old, branch)
	idx.set(pk, -1)
	return nil
}

// ScanBranch implements core.Engine (Query 1). Pages with no live
// records are skipped, but with interleaved loading a branch's tuples
// are "fragmented across the shared heap file", so most pages contain
// at least one and the scan degrades to reading the whole heap — the
// tuple-first cost the paper measures. After a table-wise update
// clusters a branch's records, the skip becomes effective (Section
// 5.5).
func (e *Engine) ScanBranch(branch vgraph.BranchID, fn core.ScanFunc) error {
	return e.ScanBranchPushdown(branch, e.passSpec(e.env.BranchEpoch(branch)), fn)
}

// ScanCommit implements core.Engine: checkout the commit's bitmap from
// the history file, then scan.
func (e *Engine) ScanCommit(c *vgraph.Commit, fn core.ScanFunc) error {
	return e.ScanCommitPushdown(c, e.passSpec(c.SchemaVer), fn)
}

// ScanMulti implements core.Engine (Query 4): one pass over the heap
// file, emitting each live tuple annotated with the branches it is
// active in.
func (e *Engine) ScanMulti(branches []vgraph.BranchID, fn core.MultiScanFunc) error {
	return e.ScanMultiPushdown(branches, e.passSpec(e.env.MaxBranchEpoch(branches)), fn)
}

// Diff implements core.Engine (Query 2): "we simply XOR bitmaps
// together and emit records on the appropriate output iterator". It
// shares the pushdown diff loop through a match-all spec emitting
// under the newer of the two heads' schemas.
func (e *Engine) Diff(a, b vgraph.BranchID, fn core.DiffFunc) error {
	return e.ScanDiffPushdown(a, b, e.passSpec(e.env.MaxBranchEpoch([]vgraph.BranchID{a, b})), fn)
}

// Merge implements core.Engine following Section 3.2: the LCA commit's
// bitmap is restored and XORed against both branch heads to find the
// records changed on each side; the changed keys are joined via hash
// tables; conflicts are resolved tuple-level (two-way) or by a
// field-level three-way merge against the common ancestor record.
func (e *Engine) Merge(into, other vgraph.BranchID, mc *vgraph.Commit, kind core.MergeKind) (core.MergeStats, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	var st core.MergeStats

	lcaID := e.env.Graph.LCA(mc.Parents[0], mc.Parents[1])
	lcaCommit, ok := e.env.Graph.Commit(lcaID)
	if !ok {
		return st, fmt.Errorf("tf: merge has no common ancestor")
	}
	lcaLog, err := e.openLog(lcaCommit.Branch)
	if err != nil {
		return st, err
	}
	lcaBM, err := lcaLog.Checkout(lcaCommit.Seq)
	if err != nil {
		return st, err
	}
	// Rows from the two branches (and the LCA) may span schema
	// versions; resolve everything under the merge commit's schema and
	// make sure the tail extent can hold materialized results.
	epoch := mc.SchemaVer
	if err := e.ensureExtentLocked(e.hist.NumPhysAt(epoch)); err != nil {
		return st, err
	}

	bmA := e.idx.column(into)
	bmB := e.idx.column(other)
	changedA := bitmap.Xor(bmA, lcaBM)
	changedB := bitmap.Xor(bmB, lcaBM)

	type entry struct {
		lcaSlot  int64
		changedA bool
		changedB bool
	}
	entries := make(map[int64]*entry)
	recSize := int64(e.hist.VisibleAt(epoch).RecordSize())
	collect := func(changed *bitmap.Bitmap, isA bool) error {
		r := e.reader()
		var err error
		changed.ForEach(func(slot int) bool {
			var buf []byte
			if buf, _, err = r.read(int64(slot)); err != nil {
				return false
			}
			st.TuplesScanned++
			pk := record.PKOf(buf)
			en := entries[pk]
			if en == nil {
				en = &entry{lcaSlot: -1}
				entries[pk] = en
			}
			if isA {
				en.changedA = true
			} else {
				en.changedB = true
			}
			if lcaBM.Get(slot) {
				en.lcaSlot = int64(slot)
			}
			return true
		})
		return err
	}
	if err := collect(changedA, true); err != nil {
		return st, err
	}
	if err := collect(changedB, false); err != nil {
		return st, err
	}
	st.DiffBytes = int64(changedA.Count()+changedB.Count()) * recSize

	idxA := e.pk[into]
	idxB := e.pk[other]
	mergeReader := e.reader()
	readRec := func(slot int64) (*record.Record, error) {
		rec, err := e.readRecAt(mergeReader, slot, epoch)
		if err != nil {
			return nil, err
		}
		st.TuplesScanned++
		return rec, nil
	}

	for pk, en := range entries {
		if en.changedA {
			st.ChangedA++
		}
		if en.changedB {
			st.ChangedB++
		}
		slotA := idxA.live(pk)
		slotB := idxB.live(pk)
		switch {
		case en.changedA && !en.changedB:
			// Keep into's state: nothing to do.
		case en.changedB && !en.changedA:
			// Adopt other's state wholesale.
			if slotA >= 0 {
				e.idx.clear(slotA, into)
			}
			if slotB >= 0 {
				e.idx.set(slotB, into)
				idxA.set(pk, slotB)
			} else {
				idxA.set(pk, -1)
			}
		default:
			if err := e.resolveConflict(pk, slotA, slotB, en.lcaSlot, into, mc, kind, idxA, readRec, &st); err != nil {
				return st, err
			}
		}
	}
	return st, e.commitLocked(mc)
}

// resolveConflict handles a key modified in both branches since the
// LCA. Caller holds e.mu.
func (e *Engine) resolveConflict(pk, slotA, slotB, lcaSlot int64, into vgraph.BranchID, mc *vgraph.Commit, kind core.MergeKind, idxA *pkIndex, readRec func(int64) (*record.Record, error), st *core.MergeStats) error {
	var recA, recB, base *record.Record
	var err error
	if slotA >= 0 {
		if recA, err = readRec(slotA); err != nil {
			return err
		}
	}
	if slotB >= 0 {
		if recB, err = readRec(slotB); err != nil {
			return err
		}
	}
	apply := func(rec *record.Record, deleted bool) error {
		if slotA >= 0 {
			e.idx.clear(slotA, into)
		}
		if deleted {
			idxA.set(pk, -1)
			return nil
		}
		var slot int64
		switch {
		case recA != nil && rec.Equal(recA):
			slot = slotA
		case recB != nil && rec.Equal(recB):
			slot = slotB
		default:
			// Materialize the merged record at the end of the heap,
			// widened to the tail extent's physical layout.
			if slot, err = e.appendLocked(rec); err != nil {
				return err
			}
			e.idx.appendTuple(slot)
			st.Materialized++
		}
		e.idx.set(slot, into)
		idxA.set(pk, slot)
		return nil
	}

	if kind == core.TwoWay {
		// Tuple-level: identical outcomes are not conflicts; otherwise
		// the precedence branch's whole record (or deletion) wins.
		same := (recA == nil && recB == nil) || (recA != nil && recB != nil && recA.Equal(recB))
		if !same {
			st.Conflicts++
		}
		if mc.PrecedenceFirst {
			if recA == nil {
				return apply(nil, true)
			}
			return apply(recA, false)
		}
		if recB == nil {
			return apply(nil, true)
		}
		return apply(recB, false)
	}

	if lcaSlot >= 0 {
		if base, err = readRec(lcaSlot); err != nil {
			return err
		}
	}
	res := record.Merge3(base, recA, recB, mc.PrecedenceFirst)
	if res.Conflict {
		st.Conflicts++
	}
	if res.Deleted {
		return apply(nil, true)
	}
	return apply(res.Record, false)
}

// SegmentStats implements core.SegmentStatser: one summary per
// extent, zone maps included.
func (e *Engine) SegmentStats() []store.SegmentStat {
	e.mu.Lock()
	defer e.mu.Unlock()
	out := make([]store.SegmentStat, 0, len(e.exts))
	for i, x := range e.exts {
		out = append(out, x.Stat(fmt.Sprintf("extent%d[base=%d]", i, x.base)))
	}
	return out
}

// Stats implements core.Engine.
func (e *Engine) Stats() (core.Stats, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	st := core.Stats{
		IndexBytes:   e.idx.bytes(),
		SegmentCount: len(e.exts),
	}
	for _, x := range e.exts {
		st.Records += x.File.Count()
		st.DataBytes += x.File.SizeBytes()
	}
	for b, idx := range e.pk {
		st.IndexBytes += idx.bytes()
		bm := e.idx.column(b)
		st.LiveRecords += int64(bm.Count())
	}
	for _, l := range e.logs {
		sz, err := l.Size()
		if err != nil {
			return st, err
		}
		st.CommitBytes += sz
	}
	return st, nil
}

// Flush implements core.Engine. The extent table (and with it every
// extent's zone map) is persisted alongside the data pages so the
// maps survive reopen without a rebuild scan.
func (e *Engine) Flush() error {
	e.mu.Lock()
	defer e.mu.Unlock()
	for _, x := range e.exts {
		if err := x.File.Flush(); err != nil {
			return err
		}
	}
	return e.persistExtentsLocked()
}

// Close implements core.Engine.
func (e *Engine) Close() error {
	e.mu.Lock()
	defer e.mu.Unlock()
	var first error
	if err := e.persistExtentsLocked(); err != nil {
		first = err
	}
	for _, l := range e.logs {
		if err := l.Close(); err != nil && first == nil {
			first = err
		}
	}
	for _, x := range e.exts {
		if err := x.File.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}
