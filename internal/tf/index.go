// Package tf implements Decibel's tuple-first storage scheme (Section
// 3.2): tuples from every branch live together in one shared heap file,
// and a bitmap index — one bit per (tuple, branch) — records which
// branches each tuple is live in. The bitmap index comes in the two
// layouts of Section 3.1: branch-oriented (one bitmap per branch, each
// in its own block of memory) and tuple-oriented (one bit-row per tuple
// in a single packed matrix).
package tf

import (
	"decibel/internal/bitmap"
	"decibel/internal/vgraph"
)

// index abstracts over the two bitmap layouts.
type index interface {
	// addBranch registers a branch whose initial liveness is bm.
	addBranch(b vgraph.BranchID, bm *bitmap.Bitmap)
	// appendTuple extends the index for one appended heap slot.
	appendTuple(slot int64)
	set(slot int64, b vgraph.BranchID)
	clear(slot int64, b vgraph.BranchID)
	get(slot int64, b vgraph.BranchID) bool
	// column materializes the liveness bitmap of one branch. For the
	// tuple-oriented layout this scans the entire matrix, which is
	// exactly the single-branch-scan penalty the paper measures.
	column(b vgraph.BranchID) *bitmap.Bitmap
	// setColumn overwrites a branch's liveness wholesale (checkout /
	// recovery path).
	setColumn(b vgraph.BranchID, bm *bitmap.Bitmap)
	// membership fills dst so bit i reports whether the tuple at slot is
	// live in branches[i] (multi-branch scan fast path).
	membership(slot int64, branches []vgraph.BranchID, dst *bitmap.Bitmap)
	// bytes approximates the index's memory footprint.
	bytes() int64
}

// branchIndex is the branch-oriented layout: B bitmaps, one per branch.
type branchIndex struct {
	cols map[vgraph.BranchID]*bitmap.Bitmap
}

func newBranchIndex() *branchIndex {
	return &branchIndex{cols: make(map[vgraph.BranchID]*bitmap.Bitmap)}
}

func (ix *branchIndex) addBranch(b vgraph.BranchID, bm *bitmap.Bitmap) {
	ix.cols[b] = bm.Clone()
}

func (ix *branchIndex) appendTuple(int64) {} // columns grow lazily on Set

func (ix *branchIndex) set(slot int64, b vgraph.BranchID)   { ix.cols[b].Set(int(slot)) }
func (ix *branchIndex) clear(slot int64, b vgraph.BranchID) { ix.cols[b].Clear(int(slot)) }
func (ix *branchIndex) get(slot int64, b vgraph.BranchID) bool {
	bm, ok := ix.cols[b]
	return ok && bm.Get(int(slot))
}

func (ix *branchIndex) column(b vgraph.BranchID) *bitmap.Bitmap {
	if bm, ok := ix.cols[b]; ok {
		return bm.Clone()
	}
	return bitmap.New(0)
}

func (ix *branchIndex) setColumn(b vgraph.BranchID, bm *bitmap.Bitmap) {
	ix.cols[b] = bm.Clone()
}

func (ix *branchIndex) membership(slot int64, branches []vgraph.BranchID, dst *bitmap.Bitmap) {
	for i, b := range branches {
		dst.SetTo(i, ix.get(slot, b))
	}
}

func (ix *branchIndex) bytes() int64 {
	var n int64
	for _, bm := range ix.cols {
		n += int64(bm.Len()+7) / 8
	}
	return n
}

// tupleIndex is the tuple-oriented layout: one packed matrix with a row
// per tuple.
type tupleIndex struct {
	m    *bitmap.Matrix
	cols map[vgraph.BranchID]int // branch -> matrix column
}

func newTupleIndex() *tupleIndex {
	return &tupleIndex{m: bitmap.NewMatrix(), cols: make(map[vgraph.BranchID]int)}
}

func (ix *tupleIndex) addBranch(b vgraph.BranchID, bm *bitmap.Bitmap) {
	col := ix.m.AddBranch()
	ix.cols[b] = col
	bm.ForEach(func(i int) bool {
		for ix.m.NumTuples() <= i {
			ix.m.AppendTuple()
		}
		ix.m.Set(i, col)
		return true
	})
}

func (ix *tupleIndex) appendTuple(slot int64) {
	for int64(ix.m.NumTuples()) <= slot {
		ix.m.AppendTuple()
	}
}

func (ix *tupleIndex) set(slot int64, b vgraph.BranchID) {
	ix.appendTuple(slot)
	ix.m.Set(int(slot), ix.cols[b])
}

func (ix *tupleIndex) clear(slot int64, b vgraph.BranchID) {
	if slot < int64(ix.m.NumTuples()) {
		ix.m.Clear(int(slot), ix.cols[b])
	}
}

func (ix *tupleIndex) get(slot int64, b vgraph.BranchID) bool {
	col, ok := ix.cols[b]
	if !ok || slot >= int64(ix.m.NumTuples()) {
		return false
	}
	return ix.m.Get(int(slot), col)
}

func (ix *tupleIndex) column(b vgraph.BranchID) *bitmap.Bitmap {
	col, ok := ix.cols[b]
	if !ok {
		return bitmap.New(0)
	}
	return ix.m.Column(col) // full matrix scan: the tuple-oriented cost
}

func (ix *tupleIndex) setColumn(b vgraph.BranchID, bm *bitmap.Bitmap) {
	col, ok := ix.cols[b]
	if !ok {
		ix.addBranch(b, bm)
		return
	}
	n := ix.m.NumTuples()
	for i := 0; i < n; i++ {
		if bm.Get(i) {
			ix.m.Set(i, col)
		} else {
			ix.m.Clear(i, col)
		}
	}
	bm.ForEach(func(i int) bool {
		if i >= n {
			ix.set(int64(i), b)
		}
		return true
	})
}

func (ix *tupleIndex) membership(slot int64, branches []vgraph.BranchID, dst *bitmap.Bitmap) {
	if slot >= int64(ix.m.NumTuples()) {
		for i := range branches {
			dst.SetTo(i, false)
		}
		return
	}
	row := ix.m.Row(int(slot))
	for i, b := range branches {
		col, ok := ix.cols[b]
		dst.SetTo(i, ok && row.Get(col))
	}
}

func (ix *tupleIndex) bytes() int64 {
	// stride words per tuple * tuples * 8 bytes.
	return int64(ix.m.NumTuples()) * int64((ix.m.NumBranches()+63)/64) * 8
}

// pkIndex is the per-branch primary-key index of Section 3.2 ("to
// support efficient updates and deletes, we store a primary-key index
// indicating the most recent version of each primary key in each
// branch"). Branching shares structure: the parent's map freezes and
// both branches continue in fresh overlay maps chained to it, making
// branch creation O(1) in index size.
type pkIndex struct {
	m      map[int64]int64 // pk -> live slot, or -1 for deleted
	parent *pkIndex
}

func newPKIndex() *pkIndex { return &pkIndex{m: make(map[int64]int64)} }

// get returns the live slot of pk, or (-1, true) if deleted, or
// (0, false) if never seen.
func (p *pkIndex) get(pk int64) (int64, bool) {
	for q := p; q != nil; q = q.parent {
		if s, ok := q.m[pk]; ok {
			return s, true
		}
	}
	return 0, false
}

// live returns the live slot or -1 when absent or deleted.
func (p *pkIndex) live(pk int64) int64 {
	s, ok := p.get(pk)
	if !ok || s < 0 {
		return -1
	}
	return s
}

func (p *pkIndex) set(pk, slot int64) { p.m[pk] = slot }

// fork freezes p and returns two overlays sharing it.
func (p *pkIndex) fork() (*pkIndex, *pkIndex) {
	return &pkIndex{m: make(map[int64]int64), parent: p},
		&pkIndex{m: make(map[int64]int64), parent: p}
}

func (p *pkIndex) bytes() int64 {
	var n int64
	for q := p; q != nil; q = q.parent {
		n += int64(len(q.m)) * 16
	}
	return n
}
