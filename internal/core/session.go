package core

import (
	"errors"
	"fmt"
	"sync"

	"decibel/internal/lock"
	"decibel/internal/record"
	"decibel/internal/vgraph"
)

// Session captures a user's state — "the commit (or the branch) that
// the operations the user issues will read or modify" (Section 2.2.3).
// Sessions acquire branch-level locks under strict two-phase locking:
// writes take an exclusive lock on the branch head, reads a shared
// lock; all locks are held until Commit or Close.
type Session struct {
	mu     sync.Mutex
	db     *Database
	txn    uint64
	branch *vgraph.Branch // current working branch (writes allowed at head)
	commit *vgraph.Commit // checked-out commit (reads see this version)
	closed bool
}

// NewSession opens a session positioned at the head of master.
func (db *Database) NewSession() (*Session, error) {
	if err := db.beginOp(); err != nil {
		return nil, err
	}
	defer db.endOp()
	db.mu.Lock()
	db.nextTxn++
	txn := db.nextTxn
	db.mu.Unlock()
	s := &Session{db: db, txn: txn}
	if master, ok := db.graph.BranchByName(vgraph.MasterName); ok {
		if err := s.Checkout(master.Name); err != nil {
			return nil, err
		}
	}
	return s, nil
}

func branchResource(b vgraph.BranchID) string { return fmt.Sprintf("branch:%d", b) }

// Checkout positions the session at the head of the named branch.
func (s *Session) Checkout(branch string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrSessionClosed
	}
	b, ok := s.db.graph.BranchByName(branch)
	if !ok {
		return fmt.Errorf("%w: %q", ErrNoSuchBranch, branch)
	}
	head, _ := s.db.graph.Commit(b.Head)
	s.branch = b
	s.commit = head
	return nil
}

// CheckoutCommit positions the session at a historical version:
// subsequent reads "revert the state of the dataset back to that state
// within their own session". Writes are rejected until the session
// checks out a branch head again.
func (s *Session) CheckoutCommit(id vgraph.CommitID) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrSessionClosed
	}
	c, ok := s.db.graph.Commit(id)
	if !ok {
		return fmt.Errorf("%w: commit %d", ErrNoSuchCommit, id)
	}
	s.commit = c
	s.branch = nil
	if b, ok := s.db.graph.BranchOf(id); ok {
		s.branch = b
	}
	return nil
}

// Branch returns the session's current branch (nil when detached at a
// historical commit).
func (s *Session) Branch() *vgraph.Branch {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.branch
}

// Commit returns the session's checked-out commit.
func (s *Session) Commit() *vgraph.Commit {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.commit
}

// atHead reports whether the session may write: it must be positioned
// at the head of a branch ("most operations will occur on the heads of
// the branches"; commits to non-head versions are not allowed).
func (s *Session) atHead() (*vgraph.Branch, error) {
	if s.closed {
		return nil, ErrSessionClosed
	}
	if s.branch == nil {
		return nil, fmt.Errorf("%w; checkout a branch to write", ErrDetachedHead)
	}
	b, _ := s.db.graph.Branch(s.branch.ID)
	if s.commit == nil || b.Head != s.commit.ID {
		return nil, fmt.Errorf("%w; checkout the branch to write", ErrNotAtHead)
	}
	return b, nil
}

// Insert upserts a record into the session's branch head under an
// exclusive branch lock.
func (s *Session) Insert(table string, rec *record.Record) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	b, err := s.atHead()
	if err != nil {
		return err
	}
	t, ok := s.db.Table(table)
	if !ok {
		return fmt.Errorf("%w: %q", ErrNoSuchTable, table)
	}
	if err := s.db.locks.Acquire(s.txn, branchResource(b.ID), lock.Exclusive); err != nil {
		return err
	}
	return t.Insert(b.ID, rec)
}

// Delete removes a key from the session's branch head under an
// exclusive branch lock.
func (s *Session) Delete(table string, pk int64) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	b, err := s.atHead()
	if err != nil {
		return err
	}
	t, ok := s.db.Table(table)
	if !ok {
		return fmt.Errorf("%w: %q", ErrNoSuchTable, table)
	}
	if err := s.db.locks.Acquire(s.txn, branchResource(b.ID), lock.Exclusive); err != nil {
		return err
	}
	return t.Delete(b.ID, pk)
}

// Scan reads the session's current version of a table under a shared
// branch lock (historical checkouts read the committed snapshot and
// need no lock: versions are immutable).
func (s *Session) Scan(table string, fn ScanFunc) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return ErrSessionClosed
	}
	t, ok := s.db.Table(table)
	if !ok {
		s.mu.Unlock()
		return fmt.Errorf("%w: %q", ErrNoSuchTable, table)
	}
	branch := s.branch
	commit := s.commit
	s.mu.Unlock()
	if branch != nil {
		if cur, _ := s.db.graph.Branch(branch.ID); cur != nil && commit != nil && cur.Head == commit.ID {
			if err := s.db.locks.Acquire(s.txn, branchResource(branch.ID), lock.Shared); err != nil {
				return err
			}
			return t.Scan(branch.ID, fn)
		}
	}
	if commit == nil {
		return errors.New("core: session has no checked-out version")
	}
	return t.ScanCommit(commit, fn)
}

// CommitWork commits the session's branch, making its updates
// atomically visible, and releases all locks (end of the 2PL
// transaction).
func (s *Session) CommitWork(message string) (*vgraph.Commit, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	b, err := s.atHead()
	if err != nil {
		return nil, err
	}
	if err := s.db.locks.Acquire(s.txn, branchResource(b.ID), lock.Exclusive); err != nil {
		return nil, err
	}
	c, err := s.db.Commit(b.ID, message)
	s.db.locks.ReleaseAll(s.txn)
	if err != nil {
		return nil, err
	}
	s.commit = c
	return c, nil
}

// Close releases the session's locks without committing.
func (s *Session) Close() {
	s.mu.Lock()
	defer s.mu.Unlock()
	if !s.closed {
		s.db.locks.ReleaseAll(s.txn)
		s.closed = true
	}
}
