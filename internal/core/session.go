package core

import (
	"context"
	"errors"
	"fmt"
	"sync"

	"decibel/internal/lock"
	"decibel/internal/record"
	"decibel/internal/vgraph"
)

// Session captures a user's state — "the commit (or the branch) that
// the operations the user issues will read or modify" (Section 2.2.3).
// Sessions acquire branch-level locks under strict two-phase locking:
// writes take an exclusive lock on the branch head, reads a shared
// lock; all locks are held until Commit or Close.
type Session struct {
	mu     sync.Mutex
	db     *Database
	txn    uint64
	branch *vgraph.Branch // current working branch (writes allowed at head)
	commit *vgraph.Commit // checked-out commit (reads see this version)
	// pending collects schema changes queued with AddColumn/DropColumn;
	// they take effect atomically at CommitWork and are discarded when
	// the session closes without committing.
	pending []SchemaChange
	closed  bool
}

// NewSession opens a session positioned at the head of master. Once
// the database is closed — or a CloseContext drain has begun — it
// fails with ErrDatabaseClosed.
func (db *Database) NewSession() (*Session, error) {
	if err := db.beginOp(); err != nil {
		return nil, err
	}
	defer db.endOp()
	if err := db.addSession(); err != nil {
		return nil, err
	}
	db.mu.Lock()
	db.nextTxn++
	txn := db.nextTxn
	db.mu.Unlock()
	s := &Session{db: db, txn: txn}
	if master, ok := db.graph.BranchByName(vgraph.MasterName); ok {
		if err := s.Checkout(master.Name); err != nil {
			db.dropSession()
			return nil, err
		}
	}
	return s, nil
}

func branchResource(b vgraph.BranchID) string { return fmt.Sprintf("branch:%d", b) }

// Checkout positions the session at the head of the named branch.
func (s *Session) Checkout(branch string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrSessionClosed
	}
	b, ok := s.db.graph.BranchByName(branch)
	if !ok {
		return fmt.Errorf("%w: %q", ErrNoSuchBranch, branch)
	}
	head, _ := s.db.graph.Commit(b.Head)
	s.branch = b
	s.commit = head
	return nil
}

// CheckoutCommit positions the session at a historical version:
// subsequent reads "revert the state of the dataset back to that state
// within their own session". Writes are rejected until the session
// checks out a branch head again.
func (s *Session) CheckoutCommit(id vgraph.CommitID) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrSessionClosed
	}
	c, ok := s.db.graph.Commit(id)
	if !ok {
		return fmt.Errorf("%w: commit %d", ErrNoSuchCommit, id)
	}
	s.commit = c
	s.branch = nil
	if b, ok := s.db.graph.BranchOf(id); ok {
		s.branch = b
	}
	return nil
}

// CheckoutForWrite positions the session at the head of the named
// branch after acquiring the branch's exclusive lock, re-reading the
// head under the lock. Unlike Checkout, this serializes with concurrent
// committers: a session that waited for the lock sees the head the
// previous transaction produced instead of failing ErrNotAtHead. The
// lock is held until CommitWork or Close (strict 2PL); a canceled ctx
// aborts the lock wait with ctx.Err().
func (s *Session) CheckoutForWrite(ctx context.Context, branch string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrSessionClosed
	}
	b, ok := s.db.graph.BranchByName(branch)
	if !ok {
		return fmt.Errorf("%w: %q", ErrNoSuchBranch, branch)
	}
	if err := s.db.locks.AcquireContext(ctx, s.txn, branchResource(b.ID), lock.Exclusive); err != nil {
		return err
	}
	cur, ok := s.db.graph.Branch(b.ID)
	if !ok {
		return fmt.Errorf("%w: %q", ErrNoSuchBranch, branch)
	}
	head, _ := s.db.graph.Commit(cur.Head)
	s.branch = cur
	s.commit = head
	return nil
}

// AcquireBranch takes a shared or exclusive lock on the named branch's
// head without repositioning the session, held until CommitWork or
// Close like every session lock. Multi-branch operations (merge,
// branch-from-head) use it to pin the branches they read against
// concurrent committers.
func (s *Session) AcquireBranch(ctx context.Context, branch string, exclusive bool) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrSessionClosed
	}
	b, ok := s.db.graph.BranchByName(branch)
	if !ok {
		return fmt.Errorf("%w: %q", ErrNoSuchBranch, branch)
	}
	mode := lock.Shared
	if exclusive {
		mode = lock.Exclusive
	}
	return s.db.locks.AcquireContext(ctx, s.txn, branchResource(b.ID), mode)
}

// Revert restores the given primary keys of a table to the branch's
// last committed state, undoing any uncommitted head writes to those
// keys: keys that existed at the head commit get their committed record
// re-inserted, keys that did not are deleted. The facade's
// transactional Commit uses this to roll back an aborted callback.
// Requires the session to be at a branch head; takes the branch's
// exclusive lock.
func (s *Session) Revert(ctx context.Context, table string, pks []int64) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	b, err := s.atHead()
	if err != nil {
		return err
	}
	t, ok := s.db.Table(table)
	if !ok {
		return fmt.Errorf("%w: %q", ErrNoSuchTable, table)
	}
	if err := s.db.locks.AcquireContext(ctx, s.txn, branchResource(b.ID), lock.Exclusive); err != nil {
		return err
	}
	head, ok := s.db.graph.Commit(b.Head)
	if !ok {
		return fmt.Errorf("%w: commit %d", ErrNoSuchCommit, b.Head)
	}
	need := make(map[int64]bool, len(pks))
	for _, pk := range pks {
		need[pk] = true
	}
	// Collect the committed versions first, then write: engines are not
	// required to support mutation during an active scan.
	var restore []*record.Record
	if err := t.ScanCommit(head, func(rec *record.Record) bool {
		if need[rec.PK()] {
			restore = append(restore, rec.Clone())
			delete(need, rec.PK())
		}
		return true
	}); err != nil {
		return err
	}
	for _, rec := range restore {
		if err := t.Insert(b.ID, rec); err != nil {
			return err
		}
	}
	for pk := range need {
		if err := t.Delete(b.ID, pk); err != nil {
			return err
		}
	}
	return nil
}

// CheckoutAt positions the session at a historical commit addressed by
// name: the seq'th commit made on the named branch, zero-based (the CLI
// spells this "checkout <branch>@<seq>"). Checking out the branch's
// newest commit re-attaches the session to the head, so writes are
// allowed again; older commits leave it detached for reads.
func (s *Session) CheckoutAt(branch string, seq int) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return ErrSessionClosed
	}
	s.mu.Unlock()
	b, ok := s.db.graph.BranchByName(branch)
	if !ok {
		return fmt.Errorf("%w: %q", ErrNoSuchBranch, branch)
	}
	for _, c := range s.db.graph.CommitsOnBranch(b.ID) {
		if c.Seq == seq {
			return s.CheckoutCommit(c.ID)
		}
	}
	return fmt.Errorf("%w: %s@%d", ErrNoSuchCommit, branch, seq)
}

// Branch returns the session's current branch (nil when detached at a
// historical commit).
func (s *Session) Branch() *vgraph.Branch {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.branch
}

// Commit returns the session's checked-out commit.
func (s *Session) Commit() *vgraph.Commit {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.commit
}

// atHead reports whether the session may write: it must be positioned
// at the head of a branch ("most operations will occur on the heads of
// the branches"; commits to non-head versions are not allowed).
func (s *Session) atHead() (*vgraph.Branch, error) {
	if s.closed {
		return nil, ErrSessionClosed
	}
	if s.branch == nil {
		return nil, fmt.Errorf("%w; checkout a branch to write", ErrDetachedHead)
	}
	b, _ := s.db.graph.Branch(s.branch.ID)
	if s.commit == nil || b.Head != s.commit.ID {
		return nil, fmt.Errorf("%w; checkout the branch to write", ErrNotAtHead)
	}
	return b, nil
}

// Insert upserts a record into the session's branch head under an
// exclusive branch lock.
func (s *Session) Insert(table string, rec *record.Record) error {
	return s.InsertContext(context.Background(), table, rec)
}

// InsertContext is Insert bounded by a context: a blocked lock wait
// aborts with ctx.Err() when ctx is canceled.
func (s *Session) InsertContext(ctx context.Context, table string, rec *record.Record) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	b, err := s.atHead()
	if err != nil {
		return err
	}
	t, ok := s.db.Table(table)
	if !ok {
		return fmt.Errorf("%w: %q", ErrNoSuchTable, table)
	}
	if err := s.db.locks.AcquireContext(ctx, s.txn, branchResource(b.ID), lock.Exclusive); err != nil {
		return err
	}
	return t.Insert(b.ID, rec)
}

// InsertBatch upserts a batch of records into the session's branch
// head under one exclusive branch lock acquisition, amortizing the
// per-record lock and validation overhead of Insert.
func (s *Session) InsertBatch(table string, recs []*record.Record) error {
	return s.InsertBatchContext(context.Background(), table, recs)
}

// InsertBatchContext is InsertBatch bounded by a context: a blocked
// lock wait aborts with ctx.Err() when ctx is canceled. On error a
// prefix of the batch may have been applied to the (uncommitted)
// branch head; the caller's transaction rollback or the write-ahead
// log cleans it up like any aborted write.
func (s *Session) InsertBatchContext(ctx context.Context, table string, recs []*record.Record) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	b, err := s.atHead()
	if err != nil {
		return err
	}
	t, ok := s.db.Table(table)
	if !ok {
		return fmt.Errorf("%w: %q", ErrNoSuchTable, table)
	}
	if err := s.db.locks.AcquireContext(ctx, s.txn, branchResource(b.ID), lock.Exclusive); err != nil {
		return err
	}
	return t.InsertBatch(b.ID, recs)
}

// Delete removes a key from the session's branch head under an
// exclusive branch lock.
func (s *Session) Delete(table string, pk int64) error {
	return s.DeleteContext(context.Background(), table, pk)
}

// DeleteContext is Delete bounded by a context.
func (s *Session) DeleteContext(ctx context.Context, table string, pk int64) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	b, err := s.atHead()
	if err != nil {
		return err
	}
	t, ok := s.db.Table(table)
	if !ok {
		return fmt.Errorf("%w: %q", ErrNoSuchTable, table)
	}
	if err := s.db.locks.AcquireContext(ctx, s.txn, branchResource(b.ID), lock.Exclusive); err != nil {
		return err
	}
	return t.Delete(b.ID, pk)
}

// Scan reads the session's current version of a table under a shared
// branch lock (historical checkouts read the committed snapshot and
// need no lock: versions are immutable).
func (s *Session) Scan(table string, fn ScanFunc) error {
	return s.ScanContext(context.Background(), table, fn)
}

// ScanContext is Scan bounded by a context: lock waits and the scan
// itself are abandoned as soon as ctx is canceled.
func (s *Session) ScanContext(ctx context.Context, table string, fn ScanFunc) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return ErrSessionClosed
	}
	t, ok := s.db.Table(table)
	if !ok {
		s.mu.Unlock()
		return fmt.Errorf("%w: %q", ErrNoSuchTable, table)
	}
	branch := s.branch
	commit := s.commit
	s.mu.Unlock()
	if branch != nil {
		if cur, _ := s.db.graph.Branch(branch.ID); cur != nil && commit != nil && cur.Head == commit.ID {
			if err := s.db.locks.AcquireContext(ctx, s.txn, branchResource(branch.ID), lock.Shared); err != nil {
				return err
			}
			return t.ScanContext(ctx, branch.ID, fn)
		}
	}
	if commit == nil {
		return errors.New("core: session has no checked-out version")
	}
	return t.ScanCommitContext(ctx, commit, fn)
}

// atHeadForSchema is atHead for queuing schema changes, failing fast
// with a clear sentinel when the session is detached: altering a
// historical checkout can never succeed (schema changes commit at a
// branch head), so instead of the generic ErrNotAtHead — which for
// plain writes just means "re-checkout and retry" and would otherwise
// only surface at commit time — the error wraps both ErrSchemaChange
// and ErrDetachedHead for errors.Is.
func (s *Session) atHeadForSchema() (*vgraph.Branch, error) {
	if s.closed {
		return nil, ErrSessionClosed
	}
	if s.branch == nil {
		return nil, fmt.Errorf("%w: %w; schema changes commit at a branch head", ErrSchemaChange, ErrDetachedHead)
	}
	b, _ := s.db.graph.Branch(s.branch.ID)
	if s.commit == nil || b.Head != s.commit.ID {
		return nil, fmt.Errorf("%w: %w; the session is checked out at a historical commit — checkout the branch head to alter",
			ErrSchemaChange, ErrDetachedHead)
	}
	return b, nil
}

// AddColumn queues a schema change on the session: from the commit
// that carries it, the named table gains the column with the given
// default (nil = zero value). The change applies atomically at
// CommitWork — inserts inside the same transaction still write the old
// shape, and the new column becomes writable from the next transaction
// on the branch. Records already stored are never rewritten: reads
// fill the default.
func (s *Session) AddColumn(table string, col record.Column, def any) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, err := s.atHeadForSchema(); err != nil {
		return err
	}
	t, ok := s.db.Table(table)
	if !ok {
		return fmt.Errorf("%w: %q", ErrNoSuchTable, table)
	}
	// Validate eagerly so the caller hears about bad changes at queue
	// time: name collisions (with the history and with other queued
	// changes) and ill-typed defaults.
	if _, _, exists := t.History().ColumnEpochs(col.Name); exists {
		return fmt.Errorf("%w: column %q already exists in table %q", ErrSchemaChange, col.Name, table)
	}
	for _, ch := range s.pending {
		if ch.Table == table && ch.Add != nil && ch.Add.Name == col.Name {
			return fmt.Errorf("%w: column %q already queued for table %q", ErrSchemaChange, col.Name, table)
		}
	}
	if _, err := record.EncodeDefault(col, def); err != nil {
		return fmt.Errorf("%w: %v", ErrSchemaChange, err)
	}
	c := col
	s.pending = append(s.pending, SchemaChange{Table: table, Add: &c, Default: def})
	return nil
}

// DropColumn queues a logical column drop on the session: from the
// commit that carries it, the column disappears from the table's
// visible schema (reads at earlier versions still see it, and its
// bytes stay in stored records). Applies atomically at CommitWork,
// like AddColumn.
func (s *Session) DropColumn(table, column string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, err := s.atHeadForSchema(); err != nil {
		return err
	}
	t, ok := s.db.Table(table)
	if !ok {
		return fmt.Errorf("%w: %q", ErrNoSuchTable, table)
	}
	if t.Schema().ColumnIndex(column) < 0 {
		return fmt.Errorf("%w: no column %q in table %q", ErrSchemaChange, column, table)
	}
	if t.Schema().ColumnIndex(column) == 0 {
		return fmt.Errorf("%w: cannot drop the primary key column %q", ErrSchemaChange, column)
	}
	for _, ch := range s.pending {
		if ch.Table == table && (ch.Drop == column || (ch.Add != nil && ch.Add.Name == column)) {
			return fmt.Errorf("%w: column %q already has a queued change", ErrSchemaChange, column)
		}
	}
	s.pending = append(s.pending, SchemaChange{Table: table, Drop: column})
	return nil
}

// PendingSchemaChanges reports how many schema changes the session has
// queued for its next CommitWork.
func (s *Session) PendingSchemaChanges() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.pending)
}

// CommitWork commits the session's branch, making its updates
// atomically visible, and releases all locks (end of the 2PL
// transaction).
func (s *Session) CommitWork(message string) (*vgraph.Commit, error) {
	return s.CommitWorkContext(context.Background(), message)
}

// CommitWorkContext is CommitWork bounded by a context. Cancellation is
// honored up to the point the commit is handed to the engines; the
// commit itself is not interruptible, so a canceled context either
// aborts before any state changes or the commit completes in full.
func (s *Session) CommitWorkContext(ctx context.Context, message string) (*vgraph.Commit, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	b, err := s.atHead()
	if err != nil {
		return nil, err
	}
	if err := s.db.locks.AcquireContext(ctx, s.txn, branchResource(b.ID), lock.Exclusive); err != nil {
		return nil, err
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	var c *vgraph.Commit
	if len(s.pending) > 0 {
		c, err = s.db.CommitSchema(b.ID, message, s.pending)
		if c != nil {
			// The schema commit is durable even if a later engine hook
			// failed; clearing the queue here keeps a retried CommitWork
			// from re-applying committed changes (which would fail with
			// duplicate-column errors forever).
			s.pending = nil
		}
	} else {
		c, err = s.db.Commit(b.ID, message)
	}
	s.db.locks.ReleaseAll(s.txn)
	if err != nil {
		return nil, err
	}
	s.pending = nil
	s.commit = c
	return c, nil
}

// Close releases the session's locks without committing and
// unregisters it from the database's session count; a CloseContext
// drain waiting on the last session wakes here.
func (s *Session) Close() {
	s.mu.Lock()
	defer s.mu.Unlock()
	if !s.closed {
		s.db.locks.ReleaseAll(s.txn)
		s.closed = true
		s.db.dropSession()
	}
}
