package core

import (
	"context"
	"iter"

	"decibel/internal/bitmap"
	"decibel/internal/record"
	"decibel/internal/vgraph"
)

// Iterator forms of the scan API, layered over the ScanFunc callbacks.
// Each returns a single-use range-over-func sequence plus a trailing
// error accessor that is valid once iteration finishes (or was broken
// out of). As with the callbacks, yielded records may alias engine
// buffers and must be Cloned to be retained across iterations.
//
// Every iterator has a Context form whose sequence stops within one
// record of ctx being canceled; the trailing error accessor then
// reports ctx.Err().

// Rows iterates the records live in a branch head (Query 1).
func (t *Table) Rows(branch vgraph.BranchID) (iter.Seq[*record.Record], func() error) {
	return t.RowsContext(context.Background(), branch)
}

// RowsContext is Rows bounded by a context.
func (t *Table) RowsContext(ctx context.Context, branch vgraph.BranchID) (iter.Seq[*record.Record], func() error) {
	var err error
	seq := func(yield func(*record.Record) bool) {
		err = t.ScanContext(ctx, branch, func(rec *record.Record) bool { return yield(rec) })
	}
	return seq, func() error { return err }
}

// RowsAt iterates the records of a committed version (checkout read).
func (t *Table) RowsAt(c *vgraph.Commit) (iter.Seq[*record.Record], func() error) {
	return t.RowsAtContext(context.Background(), c)
}

// RowsAtContext is RowsAt bounded by a context.
func (t *Table) RowsAtContext(ctx context.Context, c *vgraph.Commit) (iter.Seq[*record.Record], func() error) {
	var err error
	seq := func(yield func(*record.Record) bool) {
		err = t.ScanCommitContext(ctx, c, func(rec *record.Record) bool { return yield(rec) })
	}
	return seq, func() error { return err }
}

// Diff iterates the symmetric difference of two branch heads (Query 2).
// The bool is true for records live in a but not b, false for the
// reverse.
func (t *Table) Diff(a, b vgraph.BranchID) (iter.Seq2[*record.Record, bool], func() error) {
	return t.DiffContext(context.Background(), a, b)
}

// DiffContext is Diff bounded by a context.
func (t *Table) DiffContext(ctx context.Context, a, b vgraph.BranchID) (iter.Seq2[*record.Record, bool], func() error) {
	var err error
	seq := func(yield func(*record.Record, bool) bool) {
		err = t.ScanDiffContext(ctx, a, b, func(rec *record.Record, inA bool) bool { return yield(rec, inA) })
	}
	return seq, func() error { return err }
}

// RowsMulti iterates the records live in any of the branch heads
// (Query 4); the membership bitmap's bit i corresponds to branches[i].
func (t *Table) RowsMulti(branches []vgraph.BranchID) (iter.Seq2[*record.Record, *bitmap.Bitmap], func() error) {
	return t.RowsMultiContext(context.Background(), branches)
}

// RowsMultiContext is RowsMulti bounded by a context.
func (t *Table) RowsMultiContext(ctx context.Context, branches []vgraph.BranchID) (iter.Seq2[*record.Record, *bitmap.Bitmap], func() error) {
	var err error
	seq := func(yield func(*record.Record, *bitmap.Bitmap) bool) {
		err = t.ScanMultiContext(ctx, branches, func(rec *record.Record, m *bitmap.Bitmap) bool { return yield(rec, m) })
	}
	return seq, func() error { return err }
}
