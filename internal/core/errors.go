package core

import "errors"

// Sentinel errors for the conditions callers are expected to branch on.
// They are wrapped with %w wherever core raises them, so both core and
// facade consumers test with errors.Is rather than string matching. The
// public decibel package re-exports each of these under the same name.
var (
	// ErrNoSuchBranch reports a branch name or ID that does not exist
	// in the version graph.
	ErrNoSuchBranch = errors.New("decibel: no such branch")

	// ErrNoSuchTable reports a table name missing from the catalog.
	ErrNoSuchTable = errors.New("decibel: no such table")

	// ErrNoSuchCommit reports a commit ID absent from the version graph.
	ErrNoSuchCommit = errors.New("decibel: no such commit")

	// ErrDetachedHead reports a write attempted while the session is
	// checked out at a historical commit rather than a branch.
	ErrDetachedHead = errors.New("decibel: session is detached at a historical commit")

	// ErrNotAtHead reports a write attempted while the session's branch
	// has advanced past the session's checked-out commit; commits are
	// only allowed at branch heads (Section 2.2.3).
	ErrNotAtHead = errors.New("decibel: session is not at the branch head")

	// ErrSessionClosed reports any operation on a closed session.
	ErrSessionClosed = errors.New("decibel: session closed")

	// ErrAlreadyInitialized reports Init on an initialized dataset, or
	// CreateTable after Init has frozen the schema set.
	ErrAlreadyInitialized = errors.New("decibel: dataset already initialized")

	// ErrUnknownEngine reports an engine name absent from the registry.
	ErrUnknownEngine = errors.New("decibel: unknown engine")

	// ErrDatabaseClosed reports an operation on a closed Database.
	ErrDatabaseClosed = errors.New("decibel: database closed")

	// ErrNoSuchColumn reports a column name (or index) absent from the
	// queried table's schema; raised at plan time by the query builder.
	ErrNoSuchColumn = errors.New("decibel: no such column")

	// ErrTypeMismatch reports a predicate or aggregate whose value type
	// does not fit the column it addresses (e.g. a bytes prefix on an
	// integer column); raised at plan time by the query builder.
	ErrTypeMismatch = errors.New("decibel: predicate type mismatch")

	// ErrBadQuery reports a structurally invalid query plan, such as a
	// historical At() combined with a multi-branch scan.
	ErrBadQuery = errors.New("decibel: invalid query")

	// ErrNoRows reports an aggregate (Min/Max) over a scan that matched
	// no records.
	ErrNoRows = errors.New("decibel: no rows")

	// ErrColumnNotYetAdded reports a reference to a column that exists
	// in the table's schema history but was added after the version the
	// operation addresses: an At(seq) query naming a column a later
	// commit introduced, or a write carrying the column to a branch
	// whose head predates it.
	ErrColumnNotYetAdded = errors.New("decibel: column not yet added at this version")

	// ErrSchemaChange reports an invalid schema-change request (duplicate
	// column, bad default, dropping the primary key, ...).
	ErrSchemaChange = errors.New("decibel: invalid schema change")
)
