package core

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"

	"decibel/internal/heap"
	"decibel/internal/lock"
	"decibel/internal/record"
	"decibel/internal/vgraph"
	"decibel/internal/wal"
)

// Database is a Decibel dataset: a collection of relations versioned
// together under one version graph (Section 2.2.1: "the main unit of
// storage is the dataset ... a collection of relations"). All relations
// share the same storage scheme, buffer pool and branch structure; a
// commit snapshots every relation atomically.
type Database struct {
	mu      sync.Mutex
	closeMu sync.RWMutex // held shared for the span of every operation; exclusively by Close
	dir     string
	opt     Options
	factory Factory

	graph   *vgraph.Graph
	pool    *heap.Pool
	locks   *lock.Manager
	journal *wal.Log

	tables map[string]*Table
	order  []string // table creation order

	nextTxn uint64
	closed  atomic.Bool
}

// Table is one versioned relation inside a Database.
type Table struct {
	name   string
	schema *record.Schema
	engine Engine
	db     *Database
}

// catalog is the persisted table list.
type catalog struct {
	Tables []catalogTable `json:"tables"`
}

type catalogTable struct {
	Name    string          `json:"name"`
	Columns []catalogColumn `json:"columns"`
}

type catalogColumn struct {
	Name string `json:"name"`
	Type uint8  `json:"type"`
	Size int    `json:"size,omitempty"` // payload capacity of Bytes columns
}

// Open opens (or creates) the dataset at dir using the given storage
// engine factory. Existing tables are reloaded from the catalog;
// committed state is recovered and uncommitted modifications are rolled
// back by the engines.
func Open(dir string, factory Factory, opt Options) (*Database, error) {
	return OpenContext(context.Background(), dir, factory, opt)
}

// OpenContext is Open bounded by a context: cancellation is checked
// before the open starts and between tables during catalog reload
// (each table's engine recovery runs to completion), and already-opened
// resources are released on abort.
func OpenContext(ctx context.Context, dir string, factory Factory, opt Options) (*Database, error) {
	if factory == nil {
		return nil, errors.New("core: nil engine factory")
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if err := os.MkdirAll(filepath.Join(dir, "tables"), 0o755); err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	graph, err := vgraph.New(filepath.Join(dir, "graph.json"))
	if err != nil {
		return nil, err
	}
	journal, err := wal.Open(filepath.Join(dir, "wal.log"))
	if err != nil {
		return nil, err
	}
	db := &Database{
		dir:     dir,
		opt:     opt,
		factory: factory,
		graph:   graph,
		pool:    heap.NewPool(opt.PoolPages, opt.PageSize),
		locks:   lock.NewManager(0),
		journal: journal,
		tables:  make(map[string]*Table),
	}
	if err := db.loadCatalogContext(ctx); err != nil {
		for _, t := range db.Tables() {
			t.engine.Close()
		}
		journal.Close()
		return nil, err
	}
	return db, nil
}

func (db *Database) catalogPath() string { return filepath.Join(db.dir, "catalog.json") }

// beginOp opens an operation against the database: it takes the
// close-guard shared and fails with ErrDatabaseClosed once Close has
// run. Operations that passed the check before Close are drained —
// Close waits for their endOp — so they never see half-closed engines.
func (db *Database) beginOp() error {
	db.closeMu.RLock()
	if db.closed.Load() {
		db.closeMu.RUnlock()
		return ErrDatabaseClosed
	}
	return nil
}

// endOp closes an operation opened with beginOp.
func (db *Database) endOp() { db.closeMu.RUnlock() }

func (db *Database) loadCatalogContext(ctx context.Context) error {
	data, err := os.ReadFile(db.catalogPath())
	if errors.Is(err, os.ErrNotExist) {
		return nil
	}
	if err != nil {
		return fmt.Errorf("core: %w", err)
	}
	var cat catalog
	if err := json.Unmarshal(data, &cat); err != nil {
		return fmt.Errorf("core: corrupt catalog: %w", err)
	}
	for _, ct := range cat.Tables {
		if err := ctx.Err(); err != nil {
			return err
		}
		cols := make([]record.Column, len(ct.Columns))
		for i, c := range ct.Columns {
			cols[i] = record.Column{Name: c.Name, Type: record.Type(c.Type), Size: c.Size}
		}
		schema, err := record.NewSchema(cols...)
		if err != nil {
			return err
		}
		if _, err := db.attachTable(ct.Name, schema); err != nil {
			return err
		}
	}
	return nil
}

func (db *Database) saveCatalogLocked() error {
	var cat catalog
	for _, name := range db.order {
		t := db.tables[name]
		ct := catalogTable{Name: name}
		for i := 0; i < t.schema.NumColumns(); i++ {
			c := t.schema.Column(i)
			ct.Columns = append(ct.Columns, catalogColumn{Name: c.Name, Type: uint8(c.Type), Size: c.Size})
		}
		cat.Tables = append(cat.Tables, ct)
	}
	data, err := json.Marshal(&cat)
	if err != nil {
		return err
	}
	tmp := db.catalogPath() + ".tmp"
	if err := os.WriteFile(tmp, data, 0o644); err != nil {
		return err
	}
	return os.Rename(tmp, db.catalogPath())
}

func (db *Database) attachTable(name string, schema *record.Schema) (*Table, error) {
	tdir := filepath.Join(db.dir, "tables", name)
	if err := os.MkdirAll(tdir, 0o755); err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	env := &Env{Dir: tdir, Schema: schema, Graph: db.graph, Pool: db.pool, Opt: db.opt}
	eng, err := db.factory(env)
	if err != nil {
		return nil, err
	}
	t := &Table{name: name, schema: schema, engine: eng, db: db}
	db.tables[name] = t
	db.order = append(db.order, name)
	return t, nil
}

// CreateTable adds a relation to the dataset. Tables must be created
// before Init (the init transaction "creates the two tables as well as
// populates them with initial data", Section 2.2.3).
func (db *Database) CreateTable(name string, schema *record.Schema) (*Table, error) {
	if err := db.beginOp(); err != nil {
		return nil, err
	}
	defer db.endOp()
	db.mu.Lock()
	defer db.mu.Unlock()
	if db.graph.Initialized() {
		return nil, fmt.Errorf("%w: cannot create tables after init", ErrAlreadyInitialized)
	}
	if name == "" {
		return nil, errors.New("core: empty table name")
	}
	if _, dup := db.tables[name]; dup {
		return nil, fmt.Errorf("core: table %q already exists", name)
	}
	t, err := db.attachTable(name, schema)
	if err != nil {
		return nil, err
	}
	return t, db.saveCatalogLocked()
}

// Table returns the named relation.
func (db *Database) Table(name string) (*Table, bool) {
	db.mu.Lock()
	defer db.mu.Unlock()
	t, ok := db.tables[name]
	return t, ok
}

// TableByName returns the named relation or an error wrapping
// ErrNoSuchTable.
func (db *Database) TableByName(name string) (*Table, error) {
	t, ok := db.Table(name)
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrNoSuchTable, name)
	}
	return t, nil
}

// Tables returns the dataset's relations in creation order.
func (db *Database) Tables() []*Table {
	db.mu.Lock()
	defer db.mu.Unlock()
	out := make([]*Table, 0, len(db.order))
	for _, n := range db.order {
		out = append(out, db.tables[n])
	}
	return out
}

// Graph exposes the version graph (read-mostly: heads, LCA, ancestry).
func (db *Database) Graph() *vgraph.Graph { return db.graph }

// BranchNamed resolves a branch name or returns an error wrapping
// ErrNoSuchBranch.
func (db *Database) BranchNamed(name string) (*vgraph.Branch, error) {
	b, ok := db.graph.BranchByName(name)
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrNoSuchBranch, name)
	}
	return b, nil
}

// Init creates the master branch and the initial (empty) version of
// every relation.
func (db *Database) Init(message string) (*vgraph.Branch, *vgraph.Commit, error) {
	if err := db.beginOp(); err != nil {
		return nil, nil, err
	}
	defer db.endOp()
	db.mu.Lock()
	defer db.mu.Unlock()
	if db.graph.Initialized() {
		return nil, nil, ErrAlreadyInitialized
	}
	if len(db.tables) == 0 {
		return nil, nil, errors.New("core: init requires at least one table")
	}
	master, c0, err := db.graph.Init(message)
	if err != nil {
		return nil, nil, err
	}
	if err := db.journalOp("init", message); err != nil {
		return nil, nil, err
	}
	for _, name := range db.order {
		if err := db.tables[name].engine.Init(master, c0); err != nil {
			return nil, nil, err
		}
	}
	return master, c0, nil
}

// Branch creates a named branch from any existing commit.
func (db *Database) Branch(name string, from vgraph.CommitID) (*vgraph.Branch, error) {
	if err := db.beginOp(); err != nil {
		return nil, err
	}
	defer db.endOp()
	db.mu.Lock()
	defer db.mu.Unlock()
	fromCommit, ok := db.graph.Commit(from)
	if !ok {
		return nil, fmt.Errorf("%w: commit %d", ErrNoSuchCommit, from)
	}
	b, err := db.graph.NewBranch(name, from)
	if err != nil {
		return nil, err
	}
	if err := db.journalOp("branch", name); err != nil {
		return nil, err
	}
	for _, tname := range db.order {
		if err := db.tables[tname].engine.Branch(b, fromCommit); err != nil {
			return nil, err
		}
	}
	return b, nil
}

// BranchFromHead creates a branch off the current head of an existing
// branch.
func (db *Database) BranchFromHead(name, parent string) (*vgraph.Branch, error) {
	pb, ok := db.graph.BranchByName(parent)
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrNoSuchBranch, parent)
	}
	return db.Branch(name, pb.Head)
}

// Commit snapshots the branch's current state across all relations as a
// new version.
func (db *Database) Commit(branch vgraph.BranchID, message string) (*vgraph.Commit, error) {
	if err := db.beginOp(); err != nil {
		return nil, err
	}
	defer db.endOp()
	db.mu.Lock()
	defer db.mu.Unlock()
	if _, ok := db.graph.Branch(branch); !ok {
		return nil, fmt.Errorf("%w: id %d", ErrNoSuchBranch, branch)
	}
	c, err := db.graph.NewCommit(branch, message)
	if err != nil {
		return nil, err
	}
	if err := db.journalOp("commit", message); err != nil {
		return nil, err
	}
	for _, tname := range db.order {
		if err := db.tables[tname].engine.Commit(c); err != nil {
			return nil, err
		}
	}
	return c, nil
}

// Merge merges the head of branch other into branch into across all
// relations, committing the result as a merge version. precedenceFirst
// selects whether into (true) or other (false) wins conflicts.
func (db *Database) Merge(into, other vgraph.BranchID, message string, kind MergeKind, precedenceFirst bool) (*vgraph.Commit, MergeStats, error) {
	return db.MergeContext(context.Background(), into, other, message, kind, precedenceFirst)
}

// MergeContext is Merge bounded by a context. Cancellation is checked
// before any state changes and between relations: each relation's
// engine merge runs to completion, so the effective granularity is one
// table. A merge aborted between relations returns ctx.Err() with the
// merge commit already created and some relations merged — the same
// partially-applied state a crash mid-merge leaves — so callers should
// treat a canceled merge like a torn one and re-merge or discard the
// branch.
func (db *Database) MergeContext(ctx context.Context, into, other vgraph.BranchID, message string, kind MergeKind, precedenceFirst bool) (*vgraph.Commit, MergeStats, error) {
	var agg MergeStats
	if err := ctx.Err(); err != nil {
		return nil, agg, err
	}
	if err := db.beginOp(); err != nil {
		return nil, agg, err
	}
	defer db.endOp()
	db.mu.Lock()
	defer db.mu.Unlock()
	for _, b := range []vgraph.BranchID{into, other} {
		if _, ok := db.graph.Branch(b); !ok {
			return nil, agg, fmt.Errorf("%w: id %d", ErrNoSuchBranch, b)
		}
	}
	mc, err := db.graph.NewMergeCommit(into, other, message, precedenceFirst)
	if err != nil {
		return nil, agg, err
	}
	if err := db.journalOp("merge", message); err != nil {
		return nil, agg, err
	}
	for _, tname := range db.order {
		if err := ctx.Err(); err != nil {
			return nil, agg, err
		}
		st, err := db.tables[tname].engine.Merge(into, other, mc, kind)
		if err != nil {
			return nil, agg, err
		}
		agg.Conflicts += st.Conflicts
		agg.ChangedA += st.ChangedA
		agg.ChangedB += st.ChangedB
		agg.DiffBytes += st.DiffBytes
		agg.Materialized += st.Materialized
		agg.TuplesScanned += st.TuplesScanned
	}
	return mc, agg, nil
}

func (db *Database) journalOp(op, detail string) error {
	_, err := db.journal.AppendGroup([]byte(op + ":" + detail))
	if err == nil && db.opt.Fsync {
		return db.journal.Sync()
	}
	return err
}

// Stats aggregates storage statistics across relations.
func (db *Database) Stats() (Stats, error) {
	var agg Stats
	if err := db.beginOp(); err != nil {
		return agg, err
	}
	defer db.endOp()
	for _, t := range db.Tables() {
		st, err := t.engine.Stats()
		if err != nil {
			return agg, err
		}
		agg.Records += st.Records
		agg.DataBytes += st.DataBytes
		agg.IndexBytes += st.IndexBytes
		agg.CommitBytes += st.CommitBytes
		agg.SegmentCount += st.SegmentCount
		agg.LiveRecords += st.LiveRecords
	}
	return agg, nil
}

// Flush writes all buffered state to disk.
func (db *Database) Flush() error {
	if err := db.beginOp(); err != nil {
		return err
	}
	defer db.endOp()
	for _, t := range db.Tables() {
		if err := t.engine.Flush(); err != nil {
			return err
		}
	}
	return nil
}

// Close flushes and closes every engine and the journal. Close is
// idempotent: calls after the first are no-ops returning nil.
func (db *Database) Close() error {
	if !db.closed.CompareAndSwap(false, true) {
		return nil
	}
	// Drain: operations that passed beginOp before the flag flipped
	// still hold the close-guard shared; wait for them to finish.
	db.closeMu.Lock()
	db.closeMu.Unlock()
	var first error
	for _, t := range db.Tables() {
		if err := t.engine.Close(); err != nil && first == nil {
			first = err
		}
	}
	if err := db.journal.Close(); err != nil && first == nil {
		first = err
	}
	return first
}

// Name returns the table name.
func (t *Table) Name() string { return t.name }

// Schema returns the table schema.
func (t *Table) Schema() *record.Schema { return t.schema }

// Engine exposes the underlying storage engine (benchmarks use this).
func (t *Table) Engine() Engine { return t.engine }

// Insert upserts a record into a branch head.
func (t *Table) Insert(branch vgraph.BranchID, rec *record.Record) error {
	if err := t.db.beginOp(); err != nil {
		return err
	}
	defer t.db.endOp()
	return t.engine.Insert(branch, rec)
}

// Delete removes a key from a branch head.
func (t *Table) Delete(branch vgraph.BranchID, pk int64) error {
	if err := t.db.beginOp(); err != nil {
		return err
	}
	defer t.db.endOp()
	return t.engine.Delete(branch, pk)
}

// Scan emits the records live in a branch head (Query 1).
func (t *Table) Scan(branch vgraph.BranchID, fn ScanFunc) error {
	return t.ScanContext(context.Background(), branch, fn)
}

// ScanContext is Scan bounded by a context: the scan stops within one
// record of ctx being canceled and returns ctx.Err().
func (t *Table) ScanContext(ctx context.Context, branch vgraph.BranchID, fn ScanFunc) error {
	if err := t.db.beginOp(); err != nil {
		return err
	}
	defer t.db.endOp()
	if err := t.engine.ScanBranch(branch, ctxScanFunc(ctx, fn)); err != nil {
		return err
	}
	return ctx.Err()
}

// ScanCommit emits the records of a committed version (checkout read).
func (t *Table) ScanCommit(c *vgraph.Commit, fn ScanFunc) error {
	return t.ScanCommitContext(context.Background(), c, fn)
}

// ScanCommitContext is ScanCommit bounded by a context.
func (t *Table) ScanCommitContext(ctx context.Context, c *vgraph.Commit, fn ScanFunc) error {
	if err := t.db.beginOp(); err != nil {
		return err
	}
	defer t.db.endOp()
	if err := t.engine.ScanCommit(c, ctxScanFunc(ctx, fn)); err != nil {
		return err
	}
	return ctx.Err()
}

// ScanMulti emits records live in any of the branches with membership
// annotations (Query 4).
func (t *Table) ScanMulti(branches []vgraph.BranchID, fn MultiScanFunc) error {
	return t.ScanMultiContext(context.Background(), branches, fn)
}

// ScanMultiContext is ScanMulti bounded by a context.
func (t *Table) ScanMultiContext(ctx context.Context, branches []vgraph.BranchID, fn MultiScanFunc) error {
	if err := t.db.beginOp(); err != nil {
		return err
	}
	defer t.db.endOp()
	if err := t.engine.ScanMulti(branches, ctxWrap2(ctx, fn)); err != nil {
		return err
	}
	return ctx.Err()
}

// ScanDiff streams the symmetric difference of two branch heads
// (Query 2) through a callback; Diff is the iterator form.
func (t *Table) ScanDiff(a, b vgraph.BranchID, fn DiffFunc) error {
	return t.ScanDiffContext(context.Background(), a, b, fn)
}

// ScanDiffContext is ScanDiff bounded by a context.
func (t *Table) ScanDiffContext(ctx context.Context, a, b vgraph.BranchID, fn DiffFunc) error {
	if err := t.db.beginOp(); err != nil {
		return err
	}
	defer t.db.endOp()
	if err := t.engine.Diff(a, b, ctxWrap2(ctx, fn)); err != nil {
		return err
	}
	return ctx.Err()
}

// ctxScanFunc wraps a ScanFunc so the engine stops scanning as soon as
// ctx is canceled; contexts that can never be canceled pass fn through
// untouched.
func ctxScanFunc(ctx context.Context, fn ScanFunc) ScanFunc {
	if ctx.Done() == nil {
		return fn
	}
	return func(rec *record.Record) bool {
		return ctx.Err() == nil && fn(rec)
	}
}

// ctxWrap2 is ctxScanFunc for the two-argument callback shapes
// (MultiScanFunc, DiffFunc).
func ctxWrap2[A, B any](ctx context.Context, fn func(A, B) bool) func(A, B) bool {
	if ctx.Done() == nil {
		return fn
	}
	return func(a A, b B) bool {
		return ctx.Err() == nil && fn(a, b)
	}
}
