package core

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"

	"decibel/internal/compact"
	"decibel/internal/heap"
	"decibel/internal/lock"
	"decibel/internal/record"
	"decibel/internal/store"
	"decibel/internal/vgraph"
	"decibel/internal/wal"
)

// Database is a Decibel dataset: a collection of relations versioned
// together under one version graph (Section 2.2.1: "the main unit of
// storage is the dataset ... a collection of relations"). All relations
// share the same storage scheme, buffer pool and branch structure; a
// commit snapshots every relation atomically.
type Database struct {
	mu      sync.Mutex
	closeMu sync.RWMutex // held shared for the span of every operation; exclusively by Close
	dir     string
	opt     Options
	factory Factory

	graph   *vgraph.Graph
	pool    *heap.Pool
	locks   *lock.Manager
	journal *wal.Log

	tables map[string]*Table
	order  []string // table creation order

	epoch   int // committed schema epoch (max SchemaVer across the graph)
	nextTxn uint64
	closed  atomic.Bool

	// Parallel scan pool: scanSem bounds the frozen-segment scan
	// goroutines all tables share; scanWorkers is its size.
	scanWorkers int
	scanSem     chan struct{}

	// Auto-compaction loop (Options.Compaction.Mode == ModeAuto): Close
	// signals quit and waits for the loop before closing engines.
	compactQuit chan struct{}
	compactWG   sync.WaitGroup

	// Session drain (CloseContext): draining refuses new sessions
	// while the active ones finish; sessWait is closed when the last
	// active session closes, waking the drainer.
	draining atomic.Bool
	sessMu   sync.Mutex
	sessions int
	sessWait chan struct{}
}

// Table is one versioned relation inside a Database.
type Table struct {
	name   string
	hist   *record.History
	engine Engine
	db     *Database

	// passSpecs caches the stateless pass-through scan specs (no
	// predicate, no projection) per schema epoch, so repeated plain
	// scans do not rebuild them. Scoped to the table, it dies with the
	// database instead of pinning the history process-wide.
	passSpecs sync.Map // int (epoch) -> *ScanSpec
}

// catalog is the persisted table list with each table's full schema
// history: the ordered physical columns annotated with the schema
// epoch that added (and, for logical drops, hid) them, plus encoded
// defaults for columns added after table creation.
type catalog struct {
	Tables []catalogTable `json:"tables"`
}

type catalogTable struct {
	Name    string          `json:"name"`
	Columns []catalogColumn `json:"columns"`
}

type catalogColumn struct {
	Name      string `json:"name"`
	Type      uint8  `json:"type"`
	Size      int    `json:"size,omitempty"`      // payload capacity of Bytes columns
	AddedIn   int    `json:"addedIn,omitempty"`   // schema epoch that introduced the column (0 = creation)
	DroppedIn int    `json:"droppedIn,omitempty"` // schema epoch that hid it (0 = never)
	Default   []byte `json:"default,omitempty"`   // encoded default for added columns
}

// Open opens (or creates) the dataset at dir using the given storage
// engine factory. Existing tables are reloaded from the catalog;
// committed state is recovered and uncommitted modifications are rolled
// back by the engines.
func Open(dir string, factory Factory, opt Options) (*Database, error) {
	return OpenContext(context.Background(), dir, factory, opt)
}

// OpenContext is Open bounded by a context: cancellation is checked
// before the open starts and between tables during catalog reload
// (each table's engine recovery runs to completion), and already-opened
// resources are released on abort.
func OpenContext(ctx context.Context, dir string, factory Factory, opt Options) (*Database, error) {
	if factory == nil {
		return nil, errors.New("core: nil engine factory")
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if err := os.MkdirAll(filepath.Join(dir, "tables"), 0o755); err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	graph, err := vgraph.New(filepath.Join(dir, "graph.json"))
	if err != nil {
		return nil, err
	}
	journal, err := wal.Open(filepath.Join(dir, "wal.log"))
	if err != nil {
		return nil, err
	}
	workers := resolveScanWorkers(opt)
	db := &Database{
		dir:         dir,
		opt:         opt,
		factory:     factory,
		graph:       graph,
		pool:        heap.NewPool(opt.PoolPages, opt.PageSize),
		locks:       lock.NewManager(0),
		journal:     journal,
		tables:      make(map[string]*Table),
		scanWorkers: workers,
		scanSem:     make(chan struct{}, workers),
	}
	if err := db.loadCatalogContext(ctx); err != nil {
		for _, t := range db.Tables() {
			t.engine.Close()
		}
		journal.Close()
		return nil, err
	}
	if opt.Compaction.Mode == compact.ModeAuto {
		db.startCompactor()
	}
	return db, nil
}

func (db *Database) catalogPath() string { return filepath.Join(db.dir, "catalog.json") }

// beginOp opens an operation against the database: it takes the
// close-guard shared and fails with ErrDatabaseClosed once Close has
// run. Operations that passed the check before Close are drained —
// Close waits for their endOp — so they never see half-closed engines.
func (db *Database) beginOp() error {
	db.closeMu.RLock()
	if db.closed.Load() {
		db.closeMu.RUnlock()
		return ErrDatabaseClosed
	}
	return nil
}

// endOp closes an operation opened with beginOp.
func (db *Database) endOp() { db.closeMu.RUnlock() }

func (db *Database) loadCatalogContext(ctx context.Context) error {
	data, err := os.ReadFile(db.catalogPath())
	if errors.Is(err, os.ErrNotExist) {
		return nil
	}
	if err != nil {
		return fmt.Errorf("core: %w", err)
	}
	var cat catalog
	if err := json.Unmarshal(data, &cat); err != nil {
		return fmt.Errorf("core: corrupt catalog: %w", err)
	}
	// Schema changes replay from the commit log: the committed schema
	// epoch is the newest SchemaVer any commit carries, and catalog
	// entries from epochs beyond it belong to changes whose commit never
	// made it to disk — they are rolled back like any torn commit.
	db.epoch = db.graph.MaxSchemaVer()
	for _, ct := range cat.Tables {
		if err := ctx.Err(); err != nil {
			return err
		}
		cols := make([]record.HistoryColumn, len(ct.Columns))
		for i, c := range ct.Columns {
			cols[i] = record.HistoryColumn{
				Col:       record.Column{Name: c.Name, Type: record.Type(c.Type), Size: c.Size},
				AddedIn:   c.AddedIn,
				DroppedIn: c.DroppedIn,
				Default:   c.Default,
			}
		}
		hist, err := record.RestoreHistory(cols)
		if err != nil {
			return fmt.Errorf("core: corrupt catalog for table %q: %w", ct.Name, err)
		}
		hist.Revert(db.epoch)
		if _, err := db.attachTable(ct.Name, hist); err != nil {
			return err
		}
	}
	return nil
}

func (db *Database) saveCatalogLocked() error {
	var cat catalog
	for _, name := range db.order {
		t := db.tables[name]
		ct := catalogTable{Name: name}
		for _, hc := range t.hist.Columns() {
			ct.Columns = append(ct.Columns, catalogColumn{
				Name: hc.Col.Name, Type: uint8(hc.Col.Type), Size: hc.Col.Size,
				AddedIn: hc.AddedIn, DroppedIn: hc.DroppedIn, Default: hc.Default,
			})
		}
		cat.Tables = append(cat.Tables, ct)
	}
	data, err := json.Marshal(&cat)
	if err != nil {
		return err
	}
	tmp := db.catalogPath() + ".tmp"
	if err := os.WriteFile(tmp, data, 0o644); err != nil {
		return err
	}
	return os.Rename(tmp, db.catalogPath())
}

func (db *Database) attachTable(name string, hist *record.History) (*Table, error) {
	tdir := filepath.Join(db.dir, "tables", name)
	if err := os.MkdirAll(tdir, 0o755); err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	env := &Env{Dir: tdir, Schema: hist.VisibleAt(0), Hist: hist, Graph: db.graph, Pool: db.pool, Opt: db.opt}
	eng, err := db.factory(env)
	if err != nil {
		return nil, err
	}
	t := &Table{name: name, hist: hist, engine: eng, db: db}
	db.tables[name] = t
	db.order = append(db.order, name)
	return t, nil
}

// CreateTable adds a relation to the dataset. Tables must be created
// before Init (the init transaction "creates the two tables as well as
// populates them with initial data", Section 2.2.3).
func (db *Database) CreateTable(name string, schema *record.Schema) (*Table, error) {
	if err := db.beginOp(); err != nil {
		return nil, err
	}
	defer db.endOp()
	db.mu.Lock()
	defer db.mu.Unlock()
	if db.graph.Initialized() {
		return nil, fmt.Errorf("%w: cannot create tables after init", ErrAlreadyInitialized)
	}
	if name == "" {
		return nil, errors.New("core: empty table name")
	}
	if _, dup := db.tables[name]; dup {
		return nil, fmt.Errorf("core: table %q already exists", name)
	}
	t, err := db.attachTable(name, record.NewHistory(schema))
	if err != nil {
		return nil, err
	}
	return t, db.saveCatalogLocked()
}

// Table returns the named relation.
func (db *Database) Table(name string) (*Table, bool) {
	db.mu.Lock()
	defer db.mu.Unlock()
	t, ok := db.tables[name]
	return t, ok
}

// TableByName returns the named relation or an error wrapping
// ErrNoSuchTable.
func (db *Database) TableByName(name string) (*Table, error) {
	t, ok := db.Table(name)
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrNoSuchTable, name)
	}
	return t, nil
}

// Tables returns the dataset's relations in creation order.
func (db *Database) Tables() []*Table {
	db.mu.Lock()
	defer db.mu.Unlock()
	out := make([]*Table, 0, len(db.order))
	for _, n := range db.order {
		out = append(out, db.tables[n])
	}
	return out
}

// Graph exposes the version graph (read-mostly: heads, LCA, ancestry).
func (db *Database) Graph() *vgraph.Graph { return db.graph }

// BranchNamed resolves a branch name or returns an error wrapping
// ErrNoSuchBranch.
func (db *Database) BranchNamed(name string) (*vgraph.Branch, error) {
	b, ok := db.graph.BranchByName(name)
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrNoSuchBranch, name)
	}
	return b, nil
}

// Init creates the master branch and the initial (empty) version of
// every relation.
func (db *Database) Init(message string) (*vgraph.Branch, *vgraph.Commit, error) {
	if err := db.beginOp(); err != nil {
		return nil, nil, err
	}
	defer db.endOp()
	db.mu.Lock()
	defer db.mu.Unlock()
	if db.graph.Initialized() {
		return nil, nil, ErrAlreadyInitialized
	}
	if len(db.tables) == 0 {
		return nil, nil, errors.New("core: init requires at least one table")
	}
	master, c0, err := db.graph.Init(message)
	if err != nil {
		return nil, nil, err
	}
	if err := db.journalOp("init", message); err != nil {
		return nil, nil, err
	}
	for _, name := range db.order {
		if err := db.tables[name].engine.Init(master, c0); err != nil {
			return nil, nil, err
		}
	}
	return master, c0, nil
}

// Branch creates a named branch from any existing commit.
func (db *Database) Branch(name string, from vgraph.CommitID) (*vgraph.Branch, error) {
	if err := db.beginOp(); err != nil {
		return nil, err
	}
	defer db.endOp()
	db.mu.Lock()
	defer db.mu.Unlock()
	fromCommit, ok := db.graph.Commit(from)
	if !ok {
		return nil, fmt.Errorf("%w: commit %d", ErrNoSuchCommit, from)
	}
	b, err := db.graph.NewBranch(name, from)
	if err != nil {
		return nil, err
	}
	if err := db.journalOp("branch", name); err != nil {
		return nil, err
	}
	for _, tname := range db.order {
		if err := db.tables[tname].engine.Branch(b, fromCommit); err != nil {
			return nil, err
		}
	}
	return b, nil
}

// BranchFromHead creates a branch off the current head of an existing
// branch.
func (db *Database) BranchFromHead(name, parent string) (*vgraph.Branch, error) {
	pb, ok := db.graph.BranchByName(parent)
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrNoSuchBranch, parent)
	}
	return db.Branch(name, pb.Head)
}

// Commit snapshots the branch's current state across all relations as a
// new version.
func (db *Database) Commit(branch vgraph.BranchID, message string) (*vgraph.Commit, error) {
	if err := db.beginOp(); err != nil {
		return nil, err
	}
	defer db.endOp()
	db.mu.Lock()
	defer db.mu.Unlock()
	if _, ok := db.graph.Branch(branch); !ok {
		return nil, fmt.Errorf("%w: id %d", ErrNoSuchBranch, branch)
	}
	c, err := db.graph.NewCommit(branch, message)
	if err != nil {
		return nil, err
	}
	if err := db.journalOp("commit", message); err != nil {
		return nil, err
	}
	for _, tname := range db.order {
		if err := db.tables[tname].engine.Commit(c); err != nil {
			return nil, err
		}
	}
	return c, nil
}

// SchemaChange is one pending schema-evolution operation, applied
// atomically with the commit that carries it.
type SchemaChange struct {
	Table string
	// Add, when non-nil, appends the column with the given default
	// (Default nil = zero value). The column lands after every existing
	// physical column, so records stored earlier stay byte prefixes of
	// the new layout and are never rewritten.
	Add     *record.Column
	Default any
	// Drop, when non-empty, logically drops the named column: it
	// disappears from the schema visible at this and later epochs but
	// keeps its bytes in stored records, and reads at earlier versions
	// still see it.
	Drop string
}

// SchemaEpoch returns the committed schema epoch of the dataset.
func (db *Database) SchemaEpoch() int {
	db.mu.Lock()
	defer db.mu.Unlock()
	return db.epoch
}

// CommitSchema is Commit for a transaction carrying schema changes:
// the changes are validated and applied to the catalog histories under
// a new schema epoch, the catalog is persisted, and the commit is
// created stamped with the new epoch — from it onward the branch (and
// every branch that later merges it) sees the evolved schema, while
// reads at earlier commits keep resolving the schema as of then. The
// catalog is persisted before the commit is created, so a crash
// between the two rolls the changes back on reopen (the epoch is never
// referenced by any commit).
func (db *Database) CommitSchema(branch vgraph.BranchID, message string, changes []SchemaChange) (*vgraph.Commit, error) {
	if len(changes) == 0 {
		return db.Commit(branch, message)
	}
	if err := db.beginOp(); err != nil {
		return nil, err
	}
	defer db.endOp()
	db.mu.Lock()
	defer db.mu.Unlock()
	if _, ok := db.graph.Branch(branch); !ok {
		return nil, fmt.Errorf("%w: id %d", ErrNoSuchBranch, branch)
	}
	// Schema evolution is one linear chain of epochs. A branch may only
	// extend the chain if its head has adopted every prior change
	// (made them itself or merged the branch that did); otherwise a
	// change committed here would silently surface another branch's
	// unmerged columns. Diverged branches must merge first.
	if head := db.headEpoch(branch); head != db.epoch {
		return nil, fmt.Errorf("%w: branch is at schema epoch %d but the dataset is at %d; merge the branch that evolved the schema before changing it again",
			ErrSchemaChange, head, db.epoch)
	}
	newEpoch := db.epoch + 1
	applied := make(map[*record.History]bool)
	rollback := func() {
		for h := range applied {
			h.Revert(db.epoch)
		}
	}
	for _, ch := range changes {
		t, ok := db.tables[ch.Table]
		if !ok {
			rollback()
			return nil, fmt.Errorf("%w: %q", ErrNoSuchTable, ch.Table)
		}
		var err error
		switch {
		case ch.Add != nil && ch.Drop != "":
			err = errors.New("both Add and Drop set")
		case ch.Add != nil:
			err = t.hist.AddColumn(newEpoch, *ch.Add, ch.Default)
		case ch.Drop != "":
			err = t.hist.DropColumn(newEpoch, ch.Drop)
		default:
			err = errors.New("empty schema change")
		}
		if err != nil {
			rollback()
			return nil, fmt.Errorf("%w: %v", ErrSchemaChange, err)
		}
		applied[t.hist] = true
	}
	if err := db.saveCatalogLocked(); err != nil {
		rollback()
		return nil, err
	}
	if err := db.journalOp("schema", message); err != nil {
		rollback()
		return nil, err
	}
	c, err := db.graph.NewCommitSchema(branch, message, newEpoch)
	if err != nil {
		rollback()
		if serr := db.saveCatalogLocked(); serr != nil {
			return nil, errors.Join(err, serr)
		}
		return nil, err
	}
	db.epoch = newEpoch
	for _, tname := range db.order {
		if err := db.tables[tname].engine.Commit(c); err != nil {
			// The schema changes and the commit are already durable; a
			// failing engine hook leaves a torn commit, like any commit.
			// Return the commit alongside the error so the session knows
			// the queued changes were applied and must not be retried.
			return c, err
		}
	}
	return c, nil
}

// Merge merges the head of branch other into branch into across all
// relations, committing the result as a merge version. precedenceFirst
// selects whether into (true) or other (false) wins conflicts.
func (db *Database) Merge(into, other vgraph.BranchID, message string, kind MergeKind, precedenceFirst bool) (*vgraph.Commit, MergeStats, error) {
	return db.MergeContext(context.Background(), into, other, message, kind, precedenceFirst)
}

// MergeContext is Merge bounded by a context. Cancellation is checked
// before any state changes and between relations: each relation's
// engine merge runs to completion, so the effective granularity is one
// table. A merge aborted between relations returns ctx.Err() with the
// merge commit already created and some relations merged — the same
// partially-applied state a crash mid-merge leaves — so callers should
// treat a canceled merge like a torn one and re-merge or discard the
// branch.
func (db *Database) MergeContext(ctx context.Context, into, other vgraph.BranchID, message string, kind MergeKind, precedenceFirst bool) (*vgraph.Commit, MergeStats, error) {
	var agg MergeStats
	if err := ctx.Err(); err != nil {
		return nil, agg, err
	}
	if err := db.beginOp(); err != nil {
		return nil, agg, err
	}
	defer db.endOp()
	db.mu.Lock()
	defer db.mu.Unlock()
	for _, b := range []vgraph.BranchID{into, other} {
		if _, ok := db.graph.Branch(b); !ok {
			return nil, agg, fmt.Errorf("%w: id %d", ErrNoSuchBranch, b)
		}
	}
	mc, err := db.graph.NewMergeCommit(into, other, message, precedenceFirst)
	if err != nil {
		return nil, agg, err
	}
	if err := db.journalOp("merge", message); err != nil {
		return nil, agg, err
	}
	for _, tname := range db.order {
		if err := ctx.Err(); err != nil {
			return nil, agg, err
		}
		st, err := db.tables[tname].engine.Merge(into, other, mc, kind)
		if err != nil {
			return nil, agg, err
		}
		agg.Conflicts += st.Conflicts
		agg.ChangedA += st.ChangedA
		agg.ChangedB += st.ChangedB
		agg.DiffBytes += st.DiffBytes
		agg.Materialized += st.Materialized
		agg.TuplesScanned += st.TuplesScanned
	}
	return mc, agg, nil
}

func (db *Database) journalOp(op, detail string) error {
	_, err := db.journal.AppendGroup([]byte(op + ":" + detail))
	if err == nil && db.opt.Fsync {
		return db.journal.Sync()
	}
	return err
}

// Stats aggregates storage statistics across relations.
func (db *Database) Stats() (Stats, error) {
	var agg Stats
	if err := db.beginOp(); err != nil {
		return agg, err
	}
	defer db.endOp()
	for _, t := range db.Tables() {
		st, err := t.engine.Stats()
		if err != nil {
			return agg, err
		}
		agg.Records += st.Records
		agg.DataBytes += st.DataBytes
		agg.IndexBytes += st.IndexBytes
		agg.CommitBytes += st.CommitBytes
		agg.SegmentCount += st.SegmentCount
		agg.LiveRecords += st.LiveRecords
	}
	return agg, nil
}

// Flush writes all buffered state to disk.
func (db *Database) Flush() error {
	if err := db.beginOp(); err != nil {
		return err
	}
	defer db.endOp()
	for _, t := range db.Tables() {
		if err := t.engine.Flush(); err != nil {
			return err
		}
	}
	return nil
}

// addSession registers an open session for the drain bookkeeping;
// it fails with ErrDatabaseClosed once the database is closed or a
// CloseContext drain has begun.
func (db *Database) addSession() error {
	db.sessMu.Lock()
	defer db.sessMu.Unlock()
	if db.closed.Load() || db.draining.Load() {
		return ErrDatabaseClosed
	}
	db.sessions++
	return nil
}

// dropSession unregisters a session, waking a pending CloseContext
// drain when the last one leaves.
func (db *Database) dropSession() {
	db.sessMu.Lock()
	db.sessions--
	if db.sessions == 0 && db.sessWait != nil {
		close(db.sessWait)
		db.sessWait = nil
	}
	db.sessMu.Unlock()
}

// ActiveSessions reports the number of open sessions (the server's
// active-session gauge).
func (db *Database) ActiveSessions() int {
	db.sessMu.Lock()
	defer db.sessMu.Unlock()
	return db.sessions
}

// CloseContext is a graceful Close: it stops admitting new sessions
// (late arrivals get ErrDatabaseClosed), waits for the active ones to
// close until ctx expires, then closes the database. In-flight scans
// that passed the close guard always run to completion either way; a
// drain timeout is reported as ctx.Err() after the close finishes.
func (db *Database) CloseContext(ctx context.Context) error {
	db.draining.Store(true)
	db.sessMu.Lock()
	var wait chan struct{}
	if db.sessions > 0 {
		if db.sessWait == nil {
			db.sessWait = make(chan struct{})
		}
		wait = db.sessWait
	}
	db.sessMu.Unlock()
	var werr error
	if wait != nil {
		select {
		case <-wait:
		case <-ctx.Done():
			werr = ctx.Err()
		}
	}
	if err := db.Close(); err != nil {
		return err
	}
	return werr
}

// Close flushes and closes every engine and the journal. Close is
// idempotent: calls after the first are no-ops returning nil.
func (db *Database) Close() error {
	if !db.closed.CompareAndSwap(false, true) {
		return nil
	}
	// Stop the auto-compaction loop first: a pass that already passed
	// beginOp drains below like any operation; once the flag is set no
	// new pass can start.
	if db.compactQuit != nil {
		close(db.compactQuit)
		db.compactWG.Wait()
	}
	// Drain: operations that passed beginOp before the flag flipped
	// still hold the close-guard shared; wait for them to finish.
	db.closeMu.Lock()
	db.closeMu.Unlock()
	var first error
	for _, t := range db.Tables() {
		if err := t.engine.Close(); err != nil && first == nil {
			first = err
		}
	}
	if err := db.journal.Close(); err != nil && first == nil {
		first = err
	}
	return first
}

// Name returns the table name.
func (t *Table) Name() string { return t.name }

// Schema returns the table's current visible schema (the newest schema
// epoch). Historical versions resolve their own schema; see SchemaAt.
func (t *Table) Schema() *record.Schema { return t.hist.VisibleLatest() }

// SchemaAt returns the schema visible as of a schema epoch (the value
// stamped on a commit's SchemaVer): what a read of that commit sees.
func (t *Table) SchemaAt(epoch int) *record.Schema { return t.hist.VisibleAt(epoch) }

// History exposes the table's versioned schema history.
func (t *Table) History() *record.History { return t.hist }

// Engine exposes the underlying storage engine (benchmarks use this).
func (t *Table) Engine() Engine { return t.engine }

// headEpoch returns the schema epoch of the branch's head commit — the
// schema version writes to that branch encode under.
func (db *Database) headEpoch(branch vgraph.BranchID) int {
	b, ok := db.graph.Branch(branch)
	if !ok {
		return 0
	}
	c, ok := db.graph.Commit(b.Head)
	if !ok {
		return 0
	}
	return c.SchemaVer
}

// BranchEpoch returns the schema epoch at a branch's head — the
// version head reads of that branch resolve the schema at.
func (t *Table) BranchEpoch(branch vgraph.BranchID) int { return t.db.headEpoch(branch) }

// MaxBranchEpoch returns the newest head schema epoch among the given
// branches — the version multi-branch scans and diffs emit under
// (rows from branches still on older versions widen with defaults).
func (t *Table) MaxBranchEpoch(branches []vgraph.BranchID) int {
	max := 0
	for _, b := range branches {
		if e := t.db.headEpoch(b); e > max {
			max = e
		}
	}
	return max
}

// SegmentStatser is the optional engine capability behind per-segment
// diagnostics: engines built on the shared segment store report each
// segment's row count, schema-version id and zone map.
type SegmentStatser interface {
	SegmentStats() []store.SegmentStat
}

// SegmentStats returns per-segment summaries — row counts, schema
// version ids and zone maps — when the engine exposes them (all three
// built-in engines do); nil otherwise. This is what the CLI's
// `stats <table>` renders.
func (t *Table) SegmentStats() []store.SegmentStat {
	if ss, ok := t.engine.(SegmentStatser); ok {
		return ss.SegmentStats()
	}
	return nil
}

// PassSpec returns the cached match-all, project-nothing scan spec for
// one schema epoch. Specs without predicate or projection are
// stateless, so one instance serves every scan at the same version.
func (t *Table) PassSpec(epoch int) *ScanSpec {
	if sp, ok := t.passSpecs.Load(epoch); ok {
		return sp.(*ScanSpec)
	}
	spec, err := NewScanSpecAt(t.hist, epoch, nil, nil)
	if err != nil {
		panic(err) // no projection: cannot fail
	}
	sp, _ := t.passSpecs.LoadOrStore(epoch, spec)
	return sp.(*ScanSpec)
}

// checkWrite validates that a record's schema may be written to the
// branch (every column visible at the branch head's schema epoch),
// classifying failures: columns a later epoch introduces fail with
// ErrColumnNotYetAdded, anything else with ErrSchemaChange.
func (t *Table) checkWrite(branch vgraph.BranchID, s *record.Schema) error {
	if t.hist.Epoch() == 0 {
		return nil // single-version table: nothing to resolve
	}
	epoch := t.db.headEpoch(branch)
	err := t.hist.CheckWritable(s, epoch)
	if err == nil {
		return nil
	}
	vis := t.hist.VisibleAt(epoch)
	for i := 0; i < s.NumColumns(); i++ {
		name := s.Column(i).Name
		if vis.ColumnIndex(name) >= 0 {
			continue
		}
		if addedIn, _, ok := t.hist.ColumnEpochs(name); ok && addedIn > epoch {
			return fmt.Errorf("%w: %q (added at schema epoch %d, branch head is at %d)",
				ErrColumnNotYetAdded, name, addedIn, epoch)
		}
	}
	return fmt.Errorf("%w: %v", ErrSchemaChange, err)
}

// Insert upserts a record into a branch head.
func (t *Table) Insert(branch vgraph.BranchID, rec *record.Record) error {
	if err := t.db.beginOp(); err != nil {
		return err
	}
	defer t.db.endOp()
	if err := t.checkWrite(branch, rec.Schema()); err != nil {
		return err
	}
	return t.engine.Insert(branch, rec)
}

// Delete removes a key from a branch head.
func (t *Table) Delete(branch vgraph.BranchID, pk int64) error {
	if err := t.db.beginOp(); err != nil {
		return err
	}
	defer t.db.endOp()
	return t.engine.Delete(branch, pk)
}

// Scan emits the records live in a branch head (Query 1).
func (t *Table) Scan(branch vgraph.BranchID, fn ScanFunc) error {
	return t.ScanContext(context.Background(), branch, fn)
}

// ScanContext is Scan bounded by a context: the scan stops within one
// record of ctx being canceled and returns ctx.Err().
func (t *Table) ScanContext(ctx context.Context, branch vgraph.BranchID, fn ScanFunc) error {
	if err := t.db.beginOp(); err != nil {
		return err
	}
	defer t.db.endOp()
	if err := t.engine.ScanBranch(branch, ctxScanFunc(ctx, fn)); err != nil {
		return err
	}
	return ctx.Err()
}

// ScanCommit emits the records of a committed version (checkout read).
func (t *Table) ScanCommit(c *vgraph.Commit, fn ScanFunc) error {
	return t.ScanCommitContext(context.Background(), c, fn)
}

// ScanCommitContext is ScanCommit bounded by a context.
func (t *Table) ScanCommitContext(ctx context.Context, c *vgraph.Commit, fn ScanFunc) error {
	if err := t.db.beginOp(); err != nil {
		return err
	}
	defer t.db.endOp()
	if err := t.engine.ScanCommit(c, ctxScanFunc(ctx, fn)); err != nil {
		return err
	}
	return ctx.Err()
}

// ScanMulti emits records live in any of the branches with membership
// annotations (Query 4).
func (t *Table) ScanMulti(branches []vgraph.BranchID, fn MultiScanFunc) error {
	return t.ScanMultiContext(context.Background(), branches, fn)
}

// ScanMultiContext is ScanMulti bounded by a context.
func (t *Table) ScanMultiContext(ctx context.Context, branches []vgraph.BranchID, fn MultiScanFunc) error {
	if err := t.db.beginOp(); err != nil {
		return err
	}
	defer t.db.endOp()
	if err := t.engine.ScanMulti(branches, ctxWrap2(ctx, fn)); err != nil {
		return err
	}
	return ctx.Err()
}

// ScanDiff streams the symmetric difference of two branch heads
// (Query 2) through a callback; Diff is the iterator form.
func (t *Table) ScanDiff(a, b vgraph.BranchID, fn DiffFunc) error {
	return t.ScanDiffContext(context.Background(), a, b, fn)
}

// ScanDiffContext is ScanDiff bounded by a context.
func (t *Table) ScanDiffContext(ctx context.Context, a, b vgraph.BranchID, fn DiffFunc) error {
	if err := t.db.beginOp(); err != nil {
		return err
	}
	defer t.db.endOp()
	if err := t.engine.Diff(a, b, ctxWrap2(ctx, fn)); err != nil {
		return err
	}
	return ctx.Err()
}

// ctxScanFunc wraps a ScanFunc so the engine stops scanning as soon as
// ctx is canceled; contexts that can never be canceled pass fn through
// untouched.
func ctxScanFunc(ctx context.Context, fn ScanFunc) ScanFunc {
	if ctx.Done() == nil {
		return fn
	}
	return func(rec *record.Record) bool {
		return ctx.Err() == nil && fn(rec)
	}
}

// ctxWrap2 is ctxScanFunc for the two-argument callback shapes
// (MultiScanFunc, DiffFunc).
func ctxWrap2[A, B any](ctx context.Context, fn func(A, B) bool) func(A, B) bool {
	if ctx.Done() == nil {
		return fn
	}
	return func(a A, b B) bool {
		return ctx.Err() == nil && fn(a, b)
	}
}
