package core

import (
	"context"
	"expvar"
	"sync/atomic"

	"decibel/internal/vgraph"
)

// PKLookupScanner is an optional engine capability: resolve a single
// primary key against a branch head through the engine's primary-key
// index, skipping the segment scan entirely. The spec's predicate and
// projection still run on the looked-up record — the index only
// replaces the walk, never the filter — so the capability is exactly
// equivalent to a full scan whose predicate admits at most that key.
// ok=false means the engine cannot serve the lookup from its index
// (no index for the branch, say) and the caller must fall back to a
// scan.
type PKLookupScanner interface {
	LookupPKPushdown(branch vgraph.BranchID, pk int64, spec *ScanSpec, fn ScanFunc) (ok bool, err error)
}

// pointLookups counts branch-head reads served from a primary-key
// index instead of a segment scan, alongside the segment counters in
// internal/store.
var pointLookups atomic.Int64

func init() {
	expvar.Publish("decibel.point_lookups", expvar.Func(func() any {
		return pointLookups.Load()
	}))
}

// CountPointLookups returns the number of scans served via a
// primary-key point lookup (benchmarks read this; the expvar
// decibel.point_lookups exposes the same number).
func CountPointLookups() int64 { return pointLookups.Load() }

// LookupPKPushdownContext serves a branch-head read whose predicate
// pins the primary key to a single value from the engine's pk index.
// It reports ok=false — caller falls back to ScanPushdownContext —
// when the engine lacks the capability or cannot answer from its
// index.
func (t *Table) LookupPKPushdownContext(ctx context.Context, branch vgraph.BranchID, pk int64, spec *ScanSpec, fn ScanFunc) (bool, error) {
	if err := t.db.beginOp(); err != nil {
		return false, err
	}
	defer t.db.endOp()
	ls, ok := t.engine.(PKLookupScanner)
	if !ok || spec == nil {
		return false, nil
	}
	if err := ctx.Err(); err != nil {
		return false, err
	}
	served, err := ls.LookupPKPushdown(branch, pk, spec, ctxScanFunc(ctx, fn))
	if err != nil || !served {
		return served, err
	}
	pointLookups.Add(1)
	return true, ctx.Err()
}
