package core

import (
	"context"
	"expvar"
	"os"
	"runtime"
	"strconv"
	"sync"
	"sync/atomic"

	"decibel/internal/bitmap"
	"decibel/internal/record"
	"decibel/internal/store"
	"decibel/internal/vgraph"
)

// Parallel scan execution. Engines with the ParallelScanner capability
// split a pushdown scan into per-segment units (PartitionScan); the
// Database drives the frozen units on a bounded worker pool shared by
// every table, while units over mutable branch heads run on the
// caller's goroutine under the exact snapshot rules of the sequential
// paths. Units are emitted in sequential visit order and each unit's
// output is buffered by the caller-provided sink and flushed in unit
// index order after the join, so a parallel scan's record stream is
// identical — rows and order — to the sequential scan it replaces.
// The engines' own sequential pushdown loops are expressed as
// RunUnitsSequential over the same partitions, so both modes share one
// scan body per engine.

// ScanKind selects the scan shape a ScanRequest partitions.
type ScanKind uint8

const (
	// ScanKindBranch is a branch-head scan (Query 1).
	ScanKindBranch ScanKind = iota
	// ScanKindCommit is a historical commit scan.
	ScanKindCommit
	// ScanKindMulti is a multi-branch scan with membership (Query 4).
	ScanKindMulti
	// ScanKindDiff is a symmetric branch diff (Query 2).
	ScanKindDiff
)

// ScanRequest names one scan for partitioning: the shape plus the
// shape's addressing fields (only the fields of the request's Kind are
// consulted).
type ScanRequest struct {
	Kind     ScanKind
	Branch   vgraph.BranchID   // ScanKindBranch
	Commit   *vgraph.Commit    // ScanKindCommit
	Branches []vgraph.BranchID // ScanKindMulti
	A, B     vgraph.BranchID   // ScanKindDiff
}

// UnitAux carries the per-record annotations of the non-plain callback
// shapes: InA for diff scans, Member for multi-branch scans. Member is
// per-unit scratch — like the record, it must be Cloned to be retained
// across calls.
type UnitAux struct {
	InA    bool
	Member *bitmap.Bitmap
}

// UnitFunc receives each record one scan unit emits. The record (and
// aux.Member) may alias engine buffers or per-unit scratch and must be
// Cloned to be retained. Returning false stops that unit (not its
// siblings).
type UnitFunc func(rec *record.Record, aux UnitAux) bool

// ScanUnit is one independently runnable slice of a partitioned scan —
// in practice one segment's portion. Run may be called at most once.
// Frozen units touch only immutable storage and may run on any
// goroutine, each with its own ScanSpec clone; non-frozen units (the
// mutable branch heads) must run on the goroutine that called
// PartitionScan, preserving the sequential paths' snapshot rules.
type ScanUnit struct {
	Frozen bool
	// Zone and PhysCols describe the unit's segment for order-aware
	// visiting: the segment's zone map (nil when the engine has none
	// for this unit) and the physical column count its records are laid
	// out under. Executors may use them to reorder or early-stop unit
	// visits only when they can prove the output is unchanged.
	Zone     *store.ZoneMap
	PhysCols int
	Run      func(spec *ScanSpec, fn UnitFunc) error
}

// ParallelScanner is the optional engine capability behind the parallel
// scan executor: it splits a scan into units in sequential visit order,
// snapshotting under the engine lock whatever the matching sequential
// pushdown path would (bitmaps, segment tables, resolved live sets), so
// each unit runs without further coordination. The returned release
// func must be called exactly once after the last unit finishes: it
// unpins the segments the partition references, which is what lets a
// concurrent compaction retire replaced segment files only after every
// in-flight reader drains. release is non-nil whenever err is nil.
type ParallelScanner interface {
	PartitionScan(req ScanRequest) ([]ScanUnit, func(), error)
}

// UnitSink buffers one unit's output. Fn receives the unit's records —
// from a pool goroutine for frozen units — and Flush delivers the
// buffered output on the caller's goroutine once every unit has joined;
// sinks are flushed in unit index order, and a Flush returning false
// stops the remaining flushes (the scan's consumer stopped).
type UnitSink struct {
	Fn    UnitFunc
	Flush func() bool
}

// RunUnitsSequential drives a partition on the calling goroutine in
// unit order, sharing one spec — the engines' sequential pushdown entry
// points are this over their own PartitionScan.
func RunUnitsSequential(units []ScanUnit, spec *ScanSpec, fn UnitFunc) error {
	stopped := false
	wrapped := func(rec *record.Record, aux UnitAux) bool {
		if !fn(rec, aux) {
			stopped = true
			return false
		}
		return true
	}
	for _, u := range units {
		if err := u.Run(spec, wrapped); err != nil {
			return err
		}
		if stopped {
			return nil
		}
	}
	return nil
}

// Parallel-scan counters: how many scans ran through the parallel
// executor and how many frozen units its pool goroutines executed
// (expvar "decibel.parallel_scans"/"decibel.scan_workers"). The
// equivalence harness asserts these move, so a silently bypassed pool
// cannot pass.
var (
	parallelScans   atomic.Int64
	parallelWorkers atomic.Int64
)

func init() {
	expvar.Publish("decibel.parallel_scans", expvar.Func(func() any { return parallelScans.Load() }))
	expvar.Publish("decibel.scan_workers", expvar.Func(func() any { return parallelWorkers.Load() }))
}

// ParallelScanCounters returns the cumulative parallel-executor
// counters: scans driven through it and frozen units run on pool
// goroutines.
func ParallelScanCounters() (scans, workers int64) {
	return parallelScans.Load(), parallelWorkers.Load()
}

// resolveScanWorkers picks the scan pool size: the explicit
// Options.ScanWorkers, else the DECIBEL_SCAN_WORKERS environment
// override, else GOMAXPROCS. A size of 1 disables the parallel
// executor.
func resolveScanWorkers(opt Options) int {
	n := opt.ScanWorkers
	if n == 0 {
		if s := os.Getenv("DECIBEL_SCAN_WORKERS"); s != "" {
			if v, err := strconv.Atoi(s); err == nil {
				n = v
			}
		}
	}
	if n == 0 {
		n = runtime.GOMAXPROCS(0)
	}
	if n < 1 {
		n = 1
	}
	return n
}

// ScanWorkers returns the database's scan pool size (1 = parallel
// scans disabled).
func (db *Database) ScanWorkers() int { return db.scanWorkers }

// ParallelScanContext partitions the request and drives it on the
// database's scan pool: frozen units fan out one goroutine per unit
// (bounded by the pool size), each with its own spec clone and sink;
// non-frozen units — the mutable branch heads — run on the calling
// goroutine. Sinks are flushed in unit order after the join, making
// the merged stream identical to the sequential scan's. The first unit
// error, or ctx expiring, cancels the sibling units within one record
// each.
//
// It reports handled=false (with no error and nothing emitted) when
// the scan should take the sequential path instead: the engine lacks
// the ParallelScanner capability, the pool is sized <= 1, or the
// partition has fewer than two frozen units to overlap.
func (t *Table) ParallelScanContext(ctx context.Context, req ScanRequest, spec *ScanSpec, sink func(unit, total int) UnitSink) (bool, error) {
	ps, ok := t.engine.(ParallelScanner)
	if !ok || spec == nil || t.db.scanWorkers <= 1 {
		return false, nil
	}
	if err := t.db.beginOp(); err != nil {
		return true, err
	}
	defer t.db.endOp()
	units, release, err := ps.PartitionScan(req)
	if err != nil {
		return true, err
	}
	defer release()
	frozen := 0
	for _, u := range units {
		if u.Frozen {
			frozen++
		}
	}
	if frozen < 2 {
		return false, nil
	}
	if err := t.db.runUnits(ctx, spec, units, sink); err != nil {
		return true, err
	}
	return true, ctx.Err()
}

// PartitionUnits exposes the engine's scan partition to executors
// beyond the pool fan-out — the ordered visitor in internal/query
// drives units in zone-sorted order with top-k early stop. ok reports
// whether the engine has the ParallelScanner capability; when it does,
// release must be called exactly once after the last unit finishes —
// it unpins the partition's segments (letting a concurrent compaction
// retire replaced files) and ends the database operation the call
// began.
func (t *Table) PartitionUnits(req ScanRequest) (units []ScanUnit, release func(), ok bool, err error) {
	ps, ok := t.engine.(ParallelScanner)
	if !ok {
		return nil, nil, false, nil
	}
	if err := t.db.beginOp(); err != nil {
		return nil, nil, true, err
	}
	units, rel, err := ps.PartitionScan(req)
	if err != nil {
		t.db.endOp()
		return nil, nil, true, err
	}
	return units, func() { rel(); t.db.endOp() }, true, nil
}

// runUnits executes a partition: frozen units on pool goroutines,
// mutable ones inline, per-unit sinks flushed in order after the join.
func (db *Database) runUnits(ctx context.Context, spec *ScanSpec, units []ScanUnit, sink func(unit, total int) UnitSink) error {
	cctx, cancel := context.WithCancel(ctx)
	defer cancel()

	n := len(units)
	sinks := make([]UnitSink, n)
	for i := range units {
		sinks[i] = sink(i, n)
	}
	parallelScans.Add(1)

	errs := make([]error, n)
	var wg sync.WaitGroup
	for i := range units {
		if !units[i].Frozen {
			continue
		}
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			db.scanSem <- struct{}{}
			defer func() { <-db.scanSem }()
			if cctx.Err() != nil {
				return
			}
			parallelWorkers.Add(1)
			if errs[i] = runUnit(cctx, units[i], spec.Clone(), sinks[i].Fn); errs[i] != nil {
				cancel()
			}
		}(i)
	}
	for i := range units {
		if units[i].Frozen {
			continue
		}
		if cctx.Err() != nil {
			break
		}
		if errs[i] = runUnit(cctx, units[i], spec.Clone(), sinks[i].Fn); errs[i] != nil {
			cancel()
		}
	}
	wg.Wait()

	// Surface the error of the earliest failing unit — the one the
	// sequential scan would have hit first.
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	if err := ctx.Err(); err != nil {
		return err
	}
	for i := range sinks {
		if !sinks[i].Flush() {
			return nil
		}
	}
	return nil
}

// runUnit runs one unit with cancellation checked per record.
func runUnit(ctx context.Context, u ScanUnit, spec *ScanSpec, fn UnitFunc) error {
	wrapped := func(rec *record.Record, aux UnitAux) bool {
		return ctx.Err() == nil && fn(rec, aux)
	}
	return u.Run(spec, wrapped)
}
