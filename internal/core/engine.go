// Package core defines Decibel's public API: the Database/Session
// facade (Section 2.2), the storage Engine contract that the
// tuple-first, version-first, and hybrid schemes implement (Section 3),
// and the versioned operations — branch, commit, checkout, diff, merge,
// and the single- and multi-branch scans the benchmark queries build
// on.
package core

import (
	"decibel/internal/bitmap"
	"decibel/internal/compact"
	"decibel/internal/heap"
	"decibel/internal/record"
	"decibel/internal/vgraph"
)

// ScanFunc receives each record of a scan; returning false stops the
// scan. The record may alias engine buffers and must not be retained
// across calls (Clone it to keep it).
type ScanFunc func(rec *record.Record) bool

// MultiScanFunc receives each record live in at least one of the
// scanned branches, annotated with a membership bitmap whose bit i
// corresponds to the i-th requested branch. This is the output shape of
// Query 4: "a list of records annotated with their active branches".
type MultiScanFunc func(rec *record.Record, membership *bitmap.Bitmap) bool

// DiffFunc receives the records of a diff(A, B). inA is true for the
// positive difference (records in A but not in B) and false for the
// negative difference (records in B but not in A).
type DiffFunc func(rec *record.Record, inA bool) bool

// MergeKind selects the conflict model of a merge.
type MergeKind int

const (
	// TwoWay detects conflicts at tuple granularity and takes every
	// conflicting record wholesale from the precedence branch.
	TwoWay MergeKind = iota
	// ThreeWay compares both branches field-by-field against their
	// lowest common ancestor; non-overlapping field updates auto-merge
	// and only overlapping fields fall back to precedence (Section
	// 2.2.3).
	ThreeWay
)

func (k MergeKind) String() string {
	if k == TwoWay {
		return "two-way"
	}
	return "three-way"
}

// MergeStats summarizes a merge for the caller and the benchmark
// harness (Table 3 reports merge throughput over the diffed bytes).
type MergeStats struct {
	Conflicts     int   // records with conflicting modifications
	ChangedA      int   // records modified in the first branch since the LCA
	ChangedB      int   // records modified in the second branch since the LCA
	DiffBytes     int64 // bytes of records diffed between the branches
	Materialized  int   // resolved records physically written by the merge
	TuplesScanned int64 // records read to perform the merge
}

// Stats reports an engine's storage footprint.
type Stats struct {
	Records      int64 // record slots stored, dead copies included
	DataBytes    int64 // heap/segment file bytes
	IndexBytes   int64 // in-memory bitmap/index bytes (approximate)
	CommitBytes  int64 // on-disk commit history bytes
	SegmentCount int   // number of heap/segment files
	LiveRecords  int64 // records live in at least one branch head (approximate)
}

// Env is the shared environment a Database hands to its engines.
type Env struct {
	Dir    string         // engine-private directory (exists)
	Schema *record.Schema // table schema at open time (base of Hist)
	// Hist is the table's versioned schema history. Engines consult it
	// for the physical layout of each stored file (tagged with its
	// column count at creation), the current layout new appends use,
	// and the conversions that decode old buffers with defaults filled.
	// A nil Hist (engines opened outside a Database, e.g. in tests)
	// behaves as a single-version history over Schema.
	Hist  *record.History
	Graph *vgraph.Graph // shared version graph
	Pool  *heap.Pool    // shared buffer pool
	Opt   Options       // global options
}

// History returns the table's schema history, lazily wrapping Schema
// when the Env was built without one.
func (env *Env) History() *record.History {
	if env.Hist == nil {
		env.Hist = record.NewHistory(env.Schema)
	}
	return env.Hist
}

// BranchEpoch returns the schema epoch at the head of a branch: the
// version a head scan of the branch resolves its schema at, and the
// generation its writes encode under.
func (env *Env) BranchEpoch(b vgraph.BranchID) int {
	if env.Graph == nil {
		return 0
	}
	br, ok := env.Graph.Branch(b)
	if !ok {
		return 0
	}
	c, ok := env.Graph.Commit(br.Head)
	if !ok {
		return 0
	}
	return c.SchemaVer
}

// MaxBranchEpoch returns the newest head schema epoch among the given
// branches: multi-branch scans and diffs emit under it, filling
// defaults for rows from branches still on older versions.
func (env *Env) MaxBranchEpoch(bs []vgraph.BranchID) int {
	max := 0
	for _, b := range bs {
		if e := env.BranchEpoch(b); e > max {
			max = e
		}
	}
	return max
}

// Options tunes storage behaviour. The zero value gives sensible
// defaults (4 MB pages, branch-oriented bitmaps).
type Options struct {
	PageSize      int  // heap page size in bytes (0 = heap.DefaultPageSize)
	PoolPages     int  // buffer pool capacity in pages (0 = 64)
	CommitFanout  int  // commit-log composite layer fanout (0 = default)
	TupleOriented bool // tuple-first: use the tuple-oriented bitmap matrix
	Fsync         bool // fsync on commit (off for benchmarks, like the paper's load phase)
	ScanWorkers   int  // parallel scan pool size (0 = DECIBEL_SCAN_WORKERS env or GOMAXPROCS; 1 disables)

	// VFLineageCache bounds the version-first lineage/live-set cache by
	// resident key count: >0 sets the budget, 0 takes the
	// DECIBEL_VF_CACHE environment variable (else the engine default),
	// and <0 disables the cache (every resolution takes the full
	// lineage walk). Only the version-first engine consults it.
	VFLineageCache int

	// Compaction configures the background compaction subsystem; the
	// zero value (compact.ModeOff) disables it entirely.
	Compaction compact.Options
}

// Factory constructs an engine rooted at env.Dir. Implemented by
// tf.Factory, vf.Factory and hy.Factory.
type Factory func(env *Env) (Engine, error)

// Engine is the storage-engine contract of Section 3. One Engine stores
// one relation across all branches and versions. Version-graph
// mutations are performed by the Database before the corresponding
// engine hook runs, so engines may consult env.Graph for parents,
// sequence numbers and LCAs.
//
// Write operations address branch heads ("it is expected that most
// operations will occur on the heads of the branches"); reads address
// either branch heads (ScanBranch, ScanMulti, Diff) or any committed
// version (ScanCommit).
type Engine interface {
	// Kind returns the scheme name: "tuple-first", "version-first" or
	// "hybrid".
	Kind() string

	// Init prepares storage for the initial master branch and its empty
	// init commit.
	Init(master *vgraph.Branch, c0 *vgraph.Commit) error

	// Branch creates storage for a new branch rooted at commit from
	// (which may be any commit on any branch, head or historical).
	Branch(child *vgraph.Branch, from *vgraph.Commit) error

	// Commit snapshots the current state of c.Branch as version c.
	Commit(c *vgraph.Commit) error

	// Insert upserts a record into the head of a branch: a new record
	// copy is appended and any previous copy with the same primary key
	// stops being live in that branch (Decibel copies complete records
	// on each update).
	Insert(branch vgraph.BranchID, rec *record.Record) error

	// Delete removes the record with the given primary key from the
	// branch head. Deleting an absent key is a no-op returning nil.
	Delete(branch vgraph.BranchID, pk int64) error

	// ScanBranch emits every record live in the branch head (Query 1).
	ScanBranch(branch vgraph.BranchID, fn ScanFunc) error

	// ScanCommit emits every record live in the given committed
	// version; this is how a checked-out historical version is read.
	ScanCommit(c *vgraph.Commit, fn ScanFunc) error

	// ScanMulti emits every record live in at least one of the branch
	// heads, annotated with its membership (Query 4).
	ScanMulti(branches []vgraph.BranchID, fn MultiScanFunc) error

	// Diff streams the symmetric difference of two branch heads
	// (Query 2): records live in a but not b (inA=true) and records
	// live in b but not a (inA=false).
	Diff(a, b vgraph.BranchID, fn DiffFunc) error

	// Merge merges the head of branch other into branch into. mc is the
	// already-created merge commit (its Parents are the two heads, its
	// PrecedenceFirst selects the winning side). After Merge returns,
	// the head of into reflects the merged state and mc is its
	// committed snapshot.
	Merge(into, other vgraph.BranchID, mc *vgraph.Commit, kind MergeKind) (MergeStats, error)

	// Stats reports the storage footprint.
	Stats() (Stats, error)

	// Flush writes buffered state to disk without closing.
	Flush() error

	// Close flushes and releases all resources.
	Close() error
}
