package core

import (
	"bytes"
	"encoding/binary"
	"math"

	"decibel/internal/record"
	"decibel/internal/store"
)

// Bound is one per-column interval constraint the query planner
// derives from a predicate: every record the predicate can match has
// the column's value inside the interval. The planner attaches the
// conjunction of such bounds to a ScanSpec (SetBounds); engines test
// each segment's zone map against them (SkipSegment) and skip whole
// segments no matching record can live in, before touching page bytes.
//
// Bounds are necessarily conservative — the predicate itself still
// runs on every surviving record — so an engine is always free to
// ignore them.
type Bound struct {
	// Col is the column's index in the spec's target schema (the
	// schema visible at the spec's epoch).
	Col  int
	Type record.Type

	HasMin, HasMax bool // whether each end of the interval is constrained

	MinI, MaxI int64   // Int32/Int64 interval, inclusive
	MinF, MaxF float64 // Float64 interval, inclusive

	MinB, MaxB         []byte // Bytes interval
	MinBExcl, MaxBExcl bool   // strictness of each bytes end
}

// SetBounds attaches the planner's per-column bounds to the spec.
// Bounds are shared (not copied) by Clone; they are immutable after
// this call.
func (sp *ScanSpec) SetBounds(bs []Bound) {
	sp.bounds = bs
	sp.visPhys = nil
	if sp.hist != nil {
		sp.visPhys = sp.hist.VisiblePhys(sp.epoch)
	}
}

// Bounds returns the spec's attached bounds (nil when pruning is
// unavailable or disabled).
func (sp *ScanSpec) Bounds() []Bound { return sp.bounds }

// SkipSegment reports whether a segment's zone map proves that no
// record stored in it can satisfy the spec's bounds — physCols is the
// segment's physical column count, and columns the segment predates
// participate through their declared defaults (every record read from
// the segment shows exactly the default for such a column). Each call
// feeds the shared segment-scan counters, making pruning observable.
func (sp *ScanSpec) SkipSegment(z *store.ZoneMap, physCols int) bool {
	skip := sp.skipSegment(z, physCols)
	if skip {
		store.CountSegmentSkipped()
	} else {
		store.CountSegmentScanned()
	}
	return skip
}

// HasBounds reports whether the spec carries any pruning bounds —
// scans consult it before paying for per-page zone checks.
func (sp *ScanSpec) HasBounds() bool { return len(sp.bounds) > 0 }

// ExcludesSegment is SkipSegment's verdict without the side effects:
// it does not feed the segment-scan counters. The join planner uses it
// for cardinality estimates — counting the rows of the segments a
// relation's bounds cannot exclude — where no scan takes place and the
// pruning counters must not move.
func (sp *ScanSpec) ExcludesSegment(z *store.ZoneMap, physCols int) bool {
	return sp.skipSegment(z, physCols)
}

// SkipPage is SkipSegment at page granularity: z is one chunk of a
// segment's PageZones index. It feeds the shared page-scan counters
// instead of the segment ones.
func (sp *ScanSpec) SkipPage(z *store.ZoneMap, physCols int) bool {
	skip := sp.skipSegment(z, physCols)
	if skip {
		store.CountPageSkipped()
	} else {
		store.CountPageScanned()
	}
	return skip
}

func (sp *ScanSpec) skipSegment(z *store.ZoneMap, physCols int) bool {
	if len(sp.bounds) == 0 {
		return false
	}
	for i := range sp.bounds {
		b := &sp.bounds[i]
		phys := b.Col
		if sp.visPhys != nil {
			if b.Col >= len(sp.visPhys) {
				continue
			}
			phys = sp.visPhys[b.Col]
		}
		if phys < 0 {
			continue
		}
		if phys >= physCols {
			// The segment predates the column: every record reads back
			// the declared default, so the default decides membership.
			if sp.hist != nil && b.excludesEncoded(sp.hist.DefaultBytes(phys)) {
				return true
			}
			continue
		}
		if z == nil {
			continue
		}
		cz, ok := z.Col(phys)
		if !ok {
			continue
		}
		if cz.Empty {
			// No non-tombstone record in the whole segment: nothing a
			// scan could emit.
			return true
		}
		if cz.Unbounded {
			continue
		}
		if b.excludesZone(cz) {
			return true
		}
	}
	return false
}

// excludesZone reports whether the bound's interval and the zone's
// value range cannot overlap.
func (b *Bound) excludesZone(cz store.ColZone) bool {
	switch b.Type {
	case record.Int32, record.Int64:
		return (b.HasMin && cz.MaxI < b.MinI) || (b.HasMax && cz.MinI > b.MaxI)
	case record.Float64:
		return (b.HasMin && cz.MaxF < b.MinF) || (b.HasMax && cz.MinF > b.MaxF)
	case record.Bytes:
		if b.HasMin {
			// Compare the zone's upper bound against the interval's
			// lower end; a truncated zone max makes the upper bound
			// succ(prefix), exclusive.
			if ub, ubExcl, ok := cz.BytesUpper(); ok {
				if c := bytes.Compare(ub, b.MinB); c < 0 || (c == 0 && (ubExcl || b.MinBExcl)) {
					return true
				}
			}
		}
		if b.HasMax {
			// MinB is always a true inclusive lower bound.
			if c := bytes.Compare(cz.MinB, b.MaxB); c > 0 || (c == 0 && b.MaxBExcl) {
				return true
			}
		}
	}
	return false
}

// excludesEncoded reports whether the bound excludes the single
// encoded value val (a column default; nil means the zero value).
func (b *Bound) excludesEncoded(val []byte) bool {
	switch b.Type {
	case record.Int32:
		var v int64
		if val != nil {
			v = int64(int32(binary.LittleEndian.Uint32(val)))
		}
		return (b.HasMin && v < b.MinI) || (b.HasMax && v > b.MaxI)
	case record.Int64:
		var v int64
		if val != nil {
			v = int64(binary.LittleEndian.Uint64(val))
		}
		return (b.HasMin && v < b.MinI) || (b.HasMax && v > b.MaxI)
	case record.Float64:
		var v float64
		if val != nil {
			v = math.Float64frombits(binary.LittleEndian.Uint64(val))
		}
		if math.IsNaN(v) {
			return false
		}
		return (b.HasMin && v < b.MinF) || (b.HasMax && v > b.MaxF)
	case record.Bytes:
		var v []byte
		if val != nil {
			n := int(binary.LittleEndian.Uint16(val))
			if n > len(val)-2 {
				n = len(val) - 2
			}
			v = val[2 : 2+n]
		}
		if b.HasMin {
			if c := bytes.Compare(v, b.MinB); c < 0 || (c == 0 && b.MinBExcl) {
				return true
			}
		}
		if b.HasMax {
			if c := bytes.Compare(v, b.MaxB); c > 0 || (c == 0 && b.MaxBExcl) {
				return true
			}
		}
	}
	return false
}
