package core
