package core

import (
	"time"

	"decibel/internal/compact"
)

// Compactor is the optional engine capability behind background
// compaction: a pass that merges runs of small frozen segments, drops
// tombstoned rows no read can reach, and re-encodes frozen segments
// into compressed pages — all under the engine's own catalog-swap
// crash-safety protocol. All three built-in engines implement it
// (tuple-first and version-first compress only; their layouts pin
// physical slot numbering).
type Compactor interface {
	CompactSegments(opt compact.Options) (compact.Stats, error)
}

// Compact runs one compaction pass over every relation whose engine
// supports it, returning the aggregated stats. With compaction off it
// is a no-op; a pass error returns the stats accumulated so far.
// Completed passes that changed anything feed the process-wide expvar
// counters.
func (db *Database) Compact() (compact.Stats, error) {
	var agg compact.Stats
	if db.opt.Compaction.Mode == compact.ModeOff {
		return agg, nil
	}
	if err := db.beginOp(); err != nil {
		return agg, err
	}
	defer db.endOp()
	for _, t := range db.Tables() {
		c, ok := t.engine.(Compactor)
		if !ok {
			continue
		}
		st, err := c.CompactSegments(db.opt.Compaction)
		agg.Add(st)
		if err != nil {
			return agg, err
		}
	}
	compact.CountRun(agg)
	return agg, nil
}

// startCompactor launches the auto-mode background loop: one Compact
// pass per interval tick until Close. Pass errors are swallowed — the
// loop is best-effort maintenance; the next tick retries — except that
// a closed database ends the loop via the quit channel.
func (db *Database) startCompactor() {
	interval := db.opt.Compaction.Defaults().Interval
	db.compactQuit = make(chan struct{})
	db.compactWG.Add(1)
	go func() {
		defer db.compactWG.Done()
		tick := time.NewTicker(interval)
		defer tick.Stop()
		for {
			select {
			case <-db.compactQuit:
				return
			case <-tick.C:
				db.Compact()
			}
		}
	}()
}
