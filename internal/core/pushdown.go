package core

import (
	"context"
	"fmt"

	"decibel/internal/bitmap"
	"decibel/internal/record"
	"decibel/internal/vgraph"
)

// ScanSpec is the part of a logical query plan an engine can execute
// inside its own scan loops: a predicate evaluated on the raw encoded
// record before it is materialized, and a column projection applied to
// the records that survive it. The planner in internal/query compiles
// name-based typed predicates down to the raw form; engines that
// implement PushdownScanner evaluate it per heap slot and skip the
// record-materialization (and, for multi-branch scans, whole pages)
// for rows that cannot match.
//
// A ScanSpec is single-use per scan: the projection reuses one scratch
// record, so it must not be shared between concurrent scans. Records
// produced by Apply alias either the engine's buffer or that scratch
// record and must be Cloned to be retained, like every scan output.
type ScanSpec struct {
	schema *record.Schema
	// Pred evaluates the predicate against one encoded record buffer
	// (header byte included). nil matches every record.
	Pred func(buf []byte) bool

	// hist/epoch make the spec version-aware: schema is the table
	// schema visible at epoch, and Prep converts buffers stored under
	// older physical layouts into it before Pred or Apply see them. A
	// nil hist spec only handles buffers already in schema's layout.
	hist  *record.History
	epoch int

	cols    []int          // source column index per output column
	out     *record.Schema // projected schema (nil = no projection)
	scratch *record.Record

	// bounds are the planner's per-column interval constraints and
	// visPhys the visible-to-physical column mapping they are resolved
	// through; see SetBounds/SkipSegment in bounds.go. Both are
	// immutable once set and shared by Clone.
	bounds  []Bound
	visPhys []int
}

// NewScanSpec builds a spec over the table schema. pred may be nil
// (match all). cols lists the projected column indices; nil keeps every
// column. The primary key (column 0) is always part of the projection —
// it is prepended when absent — because Decibel addresses records by
// key across versions.
func NewScanSpec(schema *record.Schema, pred func([]byte) bool, cols []int) (*ScanSpec, error) {
	sp := &ScanSpec{schema: schema, Pred: pred}
	return sp.project0(cols)
}

// NewScanSpecAt builds a version-aware spec: the scan's target schema
// is the one visible at the given schema epoch of the table's history,
// and Prep supplies the per-segment conversions that decode buffers
// stored under older layouts (defaults filled, columns projected to
// the epoch's view) without touching the stored pages.
func NewScanSpecAt(hist *record.History, epoch int, pred func([]byte) bool, cols []int) (*ScanSpec, error) {
	sp := &ScanSpec{schema: hist.VisibleAt(epoch), Pred: pred, hist: hist, epoch: epoch}
	return sp.project0(cols)
}

// Epoch returns the schema epoch the spec's target schema is resolved
// at (0 for version-unaware specs).
func (sp *ScanSpec) Epoch() int { return sp.epoch }

// Prep returns the conversion for buffers stored under the physical
// layout with physCols columns, or nil when they are already in the
// spec's target layout (the common case — engines then skip the call
// per record). Each returned function owns a fresh scratch buffer, so
// Prep itself does not make the spec stateful; the converted buffer it
// returns is only valid until the next call of that same function.
func (sp *ScanSpec) Prep(physCols int) (func(buf []byte) []byte, error) {
	if sp.hist == nil {
		return nil, nil
	}
	cv, err := sp.hist.Conv(physCols, sp.epoch)
	if err != nil {
		return nil, err
	}
	if cv.Identity() {
		return nil, nil
	}
	scratch := cv.NewScratch()
	return func(buf []byte) []byte { return cv.Convert(buf, scratch) }, nil
}

// Clone returns a spec sharing the compiled predicate, schema history
// and resolved projection, but with its own projection scratch record
// — the only stateful piece of a spec. Cloning per execution is what
// lets a compiled plan be reused instead of re-planned.
func (sp *ScanSpec) Clone() *ScanSpec {
	c := *sp
	if sp.out != nil {
		c.scratch = record.New(sp.out)
	}
	return &c
}

// project0 resolves the projection column indices.
func (sp *ScanSpec) project0(cols []int) (*ScanSpec, error) {
	schema := sp.schema
	if cols == nil {
		return sp, nil
	}
	need0 := true
	for _, c := range cols {
		if c == 0 {
			need0 = false
		}
	}
	if need0 {
		cols = append([]int{0}, cols...)
	}
	outCols := make([]record.Column, len(cols))
	for i, c := range cols {
		if c < 0 || c >= schema.NumColumns() {
			return nil, fmt.Errorf("%w: column index %d", ErrNoSuchColumn, c)
		}
		outCols[i] = schema.Column(c)
	}
	out, err := record.NewSchema(outCols...)
	if err != nil {
		return nil, err
	}
	sp.cols = cols
	sp.out = out
	sp.scratch = record.New(out)
	return sp, nil
}

// Out returns the schema of the records the spec emits: the projected
// schema when a projection is set, the table schema otherwise.
func (sp *ScanSpec) Out() *record.Schema {
	if sp.out != nil {
		return sp.out
	}
	return sp.schema
}

// Apply evaluates the spec against one encoded record buffer. It
// returns nil when the predicate filters the record out; otherwise the
// (possibly projected) record, which aliases buf or the spec's scratch
// record and must not be retained across calls.
func (sp *ScanSpec) Apply(buf []byte) (*record.Record, error) {
	if sp.Pred != nil && !sp.Pred(buf) {
		return nil, nil
	}
	src, err := record.FromBytes(sp.schema, buf)
	if err != nil {
		return nil, err
	}
	if sp.out == nil {
		return src, nil
	}
	return sp.project(src), nil
}

// project copies the projected columns of src into the scratch record.
func (sp *ScanSpec) project(src *record.Record) *record.Record {
	dst := sp.scratch
	dst.Bytes()[0] = src.Bytes()[0] // header flags (tombstone)
	for i, c := range sp.cols {
		copy(dst.ColumnBytes(i), src.ColumnBytes(c))
	}
	return dst
}

// filter wraps a ScanFunc so a record-level scan (the generic fallback
// for engines without the pushdown capability) applies the spec above
// the engine. An Apply failure stops the scan and is stored in *errp
// for the caller to surface.
func (sp *ScanSpec) filter(fn ScanFunc, errp *error) ScanFunc {
	if sp == nil {
		return fn
	}
	return func(rec *record.Record) bool {
		out, err := sp.Apply(rec.Bytes())
		if err != nil {
			*errp = err
			return false
		}
		if out == nil {
			return true
		}
		return fn(out)
	}
}

// filterMulti is filter for the membership-annotated callback shape.
func (sp *ScanSpec) filterMulti(fn MultiScanFunc, errp *error) MultiScanFunc {
	if sp == nil {
		return fn
	}
	return func(rec *record.Record, m *bitmap.Bitmap) bool {
		out, err := sp.Apply(rec.Bytes())
		if err != nil {
			*errp = err
			return false
		}
		if out == nil {
			return true
		}
		return fn(out, m)
	}
}

// filterDiff is filter for the diff callback shape.
func (sp *ScanSpec) filterDiff(fn DiffFunc, errp *error) DiffFunc {
	if sp == nil {
		return fn
	}
	return func(rec *record.Record, inA bool) bool {
		out, err := sp.Apply(rec.Bytes())
		if err != nil {
			*errp = err
			return false
		}
		if out == nil {
			return true
		}
		return fn(out, inA)
	}
}

// PushdownScanner is the optional engine capability behind the query
// builder's fast paths. Engines that implement it receive the compiled
// ScanSpec and evaluate it inside their own scan loops — before
// materializing records, and for ScanMultiPushdown in one pass over
// the union of the branches' liveness bitmaps instead of one rescan
// per branch. Engines that do not implement it are driven through
// their plain Scan* entry points with the spec applied above them.
type PushdownScanner interface {
	// ScanBranchPushdown is ScanBranch with the spec applied in the
	// engine's scan loop.
	ScanBranchPushdown(branch vgraph.BranchID, spec *ScanSpec, fn ScanFunc) error

	// ScanCommitPushdown is ScanCommit with the spec applied in the
	// engine's scan loop.
	ScanCommitPushdown(c *vgraph.Commit, spec *ScanSpec, fn ScanFunc) error

	// ScanMultiPushdown is ScanMulti with the spec applied in the
	// engine's scan loop, executed as a single pass using bitmap
	// union/intersection where the engine's layout allows it.
	ScanMultiPushdown(branches []vgraph.BranchID, spec *ScanSpec, fn MultiScanFunc) error
}

// DiffScanner is the optional engine capability behind predicate
// pushdown for Diff (Query 2): engines that implement it evaluate the
// compiled ScanSpec — predicate, projection and zone-map pruning —
// inside their XOR/lineage diff loops, instead of the executor
// post-filtering fully materialized records. Engines without it are
// driven through their plain Diff with the spec applied above.
type DiffScanner interface {
	// ScanDiffPushdown is Diff with the spec applied in the engine's
	// diff loop. The spec's epoch must resolve both branches' schemas
	// (the max of the two head epochs, like Diff's own emission).
	ScanDiffPushdown(a, b vgraph.BranchID, spec *ScanSpec, fn DiffFunc) error
}

// BatchInserter is the optional engine capability behind InsertBatch:
// engines that implement it take their internal lock once per batch
// instead of once per record.
type BatchInserter interface {
	InsertBatch(branch vgraph.BranchID, recs []*record.Record) error
}

// ScanPushdown emits the records live in a branch head that satisfy
// the spec, letting the engine evaluate it when it can (predicate and
// projection pushdown); see ScanSpec.
func (t *Table) ScanPushdown(branch vgraph.BranchID, spec *ScanSpec, fn ScanFunc) error {
	return t.ScanPushdownContext(context.Background(), branch, spec, fn)
}

// ScanPushdownContext is ScanPushdown bounded by a context.
func (t *Table) ScanPushdownContext(ctx context.Context, branch vgraph.BranchID, spec *ScanSpec, fn ScanFunc) error {
	if err := t.db.beginOp(); err != nil {
		return err
	}
	defer t.db.endOp()
	wrapped := ctxScanFunc(ctx, fn)
	var err, ferr error
	if ps, ok := t.engine.(PushdownScanner); ok && spec != nil {
		err = ps.ScanBranchPushdown(branch, spec, wrapped)
	} else {
		err = t.engine.ScanBranch(branch, spec.filter(wrapped, &ferr))
	}
	if err == nil {
		err = ferr
	}
	if err != nil {
		return err
	}
	return ctx.Err()
}

// ScanCommitPushdown is ScanPushdown against a committed version.
func (t *Table) ScanCommitPushdown(c *vgraph.Commit, spec *ScanSpec, fn ScanFunc) error {
	return t.ScanCommitPushdownContext(context.Background(), c, spec, fn)
}

// ScanCommitPushdownContext is ScanCommitPushdown bounded by a context.
func (t *Table) ScanCommitPushdownContext(ctx context.Context, c *vgraph.Commit, spec *ScanSpec, fn ScanFunc) error {
	if err := t.db.beginOp(); err != nil {
		return err
	}
	defer t.db.endOp()
	wrapped := ctxScanFunc(ctx, fn)
	var err, ferr error
	if ps, ok := t.engine.(PushdownScanner); ok && spec != nil {
		err = ps.ScanCommitPushdown(c, spec, wrapped)
	} else {
		err = t.engine.ScanCommit(c, spec.filter(wrapped, &ferr))
	}
	if err == nil {
		err = ferr
	}
	if err != nil {
		return err
	}
	return ctx.Err()
}

// ScanMultiPushdown emits the records live in any of the branch heads
// that satisfy the spec, with membership annotations. Engines with the
// PushdownScanner capability execute this as one pass over the union
// of the branches' bitmaps rather than one rescan per branch.
func (t *Table) ScanMultiPushdown(branches []vgraph.BranchID, spec *ScanSpec, fn MultiScanFunc) error {
	return t.ScanMultiPushdownContext(context.Background(), branches, spec, fn)
}

// ScanMultiPushdownContext is ScanMultiPushdown bounded by a context.
func (t *Table) ScanMultiPushdownContext(ctx context.Context, branches []vgraph.BranchID, spec *ScanSpec, fn MultiScanFunc) error {
	if err := t.db.beginOp(); err != nil {
		return err
	}
	defer t.db.endOp()
	wrapped := ctxWrap2(ctx, fn)
	var err, ferr error
	if ps, ok := t.engine.(PushdownScanner); ok && spec != nil {
		err = ps.ScanMultiPushdown(branches, spec, wrapped)
	} else {
		err = t.engine.ScanMulti(branches, spec.filterMulti(wrapped, &ferr))
	}
	if err == nil {
		err = ferr
	}
	if err != nil {
		return err
	}
	return ctx.Err()
}

// ScanDiffPushdown streams the symmetric difference of two branch
// heads with the spec evaluated as deep as the engine allows: engines
// with the DiffScanner capability apply predicate, projection and
// zone-map segment pruning inside their diff loops; others run their
// plain Diff with the spec applied above it.
func (t *Table) ScanDiffPushdown(a, b vgraph.BranchID, spec *ScanSpec, fn DiffFunc) error {
	return t.ScanDiffPushdownContext(context.Background(), a, b, spec, fn)
}

// ScanDiffPushdownContext is ScanDiffPushdown bounded by a context.
func (t *Table) ScanDiffPushdownContext(ctx context.Context, a, b vgraph.BranchID, spec *ScanSpec, fn DiffFunc) error {
	if err := t.db.beginOp(); err != nil {
		return err
	}
	defer t.db.endOp()
	wrapped := ctxWrap2(ctx, fn)
	var err, ferr error
	if ds, ok := t.engine.(DiffScanner); ok && spec != nil {
		err = ds.ScanDiffPushdown(a, b, spec, wrapped)
	} else {
		err = t.engine.Diff(a, b, spec.filterDiff(wrapped, &ferr))
	}
	if err == nil {
		err = ferr
	}
	if err != nil {
		return err
	}
	return ctx.Err()
}

// InsertBatch upserts a batch of records into a branch head in one
// engine call, amortizing the engine's per-record locking; engines
// without the BatchInserter capability fall back to per-record
// inserts. On error, a prefix of the batch may have been applied —
// like single Inserts, batches become atomic only at commit.
func (t *Table) InsertBatch(branch vgraph.BranchID, recs []*record.Record) error {
	if err := t.db.beginOp(); err != nil {
		return err
	}
	defer t.db.endOp()
	for _, rec := range recs {
		if err := t.checkWrite(branch, rec.Schema()); err != nil {
			return err
		}
	}
	if bi, ok := t.engine.(BatchInserter); ok {
		return bi.InsertBatch(branch, recs)
	}
	for _, rec := range recs {
		if err := t.engine.Insert(branch, rec); err != nil {
			return err
		}
	}
	return nil
}
