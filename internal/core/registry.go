package core

import (
	"fmt"
	"sort"
	"strings"
	"sync"
)

// The engine registry maps scheme names to factories, database/sql
// driver style. Each engine package registers itself from init, so any
// program that links an engine (directly or through the decibel facade)
// can open datasets with it by name; the two CLIs and the bench harness
// all resolve engines here instead of hand-rolling name switches.
var registry = struct {
	sync.RWMutex
	factories map[string]Factory
	canonical []string // registration order of canonical names
}{factories: make(map[string]Factory)}

// RegisterEngine registers factory under a canonical name plus any
// aliases (e.g. "tuple-first" with alias "tf"). It panics on a nil
// factory or a duplicate name, mirroring database/sql.Register: both
// are programmer errors in an engine package's init.
func RegisterEngine(name string, factory Factory, aliases ...string) {
	if factory == nil {
		panic("core: RegisterEngine with nil factory")
	}
	registry.Lock()
	defer registry.Unlock()
	for _, n := range append([]string{name}, aliases...) {
		if _, dup := registry.factories[n]; dup {
			panic(fmt.Sprintf("core: RegisterEngine called twice for %q", n))
		}
		registry.factories[n] = factory
	}
	registry.canonical = append(registry.canonical, name)
}

// LookupEngine resolves a registered engine name or alias. Unknown
// names return an error wrapping ErrUnknownEngine that lists what is
// registered.
func LookupEngine(name string) (Factory, error) {
	registry.RLock()
	f, ok := registry.factories[name]
	registry.RUnlock()
	if !ok {
		return nil, fmt.Errorf("%w %q (registered: %s)", ErrUnknownEngine, name, strings.Join(EngineNames(), ", "))
	}
	return f, nil
}

// EngineNames returns the canonical names of all registered engines,
// sorted.
func EngineNames() []string {
	registry.RLock()
	out := append([]string(nil), registry.canonical...)
	registry.RUnlock()
	sort.Strings(out)
	return out
}
