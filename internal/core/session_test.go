package core_test

// Session and lock semantics are exercised end-to-end (with real
// engines) in internal/enginetest. This file covers pure core-level
// behaviour that needs no engine: option defaults and the MergeKind
// stringer, keeping core's public contract pinned.

import (
	"testing"

	"decibel/internal/core"
)

func TestMergeKindString(t *testing.T) {
	if core.TwoWay.String() != "two-way" || core.ThreeWay.String() != "three-way" {
		t.Fatalf("stringer wrong: %q %q", core.TwoWay, core.ThreeWay)
	}
}

func TestOpenRejectsNilFactory(t *testing.T) {
	if _, err := core.Open(t.TempDir(), nil, core.Options{}); err == nil {
		t.Fatal("nil factory accepted")
	}
}
