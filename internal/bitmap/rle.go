package bitmap

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// Word-aligned run-length encoding for bitmaps, used to compress the
// XOR deltas written to commit history files (Section 3.2: "the delta
// from the prior commit ... is RLE compressed and written to the end of
// the file").
//
// The encoding is a leading varint carrying the logical bit length,
// followed by a sequence of varint-prefixed tokens over 64-bit words
// until all ceil(n/64) words have been produced:
//
//	token = count<<2 | kind
//	kind 0: count all-zero words
//	kind 1: count all-one words
//	kind 2: count literal words follow (8 bytes each, little endian)
//
// Commit deltas are overwhelmingly sparse (a commit touches a window of
// recently inserted or updated tuples), so zero runs dominate and the
// on-disk commit history stays well under 1% of the data size, matching
// the storage overheads reported in Table 2.

const (
	runZero  = 0
	runOne   = 1
	literals = 2
)

// AppendRLE appends the RLE encoding of b to dst and returns the
// extended slice.
func AppendRLE(dst []byte, b *Bitmap) []byte {
	dst = binary.AppendUvarint(dst, uint64(b.n))
	words := b.words
	i := 0
	for i < len(words) {
		switch words[i] {
		case 0:
			j := i
			for j < len(words) && words[j] == 0 {
				j++
			}
			dst = binary.AppendUvarint(dst, uint64(j-i)<<2|runZero)
			i = j
		case ^uint64(0):
			j := i
			for j < len(words) && words[j] == ^uint64(0) {
				j++
			}
			dst = binary.AppendUvarint(dst, uint64(j-i)<<2|runOne)
			i = j
		default:
			j := i
			for j < len(words) && words[j] != 0 && words[j] != ^uint64(0) {
				j++
			}
			dst = binary.AppendUvarint(dst, uint64(j-i)<<2|literals)
			for ; i < j; i++ {
				dst = binary.LittleEndian.AppendUint64(dst, words[i])
			}
		}
	}
	return dst
}

// MarshalRLE returns the RLE encoding of b.
func MarshalRLE(b *Bitmap) []byte { return AppendRLE(nil, b) }

// DecodeRLE decodes one RLE-encoded bitmap from the front of data,
// returning the bitmap and the number of bytes consumed.
func DecodeRLE(data []byte) (*Bitmap, int, error) {
	nBits, pos := binary.Uvarint(data)
	if pos <= 0 {
		return nil, 0, errors.New("bitmap: truncated RLE header")
	}
	need := wordsFor(int(nBits))
	words := make([]uint64, 0, need)
	for len(words) < need {
		tok, n := binary.Uvarint(data[pos:])
		if n <= 0 {
			return nil, 0, errors.New("bitmap: truncated RLE stream")
		}
		pos += n
		count := int(tok >> 2)
		if count == 0 || len(words)+count > need {
			return nil, 0, fmt.Errorf("bitmap: bad RLE run length %d", count)
		}
		switch tok & 3 {
		case runZero:
			for i := 0; i < count; i++ {
				words = append(words, 0)
			}
		case runOne:
			for i := 0; i < count; i++ {
				words = append(words, ^uint64(0))
			}
		case literals:
			if len(data[pos:]) < 8*count {
				return nil, 0, errors.New("bitmap: truncated RLE literals")
			}
			for i := 0; i < count; i++ {
				words = append(words, binary.LittleEndian.Uint64(data[pos:]))
				pos += 8
			}
		default:
			return nil, 0, fmt.Errorf("bitmap: bad RLE token kind %d", tok&3)
		}
	}
	b := &Bitmap{words: words, n: int(nBits)}
	b.clearTail()
	return b, pos, nil
}
