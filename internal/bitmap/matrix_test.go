package bitmap

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestMatrixBasic(t *testing.T) {
	m := NewMatrix()
	b0 := m.AddBranch()
	t0 := m.AppendTuple()
	t1 := m.AppendTuple()
	m.Set(t0, b0)
	if !m.Get(t0, b0) || m.Get(t1, b0) {
		t.Fatal("set/get wrong")
	}
	m.Clear(t0, b0)
	if m.Get(t0, b0) {
		t.Fatal("clear failed")
	}
}

func TestMatrixCloneBranch(t *testing.T) {
	m := NewMatrix()
	parent := m.AddBranch()
	for i := 0; i < 100; i++ {
		m.AppendTuple()
		if i%3 == 0 {
			m.Set(i, parent)
		}
	}
	child := m.CloneBranch(parent)
	for i := 0; i < 100; i++ {
		if m.Get(i, child) != (i%3 == 0) {
			t.Fatalf("tuple %d: clone bit mismatch", i)
		}
	}
	// Mutating the child must not affect the parent.
	m.Set(1, child)
	if m.Get(1, parent) {
		t.Fatal("child write leaked into parent")
	}
}

func TestMatrixStrideDoubling(t *testing.T) {
	m := NewMatrix()
	for i := 0; i < 10; i++ {
		m.AppendTuple()
	}
	// Force several stride regrowths: 64 -> 128 -> 256 branches.
	for b := 0; b < 200; b++ {
		m.AddBranch()
		m.Set(b%10, b)
	}
	for b := 0; b < 200; b++ {
		for tup := 0; tup < 10; tup++ {
			want := tup == b%10
			if m.Get(tup, b) != want {
				t.Fatalf("after regrow: (%d,%d) = %v, want %v", tup, b, m.Get(tup, b), want)
			}
		}
	}
}

func TestMatrixRowColumn(t *testing.T) {
	m := NewMatrix()
	for b := 0; b < 70; b++ {
		m.AddBranch()
	}
	for tup := 0; tup < 50; tup++ {
		m.AppendTuple()
	}
	m.Set(10, 3)
	m.Set(10, 69)
	m.Set(20, 3)
	row := m.Row(10)
	if !row.Get(3) || !row.Get(69) || row.Count() != 2 {
		t.Fatalf("row = %v", row)
	}
	col := m.Column(3)
	if !col.Get(10) || !col.Get(20) || col.Count() != 2 {
		t.Fatalf("col = %v", col)
	}
}

func TestMatrixBoundsPanic(t *testing.T) {
	m := NewMatrix()
	m.AddBranch()
	m.AppendTuple()
	for _, fn := range []func(){
		func() { m.Set(1, 0) },
		func() { m.Set(0, 1) },
		func() { m.Row(2) },
		func() { m.Column(5) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("out-of-range access did not panic")
				}
			}()
			fn()
		}()
	}
}

// Property: a Matrix and a per-branch []*Bitmap model stay in agreement
// under a random operation sequence, including across stride regrowth.
func TestQuickMatrixVsColumnModel(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		m := NewMatrix()
		var model []*Bitmap
		m.AddBranch()
		model = append(model, New(0))
		for op := 0; op < 300; op++ {
			switch r.Intn(4) {
			case 0:
				m.AppendTuple()
			case 1:
				if r.Intn(10) == 0 || m.NumBranches() == 0 {
					m.AddBranch()
					model = append(model, New(0))
				} else {
					p := r.Intn(m.NumBranches())
					m.CloneBranch(p)
					model = append(model, model[p].Clone())
				}
			case 2:
				if m.NumTuples() > 0 {
					tup, br := r.Intn(m.NumTuples()), r.Intn(m.NumBranches())
					m.Set(tup, br)
					model[br].Set(tup)
				}
			case 3:
				if m.NumTuples() > 0 {
					tup, br := r.Intn(m.NumTuples()), r.Intn(m.NumBranches())
					m.Clear(tup, br)
					model[br].Clear(tup)
				}
			}
		}
		for b := 0; b < m.NumBranches(); b++ {
			if !m.Column(b).Equal(model[b]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
