package bitmap

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sync"
)

// CommitLog is the per-branch commit history file of Section 3.2. Each
// commit appends the RLE-compressed XOR delta between the branch's
// bitmap at this commit and at the previous commit. Checkout replays
// deltas from the start, XOR-ing each in sequence to recreate the
// snapshot.
//
// To bound the replay chain, runs of base deltas are aggregated into a
// higher layer of composite deltas: every LayerFanout base deltas, the
// log also appends one composite delta that is the XOR of that whole
// run (equivalently, snapshot[k*F] XOR snapshot[(k-1)*F]). Checkout of
// commit i then replays i/F composite deltas plus at most F-1 base
// deltas. The paper uses exactly two layers because that made checkout
// "adequate (taking a few hundred ms)"; so do we, with the fanout
// configurable.
//
// On-disk format, one file per (branch) or per (branch, segment): a
// one-byte format marker followed by entries
//
//	file  := magic(0xD1) | entry*
//	entry := kind(1 byte: 0 base, 1 composite) | len(uvarint) | RLE bytes | crc32(4 bytes LE)
//
// Entries are append-only; a torn final entry (e.g. after a crash) is
// detected by length and truncated away on open. The trailing CRC-32
// (IEEE, over kind, length and payload) catches the case length
// framing cannot: a write torn mid-entry whose tail is later overlaid
// by other bytes can otherwise re-parse as a plausible entry and
// silently corrupt every snapshot from that commit on (found by
// FuzzCommitLogTornTail). Files from before the checksum era lack the
// marker (their first byte is an entry kind, 0 or 1) and are migrated
// to the current format on open instead of failing the CRC check.
type CommitLog struct {
	mu     sync.Mutex
	path   string
	f      *os.File
	fanout int

	// In-memory index of entry offsets, rebuilt on open.
	base      []logEntry // base deltas, one per commit
	composite []logEntry // composite deltas, one per fanout run

	// State for appending: bitmap at last commit, and XOR accumulator
	// for the composite layer.
	last *Bitmap
	acc  *Bitmap
}

type logEntry struct {
	off  int64
	size int
}

// DefaultLayerFanout is the number of base deltas aggregated into one
// composite delta.
const DefaultLayerFanout = 16

// OpenCommitLog opens (creating if necessary) the commit history file at
// path. Any torn trailing entry is truncated. fanout <= 0 selects
// DefaultLayerFanout.
func OpenCommitLog(path string, fanout int) (*CommitLog, error) {
	if fanout <= 0 {
		fanout = DefaultLayerFanout
	}
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return nil, fmt.Errorf("commitlog: %w", err)
	}
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, fmt.Errorf("commitlog: %w", err)
	}
	cl := &CommitLog{path: path, f: f, fanout: fanout, last: New(0), acc: New(0)}
	if err := cl.recover(); err != nil {
		f.Close()
		return nil, err
	}
	return cl, nil
}

// logMagic marks a checksummed log file. Legacy (pre-checksum) files
// start directly with an entry whose kind byte is 0 or 1, so the
// marker doubles as the format detector.
const logMagic = 0xD1

// parseEntry decodes one entry at the front of rest. It returns the
// entry's total encoded length (0 when rest holds no complete, valid
// entry — a torn or corrupt tail).
func parseEntry(rest []byte, withCRC bool) (kind byte, payloadOff int64, payload []byte, bm *Bitmap, total int64) {
	if len(rest) < 1 {
		return 0, 0, nil, nil, 0
	}
	kind = rest[0]
	plen, n := binary.Uvarint(rest[1:])
	if n <= 0 || kind > 1 {
		return 0, 0, nil, nil, 0
	}
	// A payload cannot extend past the buffer; checking against the
	// remaining length up front also rejects absurd uvarint values that
	// would overflow the int64 arithmetic below.
	if plen > uint64(len(rest)) {
		return 0, 0, nil, nil, 0
	}
	hdr := int64(1 + n)
	total = hdr + int64(plen)
	if withCRC {
		total += crcSize
	}
	if int64(len(rest)) < total {
		return 0, 0, nil, nil, 0 // torn entry
	}
	payload = rest[hdr : hdr+int64(plen)]
	if withCRC && binary.LittleEndian.Uint32(rest[hdr+int64(plen):]) != crc32.ChecksumIEEE(rest[:hdr+int64(plen)]) {
		return 0, 0, nil, nil, 0 // corrupt entry: treat like a torn tail
	}
	bm, used, err := DecodeRLE(payload)
	if err != nil || used != int(plen) {
		return 0, 0, nil, nil, 0
	}
	return kind, hdr, payload, bm, total
}

// recover scans the file, indexing entries and truncating a torn tail.
// Legacy files without the format marker are rewritten in the current
// checksummed format first.
func (cl *CommitLog) recover() error {
	data, err := io.ReadAll(cl.f)
	if err != nil {
		return fmt.Errorf("commitlog: %w", err)
	}
	if len(data) == 0 {
		if _, err := cl.f.Write([]byte{logMagic}); err != nil {
			return fmt.Errorf("commitlog: %w", err)
		}
		return nil
	}
	if data[0] != logMagic {
		var err error
		if data, err = cl.migrateLegacy(data); err != nil {
			return err
		}
	}
	pos := int64(1) // past the format marker
	valid := pos
	for int(pos) < len(data) {
		kind, payloadOff, payload, bm, total := parseEntry(data[pos:], true)
		if total == 0 {
			break
		}
		e := logEntry{off: pos + payloadOff, size: len(payload)}
		if kind == 0 {
			cl.base = append(cl.base, e)
			cl.last.Xor(bm)
		} else {
			cl.composite = append(cl.composite, e)
		}
		pos += total
		valid = pos
	}
	if valid < int64(len(data)) {
		if err := cl.f.Truncate(valid); err != nil {
			return fmt.Errorf("commitlog: truncating torn tail: %w", err)
		}
	}
	if _, err := cl.f.Seek(valid, io.SeekStart); err != nil {
		return err
	}
	// Re-establish the invariant len(composite) == len(base)/fanout: a
	// crash between a base append and its boundary composite append can
	// leave a complete run uncovered; recompute and append the missing
	// composite entries now.
	cl.acc = New(0)
	for i := len(cl.composite) * cl.fanout; i < len(cl.base); i++ {
		bm, err := cl.readEntry(cl.base[i])
		if err != nil {
			return err
		}
		cl.acc.Xor(bm)
		if (i+1)%cl.fanout == 0 {
			if err := cl.writeEntry(1, cl.acc, &cl.composite); err != nil {
				return err
			}
			cl.acc = New(0)
		}
	}
	return nil
}

// migrateLegacy rewrites a pre-checksum log file in the current format
// (marker plus per-entry CRC) and returns the new file contents. The
// original bytes are preserved at <path>.pre-crc and the rewrite goes
// through a temp file and rename, so neither a crash mid-migration nor
// a misidentified file loses data. A file that yields no decodable
// legacy entries at all is refused rather than rewritten: it is far
// more likely a current-format log with a damaged marker byte (or
// foreign data) than a legacy log, and destroying it would reintroduce
// the silent-corruption class the CRC exists to catch.
func (cl *CommitLog) migrateLegacy(data []byte) ([]byte, error) {
	out := []byte{logMagic}
	entries := 0
	pos := int64(0)
	for int(pos) < len(data) {
		kind, _, payload, _, total := parseEntry(data[pos:], false)
		if total == 0 {
			break // torn legacy tail: dropped, like recovery would
		}
		hdr := make([]byte, 0, 11)
		hdr = append(hdr, kind)
		hdr = binary.AppendUvarint(hdr, uint64(len(payload)))
		crc := crc32.NewIEEE()
		crc.Write(hdr)
		crc.Write(payload)
		out = append(out, hdr...)
		out = append(out, payload...)
		out = binary.LittleEndian.AppendUint32(out, crc.Sum32())
		pos += total
		entries++
	}
	if entries == 0 {
		return nil, fmt.Errorf("commitlog: %s has no format marker and no decodable legacy entries; refusing to rewrite it", cl.path)
	}
	if err := os.WriteFile(cl.path+".pre-crc", data, 0o644); err != nil {
		return nil, fmt.Errorf("commitlog: backing up legacy log: %w", err)
	}
	tmp := cl.path + ".tmp"
	if err := os.WriteFile(tmp, out, 0o644); err != nil {
		return nil, fmt.Errorf("commitlog: migrating legacy log: %w", err)
	}
	if err := os.Rename(tmp, cl.path); err != nil {
		return nil, fmt.Errorf("commitlog: migrating legacy log: %w", err)
	}
	f, err := os.OpenFile(cl.path, os.O_RDWR, 0o644)
	if err != nil {
		return nil, fmt.Errorf("commitlog: reopening migrated log: %w", err)
	}
	cl.f.Close()
	cl.f = f
	return out, nil
}

// NumCommits returns the number of commits recorded.
func (cl *CommitLog) NumCommits() int {
	cl.mu.Lock()
	defer cl.mu.Unlock()
	return len(cl.base)
}

// Size returns the on-disk size of the history file in bytes.
func (cl *CommitLog) Size() (int64, error) {
	st, err := cl.f.Stat()
	if err != nil {
		return 0, err
	}
	return st.Size(), nil
}

// Append records a commit whose branch bitmap is cur, returning the
// zero-based commit index within this log.
func (cl *CommitLog) Append(cur *Bitmap) (int, error) {
	cl.mu.Lock()
	defer cl.mu.Unlock()
	delta := Xor(cur, cl.last)
	if err := cl.writeEntry(0, delta, &cl.base); err != nil {
		return 0, err
	}
	cl.last = cur.Clone()
	cl.acc.Xor(delta)
	if len(cl.base)%cl.fanout == 0 {
		if err := cl.writeEntry(1, cl.acc, &cl.composite); err != nil {
			return 0, err
		}
		cl.acc = New(0)
	}
	return len(cl.base) - 1, nil
}

// crcSize is the per-entry trailing checksum width.
const crcSize = 4

func (cl *CommitLog) writeEntry(kind byte, bm *Bitmap, index *[]logEntry) error {
	payload := MarshalRLE(bm)
	hdr := make([]byte, 0, 11)
	hdr = append(hdr, kind)
	hdr = binary.AppendUvarint(hdr, uint64(len(payload)))
	crc := crc32.NewIEEE()
	crc.Write(hdr)
	crc.Write(payload)
	var sum [crcSize]byte
	binary.LittleEndian.PutUint32(sum[:], crc.Sum32())
	off, err := cl.f.Seek(0, io.SeekEnd)
	if err != nil {
		return err
	}
	if _, err := cl.f.Write(hdr); err != nil {
		return err
	}
	if _, err := cl.f.Write(payload); err != nil {
		return err
	}
	if _, err := cl.f.Write(sum[:]); err != nil {
		return err
	}
	*index = append(*index, logEntry{off: off + int64(len(hdr)), size: len(payload)})
	return nil
}

func (cl *CommitLog) readEntry(e logEntry) (*Bitmap, error) {
	buf := make([]byte, e.size)
	if _, err := cl.f.ReadAt(buf, e.off); err != nil {
		return nil, fmt.Errorf("commitlog: %w", err)
	}
	bm, used, err := DecodeRLE(buf)
	if err != nil {
		return nil, err
	}
	if used != e.size {
		return nil, errors.New("commitlog: trailing bytes in entry")
	}
	return bm, nil
}

// Checkout reconstructs the branch bitmap snapshot at commit index i by
// XOR-ing i/fanout composite deltas and the remaining base deltas.
func (cl *CommitLog) Checkout(i int) (*Bitmap, error) {
	cl.mu.Lock()
	defer cl.mu.Unlock()
	if i < 0 || i >= len(cl.base) {
		return nil, fmt.Errorf("commitlog: commit %d out of range [0,%d)", i, len(cl.base))
	}
	out := New(0)
	full := (i + 1) / cl.fanout // composite deltas fully covered
	if full > len(cl.composite) {
		full = len(cl.composite)
	}
	for c := 0; c < full; c++ {
		bm, err := cl.readEntry(cl.composite[c])
		if err != nil {
			return nil, err
		}
		out.Xor(bm)
	}
	for b := full * cl.fanout; b <= i; b++ {
		bm, err := cl.readEntry(cl.base[b])
		if err != nil {
			return nil, err
		}
		out.Xor(bm)
	}
	return out, nil
}

// Head returns a copy of the bitmap as of the latest commit.
func (cl *CommitLog) Head() *Bitmap {
	cl.mu.Lock()
	defer cl.mu.Unlock()
	return cl.last.Clone()
}

// Sync flushes the log to stable storage.
func (cl *CommitLog) Sync() error { return cl.f.Sync() }

// Close closes the underlying file.
func (cl *CommitLog) Close() error { return cl.f.Close() }
