package bitmap

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sync"
)

// CommitLog is the per-branch commit history file of Section 3.2. Each
// commit appends the RLE-compressed XOR delta between the branch's
// bitmap at this commit and at the previous commit. Checkout replays
// deltas from the start, XOR-ing each in sequence to recreate the
// snapshot.
//
// To bound the replay chain, runs of base deltas are aggregated into a
// higher layer of composite deltas: every LayerFanout base deltas, the
// log also appends one composite delta that is the XOR of that whole
// run (equivalently, snapshot[k*F] XOR snapshot[(k-1)*F]). Checkout of
// commit i then replays i/F composite deltas plus at most F-1 base
// deltas. The paper uses exactly two layers because that made checkout
// "adequate (taking a few hundred ms)"; so do we, with the fanout
// configurable.
//
// On-disk format, one file per (branch) or per (branch, segment):
//
//	entry := kind(1 byte: 0 base, 1 composite) | len(uvarint) | RLE bytes
//
// Entries are append-only; a torn final entry (e.g. after a crash) is
// detected by length and truncated away on open.
type CommitLog struct {
	mu     sync.Mutex
	path   string
	f      *os.File
	fanout int

	// In-memory index of entry offsets, rebuilt on open.
	base      []logEntry // base deltas, one per commit
	composite []logEntry // composite deltas, one per fanout run

	// State for appending: bitmap at last commit, and XOR accumulator
	// for the composite layer.
	last *Bitmap
	acc  *Bitmap
}

type logEntry struct {
	off  int64
	size int
}

// DefaultLayerFanout is the number of base deltas aggregated into one
// composite delta.
const DefaultLayerFanout = 16

// OpenCommitLog opens (creating if necessary) the commit history file at
// path. Any torn trailing entry is truncated. fanout <= 0 selects
// DefaultLayerFanout.
func OpenCommitLog(path string, fanout int) (*CommitLog, error) {
	if fanout <= 0 {
		fanout = DefaultLayerFanout
	}
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return nil, fmt.Errorf("commitlog: %w", err)
	}
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, fmt.Errorf("commitlog: %w", err)
	}
	cl := &CommitLog{path: path, f: f, fanout: fanout, last: New(0), acc: New(0)}
	if err := cl.recover(); err != nil {
		f.Close()
		return nil, err
	}
	return cl, nil
}

// recover scans the file, indexing entries and truncating a torn tail.
func (cl *CommitLog) recover() error {
	data, err := io.ReadAll(cl.f)
	if err != nil {
		return fmt.Errorf("commitlog: %w", err)
	}
	pos := int64(0)
	valid := int64(0)
	for int(pos) < len(data) {
		rest := data[pos:]
		if len(rest) < 1 {
			break
		}
		kind := rest[0]
		plen, n := binary.Uvarint(rest[1:])
		if n <= 0 || kind > 1 {
			break
		}
		hdr := int64(1 + n)
		if int64(len(rest)) < hdr+int64(plen) {
			break // torn entry
		}
		payload := rest[hdr : hdr+int64(plen)]
		bm, used, err := DecodeRLE(payload)
		if err != nil || used != int(plen) {
			break
		}
		e := logEntry{off: pos + hdr, size: int(plen)}
		if kind == 0 {
			cl.base = append(cl.base, e)
			cl.last.Xor(bm)
		} else {
			cl.composite = append(cl.composite, e)
		}
		pos += hdr + int64(plen)
		valid = pos
	}
	if valid < int64(len(data)) {
		if err := cl.f.Truncate(valid); err != nil {
			return fmt.Errorf("commitlog: truncating torn tail: %w", err)
		}
	}
	if _, err := cl.f.Seek(valid, io.SeekStart); err != nil {
		return err
	}
	// Re-establish the invariant len(composite) == len(base)/fanout: a
	// crash between a base append and its boundary composite append can
	// leave a complete run uncovered; recompute and append the missing
	// composite entries now.
	cl.acc = New(0)
	for i := len(cl.composite) * cl.fanout; i < len(cl.base); i++ {
		bm, err := cl.readEntry(cl.base[i])
		if err != nil {
			return err
		}
		cl.acc.Xor(bm)
		if (i+1)%cl.fanout == 0 {
			if err := cl.writeEntry(1, cl.acc, &cl.composite); err != nil {
				return err
			}
			cl.acc = New(0)
		}
	}
	return nil
}

// NumCommits returns the number of commits recorded.
func (cl *CommitLog) NumCommits() int {
	cl.mu.Lock()
	defer cl.mu.Unlock()
	return len(cl.base)
}

// Size returns the on-disk size of the history file in bytes.
func (cl *CommitLog) Size() (int64, error) {
	st, err := cl.f.Stat()
	if err != nil {
		return 0, err
	}
	return st.Size(), nil
}

// Append records a commit whose branch bitmap is cur, returning the
// zero-based commit index within this log.
func (cl *CommitLog) Append(cur *Bitmap) (int, error) {
	cl.mu.Lock()
	defer cl.mu.Unlock()
	delta := Xor(cur, cl.last)
	if err := cl.writeEntry(0, delta, &cl.base); err != nil {
		return 0, err
	}
	cl.last = cur.Clone()
	cl.acc.Xor(delta)
	if len(cl.base)%cl.fanout == 0 {
		if err := cl.writeEntry(1, cl.acc, &cl.composite); err != nil {
			return 0, err
		}
		cl.acc = New(0)
	}
	return len(cl.base) - 1, nil
}

func (cl *CommitLog) writeEntry(kind byte, bm *Bitmap, index *[]logEntry) error {
	payload := MarshalRLE(bm)
	hdr := make([]byte, 0, 11)
	hdr = append(hdr, kind)
	hdr = binary.AppendUvarint(hdr, uint64(len(payload)))
	off, err := cl.f.Seek(0, io.SeekEnd)
	if err != nil {
		return err
	}
	if _, err := cl.f.Write(hdr); err != nil {
		return err
	}
	if _, err := cl.f.Write(payload); err != nil {
		return err
	}
	*index = append(*index, logEntry{off: off + int64(len(hdr)), size: len(payload)})
	return nil
}

func (cl *CommitLog) readEntry(e logEntry) (*Bitmap, error) {
	buf := make([]byte, e.size)
	if _, err := cl.f.ReadAt(buf, e.off); err != nil {
		return nil, fmt.Errorf("commitlog: %w", err)
	}
	bm, used, err := DecodeRLE(buf)
	if err != nil {
		return nil, err
	}
	if used != e.size {
		return nil, errors.New("commitlog: trailing bytes in entry")
	}
	return bm, nil
}

// Checkout reconstructs the branch bitmap snapshot at commit index i by
// XOR-ing i/fanout composite deltas and the remaining base deltas.
func (cl *CommitLog) Checkout(i int) (*Bitmap, error) {
	cl.mu.Lock()
	defer cl.mu.Unlock()
	if i < 0 || i >= len(cl.base) {
		return nil, fmt.Errorf("commitlog: commit %d out of range [0,%d)", i, len(cl.base))
	}
	out := New(0)
	full := (i + 1) / cl.fanout // composite deltas fully covered
	if full > len(cl.composite) {
		full = len(cl.composite)
	}
	for c := 0; c < full; c++ {
		bm, err := cl.readEntry(cl.composite[c])
		if err != nil {
			return nil, err
		}
		out.Xor(bm)
	}
	for b := full * cl.fanout; b <= i; b++ {
		bm, err := cl.readEntry(cl.base[b])
		if err != nil {
			return nil, err
		}
		out.Xor(bm)
	}
	return out, nil
}

// Head returns a copy of the bitmap as of the latest commit.
func (cl *CommitLog) Head() *Bitmap {
	cl.mu.Lock()
	defer cl.mu.Unlock()
	return cl.last.Clone()
}

// Sync flushes the log to stable storage.
func (cl *CommitLog) Sync() error { return cl.f.Sync() }

// Close closes the underlying file.
func (cl *CommitLog) Close() error { return cl.f.Close() }
