package bitmap

import (
	"math/rand"
	"os"
	"path/filepath"
	"testing"
	"testing/quick"
)

func TestRLERoundTripShapes(t *testing.T) {
	cases := []func() *Bitmap{
		func() *Bitmap { return New(0) },
		func() *Bitmap { return New(1) },
		func() *Bitmap { b := New(1); b.Set(0); return b },
		func() *Bitmap { return New(64 * 100) }, // all zeros: one run token
		func() *Bitmap { // all ones
			b := New(64 * 100)
			for i := 0; i < b.Len(); i++ {
				b.Set(i)
			}
			return b
		},
		func() *Bitmap { // alternating literals
			b := New(1000)
			for i := 0; i < 1000; i += 2 {
				b.Set(i)
			}
			return b
		},
		func() *Bitmap { // sparse: zero runs dominate
			b := New(1 << 16)
			b.Set(5)
			b.Set(40000)
			return b
		},
		func() *Bitmap { // length not word-aligned
			b := New(67)
			b.Set(66)
			return b
		},
	}
	for i, mk := range cases {
		b := mk()
		enc := MarshalRLE(b)
		got, used, err := DecodeRLE(enc)
		if err != nil {
			t.Fatalf("case %d: %v", i, err)
		}
		if used != len(enc) {
			t.Fatalf("case %d: consumed %d of %d bytes", i, used, len(enc))
		}
		if !got.Equal(b) || got.Len() != b.Len() {
			t.Fatalf("case %d: round trip mismatch", i)
		}
	}
}

func TestRLESparseCompresses(t *testing.T) {
	b := New(1 << 20)
	b.Set(123456)
	enc := MarshalRLE(b)
	dense, _ := b.MarshalBinary()
	if len(enc) >= len(dense)/100 {
		t.Fatalf("sparse RLE too large: %d bytes vs dense %d", len(enc), len(dense))
	}
}

func TestRLEDecodeConcatenatedStream(t *testing.T) {
	a := New(100)
	a.Set(3)
	b := New(200)
	b.Set(150)
	stream := AppendRLE(AppendRLE(nil, a), b)
	got1, n1, err := DecodeRLE(stream)
	if err != nil || !got1.Equal(a) {
		t.Fatalf("first decode: %v", err)
	}
	got2, n2, err := DecodeRLE(stream[n1:])
	if err != nil || !got2.Equal(b) {
		t.Fatalf("second decode: %v", err)
	}
	if n1+n2 != len(stream) {
		t.Fatalf("stream not fully consumed: %d+%d != %d", n1, n2, len(stream))
	}
}

func TestRLETruncatedInputs(t *testing.T) {
	b := New(10000)
	for i := 0; i < 10000; i += 3 {
		b.Set(i)
	}
	enc := MarshalRLE(b)
	for cut := 0; cut < len(enc); cut += 13 {
		if _, _, err := DecodeRLE(enc[:cut]); err == nil {
			// A prefix may decode successfully only if it is itself a
			// complete encoding, which cannot happen for proper prefixes
			// of a valid stream (decode is deterministic in word count).
			t.Fatalf("truncated input at %d decoded without error", cut)
		}
	}
}

func TestQuickRLERoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		b := randomBitmap(r, 5000)
		got, used, err := DecodeRLE(MarshalRLE(b))
		return err == nil && got.Equal(b) && got.Len() == b.Len() && used == len(MarshalRLE(b))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestCommitLogAppendCheckout(t *testing.T) {
	dir := t.TempDir()
	cl, err := OpenCommitLog(filepath.Join(dir, "b0.hist"), 4)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	var snaps []*Bitmap
	cur := New(0)
	r := rand.New(rand.NewSource(7))
	for c := 0; c < 25; c++ {
		for i := 0; i < 50; i++ {
			cur.Set(r.Intn(5000))
		}
		if r.Intn(2) == 0 {
			cur.Clear(r.Intn(5000))
		}
		id, err := cl.Append(cur)
		if err != nil {
			t.Fatal(err)
		}
		if id != c {
			t.Fatalf("commit id = %d, want %d", id, c)
		}
		snaps = append(snaps, cur.Clone())
	}
	if cl.NumCommits() != 25 {
		t.Fatalf("NumCommits = %d", cl.NumCommits())
	}
	for c, want := range snaps {
		got, err := cl.Checkout(c)
		if err != nil {
			t.Fatal(err)
		}
		if !got.Equal(want) {
			t.Fatalf("checkout %d mismatch", c)
		}
	}
	if !cl.Head().Equal(snaps[len(snaps)-1]) {
		t.Fatal("head mismatch")
	}
	if _, err := cl.Checkout(25); err == nil {
		t.Fatal("out of range checkout succeeded")
	}
	if _, err := cl.Checkout(-1); err == nil {
		t.Fatal("negative checkout succeeded")
	}
}

func TestCommitLogReopen(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "b.hist")
	cl, err := OpenCommitLog(path, 3)
	if err != nil {
		t.Fatal(err)
	}
	var snaps []*Bitmap
	cur := New(0)
	for c := 0; c < 10; c++ {
		cur.Set(c * 17)
		if _, err := cl.Append(cur); err != nil {
			t.Fatal(err)
		}
		snaps = append(snaps, cur.Clone())
	}
	if err := cl.Close(); err != nil {
		t.Fatal(err)
	}

	cl2, err := OpenCommitLog(path, 3)
	if err != nil {
		t.Fatal(err)
	}
	defer cl2.Close()
	if cl2.NumCommits() != 10 {
		t.Fatalf("reopened NumCommits = %d", cl2.NumCommits())
	}
	for c, want := range snaps {
		got, err := cl2.Checkout(c)
		if err != nil {
			t.Fatal(err)
		}
		if !got.Equal(want) {
			t.Fatalf("reopened checkout %d mismatch", c)
		}
	}
	// Continue appending after reopen; composite layer must stay valid.
	cur.Set(9999)
	if _, err := cl2.Append(cur); err != nil {
		t.Fatal(err)
	}
	got, err := cl2.Checkout(10)
	if err != nil || !got.Equal(cur) {
		t.Fatalf("append after reopen: %v", err)
	}
}

func TestCommitLogTornTailRecovery(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "b.hist")
	cl, err := OpenCommitLog(path, 4)
	if err != nil {
		t.Fatal(err)
	}
	cur := New(0)
	var snaps []*Bitmap
	for c := 0; c < 6; c++ {
		cur.Set(c * 100)
		if _, err := cl.Append(cur); err != nil {
			t.Fatal(err)
		}
		snaps = append(snaps, cur.Clone())
	}
	cl.Close()

	// Chop bytes off the tail to simulate a torn final entry.
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, data[:len(data)-3], 0o644); err != nil {
		t.Fatal(err)
	}
	cl2, err := OpenCommitLog(path, 4)
	if err != nil {
		t.Fatal(err)
	}
	defer cl2.Close()
	if cl2.NumCommits() != 5 {
		t.Fatalf("after torn tail NumCommits = %d, want 5", cl2.NumCommits())
	}
	for c := 0; c < 5; c++ {
		got, err := cl2.Checkout(c)
		if err != nil || !got.Equal(snaps[c]) {
			t.Fatalf("post-recovery checkout %d mismatch (%v)", c, err)
		}
	}
	// The log must accept new commits after recovery.
	cur2, _ := cl2.Checkout(4)
	cur2.Set(777)
	if _, err := cl2.Append(cur2); err != nil {
		t.Fatal(err)
	}
	got, err := cl2.Checkout(5)
	if err != nil || !got.Equal(cur2) {
		t.Fatalf("append after recovery: %v", err)
	}
}

func TestCommitLogSizeGrowsSlowly(t *testing.T) {
	dir := t.TempDir()
	cl, err := OpenCommitLog(filepath.Join(dir, "b.hist"), 16)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	cur := New(1 << 18)
	for c := 0; c < 20; c++ {
		cur.Set(c) // one new bit per commit: deltas are tiny
		if _, err := cl.Append(cur); err != nil {
			t.Fatal(err)
		}
	}
	sz, err := cl.Size()
	if err != nil {
		t.Fatal(err)
	}
	dense, _ := cur.MarshalBinary()
	if sz > int64(len(dense)) {
		t.Fatalf("20 sparse deltas take %d bytes, more than one dense snapshot (%d)", sz, len(dense))
	}
}

func BenchmarkCommitLogAppend(b *testing.B) {
	dir := b.TempDir()
	cl, err := OpenCommitLog(filepath.Join(dir, "b.hist"), 16)
	if err != nil {
		b.Fatal(err)
	}
	defer cl.Close()
	cur := New(1 << 20)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cur.Set(i % (1 << 20))
		if _, err := cl.Append(cur); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCommitLogCheckout(b *testing.B) {
	dir := b.TempDir()
	cl, err := OpenCommitLog(filepath.Join(dir, "b.hist"), 16)
	if err != nil {
		b.Fatal(err)
	}
	defer cl.Close()
	cur := New(1 << 18)
	for c := 0; c < 200; c++ {
		cur.Set(c * 13 % (1 << 18))
		if _, err := cl.Append(cur); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := cl.Checkout(i % 200); err != nil {
			b.Fatal(err)
		}
	}
}
