// Package bitmap provides the dense bitmap kernel used by Decibel's
// tuple-first and hybrid storage engines, together with the run-length
// encoded XOR-delta commit history encoding described in Section 3.2 of
// the paper.
//
// A Bitmap is a growable, dense bitset addressed by a non-negative bit
// index. The tuple-first engine keeps one Bitmap per branch
// (branch-oriented layout) or a packed matrix with one row per tuple
// (tuple-oriented layout, see Matrix). The hybrid engine keeps one small
// Bitmap per (segment, version) pair plus a global branch-to-segment
// Bitmap.
package bitmap

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math/bits"
)

const wordBits = 64

// Bitmap is a dense, growable bitset. The zero value is an empty bitmap
// ready for use. Bit indices beyond the current length read as zero;
// Set grows the bitmap automatically using capacity doubling so that a
// branch bitmap can be extended one record at a time in amortized O(1),
// as required for the per-insert index maintenance in Section 3.2.
type Bitmap struct {
	words []uint64
	n     int // logical length in bits
}

// New returns a bitmap with the given logical length in bits, all zero.
func New(n int) *Bitmap {
	if n < 0 {
		panic("bitmap: negative length")
	}
	return &Bitmap{words: make([]uint64, wordsFor(n)), n: n}
}

func wordsFor(n int) int { return (n + wordBits - 1) / wordBits }

// Len returns the logical length of the bitmap in bits.
func (b *Bitmap) Len() int { return b.n }

// Resize sets the logical length to n bits, zeroing any newly exposed
// bits. Shrinking clears the bits beyond the new length so a later grow
// re-exposes zeros.
func (b *Bitmap) Resize(n int) {
	if n < 0 {
		panic("bitmap: negative length")
	}
	nw := wordsFor(n)
	if nw > cap(b.words) {
		grown := make([]uint64, nw, max(nw, 2*cap(b.words)))
		copy(grown, b.words)
		b.words = grown
	} else {
		old := len(b.words)
		b.words = b.words[:nw]
		for i := old; i < nw; i++ {
			b.words[i] = 0
		}
	}
	b.n = n
	b.clearTail()
}

// clearTail zeroes the bits of the final word beyond the logical length.
func (b *Bitmap) clearTail() {
	if r := b.n % wordBits; r != 0 && len(b.words) > 0 {
		b.words[len(b.words)-1] &= (1 << uint(r)) - 1
	}
}

// Set sets bit i to one, growing the bitmap if i is out of range.
func (b *Bitmap) Set(i int) {
	if i < 0 {
		panic("bitmap: negative index")
	}
	if i >= b.n {
		b.Resize(i + 1)
	}
	b.words[i/wordBits] |= 1 << uint(i%wordBits)
}

// Clear sets bit i to zero. Clearing beyond the length is a no-op.
func (b *Bitmap) Clear(i int) {
	if i < 0 {
		panic("bitmap: negative index")
	}
	if i >= b.n {
		return
	}
	b.words[i/wordBits] &^= 1 << uint(i%wordBits)
}

// SetTo sets bit i to v.
func (b *Bitmap) SetTo(i int, v bool) {
	if v {
		b.Set(i)
	} else {
		b.Clear(i)
	}
}

// Get reports whether bit i is set. Indices beyond the length are zero.
func (b *Bitmap) Get(i int) bool {
	if i < 0 || i >= b.n {
		return false
	}
	return b.words[i/wordBits]&(1<<uint(i%wordBits)) != 0
}

// Count returns the number of set bits.
func (b *Bitmap) Count() int {
	c := 0
	for _, w := range b.words {
		c += bits.OnesCount64(w)
	}
	return c
}

// Any reports whether at least one bit is set.
func (b *Bitmap) Any() bool {
	for _, w := range b.words {
		if w != 0 {
			return true
		}
	}
	return false
}

// Clone returns a deep copy. This is the "simple memory copy" used to
// create a child branch's bitmap from its parent in Section 3.2.
func (b *Bitmap) Clone() *Bitmap {
	nb := &Bitmap{words: make([]uint64, len(b.words)), n: b.n}
	copy(nb.words, b.words)
	return nb
}

// CopyFrom makes b an exact copy of other, reusing b's storage.
func (b *Bitmap) CopyFrom(other *Bitmap) {
	if cap(b.words) < len(other.words) {
		b.words = make([]uint64, len(other.words))
	} else {
		b.words = b.words[:len(other.words)]
	}
	copy(b.words, other.words)
	b.n = other.n
}

// Equal reports whether the two bitmaps have identical logical contents.
// Bitmaps of different lengths are equal if all bits beyond the shorter
// length are zero in the longer one.
func (b *Bitmap) Equal(other *Bitmap) bool {
	long, short := b.words, other.words
	if len(short) > len(long) {
		long, short = short, long
	}
	for i, w := range short {
		if w != long[i] {
			return false
		}
	}
	for _, w := range long[len(short):] {
		if w != 0 {
			return false
		}
	}
	return true
}

// align grows b so that it has at least as many words as other,
// preserving logical length semantics for binary operations.
func (b *Bitmap) align(other *Bitmap) {
	if other.n > b.n {
		b.Resize(other.n)
	}
}

// And replaces b with b AND other.
func (b *Bitmap) And(other *Bitmap) {
	n := min(len(b.words), len(other.words))
	for i := 0; i < n; i++ {
		b.words[i] &= other.words[i]
	}
	for i := n; i < len(b.words); i++ {
		b.words[i] = 0
	}
}

// Or replaces b with b OR other, growing b if needed.
func (b *Bitmap) Or(other *Bitmap) {
	b.align(other)
	for i, w := range other.words {
		b.words[i] |= w
	}
}

// Xor replaces b with b XOR other, growing b if needed. XOR against a
// prior commit snapshot yields the commit delta stored in the commit
// history files (Section 3.2).
func (b *Bitmap) Xor(other *Bitmap) {
	b.align(other)
	for i, w := range other.words {
		b.words[i] ^= w
	}
}

// AndNot replaces b with b AND NOT other (set difference).
func (b *Bitmap) AndNot(other *Bitmap) {
	n := min(len(b.words), len(other.words))
	for i := 0; i < n; i++ {
		b.words[i] &^= other.words[i]
	}
}

// And returns a new bitmap a AND b without modifying the inputs.
func And(a, c *Bitmap) *Bitmap { r := a.Clone(); r.And(c); return r }

// Or returns a new bitmap a OR b without modifying the inputs.
func Or(a, c *Bitmap) *Bitmap { r := a.Clone(); r.Or(c); return r }

// Xor returns a new bitmap a XOR b without modifying the inputs.
func Xor(a, c *Bitmap) *Bitmap { r := a.Clone(); r.Xor(c); return r }

// AndNot returns a new bitmap a AND NOT b without modifying the inputs.
func AndNot(a, c *Bitmap) *Bitmap { r := a.Clone(); r.AndNot(c); return r }

// NextSet returns the index of the first set bit at or after i, or -1 if
// none exists. It is the building block for branch scans that emit all
// records whose bit is set in a branch's bitmap.
func (b *Bitmap) NextSet(i int) int {
	if i < 0 {
		i = 0
	}
	if i >= b.n {
		return -1
	}
	wi := i / wordBits
	w := b.words[wi] >> uint(i%wordBits)
	if w != 0 {
		return i + bits.TrailingZeros64(w)
	}
	for wi++; wi < len(b.words); wi++ {
		if b.words[wi] != 0 {
			return wi*wordBits + bits.TrailingZeros64(b.words[wi])
		}
	}
	return -1
}

// ForEach calls fn for every set bit in ascending order. If fn returns
// false, iteration stops early.
func (b *Bitmap) ForEach(fn func(i int) bool) {
	for wi, w := range b.words {
		for w != 0 {
			tz := bits.TrailingZeros64(w)
			if !fn(wi*wordBits + tz) {
				return
			}
			w &= w - 1
		}
	}
}

// Slots returns the indices of all set bits.
func (b *Bitmap) Slots() []int {
	out := make([]int, 0, b.Count())
	b.ForEach(func(i int) bool { out = append(out, i); return true })
	return out
}

// String renders a short debug form like "{1, 5, 9}".
func (b *Bitmap) String() string {
	s := "{"
	first := true
	b.ForEach(func(i int) bool {
		if !first {
			s += ", "
		}
		first = false
		s += fmt.Sprint(i)
		return true
	})
	return s + "}"
}

// binary layout: u64 length-in-bits, then ceil(n/64) little-endian words.
const serialHeader = 8

// MarshalBinary encodes the bitmap in its dense binary form.
func (b *Bitmap) MarshalBinary() ([]byte, error) {
	buf := make([]byte, serialHeader+8*len(b.words))
	binary.LittleEndian.PutUint64(buf, uint64(b.n))
	for i, w := range b.words {
		binary.LittleEndian.PutUint64(buf[serialHeader+8*i:], w)
	}
	return buf, nil
}

// UnmarshalBinary decodes a bitmap previously encoded with
// MarshalBinary.
func (b *Bitmap) UnmarshalBinary(data []byte) error {
	if len(data) < serialHeader {
		return errors.New("bitmap: short buffer")
	}
	n := int(binary.LittleEndian.Uint64(data))
	nw := wordsFor(n)
	if len(data) != serialHeader+8*nw {
		return fmt.Errorf("bitmap: bad buffer size %d for %d bits", len(data), n)
	}
	b.n = n
	b.words = make([]uint64, nw)
	for i := range b.words {
		b.words[i] = binary.LittleEndian.Uint64(data[serialHeader+8*i:])
	}
	return nil
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
