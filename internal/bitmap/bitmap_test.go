package bitmap

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestSetGetClear(t *testing.T) {
	b := New(0)
	if b.Len() != 0 || b.Any() {
		t.Fatalf("new bitmap not empty: len=%d any=%v", b.Len(), b.Any())
	}
	b.Set(5)
	if !b.Get(5) {
		t.Fatal("bit 5 not set")
	}
	if b.Len() != 6 {
		t.Fatalf("len = %d, want 6", b.Len())
	}
	if b.Get(4) || b.Get(6) {
		t.Fatal("neighbouring bits set")
	}
	b.Clear(5)
	if b.Get(5) {
		t.Fatal("bit 5 still set after clear")
	}
	b.Clear(1000) // out of range: no-op
	if b.Len() != 6 {
		t.Fatalf("clear grew bitmap to %d", b.Len())
	}
}

func TestSetGrowsAcrossWords(t *testing.T) {
	b := New(0)
	for _, i := range []int{0, 63, 64, 127, 128, 1000} {
		b.Set(i)
	}
	for _, i := range []int{0, 63, 64, 127, 128, 1000} {
		if !b.Get(i) {
			t.Errorf("bit %d lost after growth", i)
		}
	}
	if got := b.Count(); got != 6 {
		t.Fatalf("count = %d, want 6", got)
	}
}

func TestSetToAndNegativePanics(t *testing.T) {
	b := New(10)
	b.SetTo(3, true)
	if !b.Get(3) {
		t.Fatal("SetTo true failed")
	}
	b.SetTo(3, false)
	if b.Get(3) {
		t.Fatal("SetTo false failed")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("Set(-1) did not panic")
		}
	}()
	b.Set(-1)
}

func TestResizeShrinkClearsBits(t *testing.T) {
	b := New(128)
	b.Set(100)
	b.Set(10)
	b.Resize(50)
	b.Resize(128)
	if b.Get(100) {
		t.Fatal("bit 100 survived shrink")
	}
	if !b.Get(10) {
		t.Fatal("bit 10 lost by resize")
	}
}

func TestResizeShrinkClearsTailWithinWord(t *testing.T) {
	b := New(64)
	b.Set(63)
	b.Set(62)
	b.Resize(63)
	if b.Get(63) {
		t.Fatal("bit 63 visible after shrink to 63")
	}
	if b.Count() != 1 {
		t.Fatalf("count = %d, want 1", b.Count())
	}
	b.Resize(64)
	if b.Get(63) {
		t.Fatal("stale bit re-exposed by grow")
	}
}

func TestBooleanOps(t *testing.T) {
	a := New(0)
	b := New(0)
	for _, i := range []int{1, 3, 5, 200} {
		a.Set(i)
	}
	for _, i := range []int{3, 5, 7} {
		b.Set(i)
	}
	if got := And(a, b).Slots(); !equalInts(got, []int{3, 5}) {
		t.Errorf("and = %v", got)
	}
	if got := Or(a, b).Slots(); !equalInts(got, []int{1, 3, 5, 7, 200}) {
		t.Errorf("or = %v", got)
	}
	if got := Xor(a, b).Slots(); !equalInts(got, []int{1, 7, 200}) {
		t.Errorf("xor = %v", got)
	}
	if got := AndNot(a, b).Slots(); !equalInts(got, []int{1, 200}) {
		t.Errorf("andnot = %v", got)
	}
	if got := AndNot(b, a).Slots(); !equalInts(got, []int{7}) {
		t.Errorf("andnot rev = %v", got)
	}
}

func TestEqualDifferentLengths(t *testing.T) {
	a := New(10)
	b := New(1000)
	a.Set(3)
	b.Set(3)
	if !a.Equal(b) || !b.Equal(a) {
		t.Fatal("logically equal bitmaps reported unequal")
	}
	b.Set(999)
	if a.Equal(b) || b.Equal(a) {
		t.Fatal("unequal bitmaps reported equal")
	}
}

func TestNextSet(t *testing.T) {
	b := New(0)
	for _, i := range []int{2, 64, 130} {
		b.Set(i)
	}
	cases := [][2]int{{0, 2}, {2, 2}, {3, 64}, {64, 64}, {65, 130}, {130, 130}, {131, -1}, {-5, 2}, {10000, -1}}
	for _, c := range cases {
		if got := b.NextSet(c[0]); got != c[1] {
			t.Errorf("NextSet(%d) = %d, want %d", c[0], got, c[1])
		}
	}
}

func TestForEachEarlyStop(t *testing.T) {
	b := New(0)
	for i := 0; i < 100; i += 2 {
		b.Set(i)
	}
	seen := 0
	b.ForEach(func(i int) bool {
		seen++
		return seen < 10
	})
	if seen != 10 {
		t.Fatalf("early stop visited %d bits", seen)
	}
}

func TestCloneAndCopyFromIndependence(t *testing.T) {
	a := New(0)
	a.Set(7)
	c := a.Clone()
	c.Set(9)
	if a.Get(9) {
		t.Fatal("clone aliases parent")
	}
	d := New(500)
	d.Set(400)
	d.CopyFrom(a)
	if d.Get(400) || !d.Get(7) || d.Len() != a.Len() {
		t.Fatal("CopyFrom incorrect")
	}
}

func TestMarshalRoundTrip(t *testing.T) {
	for _, n := range []int{0, 1, 63, 64, 65, 1000} {
		b := New(n)
		for i := 0; i < n; i += 7 {
			b.Set(i)
		}
		data, err := b.MarshalBinary()
		if err != nil {
			t.Fatal(err)
		}
		var got Bitmap
		if err := got.UnmarshalBinary(data); err != nil {
			t.Fatal(err)
		}
		if !got.Equal(b) || got.Len() != b.Len() {
			t.Fatalf("round trip failed for n=%d", n)
		}
	}
	var b Bitmap
	if err := b.UnmarshalBinary([]byte{1, 2}); err == nil {
		t.Fatal("short buffer accepted")
	}
}

func randomBitmap(r *rand.Rand, maxLen int) *Bitmap {
	n := r.Intn(maxLen)
	b := New(n)
	for i := 0; i < n; i++ {
		if r.Intn(3) == 0 {
			b.Set(i)
		}
	}
	return b
}

// Property: XOR is its own inverse — (a XOR b) XOR b == a.
func TestQuickXorInvolution(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a := randomBitmap(r, 600)
		b := randomBitmap(r, 600)
		x := Xor(a, b)
		x.Xor(b)
		return x.Equal(a)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: De Morgan on finite domain — count(a OR b) + count(a AND b)
// == count(a) + count(b).
func TestQuickInclusionExclusion(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a := randomBitmap(r, 600)
		b := randomBitmap(r, 600)
		return Or(a, b).Count()+And(a, b).Count() == a.Count()+b.Count()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: AndNot(a,b) == And(a, complement-restricted b) i.e. disjoint
// decomposition a == AndNot(a,b) OR And(a,b).
func TestQuickAndNotDecomposition(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a := randomBitmap(r, 600)
		b := randomBitmap(r, 600)
		lhs := Or(AndNot(a, b), And(a, b))
		return lhs.Equal(a)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: serialization round-trips.
func TestQuickMarshalRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a := randomBitmap(r, 2000)
		data, err := a.MarshalBinary()
		if err != nil {
			return false
		}
		var got Bitmap
		if err := got.UnmarshalBinary(data); err != nil {
			return false
		}
		return got.Equal(a) && got.Len() == a.Len()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func equalInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func BenchmarkBitmapSet(b *testing.B) {
	bm := New(1 << 20)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		bm.Set(i & (1<<20 - 1))
	}
}

func BenchmarkBitmapXor(b *testing.B) {
	x := New(1 << 20)
	y := New(1 << 20)
	for i := 0; i < 1<<20; i += 3 {
		x.Set(i)
	}
	for i := 0; i < 1<<20; i += 5 {
		y.Set(i)
	}
	b.ReportAllocs()
	b.SetBytes(1 << 17)
	for i := 0; i < b.N; i++ {
		x.Xor(y)
	}
}

func BenchmarkBitmapNextSetSparse(b *testing.B) {
	bm := New(1 << 20)
	for i := 0; i < 1<<20; i += 4096 {
		bm.Set(i)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		for j := bm.NextSet(0); j >= 0; j = bm.NextSet(j + 1) {
		}
	}
}
