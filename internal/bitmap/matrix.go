package bitmap

// Matrix is the tuple-oriented bitmap layout from Section 3.1: T rows,
// one per tuple, where bit i of row j says whether tuple j is live in
// branch i. All rows live in one contiguous block of memory; when the
// number of branches outgrows the per-row stride, the whole matrix is
// re-laid-out with a doubled stride ("the entire bitmap may need to be
// expanded (and copied) once a certain threshold of branches has been
// passed", Section 3.2), amortizing the branch cost.
type Matrix struct {
	words       []uint64
	strideWords int // words per tuple row
	tuples      int
	branches    int
}

// NewMatrix returns an empty tuple-oriented matrix with capacity for at
// least one word of branches per tuple.
func NewMatrix() *Matrix {
	return &Matrix{strideWords: 1}
}

// NumTuples returns the number of tuple rows.
func (m *Matrix) NumTuples() int { return m.tuples }

// NumBranches returns the number of branch columns.
func (m *Matrix) NumBranches() int { return m.branches }

// AppendTuple adds a new all-zero row and returns its index. This is the
// tuple-oriented insert path: "only that the new row in the bitmap for
// the inserted tuple be appended".
func (m *Matrix) AppendTuple() int {
	idx := m.tuples
	m.tuples++
	need := m.tuples * m.strideWords
	if need > cap(m.words) {
		grown := make([]uint64, need, max(need, 2*cap(m.words)))
		copy(grown, m.words)
		m.words = grown
	} else {
		old := len(m.words)
		m.words = m.words[:need]
		for i := old; i < need; i++ {
			m.words[i] = 0
		}
	}
	return idx
}

// AddBranch adds a new branch column initialized to all zeros and
// returns its index, doubling the row stride if required.
func (m *Matrix) AddBranch() int {
	idx := m.branches
	m.branches++
	if m.branches > m.strideWords*wordBits {
		m.regrow(m.strideWords * 2)
	}
	return idx
}

// CloneBranch adds a new branch column whose bits are copied from the
// parent column, implementing the branch operation of Section 3.2.
func (m *Matrix) CloneBranch(parent int) int {
	child := m.AddBranch()
	for t := 0; t < m.tuples; t++ {
		if m.Get(t, parent) {
			m.Set(t, child)
		}
	}
	return child
}

func (m *Matrix) regrow(newStride int) {
	nw := make([]uint64, m.tuples*newStride)
	for t := 0; t < m.tuples; t++ {
		copy(nw[t*newStride:], m.words[t*m.strideWords:(t+1)*m.strideWords])
	}
	m.words = nw
	m.strideWords = newStride
}

func (m *Matrix) checkBounds(tuple, branch int) {
	if tuple < 0 || tuple >= m.tuples || branch < 0 || branch >= m.branches {
		panic("bitmap: matrix index out of range")
	}
}

// Set marks tuple as live in branch.
func (m *Matrix) Set(tuple, branch int) {
	m.checkBounds(tuple, branch)
	m.words[tuple*m.strideWords+branch/wordBits] |= 1 << uint(branch%wordBits)
}

// Clear marks tuple as not live in branch.
func (m *Matrix) Clear(tuple, branch int) {
	m.checkBounds(tuple, branch)
	m.words[tuple*m.strideWords+branch/wordBits] &^= 1 << uint(branch%wordBits)
}

// Get reports whether tuple is live in branch.
func (m *Matrix) Get(tuple, branch int) bool {
	m.checkBounds(tuple, branch)
	return m.words[tuple*m.strideWords+branch/wordBits]&(1<<uint(branch%wordBits)) != 0
}

// Row returns the branch-membership bitmap of a single tuple. This is
// the fast path for multi-branch scans in the tuple-oriented layout: a
// single pass over the heap file can emit each tuple annotated with all
// the branches it is live in.
func (m *Matrix) Row(tuple int) *Bitmap {
	if tuple < 0 || tuple >= m.tuples {
		panic("bitmap: matrix row out of range")
	}
	row := &Bitmap{words: make([]uint64, m.strideWords), n: m.branches}
	copy(row.words, m.words[tuple*m.strideWords:(tuple+1)*m.strideWords])
	row.clearTail()
	return row
}

// Column materializes the tuple-liveness bitmap of one branch. In the
// tuple-oriented layout this requires scanning the entire matrix, which
// is exactly the cost the paper attributes to single-branch scans on
// tuple-oriented bitmaps.
func (m *Matrix) Column(branch int) *Bitmap {
	if branch < 0 || branch >= m.branches {
		panic("bitmap: matrix column out of range")
	}
	col := New(m.tuples)
	wi, mask := branch/wordBits, uint64(1)<<uint(branch%wordBits)
	for t := 0; t < m.tuples; t++ {
		if m.words[t*m.strideWords+wi]&mask != 0 {
			col.Set(t)
		}
	}
	return col
}
