package bitmap

import (
	"encoding/binary"
	"os"
	"path/filepath"
	"testing"
)

// writeLegacyLog writes a pre-checksum commit log (no format marker,
// no per-entry CRC) holding the given snapshots as base deltas, the
// way the previous on-disk format did.
func writeLegacyLog(t *testing.T, path string, snaps []*Bitmap) {
	t.Helper()
	var out []byte
	last := New(0)
	for _, s := range snaps {
		payload := MarshalRLE(Xor(s, last))
		out = append(out, 0) // kind: base
		out = binary.AppendUvarint(out, uint64(len(payload)))
		out = append(out, payload...)
		last = s.Clone()
	}
	if err := os.WriteFile(path, out, 0o644); err != nil {
		t.Fatal(err)
	}
}

// TestCommitLogMigratesLegacyFormat guards the format transition: logs
// written before the per-entry CRC must survive an open with their
// full history intact (not be mistaken for corruption and truncated),
// get rewritten in the current format, and keep accepting appends.
func TestCommitLogMigratesLegacyFormat(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "b0.hist")
	snaps := make([]*Bitmap, 5)
	cur := New(0)
	for i := range snaps {
		cur.Set(4 * i)
		snaps[i] = cur.Clone()
	}
	writeLegacyLog(t, path, snaps)

	log, err := OpenCommitLog(path, 4)
	if err != nil {
		t.Fatalf("opening legacy log: %v", err)
	}
	if got := log.NumCommits(); got != len(snaps) {
		t.Fatalf("legacy log recovered %d commits, want %d", got, len(snaps))
	}
	for i, want := range snaps {
		bm, err := log.Checkout(i)
		if err != nil {
			t.Fatalf("checkout %d: %v", i, err)
		}
		if !bm.Equal(want) {
			t.Fatalf("commit %d diverged after migration: %v != %v", i, bm, want)
		}
	}
	cur.Set(999)
	if _, err := log.Append(cur); err != nil {
		t.Fatalf("append after migration: %v", err)
	}
	if err := log.Close(); err != nil {
		t.Fatal(err)
	}

	// The migrated file is in the current format: marker present, and a
	// clean reopen sees everything.
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(data) == 0 || data[0] != logMagic {
		t.Fatal("migrated log lacks the format marker")
	}
	re, err := OpenCommitLog(path, 4)
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	if got := re.NumCommits(); got != len(snaps)+1 {
		t.Fatalf("reopened migrated log has %d commits, want %d", got, len(snaps)+1)
	}
	if !re.Head().Equal(cur) {
		t.Fatal("head diverged after migration + append + reopen")
	}
}

// TestCommitLogLegacyTornTail: a torn tail on a legacy file drops only
// the torn entry during migration.
func TestCommitLogLegacyTornTail(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "b0.hist")
	snaps := make([]*Bitmap, 3)
	cur := New(0)
	for i := range snaps {
		cur.Set(4 * i)
		snaps[i] = cur.Clone()
	}
	writeLegacyLog(t, path, snaps)
	fi, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(path, fi.Size()-1); err != nil {
		t.Fatal(err)
	}
	log, err := OpenCommitLog(path, 4)
	if err != nil {
		t.Fatalf("opening torn legacy log: %v", err)
	}
	defer log.Close()
	if got := log.NumCommits(); got != len(snaps)-1 {
		t.Fatalf("torn legacy log recovered %d commits, want %d", got, len(snaps)-1)
	}
	bm, err := log.Checkout(len(snaps) - 2)
	if err != nil || !bm.Equal(snaps[len(snaps)-2]) {
		t.Fatalf("surviving prefix diverged: %v (%v)", bm, err)
	}
}

// TestCommitLogRejectsUnrecognizedFile: a non-empty file with neither
// the format marker nor any decodable legacy entry must be refused
// untouched, not rewritten (it is most likely a damaged current-format
// log or foreign data).
func TestCommitLogRejectsUnrecognizedFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "b0.hist")
	junk := []byte{0x7f, 0xde, 0xad, 0xbe, 0xef, 0x00, 0x01}
	if err := os.WriteFile(path, junk, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenCommitLog(path, 4); err == nil {
		t.Fatal("unrecognized file opened without error")
	}
	got, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != string(junk) {
		t.Fatal("unrecognized file was modified on disk")
	}
}

// TestCommitLogMigrationKeepsBackup: migrating a legacy log preserves
// the original bytes next to it.
func TestCommitLogMigrationKeepsBackup(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "b0.hist")
	bm := New(0)
	bm.Set(3)
	writeLegacyLog(t, path, []*Bitmap{bm})
	orig, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	log, err := OpenCommitLog(path, 4)
	if err != nil {
		t.Fatal(err)
	}
	log.Close()
	backup, err := os.ReadFile(path + ".pre-crc")
	if err != nil {
		t.Fatalf("migration backup missing: %v", err)
	}
	if string(backup) != string(orig) {
		t.Fatal("migration backup differs from the original bytes")
	}
}

// TestCommitLogAbsurdLengthDoesNotPanic: a corrupt tail whose length
// uvarint is astronomically large must be handled as a torn tail, not
// a slice-bounds panic (regression for the parseEntry overflow).
func TestCommitLogAbsurdLengthDoesNotPanic(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "b0.hist")
	// Marker, then kind=0 with a ~2^63 length uvarint.
	data := []byte{logMagic, 0x00, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x7f, 0x01, 0x02}
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	log, err := OpenCommitLog(path, 4)
	if err != nil {
		t.Fatalf("open with absurd entry length: %v", err)
	}
	defer log.Close()
	if got := log.NumCommits(); got != 0 {
		t.Fatalf("recovered %d commits from garbage, want 0", got)
	}
}
