package bitmap

import (
	"os"
	"path/filepath"
	"testing"
)

// FuzzCommitLogTornTail fuzzes the crash shape OpenCommitLog must
// absorb: a valid log of nCommits snapshots whose file is then either
// truncated at an arbitrary byte (a torn final write) or extended with
// arbitrary junk (a torn append of a commit that never completed).
// Reopening must never fail, must preserve a prefix of the committed
// history, and every surviving commit must check out to exactly the
// snapshot originally appended.
func FuzzCommitLogTornTail(f *testing.F) {
	f.Add(uint8(3), int64(-1), []byte{})
	f.Add(uint8(5), int64(10), []byte{})
	f.Add(uint8(1), int64(-1), []byte{0, 200, 1, 2, 3})
	f.Add(uint8(20), int64(0), []byte{1, 7, 7, 7})
	f.Fuzz(func(t *testing.T, nCommits uint8, truncateAt int64, junk []byte) {
		n := int(nCommits%24) + 1
		dir := t.TempDir()
		path := filepath.Join(dir, "b0.hist")

		log, err := OpenCommitLog(path, 4)
		if err != nil {
			t.Fatal(err)
		}
		// Deterministic evolving snapshots: commit i sets bit 3i and
		// clears bit 3(i-1)+1 when set.
		snaps := make([]*Bitmap, n)
		cur := New(0)
		for i := 0; i < n; i++ {
			cur.Set(3 * i)
			if i > 0 {
				cur.Clear(3*(i-1) + 1)
			}
			cur.Set(3*i + 1)
			if _, err := log.Append(cur); err != nil {
				t.Fatal(err)
			}
			snaps[i] = cur.Clone()
		}
		if err := log.Close(); err != nil {
			t.Fatal(err)
		}

		// Corrupt the tail: truncate somewhere (if requested), then
		// append junk (if any).
		fi, err := os.Stat(path)
		if err != nil {
			t.Fatal(err)
		}
		if truncateAt >= 0 {
			at := truncateAt % (fi.Size() + 1)
			if err := os.Truncate(path, at); err != nil {
				t.Fatal(err)
			}
		}
		if len(junk) > 0 {
			fh, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
			if err != nil {
				t.Fatal(err)
			}
			if _, err := fh.Write(junk); err != nil {
				t.Fatal(err)
			}
			fh.Close()
		}

		// If the corruption destroyed the format marker (a truncation to
		// zero followed by junk), the file is no longer a new-format log:
		// recovery reads it as best-effort legacy data, so the
		// prefix-preservation contract only applies while the marker
		// survives. Opening and appending must work either way.
		onDisk, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		inFormat := len(onDisk) > 0 && onDisk[0] == logMagic

		re, err := OpenCommitLog(path, 4)
		if err != nil {
			if inFormat {
				t.Fatalf("reopen after torn tail: %v", err)
			}
			// Out-of-format files (marker destroyed) may be refused
			// outright — that is the non-destructive failure mode.
			return
		}
		defer re.Close()
		got := re.NumCommits()
		if inFormat {
			if got > n {
				t.Fatalf("recovered %d commits from a log of %d", got, n)
			}
			for i := 0; i < got; i++ {
				bm, err := re.Checkout(i)
				if err != nil {
					t.Fatalf("checkout %d of %d: %v", i, got, err)
				}
				if !bm.Equal(snaps[i]) {
					t.Fatalf("commit %d snapshot diverged after recovery: %v != %v", i, bm, snaps[i])
				}
			}
			if got > 0 && !re.Head().Equal(snaps[got-1]) {
				t.Fatalf("head diverged: %v != %v", re.Head(), snaps[got-1])
			}
		}
		// The recovered log must keep accepting appends.
		cur = re.Head()
		cur.Set(1000)
		if _, err := re.Append(cur); err != nil {
			t.Fatalf("append after recovery: %v", err)
		}
		bm, err := re.Checkout(re.NumCommits() - 1)
		if err != nil || !bm.Equal(cur) {
			t.Fatalf("post-recovery append did not round-trip: %v (%v)", bm, err)
		}
	})
}
