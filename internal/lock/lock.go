// Package lock implements the branch-level two-phase locking Decibel
// uses for concurrency control (Section 2.2.3: "Concurrent transactions
// by multiple users on the same version (but different sessions) are
// isolated from each other through two-phase locking" and "Concurrent
// commits to a branch are prevented via the use of two-phase locking").
//
// Locks are shared/exclusive on named resources (Decibel locks branch
// heads). Deadlocks are resolved by timeout: an acquisition that cannot
// be granted within the manager's timeout aborts with ErrTimeout and
// the caller is expected to release its locks and retry, the classic
// timeout-based 2PL policy.
package lock

import (
	"context"
	"errors"
	"sync"
	"time"
)

// Mode is a lock mode.
type Mode int

// Lock modes.
const (
	Shared Mode = iota
	Exclusive
)

// ErrTimeout is returned when a lock cannot be acquired in time; the
// caller should treat it as a deadlock-avoidance abort.
var ErrTimeout = errors.New("lock: acquisition timed out (possible deadlock)")

// DefaultTimeout bounds lock waits.
const DefaultTimeout = 5 * time.Second

type entry struct {
	sharedBy  map[uint64]int // txn -> count
	exclusive uint64         // txn holding exclusive (0 = none)
	exclCount int
}

// Manager grants shared/exclusive locks to transactions identified by
// opaque uint64 IDs.
type Manager struct {
	mu      sync.Mutex
	cond    *sync.Cond
	locks   map[string]*entry
	timeout time.Duration
}

// NewManager creates a lock manager with the given wait timeout
// (<= 0 selects DefaultTimeout).
func NewManager(timeout time.Duration) *Manager {
	if timeout <= 0 {
		timeout = DefaultTimeout
	}
	m := &Manager{locks: make(map[string]*entry), timeout: timeout}
	m.cond = sync.NewCond(&m.mu)
	return m
}

// Acquire blocks until txn holds the resource in the requested mode or
// the timeout elapses. Lock upgrades (shared held, exclusive requested)
// are supported when txn is the sole shared holder.
func (m *Manager) Acquire(txn uint64, resource string, mode Mode) error {
	return m.AcquireContext(context.Background(), txn, resource, mode)
}

// AcquireContext is Acquire bounded by a context: a wait that is still
// blocked when ctx is canceled aborts with ctx.Err(). The manager's
// deadlock timeout still applies underneath the context.
func (m *Manager) AcquireContext(ctx context.Context, txn uint64, resource string, mode Mode) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	deadline := time.Now().Add(m.timeout)
	// Wake blocked waiters on cancellation and periodically so deadline
	// and context checks run even if no Release broadcasts.
	stop := context.AfterFunc(ctx, func() { m.cond.Broadcast() })
	defer stop()
	timer := time.AfterFunc(m.timeout, func() { m.cond.Broadcast() })
	defer timer.Stop()

	m.mu.Lock()
	defer m.mu.Unlock()
	for {
		e := m.locks[resource]
		if e == nil {
			e = &entry{sharedBy: make(map[uint64]int)}
			m.locks[resource] = e
		}
		if m.grantable(e, txn, mode) {
			if mode == Shared {
				e.sharedBy[txn]++
			} else {
				e.exclusive = txn
				e.exclCount++
			}
			return nil
		}
		if err := ctx.Err(); err != nil {
			return err
		}
		if time.Now().After(deadline) {
			return ErrTimeout
		}
		m.cond.Wait()
	}
}

func (m *Manager) grantable(e *entry, txn uint64, mode Mode) bool {
	if mode == Shared {
		return e.exclusive == 0 || e.exclusive == txn
	}
	if e.exclusive != 0 {
		return e.exclusive == txn
	}
	// Exclusive: no other shared holders (upgrade allowed if sole).
	for holder := range e.sharedBy {
		if holder != txn {
			return false
		}
	}
	return true
}

// Release drops one hold of txn on resource in the given mode.
func (m *Manager) Release(txn uint64, resource string, mode Mode) {
	m.mu.Lock()
	defer m.mu.Unlock()
	e := m.locks[resource]
	if e == nil {
		return
	}
	if mode == Shared {
		if e.sharedBy[txn] > 0 {
			e.sharedBy[txn]--
			if e.sharedBy[txn] == 0 {
				delete(e.sharedBy, txn)
			}
		}
	} else if e.exclusive == txn {
		e.exclCount--
		if e.exclCount == 0 {
			e.exclusive = 0
		}
	}
	if len(e.sharedBy) == 0 && e.exclusive == 0 {
		delete(m.locks, resource)
	}
	m.cond.Broadcast()
}

// ReleaseAll drops every lock txn holds (transaction end in strict
// 2PL).
func (m *Manager) ReleaseAll(txn uint64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	for res, e := range m.locks {
		delete(e.sharedBy, txn)
		if e.exclusive == txn {
			e.exclusive = 0
			e.exclCount = 0
		}
		if len(e.sharedBy) == 0 && e.exclusive == 0 {
			delete(m.locks, res)
		}
	}
	m.cond.Broadcast()
}
