package lock

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestSharedCompatible(t *testing.T) {
	m := NewManager(time.Second)
	if err := m.Acquire(1, "branch:0", Shared); err != nil {
		t.Fatal(err)
	}
	if err := m.Acquire(2, "branch:0", Shared); err != nil {
		t.Fatal(err)
	}
	m.ReleaseAll(1)
	m.ReleaseAll(2)
}

func TestExclusiveBlocksShared(t *testing.T) {
	m := NewManager(50 * time.Millisecond)
	if err := m.Acquire(1, "b", Exclusive); err != nil {
		t.Fatal(err)
	}
	if err := m.Acquire(2, "b", Shared); !errors.Is(err, ErrTimeout) {
		t.Fatalf("shared under exclusive: %v", err)
	}
	m.Release(1, "b", Exclusive)
	if err := m.Acquire(2, "b", Shared); err != nil {
		t.Fatal(err)
	}
}

func TestSharedBlocksExclusiveFromOther(t *testing.T) {
	m := NewManager(50 * time.Millisecond)
	m.Acquire(1, "b", Shared)
	if err := m.Acquire(2, "b", Exclusive); !errors.Is(err, ErrTimeout) {
		t.Fatalf("exclusive under foreign shared: %v", err)
	}
}

func TestUpgradeSoleHolder(t *testing.T) {
	m := NewManager(time.Second)
	m.Acquire(1, "b", Shared)
	if err := m.Acquire(1, "b", Exclusive); err != nil {
		t.Fatalf("upgrade failed: %v", err)
	}
}

func TestReentrantExclusive(t *testing.T) {
	m := NewManager(time.Second)
	m.Acquire(1, "b", Exclusive)
	if err := m.Acquire(1, "b", Exclusive); err != nil {
		t.Fatalf("reentrant exclusive failed: %v", err)
	}
	m.Release(1, "b", Exclusive)
	// Still held once.
	if err := m.Acquire(2, "b", Shared); !errors.Is(err, ErrTimeout) {
		t.Fatal("exclusive dropped too early")
	}
	m.Release(1, "b", Exclusive)
	if err := m.Acquire(2, "b", Shared); err != nil {
		t.Fatal(err)
	}
}

func TestBlockedAcquireWakesOnRelease(t *testing.T) {
	m := NewManager(5 * time.Second)
	m.Acquire(1, "b", Exclusive)
	done := make(chan error, 1)
	go func() { done <- m.Acquire(2, "b", Exclusive) }()
	time.Sleep(20 * time.Millisecond)
	m.Release(1, "b", Exclusive)
	select {
	case err := <-done:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("waiter never woke")
	}
}

func TestReleaseAllWakesWaiters(t *testing.T) {
	m := NewManager(5 * time.Second)
	m.Acquire(1, "x", Exclusive)
	m.Acquire(1, "y", Exclusive)
	var wg sync.WaitGroup
	var failures atomic.Int32
	for i := 0; i < 4; i++ {
		wg.Add(1)
		res := "x"
		if i%2 == 0 {
			res = "y"
		}
		go func(txn uint64, res string) {
			defer wg.Done()
			if err := m.Acquire(txn, res, Shared); err != nil {
				failures.Add(1)
			}
		}(uint64(10+i), res)
	}
	time.Sleep(20 * time.Millisecond)
	m.ReleaseAll(1)
	wg.Wait()
	if failures.Load() != 0 {
		t.Fatalf("%d waiters failed", failures.Load())
	}
}

func TestConcurrentCountersUnderExclusion(t *testing.T) {
	m := NewManager(10 * time.Second)
	counter := 0
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func(txn uint64) {
			defer wg.Done()
			for j := 0; j < 50; j++ {
				if err := m.Acquire(txn, "ctr", Exclusive); err != nil {
					t.Error(err)
					return
				}
				counter++
				m.Release(txn, "ctr", Exclusive)
			}
		}(uint64(i + 1))
	}
	wg.Wait()
	if counter != 16*50 {
		t.Fatalf("counter = %d, want %d (lost updates)", counter, 16*50)
	}
}
