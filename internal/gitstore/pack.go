package gitstore

import (
	"bytes"
	"compress/zlib"
	"encoding/binary"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
)

// Repack gathers all loose objects into a single packfile, searching
// for delta bases the way git does: every object is compared against a
// window of similarly-sized candidates of the same type and the best
// (smallest) delta encoding wins, falling back to storing the object
// whole. This exhaustive comparison is what makes repack "take
// substantial time (more than 13 hours for the 1 GB benchmark)" in the
// paper; at our scale it is seconds, but the asymptotics are the same.
//
// window <= 0 selects the default of 10 candidates (git's default).
func (r *Repo) Repack(window int) error {
	if window <= 0 {
		window = 10
	}
	type obj struct {
		h    Hash
		t    objType
		raw  []byte // header + payload
		size int
	}
	var objs []obj
	for h := range r.loose {
		t, payload, err := r.readObject(h)
		if err != nil {
			return err
		}
		raw := make([]byte, 0, len(payload)+32)
		raw = append(raw, []byte(fmt.Sprintf("%s %d\x00", t, len(payload)))...)
		raw = append(raw, payload...)
		objs = append(objs, obj{h: h, t: t, raw: raw, size: len(raw)})
	}
	// git sorts by type then size (descending) so that similar objects
	// are adjacent in the delta window.
	sort.Slice(objs, func(i, j int) bool {
		if objs[i].t != objs[j].t {
			return objs[i].t < objs[j].t
		}
		if objs[i].size != objs[j].size {
			return objs[i].size > objs[j].size
		}
		return bytes.Compare(objs[i].h[:], objs[j].h[:]) < 0
	})

	newPack := make(map[Hash]packEntry, len(objs))
	for i, o := range objs {
		bestLen := len(o.raw)
		var bestDelta []byte
		var bestBase Hash
		// Exhaustive window search over preceding candidates.
		for w := 1; w <= window && i-w >= 0; w++ {
			cand := objs[i-w]
			if cand.t != o.t {
				break
			}
			delta := makeDelta(cand.raw, o.raw)
			if len(delta) < bestLen {
				bestLen = len(delta)
				bestDelta = delta
				bestBase = cand.h
			}
		}
		if bestDelta != nil {
			newPack[o.h] = packEntry{base: bestBase, data: bestDelta}
		} else {
			newPack[o.h] = packEntry{data: o.raw, full: true}
		}
	}
	// Keep previously packed objects.
	for h, pe := range r.pack {
		if _, dup := newPack[h]; !dup {
			newPack[h] = pe
		}
	}
	r.pack = newPack

	// Write the packfile (zlib per entry) and drop the loose objects.
	var buf bytes.Buffer
	hashes := make([]Hash, 0, len(newPack))
	for h := range newPack {
		hashes = append(hashes, h)
	}
	sort.Slice(hashes, func(i, j int) bool { return bytes.Compare(hashes[i][:], hashes[j][:]) < 0 })
	for _, h := range hashes {
		pe := newPack[h]
		buf.Write(h[:])
		if pe.full {
			buf.WriteByte(0)
		} else {
			buf.WriteByte(1)
			buf.Write(pe.base[:])
		}
		var z bytes.Buffer
		zw := zlib.NewWriter(&z)
		zw.Write(pe.data)
		zw.Close()
		var lenBuf [8]byte
		binary.LittleEndian.PutUint64(lenBuf[:], uint64(z.Len()))
		buf.Write(lenBuf[:])
		buf.Write(z.Bytes())
	}
	if err := os.WriteFile(filepath.Join(r.dir, "packfile"), buf.Bytes(), 0o644); err != nil {
		return fmt.Errorf("gitstore: %w", err)
	}
	for h := range r.loose {
		os.Remove(r.objectPath(h))
	}
	r.loose = make(map[Hash]bool)
	return nil
}

// Delta encoding: a byte stream of operations against a base buffer.
//
//	op 0x01: copy  — uvarint offset, uvarint length (from base)
//	op 0x02: insert — uvarint length, raw bytes
//
// makeDelta uses a 16-byte block index over the base with greedy
// extension, the standard xdelta-style scheme git's packing uses.
const deltaBlock = 16

func makeDelta(base, target []byte) []byte {
	index := make(map[string][]int)
	for i := 0; i+deltaBlock <= len(base); i += deltaBlock {
		k := string(base[i : i+deltaBlock])
		index[k] = append(index[k], i)
	}
	var out []byte
	var pending []byte // bytes to insert
	flush := func() {
		if len(pending) > 0 {
			out = append(out, 0x02)
			out = binary.AppendUvarint(out, uint64(len(pending)))
			out = append(out, pending...)
			pending = pending[:0]
		}
	}
	i := 0
	for i < len(target) {
		if i+deltaBlock <= len(target) {
			if cands, ok := index[string(target[i:i+deltaBlock])]; ok {
				// Greedy: take the candidate with the longest extension.
				bestOff, bestLen := -1, 0
				for _, off := range cands {
					l := deltaBlock
					for off+l < len(base) && i+l < len(target) && base[off+l] == target[i+l] {
						l++
					}
					if l > bestLen {
						bestOff, bestLen = off, l
					}
				}
				if bestLen >= deltaBlock {
					flush()
					out = append(out, 0x01)
					out = binary.AppendUvarint(out, uint64(bestOff))
					out = binary.AppendUvarint(out, uint64(bestLen))
					i += bestLen
					continue
				}
			}
		}
		pending = append(pending, target[i])
		i++
	}
	flush()
	return out
}

func applyDelta(base, delta []byte) ([]byte, error) {
	var out []byte
	pos := 0
	for pos < len(delta) {
		op := delta[pos]
		pos++
		switch op {
		case 0x01:
			off, n := binary.Uvarint(delta[pos:])
			if n <= 0 {
				return nil, errors.New("gitstore: corrupt delta copy offset")
			}
			pos += n
			length, n := binary.Uvarint(delta[pos:])
			if n <= 0 {
				return nil, errors.New("gitstore: corrupt delta copy length")
			}
			pos += n
			if off+length > uint64(len(base)) {
				return nil, errors.New("gitstore: delta copy out of range")
			}
			out = append(out, base[off:off+length]...)
		case 0x02:
			length, n := binary.Uvarint(delta[pos:])
			if n <= 0 {
				return nil, errors.New("gitstore: corrupt delta insert")
			}
			pos += n
			if pos+int(length) > len(delta) {
				return nil, errors.New("gitstore: delta insert out of range")
			}
			out = append(out, delta[pos:pos+int(length)]...)
			pos += int(length)
		default:
			return nil, fmt.Errorf("gitstore: bad delta op %d", op)
		}
	}
	return out, nil
}
