// Package gitstore implements the git-based baseline of Section 5.7:
// a content-addressed object store with git's storage mechanics —
// SHA-1-addressed, zlib-compressed loose objects (blobs, trees,
// commits), branch refs, and packfiles built by exhaustive delta-base
// search during repack. On top of it, Table implements the Decibel API
// (insert/update/delete, branch, commit, checkout) in the two layouts
// the paper evaluates ("git 1 file" and "git file/tup") and the two
// on-disk formats (binary and CSV).
//
// The point of this package is to reproduce the costs Tables 6 and 7
// measure: commit time proportional to the data hashed, checkout time
// dominated by object reassembly, repack time dominated by the
// exhaustive delta search, and the space behaviour of delta chains.
package gitstore

import (
	"bytes"
	"compress/zlib"
	"crypto/sha1"
	"encoding/hex"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Hash is a SHA-1 object name.
type Hash [sha1.Size]byte

func (h Hash) String() string { return hex.EncodeToString(h[:]) }

// objType is the git object kind.
type objType string

const (
	typeBlob   objType = "blob"
	typeTree   objType = "tree"
	typeCommit objType = "commit"
)

// Repo is a minimal git-mechanics repository.
type Repo struct {
	dir  string
	refs map[string]Hash // branch -> commit
	// Loose object presence cache (hash -> true). Contents live on disk.
	loose map[Hash]bool
	// pack holds packed objects after Repack (hash -> packed entry).
	pack map[Hash]packEntry
}

type packEntry struct {
	base Hash // zero Hash = stored whole
	data []byte
	full bool
}

// InitRepo creates a repository at dir.
func InitRepo(dir string) (*Repo, error) {
	if err := os.MkdirAll(filepath.Join(dir, "objects"), 0o755); err != nil {
		return nil, fmt.Errorf("gitstore: %w", err)
	}
	return &Repo{
		dir:   dir,
		refs:  make(map[string]Hash),
		loose: make(map[Hash]bool),
		pack:  make(map[Hash]packEntry),
	}, nil
}

func (r *Repo) objectPath(h Hash) string {
	s := h.String()
	return filepath.Join(r.dir, "objects", s[:2], s[2:])
}

// hashObject computes the git object name: sha1("<type> <len>\x00" + data).
func hashObject(t objType, data []byte) Hash {
	hsh := sha1.New()
	fmt.Fprintf(hsh, "%s %d\x00", t, len(data))
	hsh.Write(data)
	var out Hash
	copy(out[:], hsh.Sum(nil))
	return out
}

// writeObject stores a loose object (zlib-compressed), returning its
// hash. Writing an existing object is a cheap no-op, as in git.
func (r *Repo) writeObject(t objType, data []byte) (Hash, error) {
	h := hashObject(t, data)
	if r.loose[h] {
		return h, nil
	}
	if _, packed := r.pack[h]; packed {
		return h, nil
	}
	path := r.objectPath(h)
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return h, fmt.Errorf("gitstore: %w", err)
	}
	var buf bytes.Buffer
	zw := zlib.NewWriter(&buf)
	fmt.Fprintf(zw, "%s %d\x00", t, len(data))
	zw.Write(data)
	zw.Close()
	if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
		return h, fmt.Errorf("gitstore: %w", err)
	}
	r.loose[h] = true
	return h, nil
}

// readRaw loads an object's raw form (header + payload) from the loose
// store or the pack, resolving delta chains. Deltas are encoded over
// the raw form.
func (r *Repo) readRaw(h Hash) ([]byte, error) {
	if pe, ok := r.pack[h]; ok {
		if pe.full {
			return pe.data, nil
		}
		base, err := r.readRaw(pe.base)
		if err != nil {
			return nil, err
		}
		return applyDelta(base, pe.data)
	}
	f, err := os.Open(r.objectPath(h))
	if err != nil {
		return nil, fmt.Errorf("gitstore: object %s: %w", h, err)
	}
	defer f.Close()
	zr, err := zlib.NewReader(f)
	if err != nil {
		return nil, fmt.Errorf("gitstore: %w", err)
	}
	defer zr.Close()
	raw, err := io.ReadAll(zr)
	if err != nil {
		return nil, fmt.Errorf("gitstore: %w", err)
	}
	return raw, nil
}

// readObject loads an object's type and payload.
func (r *Repo) readObject(h Hash) (objType, []byte, error) {
	raw, err := r.readRaw(h)
	if err != nil {
		return "", nil, err
	}
	return splitHeader(raw)
}

func splitHeader(raw []byte) (objType, []byte, error) {
	i := bytes.IndexByte(raw, 0)
	if i < 0 {
		return "", nil, errors.New("gitstore: corrupt object header")
	}
	parts := strings.SplitN(string(raw[:i]), " ", 2)
	return objType(parts[0]), raw[i+1:], nil
}

// treeEntry is one (name, blob) pair in a tree object.
type treeEntry struct {
	Name string
	Blob Hash
}

// writeTree serializes a sorted tree object.
func (r *Repo) writeTree(entries []treeEntry) (Hash, error) {
	sort.Slice(entries, func(i, j int) bool { return entries[i].Name < entries[j].Name })
	var buf bytes.Buffer
	for _, e := range entries {
		fmt.Fprintf(&buf, "100644 %s\x00", e.Name)
		buf.Write(e.Blob[:])
	}
	return r.writeObject(typeTree, buf.Bytes())
}

// readTree parses a tree object.
func (r *Repo) readTree(h Hash) ([]treeEntry, error) {
	t, data, err := r.readObject(h)
	if err != nil {
		return nil, err
	}
	if t != typeTree {
		return nil, fmt.Errorf("gitstore: %s is a %s, not a tree", h, t)
	}
	var out []treeEntry
	for len(data) > 0 {
		i := bytes.IndexByte(data, 0)
		if i < 0 || len(data) < i+1+sha1.Size {
			return nil, errors.New("gitstore: corrupt tree")
		}
		head := string(data[:i])
		sp := strings.IndexByte(head, ' ')
		var e treeEntry
		e.Name = head[sp+1:]
		copy(e.Blob[:], data[i+1:i+1+sha1.Size])
		out = append(out, e)
		data = data[i+1+sha1.Size:]
	}
	return out, nil
}

// Commit metadata object.
type Commit struct {
	Hash    Hash
	Tree    Hash
	Parents []Hash
	Message string
}

// writeCommit serializes a commit object.
func (r *Repo) writeCommit(tree Hash, parents []Hash, msg string) (Hash, error) {
	var buf bytes.Buffer
	fmt.Fprintf(&buf, "tree %s\n", tree)
	for _, p := range parents {
		fmt.Fprintf(&buf, "parent %s\n", p)
	}
	fmt.Fprintf(&buf, "\n%s\n", msg)
	return r.writeObject(typeCommit, buf.Bytes())
}

// readCommit parses a commit object.
func (r *Repo) readCommit(h Hash) (*Commit, error) {
	t, data, err := r.readObject(h)
	if err != nil {
		return nil, err
	}
	if t != typeCommit {
		return nil, fmt.Errorf("gitstore: %s is a %s, not a commit", h, t)
	}
	c := &Commit{Hash: h}
	lines := strings.Split(string(data), "\n")
	i := 0
	for ; i < len(lines); i++ {
		line := lines[i]
		if line == "" {
			i++
			break
		}
		switch {
		case strings.HasPrefix(line, "tree "):
			b, err := hex.DecodeString(line[5:])
			if err != nil {
				return nil, err
			}
			copy(c.Tree[:], b)
		case strings.HasPrefix(line, "parent "):
			b, err := hex.DecodeString(line[7:])
			if err != nil {
				return nil, err
			}
			var p Hash
			copy(p[:], b)
			c.Parents = append(c.Parents, p)
		}
	}
	c.Message = strings.Join(lines[i:], "\n")
	return c, nil
}

// SetRef points a branch at a commit.
func (r *Repo) SetRef(branch string, h Hash) { r.refs[branch] = h }

// Ref resolves a branch name.
func (r *Repo) Ref(branch string) (Hash, bool) {
	h, ok := r.refs[branch]
	return h, ok
}

// RepoSizeBytes walks the object store and pack, returning total bytes.
func (r *Repo) RepoSizeBytes() (int64, error) {
	var total int64
	err := filepath.Walk(filepath.Join(r.dir, "objects"), func(_ string, info os.FileInfo, err error) error {
		if err != nil {
			return err
		}
		if !info.IsDir() {
			total += info.Size()
		}
		return nil
	})
	if err != nil {
		return 0, err
	}
	if fi, err := os.Stat(filepath.Join(r.dir, "packfile")); err == nil {
		total += fi.Size()
	}
	return total, nil
}

// CountObjects reports the number of loose and packed objects.
func (r *Repo) CountObjects() (loose, packed int) {
	return len(r.loose), len(r.pack)
}
