package gitstore

import (
	"bytes"
	"fmt"
	"sort"
	"strconv"
	"strings"

	"decibel/internal/record"
)

// Layout selects how the versioned table maps onto git objects, the
// two implementations of Section 5.7.
type Layout int

const (
	// OneFile stores the whole relation in a single file ("git 1 file"):
	// every commit re-hashes and re-stores the entire table blob.
	OneFile Layout = iota
	// FilePerTuple stores one file per tuple ("git file/tup"): commits
	// only add blobs for changed tuples, but trees are huge and
	// checkouts reassemble one object per record.
	FilePerTuple
)

func (l Layout) String() string {
	if l == OneFile {
		return "1 file"
	}
	return "file/tup"
}

// Format selects the serialization of records.
type Format int

const (
	// Binary stores the fixed-width record encoding.
	Binary Format = iota
	// CSV stores decimal-rendered rows ("results in a larger raw size
	// due to string encoding").
	CSV
)

func (f Format) String() string {
	if f == Binary {
		return "bin"
	}
	return "csv"
}

// Table implements the Decibel API over the git object store.
type Table struct {
	repo   *Repo
	layout Layout
	format Format
	schema *record.Schema
	// Working copies: branch -> pk -> encoded record (Binary form).
	states map[string]map[int64][]byte
}

// NewTable creates a git-backed versioned table at dir.
func NewTable(dir string, schema *record.Schema, layout Layout, format Format) (*Table, error) {
	repo, err := InitRepo(dir)
	if err != nil {
		return nil, err
	}
	t := &Table{
		repo:   repo,
		layout: layout,
		format: format,
		schema: schema,
		states: map[string]map[int64][]byte{"master": {}},
	}
	if _, err := t.Commit("master", "init"); err != nil {
		return nil, err
	}
	return t, nil
}

// Repo exposes the underlying repository (for Repack and size stats).
func (t *Table) Repo() *Repo { return t.repo }

// Insert upserts a record into a branch's working copy.
func (t *Table) Insert(branch string, rec *record.Record) error {
	st, ok := t.states[branch]
	if !ok {
		return fmt.Errorf("gitstore: unknown branch %q", branch)
	}
	st[rec.PK()] = append([]byte(nil), rec.Bytes()...)
	return nil
}

// Delete removes a key from a branch's working copy.
func (t *Table) Delete(branch string, pk int64) error {
	st, ok := t.states[branch]
	if !ok {
		return fmt.Errorf("gitstore: unknown branch %q", branch)
	}
	delete(st, pk)
	return nil
}

// Branch creates a branch from another branch's head (git branch).
func (t *Table) Branch(name, from string) error {
	if _, dup := t.states[name]; dup {
		return fmt.Errorf("gitstore: branch %q exists", name)
	}
	src, ok := t.states[from]
	if !ok {
		return fmt.Errorf("gitstore: unknown branch %q", from)
	}
	cp := make(map[int64][]byte, len(src))
	for k, v := range src {
		cp[k] = v
	}
	t.states[name] = cp
	if h, ok := t.repo.Ref(from); ok {
		t.repo.SetRef(name, h)
	}
	return nil
}

// encode renders one record in the table's format.
func (t *Table) encode(raw []byte) []byte {
	if t.format == Binary {
		return raw
	}
	rec, err := record.FromBytes(t.schema, raw)
	if err != nil {
		return raw
	}
	var sb strings.Builder
	for i := 0; i < t.schema.NumColumns(); i++ {
		if i > 0 {
			sb.WriteByte(',')
		}
		sb.WriteString(strconv.FormatInt(rec.Get(i), 10))
	}
	sb.WriteByte('\n')
	return []byte(sb.String())
}

// Commit snapshots a branch's working copy: every changed blob is
// hashed and stored, a tree is built, and a commit object advances the
// ref. For the one-file layout this hashes the entire relation
// ("compute SHA-1 hashes for each commit (proportional to data set
// size)"); for file-per-tuple it hashes each record file.
func (t *Table) Commit(branch, msg string) (Hash, error) {
	st, ok := t.states[branch]
	if !ok {
		return Hash{}, fmt.Errorf("gitstore: unknown branch %q", branch)
	}
	pks := make([]int64, 0, len(st))
	for pk := range st {
		pks = append(pks, pk)
	}
	sort.Slice(pks, func(i, j int) bool { return pks[i] < pks[j] })

	var entries []treeEntry
	if t.layout == OneFile {
		var buf bytes.Buffer
		for _, pk := range pks {
			buf.Write(t.encode(st[pk]))
		}
		blob, err := t.repo.writeObject(typeBlob, buf.Bytes())
		if err != nil {
			return Hash{}, err
		}
		entries = append(entries, treeEntry{Name: "table", Blob: blob})
	} else {
		for _, pk := range pks {
			blob, err := t.repo.writeObject(typeBlob, t.encode(st[pk]))
			if err != nil {
				return Hash{}, err
			}
			entries = append(entries, treeEntry{Name: fmt.Sprintf("t%d", pk), Blob: blob})
		}
	}
	tree, err := t.repo.writeTree(entries)
	if err != nil {
		return Hash{}, err
	}
	var parents []Hash
	if h, ok := t.repo.Ref(branch); ok {
		parents = append(parents, h)
	}
	ch, err := t.repo.writeCommit(tree, parents, msg)
	if err != nil {
		return Hash{}, err
	}
	t.repo.SetRef(branch, ch)
	return ch, nil
}

// Checkout reassembles the full table contents at a commit, returning
// the number of files and total bytes materialized (the work git does
// to restore a working copy).
func (t *Table) Checkout(h Hash) (files int, bytesOut int64, err error) {
	c, err := t.repo.readCommit(h)
	if err != nil {
		return 0, 0, err
	}
	entries, err := t.repo.readTree(c.Tree)
	if err != nil {
		return 0, 0, err
	}
	for _, e := range entries {
		_, data, err := t.repo.readObject(e.Blob)
		if err != nil {
			return files, bytesOut, err
		}
		files++
		bytesOut += int64(len(data))
	}
	return files, bytesOut, nil
}

// Head returns the head commit of a branch.
func (t *Table) Head(branch string) (Hash, bool) { return t.repo.Ref(branch) }

// DataSizeBytes is the logical size of a branch's working copy in the
// table's format.
func (t *Table) DataSizeBytes(branch string) int64 {
	var n int64
	for _, raw := range t.states[branch] {
		n += int64(len(t.encode(raw)))
	}
	return n
}

// Records returns the number of live records in a branch.
func (t *Table) Records(branch string) int { return len(t.states[branch]) }
