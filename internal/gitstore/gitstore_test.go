package gitstore

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"

	"decibel/internal/record"
)

func testSchema() *record.Schema {
	return record.MustSchema(
		record.Column{Name: "id", Type: record.Int64},
		record.Column{Name: "a", Type: record.Int32},
		record.Column{Name: "b", Type: record.Int32},
	)
}

func mkRec(s *record.Schema, pk, v int64) *record.Record {
	r := record.New(s)
	r.SetPK(pk)
	r.Set(1, v)
	r.Set(2, v*2)
	return r
}

func TestObjectRoundTrip(t *testing.T) {
	r, err := InitRepo(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	data := []byte("hello versioned world")
	h, err := r.writeObject(typeBlob, data)
	if err != nil {
		t.Fatal(err)
	}
	// Idempotent write.
	h2, err := r.writeObject(typeBlob, data)
	if err != nil || h2 != h {
		t.Fatalf("rewrite changed hash: %v %v", h, h2)
	}
	typ, got, err := r.readObject(h)
	if err != nil || typ != typeBlob || !bytes.Equal(got, data) {
		t.Fatalf("read back: %v %s %q", err, typ, got)
	}
}

func TestTreeAndCommitRoundTrip(t *testing.T) {
	r, _ := InitRepo(t.TempDir())
	b1, _ := r.writeObject(typeBlob, []byte("one"))
	b2, _ := r.writeObject(typeBlob, []byte("two"))
	tree, err := r.writeTree([]treeEntry{{Name: "z", Blob: b2}, {Name: "a", Blob: b1}})
	if err != nil {
		t.Fatal(err)
	}
	entries, err := r.readTree(tree)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 2 || entries[0].Name != "a" || entries[1].Name != "z" {
		t.Fatalf("entries = %v", entries)
	}
	ch, err := r.writeCommit(tree, nil, "first")
	if err != nil {
		t.Fatal(err)
	}
	ch2, err := r.writeCommit(tree, []Hash{ch}, "second")
	if err != nil {
		t.Fatal(err)
	}
	c, err := r.readCommit(ch2)
	if err != nil {
		t.Fatal(err)
	}
	if c.Tree != tree || len(c.Parents) != 1 || c.Parents[0] != ch {
		t.Fatalf("commit = %+v", c)
	}
}

func TestDeltaRoundTrip(t *testing.T) {
	base := bytes.Repeat([]byte("abcdefghijklmnop"), 100)
	target := append([]byte("PREFIX-"), base...)
	target = append(target, []byte("-SUFFIX")...)
	delta := makeDelta(base, target)
	if len(delta) >= len(target) {
		t.Fatalf("delta (%d) not smaller than target (%d)", len(delta), len(target))
	}
	got, err := applyDelta(base, delta)
	if err != nil || !bytes.Equal(got, target) {
		t.Fatalf("delta round trip failed: %v", err)
	}
}

func TestQuickDeltaRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		base := make([]byte, r.Intn(2000))
		r.Read(base)
		// Target shares chunks with base plus random edits.
		var target []byte
		for len(target) < 1500 {
			if len(base) > 64 && r.Intn(2) == 0 {
				off := r.Intn(len(base) - 64)
				target = append(target, base[off:off+64]...)
			} else {
				chunk := make([]byte, r.Intn(40)+1)
				r.Read(chunk)
				target = append(target, chunk...)
			}
		}
		got, err := applyDelta(base, makeDelta(base, target))
		return err == nil && bytes.Equal(got, target)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestRepackPreservesObjects(t *testing.T) {
	r, _ := InitRepo(t.TempDir())
	// Incompressible shared content: zlib cannot shrink the loose
	// objects, so the delta chains must provide the savings.
	rnd := rand.New(rand.NewSource(7))
	base := make([]byte, 16<<10)
	rnd.Read(base)
	var hashes []Hash
	var contents [][]byte
	for i := 0; i < 20; i++ {
		// Successive versions share most content: ideal delta chains.
		data := append([]byte(nil), base...)
		tail := make([]byte, 100)
		rnd.Read(tail)
		data = append(data, tail...)
		h, err := r.writeObject(typeBlob, data)
		if err != nil {
			t.Fatal(err)
		}
		hashes = append(hashes, h)
		contents = append(contents, data)
	}
	preSize, _ := r.RepoSizeBytes()
	if err := r.Repack(10); err != nil {
		t.Fatal(err)
	}
	loose, packed := r.CountObjects()
	if loose != 0 || packed != 20 {
		t.Fatalf("after repack: loose=%d packed=%d", loose, packed)
	}
	postSize, _ := r.RepoSizeBytes()
	if postSize >= preSize {
		t.Fatalf("repack did not shrink: %d -> %d", preSize, postSize)
	}
	for i, h := range hashes {
		typ, got, err := r.readObject(h)
		if err != nil || typ != typeBlob || !bytes.Equal(got, contents[i]) {
			t.Fatalf("object %d lost after repack: %v", i, err)
		}
	}
}

func TestTableCommitCheckout(t *testing.T) {
	for _, layout := range []Layout{OneFile, FilePerTuple} {
		for _, format := range []Format{Binary, CSV} {
			name := layout.String() + "/" + format.String()
			t.Run(name, func(t *testing.T) {
				s := testSchema()
				tbl, err := NewTable(t.TempDir(), s, layout, format)
				if err != nil {
					t.Fatal(err)
				}
				for pk := int64(1); pk <= 10; pk++ {
					tbl.Insert("master", mkRec(s, pk, pk*10))
				}
				c1, err := tbl.Commit("master", "ten")
				if err != nil {
					t.Fatal(err)
				}
				tbl.Insert("master", mkRec(s, 3, 999))
				tbl.Delete("master", 7)
				c2, err := tbl.Commit("master", "edit")
				if err != nil {
					t.Fatal(err)
				}
				files1, bytes1, err := tbl.Checkout(c1)
				if err != nil {
					t.Fatal(err)
				}
				files2, bytes2, err := tbl.Checkout(c2)
				if err != nil {
					t.Fatal(err)
				}
				if layout == FilePerTuple {
					if files1 != 10 || files2 != 9 {
						t.Fatalf("files = %d, %d", files1, files2)
					}
				} else if files1 != 1 || files2 != 1 {
					t.Fatalf("one-file files = %d, %d", files1, files2)
				}
				if bytes1 == 0 || bytes2 == 0 {
					t.Fatal("empty checkout")
				}
				if tbl.Records("master") != 9 {
					t.Fatalf("records = %d", tbl.Records("master"))
				}
			})
		}
	}
}

func TestTableBranchIsolation(t *testing.T) {
	s := testSchema()
	tbl, err := NewTable(t.TempDir(), s, FilePerTuple, Binary)
	if err != nil {
		t.Fatal(err)
	}
	tbl.Insert("master", mkRec(s, 1, 1))
	tbl.Commit("master", "base")
	if err := tbl.Branch("dev", "master"); err != nil {
		t.Fatal(err)
	}
	tbl.Insert("dev", mkRec(s, 2, 2))
	if tbl.Records("master") != 1 || tbl.Records("dev") != 2 {
		t.Fatalf("isolation broken: master=%d dev=%d", tbl.Records("master"), tbl.Records("dev"))
	}
	if err := tbl.Branch("dev", "master"); err == nil {
		t.Fatal("duplicate branch accepted")
	}
	// Commit on dev links to the shared parent.
	ch, _ := tbl.Commit("dev", "dev work")
	c, _ := tbl.repo.readCommit(ch)
	mh, _ := tbl.Head("master")
	if len(c.Parents) != 1 || c.Parents[0] != mh {
		t.Fatalf("dev parent = %v, want master head", c.Parents)
	}
}

func TestCSVLargerThanBinary(t *testing.T) {
	s := record.Benchmark(256)
	r := record.New(s)
	r.SetPK(123456789)
	for i := 1; i < s.NumColumns(); i++ {
		r.Set(i, 1<<30)
	}
	tblBin, _ := NewTable(t.TempDir(), s, OneFile, Binary)
	tblCSV, _ := NewTable(t.TempDir(), s, OneFile, CSV)
	tblBin.Insert("master", r)
	tblCSV.Insert("master", r)
	if tblCSV.DataSizeBytes("master") <= tblBin.DataSizeBytes("master") {
		t.Fatalf("csv (%d) not larger than binary (%d)",
			tblCSV.DataSizeBytes("master"), tblBin.DataSizeBytes("master"))
	}
}

func TestUnchangedCommitReusesBlobs(t *testing.T) {
	s := testSchema()
	tbl, _ := NewTable(t.TempDir(), s, FilePerTuple, Binary)
	for pk := int64(1); pk <= 100; pk++ {
		tbl.Insert("master", mkRec(s, pk, pk))
	}
	tbl.Commit("master", "hundred")
	loose1, _ := tbl.repo.CountObjects()
	// Change one tuple: exactly one new blob + tree + commit.
	tbl.Insert("master", mkRec(s, 50, 9999))
	tbl.Commit("master", "one change")
	loose2, _ := tbl.repo.CountObjects()
	if loose2-loose1 != 3 {
		t.Fatalf("new objects = %d, want 3 (blob+tree+commit)", loose2-loose1)
	}
}
