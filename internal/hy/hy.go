// Package hy implements Decibel's hybrid storage scheme (Section 3.4):
// records live in version-first-style segment files for locality, while
// liveness is tracked by tuple-first-style bitmaps kept local to each
// segment. A global branch-segment bitmap relates each branch to the
// segments containing records live in it, letting scans skip segments
// and multi-branch operations intersect small per-segment bitmaps
// instead of one giant index.
package hy

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"

	"decibel/internal/bitmap"
	"decibel/internal/core"
	"decibel/internal/record"
	"decibel/internal/store"
	"decibel/internal/vgraph"
)

// segID indexes the engine's segment table.
type segID int

// pos addresses one record copy.
type pos struct {
	Seg  segID
	Slot int64
}

var deletedPos = pos{Seg: -1, Slot: -1}

// hseg is one segment: a shared store segment (heap file, schema-
// version id, zone map, freeze state) plus its local bitmap index,
// "one bitmap per (segment, branch) tracking only the set of branches
// which inherit records contained in that segment".
type hseg struct {
	*store.Segment
	id    segID
	owner vgraph.BranchID // branch whose head this segment is/was
	local map[vgraph.BranchID]*bitmap.Bitmap
}

// liveCount returns the number of records live in the branch within
// this segment (drives the global branch-segment bitmap).
func (s *hseg) liveCount(b vgraph.BranchID) int {
	if bm, ok := s.local[b]; ok {
		return bm.Count()
	}
	return 0
}

// logKey identifies a per-(branch, segment) commit history file: "in
// hybrid, each (branch, segment) has its own file" (Section 5.3).
type logKey struct {
	Branch vgraph.BranchID
	Seg    segID
}

// Engine is the hybrid storage engine.
type Engine struct {
	mu   sync.Mutex
	env  *core.Env
	hist *record.History
	st   *store.Store

	// segs is the segment table in scan order (the order every scan
	// shape visits segments); byID resolves the stable segment ids that
	// positions, logs and the catalog reference. The two diverge after
	// a compaction merge: the merged segment takes a fresh id but sits
	// at the run's position so scan output order is unchanged. nextID
	// is the next unused id (ids are never reused, even after merges
	// retire theirs).
	segs    []*hseg
	byID    map[segID]*hseg
	nextID  segID
	headSeg map[vgraph.BranchID]segID
	pk      map[vgraph.BranchID]*pkIndex

	logs     map[logKey]*bitmap.CommitLog
	startSeq map[logKey]int // branch commit seq at which the log begins
}

// persisted catalog: the shared store state (cols — 0 in
// pre-versioning catalogs, meaning the full layout —, frozen flag,
// zone map) plus hybrid's ownership fields.
type segMetaJSON struct {
	store.SegMeta
	ID    segID           `json:"id"`
	Owner vgraph.BranchID `json:"owner"`
}

type metaJSON struct {
	Segments []segMetaJSON             `json:"segments"`
	HeadSeg  map[vgraph.BranchID]segID `json:"headSeg"`
	StartSeq map[string]int            `json:"startSeq"` // "branch:seg" -> seq
}

func init() { core.RegisterEngine("hybrid", Factory, "hy") }

// Factory builds a hybrid engine; it satisfies core.Factory.
func Factory(env *core.Env) (core.Engine, error) {
	e := &Engine{
		env:      env,
		hist:     env.History(),
		st:       store.New(env.Pool, env.History()),
		byID:     make(map[segID]*hseg),
		headSeg:  make(map[vgraph.BranchID]segID),
		pk:       make(map[vgraph.BranchID]*pkIndex),
		logs:     make(map[logKey]*bitmap.CommitLog),
		startSeq: make(map[logKey]int),
	}
	if err := e.recover(); err != nil {
		return nil, err
	}
	return e, nil
}

// Kind implements core.Engine.
func (e *Engine) Kind() string { return "hybrid" }

func (e *Engine) metaPath() string { return filepath.Join(e.env.Dir, "segments.json") }
func (e *Engine) segPath(id segID) string {
	return filepath.Join(e.env.Dir, fmt.Sprintf("seg%d.dat", id))
}
func (e *Engine) logPath(k logKey) string {
	return filepath.Join(e.env.Dir, "commits", fmt.Sprintf("b%d_s%d.hist", k.Branch, k.Seg))
}

func (e *Engine) openLog(k logKey) (*bitmap.CommitLog, error) {
	if l, ok := e.logs[k]; ok {
		return l, nil
	}
	l, err := bitmap.OpenCommitLog(e.logPath(k), e.env.Opt.CommitFanout)
	if err != nil {
		return nil, err
	}
	e.logs[k] = l
	return l, nil
}

func (e *Engine) persistLocked() error {
	m := metaJSON{HeadSeg: e.headSeg, StartSeq: make(map[string]int)}
	for _, s := range e.segs {
		m.Segments = append(m.Segments, segMetaJSON{SegMeta: s.Meta(), ID: s.id, Owner: s.owner})
	}
	for k, seq := range e.startSeq {
		m.StartSeq[fmt.Sprintf("%d:%d", k.Branch, k.Seg)] = seq
	}
	data, err := json.Marshal(&m)
	if err != nil {
		return fmt.Errorf("hy: %w", err)
	}
	tmp := e.metaPath() + ".tmp"
	if err := os.WriteFile(tmp, data, 0o644); err != nil {
		return fmt.Errorf("hy: %w", err)
	}
	return os.Rename(tmp, e.metaPath())
}

// recover reloads the catalog, restores each (branch, segment) bitmap
// to its last committed snapshot, and rebuilds the primary-key indexes.
func (e *Engine) recover() error {
	data, err := os.ReadFile(e.metaPath())
	if errors.Is(err, os.ErrNotExist) {
		return nil
	}
	if err != nil {
		return fmt.Errorf("hy: %w", err)
	}
	var m metaJSON
	if err := json.Unmarshal(data, &m); err != nil {
		return fmt.Errorf("hy: corrupt catalog: %w", err)
	}
	// Catalog order is scan order — after a compaction merge the slice
	// is no longer sorted by id (the merged segment keeps its run's
	// position under a fresh id), so it must not be re-sorted here.
	for _, sm := range m.Segments {
		// The store resolves a zero Cols (catalog from before schema
		// versioning) to the full layout, re-freezes frozen segments and
		// restores — or rebuilds, for catalogs from before zone maps —
		// each segment's zone map.
		seg, err := e.st.Open(e.segFilePath(sm.ID, sm.Encoding), sm.SegMeta, -1)
		if err != nil {
			return fmt.Errorf("hy: segment %d: %w", sm.ID, err)
		}
		s := &hseg{
			Segment: seg, id: sm.ID, owner: sm.Owner,
			local: make(map[vgraph.BranchID]*bitmap.Bitmap),
		}
		e.segs = append(e.segs, s)
		e.byID[s.id] = s
		if sm.ID >= e.nextID {
			e.nextID = sm.ID + 1
		}
	}
	e.headSeg = m.HeadSeg
	if e.headSeg == nil {
		e.headSeg = make(map[vgraph.BranchID]segID)
	}
	for key, seq := range m.StartSeq {
		var b vgraph.BranchID
		var s segID
		if _, err := fmt.Sscanf(key, "%d:%d", &b, &s); err != nil {
			return fmt.Errorf("hy: corrupt startSeq key %q", key)
		}
		k := logKey{Branch: b, Seg: s}
		e.startSeq[k] = seq
		l, err := e.openLog(k)
		if err != nil {
			return err
		}
		hs, ok := e.byID[s]
		if !ok {
			return fmt.Errorf("hy: corrupt catalog: log for missing segment %d", s)
		}
		hs.local[b] = l.Head()
	}
	// Branches created but never committed to have no (branch, segment)
	// logs of their own; rebuild their per-segment liveness from the
	// snapshot they branched at, recorded in the branch-point commit's
	// own branch logs (the same reconstruction Branch performs).
	for _, br := range e.env.Graph.Branches() {
		restored := false
		for k := range e.startSeq {
			if k.Branch == br.ID {
				restored = true
				break
			}
		}
		if restored || br.From == vgraph.None {
			continue
		}
		from, ok := e.env.Graph.Commit(br.From)
		if !ok {
			return fmt.Errorf("hy: recover branch %d: missing branch-point commit %d", br.ID, br.From)
		}
		snap, err := e.checkoutLocked(from.Branch, from.Seq)
		if err != nil {
			return fmt.Errorf("hy: recover branch %d: %w", br.ID, err)
		}
		for id, bm := range snap {
			e.byID[id].local[br.ID] = bm
		}
	}
	// Rebuild primary-key indexes from the restored bitmaps. Keys sit
	// at a fixed offset in every schema version, so the rebuild reads
	// raw buffers without converting them.
	for _, br := range e.env.Graph.Branches() {
		idx := newPKIndex()
		e.pk[br.ID] = idx
		for _, s := range e.segs {
			bm, ok := s.local[br.ID]
			if !ok {
				continue
			}
			buf := make([]byte, s.Schema.RecordSize())
			var scanErr error
			bm.ForEach(func(slot int) bool {
				if err := s.File.Read(int64(slot), buf); err != nil {
					scanErr = err
					return false
				}
				idx.set(record.PKOf(buf), pos{Seg: s.id, Slot: int64(slot)})
				return true
			})
			if scanErr != nil {
				return scanErr
			}
		}
	}
	e.sweepOrphans()
	return nil
}

func (e *Engine) newSegmentLocked(owner vgraph.BranchID, cols int) (*hseg, error) {
	id := e.nextID
	seg, err := e.st.Create(e.segPath(id), cols)
	if err != nil {
		return nil, err
	}
	s := &hseg{Segment: seg, id: id, owner: owner, local: make(map[vgraph.BranchID]*bitmap.Bitmap)}
	e.segs = append(e.segs, s)
	e.byID[id] = s
	e.nextID = id + 1
	return s, nil
}

// Init implements core.Engine.
func (e *Engine) Init(master *vgraph.Branch, c0 *vgraph.Commit) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	s, err := e.newSegmentLocked(master.ID, e.hist.PhysCols())
	if err != nil {
		return err
	}
	s.local[master.ID] = bitmap.New(0)
	e.headSeg[master.ID] = s.id
	e.pk[master.ID] = newPKIndex()
	return e.commitLocked(c0)
}

// branchSegments returns the segments holding records live in the
// branch, consulting the global branch-segment relation (bit-wise: a
// segment qualifies if the branch's local bitmap there has any set
// bit). This is the segment-skipping fast path of Section 3.4.
func (e *Engine) branchSegmentsLocked(b vgraph.BranchID) []*hseg {
	var out []*hseg
	for _, s := range e.segs {
		if bm, ok := s.local[b]; ok && bm.Any() {
			out = append(out, s)
		}
	}
	return out
}

// Branch implements core.Engine (Section 3.4): the parent's old head
// freezes into an internal segment whose bitmap now carries both
// branches; parent and child each get a fresh head segment.
func (e *Engine) Branch(child *vgraph.Branch, from *vgraph.Commit) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	parent := from.Branch

	snap, err := e.checkoutLocked(parent, from.Seq)
	if err != nil {
		return err
	}
	// Fast path: branching from the parent's current state clones the
	// parent's per-segment bitmaps directly and forks the pk index.
	current := make(map[segID]*bitmap.Bitmap)
	for _, s := range e.segs {
		if bm, ok := s.local[parent]; ok && bm.Any() {
			current[s.id] = bm
		}
	}
	atHead := len(snap) == len(current)
	if atHead {
		for id, bm := range current {
			if sn, ok := snap[id]; !ok || !sn.Equal(bm) {
				atHead = false
				break
			}
		}
	}

	for id, bm := range snap {
		e.byID[id].local[child.ID] = bm.Clone()
	}
	// Freeze the parent's head and open fresh heads for both branches.
	if old, ok := e.headSeg[parent]; ok {
		e.byID[old].Freeze()
	}
	// Both fresh heads start at the branch point's storage generation;
	// a later schema change rotates them lazily on first write.
	cols := e.hist.NumPhysAt(from.SchemaVer)
	np, err := e.newSegmentLocked(parent, cols)
	if err != nil {
		return err
	}
	np.local[parent] = bitmap.New(0)
	e.headSeg[parent] = np.id
	nc, err := e.newSegmentLocked(child.ID, cols)
	if err != nil {
		return err
	}
	nc.local[child.ID] = bitmap.New(0)
	e.headSeg[child.ID] = nc.id

	if atHead {
		if pidx, ok := e.pk[parent]; ok {
			a, b := pidx.fork()
			e.pk[parent] = a
			e.pk[child.ID] = b
			return e.persistLocked()
		}
	}
	idx := newPKIndex()
	for id, bm := range snap {
		s := e.byID[id]
		buf := make([]byte, s.Schema.RecordSize())
		var scanErr error
		bm.ForEach(func(slot int) bool {
			if err := s.File.Read(int64(slot), buf); err != nil {
				scanErr = err
				return false
			}
			idx.set(record.PKOf(buf), pos{Seg: id, Slot: int64(slot)})
			return true
		})
		if scanErr != nil {
			return scanErr
		}
	}
	e.pk[child.ID] = idx
	return e.persistLocked()
}

// Commit implements core.Engine: append each (branch, segment) local
// bitmap delta to its history file.
func (e *Engine) Commit(c *vgraph.Commit) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.commitLocked(c)
}

func (e *Engine) commitLocked(c *vgraph.Commit) error {
	for _, s := range e.segs {
		bm, ok := s.local[c.Branch]
		if !ok {
			continue
		}
		k := logKey{Branch: c.Branch, Seg: s.id}
		l, err := e.openLog(k)
		if err != nil {
			return err
		}
		if l.NumCommits() == 0 {
			e.startSeq[k] = c.Seq
		}
		want := c.Seq - e.startSeq[k]
		if got := l.NumCommits(); got != want {
			return fmt.Errorf("hy: commit seq %d maps to log entry %d but log has %d (branch %d seg %d)",
				c.Seq, want, got, c.Branch, s.id)
		}
		if _, err := l.Append(bm); err != nil {
			return err
		}
		if e.env.Opt.Fsync {
			if err := l.Sync(); err != nil {
				return err
			}
			if err := s.File.Sync(); err != nil {
				return err
			}
		}
	}
	return e.persistLocked()
}

// checkoutLocked reconstructs the per-segment liveness of branch b at
// commit seq.
func (e *Engine) checkoutLocked(b vgraph.BranchID, seq int) (map[segID]*bitmap.Bitmap, error) {
	out := make(map[segID]*bitmap.Bitmap)
	for k, start := range e.startSeq {
		if k.Branch != b || start > seq {
			continue
		}
		l, err := e.openLog(k)
		if err != nil {
			return nil, err
		}
		bm, err := l.Checkout(seq - start)
		if err != nil {
			return nil, err
		}
		if bm.Any() {
			out[k.Seg] = bm
		}
	}
	return out, nil
}

// Insert implements core.Engine: append to the branch's head segment,
// set its bit there, unset the previous copy's bit wherever it lives.
func (e *Engine) Insert(branch vgraph.BranchID, rec *record.Record) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.insertLocked(branch, rec)
}

// InsertBatch implements core.BatchInserter: one lock acquisition for
// the whole batch.
func (e *Engine) InsertBatch(branch vgraph.BranchID, recs []*record.Record) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	for _, rec := range recs {
		if err := e.insertLocked(branch, rec); err != nil {
			return err
		}
	}
	return nil
}

// writeHeadLocked returns the branch's head segment, rotating it
// through the shared store when a committed schema change has widened
// the branch's storage generation: the old head freezes into an
// internal segment (its pages are never rewritten) and a fresh head at
// the new layout takes subsequent appends — the same freeze machinery
// a branch point uses.
func (e *Engine) writeHeadLocked(branch vgraph.BranchID) (*hseg, error) {
	head, ok := e.headSeg[branch]
	if !ok {
		return nil, fmt.Errorf("hy: branch %d has no head segment", branch)
	}
	s := e.byID[head]
	id := e.nextID
	ns, rotated, err := e.st.WriteTarget(s.Segment, e.hist.NumPhysAt(e.env.BranchEpoch(branch)), true, e.segPath(id))
	if err != nil {
		return nil, err
	}
	if !rotated {
		return s, nil
	}
	hs := &hseg{Segment: ns, id: id, owner: branch, local: make(map[vgraph.BranchID]*bitmap.Bitmap)}
	e.segs = append(e.segs, hs)
	e.byID[id] = hs
	e.nextID = id + 1
	hs.local[branch] = bitmap.New(0)
	e.headSeg[branch] = hs.id
	return hs, e.persistLocked()
}

func (e *Engine) insertLocked(branch vgraph.BranchID, rec *record.Record) error {
	idx, ok := e.pk[branch]
	if !ok {
		return fmt.Errorf("hy: unknown branch %d", branch)
	}
	s, err := e.writeHeadLocked(branch)
	if err != nil {
		return err
	}
	head := s.id
	slot, err := e.st.Append(s.Segment, rec)
	if err != nil {
		return err
	}
	if old, ok := idx.get(rec.PK()); ok && old != deletedPos {
		if bm, ok := e.byID[old.Seg].local[branch]; ok {
			bm.Clear(int(old.Slot))
		}
	}
	bm := s.local[branch]
	if bm == nil {
		bm = bitmap.New(0)
		s.local[branch] = bm
	}
	bm.Set(int(slot))
	idx.set(rec.PK(), pos{Seg: head, Slot: slot})
	return nil
}

// Delete implements core.Engine.
func (e *Engine) Delete(branch vgraph.BranchID, pk int64) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	idx, ok := e.pk[branch]
	if !ok {
		return fmt.Errorf("hy: unknown branch %d", branch)
	}
	old, ok := idx.get(pk)
	if !ok || old == deletedPos {
		return nil
	}
	if bm, ok := e.byID[old.Seg].local[branch]; ok {
		bm.Clear(int(old.Slot))
	}
	idx.set(pk, deletedPos)
	return nil
}

// ScanBranch implements core.Engine (Query 1). Unlike tuple-first,
// only segments with records live in the branch are read (the global
// branch-segment relation).
func (e *Engine) ScanBranch(branch vgraph.BranchID, fn core.ScanFunc) error {
	return e.ScanBranchPushdown(branch, e.passSpec(e.env.BranchEpoch(branch)), fn)
}

// ScanCommit implements core.Engine.
func (e *Engine) ScanCommit(c *vgraph.Commit, fn core.ScanFunc) error {
	return e.ScanCommitPushdown(c, e.passSpec(c.SchemaVer), fn)
}

// ScanMulti implements core.Engine (Query 4): the global
// branch-segment relation selects the segments containing records live
// in any scanned branch; each is scanned once with membership computed
// from its small local bitmaps.
func (e *Engine) ScanMulti(branches []vgraph.BranchID, fn core.MultiScanFunc) error {
	return e.ScanMultiPushdown(branches, e.passSpec(e.env.MaxBranchEpoch(branches)), fn)
}

// Diff implements core.Engine (Query 2): per-segment bitmap XORs over
// only the segments live in either branch. It shares the pushdown diff
// loop through a match-all spec emitting under the newer of the two
// heads' schemas.
func (e *Engine) Diff(a, b vgraph.BranchID, fn core.DiffFunc) error {
	return e.ScanDiffPushdown(a, b, e.passSpec(e.env.MaxBranchEpoch([]vgraph.BranchID{a, b})), fn)
}

// SegmentStats implements core.SegmentStatser: one summary per
// segment, zone maps included.
func (e *Engine) SegmentStats() []store.SegmentStat {
	e.mu.Lock()
	defer e.mu.Unlock()
	out := make([]store.SegmentStat, 0, len(e.segs))
	for _, s := range e.segs {
		name := fmt.Sprintf("seg%d[owner=%d]", s.id, s.owner)
		if !s.Frozen {
			name += "*" // open head segment
		}
		out = append(out, s.Stat(name))
	}
	return out
}

// Stats implements core.Engine.
func (e *Engine) Stats() (core.Stats, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	st := core.Stats{SegmentCount: len(e.segs)}
	for _, s := range e.segs {
		st.Records += s.File.Count()
		st.DataBytes += s.File.SizeBytes()
		for _, bm := range s.local {
			st.IndexBytes += int64(bm.Len()+7) / 8
		}
	}
	for _, idx := range e.pk {
		st.IndexBytes += idx.bytes()
	}
	for _, b := range e.env.Graph.Branches() {
		for _, s := range e.segs {
			if bm, ok := s.local[b.ID]; ok {
				st.LiveRecords += int64(bm.Count())
			}
		}
	}
	for _, l := range e.logs {
		sz, err := l.Size()
		if err != nil {
			return st, err
		}
		st.CommitBytes += sz
	}
	return st, nil
}

// Flush implements core.Engine.
func (e *Engine) Flush() error {
	e.mu.Lock()
	defer e.mu.Unlock()
	for _, s := range e.segs {
		if err := s.File.Flush(); err != nil {
			return err
		}
	}
	return nil
}

// Close implements core.Engine.
func (e *Engine) Close() error {
	e.mu.Lock()
	defer e.mu.Unlock()
	var first error
	if err := e.persistLocked(); err != nil {
		first = err
	}
	for _, l := range e.logs {
		if err := l.Close(); err != nil && first == nil {
			first = err
		}
	}
	for _, s := range e.segs {
		if err := s.File.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}
