package hy

import (
	"testing"

	"decibel/internal/core"
	"decibel/internal/heap"
	"decibel/internal/record"
	"decibel/internal/vgraph"
)

func testEnv(t *testing.T) (*core.Env, *vgraph.Graph) {
	t.Helper()
	g, err := vgraph.New("")
	if err != nil {
		t.Fatal(err)
	}
	schema := record.MustSchema(
		record.Column{Name: "id", Type: record.Int64},
		record.Column{Name: "v", Type: record.Int64},
	)
	return &core.Env{
		Dir:    t.TempDir(),
		Schema: schema,
		Graph:  g,
		Pool:   heap.NewPool(16, 4096),
		Opt:    core.Options{PageSize: 4096, PoolPages: 16},
	}, g
}

func rec(s *record.Schema, pk, v int64) *record.Record {
	r := record.New(s)
	r.SetPK(pk)
	r.Set(1, v)
	return r
}

func TestPKIndexPosFork(t *testing.T) {
	p := newPKIndex()
	p.set(1, pos{Seg: 2, Slot: 5})
	a, b := p.fork()
	a.set(1, pos{Seg: 3, Slot: 0})
	if got := b.live(1); got != (pos{Seg: 2, Slot: 5}) {
		t.Fatalf("sibling sees %v", got)
	}
	if got := a.live(1); got != (pos{Seg: 3, Slot: 0}) {
		t.Fatalf("overlay lost write: %v", got)
	}
	a.set(1, deletedPos)
	if a.live(1) != deletedPos {
		t.Fatal("delete marker not live-resolved")
	}
	if b.live(99) != deletedPos {
		t.Fatal("missing key not deletedPos")
	}
	if p.bytes() <= 0 || a.bytes() <= p.bytes() {
		t.Fatal("bytes accounting wrong")
	}
}

// TestSegmentLifecycle checks the branch operation's segment dance:
// the parent's head freezes into an internal segment and both branches
// get fresh heads (Section 3.4).
func TestSegmentLifecycle(t *testing.T) {
	env, g := testEnv(t)
	eng, err := Factory(env)
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	e := eng.(*Engine)
	master, c0, _ := g.Init("init")
	if err := e.Init(master, c0); err != nil {
		t.Fatal(err)
	}
	if len(e.segs) != 1 {
		t.Fatalf("segments after init = %d", len(e.segs))
	}
	oldHead := e.headSeg[master.ID]

	e.Insert(master.ID, rec(env.Schema, 1, 1))
	c1, _ := g.NewCommit(master.ID, "c1")
	e.Commit(c1)

	child, _ := g.NewBranch("dev", c1.ID)
	if err := e.Branch(child, c1); err != nil {
		t.Fatal(err)
	}
	// Three segments now: frozen old head + two fresh heads.
	if len(e.segs) != 3 {
		t.Fatalf("segments after branch = %d", len(e.segs))
	}
	if !e.segs[oldHead].Frozen {
		t.Fatal("old parent head not frozen")
	}
	if e.headSeg[master.ID] == oldHead || e.headSeg[child.ID] == oldHead {
		t.Fatal("head segments not replaced")
	}
	if e.headSeg[master.ID] == e.headSeg[child.ID] {
		t.Fatal("parent and child share a head segment")
	}
	// The frozen segment's bitmap carries both branches.
	s := e.segs[oldHead]
	if s.local[master.ID] == nil || s.local[child.ID] == nil {
		t.Fatal("internal segment missing a branch bitmap")
	}
	// Appends to the frozen file fail; inserts route to the new heads.
	if _, err := s.File.Append(rec(env.Schema, 9, 9).Bytes()); err == nil {
		t.Fatal("append to frozen segment succeeded")
	}
	if err := e.Insert(master.ID, rec(env.Schema, 2, 2)); err != nil {
		t.Fatal(err)
	}
	if e.segs[e.headSeg[master.ID]].File.Count() != 1 {
		t.Fatal("insert did not land in the new head segment")
	}
}

// TestBranchSegmentSkipping verifies the global branch-segment relation
// lets scans skip segments without live records.
func TestBranchSegmentSkipping(t *testing.T) {
	env, g := testEnv(t)
	eng, _ := Factory(env)
	defer eng.Close()
	e := eng.(*Engine)
	master, c0, _ := g.Init("init")
	e.Init(master, c0)
	e.Insert(master.ID, rec(env.Schema, 1, 1))
	c1, _ := g.NewCommit(master.ID, "c1")
	e.Commit(c1)
	dev, _ := g.NewBranch("dev", c1.ID)
	e.Branch(dev, c1)
	// dev deletes the only record: no segment holds live dev records.
	e.Delete(dev.ID, 1)
	if segs := e.branchSegmentsLocked(dev.ID); len(segs) != 0 {
		t.Fatalf("dev still maps to %d segments", len(segs))
	}
	// master unaffected: one segment with its record.
	if segs := e.branchSegmentsLocked(master.ID); len(segs) != 1 {
		t.Fatalf("master maps to %d segments", len(segs))
	}
}

// TestCheckoutStartSeq verifies per-(branch, segment) history files
// start at the right commit seq and checkouts reconstruct per-segment
// bitmaps for any commit.
func TestCheckoutStartSeq(t *testing.T) {
	env, g := testEnv(t)
	eng, _ := Factory(env)
	defer eng.Close()
	e := eng.(*Engine)
	master, c0, _ := g.Init("init")
	e.Init(master, c0)

	e.Insert(master.ID, rec(env.Schema, 1, 1))
	c1, _ := g.NewCommit(master.ID, "c1")
	e.Commit(c1)

	// Branch: master gets a new head segment whose history starts at
	// the *next* master commit.
	dev, _ := g.NewBranch("dev", c1.ID)
	e.Branch(dev, c1)
	e.Insert(master.ID, rec(env.Schema, 2, 2))
	c2, _ := g.NewCommit(master.ID, "c2")
	e.Commit(c2)

	newHead := e.headSeg[master.ID]
	k := logKey{Branch: master.ID, Seg: newHead}
	if start, ok := e.startSeq[k]; !ok || start != c2.Seq {
		t.Fatalf("new head history startSeq = %d, want %d", start, c2.Seq)
	}
	// Checkout at c1: only the original segment contributes.
	snap, err := e.checkoutLocked(master.ID, c1.Seq)
	if err != nil {
		t.Fatal(err)
	}
	if len(snap) != 1 {
		t.Fatalf("c1 snapshot spans %d segments", len(snap))
	}
	// Checkout at c2: both.
	snap, err = e.checkoutLocked(master.ID, c2.Seq)
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for _, bm := range snap {
		total += bm.Count()
	}
	if len(snap) != 2 || total != 2 {
		t.Fatalf("c2 snapshot: %d segments, %d live", len(snap), total)
	}
}

// TestMergeAdoptsIntoForeignSegment checks that adopting the other
// branch's record marks it live in the other branch's segment under
// the merged branch's bitmap ("creating new bitmaps for the child
// within a segment if necessary").
func TestMergeAdoptsIntoForeignSegment(t *testing.T) {
	env, g := testEnv(t)
	eng, _ := Factory(env)
	defer eng.Close()
	e := eng.(*Engine)
	master, c0, _ := g.Init("init")
	e.Init(master, c0)
	c1, _ := g.NewCommit(master.ID, "c1")
	e.Commit(c1)
	dev, _ := g.NewBranch("dev", c1.ID)
	e.Branch(dev, c1)
	e.Insert(dev.ID, rec(env.Schema, 7, 70))
	c2, _ := g.NewCommit(dev.ID, "dev c")
	e.Commit(c2)

	devSeg := e.headSeg[dev.ID]
	mc, _ := g.NewMergeCommit(master.ID, dev.ID, "merge", true)
	if _, err := e.Merge(master.ID, dev.ID, mc, core.ThreeWay); err != nil {
		t.Fatal(err)
	}
	bm := e.segs[devSeg].local[master.ID]
	if bm == nil || bm.Count() != 1 {
		t.Fatal("master bitmap missing in dev's segment after merge")
	}
	// The record is now visible in master without copying it.
	n := 0
	e.ScanBranch(master.ID, func(r *record.Record) bool { n++; return true })
	if n != 1 {
		t.Fatalf("master sees %d records", n)
	}
	st, _ := e.Stats()
	if st.Records != 1 {
		t.Fatalf("merge copied records: %d stored", st.Records)
	}
}
