package hy

import (
	"decibel/internal/bitmap"
	"decibel/internal/core"
	"decibel/internal/record"
	"decibel/internal/store"
	"decibel/internal/vgraph"
)

// Pushdown scans (core.PushdownScanner, core.DiffScanner,
// core.ParallelScanner). Hybrid keeps per-(segment, branch) bitmaps,
// so pushed-down predicates are evaluated on the raw segment page
// buffer before records are materialized, and a multi-branch scan ORs
// each segment's local branch bitmaps into one union per segment —
// each qualifying segment is read once for all requested branches
// instead of once per branch. Segments are skipped entirely two ways:
// via the global branch-segment relation (no live record in any
// requested branch) and via their zone maps (no stored value can
// satisfy the spec's bounds).
//
// Every scan shape is partitioned into one core.ScanUnit per segment
// (PartitionScan), with the liveness bitmaps snapshotted under the
// engine lock; the sequential entry points drive the same units via
// core.RunUnitsSequential, so the parallel executor and the sequential
// scans share one loop body.

var (
	_ core.PushdownScanner = (*Engine)(nil)
	_ core.DiffScanner     = (*Engine)(nil)
	_ core.BatchInserter   = (*Engine)(nil)
	_ core.PKLookupScanner = (*Engine)(nil)
	_ core.ParallelScanner = (*Engine)(nil)
)

// LookupPKPushdown implements core.PKLookupScanner: a branch-head read
// of one primary key answered from the per-branch pk index instead of
// the segment walk. The index maps the key to its live (segment, slot)
// position; the spec's full predicate and projection run on that one
// record, so the result is identical to the scan it replaces.
func (e *Engine) LookupPKPushdown(branch vgraph.BranchID, pk int64, spec *core.ScanSpec, fn core.ScanFunc) (bool, error) {
	e.mu.Lock()
	idx, ok := e.pk[branch]
	if !ok {
		e.mu.Unlock()
		return false, nil
	}
	p := idx.live(pk)
	if p == deletedPos {
		e.mu.Unlock()
		return true, nil // served: the key is not live in this branch
	}
	s := e.byID[p.Seg]
	buf := make([]byte, s.Schema.RecordSize())
	if err := s.File.Read(p.Slot, buf); err != nil {
		e.mu.Unlock()
		return false, err
	}
	prep, err := spec.Prep(s.Cols)
	if err != nil {
		e.mu.Unlock()
		return false, err
	}
	if prep != nil {
		buf = prep(buf)
	}
	rec, err := spec.Apply(buf)
	e.mu.Unlock()
	if err != nil {
		return false, err
	}
	if rec != nil {
		fn(rec)
	}
	return true, nil
}

// passSpec is the match-all, project-nothing spec the plain Scan*
// entry points delegate through, so the engine has exactly one copy of
// each scan loop. epoch selects the schema version records are emitted
// under.
func (e *Engine) passSpec(epoch int) *core.ScanSpec {
	sp, err := core.NewScanSpecAt(e.hist, epoch, nil, nil)
	if err != nil {
		panic(err) // no projection: cannot fail
	}
	return sp
}

// segUnit builds the scan unit of one segment: zone-map pruning, spec
// prep for the segment's layout, then a live-page walk with the spec
// evaluated on the raw buffer before materialization. bm was
// snapshotted under the engine lock; aux derives the per-record
// annotation from the slot.
func segUnit(s *hseg, bm *bitmap.Bitmap, aux func(slot int64) core.UnitAux) core.ScanUnit {
	return core.ScanUnit{
		Frozen:   s.Frozen,
		Zone:     s.Zone(),
		PhysCols: s.Cols,
		Run: func(spec *core.ScanSpec, fn core.UnitFunc) error {
			if bm == nil || !bm.Any() {
				return nil
			}
			if spec.SkipSegment(s.Zone(), s.Cols) {
				return nil
			}
			prep, err := spec.Prep(s.Cols)
			if err != nil {
				return err
			}
			var ferr error
			err = s.File.ScanLive(bm, func(slot int64, buf []byte) bool {
				if !bm.Get(int(slot)) {
					return true
				}
				if prep != nil {
					buf = prep(buf)
				}
				rec, err := spec.Apply(buf)
				if err != nil {
					ferr = err
					return false
				}
				if rec == nil {
					return true
				}
				return fn(rec, aux(slot))
			})
			if err == nil {
				err = ferr
			}
			return err
		},
	}
}

func noAux(int64) core.UnitAux { return core.UnitAux{} }

// pinGroup tracks the segments a partition references: each is pinned
// under the engine lock at partition time, and the release func hands
// the pins back once the scan's units have all finished, letting a
// concurrent compaction retire replaced files only after every
// in-flight reader drains.
type pinGroup struct {
	pinned []*store.Segment
}

func (g *pinGroup) pin(s *hseg) {
	if s == nil {
		return
	}
	s.Segment.Pin()
	g.pinned = append(g.pinned, s.Segment)
}

func (g *pinGroup) release() {
	for _, sg := range g.pinned {
		sg.Unpin()
	}
}

// PartitionScan implements core.ParallelScanner: one unit per segment
// holding live records of the request, in the order the sequential
// scans visit them, with all shared state (bitmaps, checkout
// snapshots) captured under the engine lock at partition time. Every
// segment a unit references is pinned until release is called.
func (e *Engine) PartitionScan(req core.ScanRequest) ([]core.ScanUnit, func(), error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	g := &pinGroup{}
	switch req.Kind {
	case core.ScanKindBranch:
		segs := e.branchSegmentsLocked(req.Branch)
		units := make([]core.ScanUnit, 0, len(segs))
		for _, s := range segs {
			g.pin(s)
			units = append(units, segUnit(s, s.local[req.Branch].Clone(), noAux))
		}
		return units, g.release, nil

	case core.ScanKindCommit:
		snap, err := e.checkoutLocked(req.Commit.Branch, req.Commit.Seq)
		if err != nil {
			return nil, nil, err
		}
		// Visit in segment-table order, the scan order every other shape
		// uses (ids alone no longer encode it after a compaction merge).
		units := make([]core.ScanUnit, 0, len(snap))
		for _, s := range e.segs {
			bm, ok := snap[s.id]
			if !ok {
				continue
			}
			g.pin(s)
			units = append(units, segUnit(s, bm, noAux))
		}
		return units, g.release, nil

	case core.ScanKindDiff:
		var units []core.ScanUnit
		for _, s := range e.segs {
			if s == nil {
				continue
			}
			colA, okA := s.local[req.A]
			colB, okB := s.local[req.B]
			if !okA && !okB {
				continue
			}
			if colA == nil {
				colA = bitmap.New(0)
			}
			if colB == nil {
				colB = bitmap.New(0)
			}
			x := bitmap.Xor(colA, colB)
			if !x.Any() {
				continue
			}
			inA := colA.Clone()
			g.pin(s)
			units = append(units, segUnit(s, x, func(slot int64) core.UnitAux {
				return core.UnitAux{InA: inA.Get(int(slot))}
			}))
		}
		return units, g.release, nil

	case core.ScanKindMulti:
		var units []core.ScanUnit
		for _, s := range e.segs {
			if s == nil {
				continue
			}
			cols := make([]*bitmap.Bitmap, len(req.Branches))
			union := bitmap.New(0)
			any := false
			for i, b := range req.Branches {
				if bm, ok := s.local[b]; ok && bm.Any() {
					cols[i] = bm.Clone()
					union.Or(cols[i])
					any = true
				}
			}
			if !any {
				continue
			}
			// member is per-unit scratch: each parallel worker owns its
			// unit's bitmap, and consumers clone what they retain.
			member := bitmap.New(len(req.Branches))
			g.pin(s)
			units = append(units, segUnit(s, union, func(slot int64) core.UnitAux {
				for i, col := range cols {
					member.SetTo(i, col != nil && col.Get(int(slot)))
				}
				return core.UnitAux{Member: member}
			}))
		}
		return units, g.release, nil
	}
	return nil, g.release, nil
}

// ScanBranchPushdown implements core.PushdownScanner.
func (e *Engine) ScanBranchPushdown(branch vgraph.BranchID, spec *core.ScanSpec, fn core.ScanFunc) error {
	units, release, err := e.PartitionScan(core.ScanRequest{Kind: core.ScanKindBranch, Branch: branch})
	if err != nil {
		return err
	}
	defer release()
	return core.RunUnitsSequential(units, spec, func(rec *record.Record, _ core.UnitAux) bool { return fn(rec) })
}

// ScanCommitPushdown implements core.PushdownScanner.
func (e *Engine) ScanCommitPushdown(c *vgraph.Commit, spec *core.ScanSpec, fn core.ScanFunc) error {
	units, release, err := e.PartitionScan(core.ScanRequest{Kind: core.ScanKindCommit, Commit: c})
	if err != nil {
		return err
	}
	defer release()
	return core.RunUnitsSequential(units, spec, func(rec *record.Record, _ core.UnitAux) bool { return fn(rec) })
}

// ScanDiffPushdown implements core.DiffScanner: per-segment bitmap
// XORs over only the segments live in either branch, with zone-map
// pruning and the spec evaluated on the raw buffer before either
// output side materializes a record.
func (e *Engine) ScanDiffPushdown(a, b vgraph.BranchID, spec *core.ScanSpec, fn core.DiffFunc) error {
	units, release, err := e.PartitionScan(core.ScanRequest{Kind: core.ScanKindDiff, A: a, B: b})
	if err != nil {
		return err
	}
	defer release()
	return core.RunUnitsSequential(units, spec, func(rec *record.Record, aux core.UnitAux) bool { return fn(rec, aux.InA) })
}

// ScanMultiPushdown implements core.PushdownScanner: one pass per
// qualifying segment under the union of its local branch bitmaps.
func (e *Engine) ScanMultiPushdown(branches []vgraph.BranchID, spec *core.ScanSpec, fn core.MultiScanFunc) error {
	units, release, err := e.PartitionScan(core.ScanRequest{Kind: core.ScanKindMulti, Branches: branches})
	if err != nil {
		return err
	}
	defer release()
	return core.RunUnitsSequential(units, spec, func(rec *record.Record, aux core.UnitAux) bool { return fn(rec, aux.Member) })
}
