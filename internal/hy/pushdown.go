package hy

import (
	"sort"

	"decibel/internal/bitmap"
	"decibel/internal/core"
	"decibel/internal/vgraph"
)

// Pushdown scans (core.PushdownScanner, core.DiffScanner). Hybrid
// keeps per-(segment, branch) bitmaps, so pushed-down predicates are
// evaluated on the raw segment page buffer before records are
// materialized, and a multi-branch scan ORs each segment's local
// branch bitmaps into one union per segment — each qualifying segment
// is read once for all requested branches instead of once per branch.
// Segments are skipped entirely two ways: via the global branch-
// segment relation (no live record in any requested branch) and via
// their zone maps (no stored value can satisfy the spec's bounds).

var (
	_ core.PushdownScanner = (*Engine)(nil)
	_ core.DiffScanner     = (*Engine)(nil)
	_ core.BatchInserter   = (*Engine)(nil)
	_ core.PKLookupScanner = (*Engine)(nil)
)

// LookupPKPushdown implements core.PKLookupScanner: a branch-head read
// of one primary key answered from the per-branch pk index instead of
// the segment walk. The index maps the key to its live (segment, slot)
// position; the spec's full predicate and projection run on that one
// record, so the result is identical to the scan it replaces.
func (e *Engine) LookupPKPushdown(branch vgraph.BranchID, pk int64, spec *core.ScanSpec, fn core.ScanFunc) (bool, error) {
	e.mu.Lock()
	idx, ok := e.pk[branch]
	if !ok {
		e.mu.Unlock()
		return false, nil
	}
	p := idx.live(pk)
	if p == deletedPos {
		e.mu.Unlock()
		return true, nil // served: the key is not live in this branch
	}
	s := e.segs[p.Seg]
	buf := make([]byte, s.Schema.RecordSize())
	if err := s.File.Read(p.Slot, buf); err != nil {
		e.mu.Unlock()
		return false, err
	}
	prep, err := spec.Prep(s.Cols)
	if err != nil {
		e.mu.Unlock()
		return false, err
	}
	if prep != nil {
		buf = prep(buf)
	}
	rec, err := spec.Apply(buf)
	e.mu.Unlock()
	if err != nil {
		return false, err
	}
	if rec != nil {
		fn(rec)
	}
	return true, nil
}

// passSpec is the match-all, project-nothing spec the plain Scan*
// entry points delegate through, so the engine has exactly one copy of
// each scan loop. epoch selects the schema version records are emitted
// under.
func (e *Engine) passSpec(epoch int) *core.ScanSpec {
	sp, err := core.NewScanSpecAt(e.hist, epoch, nil, nil)
	if err != nil {
		panic(err) // no projection: cannot fail
	}
	return sp
}

// scanSegmentsSpec is scanSegments with the spec evaluated on the raw
// buffer before materialization. Buffers from segments older than the
// spec's schema epoch are widened (defaults filled) first.
func (e *Engine) scanSegmentsSpec(segs []*hseg, pick func(*hseg) *bitmap.Bitmap, spec *core.ScanSpec, fn core.ScanFunc) error {
	var ferr error
	for _, s := range segs {
		bm := pick(s)
		if bm == nil || !bm.Any() {
			continue
		}
		if spec.SkipSegment(s.Zone(), s.Cols) {
			continue
		}
		prep, err := spec.Prep(s.Cols)
		if err != nil {
			return err
		}
		stop := false
		err = s.File.ScanLive(bm, func(slot int64, buf []byte) bool {
			if !bm.Get(int(slot)) {
				return true
			}
			if prep != nil {
				buf = prep(buf)
			}
			rec, err := spec.Apply(buf)
			if err != nil {
				ferr = err
				return false
			}
			if rec == nil {
				return true
			}
			if !fn(rec) {
				stop = true
				return false
			}
			return true
		})
		if err == nil {
			err = ferr
		}
		if err != nil {
			return err
		}
		if stop {
			return nil
		}
	}
	return nil
}

// ScanBranchPushdown implements core.PushdownScanner.
func (e *Engine) ScanBranchPushdown(branch vgraph.BranchID, spec *core.ScanSpec, fn core.ScanFunc) error {
	e.mu.Lock()
	segs := e.branchSegmentsLocked(branch)
	pickers := make(map[segID]*bitmap.Bitmap, len(segs))
	for _, s := range segs {
		pickers[s.id] = s.local[branch].Clone()
	}
	e.mu.Unlock()
	return e.scanSegmentsSpec(segs, func(s *hseg) *bitmap.Bitmap { return pickers[s.id] }, spec, fn)
}

// ScanCommitPushdown implements core.PushdownScanner.
func (e *Engine) ScanCommitPushdown(c *vgraph.Commit, spec *core.ScanSpec, fn core.ScanFunc) error {
	e.mu.Lock()
	snap, err := e.checkoutLocked(c.Branch, c.Seq)
	if err != nil {
		e.mu.Unlock()
		return err
	}
	var segs []*hseg
	for id := range snap {
		segs = append(segs, e.segs[id])
	}
	sort.Slice(segs, func(i, j int) bool { return segs[i].id < segs[j].id })
	e.mu.Unlock()
	return e.scanSegmentsSpec(segs, func(s *hseg) *bitmap.Bitmap { return snap[s.id] }, spec, fn)
}

// ScanDiffPushdown implements core.DiffScanner: per-segment bitmap
// XORs over only the segments live in either branch, with zone-map
// pruning and the spec evaluated on the raw buffer before either
// output side materializes a record.
func (e *Engine) ScanDiffPushdown(a, b vgraph.BranchID, spec *core.ScanSpec, fn core.DiffFunc) error {
	e.mu.Lock()
	type segDiff struct {
		s       *hseg
		x, colA *bitmap.Bitmap
	}
	var diffs []segDiff
	for _, s := range e.segs {
		colA, okA := s.local[a]
		colB, okB := s.local[b]
		if !okA && !okB {
			continue
		}
		if colA == nil {
			colA = bitmap.New(0)
		}
		if colB == nil {
			colB = bitmap.New(0)
		}
		x := bitmap.Xor(colA, colB)
		if !x.Any() {
			continue
		}
		diffs = append(diffs, segDiff{s: s, x: x, colA: colA.Clone()})
	}
	e.mu.Unlock()

	for _, d := range diffs {
		if spec.SkipSegment(d.s.Zone(), d.s.Cols) {
			continue
		}
		prep, err := spec.Prep(d.s.Cols)
		if err != nil {
			return err
		}
		stop := false
		var ferr error
		err = d.s.File.ScanLive(d.x, func(slot int64, buf []byte) bool {
			if !d.x.Get(int(slot)) {
				return true
			}
			if prep != nil {
				buf = prep(buf)
			}
			rec, err := spec.Apply(buf)
			if err != nil {
				ferr = err
				return false
			}
			if rec == nil {
				return true
			}
			if !fn(rec, d.colA.Get(int(slot))) {
				stop = true
				return false
			}
			return true
		})
		if err == nil {
			err = ferr
		}
		if err != nil {
			return err
		}
		if stop {
			return nil
		}
	}
	return nil
}

// ScanMultiPushdown implements core.PushdownScanner: one pass per
// qualifying segment under the union of its local branch bitmaps.
func (e *Engine) ScanMultiPushdown(branches []vgraph.BranchID, spec *core.ScanSpec, fn core.MultiScanFunc) error {
	e.mu.Lock()
	type segScan struct {
		s     *hseg
		cols  []*bitmap.Bitmap // per requested branch, nil if absent
		union *bitmap.Bitmap
	}
	var scans []segScan
	for _, s := range e.segs {
		sc := segScan{s: s, cols: make([]*bitmap.Bitmap, len(branches)), union: bitmap.New(0)}
		any := false
		for i, b := range branches {
			if bm, ok := s.local[b]; ok && bm.Any() {
				sc.cols[i] = bm.Clone()
				sc.union.Or(sc.cols[i])
				any = true
			}
		}
		if any {
			scans = append(scans, sc)
		}
	}
	e.mu.Unlock()

	member := bitmap.New(len(branches))
	var ferr error
	for _, sc := range scans {
		if spec.SkipSegment(sc.s.Zone(), sc.s.Cols) {
			continue
		}
		prep, err := spec.Prep(sc.s.Cols)
		if err != nil {
			return err
		}
		stop := false
		err = sc.s.File.ScanLive(sc.union, func(slot int64, buf []byte) bool {
			if !sc.union.Get(int(slot)) {
				return true
			}
			if prep != nil {
				buf = prep(buf)
			}
			rec, err := spec.Apply(buf)
			if err != nil {
				ferr = err
				return false
			}
			if rec == nil {
				return true
			}
			for i, col := range sc.cols {
				member.SetTo(i, col != nil && col.Get(int(slot)))
			}
			if !fn(rec, member) {
				stop = true
				return false
			}
			return true
		})
		if err == nil {
			err = ferr
		}
		if err != nil {
			return err
		}
		if stop {
			return nil
		}
	}
	return nil
}
