package hy

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"decibel/internal/bitmap"
	"decibel/internal/compact"
	"decibel/internal/core"
	"decibel/internal/store"
	"decibel/internal/vgraph"
)

var _ core.Compactor = (*Engine)(nil)

// segFilePath returns the data file of a segment under the given
// encoding: seg<id>.dat for heap files (the legacy name, so existing
// datasets open unchanged), seg<id>.dcz for compressed ones.
func (e *Engine) segFilePath(id segID, enc string) string {
	if enc == store.EncDCZ {
		return filepath.Join(e.env.Dir, fmt.Sprintf("seg%d.dcz", id))
	}
	return e.segPath(id)
}

// CompactSegments implements core.Compactor for the hybrid scheme, the
// only engine whose layout permits physical merging: liveness lives in
// per-(segment, branch) bitmaps and per-(branch, segment) commit logs,
// both of which can be remapped to new slots, so runs of small frozen
// segments collapse into one larger compressed segment, dropping rows
// no bitmap or recorded commit can reach. Remaining frozen heap
// segments are then re-encoded to compressed pages in place (slot
// numbering preserved, so no index or log changes).
func (e *Engine) CompactSegments(opt compact.Options) (compact.Stats, error) {
	opt = opt.Defaults()
	var st compact.Stats
	if opt.Mode == compact.ModeOff {
		return st, nil
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	for {
		run := e.findRunLocked(opt)
		if run == nil {
			break
		}
		if err := e.mergeRunLocked(run, opt, &st); err != nil {
			return st, err
		}
	}
	if opt.Compress {
		if err := e.compressLocked(opt, &st); err != nil {
			return st, err
		}
	}
	return st, nil
}

// findRunLocked returns the first run of at least MinRun consecutive
// (in scan order) frozen, heap-encoded, small, non-head segments with
// the same physical layout — the unit one merge collapses. Merged
// output is compressed (EncDCZ), so a produced segment never qualifies
// again and the caller's loop terminates.
func (e *Engine) findRunLocked(opt compact.Options) []*hseg {
	heads := make(map[segID]bool, len(e.headSeg))
	for _, id := range e.headSeg {
		heads[id] = true
	}
	var run []*hseg
	for _, s := range e.segs {
		ok := s.Frozen && !heads[s.id] && s.Encoding != store.EncDCZ &&
			s.File.Count() < opt.SmallRows &&
			(len(run) == 0 || run[0].Cols == s.Cols)
		if ok {
			run = append(run, s)
			continue
		}
		if len(run) >= opt.MinRun {
			return run
		}
		run = run[:0]
		// s itself may start the next run.
		if s.Frozen && !heads[s.id] && s.Encoding != store.EncDCZ && s.File.Count() < opt.SmallRows {
			run = append(run, s)
		}
	}
	if len(run) >= opt.MinRun {
		return run
	}
	return nil
}

// mergeRunLocked folds one run into a single compressed segment under
// a fresh id placed at the run's position in the segment table, so
// every scan shape visits the surviving rows in exactly the order it
// did before.
//
// A row survives if any branch's local bitmap has its bit set or any
// recorded commit's snapshot (any entry of any (branch, segment) log
// on a run member) includes it; everything else is tombstone debris no
// read can reach. Per-branch logs of the run members are rewritten
// into one log against the merged segment — entry seq s holds the
// union of the members' seq-s snapshots with slots remapped — which
// preserves every historical checkout bit-for-bit.
//
// Crash safety: the merged data file and the rewritten logs are
// written and fsynced first (FailAfterTemp aborts here, leaving them
// as orphans the next open sweeps), the catalog rename commits the
// swap, and only then are the replaced files unlinked (FailBeforeUnlink
// returns first, leaving old-file orphans) — data files deferred until
// their pinned readers drain.
func (e *Engine) mergeRunLocked(run []*hseg, opt compact.Options, st *compact.Stats) error {
	inRun := make(map[segID]bool, len(run))
	for _, s := range run {
		inRun[s.id] = true
	}

	// Keep-set per member: bits reachable from any branch head or any
	// recorded commit.
	keep := make(map[segID]*bitmap.Bitmap, len(run))
	for _, s := range run {
		u := bitmap.New(0)
		for _, bm := range s.local {
			u.Or(bm)
		}
		keep[s.id] = u
	}
	for k := range e.startSeq {
		if !inRun[k.Seg] {
			continue
		}
		l, err := e.openLog(k)
		if err != nil {
			return err
		}
		for i := 0; i < l.NumCommits(); i++ {
			bm, err := l.Checkout(i)
			if err != nil {
				return err
			}
			keep[k.Seg].Or(bm)
		}
	}

	// Write the merged segment: surviving rows in scan order (member
	// order, slot order), slots remapped densely.
	newID := e.nextID
	cols := run[0].Cols
	schema := run[0].Schema
	w := store.NewCompressedWriter(schema, run[0].File.PerPage())
	zone := store.NewZoneMap(schema.NumColumns())
	remap := make(map[pos]pos)
	var next int64
	var dropped int64
	for _, s := range run {
		count := s.File.Count()
		k := keep[s.id]
		buf := make([]byte, schema.RecordSize())
		for slot := int64(0); slot < count; slot++ {
			if !k.Get(int(slot)) {
				dropped++
				continue
			}
			if err := s.File.Read(slot, buf); err != nil {
				return err
			}
			if err := w.Append(buf); err != nil {
				return err
			}
			zone.Update(schema, buf)
			remap[pos{Seg: s.id, Slot: slot}] = pos{Seg: newID, Slot: next}
			next++
		}
	}
	newPath := e.segFilePath(newID, store.EncDCZ)
	if err := w.WriteFile(newPath); err != nil {
		return err
	}
	ns, err := e.st.Open(newPath, store.SegMeta{Cols: cols, Frozen: true, Encoding: store.EncDCZ, Zone: zone}, -1)
	if err != nil {
		os.Remove(newPath)
		return err
	}
	abortSeg := func() {
		ns.File.Close()
		os.Remove(newPath)
	}

	// Rewrite each branch's member logs into one log against the merged
	// segment. Member logs for one branch all end at the branch's last
	// commit (commitLocked appends to every local's log on every
	// commit), so the union over [min start, last] has no gaps and the
	// per-commit density invariant carries over.
	type logRange struct {
		start, end int // commit seqs [start, end)
	}
	ranges := make(map[vgraph.BranchID]logRange)
	for k, start := range e.startSeq {
		if !inRun[k.Seg] {
			continue
		}
		l, err := e.openLog(k)
		if err != nil {
			return err
		}
		r, ok := ranges[k.Branch]
		if !ok {
			r = logRange{start: start, end: start + l.NumCommits()}
		} else {
			if start < r.start {
				r.start = start
			}
			if end := start + l.NumCommits(); end > r.end {
				r.end = end
			}
		}
		ranges[k.Branch] = r
	}
	newLogs := make(map[vgraph.BranchID]*bitmap.CommitLog, len(ranges))
	abortLogs := func() {
		for b, l := range newLogs {
			l.Close()
			os.Remove(e.logPath(logKey{Branch: b, Seg: newID}))
		}
	}
	for b, r := range ranges {
		path := e.logPath(logKey{Branch: b, Seg: newID})
		os.Remove(path) // debris from an earlier crashed merge
		nl, err := bitmap.OpenCommitLog(path, e.env.Opt.CommitFanout)
		if err != nil {
			abortLogs()
			abortSeg()
			return err
		}
		newLogs[b] = nl
		for seq := r.start; seq < r.end; seq++ {
			union := bitmap.New(0)
			for _, s := range run {
				k := logKey{Branch: b, Seg: s.id}
				start, ok := e.startSeq[k]
				if !ok || seq < start {
					continue
				}
				l, err := e.openLog(k)
				if err != nil {
					abortLogs()
					abortSeg()
					return err
				}
				if seq-start >= l.NumCommits() {
					continue
				}
				bm, err := l.Checkout(seq - start)
				if err != nil {
					abortLogs()
					abortSeg()
					return err
				}
				var ferr error
				bm.ForEach(func(slot int) bool {
					np, ok := remap[pos{Seg: s.id, Slot: int64(slot)}]
					if !ok {
						ferr = fmt.Errorf("hy: merge: committed slot %d of segment %d outside keep set", slot, s.id)
						return false
					}
					union.Set(int(np.Slot))
					return true
				})
				if ferr != nil {
					abortLogs()
					abortSeg()
					return ferr
				}
			}
			if _, err := nl.Append(union); err != nil {
				abortLogs()
				abortSeg()
				return err
			}
		}
		if err := nl.Sync(); err != nil {
			abortLogs()
			abortSeg()
			return err
		}
	}
	if opt.FailPoint == compact.FailAfterTemp {
		// Simulate a crash after the new files hit disk but before the
		// catalog swap: merged file and rewritten logs stay as orphans.
		for _, l := range newLogs {
			l.Close()
		}
		ns.File.Close()
		return compact.FailPointErr(opt.FailPoint)
	}

	// Build the merged in-memory segment: local bitmaps remapped, one
	// entry for every branch any member tracked (even if now empty) so
	// the commit path keeps appending to the rewritten log.
	nhs := &hseg{Segment: ns, id: newID, owner: run[0].owner, local: make(map[vgraph.BranchID]*bitmap.Bitmap)}
	for _, s := range run {
		for b, bm := range s.local {
			u := nhs.local[b]
			if u == nil {
				u = bitmap.New(0)
				nhs.local[b] = u
			}
			bm.ForEach(func(slot int) bool {
				if np, ok := remap[pos{Seg: s.id, Slot: int64(slot)}]; ok {
					u.Set(int(np.Slot))
				}
				return true
			})
		}
	}

	// Swap copy-on-write — in-flight scans hold the old slice — with the
	// merged segment at the run's first position, then persist: the
	// catalog rename is the commit point. On persist failure everything
	// reverts and the new files are removed.
	prevSegs := e.segs
	segs := make([]*hseg, 0, len(e.segs)-len(run)+1)
	for _, s := range e.segs {
		if inRun[s.id] {
			if s == run[0] {
				segs = append(segs, nhs)
			}
			continue
		}
		segs = append(segs, s)
	}
	e.segs = segs
	e.byID[newID] = nhs
	for _, s := range run {
		delete(e.byID, s.id)
	}
	prevNext := e.nextID
	e.nextID = newID + 1
	removedSeq := make(map[logKey]int)
	for k, start := range e.startSeq {
		if inRun[k.Seg] {
			removedSeq[k] = start
			delete(e.startSeq, k)
		}
	}
	for b, r := range ranges {
		e.startSeq[logKey{Branch: b, Seg: newID}] = r.start
	}
	if err := e.persistLocked(); err != nil {
		e.segs = prevSegs
		delete(e.byID, newID)
		for _, s := range run {
			e.byID[s.id] = s
		}
		e.nextID = prevNext
		for b := range ranges {
			delete(e.startSeq, logKey{Branch: b, Seg: newID})
		}
		for k, start := range removedSeq {
			e.startSeq[k] = start
		}
		abortLogs()
		abortSeg()
		return err
	}

	// Committed. Point the open-log cache at the rewritten logs, remap
	// the pk indexes (deduping shared overlay-chain nodes), count the
	// pass, and retire the replaced files.
	var oldLogs []logKey
	for k := range removedSeq {
		if l, ok := e.logs[k]; ok {
			l.Close()
			delete(e.logs, k)
		}
		oldLogs = append(oldLogs, k)
	}
	for b, l := range newLogs {
		e.logs[logKey{Branch: b, Seg: newID}] = l
	}
	seen := make(map[*pkIndex]bool)
	for _, idx := range e.pk {
		for q := idx; q != nil && !seen[q]; q = q.parent {
			seen[q] = true
			for pk, p := range q.m {
				if !inRun[p.Seg] {
					continue
				}
				if np, ok := remap[p]; ok {
					q.m[pk] = np
				} else {
					// The row was dropped: every branch has shadowed or
					// deleted this entry, so it can only resolve dead.
					q.m[pk] = deletedPos
				}
			}
		}
	}
	var oldBytes int64
	for _, s := range run {
		oldBytes += s.File.DiskBytes()
	}
	st.SegmentsMerged += int64(len(run))
	st.TombstonesDropped += dropped
	st.PagesCompressed += int64(w.Pages())
	st.BytesReclaimed += oldBytes - ns.File.DiskBytes()
	if opt.FailPoint == compact.FailBeforeUnlink {
		// Simulate a crash after the catalog swap but before the old
		// files are unlinked; the next open sweeps them.
		return compact.FailPointErr(opt.FailPoint)
	}
	for _, s := range run {
		s.Segment.RetireAndRemove(e.segFilePath(s.id, s.Encoding))
	}
	for _, k := range oldLogs {
		os.Remove(e.logPath(k))
	}
	return nil
}

// compressLocked re-encodes every remaining frozen heap segment (heads
// excluded) into compressed pages. Slot numbering is preserved — the
// whole file re-encodes — so bitmaps, logs and pk indexes need no
// changes; only the catalog entry's encoding tag and path move.
func (e *Engine) compressLocked(opt compact.Options, st *compact.Stats) error {
	heads := make(map[segID]bool, len(e.headSeg))
	for _, id := range e.headSeg {
		heads[id] = true
	}
	type repl struct {
		old     *hseg
		ns      *store.Segment
		pages   int
		oldDisk int64
	}
	var repls []repl
	abort := func() {
		for _, r := range repls {
			r.ns.File.Close()
			os.Remove(r.ns.File.Path())
		}
	}
	for _, s := range e.segs {
		n := s.File.Count()
		if !s.Frozen || heads[s.id] || s.Encoding == store.EncDCZ || n == 0 {
			continue
		}
		ns, pages, err := e.st.CompressSegment(s.Segment, e.segFilePath(s.id, store.EncDCZ), n)
		if err != nil {
			abort()
			return err
		}
		repls = append(repls, repl{old: s, ns: ns, pages: pages, oldDisk: s.File.DiskBytes()})
	}
	if len(repls) == 0 {
		return nil
	}
	if opt.FailPoint == compact.FailAfterTemp {
		for _, r := range repls {
			r.ns.File.Close()
		}
		return compact.FailPointErr(opt.FailPoint)
	}
	prev := e.segs
	segs := append([]*hseg(nil), e.segs...)
	for _, r := range repls {
		nh := &hseg{Segment: r.ns, id: r.old.id, owner: r.old.owner, local: r.old.local}
		for i, s := range segs {
			if s == r.old {
				segs[i] = nh
				break
			}
		}
		e.byID[r.old.id] = nh
	}
	e.segs = segs
	if err := e.persistLocked(); err != nil {
		e.segs = prev
		for _, r := range repls {
			e.byID[r.old.id] = r.old
		}
		abort()
		return err
	}
	for _, r := range repls {
		st.SegmentsCompressed++
		st.PagesCompressed += int64(r.pages)
		st.BytesReclaimed += r.oldDisk - r.ns.File.DiskBytes()
	}
	if opt.FailPoint == compact.FailBeforeUnlink {
		return compact.FailPointErr(opt.FailPoint)
	}
	for _, r := range repls {
		r.old.Segment.RetireAndRemove(e.segFilePath(r.old.id, r.old.Encoding))
	}
	return nil
}

// sweepOrphans removes files the catalog does not reference — the
// debris of a compaction (or crash) that wrote replacement files
// without committing, or committed without unlinking: segment data
// files not named by any catalog entry, commit logs of segment ids the
// catalog no longer knows, and stale catalog temp files. Called at the
// end of recover, when the referenced set is known.
func (e *Engine) sweepOrphans() {
	keep := make(map[string]bool, len(e.segs))
	for _, s := range e.segs {
		keep[filepath.Base(s.File.Path())] = true
	}
	ents, err := os.ReadDir(e.env.Dir)
	if err != nil {
		return
	}
	for _, ent := range ents {
		name := ent.Name()
		if ent.IsDir() || keep[name] {
			continue
		}
		dataFile := strings.HasPrefix(name, "seg") &&
			(strings.HasSuffix(name, ".dat") || strings.HasSuffix(name, ".dcz"))
		if dataFile || strings.HasSuffix(name, ".tmp") {
			os.Remove(filepath.Join(e.env.Dir, name))
		}
	}
	logDir := filepath.Join(e.env.Dir, "commits")
	ents, err = os.ReadDir(logDir)
	if err != nil {
		return
	}
	for _, ent := range ents {
		name := ent.Name()
		var b vgraph.BranchID
		var s segID
		if n, err := fmt.Sscanf(name, "b%d_s%d.hist", &b, &s); err != nil || n != 2 {
			continue
		}
		if _, ok := e.byID[s]; !ok {
			os.Remove(filepath.Join(logDir, name))
		}
	}
}
