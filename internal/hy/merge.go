package hy

import (
	"fmt"

	"decibel/internal/bitmap"
	"decibel/internal/core"
	"decibel/internal/record"
	"decibel/internal/vgraph"
)

// Merge implements core.Engine for the hybrid scheme (Section 3.4):
// "as in tuple-first, the segment bitmaps can be leveraged (also
// requiring the lowest common ancestor commit) to determine where the
// conflicts are within the segment"; records adopted from the second
// parent are marked live in the merged branch's bitmaps within their
// containing segments, creating new bitmaps for the branch within a
// segment if necessary; resolved conflict records are appended to the
// merged branch's head segment.
func (e *Engine) Merge(into, other vgraph.BranchID, mc *vgraph.Commit, kind core.MergeKind) (core.MergeStats, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	var st core.MergeStats

	lcaID := e.env.Graph.LCA(mc.Parents[0], mc.Parents[1])
	lcaCommit, ok := e.env.Graph.Commit(lcaID)
	if !ok {
		return st, fmt.Errorf("hy: merge has no common ancestor")
	}
	lcaSnap, err := e.checkoutLocked(lcaCommit.Branch, lcaCommit.Seq)
	if err != nil {
		return st, err
	}

	// Rows from the two branches (and the LCA) may sit in segments of
	// different schema versions; resolve everything under the merge
	// commit's schema and make sure the head segment materialized
	// results land in can hold the merged layout.
	epoch := mc.SchemaVer
	recSize := int64(e.hist.VisibleAt(epoch).RecordSize())
	type entry struct {
		lcaPos   pos
		hasLCA   bool
		changedA bool
		changedB bool
	}
	entries := make(map[int64]*entry)
	collect := func(branch vgraph.BranchID, isA bool) error {
		for _, s := range e.segs {
			cur := s.local[branch]
			lca := lcaSnap[s.id]
			if cur == nil && lca == nil {
				continue
			}
			if cur == nil {
				cur = bitmap.New(0)
			}
			if lca == nil {
				lca = bitmap.New(0)
			}
			x := bitmap.Xor(cur, lca)
			buf := make([]byte, s.Schema.RecordSize())
			var scanErr error
			x.ForEach(func(slot int) bool {
				if err := s.File.Read(int64(slot), buf); err != nil {
					scanErr = err
					return false
				}
				st.TuplesScanned++
				st.DiffBytes += recSize
				pk := record.PKOf(buf)
				en := entries[pk]
				if en == nil {
					en = &entry{}
					entries[pk] = en
				}
				if isA {
					en.changedA = true
				} else {
					en.changedB = true
				}
				if lca.Get(slot) {
					en.lcaPos = pos{Seg: s.id, Slot: int64(slot)}
					en.hasLCA = true
				}
				return true
			})
			if scanErr != nil {
				return scanErr
			}
		}
		return nil
	}
	if err := collect(into, true); err != nil {
		return st, err
	}
	if err := collect(other, false); err != nil {
		return st, err
	}

	idxA := e.pk[into]
	idxB := e.pk[other]
	headSeg, err := e.writeHeadLocked(into)
	if err != nil {
		return st, err
	}
	head := headSeg.id
	readAt := func(p pos) (*record.Record, error) {
		s := e.byID[p.Seg]
		buf := make([]byte, s.Schema.RecordSize())
		if err := s.File.Read(p.Slot, buf); err != nil {
			return nil, err
		}
		cv, err := e.hist.Conv(s.Cols, epoch)
		if err != nil {
			return nil, err
		}
		st.TuplesScanned++
		return cv.Materialize(buf), nil
	}
	setLive := func(branch vgraph.BranchID, p pos) {
		s := e.byID[p.Seg]
		bm := s.local[branch]
		if bm == nil {
			bm = bitmap.New(0)
			s.local[branch] = bm
		}
		bm.Set(int(p.Slot))
	}
	clearLive := func(branch vgraph.BranchID, p pos) {
		if bm, ok := e.byID[p.Seg].local[branch]; ok {
			bm.Clear(int(p.Slot))
		}
	}

	for pk, en := range entries {
		if en.changedA {
			st.ChangedA++
		}
		if en.changedB {
			st.ChangedB++
		}
		posA := idxA.live(pk)
		posB := idxB.live(pk)
		switch {
		case en.changedA && !en.changedB:
			// Keep into's state.
		case en.changedB && !en.changedA:
			if posA != deletedPos {
				clearLive(into, posA)
			}
			if posB != deletedPos {
				setLive(into, posB)
				idxA.set(pk, posB)
			} else {
				idxA.set(pk, deletedPos)
			}
		default:
			var recA, recB, base *record.Record
			if posA != deletedPos {
				if recA, err = readAt(posA); err != nil {
					return st, err
				}
			}
			if posB != deletedPos {
				if recB, err = readAt(posB); err != nil {
					return st, err
				}
			}
			apply := func(rec *record.Record, deleted bool) error {
				if posA != deletedPos {
					clearLive(into, posA)
				}
				if deleted {
					idxA.set(pk, deletedPos)
					return nil
				}
				var p pos
				switch {
				case recA != nil && rec.Equal(recA):
					p = posA
				case recB != nil && rec.Equal(recB):
					p = posB
				default:
					slot, err := e.st.Append(e.byID[head].Segment, rec)
					if err != nil {
						return err
					}
					p = pos{Seg: head, Slot: slot}
					st.Materialized++
				}
				setLive(into, p)
				idxA.set(pk, p)
				return nil
			}
			if kind == core.TwoWay {
				same := (recA == nil && recB == nil) || (recA != nil && recB != nil && recA.Equal(recB))
				if !same {
					st.Conflicts++
				}
				var err error
				if mc.PrecedenceFirst {
					if recA == nil {
						err = apply(nil, true)
					} else {
						err = apply(recA, false)
					}
				} else if recB == nil {
					err = apply(nil, true)
				} else {
					err = apply(recB, false)
				}
				if err != nil {
					return st, err
				}
				continue
			}
			if en.hasLCA {
				if base, err = readAt(en.lcaPos); err != nil {
					return st, err
				}
			}
			res := record.Merge3(base, recA, recB, mc.PrecedenceFirst)
			if res.Conflict {
				st.Conflicts++
			}
			if res.Deleted {
				if err := apply(nil, true); err != nil {
					return st, err
				}
			} else if err := apply(res.Record, false); err != nil {
				return st, err
			}
		}
	}
	return st, e.commitLocked(mc)
}
