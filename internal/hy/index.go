package hy

// pkIndex is the hybrid engine's per-branch primary-key index, mapping
// keys to (segment, slot) positions with overlay-chain sharing across
// branch points (same design as the tuple-first index, with positional
// values).
type pkIndex struct {
	m      map[int64]pos
	parent *pkIndex
}

func newPKIndex() *pkIndex { return &pkIndex{m: make(map[int64]pos)} }

// get returns pk's position; deletedPos means deleted. ok is false if
// the key was never seen on this branch.
func (p *pkIndex) get(pk int64) (pos, bool) {
	for q := p; q != nil; q = q.parent {
		if v, ok := q.m[pk]; ok {
			return v, true
		}
	}
	return pos{}, false
}

// live returns pk's live position, or deletedPos when absent/deleted.
func (p *pkIndex) live(pk int64) pos {
	v, ok := p.get(pk)
	if !ok || v == deletedPos {
		return deletedPos
	}
	return v
}

func (p *pkIndex) set(pk int64, v pos) { p.m[pk] = v }

// fork freezes p and returns two overlays sharing it.
func (p *pkIndex) fork() (*pkIndex, *pkIndex) {
	return &pkIndex{m: make(map[int64]pos), parent: p},
		&pkIndex{m: make(map[int64]pos), parent: p}
}

func (p *pkIndex) bytes() int64 {
	var n int64
	for q := p; q != nil; q = q.parent {
		n += int64(len(q.m)) * 24
	}
	return n
}
