package query

// OrderBy/Limit execution. Ordering requires a gather (engines emit in
// storage order), so the executor picks the cheapest shape: Limit
// alone streams and stops early; OrderBy alone gathers everything and
// sorts; OrderBy+Limit keeps a bounded top-k heap so memory stays
// O(limit) regardless of the scan size.

import (
	"bytes"
	"container/heap"
	"fmt"
	"math"
	"sort"

	"decibel/internal/core"
	"decibel/internal/record"
)

// Ordered reports whether the plan requests ordered emission.
func (c *Compiled) Ordered() bool { return c.orderIdx >= 0 }

// noOrdering rejects OrderBy/Limit on terminals that have no row
// stream to order (aggregates, joins, annotated scans).
func (c *Compiled) noOrdering(terminal string) error {
	if c.Ordered() || c.plan.Limit > 0 {
		return fmt.Errorf("%w: OrderBy/Limit do not apply to %s", core.ErrBadQuery, terminal)
	}
	return nil
}

// orderCmp returns the comparator over emitted records implied by the
// plan: ascending (or descending) by the order column, with NaN
// ordering below every number.
func (c *Compiled) orderCmp() func(a, b *record.Record) int {
	idx := c.orderIdx
	var cmp func(a, b *record.Record) int
	switch c.proto.Out().Column(idx).Type {
	case record.Float64:
		cmp = func(a, b *record.Record) int {
			return cmpFloatOrder(a.GetFloat64(idx), b.GetFloat64(idx))
		}
	case record.Bytes:
		cmp = func(a, b *record.Record) int {
			return bytes.Compare(a.GetBytes(idx), b.GetBytes(idx))
		}
	default:
		cmp = func(a, b *record.Record) int {
			return cmpI(a.Get(idx), b.Get(idx))
		}
	}
	if c.plan.OrderDesc {
		inner := cmp
		cmp = func(a, b *record.Record) int { return -inner(a, b) }
	}
	return cmp
}

// cmpFloatOrder is the total order behind OrderBy on Float64 columns:
// NaN sorts below every number (and equal to itself), so the
// comparator stays a strict weak ordering — cmpF alone would answer 0
// for NaN against anything and give sort/heap an inconsistent order.
func cmpFloatOrder(a, b float64) int {
	aNaN, bNaN := math.IsNaN(a), math.IsNaN(b)
	switch {
	case aNaN && bNaN:
		return 0
	case aNaN:
		return -1
	case bNaN:
		return +1
	}
	return cmpF(a, b)
}

// seqRec is a gathered record tagged with its arrival position in the
// scan stream. Ordering ties break by arrival order, which makes the
// ordered output a deterministic function of the stream — the same
// stable behavior the old SliceStable gave the no-limit gather, now
// extended to the top-k heap so the parallel executor's per-unit
// pre-trim (which ranks under the identical total order) composes
// exactly.
type seqRec struct {
	rec *record.Record
	seq int
}

// recHeap is a max-heap under the plan comparator (ties by arrival):
// the root is the worst retained row, evicted when a better one
// arrives.
type recHeap struct {
	recs []seqRec
	cmp  func(a, b seqRec) int
}

func (h *recHeap) Len() int           { return len(h.recs) }
func (h *recHeap) Less(i, j int) bool { return h.cmp(h.recs[i], h.recs[j]) > 0 }
func (h *recHeap) Swap(i, j int)      { h.recs[i], h.recs[j] = h.recs[j], h.recs[i] }
func (h *recHeap) Push(x any)         { h.recs = append(h.recs, x.(seqRec)) }
func (h *recHeap) Pop() any {
	n := len(h.recs)
	r := h.recs[n-1]
	h.recs = h.recs[:n-1]
	return r
}

// EmitOrdered drives one scan shape (single-version, multi-branch or
// diff — whatever `scan` runs) and applies the plan's OrderBy/Limit to
// its output before feeding fn.
func (c *Compiled) EmitOrdered(scan func(core.ScanFunc) error, fn core.ScanFunc) error {
	limit := c.plan.Limit
	if !c.Ordered() {
		if limit <= 0 {
			return scan(fn)
		}
		// Limit alone: stream and cut the scan short.
		n := 0
		return scan(func(rec *record.Record) bool {
			if !fn(rec) {
				return false
			}
			n++
			return n < limit
		})
	}

	cmp := c.orderCmp()
	scmp := func(a, b seqRec) int {
		if d := cmp(a.rec, b.rec); d != 0 {
			return d
		}
		return a.seq - b.seq
	}
	var gathered []seqRec
	n := 0
	if limit > 0 {
		// Top-k: bounded heap of the best `limit` rows seen so far.
		h := &recHeap{cmp: scmp}
		err := scan(func(rec *record.Record) bool {
			sr := seqRec{rec: rec, seq: n}
			n++
			if h.Len() < limit {
				sr.rec = rec.Clone()
				heap.Push(h, sr)
			} else if scmp(sr, h.recs[0]) < 0 {
				sr.rec = rec.Clone()
				h.recs[0] = sr
				heap.Fix(h, 0)
			}
			return true
		})
		if err != nil {
			return err
		}
		gathered = h.recs
	} else {
		err := scan(func(rec *record.Record) bool {
			gathered = append(gathered, seqRec{rec: rec.Clone(), seq: n})
			n++
			return true
		})
		if err != nil {
			return err
		}
	}
	sort.Slice(gathered, func(i, j int) bool { return scmp(gathered[i], gathered[j]) < 0 })
	for _, sr := range gathered {
		if !fn(sr.rec) {
			return nil
		}
	}
	return nil
}
