package query

// N-way equi-join execution. A Plan composes joins as a list of legs —
// each a single-table sub-plan plus the key columns tying it to the
// relations declared before it — and compiling the plan turns the legs
// into a joinPlan: one Compiled per relation (predicate, projection and
// zone-map bounds pushed into each relation's own ScanSpec path) plus
// the equi-join edges between them.
//
// Execution is a left-deep hash-join pipeline over a greedy relation
// order (janus-datalog's "greedy beats optimal" result, seeded by the
// zone maps instead of a cost model): start at the relation with the
// smallest zone-map row estimate, then repeatedly take the cheapest
// relation connected to the joined set. The accumulated intermediate —
// grown from the smallest relations — is the hash-build side at every
// step, and each newly added relation streams through its ordinary scan
// path as the probe side, so the largest relations are never
// materialized beyond their matching rows.
//
// Tuples emit in ascending composite primary-key order (relation
// declaration order), a total order over the output that does not
// depend on the execution order — greedy and declared-order runs emit
// byte-identical streams, which is what the ordering benchmarks and
// the equivalence harness assert.

import (
	"context"
	"encoding/binary"
	"fmt"
	"sort"

	"decibel/internal/core"
	"decibel/internal/record"
)

// JoinLeg is one joined relation in a Plan: a single-table sub-plan
// (its own branch, predicate and projection) plus the equi-join key —
// LeftCol names a column of the relations declared before this leg,
// RightCol a column of this leg's table. A leg naming no branch
// inherits the root plan's branch.
type JoinLeg struct {
	Plan     Plan
	LeftCol  string
	RightCol string
}

// JoinTuple is one joined output row: one record per relation, in
// declaration order (index 0 is the root table). Records are cloned —
// safe to retain.
type JoinTuple []*record.Record

// joinEdge is one compiled equi-join condition between two relations,
// keyed by each side's column index in that relation's output schema.
type joinEdge struct {
	left, right       int // relation indices, right declared later
	leftCol, rightCol int
	bytesKey          bool
}

// joinPlan is the compiled join: the relations in declaration order,
// the edges between them, and the zone-map row estimate per relation.
type joinPlan struct {
	rels  []*Compiled
	edges []joinEdge
	ests  []int64
}

// compileJoins resolves the plan's join legs: each leg compiles as its
// own single-table plan (predicate/projection/bounds pushdown falls
// out of the leg's ScanSpec), the join keys resolve against the
// relations' output schemas, and the relations' cardinalities are
// estimated from zone maps for the greedy ordering.
func (c *Compiled) compileJoins(db *core.Database) error {
	p := c.plan
	if p.AllHeads || len(c.branches) != 1 {
		return fmt.Errorf("%w: a join-composed query scans exactly one version per relation", core.ErrBadQuery)
	}
	if p.OrderCol != "" || p.Limit > 0 {
		return fmt.Errorf("%w: OrderBy/Limit do not apply to join-composed queries", core.ErrBadQuery)
	}

	// Relation 0 is the root plan without its join/group clauses.
	root := *c
	root.plan.Joins = nil
	root.plan.GroupCols = nil
	rels := make([]*Compiled, 1, len(p.Joins)+1)
	rels[0] = &root

	edges := make([]joinEdge, 0, len(p.Joins))
	for _, leg := range p.Joins {
		lp := leg.Plan
		switch {
		case len(lp.Joins) > 0 || len(lp.GroupCols) > 0:
			return fmt.Errorf("%w: a join leg cannot itself compose joins or GroupBy", core.ErrBadQuery)
		case lp.OrderCol != "" || lp.Limit > 0:
			return fmt.Errorf("%w: OrderBy/Limit do not apply to join legs", core.ErrBadQuery)
		case lp.AllHeads || len(lp.Branches) > 1:
			return fmt.Errorf("%w: a join leg scans exactly one branch", core.ErrBadQuery)
		}
		if len(lp.Branches) == 0 {
			lp.Branches = []string{c.branches[0].Name} // inherit the root's branch
		}
		// The baseline flags span the whole composed query.
		lp.NoParallel = p.NoParallel
		lp.NoPrune = p.NoPrune
		rc, err := lp.Compile(db)
		if err != nil {
			return err
		}

		li, lci, ltype, err := findJoinCol(rels, leg.LeftCol)
		if err != nil {
			return err
		}
		_, rci, rtype, err := findJoinCol([]*Compiled{rc}, leg.RightCol)
		if err != nil {
			return err
		}
		lBytes, err := joinKeyKind(ltype, leg.LeftCol)
		if err != nil {
			return err
		}
		rBytes, err := joinKeyKind(rtype, leg.RightCol)
		if err != nil {
			return err
		}
		if lBytes != rBytes {
			return fmt.Errorf("%w: join keys %q (%v) and %q (%v) have incompatible types",
				core.ErrTypeMismatch, leg.LeftCol, ltype, leg.RightCol, rtype)
		}
		edges = append(edges, joinEdge{
			left: li, leftCol: lci,
			right: len(rels), rightCol: rci,
			bytesKey: lBytes,
		})
		rels = append(rels, rc)
	}
	c.join = &joinPlan{rels: rels, edges: edges}
	c.join.estimate()
	return nil
}

// findJoinCol resolves a join-key (or group-by) column name against
// the relations' output schemas, in declaration order — the first
// relation emitting the column wins. A column that exists in a
// relation's table schema but was projected out by Select fails with
// ErrBadQuery; a column no relation has fails with ErrNoSuchColumn
// (or ErrColumnNotYetAdded at a pre-evolution version).
func findJoinCol(rels []*Compiled, name string) (relIdx, colIdx int, t record.Type, err error) {
	for i, r := range rels {
		if ci := r.OutSchema().ColumnIndex(name); ci >= 0 {
			return i, ci, r.OutSchema().Column(ci).Type, nil
		}
	}
	for _, r := range rels {
		if r.schema.ColumnIndex(name) >= 0 {
			return 0, 0, 0, fmt.Errorf("%w: column %q is projected out by Select", core.ErrBadQuery, name)
		}
	}
	r0 := rels[0]
	return 0, 0, 0, (colScope{schema: r0.schema, hist: r0.table.History(), epoch: r0.epoch}).missing(name)
}

// joinKeyKind classifies a join-key column type: integer keys hash by
// value, byte-string keys by content. Float64 keys are rejected —
// equality on floats is ill-defined (NaN != NaN), so they are not
// joinable.
func joinKeyKind(t record.Type, name string) (bytesKey bool, err error) {
	switch t {
	case record.Int32, record.Int64:
		return false, nil
	case record.Bytes:
		return true, nil
	}
	return false, fmt.Errorf("%w: column %q: %v keys are not joinable", core.ErrBadQuery, name, t)
}

// estimate fills the per-relation cardinality estimates.
func (jp *joinPlan) estimate() {
	jp.ests = make([]int64, len(jp.rels))
	for i, r := range jp.rels {
		jp.ests[i] = r.estimateRows()
	}
}

// estimateRows is the greedy orderer's cardinality estimate for one
// relation: the sum of (rows − tombstones) over the segments whose
// zone maps the relation's pruning bounds cannot exclude. It reads the
// same partitioned-scan zone maps the ordered visitor uses, without
// scanning a page; units without a zone (mutable heads on some
// engines) contribute nothing, and engines that cannot partition at
// all answer a pessimistic unknown. Estimates are heuristic — segment
// rows overcount branch-live rows — which is all greedy ordering
// needs: the result is identical in any order.
func (c *Compiled) estimateRows() int64 {
	const unknown = int64(1) << 40
	var req core.ScanRequest
	if c.commit != nil {
		req = core.ScanRequest{Kind: core.ScanKindCommit, Commit: c.commit}
	} else {
		req = core.ScanRequest{Kind: core.ScanKindBranch, Branch: c.branches[0].ID}
	}
	units, release, ok, err := c.table.PartitionUnits(req)
	if !ok {
		return unknown
	}
	if err != nil {
		return unknown
	}
	defer release()
	spec := c.execSpec()
	var est int64
	for _, u := range units {
		if u.Zone == nil {
			continue
		}
		if spec.ExcludesSegment(u.Zone, u.PhysCols) {
			continue
		}
		if rows := u.Zone.Rows() - u.Zone.Tombstones(); rows > 0 {
			est += rows
		}
	}
	return est
}

// order returns the relation execution order: greedy by estimate
// (smallest relation first, then repeatedly the cheapest relation
// connected to the joined set), or declaration order with noReorder.
func (jp *joinPlan) order(noReorder bool) []int {
	n := len(jp.rels)
	ord := make([]int, 0, n)
	if noReorder {
		for i := 0; i < n; i++ {
			ord = append(ord, i)
		}
		return ord
	}
	in := make([]bool, n)
	start := 0
	for i := 1; i < n; i++ {
		if jp.ests[i] < jp.ests[start] {
			start = i
		}
	}
	ord = append(ord, start)
	in[start] = true
	for len(ord) < n {
		best := -1
		for r := 0; r < n; r++ {
			if in[r] || !jp.connected(r, in) {
				continue
			}
			if best < 0 || jp.ests[r] < jp.ests[best] {
				best = r
			}
		}
		if best < 0 {
			// Unreachable: every leg declares an edge to an earlier
			// relation, so the join graph is connected. Degrade to
			// declaration order rather than loop.
			for r := 0; r < n; r++ {
				if !in[r] {
					best = r
					break
				}
			}
		}
		ord = append(ord, best)
		in[best] = true
	}
	return ord
}

// connected reports whether relation r shares a join edge with the
// already-selected set.
func (jp *joinPlan) connected(r int, in []bool) bool {
	for _, e := range jp.edges {
		if (e.left == r && in[e.right]) || (e.right == r && in[e.left]) {
			return true
		}
	}
	return false
}

// probeKey is one oriented join condition for a probe step: the key
// column of the already-joined side (a relation index plus its column)
// and the key column of the newly probed relation.
type probeKey struct {
	rel, relCol int
	newCol      int
	bytesKey    bool
}

// orient turns the edges connecting relation r to the joined set into
// probe conditions.
func (jp *joinPlan) orient(r int, in []bool) []probeKey {
	var keys []probeKey
	for _, e := range jp.edges {
		switch {
		case e.right == r && in[e.left]:
			keys = append(keys, probeKey{rel: e.left, relCol: e.leftCol, newCol: e.rightCol, bytesKey: e.bytesKey})
		case e.left == r && in[e.right]:
			keys = append(keys, probeKey{rel: e.right, relCol: e.rightCol, newCol: e.leftCol, bytesKey: e.bytesKey})
		}
	}
	return keys
}

// joinKey encodes one key column value for hashing: integers as their
// 8-byte form, byte strings by content.
func joinKey(rec *record.Record, col int, bytesKey bool) string {
	if bytesKey {
		return string(rec.GetBytes(col))
	}
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], uint64(rec.Get(col)))
	return string(b[:])
}

// run executes the join and emits the tuples in canonical order.
func (jp *joinPlan) run(ctx context.Context, noReorder bool, fn func(JoinTuple) bool) error {
	ord := jp.order(noReorder)
	n := len(jp.rels)

	// Materialize the first (smallest-estimate) relation.
	var tuples []JoinTuple
	err := jp.rels[ord[0]].Scan(ctx, func(rec *record.Record) bool {
		t := make(JoinTuple, n)
		t[ord[0]] = rec.Clone()
		tuples = append(tuples, t)
		return true
	})
	if err != nil {
		return err
	}
	in := make([]bool, n)
	in[ord[0]] = true

	for _, r := range ord[1:] {
		if len(tuples) == 0 {
			return nil // inner join: an empty side empties the result
		}
		keys := jp.orient(r, in)
		first, extra := keys[0], keys[1:]
		// Hash-build over the accumulated side (grown from the smallest
		// relations), streaming-probe the new one through its ordinary
		// scan path — matching rows are the only ones materialized.
		build := make(map[string][]int, len(tuples))
		for i, t := range tuples {
			k := joinKey(t[first.rel], first.relCol, first.bytesKey)
			build[k] = append(build[k], i)
		}
		var next []JoinTuple
		err := jp.rels[r].Scan(ctx, func(rec *record.Record) bool {
			idxs := build[joinKey(rec, first.newCol, first.bytesKey)]
			if len(idxs) == 0 {
				return true
			}
			var cloned *record.Record
			for _, i := range idxs {
				t := tuples[i]
				if !matchExtra(t, rec, extra) {
					continue
				}
				if cloned == nil {
					cloned = rec.Clone()
				}
				nt := make(JoinTuple, n)
				copy(nt, t)
				nt[r] = cloned
				next = append(next, nt)
			}
			return true
		})
		if err != nil {
			return err
		}
		tuples = next
		in[r] = true
	}

	// Canonical emission order: ascending composite primary-key tuple
	// in relation declaration order. Each relation holds at most one
	// live record per key per version, so the composite is a unique,
	// execution-order-independent total order.
	sort.Slice(tuples, func(i, j int) bool {
		a, b := tuples[i], tuples[j]
		for r := 0; r < n; r++ {
			if d := a[r].PK() - b[r].PK(); d != 0 {
				return d < 0
			}
		}
		return false
	})
	for _, t := range tuples {
		if !fn(t) {
			return nil
		}
	}
	return ctx.Err()
}

// matchExtra checks the remaining join conditions of a probe step
// (several edges tie the new relation to the joined set when a column
// joins it to more than one earlier relation).
func matchExtra(t JoinTuple, rec *record.Record, extra []probeKey) bool {
	for _, k := range extra {
		if joinKey(t[k.rel], k.relCol, k.bytesKey) != joinKey(rec, k.newCol, k.bytesKey) {
			return false
		}
	}
	return true
}

// JoinTuples executes the plan's composed join: each emitted tuple
// holds one record per relation in declaration order, streamed in
// ascending composite primary-key order. Records are cloned — safe to
// retain across iterations.
func (c *Compiled) JoinTuples(ctx context.Context, fn func(JoinTuple) bool) error {
	if c.join == nil {
		return fmt.Errorf("%w: Tuples needs a join-composed query (Join with a join key)", core.ErrBadQuery)
	}
	if len(c.plan.GroupCols) > 0 {
		return fmt.Errorf("%w: a grouped query emits through Groups, not Tuples", core.ErrBadQuery)
	}
	return c.join.run(ctx, c.plan.NoReorder, fn)
}

// JoinOrder exposes the relation execution order the planner chose —
// indices into the declaration order, for tests and benchmarks that
// assert the greedy ordering engaged. Nil for non-join plans.
func (c *Compiled) JoinOrder() []int {
	if c.join == nil {
		return nil
	}
	return c.join.order(c.plan.NoReorder)
}

// JoinEstimates exposes the per-relation zone-map row estimates the
// greedy order was derived from. Nil for non-join plans.
func (c *Compiled) JoinEstimates() []int64 {
	if c.join == nil {
		return nil
	}
	return append([]int64(nil), c.join.ests...)
}
