package query

// Order-aware segment visiting for OrderBy+Limit plans. The gather in
// EmitOrdered visits every segment in storage order and lets the top-k
// heap discard what does not rank; this executor instead partitions the
// scan into per-segment units (the same core.ScanUnit partition the
// parallel executor fans out), visits them sorted by the order column's
// zone bound — most favorable bound first — and, once the heap holds
// `limit` rows, skips every unit whose bound proves it cannot beat the
// heap's worst retained row.
//
// The output is byte-identical to the gather path. Ordering ties break
// by arrival order there, and sequential arrival order is exactly
// lexicographic (unit index, position within unit) — so the visitor
// tags each retained row with that coordinate and compares it directly,
// making the result independent of the permuted visit order. Skipping
// is strict (a unit is skipped only when its best possible value is
// strictly worse than the heap root): a unit whose bound merely ties
// the root could hold a row with an earlier arrival coordinate that
// wins the tie, so it must be visited.
//
// Units without a usable bound — mutable branch heads, segments whose
// layout predates the order column, zones poisoned by NaN — sort first
// and always run; they are also the cheapest way to seed the heap with
// real rows before the bounded skip test starts paying off. Units whose
// zone is empty (tombstones only) can emit nothing and are skipped
// outright. The expvar counter decibel.ordered_skips totals the units
// skipped either way.

import (
	"bytes"
	"container/heap"
	"context"
	"expvar"
	"sort"
	"sync/atomic"

	"decibel/internal/bitmap"
	"decibel/internal/core"
	"decibel/internal/record"
	"decibel/internal/vgraph"
)

// orderedSkips counts scan units the ordered visitor skipped — by zone
// bound against the top-k heap root, or because their zone was empty.
var orderedSkips atomic.Int64

func init() {
	expvar.Publish("decibel.ordered_skips", expvar.Func(func() any {
		return orderedSkips.Load()
	}))
}

// CountOrderedSkips returns the cumulative number of scan units the
// order-aware visitor skipped (the expvar decibel.ordered_skips exposes
// the same number).
func CountOrderedSkips() int64 { return orderedSkips.Load() }

// EmitRows runs the plan's row terminal — the single-version scan, or
// the multi-branch scan when the plan names several branches — with
// OrderBy/Limit applied. OrderBy+Limit plans try the order-aware unit
// visit first; everything else (and engines without partitioned scans)
// takes the EmitOrdered gather above the plain scan.
func (c *Compiled) EmitRows(ctx context.Context, fn core.ScanFunc) error {
	multi := c.plan.AllHeads || len(c.plan.Branches) > 1
	if req, ok := c.orderedRowsRequest(multi); ok {
		if handled, err := c.tryOrderedVisit(ctx, req, nil, fn); handled {
			return err
		}
	}
	return c.EmitOrdered(func(f core.ScanFunc) error {
		if multi {
			return c.ScanMulti(ctx, func(rec *record.Record, _ *bitmap.Bitmap) bool { return f(rec) })
		}
		return c.Scan(ctx, f)
	}, fn)
}

// orderedRowsRequest builds the partition request of the plan's row
// shape, reporting ok=false when the plan should not (or cannot) take
// the ordered visit: no OrderBy+Limit, a baseline flag, a shape the
// plain path must validate (multi at a commit), or a point-pk read the
// index fast path serves better.
func (c *Compiled) orderedRowsRequest(multi bool) (core.ScanRequest, bool) {
	if !c.orderedVisitApplies() {
		return core.ScanRequest{}, false
	}
	if multi {
		if c.commit != nil {
			return core.ScanRequest{}, false // ScanMulti rejects At(); let it
		}
		ids := make([]vgraph.BranchID, len(c.branches))
		for i, b := range c.branches {
			ids[i] = b.ID
		}
		return core.ScanRequest{Kind: core.ScanKindMulti, Branches: ids}, true
	}
	if c.commit != nil {
		return core.ScanRequest{Kind: core.ScanKindCommit, Commit: c.commit}, true
	}
	if _, pk := c.pointPK(); pk {
		return core.ScanRequest{}, false
	}
	return core.ScanRequest{Kind: core.ScanKindBranch, Branch: c.branches[0].ID}, true
}

// EmitDiffRows runs the plan's positive-diff terminal with
// OrderBy/Limit applied, trying the order-aware unit visit first (the
// diff partition's B-side units run but their rows fail the keep
// filter, exactly as in the pushdown diff loop).
func (c *Compiled) EmitDiffRows(ctx context.Context, fn core.ScanFunc) error {
	if c.orderedVisitApplies() {
		if err := c.pair(); err != nil {
			return err
		}
		req := core.ScanRequest{Kind: core.ScanKindDiff, A: c.branches[0].ID, B: c.branches[1].ID}
		keep := func(aux core.UnitAux) bool { return aux.InA }
		if handled, err := c.tryOrderedVisit(ctx, req, keep, fn); handled {
			return err
		}
	}
	return c.EmitOrdered(func(f core.ScanFunc) error { return c.Diff(ctx, f) }, fn)
}

// orderedVisitApplies reports whether the plan opted into the ordered
// visit: OrderBy+Limit set, and neither baseline flag — NoPrune
// disables every zone-map-derived skip, NoParallel pins the plan to the
// plain sequential walk.
func (c *Compiled) orderedVisitApplies() bool {
	return c.Ordered() && c.plan.Limit > 0 && !c.plan.NoPrune && !c.plan.NoParallel
}

// unitBound is the most favorable order-column value any emitted row of
// one unit can carry, read from its segment's zone map: the zone lower
// bound ascending, the upper bound descending. exclusive marks a bytes
// upper bound reconstructed from a truncated zone prefix — every stored
// value is strictly below it.
type unitBound struct {
	i         int64
	f         float64
	b         []byte
	exclusive bool
}

// orderedVisitPlan is one unit's visit decision inputs: its original
// index (the arrival coordinate ties break by) and its bound, if any.
type orderedVisitPlan struct {
	idx     int
	bounded bool
	empty   bool
	bound   unitBound
}

// unitOrderBound derives a unit's bound on the order column. bounded is
// false when the zone cannot bound it: a mutable head (its zone moves
// under concurrent appends even though this snapshot would be covered —
// unbounded is simpler and the head runs anyway), a nil or foreign
// zone, a layout that predates the column (rows widen with defaults at
// scan time), or a NaN/Inf-poisoned float zone. empty means the zone
// saw only tombstones: the unit cannot emit and is skipped whole.
func unitOrderBound(u core.ScanUnit, srcIdx int, ctype record.Type, desc bool) (bound unitBound, bounded, empty bool) {
	if !u.Frozen || u.Zone == nil || srcIdx >= u.PhysCols {
		return unitBound{}, false, false
	}
	cz, ok := u.Zone.Col(srcIdx)
	if !ok {
		return unitBound{}, false, false
	}
	if cz.Empty {
		return unitBound{}, false, true
	}
	if cz.Unbounded {
		return unitBound{}, false, false
	}
	switch ctype {
	case record.Int32, record.Int64:
		if desc {
			return unitBound{i: cz.MaxI}, true, false
		}
		return unitBound{i: cz.MinI}, true, false
	case record.Float64:
		if desc {
			return unitBound{f: cz.MaxF}, true, false
		}
		return unitBound{f: cz.MinF}, true, false
	case record.Bytes:
		if desc {
			ub, excl, ok := cz.BytesUpper()
			if !ok {
				return unitBound{}, false, false
			}
			return unitBound{b: ub, exclusive: excl}, true, false
		}
		return unitBound{b: cz.MinB}, true, false
	}
	return unitBound{}, false, false
}

// boundCmp returns the visit-order comparator over unit bounds: smaller
// means more favorable under the plan's direction, so sorting ascending
// visits the most promising units first. For descending bytes, an
// exclusive bound ties below an inclusive one at the same value (its
// true supremum lies strictly beneath).
func boundCmp(ctype record.Type, desc bool) func(a, b unitBound) int {
	switch ctype {
	case record.Float64:
		if desc {
			return func(a, b unitBound) int { return cmpF(b.f, a.f) }
		}
		return func(a, b unitBound) int { return cmpF(a.f, b.f) }
	case record.Bytes:
		if desc {
			return func(a, b unitBound) int {
				if d := bytes.Compare(b.b, a.b); d != 0 {
					return d
				}
				switch {
				case a.exclusive && !b.exclusive:
					return 1
				case !a.exclusive && b.exclusive:
					return -1
				}
				return 0
			}
		}
		return func(a, b unitBound) int { return bytes.Compare(a.b, b.b) }
	default:
		if desc {
			return func(a, b unitBound) int { return cmpI(b.i, a.i) }
		}
		return func(a, b unitBound) int { return cmpI(a.i, b.i) }
	}
}

// boundWorse returns the skip test: whether a unit whose best possible
// value is `bound` is strictly worse than the heap root's value — no
// row it holds can enter the top-k, not even on an arrival-order tie.
// Float roots may be NaN (NaN orders below every number): ascending, a
// numeric bound is then strictly worse; descending, nothing is.
func boundWorse(ctype record.Type, desc bool, orderIdx int) func(bound unitBound, root *record.Record) bool {
	switch ctype {
	case record.Float64:
		if desc {
			return func(b unitBound, root *record.Record) bool {
				return cmpFloatOrder(b.f, root.GetFloat64(orderIdx)) < 0
			}
		}
		return func(b unitBound, root *record.Record) bool {
			return cmpFloatOrder(b.f, root.GetFloat64(orderIdx)) > 0
		}
	case record.Bytes:
		if desc {
			return func(b unitBound, root *record.Record) bool {
				d := bytes.Compare(b.b, root.GetBytes(orderIdx))
				return d < 0 || (d == 0 && b.exclusive)
			}
		}
		return func(b unitBound, root *record.Record) bool {
			return bytes.Compare(b.b, root.GetBytes(orderIdx)) > 0
		}
	default:
		if desc {
			return func(b unitBound, root *record.Record) bool {
				return b.i < root.Get(orderIdx)
			}
		}
		return func(b unitBound, root *record.Record) bool {
			return b.i > root.Get(orderIdx)
		}
	}
}

// visitRec is one retained row tagged with its sequential arrival
// coordinate: (unit index, position among the unit's kept rows).
type visitRec struct {
	rec  *record.Record
	unit int
	seq  int
}

// visitHeap is a max-heap under the plan comparator with arrival-
// coordinate tie-breaking: the root is the worst retained row.
type visitHeap struct {
	recs []visitRec
	cmp  func(a, b visitRec) int
}

func (h *visitHeap) Len() int           { return len(h.recs) }
func (h *visitHeap) Less(i, j int) bool { return h.cmp(h.recs[i], h.recs[j]) > 0 }
func (h *visitHeap) Swap(i, j int)      { h.recs[i], h.recs[j] = h.recs[j], h.recs[i] }
func (h *visitHeap) Push(x any)         { h.recs = append(h.recs, x.(visitRec)) }
func (h *visitHeap) Pop() any {
	n := len(h.recs)
	r := h.recs[n-1]
	h.recs = h.recs[:n-1]
	return r
}

// tryOrderedVisit drives one OrderBy+Limit row terminal as an
// order-aware unit walk. handled=false means the engine cannot
// partition this scan and the caller must take the gather path.
func (c *Compiled) tryOrderedVisit(ctx context.Context, req core.ScanRequest, keep func(core.UnitAux) bool, fn core.ScanFunc) (bool, error) {
	units, release, ok, err := c.table.PartitionUnits(req)
	if !ok {
		return false, nil
	}
	if err != nil {
		return true, err
	}
	defer release()

	limit := c.plan.Limit
	srcIdx := c.schema.ColumnIndex(c.plan.OrderCol)
	ctype := c.schema.Column(srcIdx).Type
	desc := c.plan.OrderDesc

	visits := make([]orderedVisitPlan, len(units))
	for i, u := range units {
		v := orderedVisitPlan{idx: i}
		v.bound, v.bounded, v.empty = unitOrderBound(u, srcIdx, ctype, desc)
		visits[i] = v
	}
	// Unbounded units first (they always run), then bounded units by
	// ascending bound favorability; arrival order breaks ties so equal
	// bounds keep their sequential relative order.
	bcmp := boundCmp(ctype, desc)
	sort.SliceStable(visits, func(i, j int) bool {
		a, b := visits[i], visits[j]
		if a.bounded != b.bounded {
			return !a.bounded
		}
		if !a.bounded {
			return a.idx < b.idx
		}
		if d := bcmp(a.bound, b.bound); d != 0 {
			return d < 0
		}
		return a.idx < b.idx
	})

	cmp := c.orderCmp()
	vcmp := func(a, b visitRec) int {
		if d := cmp(a.rec, b.rec); d != 0 {
			return d
		}
		if d := a.unit - b.unit; d != 0 {
			return d
		}
		return a.seq - b.seq
	}
	worse := boundWorse(ctype, desc, c.orderIdx)
	h := &visitHeap{cmp: vcmp}
	spec := c.execSpec()
	skipped := 0
	for _, v := range visits {
		if err := ctx.Err(); err != nil {
			return true, err
		}
		if v.empty || (v.bounded && h.Len() == limit && worse(v.bound, h.recs[0].rec)) {
			skipped++
			continue
		}
		seq := 0
		err := units[v.idx].Run(spec, func(rec *record.Record, aux core.UnitAux) bool {
			if ctx.Err() != nil {
				return false
			}
			if keep != nil && !keep(aux) {
				return true
			}
			r := visitRec{rec: rec, unit: v.idx, seq: seq}
			seq++
			if h.Len() < limit {
				r.rec = rec.Clone()
				heap.Push(h, r)
			} else if vcmp(r, h.recs[0]) < 0 {
				r.rec = rec.Clone()
				h.recs[0] = r
				heap.Fix(h, 0)
			}
			return true
		})
		if err != nil {
			return true, err
		}
	}
	if skipped > 0 {
		orderedSkips.Add(int64(skipped))
	}
	if err := ctx.Err(); err != nil {
		return true, err
	}
	sort.Slice(h.recs, func(i, j int) bool { return vcmp(h.recs[i], h.recs[j]) < 0 })
	for _, r := range h.recs {
		if !fn(r.rec) {
			return true, nil
		}
	}
	return true, nil
}
