package query

// Bounds extraction: the planner walks the typed predicate AST and
// derives, per referenced column, a conservative interval every
// matching record must fall into. The bounds ride on the compiled
// core.ScanSpec; engines test them against each segment's zone map
// (internal/store) and skip whole segments no matching record can
// live in. Conservativeness is the only contract — the compiled
// predicate still runs on every surviving record — so any node the
// walk cannot analyze simply contributes no constraint.

import (
	"bytes"
	"math"
	"sort"

	"decibel/internal/core"
	"decibel/internal/record"
	"decibel/internal/store"
)

// boundSet maps schema column index -> interval; a nil set means
// "no constraint derivable".
type boundSet map[int]*core.Bound

// extractBounds derives the spec bounds for e compiled against sc.
// It never fails: predicates the walk cannot analyze (Ne, Not, type
// errors the predicate compiler will surface anyway) yield fewer or no
// bounds.
func extractBounds(e Expr, sc colScope) []core.Bound {
	bs := boundsNode(e, sc)
	if len(bs) == 0 {
		return nil
	}
	out := make([]core.Bound, 0, len(bs))
	for _, b := range bs {
		if b.HasMin || b.HasMax {
			out = append(out, *b)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Col < out[j].Col })
	return out
}

func boundsNode(e Expr, sc colScope) boundSet {
	if e.isAll() {
		return nil
	}
	switch e.kind {
	case exprLeaf:
		return boundsLeaf(e, sc)
	case exprAnd:
		var acc boundSet
		for _, k := range e.kids {
			acc = intersectSets(acc, boundsNode(k, sc))
		}
		return acc
	case exprOr:
		if len(e.kids) == 0 {
			return nil
		}
		acc := boundsNode(e.kids[0], sc)
		for _, k := range e.kids[1:] {
			acc = unionSets(acc, boundsNode(k, sc))
			if acc == nil {
				return nil
			}
		}
		return acc
	default: // Not, unknown nodes: no constraint
		return nil
	}
}

func boundsLeaf(e Expr, sc colScope) boundSet {
	i := sc.schema.ColumnIndex(e.col)
	if i < 0 {
		return nil
	}
	c := sc.schema.Column(i)
	b := &core.Bound{Col: i, Type: c.Type}
	switch c.Type {
	case record.Int32, record.Int64:
		v, ok := asInt64(e.val)
		if !ok {
			return nil
		}
		switch e.op {
		case OpEq:
			b.HasMin, b.MinI = true, v
			b.HasMax, b.MaxI = true, v
		case OpLt:
			if v == math.MinInt64 {
				return nil
			}
			b.HasMax, b.MaxI = true, v-1
		case OpLe:
			b.HasMax, b.MaxI = true, v
		case OpGt:
			if v == math.MaxInt64 {
				return nil
			}
			b.HasMin, b.MinI = true, v+1
		case OpGe:
			b.HasMin, b.MinI = true, v
		default:
			return nil
		}
	case record.Float64:
		v, ok := asFloat64(e.val)
		if !ok || math.IsNaN(v) {
			return nil
		}
		switch e.op {
		case OpEq:
			b.HasMin, b.MinF = true, v
			b.HasMax, b.MaxF = true, v
		case OpLt, OpLe: // Lt kept inclusive: conservative, still correct
			b.HasMax, b.MaxF = true, v
		case OpGt, OpGe:
			b.HasMin, b.MinF = true, v
		default:
			return nil
		}
	case record.Bytes:
		v, ok := asBytes(e.val)
		if !ok {
			return nil
		}
		switch e.op {
		case OpEq:
			b.HasMin, b.MinB = true, v
			b.HasMax, b.MaxB = true, v
		case OpLt:
			b.HasMax, b.MaxB, b.MaxBExcl = true, v, true
		case OpLe:
			b.HasMax, b.MaxB = true, v
		case OpGt:
			b.HasMin, b.MinB, b.MinBExcl = true, v, true
		case OpGe:
			b.HasMin, b.MinB = true, v
		case OpPrefix:
			// Values with prefix p form the range [p, succ(p)).
			b.HasMin, b.MinB = true, v
			if s, ok := store.BytesSucc(v); ok {
				b.HasMax, b.MaxB, b.MaxBExcl = true, s, true
			}
		default:
			return nil
		}
	default:
		return nil
	}
	return boundSet{i: b}
}

// intersectSets conjoins two bound sets (AND): constraints on the same
// column tighten each other, and either side's exclusive columns carry
// over. A nil side constrains nothing.
func intersectSets(a, b boundSet) boundSet {
	if a == nil {
		return b
	}
	if b == nil {
		return a
	}
	for col, sb := range b {
		if sa, ok := a[col]; ok {
			tightenMin(sa, sb)
			tightenMax(sa, sb)
		} else {
			a[col] = sb
		}
	}
	return a
}

// unionSets disjoins two bound sets (OR): only columns constrained on
// BOTH sides stay constrained, with the looser end of each interval
// winning. Either side being unconstrained makes the whole disjunction
// unconstrained.
func unionSets(a, b boundSet) boundSet {
	if a == nil || b == nil {
		return nil
	}
	out := make(boundSet)
	for col, sa := range a {
		sb, ok := b[col]
		if !ok {
			continue
		}
		m := *sa
		loosenMin(&m, sb)
		loosenMax(&m, sb)
		if m.HasMin || m.HasMax {
			out[col] = &m
		}
	}
	if len(out) == 0 {
		return nil
	}
	return out
}

// tightenMin raises dst's lower end to src's when src's is stricter.
func tightenMin(dst, src *core.Bound) {
	if !src.HasMin {
		return
	}
	if !dst.HasMin {
		dst.HasMin = true
		copyMin(dst, src)
		return
	}
	switch cmpMin(src, dst) {
	case +1:
		copyMin(dst, src)
	case 0:
		if src.MinBExcl {
			dst.MinBExcl = true
		}
	}
}

// tightenMax lowers dst's upper end to src's when src's is stricter.
func tightenMax(dst, src *core.Bound) {
	if !src.HasMax {
		return
	}
	if !dst.HasMax {
		dst.HasMax = true
		copyMax(dst, src)
		return
	}
	switch cmpMax(src, dst) {
	case -1:
		copyMax(dst, src)
	case 0:
		if src.MaxBExcl {
			dst.MaxBExcl = true
		}
	}
}

// loosenMin lowers dst's lower end to src's (or drops it when src has
// none) so dst covers both intervals.
func loosenMin(dst, src *core.Bound) {
	if !dst.HasMin {
		return
	}
	if !src.HasMin {
		dst.HasMin = false
		return
	}
	switch cmpMin(src, dst) {
	case -1:
		copyMin(dst, src)
	case 0:
		if !src.MinBExcl {
			dst.MinBExcl = false
		}
	}
}

// loosenMax raises dst's upper end to src's (or drops it) so dst
// covers both intervals.
func loosenMax(dst, src *core.Bound) {
	if !dst.HasMax {
		return
	}
	if !src.HasMax {
		dst.HasMax = false
		return
	}
	switch cmpMax(src, dst) {
	case +1:
		copyMax(dst, src)
	case 0:
		if !src.MaxBExcl {
			dst.MaxBExcl = false
		}
	}
}

func copyMin(dst, src *core.Bound) {
	dst.MinI, dst.MinF, dst.MinB, dst.MinBExcl = src.MinI, src.MinF, src.MinB, src.MinBExcl
}

func copyMax(dst, src *core.Bound) {
	dst.MaxI, dst.MaxF, dst.MaxB, dst.MaxBExcl = src.MaxI, src.MaxF, src.MaxB, src.MaxBExcl
}

// cmpMin orders two lower ends (-1: a below b).
func cmpMin(a, b *core.Bound) int {
	switch a.Type {
	case record.Int32, record.Int64:
		return cmpI(a.MinI, b.MinI)
	case record.Float64:
		return cmpF(a.MinF, b.MinF)
	default:
		return bytes.Compare(a.MinB, b.MinB)
	}
}

// cmpMax orders two upper ends (-1: a below b).
func cmpMax(a, b *core.Bound) int {
	switch a.Type {
	case record.Int32, record.Int64:
		return cmpI(a.MaxI, b.MaxI)
	case record.Float64:
		return cmpF(a.MaxF, b.MaxF)
	default:
		return bytes.Compare(a.MaxB, b.MaxB)
	}
}

func cmpI(a, b int64) int {
	switch {
	case a < b:
		return -1
	case a > b:
		return +1
	default:
		return 0
	}
}

func cmpF(a, b float64) int {
	switch {
	case a < b:
		return -1
	case a > b:
		return +1
	default:
		return 0
	}
}
