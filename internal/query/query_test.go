package query

import (
	"sort"
	"testing"

	"decibel/internal/core"
	"decibel/internal/hy"
	"decibel/internal/record"
	"decibel/internal/tf"
	"decibel/internal/vf"
	"decibel/internal/vgraph"
)

func schema() *record.Schema {
	return record.MustSchema(
		record.Column{Name: "id", Type: record.Int64},
		record.Column{Name: "v", Type: record.Int64},
	)
}

func rec(s *record.Schema, pk, v int64) *record.Record {
	r := record.New(s)
	r.SetPK(pk)
	r.Set(1, v)
	return r
}

// fixture builds: master with pks 1..10 (v = pk), committed; branch dev
// with pk 3 updated (v=33), pk 10 deleted, pk 11 added.
func fixture(t *testing.T, factory core.Factory) (*core.Database, *core.Table, *vgraph.Branch, *vgraph.Branch) {
	t.Helper()
	db, err := core.Open(t.TempDir(), factory, core.Options{PageSize: 4096, PoolPages: 16})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { db.Close() })
	s := schema()
	if _, err := db.CreateTable("r", s); err != nil {
		t.Fatal(err)
	}
	master, _, err := db.Init("init")
	if err != nil {
		t.Fatal(err)
	}
	tbl, _ := db.Table("r")
	for pk := int64(1); pk <= 10; pk++ {
		tbl.Insert(master.ID, rec(s, pk, pk))
	}
	db.Commit(master.ID, "base")
	dev, err := db.BranchFromHead("dev", "master")
	if err != nil {
		t.Fatal(err)
	}
	tbl.Insert(dev.ID, rec(s, 3, 33))
	tbl.Delete(dev.ID, 10)
	tbl.Insert(dev.ID, rec(s, 11, 11))
	return db, tbl, master, dev
}

func factories() map[string]core.Factory {
	return map[string]core.Factory{
		"tuple-first":   tf.Factory,
		"version-first": vf.Factory,
		"hybrid":        hy.Factory,
	}
}

func TestQ1SingleVersionScan(t *testing.T) {
	for name, f := range factories() {
		t.Run(name, func(t *testing.T) {
			_, tbl, master, dev := fixture(t, f)
			n, err := Count(tbl, master.ID, True)
			if err != nil || n != 10 {
				t.Fatalf("master count = %d (%v)", n, err)
			}
			n, _ = Count(tbl, dev.ID, True)
			if n != 10 { // 10 - deleted + added
				t.Fatalf("dev count = %d", n)
			}
			// Predicate pushdown.
			n, _ = Count(tbl, dev.ID, ColumnEquals(1, 33))
			if n != 1 {
				t.Fatalf("pred count = %d", n)
			}
			n, _ = Count(tbl, master.ID, ColumnLess(1, 6))
			if n != 5 {
				t.Fatalf("less count = %d", n)
			}
		})
	}
}

func TestQ2PositiveDiff(t *testing.T) {
	for name, f := range factories() {
		t.Run(name, func(t *testing.T) {
			_, tbl, master, dev := fixture(t, f)
			// dev-not-master: updated 3 (new copy), added 11.
			var pks []int64
			err := PositiveDiff(tbl, dev.ID, master.ID, func(r *record.Record) bool {
				pks = append(pks, r.PK())
				return true
			})
			if err != nil {
				t.Fatal(err)
			}
			sort.Slice(pks, func(i, j int) bool { return pks[i] < pks[j] })
			if len(pks) != 2 || pks[0] != 3 || pks[1] != 11 {
				t.Fatalf("dev-not-master = %v", pks)
			}
			// master-not-dev: old copy of 3, deleted 10.
			pks = nil
			PositiveDiff(tbl, master.ID, dev.ID, func(r *record.Record) bool {
				pks = append(pks, r.PK())
				return true
			})
			sort.Slice(pks, func(i, j int) bool { return pks[i] < pks[j] })
			if len(pks) != 2 || pks[0] != 3 || pks[1] != 10 {
				t.Fatalf("master-not-dev = %v", pks)
			}
		})
	}
}

func TestQ3VersionJoin(t *testing.T) {
	for name, f := range factories() {
		t.Run(name, func(t *testing.T) {
			_, tbl, master, dev := fixture(t, f)
			// Join all shared keys: 1..9 (10 deleted in dev, 11 absent in master).
			n := 0
			err := VersionJoin(tbl, master.ID, dev.ID, True, func(p JoinedPair) bool {
				if p.Left.PK() != p.Right.PK() {
					t.Fatalf("join key mismatch: %d vs %d", p.Left.PK(), p.Right.PK())
				}
				if p.Left.PK() == 3 && (p.Left.Get(1) != 3 || p.Right.Get(1) != 33) {
					t.Fatalf("versions swapped: %v %v", p.Left, p.Right)
				}
				n++
				return true
			})
			if err != nil {
				t.Fatal(err)
			}
			if n != 9 {
				t.Fatalf("join rows = %d, want 9", n)
			}
			// Selective predicate on the left side.
			n = 0
			VersionJoin(tbl, master.ID, dev.ID, ColumnEquals(1, 5), func(JoinedPair) bool { n++; return true })
			if n != 1 {
				t.Fatalf("selective join rows = %d", n)
			}
		})
	}
}

func TestQ4HeadScan(t *testing.T) {
	for name, f := range factories() {
		t.Run(name, func(t *testing.T) {
			db, tbl, master, dev := fixture(t, f)
			perBranch := map[vgraph.BranchID]int{}
			rows := 0
			err := HeadScan(db.Graph(), tbl, True, func(hr HeadRecord) bool {
				rows++
				if len(hr.Branches) == 0 {
					t.Fatal("record with no active branches")
				}
				for _, b := range hr.Branches {
					perBranch[b]++
				}
				return true
			})
			if err != nil {
				t.Fatal(err)
			}
			if perBranch[master.ID] != 10 || perBranch[dev.ID] != 10 {
				t.Fatalf("per-branch counts = %v", perBranch)
			}
			// Shared records are emitted once with multiple branches, so the
			// number of distinct rows is below the sum of branch counts.
			if rows >= 20 {
				t.Fatalf("rows = %d, expected sharing", rows)
			}
		})
	}
}

func TestPredicateCombinators(t *testing.T) {
	s := schema()
	r5 := rec(s, 5, 50)
	if !And(ColumnEquals(1, 50), ColumnLess(0, 6))(r5) {
		t.Fatal("and failed")
	}
	if Or(ColumnEquals(1, 1), ColumnEquals(1, 2))(r5) {
		t.Fatal("or matched wrongly")
	}
	if Not(True)(r5) {
		t.Fatal("not true matched")
	}
	if !ColumnMod(0, 5, 0)(r5) {
		t.Fatal("mod failed")
	}
	rNeg := rec(s, -3, 0)
	if !ColumnMod(0, 5, 2)(rNeg) { // -3 mod 5 = 2
		t.Fatal("negative mod failed")
	}
}

func TestSum(t *testing.T) {
	for name, f := range factories() {
		t.Run(name, func(t *testing.T) {
			_, tbl, master, _ := fixture(t, f)
			s, err := Sum(tbl, master.ID, 1, True)
			if err != nil || s != 55 {
				t.Fatalf("sum = %d (%v)", s, err)
			}
		})
	}
}
