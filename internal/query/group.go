package query

// Grouped aggregation. A Plan with GroupCols buckets the scanned rows
// by the named columns and folds per-group aggregates in one streaming
// pass — bounded hash aggregation: the state is one accumulator per
// distinct group, never the rows themselves. The fold pushes its own
// projection into the scan's ScanSpec (only the group and aggregate
// columns are decoded) and rides the parallel executor the same way
// scalar aggregates do: per-worker partial folds merged in unit order,
// so the parallel stream is byte-identical to the sequential one.
//
// Groups emit in first-arrival order — the order the sequential scan
// first sees each distinct key. The parallel merge visits unit partials
// in unit order and appends unseen keys as it goes, which reproduces
// exactly that order (units partition the scan in sequential order).
// The one caveat is inherited from scalar aggregates: a parallel float
// Sum/Avg associates additions differently and can differ in the last
// ulps on data where addition order matters.

import (
	"context"
	"encoding/binary"
	"fmt"
	"math"

	"decibel/internal/bitmap"
	"decibel/internal/core"
	"decibel/internal/record"
	"decibel/internal/vgraph"
)

// AggSpec names one grouped aggregate: the fold kind and, for every
// kind but AggCount, the column it folds.
type AggSpec struct {
	Kind AggKind
	Col  string
}

// GroupRow is one group of a grouped aggregation: the group-by column
// values (int64, float64 or []byte, in GroupBy order) and one result
// per requested aggregate, in request order. Aggregates are float64
// like the scalar terminals; integer sums convert on emission.
type GroupRow struct {
	Key  []any
	Aggs []float64
}

// compileGroupBy resolves the plan's GroupCols. For a single-table
// plan they resolve in the table schema (the fold projects them into
// its own spec); for a join-composed plan they resolve across the
// relations' output schemas in declaration order, first match wins.
func (c *Compiled) compileGroupBy() error {
	p := c.plan
	if p.OrderCol != "" || p.Limit > 0 {
		return fmt.Errorf("%w: OrderBy/Limit do not apply to a grouped query; groups emit in first-arrival order", core.ErrBadQuery)
	}
	seen := make(map[string]bool, len(p.GroupCols))
	for _, name := range p.GroupCols {
		if seen[name] {
			return fmt.Errorf("%w: duplicate GroupBy column %q", core.ErrBadQuery, name)
		}
		seen[name] = true
	}
	c.groupIdx = make([]int, len(p.GroupCols))
	if c.join != nil {
		c.groupRels = make([]int, len(p.GroupCols))
		for i, name := range p.GroupCols {
			ri, ci, _, err := findJoinCol(c.join.rels, name)
			if err != nil {
				return err
			}
			c.groupRels[i] = ri
			c.groupIdx[i] = ci
		}
		return nil
	}
	scope := colScope{schema: c.schema, hist: c.table.History(), epoch: c.epoch}
	for i, name := range p.GroupCols {
		ci := c.schema.ColumnIndex(name)
		if ci < 0 {
			return scope.missing(name)
		}
		if c.cols != nil && c.proto.Out().ColumnIndex(name) < 0 {
			return fmt.Errorf("%w: GroupBy column %q is not part of the Select projection", core.ErrBadQuery, name)
		}
		c.groupIdx[i] = ci
	}
	return nil
}

// groupAggCol is one resolved aggregate: its fold kind and the source
// column — an output-schema index (plus, for join plans, the relation
// it lives in).
type groupAggCol struct {
	kind    AggKind
	rel     int // relation index; 0 for single-table plans
	col     int
	isFloat bool
}

// groupKeyCol is one resolved group-by column.
type groupKeyCol struct {
	rel int
	col int
	typ record.Type
}

// groupFold is the bounded hash-aggregation state: one accumulator per
// distinct key, plus the first-arrival order the groups emit in. The
// parallel path runs one fold per scan unit and merges them in unit
// order, reproducing the sequential fold's emission exactly.
type groupFold struct {
	keys  []groupKeyCol
	aggs  []groupAggCol
	m     map[string]*groupAcc
	order []string
	buf   []byte
}

// groupAcc is one group's accumulator: the decoded key values and one
// scalar partial per aggregate.
type groupAcc struct {
	key   []any
	parts []aggPart
}

func newGroupFold(keys []groupKeyCol, aggs []groupAggCol) *groupFold {
	return &groupFold{keys: keys, aggs: aggs, m: make(map[string]*groupAcc)}
}

// fresh clones the fold's configuration with empty state — one per
// parallel scan unit.
func (g *groupFold) fresh() *groupFold { return newGroupFold(g.keys, g.aggs) }

// encodeKey appends column k's value from rec to the hash key.
func (g *groupFold) encodeKey(buf []byte, k groupKeyCol, rec *record.Record) []byte {
	switch k.typ {
	case record.Float64:
		buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(rec.GetFloat64(k.col)))
	case record.Bytes:
		b := rec.GetBytes(k.col)
		buf = binary.LittleEndian.AppendUint32(buf, uint32(len(b)))
		buf = append(buf, b...)
	default:
		buf = binary.LittleEndian.AppendUint64(buf, uint64(rec.Get(k.col)))
	}
	return buf
}

// keyValue decodes column k's value from rec for the emitted GroupRow.
func keyValue(k groupKeyCol, rec *record.Record) any {
	switch k.typ {
	case record.Float64:
		return rec.GetFloat64(k.col)
	case record.Bytes:
		return append([]byte(nil), rec.GetBytes(k.col)...)
	default:
		return rec.Get(k.col)
	}
}

// observe folds one row into its group. pick maps a key or aggregate
// column to the record holding it — identity for single-table scans,
// tuple indexing for joins.
func (g *groupFold) observe(pick func(rel int) *record.Record) {
	g.buf = g.buf[:0]
	for _, k := range g.keys {
		g.buf = g.encodeKey(g.buf, k, pick(k.rel))
	}
	acc := g.m[string(g.buf)]
	if acc == nil {
		acc = &groupAcc{key: make([]any, len(g.keys)), parts: make([]aggPart, len(g.aggs))}
		for i, k := range g.keys {
			acc.key[i] = keyValue(k, pick(k.rel))
		}
		key := string(g.buf)
		g.m[key] = acc
		g.order = append(g.order, key)
	}
	for i, a := range g.aggs {
		p := &acc.parts[i]
		p.n++
		if a.kind == AggCount {
			continue
		}
		rec := pick(a.rel)
		var v float64
		if a.isFloat {
			v = rec.GetFloat64(a.col)
			p.fsum += v
		} else {
			iv := rec.Get(a.col)
			p.isum += iv
			v = float64(iv)
		}
		if p.n == 1 || v < p.fmin {
			p.fmin = v
		}
		if p.n == 1 || v > p.fmax {
			p.fmax = v
		}
	}
}

// add folds one single-table row.
func (g *groupFold) add(rec *record.Record) {
	g.observe(func(int) *record.Record { return rec })
}

// addTuple folds one joined tuple.
func (g *groupFold) addTuple(t JoinTuple) {
	g.observe(func(rel int) *record.Record { return t[rel] })
}

// mergeFrom folds a later unit's partial into the running total,
// appending keys the total has not seen in the partial's own arrival
// order — with units visited in unit order this reproduces the
// sequential first-arrival order.
func (g *groupFold) mergeFrom(p *groupFold) {
	for _, key := range p.order {
		src := p.m[key]
		dst := g.m[key]
		if dst == nil {
			g.m[key] = src
			g.order = append(g.order, key)
			continue
		}
		for i := range dst.parts {
			dst.parts[i].merge(&src.parts[i])
		}
	}
}

// emit replays the groups in first-arrival order. A group exists only
// once a row arrived, so Min/Max/Avg never fold an empty group.
func (g *groupFold) emit(fn func(*GroupRow) bool) {
	for _, key := range g.order {
		acc := g.m[key]
		row := &GroupRow{Key: acc.key, Aggs: make([]float64, len(g.aggs))}
		for i, a := range g.aggs {
			p := &acc.parts[i]
			switch a.kind {
			case AggCount:
				row.Aggs[i] = float64(p.n)
			case AggSum:
				if a.isFloat {
					row.Aggs[i] = p.fsum
				} else {
					row.Aggs[i] = float64(p.isum)
				}
			case AggAvg:
				if a.isFloat {
					row.Aggs[i] = p.fsum / float64(p.n)
				} else {
					row.Aggs[i] = float64(p.isum) / float64(p.n)
				}
			case AggMin:
				row.Aggs[i] = p.fmin
			default:
				row.Aggs[i] = p.fmax
			}
		}
		if !fn(row) {
			return
		}
	}
}

// resolveAggCol validates one aggregate's kind and source column. For
// single-table plans the column resolves in the table schema; for join
// plans across the relations' output schemas.
func (c *Compiled) resolveAggCol(a AggSpec) (groupAggCol, error) {
	if a.Kind > AggAvg {
		return groupAggCol{}, fmt.Errorf("%w: unknown aggregate kind %d", core.ErrBadQuery, a.Kind)
	}
	if a.Kind == AggCount {
		return groupAggCol{kind: AggCount}, nil
	}
	var t record.Type
	out := groupAggCol{kind: a.Kind}
	if c.join != nil {
		ri, ci, ct, err := findJoinCol(c.join.rels, a.Col)
		if err != nil {
			return groupAggCol{}, err
		}
		out.rel, out.col, t = ri, ci, ct
	} else {
		ci := c.schema.ColumnIndex(a.Col)
		if ci < 0 {
			return groupAggCol{}, (colScope{schema: c.schema, hist: c.table.History(), epoch: c.epoch}).missing(a.Col)
		}
		out.col, t = ci, c.schema.Column(ci).Type
	}
	switch t {
	case record.Int32, record.Int64:
	case record.Float64:
		out.isFloat = true
	default:
		return groupAggCol{}, fmt.Errorf("%w: aggregate over %v column %q", core.ErrTypeMismatch, t, a.Col)
	}
	return out, nil
}

// GroupScan executes the grouped aggregation: one streaming pass over
// the plan's scan shape (single-version, historical, multi-branch, or
// a composed join), emitting one GroupRow per distinct key in
// first-arrival order. With no aggregates requested it degenerates to
// DISTINCT over the group columns (every Aggs slice empty).
func (c *Compiled) GroupScan(ctx context.Context, aggs []AggSpec, fn func(*GroupRow) bool) error {
	if len(c.plan.GroupCols) == 0 {
		return fmt.Errorf("%w: Groups needs a GroupBy clause", core.ErrBadQuery)
	}
	acols := make([]groupAggCol, len(aggs))
	for i, a := range aggs {
		ac, err := c.resolveAggCol(a)
		if err != nil {
			return err
		}
		acols[i] = ac
	}

	if c.join != nil {
		keys := make([]groupKeyCol, len(c.groupIdx))
		for i := range c.groupIdx {
			rel, col := c.groupRels[i], c.groupIdx[i]
			keys[i] = groupKeyCol{rel: rel, col: col, typ: c.join.rels[rel].OutSchema().Column(col).Type}
		}
		fold := newGroupFold(keys, acols)
		if err := c.join.run(ctx, c.plan.NoReorder, func(t JoinTuple) bool { fold.addTuple(t); return true }); err != nil {
			return err
		}
		fold.emit(fn)
		return nil
	}

	// The fold reads exactly the group and aggregate columns, so the
	// scan spec projects them (plus the always-kept pk) and nothing
	// else — engines with column stores decode only what the fold
	// touches. The user's Select does not widen this: it constrains the
	// group columns at compile time but the fold owns its projection,
	// like scalar aggregates do.
	proj := make([]int, 0, len(c.groupIdx)+len(acols))
	seen := make(map[int]bool, cap(proj))
	for _, ci := range c.groupIdx {
		if !seen[ci] {
			seen[ci] = true
			proj = append(proj, ci)
		}
	}
	for _, a := range acols {
		if a.kind != AggCount && !seen[a.col] {
			seen[a.col] = true
			proj = append(proj, a.col)
		}
	}
	spec, err := core.NewScanSpecAt(c.table.History(), c.epoch, c.pred, proj)
	if err != nil {
		return err
	}
	spec.SetBounds(c.bounds)
	out := spec.Out()

	keys := make([]groupKeyCol, len(c.groupIdx))
	for i, ci := range c.groupIdx {
		name := c.schema.Column(ci).Name
		keys[i] = groupKeyCol{col: out.ColumnIndex(name), typ: c.schema.Column(ci).Type}
	}
	for i := range acols {
		if acols[i].kind == AggCount {
			continue
		}
		acols[i].col = out.ColumnIndex(c.schema.Column(acols[i].col).Name)
	}

	fold := newGroupFold(keys, acols)
	var req core.ScanRequest
	var ids []vgraph.BranchID
	if c.plan.AllHeads || len(c.branches) > 1 {
		ids = make([]vgraph.BranchID, len(c.branches))
		for i, b := range c.branches {
			ids[i] = b.ID
		}
		req = core.ScanRequest{Kind: core.ScanKindMulti, Branches: ids}
	} else if c.commit != nil {
		req = core.ScanRequest{Kind: core.ScanKindCommit, Commit: c.commit}
	} else {
		req = core.ScanRequest{Kind: core.ScanKindBranch, Branch: c.branches[0].ID}
	}
	if handled, perr := c.tryParallelGroups(ctx, req, spec, fold); handled || perr != nil {
		if perr != nil {
			return perr
		}
	} else {
		acc := func(rec *record.Record) bool { fold.add(rec); return true }
		if ids != nil {
			err = c.table.ScanMultiPushdownContext(ctx, ids, spec, func(rec *record.Record, _ *bitmap.Bitmap) bool {
				return acc(rec)
			})
		} else if c.commit != nil {
			err = c.table.ScanCommitPushdownContext(ctx, c.commit, spec, acc)
		} else {
			err = c.table.ScanPushdownContext(ctx, c.branches[0].ID, spec, acc)
		}
		if err != nil {
			return err
		}
	}
	fold.emit(fn)
	return nil
}
