package query

// This file holds the logical query plan behind the facade's fluent
// builder (decibel.DB.Query) and its compiler/executor. A Plan is
// purely declarative — table, branches, version, predicate, projection
// — and compiling it against a Database resolves every name through
// the catalog and version graph, compiles the typed predicate to its
// raw form, and packages both into the core.ScanSpec the storage
// engines execute through the PushdownScanner capability (with a
// generic post-filter fallback for engines that lack it).

import (
	"context"
	"fmt"

	"decibel/internal/bitmap"
	"decibel/internal/core"
	"decibel/internal/record"
	"decibel/internal/vgraph"
)

// Plan is a logical versioned query: one of the paper's Table 1 shapes
// over named branches of a named table, with an optional typed
// predicate and column projection.
type Plan struct {
	Table    string   // relation name
	Branches []string // scanned branches: 1 = single-version, 2 = diff/join, n = multi
	AllHeads bool     // multi-branch scan over every branch head (Query 4)
	AtSeq    int      // >= 0: the AtSeq'th commit made on Branches[0] (historical read); -1 = head

	// AtCommit pins the read to an explicit commit ID (vgraph.None =
	// unset). Unlike AtSeq it addresses any commit reachable from the
	// graph — including a fresh branch's head, which still belongs to
	// the parent branch's commit sequence — so snapshot readers (the
	// server) pin the head they resolved rather than a per-branch
	// coordinate.
	AtCommit vgraph.CommitID
	Where    Expr     // typed predicate; zero value matches all
	Cols     []string // projected columns; nil = all (the pk is always kept)

	// OrderCol orders emitted rows by the named column ("" = storage
	// order); OrderDesc flips the direction. Limit caps the number of
	// emitted rows (0 = unlimited). With both set the executor keeps a
	// top-k heap instead of gathering the full result.
	OrderCol  string
	OrderDesc bool
	Limit     int

	// NoPrune disables zone-map segment pruning for this plan: the
	// retained baseline the pruning benchmarks and the property tests
	// measure the pruned paths against.
	NoPrune bool

	// NoParallel pins this plan to the sequential scan path even when
	// the database's parallel executor would accept it: the baseline
	// the equivalence tests and the parallel-scan benchmarks compare
	// against.
	NoParallel bool

	// Joins composes N-way equi-joins: each leg is a single-table
	// sub-plan joined to the relations declared before it (the root
	// plan is relation 0). The executor reorders the relations greedily
	// by zone-map row estimate unless NoReorder is set; the result is
	// identical either way (see join.go).
	Joins []JoinLeg

	// NoReorder pins the join execution to the declared relation order,
	// bypassing the greedy zone-map ordering: the baseline the
	// join-ordering benchmarks compare against.
	NoReorder bool

	// GroupCols makes the plan a grouped aggregation: rows bucket by
	// the named columns and the Groups terminal folds per-group
	// aggregates (see group.go). Mutually exclusive with OrderBy/Limit.
	GroupCols []string
}

// Compiled is a plan resolved against one database: names bound, the
// schema resolved as of the addressed version, predicate compiled,
// pushdown spec built. A Compiled is reusable across executions — each
// run clones the spec's projection scratch (the only stateful piece),
// so callers can compile once and execute many times instead of
// re-planning per call. It binds the catalog and version graph as of
// compile time: after a schema change or new commits moved the
// addressed heads, compile again.
type Compiled struct {
	db       *core.Database
	table    *core.Table
	plan     Plan
	branches []*vgraph.Branch
	commit   *vgraph.Commit // non-nil when AtSeq >= 0
	epoch    int            // schema epoch the query addresses
	schema   *record.Schema // schema visible at epoch
	pred     RawPredicate
	bounds   []core.Bound   // zone-map pruning bounds (nil with NoPrune)
	cols     []int          // resolved projection (nil = all)
	proto    *core.ScanSpec // pred + projection + bounds; cloned per execution
	orderIdx int            // OrderCol's index in the output schema; -1 = unordered
	join     *joinPlan      // non-nil when the plan composes joins

	// GroupCols resolved: schema column indices for a single-table plan;
	// for a join-composed plan groupRels names the relation each group
	// column comes from and groupIdx its index in that relation's output
	// schema (groupRels is nil for single-table plans).
	groupIdx  []int
	groupRels []int
}

// Compile resolves and validates the plan against db. All validation
// failures wrap sentinel errors: core.ErrNoSuchTable,
// core.ErrNoSuchBranch, core.ErrNoSuchCommit, core.ErrNoSuchColumn,
// core.ErrTypeMismatch and core.ErrBadQuery.
func (p Plan) Compile(db *core.Database) (*Compiled, error) {
	t, err := db.TableByName(p.Table)
	if err != nil {
		return nil, err
	}
	c := &Compiled{db: db, table: t, plan: p}

	if p.AllHeads {
		if len(p.Branches) > 0 {
			return nil, fmt.Errorf("%w: Heads() combined with explicit branches", core.ErrBadQuery)
		}
		c.branches = db.Graph().Branches()
	} else {
		if len(p.Branches) == 0 {
			return nil, fmt.Errorf("%w: no branch given; use On or Heads", core.ErrBadQuery)
		}
		c.branches = make([]*vgraph.Branch, len(p.Branches))
		for i, name := range p.Branches {
			b, err := db.BranchNamed(name)
			if err != nil {
				return nil, err
			}
			c.branches[i] = b
		}
	}

	if p.AtSeq >= 0 {
		if p.AllHeads || len(c.branches) != 1 {
			return nil, fmt.Errorf("%w: At() requires exactly one branch", core.ErrBadQuery)
		}
		for _, cm := range db.Graph().CommitsOnBranch(c.branches[0].ID) {
			if cm.Seq == p.AtSeq {
				c.commit = cm
				break
			}
		}
		if c.commit == nil {
			return nil, fmt.Errorf("%w: %s@%d", core.ErrNoSuchCommit, c.branches[0].Name, p.AtSeq)
		}
	}

	if p.AtCommit != vgraph.None {
		if p.AtSeq >= 0 {
			return nil, fmt.Errorf("%w: At() combined with AtCommit()", core.ErrBadQuery)
		}
		if p.AllHeads || len(c.branches) != 1 {
			return nil, fmt.Errorf("%w: AtCommit() requires exactly one branch", core.ErrBadQuery)
		}
		cm, ok := db.Graph().Commit(p.AtCommit)
		if !ok {
			return nil, fmt.Errorf("%w: id %d", core.ErrNoSuchCommit, p.AtCommit)
		}
		c.commit = cm
	}

	// Resolve the schema as of the addressed version: the commit's
	// stamped epoch for At(), otherwise the newest head epoch among the
	// scanned branches (rows from older branches or segments widen with
	// defaults at scan time). Columns a later epoch introduces fail
	// with ErrColumnNotYetAdded.
	if c.commit != nil {
		c.epoch = c.commit.SchemaVer
	} else {
		ids := make([]vgraph.BranchID, len(c.branches))
		for i, b := range c.branches {
			ids[i] = b.ID
		}
		c.epoch = t.MaxBranchEpoch(ids)
	}
	c.schema = t.SchemaAt(c.epoch)
	scope := colScope{schema: c.schema, hist: t.History(), epoch: c.epoch}
	c.pred, err = compileExprScope(p.Where, scope)
	if err != nil {
		return nil, err
	}
	if p.Cols != nil {
		c.cols = make([]int, len(p.Cols))
		for i, name := range p.Cols {
			ci := c.schema.ColumnIndex(name)
			if ci < 0 {
				return nil, scope.missing(name)
			}
			c.cols[i] = ci
		}
	}
	c.proto, err = core.NewScanSpecAt(t.History(), c.epoch, c.pred, c.cols)
	if err != nil {
		return nil, err
	}
	if !p.NoPrune {
		c.bounds = extractBounds(p.Where, scope)
		c.proto.SetBounds(c.bounds)
	}

	c.orderIdx = -1
	if p.OrderCol != "" {
		if c.schema.ColumnIndex(p.OrderCol) < 0 {
			return nil, scope.missing(p.OrderCol)
		}
		c.orderIdx = c.proto.Out().ColumnIndex(p.OrderCol)
		if c.orderIdx < 0 {
			return nil, fmt.Errorf("%w: OrderBy column %q is not part of the Select projection", core.ErrBadQuery, p.OrderCol)
		}
	}
	if p.Limit < 0 {
		return nil, fmt.Errorf("%w: negative Limit %d", core.ErrBadQuery, p.Limit)
	}
	if len(p.Joins) > 0 {
		if err := c.compileJoins(db); err != nil {
			return nil, err
		}
	}
	if len(p.GroupCols) > 0 {
		if err := c.compileGroupBy(); err != nil {
			return nil, err
		}
	}
	return c, nil
}

// Branches returns the resolved branches in scan order; for a
// multi-branch scan, membership bitmap bit i corresponds to the i-th
// entry.
func (c *Compiled) Branches() []*vgraph.Branch { return c.branches }

// OutSchema returns the schema of the records the query emits (the
// projected schema when Select was used).
func (c *Compiled) OutSchema() *record.Schema { return c.proto.Out() }

// Epoch returns the schema epoch the query addresses.
func (c *Compiled) Epoch() int { return c.epoch }

// execSpec returns the scan spec for one execution: the compiled
// prototype, cloned so each run owns its projection scratch.
func (c *Compiled) execSpec() *core.ScanSpec { return c.proto.Clone() }

// single checks the plan addresses exactly one version.
func (c *Compiled) single() error {
	if c.plan.AllHeads || len(c.branches) != 1 {
		return fmt.Errorf("%w: this terminal needs exactly one branch", core.ErrBadQuery)
	}
	return nil
}

// rowShape rejects row/scalar terminals on plans composed with joins
// or GroupBy — those run through the Tuples and Groups terminals.
func (c *Compiled) rowShape(terminal string) error {
	if c.join != nil {
		return fmt.Errorf("%w: %s does not apply to a join-composed query; use Tuples or Groups", core.ErrBadQuery, terminal)
	}
	if len(c.plan.GroupCols) > 0 {
		return fmt.Errorf("%w: %s does not apply to a grouped query; use Groups", core.ErrBadQuery, terminal)
	}
	return nil
}

// pair checks the plan addresses exactly two branch heads.
func (c *Compiled) pair() error {
	if c.plan.AllHeads || len(c.branches) != 2 || c.commit != nil {
		return fmt.Errorf("%w: this terminal needs exactly two branch heads", core.ErrBadQuery)
	}
	return nil
}

// Scan executes a single-version scan (Query 1): the branch head, or
// the checked-out commit when the plan has AtSeq/AtCommit. A head scan
// whose predicate pins the primary key to one value is served from the
// engine's pk index (a point lookup) instead of a segment scan when
// the engine has the capability; the full predicate and projection
// still run on the looked-up record, so the result is identical.
func (c *Compiled) Scan(ctx context.Context, fn core.ScanFunc) error {
	if err := c.rowShape("Rows"); err != nil {
		return err
	}
	if err := c.single(); err != nil {
		return err
	}
	if c.commit != nil {
		req := core.ScanRequest{Kind: core.ScanKindCommit, Commit: c.commit}
		if handled, err := c.tryParallelRows(ctx, req, nil, fn); handled {
			return err
		}
		return c.table.ScanCommitPushdownContext(ctx, c.commit, c.execSpec(), fn)
	}
	if pk, ok := c.pointPK(); ok {
		served, err := c.table.LookupPKPushdownContext(ctx, c.branches[0].ID, pk, c.execSpec(), fn)
		if served || err != nil {
			return err
		}
	}
	req := core.ScanRequest{Kind: core.ScanKindBranch, Branch: c.branches[0].ID}
	if handled, err := c.tryParallelRows(ctx, req, nil, fn); handled {
		return err
	}
	return c.table.ScanPushdownContext(ctx, c.branches[0].ID, c.execSpec(), fn)
}

// pointPK reports whether the extracted bounds pin the primary key
// (column 0, always Int64) to exactly one value — the planner's signal
// that the scan is a point lookup. Bounds are conservative, so a point
// bound never excludes a matching record; the engines re-run the full
// predicate on the record the index yields. NoPrune plans extract no
// bounds and keep the scan path (the benchmark baseline).
func (c *Compiled) pointPK() (int64, bool) {
	for i := range c.bounds {
		b := &c.bounds[i]
		if b.Col == 0 && b.HasMin && b.HasMax && b.MinI == b.MaxI {
			return b.MinI, true
		}
	}
	return 0, false
}

// ScanMulti executes a multi-branch scan (Query 4) over the plan's
// branches (or every head with AllHeads) as one engine pass; bit i of
// the membership bitmap corresponds to Branches()[i].
func (c *Compiled) ScanMulti(ctx context.Context, fn core.MultiScanFunc) error {
	if err := c.rowShape("Annotated"); err != nil {
		return err
	}
	if c.commit != nil {
		return fmt.Errorf("%w: At() cannot combine with a multi-branch scan", core.ErrBadQuery)
	}
	ids := make([]vgraph.BranchID, len(c.branches))
	for i, b := range c.branches {
		ids[i] = b.ID
	}
	if handled, err := c.tryParallelMulti(ctx, core.ScanRequest{Kind: core.ScanKindMulti, Branches: ids}, fn); handled {
		return err
	}
	return c.table.ScanMultiPushdownContext(ctx, ids, c.execSpec(), fn)
}

// ScanMultiRescan executes the same multi-branch scan as ScanMulti the
// pre-pushdown way: one independent rescan per branch, merged by
// primary key in memory. It exists as the measurable baseline for the
// pushdown benchmarks and for engines whose ScanMulti is unavailable.
func (c *Compiled) ScanMultiRescan(ctx context.Context, fn core.MultiScanFunc) error {
	if c.commit != nil {
		return fmt.Errorf("%w: At() cannot combine with a multi-branch scan", core.ErrBadQuery)
	}
	type entry struct {
		rec    *record.Record
		member *bitmap.Bitmap
	}
	// Merge by record contents, not primary key: an updated key is live
	// as different copies in different branches and each copy keeps its
	// own membership, matching what the engines' single-pass ScanMulti
	// emits.
	merged := make(map[string]*entry)
	order := make([]string, 0)
	for i, b := range c.branches {
		// Each rescan clones the spec so it owns a fresh projection
		// scratch (part of the per-branch rescan overhead).
		err := c.table.ScanPushdownContext(ctx, b.ID, c.execSpec(), func(rec *record.Record) bool {
			key := string(rec.Bytes())
			en := merged[key]
			if en == nil {
				en = &entry{rec: rec.Clone(), member: bitmap.New(len(c.branches))}
				merged[key] = en
				order = append(order, key)
			}
			en.member.Set(i)
			return true
		})
		if err != nil {
			return err
		}
	}
	for _, key := range order {
		en := merged[key]
		if !fn(en.rec, en.member) {
			return nil
		}
	}
	return nil
}

// Diff executes a positive diff (Query 2): records live in
// Branches()[0] but not Branches()[1], with predicate, projection and
// zone-map pruning pushed into the engine's diff loop (engines without
// the DiffScanner capability post-filter above their plain Diff).
func (c *Compiled) Diff(ctx context.Context, fn core.ScanFunc) error {
	if err := c.rowShape("Diff"); err != nil {
		return err
	}
	if err := c.pair(); err != nil {
		return err
	}
	req := core.ScanRequest{Kind: core.ScanKindDiff, A: c.branches[0].ID, B: c.branches[1].ID}
	if handled, err := c.tryParallelRows(ctx, req, func(aux core.UnitAux) bool { return aux.InA }, fn); handled {
		return err
	}
	return c.table.ScanDiffPushdownContext(ctx, c.branches[0].ID, c.branches[1].ID, c.execSpec(),
		func(rec *record.Record, inA bool) bool {
			if !inA {
				return true
			}
			return fn(rec)
		})
}

// DiffPostFilter executes the same positive diff as Diff the
// pre-pushdown way: the engine's plain Diff materializes every
// differing record and the spec is applied above it. It exists as the
// measurable baseline for the diff-pushdown benchmarks.
func (c *Compiled) DiffPostFilter(ctx context.Context, fn core.ScanFunc) error {
	if err := c.pair(); err != nil {
		return err
	}
	spec := c.execSpec()
	var ferr error
	err := c.table.ScanDiffContext(ctx, c.branches[0].ID, c.branches[1].ID, func(rec *record.Record, inA bool) bool {
		if !inA {
			return true
		}
		out, err := spec.Apply(rec.Bytes())
		if err != nil {
			ferr = err
			return false
		}
		if out == nil {
			return true
		}
		return fn(out)
	})
	if err == nil {
		err = ferr
	}
	return err
}

// Join executes a primary-key version join (Query 3) between the two
// branch heads: pairs of records sharing a primary key, the left
// satisfying the predicate. The projection applies to both sides.
//
// Since the relational-algebra generalization this is one
// configuration of the general join node: the same table's two branch
// heads as relations 0 and 1, joined on the primary key, with the
// predicate pushed into the left leg only (the historical Query 3
// semantics). Pairs emit in ascending primary-key order — the
// canonical tuple order of the general node.
func (c *Compiled) Join(ctx context.Context, fn func(JoinedPair) bool) error {
	if err := c.rowShape("Join"); err != nil {
		return err
	}
	if err := c.pair(); err != nil {
		return err
	}
	if err := c.noOrdering("Join"); err != nil {
		return err
	}
	left, err := c.branchLeg(0, true)
	if err != nil {
		return err
	}
	right, err := c.branchLeg(1, false)
	if err != nil {
		return err
	}
	jp := &joinPlan{
		rels:  []*Compiled{left, right},
		edges: []joinEdge{{left: 0, leftCol: 0, right: 1, rightCol: 0}},
	}
	jp.estimate()
	return jp.run(ctx, c.plan.NoReorder, func(tup JoinTuple) bool {
		return fn(JoinedPair{Left: tup[0], Right: tup[1]})
	})
}

// branchLeg derives a single-branch relation from a pair-compiled
// plan: branch i of the pair, keeping the compiled predicate and
// bounds only when keepPred is set (the version join's left side).
func (c *Compiled) branchLeg(i int, keepPred bool) (*Compiled, error) {
	leg := *c
	leg.plan.Branches = []string{c.branches[i].Name}
	leg.plan.Joins = nil
	leg.branches = c.branches[i : i+1]
	if !keepPred {
		leg.pred = nil
		leg.bounds = nil
		proto, err := core.NewScanSpecAt(c.table.History(), c.epoch, nil, c.cols)
		if err != nil {
			return nil, err
		}
		leg.proto = proto
	}
	return &leg, nil
}

// AggKind selects an aggregate terminal.
type AggKind uint8

// Aggregate kinds.
const (
	AggCount AggKind = iota
	AggSum
	AggMin
	AggMax
	AggAvg
)

// Aggregate folds one numeric column (ignored for AggCount) over the
// plan's scan — single-version, historical, or multi-branch (where
// each record live in any head counts once). Empty Min/Max fail with
// core.ErrNoRows. Integer columns are accumulated as int64 and
// converted on return.
func (c *Compiled) Aggregate(ctx context.Context, kind AggKind, col string) (float64, error) {
	if err := c.noOrdering("aggregates"); err != nil {
		return 0, err
	}
	if len(c.plan.GroupCols) > 0 {
		return 0, fmt.Errorf("%w: scalar aggregates do not apply to a grouped query; use Groups", core.ErrBadQuery)
	}
	if c.join != nil {
		// Count is the one scalar fold defined over a join-composed
		// query: the number of joined tuples.
		if kind != AggCount {
			return 0, fmt.Errorf("%w: only Count folds over a join-composed query; use Groups for per-group aggregates", core.ErrBadQuery)
		}
		n := 0
		if err := c.JoinTuples(ctx, func(JoinTuple) bool { n++; return true }); err != nil {
			return 0, err
		}
		return float64(n), nil
	}
	schema := c.schema
	ci := -1
	isFloat := false
	if kind != AggCount {
		ci = schema.ColumnIndex(col)
		if ci < 0 {
			return 0, (colScope{schema: schema, hist: c.table.History(), epoch: c.epoch}).missing(col)
		}
		switch schema.Column(ci).Type {
		case record.Int32, record.Int64:
		case record.Float64:
			isFloat = true
		default:
			return 0, fmt.Errorf("%w: aggregate over %v column %q", core.ErrTypeMismatch, schema.Column(ci).Type, col)
		}
	}
	// Aggregates read the source schema, so the spec carries only the
	// predicate (a Select projection does not restrict them) plus the
	// pruning bounds derived from it.
	spec, err := core.NewScanSpecAt(c.table.History(), c.epoch, c.pred, nil)
	if err != nil {
		return 0, err
	}
	spec.SetBounds(c.bounds)
	var req core.ScanRequest
	var ids []vgraph.BranchID
	if c.plan.AllHeads || len(c.branches) > 1 {
		ids = make([]vgraph.BranchID, len(c.branches))
		for i, b := range c.branches {
			ids[i] = b.ID
		}
		req = core.ScanRequest{Kind: core.ScanKindMulti, Branches: ids}
	} else if c.commit != nil {
		req = core.ScanRequest{Kind: core.ScanKindCommit, Commit: c.commit}
	} else {
		req = core.ScanRequest{Kind: core.ScanKindBranch, Branch: c.branches[0].ID}
	}
	var (
		n    int
		isum int64
		fsum float64
		fmin float64
		fmax float64
	)
	if total, handled, perr := c.tryParallelAggregate(ctx, req, spec, kind, ci, isFloat); handled || perr != nil {
		if perr != nil {
			return 0, perr
		}
		n, isum, fsum, fmin, fmax = total.n, total.isum, total.fsum, total.fmin, total.fmax
	} else {
		acc := func(rec *record.Record) bool {
			n++
			if kind == AggCount {
				return true
			}
			var v float64
			if isFloat {
				v = rec.GetFloat64(ci)
				fsum += v
			} else {
				i := rec.Get(ci)
				isum += i
				v = float64(i)
			}
			if n == 1 || v < fmin {
				fmin = v
			}
			if n == 1 || v > fmax {
				fmax = v
			}
			return true
		}
		if ids != nil {
			err = c.table.ScanMultiPushdownContext(ctx, ids, spec, func(rec *record.Record, _ *bitmap.Bitmap) bool {
				return acc(rec)
			})
		} else if c.commit != nil {
			err = c.table.ScanCommitPushdownContext(ctx, c.commit, spec, acc)
		} else {
			err = c.table.ScanPushdownContext(ctx, c.branches[0].ID, spec, acc)
		}
		if err != nil {
			return 0, err
		}
	}
	switch kind {
	case AggCount:
		return float64(n), nil
	case AggSum:
		if isFloat {
			return fsum, nil
		}
		return float64(isum), nil
	case AggAvg:
		if n == 0 {
			return 0, fmt.Errorf("%w: %s over empty scan", core.ErrNoRows, col)
		}
		if isFloat {
			return fsum / float64(n), nil
		}
		return float64(isum) / float64(n), nil
	default:
		if n == 0 {
			return 0, fmt.Errorf("%w: %s over empty scan", core.ErrNoRows, col)
		}
		if kind == AggMin {
			return fmin, nil
		}
		return fmax, nil
	}
}
