package query

// This file holds the typed, column-name-based predicates: the AST the
// query builder accepts and the compiler that turns it, at plan time,
// into a raw predicate over encoded record buffers. Compilation
// validates every column reference and value type against the table's
// catalog schema and fails with sentinel errors (core.ErrNoSuchColumn,
// core.ErrTypeMismatch) before any data is touched; the compiled form
// is what the storage engines evaluate inside their scan loops
// (core.ScanSpec.Pred).

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"math"

	"decibel/internal/core"
	"decibel/internal/record"
)

// Op is a comparison operator in a predicate leaf.
type Op uint8

// Comparison operators. OpPrefix applies to Bytes columns only.
const (
	OpEq Op = iota
	OpNe
	OpLt
	OpLe
	OpGt
	OpGe
	OpPrefix
)

// String returns the SQL-ish spelling of the operator.
func (o Op) String() string {
	switch o {
	case OpEq:
		return "="
	case OpNe:
		return "!="
	case OpLt:
		return "<"
	case OpLe:
		return "<="
	case OpGt:
		return ">"
	case OpGe:
		return ">="
	case OpPrefix:
		return "^="
	default:
		return fmt.Sprintf("Op(%d)", uint8(o))
	}
}

type exprKind uint8

const (
	exprLeaf exprKind = iota
	exprAnd
	exprOr
	exprNot
	exprTrue
)

// Expr is a typed predicate tree over named columns. The zero value
// matches every record. Build leaves with Col and combine them with
// the And/Or/Not methods; nothing is validated until the expression is
// compiled against a table schema at plan time.
type Expr struct {
	kind exprKind
	col  string
	op   Op
	val  any
	kids []Expr
}

// Col starts a predicate on the named column.
func Col(name string) ColRef { return ColRef{name: name} }

// ColRef is a reference to a named column, turned into a predicate
// leaf by one of its comparison methods.
type ColRef struct{ name string }

// Name returns the referenced column name.
func (c ColRef) Name() string { return c.name }

func (c ColRef) leaf(op Op, v any) Expr {
	return Expr{kind: exprLeaf, col: c.name, op: op, val: v}
}

// Eq matches records whose column equals v. v may be any Go integer
// for Int32/Int64 columns, a float64 (or integer) for Float64 columns,
// or a string/[]byte for Bytes columns; mismatches fail at plan time
// with core.ErrTypeMismatch.
func (c ColRef) Eq(v any) Expr { return c.leaf(OpEq, v) }

// Ne matches records whose column differs from v.
func (c ColRef) Ne(v any) Expr { return c.leaf(OpNe, v) }

// Lt matches records whose column is less than v.
func (c ColRef) Lt(v any) Expr { return c.leaf(OpLt, v) }

// Le matches records whose column is at most v.
func (c ColRef) Le(v any) Expr { return c.leaf(OpLe, v) }

// Gt matches records whose column is greater than v.
func (c ColRef) Gt(v any) Expr { return c.leaf(OpGt, v) }

// Ge matches records whose column is at least v.
func (c ColRef) Ge(v any) Expr { return c.leaf(OpGe, v) }

// HasPrefix matches Bytes columns whose value starts with p (a string
// or []byte).
func (c ColRef) HasPrefix(p any) Expr { return c.leaf(OpPrefix, p) }

// All matches every record; it is the explicit spelling of the zero
// Expr.
func All() Expr { return Expr{kind: exprTrue} }

// And matches records that satisfy both e and f.
func (e Expr) And(f Expr) Expr { return Expr{kind: exprAnd, kids: []Expr{e, f}} }

// Or matches records that satisfy e or f.
func (e Expr) Or(f Expr) Expr { return Expr{kind: exprOr, kids: []Expr{e, f}} }

// Not matches records that do not satisfy e.
func (e Expr) Not() Expr { return Expr{kind: exprNot, kids: []Expr{e}} }

// isAll reports whether the expression matches everything trivially.
func (e Expr) isAll() bool {
	return e.kind == exprTrue || (e.kind == exprLeaf && e.col == "" && e.val == nil)
}

// RawPredicate is a compiled predicate over an encoded record buffer.
type RawPredicate = func(buf []byte) bool

// colScope is the schema a predicate compiles against plus the
// version context that classifies unknown column names: a column the
// history added after the addressed version fails with
// core.ErrColumnNotYetAdded instead of a bare ErrNoSuchColumn.
type colScope struct {
	schema *record.Schema
	hist   *record.History // nil: version-unaware compilation
	epoch  int
}

// missing builds the error for a column name absent from the scope.
func (sc colScope) missing(name string) error {
	if sc.hist != nil {
		if addedIn, droppedIn, ok := sc.hist.ColumnEpochs(name); ok {
			if addedIn > sc.epoch {
				return fmt.Errorf("%w: %q (added at schema epoch %d, queried version is at %d)",
					core.ErrColumnNotYetAdded, name, addedIn, sc.epoch)
			}
			if droppedIn != 0 && droppedIn <= sc.epoch {
				return fmt.Errorf("%w: %q (dropped at schema epoch %d)", core.ErrNoSuchColumn, name, droppedIn)
			}
		}
	}
	return fmt.Errorf("%w: %q", core.ErrNoSuchColumn, name)
}

// CompileExpr validates e against the schema and compiles it to a raw
// predicate over encoded record buffers. A trivially-true expression
// compiles to nil (scan everything). Unknown columns fail with
// core.ErrNoSuchColumn, ill-typed comparisons with
// core.ErrTypeMismatch.
func CompileExpr(e Expr, s *record.Schema) (RawPredicate, error) {
	return compileExprScope(e, colScope{schema: s})
}

// CompileExprAt is CompileExpr against the schema visible at a schema
// epoch of the table's history: references to columns a later epoch
// introduces fail with core.ErrColumnNotYetAdded.
func CompileExprAt(e Expr, hist *record.History, epoch int) (RawPredicate, error) {
	return compileExprScope(e, colScope{schema: hist.VisibleAt(epoch), hist: hist, epoch: epoch})
}

func compileExprScope(e Expr, sc colScope) (RawPredicate, error) {
	if e.isAll() {
		return nil, nil
	}
	return compileNode(e, sc)
}

func compileNode(e Expr, sc colScope) (RawPredicate, error) {
	// A trivially-true node (the zero Expr, or All()) matches every
	// record wherever it appears in the tree, not just at the root.
	if e.isAll() {
		return func([]byte) bool { return true }, nil
	}
	switch e.kind {
	case exprLeaf:
		return compileLeaf(e, sc)
	case exprAnd, exprOr:
		kids := make([]RawPredicate, len(e.kids))
		for i, k := range e.kids {
			p, err := compileNode(k, sc)
			if err != nil {
				return nil, err
			}
			kids[i] = p
		}
		if e.kind == exprAnd {
			return func(buf []byte) bool {
				for _, p := range kids {
					if !p(buf) {
						return false
					}
				}
				return true
			}, nil
		}
		return func(buf []byte) bool {
			for _, p := range kids {
				if p(buf) {
					return true
				}
			}
			return false
		}, nil
	case exprNot:
		p, err := compileNode(e.kids[0], sc)
		if err != nil {
			return nil, err
		}
		return func(buf []byte) bool { return !p(buf) }, nil
	default:
		return nil, fmt.Errorf("%w: unknown expression node", core.ErrBadQuery)
	}
}

func compileLeaf(e Expr, sc colScope) (RawPredicate, error) {
	s := sc.schema
	i := s.ColumnIndex(e.col)
	if i < 0 {
		return nil, sc.missing(e.col)
	}
	c := s.Column(i)
	off := s.ColumnOffset(i)
	switch c.Type {
	case record.Int32, record.Int64:
		if e.op == OpPrefix {
			return nil, fmt.Errorf("%w: prefix match on %v column %q", core.ErrTypeMismatch, c.Type, e.col)
		}
		want, ok := asInt64(e.val)
		if !ok {
			return nil, fmt.Errorf("%w: %v column %q compared to %T", core.ErrTypeMismatch, c.Type, e.col, e.val)
		}
		cmp := intCmp(e.op)
		if c.Type == record.Int32 {
			return func(buf []byte) bool {
				return cmp(int64(int32(binary.LittleEndian.Uint32(buf[off:]))), want)
			}, nil
		}
		return func(buf []byte) bool {
			return cmp(int64(binary.LittleEndian.Uint64(buf[off:])), want)
		}, nil

	case record.Float64:
		if e.op == OpPrefix {
			return nil, fmt.Errorf("%w: prefix match on DOUBLE column %q", core.ErrTypeMismatch, e.col)
		}
		want, ok := asFloat64(e.val)
		if !ok {
			return nil, fmt.Errorf("%w: DOUBLE column %q compared to %T", core.ErrTypeMismatch, e.col, e.val)
		}
		cmp := floatCmp(e.op)
		return func(buf []byte) bool {
			return cmp(math.Float64frombits(binary.LittleEndian.Uint64(buf[off:])), want)
		}, nil

	case record.Bytes:
		want, ok := asBytes(e.val)
		if !ok {
			return nil, fmt.Errorf("%w: BYTES column %q compared to %T", core.ErrTypeMismatch, e.col, e.val)
		}
		size := c.Size
		value := func(buf []byte) []byte {
			n := int(binary.LittleEndian.Uint16(buf[off:]))
			if n > size {
				n = size
			}
			return buf[off+2 : off+2+n]
		}
		if e.op == OpPrefix {
			return func(buf []byte) bool { return bytes.HasPrefix(value(buf), want) }, nil
		}
		cmp := intCmp(e.op)
		return func(buf []byte) bool {
			return cmp(int64(bytes.Compare(value(buf), want)), 0)
		}, nil

	default:
		return nil, fmt.Errorf("%w: column %q has unsupported type", core.ErrTypeMismatch, e.col)
	}
}

func intCmp(op Op) func(a, b int64) bool {
	switch op {
	case OpEq:
		return func(a, b int64) bool { return a == b }
	case OpNe:
		return func(a, b int64) bool { return a != b }
	case OpLt:
		return func(a, b int64) bool { return a < b }
	case OpLe:
		return func(a, b int64) bool { return a <= b }
	case OpGt:
		return func(a, b int64) bool { return a > b }
	default:
		return func(a, b int64) bool { return a >= b }
	}
}

func floatCmp(op Op) func(a, b float64) bool {
	switch op {
	case OpEq:
		return func(a, b float64) bool { return a == b }
	case OpNe:
		return func(a, b float64) bool { return a != b }
	case OpLt:
		return func(a, b float64) bool { return a < b }
	case OpLe:
		return func(a, b float64) bool { return a <= b }
	case OpGt:
		return func(a, b float64) bool { return a > b }
	default:
		return func(a, b float64) bool { return a >= b }
	}
}

func asInt64(v any) (int64, bool) {
	switch n := v.(type) {
	case int:
		return int64(n), true
	case int8:
		return int64(n), true
	case int16:
		return int64(n), true
	case int32:
		return int64(n), true
	case int64:
		return n, true
	case uint8:
		return int64(n), true
	case uint16:
		return int64(n), true
	case uint32:
		return int64(n), true
	default:
		return 0, false
	}
}

func asFloat64(v any) (float64, bool) {
	switch n := v.(type) {
	case float64:
		return n, true
	case float32:
		return float64(n), true
	default:
		if i, ok := asInt64(v); ok {
			return float64(i), true
		}
		return 0, false
	}
}

func asBytes(v any) ([]byte, bool) {
	switch b := v.(type) {
	case []byte:
		return b, true
	case string:
		return []byte(b), true
	default:
		return nil, false
	}
}
