// Package query implements the versioned query operators of Decibel's
// benchmark (Table 1): single-version scans with predicates, positive
// diffs between versions, primary-key joins across versions, and
// HEAD() scans over all branch heads — plus the typed predicate
// language (pred.go) and logical query plans (plan.go) behind the
// public facade's fluent builder.
//
// Operators are engine-agnostic: every storage scheme pays its own
// cost through the core scan interfaces, which is exactly what the
// benchmark measures. The classic free functions in this file are
// retained for the ID-based callers and now route through the same
// pushdown-capable table scans the plan executor uses.
package query

import (
	"decibel/internal/bitmap"
	"decibel/internal/core"
	"decibel/internal/record"
	"decibel/internal/vgraph"
)

// Predicate filters records.
type Predicate func(*record.Record) bool

// passSpec returns the table's cached pass-through pushdown spec for
// one schema epoch, so the legacy free functions share the engines'
// pushdown-capable scan paths (and the multi-branch bitmap-union pass)
// with compiled plans without rebuilding plan state per call (the
// "planner reuse" follow-on; compiled plans get the same via
// Compiled.execSpec). The record-level Predicate is applied on the
// record the scan materializes anyway — wrapping it into a raw
// predicate would decode each matching row twice.
func passSpec(t *core.Table, epoch int) *core.ScanSpec {
	return t.PassSpec(epoch)
}

// filtered applies a record-level predicate above an engine scan; nil
// and True pass everything through.
func filtered(pred Predicate, fn core.ScanFunc) core.ScanFunc {
	if pred == nil {
		return fn
	}
	return func(rec *record.Record) bool {
		if !pred(rec) {
			return true
		}
		return fn(rec)
	}
}

// True matches every record.
func True(*record.Record) bool { return true }

// ColumnEquals matches records whose column equals v.
func ColumnEquals(col int, v int64) Predicate {
	return func(r *record.Record) bool { return r.Get(col) == v }
}

// ColumnLess matches records whose column is less than v. The paper's
// Query 4 uses "a very non-selective predicate"; a large v gives that.
func ColumnLess(col int, v int64) Predicate {
	return func(r *record.Record) bool { return r.Get(col) < v }
}

// ColumnMod matches records whose column value modulo m equals rem,
// handy for building predicates of a chosen selectivity over uniform
// data.
func ColumnMod(col int, m, rem int64) Predicate {
	return func(r *record.Record) bool {
		v := r.Get(col) % m
		if v < 0 {
			v += m
		}
		return v == rem
	}
}

// And combines predicates conjunctively.
func And(ps ...Predicate) Predicate {
	return func(r *record.Record) bool {
		for _, p := range ps {
			if !p(r) {
				return false
			}
		}
		return true
	}
}

// Or combines predicates disjunctively.
func Or(ps ...Predicate) Predicate {
	return func(r *record.Record) bool {
		for _, p := range ps {
			if p(r) {
				return true
			}
		}
		return false
	}
}

// Not negates a predicate.
func Not(p Predicate) Predicate {
	return func(r *record.Record) bool { return !p(r) }
}

// SingleVersionScan is Query 1: emit all records live in one branch
// head that satisfy the predicate.
//
//	SELECT * FROM R WHERE R.Version = 'v01'
func SingleVersionScan(t *core.Table, branch vgraph.BranchID, pred Predicate, fn core.ScanFunc) error {
	return t.ScanPushdown(branch, passSpec(t, t.BranchEpoch(branch)), filtered(pred, fn))
}

// CommitScan is Query 1 against a historical version (checkout read).
func CommitScan(t *core.Table, c *vgraph.Commit, pred Predicate, fn core.ScanFunc) error {
	return t.ScanCommitPushdown(c, passSpec(t, c.SchemaVer), filtered(pred, fn))
}

// PositiveDiff is Query 2: emit the records in branch a that do not
// appear in branch b.
//
//	SELECT * FROM R WHERE R.Version='v01'
//	AND R.id NOT IN (SELECT id FROM R WHERE R.Version='v02')
func PositiveDiff(t *core.Table, a, b vgraph.BranchID, fn core.ScanFunc) error {
	return t.ScanDiff(a, b, func(rec *record.Record, inA bool) bool {
		if !inA {
			return true
		}
		return fn(rec)
	})
}

// JoinedPair is one output row of a version join.
type JoinedPair struct {
	Left  *record.Record
	Right *record.Record
}

// VersionJoin is Query 3: a primary-key join between two branch heads,
// emitting pairs whose left record satisfies the predicate.
//
//	SELECT * FROM R AS R1, R AS R2
//	WHERE R1.Version='v01' AND <pred>(R1)
//	AND R1.id = R2.id AND R2.Version='v02'
//
// Implemented as a hash join: build a table over the filtered left
// branch, probe with a scan of the right branch.
func VersionJoin(t *core.Table, left, right vgraph.BranchID, pred Predicate, fn func(JoinedPair) bool) error {
	build := make(map[int64]*record.Record)
	if err := t.Scan(left, func(rec *record.Record) bool {
		if pred(rec) {
			build[rec.PK()] = rec.Clone()
		}
		return true
	}); err != nil {
		return err
	}
	if len(build) == 0 {
		return nil
	}
	return t.Scan(right, func(rec *record.Record) bool {
		l, ok := build[rec.PK()]
		if !ok {
			return true
		}
		return fn(JoinedPair{Left: l, Right: rec})
	})
}

// HeadRecord is one output row of a HEAD() scan: a record plus the
// branches whose heads contain it.
type HeadRecord struct {
	Record   *record.Record
	Branches []vgraph.BranchID
}

// HeadScan is Query 4: emit every record live in the head of any
// branch satisfying the predicate, annotated with its active branches.
//
//	SELECT * FROM R WHERE HEAD(R.Version) = true
func HeadScan(g *vgraph.Graph, t *core.Table, pred Predicate, fn func(HeadRecord) bool) error {
	branches := g.Branches()
	ids := make([]vgraph.BranchID, len(branches))
	for i, b := range branches {
		ids[i] = b.ID
	}
	return HeadScanBranches(t, ids, pred, fn)
}

// HeadScanBranches is HeadScan restricted to an explicit branch list
// (the benchmark scans the heads of active branches).
func HeadScanBranches(t *core.Table, ids []vgraph.BranchID, pred Predicate, fn func(HeadRecord) bool) error {
	return t.ScanMultiPushdown(ids, passSpec(t, t.MaxBranchEpoch(ids)), func(rec *record.Record, member *bitmap.Bitmap) bool {
		if pred != nil && !pred(rec) {
			return true
		}
		var active []vgraph.BranchID
		member.ForEach(func(i int) bool {
			active = append(active, ids[i])
			return true
		})
		return fn(HeadRecord{Record: rec, Branches: active})
	})
}

// Count runs a counting aggregate over a single-version scan.
func Count(t *core.Table, branch vgraph.BranchID, pred Predicate) (int, error) {
	n := 0
	err := SingleVersionScan(t, branch, pred, func(*record.Record) bool { n++; return true })
	return n, err
}

// Sum aggregates one column over a single-version scan.
func Sum(t *core.Table, branch vgraph.BranchID, col int, pred Predicate) (int64, error) {
	var s int64
	err := SingleVersionScan(t, branch, pred, func(rec *record.Record) bool {
		s += rec.Get(col)
		return true
	})
	return s, err
}
