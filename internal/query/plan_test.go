package query

import (
	"context"
	"errors"
	"sort"
	"testing"

	"decibel/internal/bitmap"
	"decibel/internal/core"
	"decibel/internal/record"
)

// planFixture builds the same dataset as fixture (master pks 1..10,
// dev with 3 updated, 10 deleted, 11 added) and returns the database.
func planFixture(t *testing.T, factory core.Factory) *core.Database {
	t.Helper()
	db, _, _, _ := fixture(t, factory)
	return db
}

func TestCompileExprRawBuffer(t *testing.T) {
	s := record.MustSchema(
		record.Column{Name: "id", Type: record.Int64},
		record.Column{Name: "n32", Type: record.Int32},
		record.Column{Name: "f", Type: record.Float64},
		record.Column{Name: "b", Type: record.Bytes, Size: 6},
	)
	r := record.New(s)
	r.SetPK(7)
	r.Set(1, -5) // negative Int32: sign extension must survive raw reads
	r.SetFloat64(2, 2.25)
	if err := r.SetBytes(3, []byte("abc")); err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name string
		e    Expr
		want bool
	}{
		{"int64 eq", Col("id").Eq(7), true},
		{"int32 neg lt", Col("n32").Lt(0), true},
		{"int32 neg ge", Col("n32").Ge(-5), true},
		{"int32 gt", Col("n32").Gt(-5), false},
		{"float le", Col("f").Le(2.25), true},
		{"float int promote", Col("f").Lt(3), true},
		{"bytes eq", Col("b").Eq("abc"), true},
		{"bytes lt", Col("b").Lt("abd"), true},
		{"bytes prefix", Col("b").HasPrefix("ab"), true},
		{"bytes prefix miss", Col("b").HasPrefix("bc"), false},
		{"and", Col("id").Eq(7).And(Col("f").Gt(2.0)), true},
		{"or", Col("id").Eq(8).Or(Col("b").Eq([]byte("abc"))), true},
		{"not", Col("id").Eq(7).Not(), false},
	}
	for _, tc := range cases {
		raw, err := CompileExpr(tc.e, s)
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		if got := raw(r.Bytes()); got != tc.want {
			t.Fatalf("%s = %v, want %v", tc.name, got, tc.want)
		}
	}

	// Validation failures carry sentinels.
	if _, err := CompileExpr(Col("ghost").Eq(1), s); !errors.Is(err, core.ErrNoSuchColumn) {
		t.Fatalf("unknown column err = %v", err)
	}
	if _, err := CompileExpr(Col("n32").HasPrefix("x"), s); !errors.Is(err, core.ErrTypeMismatch) {
		t.Fatalf("prefix on int err = %v", err)
	}
	if _, err := CompileExpr(Col("b").Eq(3.5), s); !errors.Is(err, core.ErrTypeMismatch) {
		t.Fatalf("float on bytes err = %v", err)
	}
	// The zero Expr (and All) compile to nil = scan everything.
	if raw, err := CompileExpr(Expr{}, s); err != nil || raw != nil {
		t.Fatalf("zero expr = %v, %v", raw, err)
	}
	if raw, err := CompileExpr(All(), s); err != nil || raw != nil {
		t.Fatalf("All() = %v, %v", raw, err)
	}
	// A zero Expr inside a combinator matches everything too — the
	// build-a-filter-incrementally pattern starting from var e Expr.
	var zero Expr
	raw, err := CompileExpr(zero.And(Col("id").Eq(7)), s)
	if err != nil {
		t.Fatalf("zero-And compile: %v", err)
	}
	if !raw(r.Bytes()) {
		t.Fatal("zero-And should reduce to the leaf")
	}
	raw, err = CompileExpr(All().Not(), s)
	if err != nil {
		t.Fatalf("Not(All) compile: %v", err)
	}
	if raw(r.Bytes()) {
		t.Fatal("Not(All) matched")
	}
}

// TestScanMultiPushdownMatchesRescan checks the single-pass pushdown
// execution and the per-branch rescan baseline agree record-for-record
// on every engine, with and without a predicate.
func TestScanMultiPushdownMatchesRescan(t *testing.T) {
	for name, f := range factories() {
		t.Run(name, func(t *testing.T) {
			db := planFixture(t, f)
			for _, where := range []Expr{{}, Col("v").Lt(8)} {
				plan := Plan{Table: "r", AllHeads: true, AtSeq: -1, Where: where}
				collect := func(scan func(context.Context, core.MultiScanFunc) error) map[int64]string {
					t.Helper()
					out := map[int64]string{}
					err := scan(context.Background(), func(rec *record.Record, m *bitmap.Bitmap) bool {
						out[rec.Get(1)*1000+rec.PK()] = m.String()
						return true
					})
					if err != nil {
						t.Fatal(err)
					}
					return out
				}
				c1, err := plan.Compile(db)
				if err != nil {
					t.Fatal(err)
				}
				push := collect(c1.ScanMulti)
				c2, err := plan.Compile(db)
				if err != nil {
					t.Fatal(err)
				}
				rescan := collect(c2.ScanMultiRescan)
				if len(push) == 0 || len(push) != len(rescan) {
					t.Fatalf("pushdown %d records, rescan %d", len(push), len(rescan))
				}
				for k, m := range push {
					if rescan[k] != m {
						t.Fatalf("membership diverged for %d: pushdown %s, rescan %s", k, m, rescan[k])
					}
				}
			}
		})
	}
}

// TestPlanProjection checks Select narrows the emitted schema on every
// engine through the pushdown path.
func TestPlanProjection(t *testing.T) {
	for name, f := range factories() {
		t.Run(name, func(t *testing.T) {
			db := planFixture(t, f)
			plan := Plan{Table: "r", Branches: []string{"dev"}, AtSeq: -1,
				Where: Col("v").Eq(33), Cols: []string{"v"}}
			c, err := plan.Compile(db)
			if err != nil {
				t.Fatal(err)
			}
			if nc := c.OutSchema().NumColumns(); nc != 2 {
				t.Fatalf("projected schema has %d columns", nc)
			}
			var got []int64
			if err := c.Scan(context.Background(), func(rec *record.Record) bool {
				got = append(got, rec.PK(), rec.Get(1))
				return true
			}); err != nil {
				t.Fatal(err)
			}
			sort.Slice(got, func(i, j int) bool { return got[i] < got[j] })
			if len(got) != 2 || got[0] != 3 || got[1] != 33 {
				t.Fatalf("projected scan = %v", got)
			}
		})
	}
}

// TestCompiledReuse guards the planner-reuse contract: one Compiled
// executes repeatedly — including with a projection, whose scratch
// record used to make plans single-use — and later executions see
// writes that happened after compilation (the plan re-reads the
// engine; only names, schema and predicate are bound at compile time).
func TestCompiledReuse(t *testing.T) {
	for name, factory := range factories() {
		t.Run(name, func(t *testing.T) {
			db, tbl, master, _ := fixture(t, factory)
			c, err := Plan{
				Table:    "r",
				Branches: []string{"master"},
				AtSeq:    -1,
				Where:    Col("v").Ge(1),
				Cols:     []string{"v"},
			}.Compile(db)
			if err != nil {
				t.Fatal(err)
			}
			count := func() int {
				n := 0
				if err := c.Scan(context.Background(), func(r *record.Record) bool {
					if r.Schema().NumColumns() != 2 { // pk + projected v
						t.Fatalf("projection lost on reuse: %d columns", r.Schema().NumColumns())
					}
					n++
					return true
				}); err != nil {
					t.Fatal(err)
				}
				return n
			}
			if got := count(); got != 10 {
				t.Fatalf("first execution scanned %d, want 10", got)
			}
			if got := count(); got != 10 {
				t.Fatalf("second execution scanned %d, want 10", got)
			}
			// New data lands in later executions of the same Compiled.
			if err := tbl.Insert(master.ID, rec(tbl.Schema(), 12, 12)); err != nil {
				t.Fatal(err)
			}
			if got := count(); got != 11 {
				t.Fatalf("execution after insert scanned %d, want 11", got)
			}
			// Aggregates reuse the same compiled predicate too.
			for i := 0; i < 2; i++ {
				n, err := c.Aggregate(context.Background(), AggCount, "")
				if err != nil {
					t.Fatal(err)
				}
				if int(n) != 11 {
					t.Fatalf("aggregate run %d = %v, want 11", i, n)
				}
			}
		})
	}
}
